// Conventional (non-graph) mining on the transactional view (Section 7):
// association rules, decision-tree classification, and EM clustering over
// the Table-1 attributes — the paper's Weka experiments.
//
//   ./examples/conventional_mining

#include <cstdio>

#include "common/random.h"
#include "data/generator.h"
#include "ml/apriori.h"
#include "ml/decision_tree.h"
#include "ml/em.h"

using namespace tnmine;

int main() {
  data::GeneratorConfig config = data::GeneratorConfig::SmallScale();
  config.num_transactions = 5000;
  config.num_od_pairs = 600;
  config.seed = 3;
  const data::TransactionDataset dataset =
      data::GenerateTransportData(config);
  const ml::AttributeTable table =
      ml::AttributeTable::FromTransactions(dataset);

  // --- Association rules (Section 7.1) ----------------------------------
  std::printf("== Association rules ==\n");
  const ml::AttributeTable disc = table.Discretized(8,
                                                    /*equal_frequency=*/true);
  ml::AprioriOptions apriori;
  apriori.min_support = 0.08;
  apriori.min_confidence = 0.85;
  apriori.max_itemset_size = 2;
  apriori.max_rules = 5;
  const ml::AprioriResult rules = ml::MineAssociationRules(disc, apriori);
  for (const auto& rule : rules.rules) {
    std::printf("  %s\n", ml::RuleToString(disc, rule).c_str());
  }

  // --- Classification (Section 7.2) --------------------------------------
  std::printf("\n== Decision tree (class TRANS_MODE) ==\n");
  Rng rng(5);
  ml::AttributeTable train, test;
  disc.Split(0.33, rng, &train, &test);
  const ml::DecisionTree tree =
      ml::DecisionTree::Train(train, train.AttributeIndex("TRANS_MODE"), {});
  std::printf("  root split: %s\n",
              train.attribute(tree.root_attribute()).name.c_str());
  std::printf("  test accuracy: %.3f (paper: ~0.96)\n",
              tree.Accuracy(test));

  // --- Clustering (Section 7.3) ------------------------------------------
  std::printf("\n== EM clustering (k=5 on the small dataset) ==\n");
  std::vector<int> numeric;
  for (const char* name : {"TOTAL_DISTANCE", "MOVE_TRANSIT_HOURS",
                           "GROSS_WEIGHT", "ORIGIN_LATITUDE",
                           "ORIGIN_LONGITUDE"}) {
    numeric.push_back(table.AttributeIndex(name));
  }
  ml::EmOptions em_options;
  em_options.num_clusters = 5;
  em_options.seed = 7;
  em_options.farthest_point_init = true;  // give outliers their own seed
  const ml::EmResult em = ml::FitEm(table, numeric, em_options);
  const int dist = table.AttributeIndex("TOTAL_DISTANCE");
  const int hours = table.AttributeIndex("MOVE_TRANSIT_HOURS");
  for (int c = 0; c < em.num_clusters; ++c) {
    std::printf("  cluster %d: size %-5zu mean distance %-7.0f mean hours "
                "%.1f\n",
                c, ml::ClusterSize(em, c), ml::ClusterMean(table, em, dist, c),
                ml::ClusterMean(table, em, hours, c));
  }
  std::printf(
      "\nTiny clusters grab the extreme shipments (near-500-ton project "
      "loads, or the\n>3,000-mile / <24-hour air freight) — the same "
      "effect as the paper's 3-instance\ncluster 0. The paper-scale "
      "reproduction is bench_fig5_fig6_clustering.\n");
  return 0;
}
