// Dynamic-graph episode mining (the Section 9 challenge, implemented):
// periodic routes and chained connection paths over the dated shipment
// stream.
//
//   ./examples/dynamic_episodes

#include <cstdio>

#include "core/episodes.h"
#include "data/generator.h"

using namespace tnmine;

int main() {
  data::GeneratorConfig config = data::GeneratorConfig::SmallScale();
  config.seed = 19;
  const data::TransactionDataset dataset =
      data::GenerateTransportData(config);

  core::EpisodeOptions options;
  options.min_occurrences = 5;
  options.min_period_days = 5;
  options.max_period_days = 9;
  options.period_tolerance_days = 1.5;
  options.min_leg_gap_days = 0;
  options.max_leg_gap_days = 2;
  options.min_path_occurrences = 4;
  options.max_path_legs = 3;
  const core::EpisodeResult result =
      core::MineRouteEpisodes(dataset, options);

  std::printf("periodic route episodes: %zu\n", result.routes.size());
  for (std::size_t i = 0; i < std::min<std::size_t>(5, result.routes.size());
       ++i) {
    std::printf("  %s\n", core::EpisodeToString(result.routes[i]).c_str());
  }

  std::printf("\nchained path episodes: %zu\n", result.paths.size());
  std::size_t shown = 0;
  for (const core::PathEpisode& p : result.paths) {
    if (p.stops.size() >= 3) {
      std::printf("  %s\n", core::EpisodeToString(p).c_str());
      if (++shown >= 5) break;
    }
  }
  std::printf(
      "\nWhy this matters: Section 6's per-day partitioning can only find "
      "patterns\nthat are fully present on a single day. These episodes "
      "span days — a weekly\nrhythm, or a relay where the second leg "
      "leaves after the first arrives — which\nis precisely the dynamic-"
      "graph mining the paper poses as an open challenge.\n");
  return 0;
}
