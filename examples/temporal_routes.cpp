// Temporally repeated routes (Section 6): find patterns that repeat over
// *time* at the same places — the per-day graph-transaction pipeline with
// location-unique vertex labels and weight-range edge labels.
//
//   ./examples/temporal_routes

#include <cstdio>

#include "core/miner.h"
#include "data/generator.h"
#include "pattern/render.h"

using namespace tnmine;

int main() {
  data::GeneratorConfig config = data::GeneratorConfig::SmallScale();
  config.seed = 11;
  const data::TransactionDataset dataset =
      data::GenerateTransportData(config);

  core::TemporalMiningOptions options;
  options.partition.attribute = data::EdgeAttribute::kGrossWeight;
  options.partition.num_bins = 7;
  options.partition.split_components = true;
  options.partition.remove_single_edge_transactions = true;
  options.min_support_fraction = 0.05;
  options.max_pattern_edges = 3;
  const core::TemporalMiningResult result =
      core::MineTemporalPatterns(dataset, options);

  std::printf("per-day graph transactions: %zu (avg %.1f edges, max %zu)\n",
              result.stats.num_transactions, result.stats.avg_edges,
              result.stats.max_edges);
  std::printf("support threshold: %zu days\n", result.absolute_min_support);
  std::printf("temporally repeated patterns: %zu\n",
              result.registry.size());

  std::printf("\nTop repeated routes (vertex labels are locations — the "
              "same route on many days):\n");
  const auto sorted = result.registry.SortedBySupport();
  std::size_t shown = 0;
  for (const auto* p : sorted) {
    if (p->graph.num_edges() < 2) continue;
    std::printf("%s", pattern::RenderPattern(
                          *p, &result.partition.discretizer).c_str());
    if (++shown == 3) break;
  }
  if (shown == 0) std::printf("  (no multi-edge pattern above support)\n");
  std::printf(
      "\nEach pattern is a set of shipments that moves between the same "
      "locations in\nthe same weight class on many different days — the "
      "paper's 'repeated route'\n(Figure 4 is exactly such a pattern).\n");
  return 0;
}
