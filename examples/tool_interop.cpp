// Tool interoperability: write the dataset and graphs in the file formats
// of the paper's tool chain — an ARFF file for Weka, a SUBDUE-format
// graph file, and an FSG-format transaction file — then read the FSG file
// back and mine it. This is how the paper's authors actually moved data
// between the systems tnmine reimplements.
//
//   ./examples/tool_interop [output-directory]

#include <cstdio>
#include <string>

#include "data/generator.h"
#include "data/od_graph.h"
#include "fsg/fsg.h"
#include "graph/graph_io.h"
#include "ml/arff.h"
#include "partition/split_graph.h"

using namespace tnmine;

int main(int argc, char** argv) {
  const std::string dir = argc > 1 ? argv[1] : "/tmp";
  data::GeneratorConfig config = data::GeneratorConfig::SmallScale();
  config.seed = 23;
  const data::TransactionDataset dataset =
      data::GenerateTransportData(config);

  // 1. ARFF for Weka (Section 7's transactional view).
  const std::string arff_path = dir + "/transport.arff";
  std::string error;
  const ml::AttributeTable table =
      ml::AttributeTable::FromTransactions(dataset);
  if (!ml::SaveArff(table, "transport", arff_path, &error)) {
    std::fprintf(stderr, "ARFF write failed: %s\n", error.c_str());
    return 1;
  }
  std::printf("wrote %s (%zu instances, %d attributes)\n",
              arff_path.c_str(), table.num_rows(), table.num_attributes());

  // 2. SUBDUE input file for the OD_GW graph.
  const data::OdGraph od = data::BuildOdGw(dataset);
  const std::string subdue_path = dir + "/od_gw.subdue";
  graph::WriteTextFile(subdue_path, graph::WriteSubdueFormat(od.graph));
  std::printf("wrote %s (%zu vertices, %zu edges)\n", subdue_path.c_str(),
              od.graph.num_vertices(), od.graph.num_edges());

  // 3. FSG transaction file from a breadth-first partitioning.
  partition::SplitOptions split;
  split.strategy = partition::SplitStrategy::kBreadthFirst;
  split.num_partitions = 25;
  split.seed = 5;
  const std::vector<graph::LabeledGraph> transactions =
      partition::SplitGraph(od.graph, split);
  const std::string fsg_path = dir + "/od_gw_partitions.fsg";
  graph::WriteTextFile(fsg_path, graph::WriteFsgFormat(transactions));
  std::printf("wrote %s (%zu graph transactions)\n", fsg_path.c_str(),
              transactions.size());

  // 4. Read the FSG file back and mine it — the full external round trip.
  std::string fsg_text;
  if (!graph::ReadTextFile(fsg_path, &fsg_text)) {
    std::fprintf(stderr, "cannot re-read %s\n", fsg_path.c_str());
    return 1;
  }
  std::vector<graph::LabeledGraph> reloaded;
  if (!graph::ReadFsgFormat(fsg_text, &reloaded, &error)) {
    std::fprintf(stderr, "FSG parse failed: %s\n", error.c_str());
    return 1;
  }
  fsg::FsgOptions miner;
  miner.min_support = 8;
  miner.max_edges = 3;
  const fsg::FsgResult result = fsg::MineFsg(reloaded, miner);
  std::printf("re-read %zu transactions; mined %zu frequent patterns\n",
              reloaded.size(), result.patterns.size());

  // 5. Round-trip the ARFF too.
  ml::AttributeTable back;
  if (!ml::LoadArff(arff_path, &back, &error)) {
    std::fprintf(stderr, "ARFF re-read failed: %s\n", error.c_str());
    return 1;
  }
  std::printf("re-read ARFF: %zu instances\n", back.num_rows());
  return 0;
}
