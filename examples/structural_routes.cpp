// Structurally similar routes (Section 5): find patterns that re-occur in
// many *places* in the network, regardless of location — hub-and-spoke
// distribution stars, multi-stop chains, circular routes.
//
// Demonstrates both partitioning strategies, the repeated-partitioning
// union of Algorithm 1, and SUBDUE on the same data for comparison.
//
//   ./examples/structural_routes

#include <cstdio>

#include "core/interestingness.h"
#include "core/miner.h"
#include "data/generator.h"
#include "data/od_graph.h"
#include "pattern/render.h"
#include "subdue/subdue.h"

using namespace tnmine;

int main() {
  data::GeneratorConfig config = data::GeneratorConfig::SmallScale();
  config.num_transactions = 4000;
  config.num_od_pairs = 700;
  config.seed = 42;
  const data::TransactionDataset dataset =
      data::GenerateTransportData(config);
  const data::OdGraph od = data::BuildOdTh(dataset);
  std::printf("network: %zu locations, %zu shipments\n",
              od.graph.num_vertices(), od.graph.num_edges());

  // --- FSG over both SplitGraph strategies -----------------------------
  for (const auto strategy : {partition::SplitStrategy::kBreadthFirst,
                              partition::SplitStrategy::kDepthFirst}) {
    const bool bf = strategy == partition::SplitStrategy::kBreadthFirst;
    core::StructuralMiningOptions options;
    options.strategy = strategy;
    options.num_partitions = 40;
    options.min_support = 12;
    options.max_pattern_edges = 4;
    options.repetitions = 2;
    const auto result = core::MineStructuralPatterns(od.graph, options);
    std::printf("\n%s partitioning: %zu patterns\n",
                bf ? "breadth-first" : "depth-first",
                result.registry.size());
    // Print the most interesting non-trivial pattern.
    for (const auto* p : core::RankPatterns(result.registry)) {
      if (p->graph.num_edges() >= 2) {
        std::printf("%s", pattern::RenderPattern(*p,
                                                 &od.discretizer).c_str());
        break;
      }
    }
  }

  // --- SUBDUE on a regional slice ---------------------------------------
  std::printf("\nSUBDUE (MDL) on the same network:\n");
  subdue::SubdueOptions subdue_options;
  subdue_options.method = subdue::EvalMethod::kMdl;
  subdue_options.beam_width = 4;
  subdue_options.num_best = 3;
  subdue_options.limit = 120;
  subdue_options.max_instances = 800;
  const subdue::SubdueResult discovered =
      subdue::DiscoverSubstructures(od.graph, subdue_options);
  for (const subdue::Substructure& sub : discovered.best) {
    std::printf("  value=%.3f edges=%zu disjoint-instances=%zu\n",
                sub.value, sub.pattern.num_edges(),
                sub.non_overlapping_instances);
  }
  std::printf(
      "\nReading the results: hub-and-spoke patterns say 'a depot fans "
      "out many\nloads'; chains say 'one truck can run these legs in "
      "sequence'; a cycle is a\nroute that brings the truck home. The "
      "paper's Section 5 uses exactly these\nshapes to argue where "
      "multi-modal or pooled capacity could beat per-lane\noptimization.\n");
  return 0;
}
