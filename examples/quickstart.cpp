// Quickstart: generate a small synthetic transportation dataset, build an
// OD graph, partition it, and mine frequent structural patterns — the
// whole Section-5 pipeline in ~40 lines.
//
//   ./examples/quickstart

#include <cstdio>

#include "core/interestingness.h"
#include "core/miner.h"
#include "data/generator.h"
#include "data/od_graph.h"
#include "pattern/render.h"

using namespace tnmine;

int main() {
  // 1. Synthesize a small origin-destination dataset (seeded, so this
  //    program prints the same thing every run).
  data::GeneratorConfig config = data::GeneratorConfig::SmallScale();
  config.seed = 7;
  const data::TransactionDataset dataset =
      data::GenerateTransportData(config);
  const data::DatasetStats stats = dataset.ComputeStats();
  std::printf("dataset: %zu transactions, %zu locations, %zu OD pairs\n",
              stats.num_transactions, stats.distinct_locations,
              stats.distinct_od_pairs);

  // 2. Build the OD_GW graph: one vertex per location, one edge per
  //    shipment, edge labels = binned gross weight, uniform vertex labels
  //    (structural similarity should not care *where* a pattern sits).
  const data::OdGraph od = data::BuildOdGw(dataset);
  std::printf("OD_GW: %zu vertices, %zu edges, %zu edge labels\n",
              od.graph.num_vertices(), od.graph.num_edges(),
              od.graph.CountDistinctEdgeLabels());

  // 3. Mine: Algorithm 1 — split the single graph into edge-disjoint
  //    transactions, run FSG, union over three repetitions.
  core::StructuralMiningOptions options;
  options.strategy = partition::SplitStrategy::kBreadthFirst;
  options.num_partitions = 25;
  options.min_support = 8;
  options.max_pattern_edges = 3;
  options.repetitions = 3;
  const core::StructuralMiningResult result =
      core::MineStructuralPatterns(od.graph, options);
  std::printf("mined %zu frequent pattern classes\n",
              result.registry.size());

  // 4. Rank by interestingness and show the top three.
  const auto ranked = core::RankPatterns(result.registry);
  for (std::size_t i = 0; i < 3 && i < ranked.size(); ++i) {
    std::printf("\n#%zu %s", i + 1,
                pattern::RenderPattern(*ranked[i],
                                       &od.discretizer).c_str());
  }
  return 0;
}
