// tnshard — build, inspect and verify out-of-core shard directories
// (DESIGN.md §16).
//
//   tnshard build --out <dir> --shard-size 64 --input data.fsg
//   tnshard build --out <dir> --shard-size 64 --generate 2000 --seed 7
//   tnshard inspect --dir <dir>
//   tnshard verify --dir <dir>
//   tnshard smoke
//
// `build` streams an FSG-format file (never loading more than one
// transaction plus the read buffer) or generates a Kuramochi–Karypis
// synthetic set one shard at a time, rotating shard files every
// --shard-size transactions, so datasets far bigger than RAM can be
// sharded on a small machine. `verify` re-hashes every payload and runs
// the CSR consistency checker over every transaction. `smoke` is the
// self-contained equivalence check registered in ctest: it mines the
// same transactions in RAM and through shard files at two different
// shard cuts and two thread counts, and fails unless the results are
// byte-identical.

#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "common/budget.h"
#include "fsg/fsg.h"
#include "graph/graph_io.h"
#include "graph/labeled_graph.h"
#include "graph/shard_store.h"
#include "graph/transaction_source.h"
#include "gspan/gspan.h"
#include "synth/kk_generator.h"
#include "tools/flag_parser.h"

namespace tnmine {
namespace {

using tools::Flags;

int Usage() {
  std::fprintf(stderr,
               "usage: tnshard <build|inspect|verify|smoke> "
               "[--flag value ...]\n"
               "  build   --out <dir> [--shard-size N] and one of\n"
               "          --input <file.fsg> | --generate <N> [--seed S]\n"
               "  inspect --dir <dir>\n"
               "  verify  --dir <dir>\n"
               "  smoke   (no flags; exercises build+verify+mine "
               "equivalence)\n");
  return 2;
}

/// Rotates ShardWriters every `shard_size` transactions so resident
/// memory during a build is one shard's payload, not the dataset's.
class RotatingShardWriter {
 public:
  RotatingShardWriter(std::string dir, std::size_t shard_size)
      : dir_(std::move(dir)), shard_size_(shard_size) {}

  bool Add(const graph::LabeledGraph& g) {
    if (!writer_) {
      writer_ = std::make_unique<graph::ShardWriter>(
          dir_ + "/" + graph::ShardFileName(num_shards_));
    }
    writer_->Add(g);
    ++total_;
    if (writer_->num_transactions() >= shard_size_) return Rotate();
    return true;
  }

  /// Finishes the in-progress shard, if any.
  bool Finish() {
    if (writer_ && !Rotate()) return false;
    return true;
  }

  std::size_t num_shards() const { return num_shards_; }
  std::size_t total_transactions() const { return total_; }
  const std::string& error() const { return error_; }

 private:
  bool Rotate() {
    if (!writer_->Finish(&error_)) return false;
    writer_.reset();
    ++num_shards_;
    return true;
  }

  std::string dir_;
  std::size_t shard_size_;
  std::unique_ptr<graph::ShardWriter> writer_;
  std::size_t num_shards_ = 0;
  std::size_t total_ = 0;
  std::string error_;
};

int CmdBuild(const Flags& flags) {
  const std::string out = flags.Get("out", "");
  if (out.empty()) {
    std::fprintf(stderr, "--out <dir> is required\n");
    return 2;
  }
  const auto shard_size = static_cast<std::size_t>(
      std::max(1L, flags.GetInt("shard-size", 64)));
  if (mkdir(out.c_str(), 0755) != 0 && errno != EEXIST) {
    std::fprintf(stderr, "cannot create %s\n", out.c_str());
    return 1;
  }

  const std::string input = flags.Get("input", "");
  const long generate = flags.GetInt("generate", 0);
  if (input.empty() == (generate <= 0)) {
    std::fprintf(stderr,
                 "exactly one of --input <file.fsg> or --generate <N> is "
                 "required\n");
    return 2;
  }

  RotatingShardWriter writer(out, shard_size);
  if (!input.empty()) {
    std::string error;
    bool write_failed = false;
    const bool ok = graph::StreamFsgTransactions(
        input,
        [&](graph::LabeledGraph&& g) {
          if (!writer.Add(g)) {
            write_failed = true;
            return false;  // stop streaming; the build has failed
          }
          return true;
        },
        &error);
    if (write_failed || !ok || !writer.Finish()) {
      std::fprintf(stderr, "build failed: %s\n",
                   write_failed || !ok ? (write_failed
                                              ? writer.error().c_str()
                                              : error.c_str())
                                       : writer.error().c_str());
      return 1;
    }
  } else {
    // Generate one shard's worth of transactions at a time — the chunk
    // index perturbs the seed so chunks are independent streams, and
    // peak memory is one shard of LabeledGraphs regardless of --generate.
    const auto total = static_cast<std::size_t>(generate);
    const auto base_seed =
        static_cast<std::uint64_t>(flags.GetInt("seed", 2005));
    synth::KkOptions kk;
    kk.avg_transaction_edges = flags.GetDouble("avg-edges", 27.4);
    for (std::size_t done = 0; done < total;) {
      const std::size_t chunk = std::min(shard_size, total - done);
      kk.num_transactions = chunk;
      kk.seed = base_seed + done / shard_size;
      const synth::KkResult batch = synth::GenerateKkTransactions(kk);
      for (const graph::LabeledGraph& g : batch.transactions) {
        if (!writer.Add(g)) {
          std::fprintf(stderr, "build failed: %s\n",
                       writer.error().c_str());
          return 1;
        }
      }
      done += chunk;
    }
    if (!writer.Finish()) {
      std::fprintf(stderr, "build failed: %s\n", writer.error().c_str());
      return 1;
    }
  }
  std::printf("wrote %zu transactions in %zu shards to %s\n",
              writer.total_transactions(), writer.num_shards(),
              out.c_str());
  return 0;
}

int CmdInspect(const Flags& flags) {
  const std::string dir = flags.Get("dir", "");
  std::vector<std::string> paths;
  std::string error;
  if (dir.empty() || !graph::ListShardFiles(dir, &paths, &error)) {
    std::fprintf(stderr, "--dir <dir>: %s\n",
                 dir.empty() ? "is required" : error.c_str());
    return 2;
  }
  std::size_t transactions = 0;
  std::uint64_t bytes = 0;
  for (const std::string& path : paths) {
    const auto shard = graph::ShardFile::Open(path, &error);
    if (!shard) {
      std::fprintf(stderr, "%s: %s\n", path.c_str(), error.c_str());
      return 1;
    }
    std::printf("%s: %zu transactions, %zu bytes, fingerprint %016llx\n",
                path.c_str(), shard->num_transactions(),
                shard->mapped_bytes(),
                static_cast<unsigned long long>(shard->fingerprint()));
    transactions += shard->num_transactions();
    bytes += shard->mapped_bytes();
  }
  std::printf("total: %zu transactions, %llu bytes, %zu shards\n",
              transactions, static_cast<unsigned long long>(bytes),
              paths.size());
  return 0;
}

int CmdVerify(const Flags& flags) {
  const std::string dir = flags.Get("dir", "");
  std::vector<std::string> paths;
  std::string error;
  if (dir.empty() || !graph::ListShardFiles(dir, &paths, &error)) {
    std::fprintf(stderr, "--dir <dir>: %s\n",
                 dir.empty() ? "is required" : error.c_str());
    return 2;
  }
  std::size_t transactions = 0;
  for (const std::string& path : paths) {
    const auto shard =
        graph::ShardFile::Open(path, &error, /*verify_fingerprint=*/true);
    if (!shard) {
      std::fprintf(stderr, "%s: %s\n", path.c_str(), error.c_str());
      return 1;
    }
    for (std::size_t i = 0; i < shard->num_transactions(); ++i) {
      if (!shard->View(i).CheckConsistent()) {
        std::fprintf(stderr, "%s: transaction %zu fails CSR consistency\n",
                     path.c_str(), i);
        return 1;
      }
    }
    transactions += shard->num_transactions();
  }
  std::printf("verified %zu transactions in %zu shards\n", transactions,
              paths.size());
  return 0;
}

/// A pattern list flattened to a canonical string — byte-identical runs
/// compare equal, anything else (support, tids, order, pattern set)
/// does not.
std::string Flatten(const std::vector<pattern::FrequentPattern>& patterns) {
  std::string out;
  for (const pattern::FrequentPattern& p : patterns) {
    out += p.code;
    out += '|';
    out += std::to_string(p.support);
    out += '|';
    for (const std::uint32_t tid : p.tids.ToVector()) {
      out += std::to_string(tid);
      out += ',';
    }
    out += '\n';
  }
  return out;
}

int CmdSmoke(const Flags& flags) {
  (void)flags;
  synth::KkOptions kk;
  kk.num_transactions = 60;
  kk.avg_transaction_edges = 9.0;
  kk.num_seed_patterns = 6;
  kk.avg_pattern_edges = 3.0;
  kk.num_vertex_labels = 8;
  kk.num_edge_labels = 3;
  kk.seed = 42;
  const synth::KkResult data = synth::GenerateKkTransactions(kk);

  fsg::FsgOptions fsg_options;
  fsg_options.min_support = 4;
  fsg_options.max_edges = 3;
  gspan::GspanOptions gspan_options;
  gspan_options.min_support = 4;
  gspan_options.max_edges = 3;
  const std::string fsg_expected =
      Flatten(fsg::MineFsg(data.transactions, fsg_options).patterns);
  const std::string gspan_expected =
      Flatten(gspan::MineGspan(data.transactions, gspan_options).patterns);
  if (fsg_expected.empty()) {
    std::fprintf(stderr, "smoke: in-memory FSG found nothing to mine\n");
    return 1;
  }

  char tmpl[] = "/tmp/tnshard-smoke-XXXXXX";
  if (mkdtemp(tmpl) == nullptr) {
    std::fprintf(stderr, "smoke: mkdtemp failed\n");
    return 1;
  }
  const std::string root = tmpl;

  int rc = 0;
  std::vector<std::string> written;
  for (const std::size_t shard_size : {7u, 25u}) {
    const std::string dir = root + "/s" + std::to_string(shard_size);
    if (mkdir(dir.c_str(), 0755) != 0) {
      std::fprintf(stderr, "smoke: cannot create %s\n", dir.c_str());
      rc = 1;
      break;
    }
    RotatingShardWriter writer(dir, shard_size);
    for (const graph::LabeledGraph& g : data.transactions) {
      if (!writer.Add(g)) break;
    }
    if (!writer.Finish() ||
        writer.total_transactions() != data.transactions.size()) {
      std::fprintf(stderr, "smoke: shard build failed: %s\n",
                   writer.error().c_str());
      rc = 1;
      break;
    }
    for (std::size_t i = 0; i < writer.num_shards(); ++i)
      written.push_back(dir + "/" + graph::ShardFileName(i));

    for (const std::size_t threads : {1u, 2u}) {
      graph::ShardedTransactionSource::Options source_options;
      source_options.max_resident_shards = 2;
      source_options.verify_fingerprints = true;
      std::string error;
      const auto source = graph::ShardedTransactionSource::Open(
          dir, source_options, &error);
      if (!source) {
        std::fprintf(stderr, "smoke: %s: %s\n", dir.c_str(),
                     error.c_str());
        rc = 1;
        break;
      }
      fsg::FsgOptions fo = fsg_options;
      fo.parallelism = common::Parallelism{threads};
      gspan::GspanOptions go = gspan_options;
      go.parallelism = common::Parallelism{threads};
      const std::string fsg_got =
          Flatten(fsg::MineFsg(*source, fo).patterns);
      const std::string gspan_got =
          Flatten(gspan::MineGspan(*source, go).patterns);
      if (fsg_got != fsg_expected || gspan_got != gspan_expected) {
        std::fprintf(stderr,
                     "smoke: sharded output diverges from in-memory "
                     "(shard_size=%zu threads=%zu fsg=%s gspan=%s)\n",
                     shard_size, threads,
                     fsg_got == fsg_expected ? "ok" : "MISMATCH",
                     gspan_got == gspan_expected ? "ok" : "MISMATCH");
        rc = 1;
      }
    }
    if (rc != 0) break;
  }

  for (const std::string& path : written) unlink(path.c_str());
  rmdir((root + "/s7").c_str());
  rmdir((root + "/s25").c_str());
  rmdir(root.c_str());
  if (rc == 0)
    std::printf(
        "smoke ok: %zu transactions, FSG+gSpan byte-identical across "
        "2 shard cuts x 2 thread counts\n",
        data.transactions.size());
  return rc;
}

}  // namespace

int Main(int argc, char** argv) {
  if (argc < 2) return Usage();
  const std::string command = argv[1];
  const Flags flags(argc, argv, 2);
  if (command == "build") return CmdBuild(flags);
  if (command == "inspect") return CmdInspect(flags);
  if (command == "verify") return CmdVerify(flags);
  if (command == "smoke") return CmdSmoke(flags);
  return Usage();
}

}  // namespace tnmine

int main(int argc, char** argv) { return tnmine::Main(argc, argv); }
