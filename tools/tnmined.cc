// tnmined — the resident tnmine mining server (DESIGN.md §14).
//
// Loads a transaction-dataset snapshot once, then serves concurrent
// mining/query requests over a local socket speaking length-prefixed
// JSON. Mining runs on the shared ThreadPool under a per-request
// ResourceBudget whose CancelToken fires when the client disconnects
// mid-flight; complete results are cached keyed by
// (snapshot fingerprint × op × canonical params) and invalidated on
// snapshot reload.
//
// Flags:
//   --listen SPEC         unix:/path or tcp:host:port (port 0 =
//                         ephemeral). Default tcp:127.0.0.1:0.
//   --data FILE           CSV snapshot to load before serving.
//   --cache-mb N          result-cache capacity (default 64; 0 disables).
//   --max-inflight N      concurrent mining admission cap (default 4).
//   --io-timeout-ms N     per-connection frame I/O budget: a peer that
//                         stalls mid-frame (slow loris) is dropped when
//                         the budget runs out (default 10000; 0 = never).
//   --idle-timeout-ms N   reap connections idle between requests for
//                         longer than this (default 0 = never).
//   --accept-backlog N    listen(2) backlog (default 64).
//   --failpoint SPECS     comma-separated site:kind[:hit] specs armed at
//                         startup (e.g. server/accept_fail:io:1) — the
//                         wire-chaos and retry tests' injection hook.
//   --threads N           default mining parallelism for requests that
//                         do not pin their own (0 = hardware).
//   --deadline-ms N       server-side ceilings applied to every request
//   --max-work-ticks N    on dimensions the request leaves unlimited
//   --max-memory-mb N     (0 = no server-side ceiling).
//   --ready-file FILE     after listening, atomically write the resolved
//                         address there — scripts poll for this file.
//   --metrics-out FILE    write the final RunReport JSON on shutdown.
//
// Shutdown: SIGINT/SIGTERM, or a client `shutdown` request. Either way
// in-flight mining is cancelled cooperatively, every connection is
// drained, and --metrics-out still flushes.
//
// Example:
//   tnmined --listen unix:/tmp/tnmined.sock --data /tmp/data.csv
//       --cache-mb 64 --max-inflight 8 --ready-file /tmp/tnmined.ready
//   tnmine_cli client --connect unix:/tmp/tnmined.sock --op stats

#include <unistd.h>

#include <csignal>
#include <cstdio>
#include <string>

#include "common/budget.h"
#include "common/failpoint.h"
#include "common/telemetry.h"
#include "common/thread_pool.h"
#include "server/server.h"
#include "tools/flag_parser.h"

namespace {

tnmine::server::Server* g_server = nullptr;

extern "C" void HandleShutdownSignal(int) {
  // Stop() joins threads and must not run in signal context; just
  // request shutdown — WaitForShutdown() in main returns and tears
  // down.
  if (g_server != nullptr) g_server->RequestShutdownFromSignal();
}

// Atomic ready-file publication: write the resolved address to a temp
// file, fsync it, then rename into place — a poller can see the file
// absent or complete, never a partially written port number.
bool WriteReadyFile(const std::string& path, const std::string& address) {
  const std::string tmp = path + ".tmp";
  std::FILE* f = std::fopen(tmp.c_str(), "w");
  if (f == nullptr) return false;
  bool ok =
      std::fputs(address.c_str(), f) >= 0 && std::fputc('\n', f) != EOF;
  ok = std::fflush(f) == 0 && ok;
  if (ok) ::fsync(::fileno(f));
  if (std::fclose(f) != 0 || !ok) return false;
  return std::rename(tmp.c_str(), path.c_str()) == 0;
}

// Arms every comma-separated "site:kind[:hit]" failpoint spec; returns
// false (and names the spec) on the first malformed one.
bool ArmFailpoints(const std::string& specs, std::string* bad) {
  std::size_t start = 0;
  while (start <= specs.size()) {
    const std::size_t comma = specs.find(',', start);
    const std::string spec =
        specs.substr(start, comma == std::string::npos ? std::string::npos
                                                       : comma - start);
    if (!spec.empty() && !tnmine::failpoint::ArmFromSpec(spec)) {
      *bad = spec;
      return false;
    }
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  const tnmine::tools::Flags flags(argc, argv, 1);
  if (!flags.ok()) return 2;

  tnmine::server::ServerOptions options;
  options.listen = flags.Get("listen", "tcp:127.0.0.1:0");
  options.snapshot_path = flags.Get("data", "");
  options.cache_bytes =
      static_cast<std::uint64_t>(flags.GetInt("cache-mb", 64)) << 20;
  options.max_inflight =
      static_cast<std::size_t>(flags.GetInt("max-inflight", 4));
  options.io_timeout_ms =
      static_cast<std::uint64_t>(flags.GetInt("io-timeout-ms", 10000));
  options.idle_timeout_ms =
      static_cast<std::uint64_t>(flags.GetInt("idle-timeout-ms", 0));
  options.accept_backlog =
      static_cast<int>(flags.GetInt("accept-backlog", 64));
  options.parallelism = tnmine::common::Parallelism{
      static_cast<std::size_t>(flags.GetInt("threads", 0))};
  options.default_limits.deadline_ms =
      static_cast<std::uint64_t>(flags.GetInt("deadline-ms", 0));
  options.default_limits.max_work_ticks =
      static_cast<std::uint64_t>(flags.GetInt("max-work-ticks", 0));
  options.default_limits.max_memory_bytes =
      static_cast<std::uint64_t>(flags.GetInt("max-memory-mb", 0)) << 20;

  for (const std::string& specs : flags.GetAll("failpoint")) {
    std::string bad;
    if (!ArmFailpoints(specs, &bad)) {
      std::fprintf(stderr, "tnmined: bad --failpoint spec '%s'\n",
                   bad.c_str());
      return 2;
    }
  }

  tnmine::server::Server server(options);
  std::string error;
  const auto start = std::chrono::steady_clock::now();
  if (!server.Start(&error)) {
    std::fprintf(stderr, "tnmined: %s\n", error.c_str());
    return 1;
  }
  g_server = &server;
  std::signal(SIGINT, HandleShutdownSignal);
  std::signal(SIGTERM, HandleShutdownSignal);

  std::printf("tnmined: listening on %s\n", server.address().c_str());
  std::fflush(stdout);
  const std::string ready_file = flags.Get("ready-file", "");
  if (!ready_file.empty() &&
      !WriteReadyFile(ready_file, server.address())) {
    std::fprintf(stderr, "tnmined: cannot write ready file %s\n",
                 ready_file.c_str());
    server.Stop();
    return 1;
  }

  server.WaitForShutdown();
  std::printf("tnmined: shutting down\n");
  server.Stop();
  g_server = nullptr;

  const std::string metrics_out = flags.Get("metrics-out", "");
  if (!metrics_out.empty()) {
    tnmine::telemetry::RunReportOptions report;
    report.binary = "tnmined";
    report.wall_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      start)
            .count();
    report.extra["listen"] = server.address();
    if (!tnmine::telemetry::WriteRunReport(metrics_out, report)) {
      std::fprintf(stderr, "tnmined: could not write RunReport to %s\n",
                   metrics_out.c_str());
    }
  }
  return 0;
}
