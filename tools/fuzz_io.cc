// Deterministic seeded fuzzer for every reader/writer pair in the I/O
// layer. Shares its generators and round logic with the property tests
// (tests/property/generators.h), so any failure it finds reproduces
// exactly as a property-test case with the printed seed.
//
// Usage:
//   fuzz_io [--seed N] [--iters M] [--format csv|native|subdue|fsg|arff|
//            date|binning|all] [--tmp PATH] [--artifact-dir DIR]
//           [--failpoint SITE:KIND[:HIT]]
//
// Exit status 0 if every iteration passes; 1 on the first failure, after
// printing the format, seed, iteration, and failure description needed to
// reproduce it. With --artifact-dir, the exact input bytes last fed to a
// reader are also written there (plus a metadata sidecar) so CI can upload
// them as a failure artifact. Intended to run under ASan/UBSan builds
// (-DTNMINE_SANITIZE=address / undefined).
//
// With --failpoint, the named site is armed before the run (e.g.
// "csv/open_read:io:3" — see common/failpoint.h for the spec grammar). A
// round that fails while the injected fault fired is EXPECTED: the
// artifact is written with the failpoint site/seed recorded for replay,
// and the run continues with exit status 0. A round that fails without an
// injection is a real bug and exits 1 as usual. An armed failpoint that
// never fires also exits 1, so CI notices when a swept site goes stale.

#include <unistd.h>

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <new>
#include <optional>
#include <string>
#include <vector>

#include "common/failpoint.h"
#include "common/random.h"
#include "generators.h"

namespace {

using tnmine::Rng;

struct Format {
  const char* name;
  std::function<std::optional<std::string>(Rng&)> round;
};

int Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--seed N] [--iters M] [--format csv|native|"
               "subdue|fsg|arff|date|binning|all] [--tmp PATH] "
               "[--artifact-dir DIR] [--failpoint SITE:KIND[:HIT]]\n",
               argv0);
  return 2;
}

bool WriteBytes(const std::string& path, const std::string& bytes) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) return false;
  const bool ok = bytes.empty() ||
                  std::fwrite(bytes.data(), 1, bytes.size(), f) ==
                      bytes.size();
  return std::fclose(f) == 0 && ok;
}

/// Persists the failing input bytes and a replay-recipe sidecar under
/// `dir` (which must already exist; CI creates it before the run). When
/// the failure was injected through an armed failpoint, `failpoint_spec`
/// carries the arming spec so the replay line reproduces the injection
/// (hits are counted from arming, so replaying the single iteration needs
/// the fire-at-hit reset to 1 — the sidecar records both).
void WriteFailureArtifact(const std::string& dir, const char* format,
                          std::uint64_t seed, std::uint64_t iteration,
                          std::uint64_t iter_seed, const std::string& detail,
                          const std::string& failpoint_spec) {
  const std::string stem = dir + "/failing_input_" + format + "_" +
                           std::to_string(iter_seed);
  const std::string& bytes = tnmine::fuzz::LastInputBytes();
  if (!WriteBytes(stem + ".bin", bytes)) {
    std::fprintf(stderr, "fuzz_io: cannot write artifact under %s\n",
                 dir.c_str());
    return;
  }
  std::string meta;
  meta += "format:    " + std::string(format) + "\n";
  meta += "base_seed: " + std::to_string(seed) + "\n";
  meta += "iteration: " + std::to_string(iteration) + "\n";
  meta += "iter_seed: " + std::to_string(iter_seed) + "\n";
  meta += "detail:    " + detail + "\n";
  std::string replay = "fuzz_io --format " + std::string(format) +
                       " --seed " + std::to_string(iter_seed) + " --iters 1";
  if (!failpoint_spec.empty()) {
    const std::string injected = tnmine::failpoint::LastInjectedSite();
    meta += "failpoint: " + failpoint_spec + "\n";
    meta += "injected_site: " + injected + "\n";
    // The single-iteration replay fires on the site's first hit.
    std::string kind = failpoint_spec.substr(failpoint_spec.find(':') + 1);
    const std::size_t hit_sep = kind.find(':');
    if (hit_sep != std::string::npos) kind.resize(hit_sep);
    replay += " --failpoint " + injected + ":" + kind + ":1";
  }
  meta += "replay:    " + replay + "\n";
  (void)WriteBytes(stem + ".txt", meta);
  std::fprintf(stderr, "fuzz_io: failing input saved to %s.bin\n",
               stem.c_str());
}

}  // namespace

int main(int argc, char** argv) {
  std::uint64_t seed = 1;
  std::uint64_t iters = 1000;
  std::string format = "all";
  std::string tmp_path;
  std::string artifact_dir;
  std::string failpoint_spec;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "fuzz_io: %s requires a value\n", flag);
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--seed") {
      seed = std::strtoull(next("--seed"), nullptr, 10);
    } else if (arg == "--iters") {
      iters = std::strtoull(next("--iters"), nullptr, 10);
    } else if (arg == "--format") {
      format = next("--format");
    } else if (arg == "--tmp") {
      tmp_path = next("--tmp");
    } else if (arg == "--artifact-dir") {
      artifact_dir = next("--artifact-dir");
    } else if (arg == "--failpoint") {
      failpoint_spec = next("--failpoint");
    } else if (arg == "--help" || arg == "-h") {
      return Usage(argv[0]);
    } else {
      std::fprintf(stderr, "fuzz_io: unknown argument '%s'\n", arg.c_str());
      return Usage(argv[0]);
    }
  }

  if (tmp_path.empty()) {
    // Pid-qualified: concurrent fuzz_io processes (ctest -j runs one per
    // format, all at the same seed) must not clobber each other's scratch.
    const char* tmpdir = std::getenv("TMPDIR");
    tmp_path = std::string(tmpdir && *tmpdir ? tmpdir : "/tmp") +
               "/tnmine_fuzz_io_" + std::to_string(seed) + "_" +
               std::to_string(static_cast<long>(getpid())) + ".csv";
  }

  if (!failpoint_spec.empty() &&
      !tnmine::failpoint::ArmFromSpec(failpoint_spec)) {
    std::fprintf(stderr,
                 "fuzz_io: cannot arm failpoint '%s' (bad spec, or built "
                 "with -DTNMINE_FAILPOINTS=OFF)\n",
                 failpoint_spec.c_str());
    return 2;
  }

  const std::vector<Format> formats = {
      {"csv",
       [&](Rng& rng) { return tnmine::fuzz::CsvRound(rng, tmp_path); }},
      {"native", [](Rng& rng) { return tnmine::fuzz::NativeRound(rng); }},
      {"subdue", [](Rng& rng) { return tnmine::fuzz::SubdueRound(rng); }},
      {"fsg", [](Rng& rng) { return tnmine::fuzz::FsgRound(rng); }},
      {"arff", [](Rng& rng) { return tnmine::fuzz::ArffRound(rng); }},
      {"date", [](Rng& rng) { return tnmine::fuzz::DateRound(rng); }},
      {"binning", [](Rng& rng) { return tnmine::fuzz::BinningRound(rng); }},
  };

  bool matched = false;
  for (const Format& f : formats) {
    if (format != "all" && format != f.name) continue;
    matched = true;
    for (std::uint64_t i = 0; i < iters; ++i) {
      // Each iteration gets an independent derived seed so a failure can
      // be replayed alone: rerun with --seed <printed seed> --iters 1.
      const std::uint64_t iter_seed =
          seed + i * 0x9E3779B97F4A7C15ULL;  // golden-ratio stride
      Rng rng(iter_seed);
      const std::uint64_t injections_before =
          tnmine::failpoint::InjectionCount();
      std::optional<std::string> failure;
      try {
        failure = f.round(rng);
      } catch (const tnmine::failpoint::InjectedFault& e) {
        failure = std::string("propagated ") + e.what();
      } catch (const std::bad_alloc&) {
        failure = "propagated std::bad_alloc";
      }
      const bool injected =
          tnmine::failpoint::InjectionCount() > injections_before;
      if (failure.has_value() && injected) {
        // The armed fault fired during this round: the failure is the
        // injection working as intended. Record it for replay and keep
        // fuzzing — later iterations prove the failure didn't corrupt
        // shared state.
        std::printf(
            "fuzz_io: %-7s iteration %llu failed under injected fault "
            "at %s (expected)\n",
            f.name, static_cast<unsigned long long>(i),
            tnmine::failpoint::LastInjectedSite().c_str());
        if (!artifact_dir.empty()) {
          WriteFailureArtifact(artifact_dir, f.name, seed, i, iter_seed,
                               *failure, failpoint_spec);
        }
        continue;
      }
      if (failure.has_value()) {
        std::fprintf(stderr,
                     "fuzz_io FAILURE\n  format:    %s\n  base seed: "
                     "%llu\n  iteration: %llu\n  iter seed: %llu\n  "
                     "detail:    %s\n",
                     f.name, static_cast<unsigned long long>(seed),
                     static_cast<unsigned long long>(i),
                     static_cast<unsigned long long>(iter_seed),
                     failure->c_str());
        if (!artifact_dir.empty()) {
          WriteFailureArtifact(artifact_dir, f.name, seed, i, iter_seed,
                               *failure, /*failpoint_spec=*/"");
        }
        std::remove(tmp_path.c_str());
        return 1;
      }
    }
    std::printf("fuzz_io: %-7s %llu iterations OK\n", f.name,
                static_cast<unsigned long long>(iters));
  }
  std::remove(tmp_path.c_str());

  if (!matched) {
    std::fprintf(stderr, "fuzz_io: unknown format '%s'\n", format.c_str());
    return Usage(argv[0]);
  }
  if (!failpoint_spec.empty() && tnmine::failpoint::InjectionCount() == 0) {
    std::fprintf(stderr,
                 "fuzz_io: failpoint '%s' never fired — the armed site is "
                 "no longer on this workload's path\n",
                 failpoint_spec.c_str());
    return 1;
  }
  return 0;
}
