#ifndef TNMINE_TOOLS_FLAG_PARSER_H_
#define TNMINE_TOOLS_FLAG_PARSER_H_

#include <cstdio>
#include <cstdlib>
#include <map>
#include <string>
#include <vector>

namespace tnmine::tools {

/// Tiny --key value flag parser shared by the tool binaries
/// (tnmine_cli, tnmined, wire_chaos). Every flag takes a value; unknown
/// positional arguments are an error. A flag may be repeated
/// (--failpoint a:io --failpoint b:io): Get/GetInt/GetDouble return the
/// LAST occurrence, GetAll returns every occurrence in order.
class Flags {
 public:
  Flags(int argc, char** argv, int first) {
    for (int i = first; i < argc; ++i) {
      std::string key = argv[i];
      if (key.rfind("--", 0) != 0) {
        std::fprintf(stderr, "unexpected argument: %s\n", argv[i]);
        ok_ = false;
        return;
      }
      key = key.substr(2);
      if (i + 1 >= argc) {
        std::fprintf(stderr, "flag --%s needs a value\n", key.c_str());
        ok_ = false;
        return;
      }
      values_[key].push_back(argv[++i]);
    }
  }

  bool ok() const { return ok_; }

  std::string Get(const std::string& key,
                  const std::string& fallback) const {
    const auto it = values_.find(key);
    return it == values_.end() ? fallback : it->second.back();
  }
  long GetInt(const std::string& key, long fallback) const {
    const auto it = values_.find(key);
    return it == values_.end() ? fallback
                               : std::atol(it->second.back().c_str());
  }
  double GetDouble(const std::string& key, double fallback) const {
    const auto it = values_.find(key);
    return it == values_.end() ? fallback
                               : std::atof(it->second.back().c_str());
  }
  bool Has(const std::string& key) const { return values_.contains(key); }

  /// Every value the flag was given, in command-line order (empty when
  /// the flag is absent) — for repeatable flags like --failpoint.
  std::vector<std::string> GetAll(const std::string& key) const {
    const auto it = values_.find(key);
    return it == values_.end() ? std::vector<std::string>{} : it->second;
  }

  const std::map<std::string, std::vector<std::string>>& values() const {
    return values_;
  }

 private:
  std::map<std::string, std::vector<std::string>> values_;
  bool ok_ = true;
};

}  // namespace tnmine::tools

#endif  // TNMINE_TOOLS_FLAG_PARSER_H_
