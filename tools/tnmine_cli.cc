// tnmine_cli — command-line driver for the tnmine library.
//
// Subcommands:
//   generate   synthesize a transaction dataset and write it as CSV
//   stats      print the Section-3 dataset description
//   structural mine structurally similar routes (Section 5 pipeline)
//   temporal   mine temporally repeated routes (Section 6 pipeline)
//   subdue     discover SUBDUE substructures on the OD graph (Section 5.1)
//   episodes   mine periodic / chained route episodes (Section 9 extension)
//   export     write ARFF / SUBDUE / FSG files for external tools
//   mine       run FSG/gSpan over an out-of-core shard directory
//              (tnshard build) or an FSG-format file (DESIGN.md §16)
//
// Observability (DESIGN.md §9): every subcommand accepts
//   --metrics-out <file>   write a RunReport JSON (counters + spans + wall
//                          time) after the command finishes
//   --trace-out <file>     record a trace session and write Chrome
//                          trace_event JSON (load in chrome://tracing)
//
// Resource governance (DESIGN.md §10): the mining subcommands
// (structural, temporal, subdue) accept
//   --deadline-ms <n>      stop mining after n milliseconds of wall time
//   --max-memory-mb <n>    cap tracked candidate/embedding memory
//   --max-work-ticks <n>   deterministic work budget (same tick budget =>
//                          byte-identical partial results at any --threads)
// A truncated run prints its outcome (deadline_exceeded,
// memory_budget_exceeded, cancelled), returns the partial results mined
// so far, and still flushes --metrics-out / --trace-out. SIGINT (Ctrl-C)
// cancels cooperatively through the same mechanism instead of killing
// the process.
//
// Examples:
//   tnmine_cli generate --out /tmp/data.csv --scale small --seed 7
//   tnmine_cli structural --data /tmp/data.csv --strategy bf --k 40 \
//       --support 12 --top 3 --dot /tmp/patterns
//   tnmine_cli temporal --data /tmp/data.csv --support-fraction 0.05
//   tnmine_cli episodes --data /tmp/data.csv --min-occurrences 5
//   tnmine_cli structural --data /tmp/data.csv --miner gspan \
//       --metrics-out report.json --trace-out trace.json

#include <algorithm>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/budget.h"
#include "common/failpoint.h"
#include "common/telemetry.h"
#include "common/thread_pool.h"
#include "common/trace.h"
#include "core/episodes.h"
#include "core/flow_balance.h"
#include "core/interestingness.h"
#include "core/miner.h"
#include "data/generator.h"
#include "data/od_graph.h"
#include "fsg/fsg.h"
#include "graph/graph_io.h"
#include "graph/transaction_source.h"
#include "gspan/gspan.h"
#include "ml/arff.h"
#include "partition/split_graph.h"
#include "pattern/dot.h"
#include "pattern/render.h"
#include "server/json.h"
#include "server/wire.h"
#include "subdue/subdue.h"
#include "tools/flag_parser.h"

namespace {

using namespace tnmine;
using tnmine::tools::Flags;

/// Cancel token shared by every budget this process builds. The signal
/// handler sees it through a raw pointer: RequestCancel is a single
/// relaxed atomic store, which is async-signal-safe; miners observe it at
/// their next budget poll and unwind with partial results, so the
/// metrics/trace flush in main() still runs.
std::shared_ptr<common::CancelToken> g_cancel_token;
common::CancelToken* g_cancel_raw = nullptr;

extern "C" void HandleSigint(int) {
  if (g_cancel_raw != nullptr) g_cancel_raw->RequestCancel();
}

/// Builds the run's ResourceBudget from the common governance flags.
/// With no flags set the budget is inert (unbounded) but still carries
/// the SIGINT cancel token.
common::ResourceBudget BudgetFromFlags(const Flags& flags) {
  common::BudgetLimits limits;
  limits.deadline_ms =
      static_cast<std::uint64_t>(flags.GetInt("deadline-ms", 0));
  limits.max_memory_bytes =
      static_cast<std::uint64_t>(flags.GetInt("max-memory-mb", 0)) *
      (1ull << 20);
  limits.max_work_ticks =
      static_cast<std::uint64_t>(flags.GetInt("max-work-ticks", 0));
  return common::ResourceBudget(limits, g_cancel_token);
}

/// Announces a truncated run. Partial results are valid (patterns shown
/// are genuinely frequent in the work that completed), so the exit code
/// stays 0; scripts can read the outcome from the RunReport counters.
void PrintOutcome(common::MiningOutcome outcome) {
  if (outcome != common::MiningOutcome::kComplete) {
    std::printf("outcome: %s (partial results)\n",
                common::ToString(outcome));
  }
}

int Usage() {
  std::fprintf(stderr,
               "usage: tnmine_cli <generate|stats|structural|temporal|"
               "subdue|episodes|deadhead|export|mine|client> "
               "[--flag value ...]\n"
               "common flags: --metrics-out <file> --trace-out <file>\n"
               "see the header of tools/tnmine_cli.cc for examples\n");
  return 2;
}

bool LoadData(const Flags& flags, data::TransactionDataset* dataset) {
  const std::string path = flags.Get("data", "");
  if (path.empty()) {
    std::fprintf(stderr, "--data <csv> is required\n");
    return false;
  }
  std::string error;
  if (!data::TransactionDataset::LoadCsv(path, dataset, &error)) {
    std::fprintf(stderr, "cannot load %s: %s\n", path.c_str(),
                 error.c_str());
    return false;
  }
  return true;
}

int CmdGenerate(const Flags& flags) {
  const std::string out = flags.Get("out", "");
  if (out.empty()) {
    std::fprintf(stderr, "--out <csv> is required\n");
    return 2;
  }
  data::GeneratorConfig config =
      flags.Get("scale", "small") == "paper"
          ? data::GeneratorConfig::PaperScale()
          : data::GeneratorConfig::SmallScale();
  config.seed = static_cast<std::uint64_t>(flags.GetInt("seed", 2005));
  const data::TransactionDataset dataset =
      data::GenerateTransportData(config);
  std::string error;
  if (!dataset.SaveCsv(out, &error)) {
    std::fprintf(stderr, "write failed: %s\n", error.c_str());
    return 1;
  }
  std::printf("wrote %zu transactions to %s\n", dataset.size(),
              out.c_str());
  return 0;
}

int CmdStats(const Flags& flags) {
  data::TransactionDataset dataset;
  if (!LoadData(flags, &dataset)) return 1;
  const data::DatasetStats stats = dataset.ComputeStats();
  std::printf("transactions:          %zu\n", stats.num_transactions);
  std::printf("distinct locations:    %zu\n", stats.distinct_locations);
  std::printf("distinct origins:      %zu\n", stats.distinct_origins);
  std::printf("distinct destinations: %zu\n", stats.distinct_destinations);
  std::printf("distinct OD pairs:     %zu\n", stats.distinct_od_pairs);
  std::printf("weight range:          %.0f - %.0f lb\n", stats.weight.min,
              stats.weight.max);
  std::printf("distance mean:         %.0f mi\n", stats.distance.mean);
  std::printf("TL / LTL:              %zu / %zu\n", stats.num_truckload,
              stats.num_less_than_truckload);
  return 0;
}

data::OdGraph BuildGraphFor(const Flags& flags,
                            const data::TransactionDataset& dataset) {
  const std::string attr = flags.Get("attribute", "weight");
  if (attr == "hours") return data::BuildOdTh(dataset);
  if (attr == "distance") return data::BuildOdTd(dataset);
  return data::BuildOdGw(dataset);
}

int CmdStructural(const Flags& flags) {
  data::TransactionDataset dataset;
  if (!LoadData(flags, &dataset)) return 1;
  const data::OdGraph od = BuildGraphFor(flags, dataset);
  core::StructuralMiningOptions options;
  options.strategy = flags.Get("strategy", "bf") == "df"
                         ? partition::SplitStrategy::kDepthFirst
                         : partition::SplitStrategy::kBreadthFirst;
  options.num_partitions =
      static_cast<std::size_t>(flags.GetInt("k", 40));
  options.min_support =
      static_cast<std::size_t>(flags.GetInt("support", 10));
  options.max_pattern_edges =
      static_cast<std::size_t>(flags.GetInt("max-edges", 3));
  options.repetitions =
      static_cast<std::size_t>(flags.GetInt("reps", 1));
  options.miner = flags.Get("miner", "fsg") == "gspan"
                      ? core::MinerKind::kGspan
                      : core::MinerKind::kFsg;
  options.seed = static_cast<std::uint64_t>(flags.GetInt("seed", 1));
  options.parallelism = common::Parallelism{
      static_cast<std::size_t>(flags.GetInt("threads", 0))};
  options.budget = BudgetFromFlags(flags);
  const auto result = core::MineStructuralPatterns(od.graph, options);
  PrintOutcome(result.outcome);
  std::printf("%zu frequent pattern classes\n", result.registry.size());
  const auto ranked = core::RankPatterns(result.registry);
  const std::size_t top =
      static_cast<std::size_t>(flags.GetInt("top", 3));
  const std::string dot_dir = flags.Get("dot", "");
  for (std::size_t i = 0; i < std::min(top, ranked.size()); ++i) {
    std::printf("\n#%zu %s", i + 1,
                pattern::RenderPattern(*ranked[i],
                                       &od.discretizer).c_str());
    if (!dot_dir.empty()) {
      pattern::DotOptions dot;
      dot.name = "pattern" + std::to_string(i + 1);
      dot.show_vertex_labels = false;
      dot.bins = &od.discretizer;
      const std::string path =
          dot_dir + "/pattern" + std::to_string(i + 1) + ".dot";
      if (graph::WriteTextFile(path, pattern::ToDot(*ranked[i], dot))) {
        std::printf("  (wrote %s)\n", path.c_str());
      }
    }
  }
  return 0;
}

int CmdTemporal(const Flags& flags) {
  data::TransactionDataset dataset;
  if (!LoadData(flags, &dataset)) return 1;
  core::TemporalMiningOptions options;
  options.min_support_fraction = flags.GetDouble("support-fraction", 0.05);
  options.max_pattern_edges =
      static_cast<std::size_t>(flags.GetInt("max-edges", 3));
  options.partition.max_distinct_vertex_labels =
      static_cast<std::size_t>(flags.GetInt("max-labels", 0));
  options.parallelism = common::Parallelism{
      static_cast<std::size_t>(flags.GetInt("threads", 0))};
  options.budget = BudgetFromFlags(flags);
  const auto result = core::MineTemporalPatterns(dataset, options);
  PrintOutcome(result.outcome);
  std::printf("%zu per-day transactions (support threshold %zu)\n",
              result.partition.transactions.size(),
              result.absolute_min_support);
  std::printf("%zu temporally repeated pattern classes\n",
              result.registry.size());
  const std::size_t top =
      static_cast<std::size_t>(flags.GetInt("top", 3));
  std::size_t shown = 0;
  for (const auto* p : result.registry.SortedBySupport()) {
    if (p->graph.num_edges() < 2) continue;
    std::printf("\n%s", pattern::RenderPattern(
                            *p, &result.partition.discretizer).c_str());
    if (++shown == top) break;
  }
  return 0;
}

int CmdSubdue(const Flags& flags) {
  data::TransactionDataset dataset;
  if (!LoadData(flags, &dataset)) return 1;
  const data::OdGraph od = BuildGraphFor(flags, dataset);
  subdue::SubdueOptions options;
  const std::string method = flags.Get("method", "mdl");
  options.method = method == "size"      ? subdue::EvalMethod::kSize
                   : method == "setcover" ? subdue::EvalMethod::kSetCover
                                          : subdue::EvalMethod::kMdl;
  options.beam_width =
      static_cast<std::size_t>(flags.GetInt("beam", 4));
  options.num_best = static_cast<std::size_t>(flags.GetInt("best", 3));
  options.max_pattern_edges =
      static_cast<std::size_t>(flags.GetInt("max-edges", 0));
  options.limit = static_cast<std::size_t>(flags.GetInt("limit", 0));
  options.budget = BudgetFromFlags(flags);
  const auto result = subdue::DiscoverSubstructures(od.graph, options);
  PrintOutcome(result.outcome);
  std::printf("evaluated %zu substructures (base cost %.1f)\n",
              result.substructures_evaluated, result.base_cost);
  for (std::size_t i = 0; i < result.best.size(); ++i) {
    const subdue::Substructure& sub = result.best[i];
    std::printf("#%zu value %.4f | %zu vertices, %zu edges | "
                "%zu instances (%zu disjoint)\n",
                i + 1, sub.value, sub.pattern.num_vertices(),
                sub.pattern.num_edges(), sub.instances.size(),
                sub.non_overlapping_instances);
  }
  return 0;
}

int CmdEpisodes(const Flags& flags) {
  data::TransactionDataset dataset;
  if (!LoadData(flags, &dataset)) return 1;
  core::EpisodeOptions options;
  options.min_occurrences =
      static_cast<std::size_t>(flags.GetInt("min-occurrences", 5));
  options.min_period_days =
      static_cast<int>(flags.GetInt("min-period", 2));
  options.max_period_days =
      static_cast<int>(flags.GetInt("max-period", 28));
  const auto result = core::MineRouteEpisodes(dataset, options);
  std::printf("periodic routes: %zu\n", result.routes.size());
  const std::size_t top =
      static_cast<std::size_t>(flags.GetInt("top", 5));
  for (std::size_t i = 0; i < std::min(top, result.routes.size()); ++i) {
    std::printf("  %s\n",
                core::EpisodeToString(result.routes[i]).c_str());
  }
  std::printf("chained paths: %zu\n", result.paths.size());
  std::size_t shown = 0;
  for (const auto& p : result.paths) {
    if (p.stops.size() < 3) continue;
    std::printf("  %s\n", core::EpisodeToString(p).c_str());
    if (++shown == top) break;
  }
  return 0;
}

int CmdDeadhead(const Flags& flags) {
  data::TransactionDataset dataset;
  if (!LoadData(flags, &dataset)) return 1;
  core::LaneBalanceOptions options;
  options.min_forward_shipments =
      static_cast<std::size_t>(flags.GetInt("min-forward", 10));
  options.min_imbalance = flags.GetDouble("min-imbalance", 0.8);
  const auto lanes = core::FindDeadheadLanes(dataset, options);
  const std::size_t top =
      static_cast<std::size_t>(flags.GetInt("top", 10));
  std::printf("deadhead lanes (one-directional traffic): %zu\n",
              lanes.size());
  for (std::size_t i = 0; i < std::min(top, lanes.size()); ++i) {
    std::printf("  %s\n", core::ToString(lanes[i]).c_str());
  }
  core::MarketFlowOptions market_options;
  market_options.min_shipments =
      static_cast<std::size_t>(flags.GetInt("min-shipments", 20));
  const auto markets = core::ComputeMarketFlows(dataset, market_options);
  std::printf("most imbalanced markets:\n");
  for (std::size_t i = 0; i < std::min(top, markets.size()); ++i) {
    std::printf("  %s\n", core::ToString(markets[i]).c_str());
  }
  return 0;
}

int CmdExport(const Flags& flags) {
  data::TransactionDataset dataset;
  if (!LoadData(flags, &dataset)) return 1;
  std::string error;
  if (flags.Has("arff")) {
    const ml::AttributeTable table =
        ml::AttributeTable::FromTransactions(dataset);
    if (!ml::SaveArff(table, "transport", flags.Get("arff", ""), &error)) {
      std::fprintf(stderr, "%s\n", error.c_str());
      return 1;
    }
    std::printf("wrote %s\n", flags.Get("arff", "").c_str());
  }
  if (flags.Has("subdue")) {
    const data::OdGraph od = BuildGraphFor(flags, dataset);
    if (!graph::WriteTextFile(flags.Get("subdue", ""),
                              graph::WriteSubdueFormat(od.graph))) {
      std::fprintf(stderr, "cannot write SUBDUE file\n");
      return 1;
    }
    std::printf("wrote %s\n", flags.Get("subdue", "").c_str());
  }
  if (flags.Has("fsg")) {
    const data::OdGraph od = BuildGraphFor(flags, dataset);
    partition::SplitOptions split;
    split.num_partitions =
        static_cast<std::size_t>(flags.GetInt("k", 40));
    const auto parts = partition::SplitGraph(od.graph, split);
    if (!graph::WriteTextFile(flags.Get("fsg", ""),
                              graph::WriteFsgFormat(parts))) {
      std::fprintf(stderr, "cannot write FSG file\n");
      return 1;
    }
    std::printf("wrote %s (%zu transactions)\n",
                flags.Get("fsg", "").c_str(), parts.size());
  }
  return 0;
}

/// `client` — one request to a running tnmined (DESIGN.md §14).
///
///   tnmine_cli client --connect unix:/tmp/tnmined.sock --op stats
///   tnmine_cli client --connect tcp:127.0.0.1:7077 --op structural \
///       --miner gspan --support 10 --top 3
///
/// Mining flags mirror the local subcommands (dashes become underscores
/// in the request params); only flags the caller passes are sent, so the
/// server's defaults — and thus its cache key — stay canonical. The raw
/// response JSON goes to stdout. Exit code: 0 on ok:true, 3 on a server
/// error response, 1 on transport failure.
///
/// --repeat N re-sends the same request on one connection (the second
/// response of a mining op should come back "cached":true) and
/// --disconnect-after-ms N sends the request, sleeps, and closes without
/// reading the response — the mid-flight disconnect path the server must
/// answer by cancelling the mining run.
///
/// Resilience (DESIGN.md §15): --retry N makes up to N total attempts
/// with exponential backoff + deterministic jitter
/// (--retry-backoff-ms, --retry-seed); --request-deadline-ms caps the
/// whole attempt loop; --io-timeout-ms bounds each frame read/write.
/// Request retry is gated on idempotency: every current op is a read
/// except load_snapshot and shutdown, whose requests are never
/// re-sent (their connects still retry — connecting is always safe).
/// --failpoint site:kind[:hit] arms deterministic fault injection in
/// this client process (e.g. wire/connect_fail:io:1 to prove --retry
/// rides through a transient connect failure).
/// Opens the transaction set for `mine`: an out-of-core shard directory
/// (--shard-dir, written by tnshard build) or an FSG-format text file
/// (--fsg, loaded whole into RAM). Prints and returns null on error.
std::unique_ptr<graph::TransactionSource> OpenMiningSource(
    const Flags& flags, const common::ResourceBudget& budget) {
  const std::string shard_dir = flags.Get("shard-dir", "");
  const std::string fsg_path = flags.Get("fsg", "");
  if (shard_dir.empty() == fsg_path.empty()) {
    std::fprintf(stderr,
                 "exactly one of --shard-dir <dir> or --fsg <file> is "
                 "required\n");
    return nullptr;
  }
  std::string error;
  if (!shard_dir.empty()) {
    graph::ShardedTransactionSource::Options options;
    options.max_resident_shards = static_cast<std::size_t>(
        std::max(1L, flags.GetInt("max-resident-shards", 2)));
    options.budget = budget;
    options.verify_fingerprints = flags.GetInt("verify", 0) != 0;
    auto source =
        graph::ShardedTransactionSource::Open(shard_dir, options, &error);
    if (!source)
      std::fprintf(stderr, "cannot open shard dir %s: %s\n",
                   shard_dir.c_str(), error.c_str());
    return source;
  }
  std::string text;
  if (!graph::ReadTextFile(fsg_path, &text)) {
    std::fprintf(stderr, "cannot read %s\n", fsg_path.c_str());
    return nullptr;
  }
  std::vector<graph::LabeledGraph> transactions;
  if (!graph::ReadFsgFormat(text, &transactions, &error)) {
    std::fprintf(stderr, "cannot parse %s: %s\n", fsg_path.c_str(),
                 error.c_str());
    return nullptr;
  }
  std::vector<graph::GraphView> views;
  views.reserve(transactions.size());
  for (const graph::LabeledGraph& t : transactions) views.emplace_back(t);
  return std::make_unique<graph::InMemoryTransactionSource>(
      std::move(views));
}

/// `mine` — FSG/gSpan straight over a TransactionSource, the CLI face of
/// the out-of-core path (DESIGN.md §16). With --shard-dir the resident
/// working set is bounded by --max-resident-shards mapped shards, each
/// charged against --max-memory-mb; output is byte-identical to mining
/// the same transactions in RAM.
int CmdMine(const Flags& flags) {
  const common::ResourceBudget budget = BudgetFromFlags(flags);
  const std::unique_ptr<graph::TransactionSource> source =
      OpenMiningSource(flags, budget);
  if (!source) return 2;

  const auto min_support =
      static_cast<std::size_t>(flags.GetInt("support", 2));
  const auto max_edges =
      static_cast<std::size_t>(flags.GetInt("max-edges", 3));
  const common::Parallelism parallelism{
      static_cast<std::size_t>(flags.GetInt("threads", 0))};

  std::vector<pattern::FrequentPattern> patterns;
  common::MiningOutcome outcome;
  if (flags.Get("miner", "fsg") == "gspan") {
    gspan::GspanOptions options;
    options.min_support = min_support;
    options.max_edges = max_edges;
    options.parallelism = parallelism;
    options.budget = budget;
    gspan::GspanResult result = gspan::MineGspan(*source, options);
    outcome = result.outcome;
    patterns = std::move(result.patterns);
  } else {
    fsg::FsgOptions options;
    options.min_support = min_support;
    options.max_edges = max_edges;
    options.parallelism = parallelism;
    options.budget = budget;
    fsg::FsgResult result = fsg::MineFsg(*source, options);
    outcome = result.outcome;
    patterns = std::move(result.patterns);
  }

  PrintOutcome(outcome);
  std::printf("%zu transactions in %zu shards\n",
              source->num_transactions(), source->num_shards());
  std::printf("%zu frequent patterns\n", patterns.size());
  const auto top = static_cast<std::size_t>(flags.GetInt("top", 3));
  // Rank by support descending; ties keep the miner's deterministic
  // enumeration order, so this listing is stable across runs too.
  std::vector<const pattern::FrequentPattern*> ranked;
  ranked.reserve(patterns.size());
  for (const pattern::FrequentPattern& p : patterns) ranked.push_back(&p);
  std::stable_sort(ranked.begin(), ranked.end(),
                   [](const pattern::FrequentPattern* a,
                      const pattern::FrequentPattern* b) {
                     return a->support > b->support;
                   });
  for (std::size_t i = 0; i < std::min(top, ranked.size()); ++i) {
    const pattern::FrequentPattern& p = *ranked[i];
    std::printf("#%zu support=%zu vertices=%zu edges=%zu\n", i + 1,
                p.support, static_cast<std::size_t>(p.graph.num_vertices()),
                static_cast<std::size_t>(p.graph.num_edges()));
  }
  return 0;
}

int CmdClient(const Flags& flags) {
  const std::string connect = flags.Get("connect", "");
  if (connect.empty()) {
    std::fprintf(stderr,
                 "--connect <unix:/path|tcp:host:port> is required\n");
    return 2;
  }
  const std::string op = flags.Get("op", "ping");

  for (const std::string& spec : flags.GetAll("failpoint")) {
    if (!tnmine::failpoint::ArmFromSpec(spec)) {
      std::fprintf(stderr, "client: bad --failpoint spec '%s'\n",
                   spec.c_str());
      return 2;
    }
  }

  server::RetryPolicy policy;
  policy.max_attempts =
      static_cast<int>(std::max(1L, flags.GetInt("retry", 1)));
  policy.initial_backoff_ms =
      static_cast<std::uint64_t>(flags.GetInt("retry-backoff-ms", 50));
  policy.jitter_seed =
      static_cast<std::uint64_t>(flags.GetInt("retry-seed", 1));
  policy.request_deadline_ms = static_cast<std::uint64_t>(
      flags.GetInt("request-deadline-ms", 0));
  // All current ops are reads; the mutating ones must not be re-sent
  // after an ambiguous transport failure (the first send may have been
  // applied).
  const bool idempotent =
      op != "load_snapshot" && op != "load_shards" && op != "shutdown";

  server::JsonValue request = server::JsonValue::MakeObject();
  request.Set("op", server::JsonValue(op));
  if (flags.Has("id"))
    request.Set("id", server::JsonValue(flags.Get("id", "")));

  server::JsonValue params = server::JsonValue::MakeObject();
  if (op == "load_snapshot") {
    params.Set("path", server::JsonValue(flags.Get("path", "")));
  } else if (op == "load_shards") {
    params.Set("dir", server::JsonValue(flags.Get("dir", "")));
  } else if (op == "structural" || op == "temporal" ||
             op == "mine_shards") {
    static constexpr const char* kStringFlags[] = {"attribute", "strategy",
                                                   "miner"};
    static constexpr const char* kIntFlags[] = {
        "k",           "support",        "max-edges",
        "max-labels",  "reps",           "seed",
        "threads",     "top",            "max-resident-shards",
        "deadline-ms", "max-work-ticks", "max-memory-mb"};
    static constexpr const char* kDoubleFlags[] = {"support-fraction"};
    const auto param_name = [](std::string name) {
      for (char& c : name)
        if (c == '-') c = '_';
      return name;
    };
    for (const char* flag : kStringFlags)
      if (flags.Has(flag))
        params.Set(param_name(flag),
                   server::JsonValue(flags.Get(flag, "")));
    for (const char* flag : kIntFlags)
      if (flags.Has(flag))
        params.Set(param_name(flag),
                   server::JsonValue(
                       static_cast<std::int64_t>(flags.GetInt(flag, 0))));
    for (const char* flag : kDoubleFlags)
      if (flags.Has(flag))
        params.Set(param_name(flag),
                   server::JsonValue(flags.GetDouble(flag, 0.0)));
  }
  if (!params.object().empty()) request.Set("params", params);

  server::BlockingClient client;
  client.set_io_timeout_ms(
      static_cast<std::uint64_t>(flags.GetInt("io-timeout-ms", 0)));
  std::string error;
  if (!client.Connect(connect, policy, &error)) {
    std::fprintf(stderr, "client: %s\n", error.c_str());
    return 1;
  }

  if (flags.Has("disconnect-after-ms")) {
    const long wait_ms = flags.GetInt("disconnect-after-ms", 0);
    if (!client.Send(request, &error)) {
      std::fprintf(stderr, "client: %s\n", error.c_str());
      return 1;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(wait_ms));
    client.Close();
    std::printf("disconnected after %ld ms\n", wait_ms);
    return 0;
  }

  const long repeat = std::max(1L, flags.GetInt("repeat", 1));
  int rc = 0;
  for (long i = 0; i < repeat; ++i) {
    server::JsonValue response;
    if (!client.CallWithRetry(request, policy, idempotent, &response,
                              &error)) {
      std::fprintf(stderr, "client: %s\n", error.c_str());
      return 1;
    }
    std::printf("%s\n", response.Serialize().c_str());
    if (!response.Get("ok").AsBool(false)) rc = 3;
  }
  return rc;
}

}  // namespace

int Dispatch(const std::string& command, const Flags& flags, bool* known) {
  *known = true;
  if (command == "generate") return CmdGenerate(flags);
  if (command == "stats") return CmdStats(flags);
  if (command == "structural") return CmdStructural(flags);
  if (command == "temporal") return CmdTemporal(flags);
  if (command == "subdue") return CmdSubdue(flags);
  if (command == "episodes") return CmdEpisodes(flags);
  if (command == "deadhead") return CmdDeadhead(flags);
  if (command == "export") return CmdExport(flags);
  if (command == "mine") return CmdMine(flags);
  if (command == "client") return CmdClient(flags);
  *known = false;
  return Usage();
}

int main(int argc, char** argv) {
  if (argc < 2) return Usage();
  const std::string command = argv[1];
  const Flags flags(argc, argv, 2);
  if (!flags.ok()) return 2;

  g_cancel_token = std::make_shared<tnmine::common::CancelToken>();
  g_cancel_raw = g_cancel_token.get();
  std::signal(SIGINT, HandleSigint);

  const std::string trace_out = flags.Get("trace-out", "");
  const std::string metrics_out = flags.Get("metrics-out", "");
  if (!trace_out.empty()) tnmine::trace::Session::Start();

  const auto start = std::chrono::steady_clock::now();
  bool known = false;
  const int rc = Dispatch(command, flags, &known);
  if (!known) return rc;

  if (!trace_out.empty()) {
    tnmine::trace::Session::Stop();
    if (!tnmine::trace::Session::WriteChromeTrace(trace_out)) {
      std::fprintf(stderr, "warning: could not write trace to %s\n",
                   trace_out.c_str());
    }
  }
  if (!metrics_out.empty()) {
    tnmine::telemetry::RunReportOptions report;
    report.binary = "tnmine_cli";
    report.wall_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      start)
            .count();
    report.extra["command"] = command;
    if (g_cancel_token->cancelled()) report.extra["interrupted"] = "sigint";
    if (!tnmine::telemetry::WriteRunReport(metrics_out, report)) {
      std::fprintf(stderr, "warning: could not write RunReport to %s\n",
                   metrics_out.c_str());
    }
  }
  return rc;
}
