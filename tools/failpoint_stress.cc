// failpoint_stress — sweeps every registered failpoint site under every
// injection kind and proves the library degrades instead of breaking.
//
// Phase 1 (discovery): turn on failpoint recording and run a workload
// that exercises every subsystem; the distinct sites hit are the sweep
// inventory, so a newly added TNMINE_FAILPOINT site is swept
// automatically (and a site the workload cannot reach fails the run).
//
// Phase 2 (sweep): for each site x kind in {alloc, io, throw}, arm the
// site and rerun the workload, asserting the degradation contract:
//   alloc  compute sites (gspan/fsg/subdue/partition) absorb the
//          injected std::bad_alloc into MiningOutcome ==
//          memory_budget_exceeded with valid partial results; I/O-layer
//          sites (csv/graph_io) may propagate it to the caller.
//   io     I/O sites take their error path (the operation reports
//          failure); compute sites ignore the injected bool.
//   throw  the InjectedFault escapes to the harness (a programming
//          error must propagate, never be swallowed as a clean result).
// Any crash, hang, unexpected exception, or dishonest outcome label is a
// failure. Run under ASan/LSan in CI, the sweep also proves the unwind
// paths leak nothing.
//
// Usage: failpoint_stress [--sites site1,site2] [--verbose 1]
// Exits 0 when every (site, kind) run honors the contract.

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <new>
#include <string>
#include <vector>

#include "common/budget.h"
#include "common/csv.h"
#include "common/failpoint.h"
#include "common/random.h"
#include "core/miner.h"
#include "data/dataset.h"
#include "fsg/fsg.h"
#include "graph/graph_io.h"
#include "graph/labeled_graph.h"
#include "gspan/gspan.h"
#include "partition/split_graph.h"
#include "partition/temporal.h"
#include "subdue/subdue.h"

namespace {

using namespace tnmine;
using common::MiningOutcome;
using graph::LabeledGraph;

/// What one workload pass observed, aggregated over all subsystem ops.
struct WorkloadReport {
  /// Severity-max of every MiningOutcome the subsystems returned.
  MiningOutcome worst_outcome = MiningOutcome::kComplete;
  /// True when any I/O operation reported failure.
  bool io_failed = false;
};

std::vector<LabeledGraph> MakeTransactions(std::uint64_t seed) {
  Rng rng(seed);
  std::vector<LabeledGraph> txns;
  for (std::size_t t = 0; t < 10; ++t) {
    LabeledGraph g;
    for (std::size_t i = 0; i < 6; ++i) {
      g.AddVertex(static_cast<graph::Label>(rng.NextBounded(2)));
    }
    for (std::size_t i = 0; i < 10; ++i) {
      g.AddEdge(static_cast<graph::VertexId>(rng.NextBounded(6)),
                static_cast<graph::VertexId>(rng.NextBounded(6)),
                static_cast<graph::Label>(rng.NextBounded(2)));
    }
    txns.push_back(std::move(g));
  }
  return txns;
}

LabeledGraph MakeOdGraph(std::uint64_t seed) {
  Rng rng(seed);
  LabeledGraph g;
  for (int i = 0; i < 20; ++i) g.AddVertex(0);
  for (int i = 0; i < 60; ++i) {
    g.AddEdge(static_cast<graph::VertexId>(rng.NextBounded(20)),
              static_cast<graph::VertexId>(rng.NextBounded(20)),
              static_cast<graph::Label>(rng.NextBounded(3)));
  }
  return g;
}

data::TransactionDataset MakeDataset(std::uint64_t seed) {
  Rng rng(seed);
  data::TransactionDataset dataset;
  for (int i = 0; i < 60; ++i) {
    data::Transaction t;
    t.id = i;
    t.req_pickup_day = static_cast<std::int64_t>(rng.NextBounded(10));
    t.req_delivery_day = t.req_pickup_day +
                         static_cast<std::int64_t>(rng.NextBounded(3));
    t.origin_latitude = 30.0 + static_cast<double>(rng.NextBounded(8));
    t.origin_longitude = -90.0 - static_cast<double>(rng.NextBounded(8));
    t.dest_latitude = 30.0 + static_cast<double>(rng.NextBounded(8));
    t.dest_longitude = -90.0 - static_cast<double>(rng.NextBounded(8));
    t.total_distance = 100.0 + static_cast<double>(rng.NextBounded(900));
    t.gross_weight = 1000.0 + static_cast<double>(rng.NextBounded(40000));
    t.transit_hours = 4.0 + static_cast<double>(rng.NextBounded(96));
    dataset.Add(t);
  }
  return dataset;
}

/// One pass over every subsystem that registers failpoint sites. Each op
/// folds its outcome / error report into `report`; exceptions propagate
/// to the caller (the sweep decides whether that was expected).
WorkloadReport RunWorkload(const std::string& tmp_dir) {
  WorkloadReport report;
  auto fold = [&](MiningOutcome outcome) {
    report.worst_outcome =
        common::CombineOutcomes(report.worst_outcome, outcome);
  };

  const std::vector<LabeledGraph> txns = MakeTransactions(11);
  {
    gspan::GspanOptions options;
    options.min_support = 2;
    options.max_edges = 3;
    fold(gspan::MineGspan(txns, options).outcome);
  }
  {
    fsg::FsgOptions options;
    options.min_support = 2;
    options.max_edges = 3;
    fold(fsg::MineFsg(txns, options).outcome);
  }
  {
    subdue::SubdueOptions options;
    options.beam_width = 2;
    options.limit = 20;
    fold(subdue::DiscoverSubstructures(MakeOdGraph(5), options).outcome);
  }
  {
    partition::SplitOptions options;
    options.num_partitions = 4;
    fold(partition::SplitGraphBudgeted(MakeOdGraph(7), options).outcome);
  }
  const data::TransactionDataset dataset = MakeDataset(3);
  {
    partition::TemporalOptions options;
    fold(partition::PartitionByActiveDay(dataset, options).outcome);
  }
  {
    const std::string csv_path = tmp_dir + "/failpoint_stress.csv";
    std::string error;
    if (!dataset.SaveCsv(csv_path, &error)) {
      report.io_failed = true;
    } else {
      data::TransactionDataset loaded;
      if (!data::TransactionDataset::LoadCsv(csv_path, &loaded, &error)) {
        report.io_failed = true;
      }
    }
  }
  {
    const std::string txt_path = tmp_dir + "/failpoint_stress.txt";
    std::string text;
    if (!graph::WriteTextFile(txt_path, "failpoint stress payload") ||
        !graph::ReadTextFile(txt_path, &text)) {
      report.io_failed = true;
    }
  }
  return report;
}

bool IsComputeSite(const std::string& site) {
  return site.rfind("gspan/", 0) == 0 || site.rfind("fsg/", 0) == 0 ||
         site.rfind("subdue/", 0) == 0 || site.rfind("partition/", 0) == 0;
}

bool IsIoSite(const std::string& site) {
  return site.rfind("csv/", 0) == 0 || site.rfind("graph_io/", 0) == 0;
}

int g_failures = 0;

void Fail(const std::string& site, failpoint::Kind kind,
          const std::string& why) {
  std::fprintf(stderr, "FAIL %s:%s — %s\n", site.c_str(),
               failpoint::KindName(kind), why.c_str());
  ++g_failures;
}

void SweepOne(const std::string& site, failpoint::Kind kind,
              const std::string& tmp_dir, bool verbose) {
  if (!failpoint::Arm(site, kind)) {
    Fail(site, kind, "could not arm (failpoints compiled out?)");
    return;
  }
  bool caught_injected = false;
  bool caught_bad_alloc = false;
  std::string unexpected;
  WorkloadReport report;
  try {
    report = RunWorkload(tmp_dir);
  } catch (const failpoint::InjectedFault& e) {
    caught_injected = true;
    if (e.site() != site) {
      unexpected = "InjectedFault from wrong site: " + e.site();
    }
  } catch (const std::bad_alloc&) {
    caught_bad_alloc = true;
  } catch (const std::exception& e) {
    unexpected = std::string("unexpected exception: ") + e.what();
  }
  const std::uint64_t injections = failpoint::InjectionCount();
  failpoint::DisarmAll();

  if (!unexpected.empty()) {
    Fail(site, kind, unexpected);
    return;
  }
  if (injections == 0) {
    Fail(site, kind, "site never fired (workload no longer reaches it)");
    return;
  }
  switch (kind) {
    case failpoint::Kind::kThrow:
      // A programming error must propagate, never read as a result.
      if (!caught_injected) {
        Fail(site, kind, "InjectedFault was swallowed");
      }
      break;
    case failpoint::Kind::kBadAlloc:
      if (IsComputeSite(site)) {
        // Compute layers absorb allocation failure into an honest label.
        if (caught_bad_alloc) {
          Fail(site, kind, "bad_alloc escaped a compute subsystem");
        } else if (report.worst_outcome !=
                   MiningOutcome::kMemoryBudgetExceeded) {
          Fail(site, kind,
               std::string("outcome was ") +
                   common::ToString(report.worst_outcome) +
                   ", want memory_budget_exceeded");
        }
      }
      // I/O-layer construction may propagate bad_alloc to the caller;
      // reaching this line without a crash (and leak-free under LSan)
      // is the contract.
      break;
    case failpoint::Kind::kIoError:
      if (caught_injected || caught_bad_alloc) {
        Fail(site, kind, "io kind must not throw");
      } else if (IsIoSite(site) && !report.io_failed) {
        Fail(site, kind, "I/O error path not taken");
      } else if (IsComputeSite(site) &&
                 report.worst_outcome != MiningOutcome::kComplete) {
        // Compute sites discard the injected bool; the run stays clean.
        Fail(site, kind, "io kind perturbed a compute result");
      }
      break;
  }
  if (verbose) {
    std::printf("ok   %s:%s (outcome %s)\n", site.c_str(),
                failpoint::KindName(kind),
                common::ToString(report.worst_outcome));
  }
}

}  // namespace

int main(int argc, char** argv) {
  std::string only_sites;
  bool verbose = false;
  std::string tmp_dir = "/tmp";
  for (int i = 1; i + 1 < argc; i += 2) {
    if (std::strcmp(argv[i], "--sites") == 0) only_sites = argv[i + 1];
    if (std::strcmp(argv[i], "--verbose") == 0)
      verbose = std::atoi(argv[i + 1]) != 0;
    if (std::strcmp(argv[i], "--tmp-dir") == 0) tmp_dir = argv[i + 1];
  }
  if (const char* env = std::getenv("TMPDIR");
      env != nullptr && tmp_dir == "/tmp") {
    tmp_dir = env;
  }

  // Phase 1: discover the site inventory.
  failpoint::StartRecording();
  const WorkloadReport baseline = RunWorkload(tmp_dir);
  std::vector<std::string> sites = failpoint::SitesSeen();
  failpoint::DisarmAll();
  if (baseline.worst_outcome != MiningOutcome::kComplete ||
      baseline.io_failed) {
    std::fprintf(stderr, "baseline workload did not run clean\n");
    return 1;
  }
  if (sites.empty()) {
    std::fprintf(stderr,
                 "no failpoint sites discovered (built with "
                 "-DTNMINE_FAILPOINTS=OFF?)\n");
    return 1;
  }
  if (!only_sites.empty()) {
    std::vector<std::string> filter;
    std::size_t start = 0;
    while (start <= only_sites.size()) {
      const std::size_t comma = only_sites.find(',', start);
      const std::size_t end =
          comma == std::string::npos ? only_sites.size() : comma;
      if (end > start) filter.push_back(only_sites.substr(start, end - start));
      if (comma == std::string::npos) break;
      start = comma + 1;
    }
    sites = std::move(filter);
  }
  std::printf("sweeping %zu sites x 3 kinds\n", sites.size());

  // Phase 2: the sweep.
  for (const std::string& site : sites) {
    for (const failpoint::Kind kind :
         {failpoint::Kind::kBadAlloc, failpoint::Kind::kIoError,
          failpoint::Kind::kThrow}) {
      SweepOne(site, kind, tmp_dir, verbose);
    }
  }
  if (g_failures > 0) {
    std::fprintf(stderr, "%d sweep failures\n", g_failures);
    return 1;
  }
  std::printf("all %zu sites honored the degradation contract\n",
              sites.size());
  return 0;
}
