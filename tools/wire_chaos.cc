// wire_chaos — hostile-client chaos harness for the tnmined wire layer
// (DESIGN.md §15).
//
// Starts an in-process Server on a real TCP socket (the identical code
// path tnmined runs) and drives it through seeded hostile-client
// scenarios at the raw-socket level, below BlockingClient:
//
//   torn_header      a few header bytes, then silence (slow loris)
//   torn_payload     full header, partial payload, then silence
//   slow_loris       one byte per tick, forever — the deadline must
//                    bound total frame time, not per-byte progress
//   garbage_length   random length prefix far beyond kMaxFrameBytes
//   oversized        length prefix of exactly kMaxFrameBytes + 1
//   zero_frame       zero-length frame (must answer bad_request)
//   non_json         well-framed binary garbage payload
//   json_non_object  well-framed valid JSON that is not an object
//   byte_mutate      a valid mining request with one byte flipped
//   rst_mid_request  heavy mining request, then RST (SO_LINGER 0)
//   connect_flood    a burst of connections past --max-inflight, most
//                    sending nothing, some pinging
//   idle_park        a connection that never sends anything (the idle
//                    reaper must collect it)
//   inject_*         failpoint-armed faults inside the server's own
//                    wire path (read_torn / write_short / frame_garbage
//                    / accept_fail) — compiled out with
//                    -DTNMINE_FAILPOINTS=OFF
//
// After every scenario the harness asserts the server (1) did not
// crash, (2) answers the next well-formed request, and (3) drains every
// connection slot (conn_open back to zero — a stuck slot is a leak).
// Frame-stall scenarios also measure the drop latency against
// --io-timeout-ms plus scheduling slack.
//
// Usage:
//   wire_chaos [--scenario NAME|all] [--seed N] [--iters M]
//              [--io-timeout-ms N] [--idle-timeout-ms N]
//              [--artifact-dir DIR] [--verbose 1]
//
// --scenario all (the "corpus" mode CI runs first) executes every named
// scenario once, deterministically, at the base seed. The sweep mode
// (--iters M) draws a scenario and its bytes from seed+i per iteration.
// Exit 0 when everything passes; on failure prints a single-line
// replay —
//   REPLAY: wire_chaos --scenario NAME --seed S --iters 1
// — and, with --artifact-dir, writes a .wirechaos description there
// (uploaded by the CI chaos-smoke job).

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "common/failpoint.h"
#include "common/random.h"
#include "data/generator.h"
#include "server/server.h"
#include "server/wire.h"
#include "tools/flag_parser.h"

namespace {

using namespace tnmine;
using SteadyClock = std::chrono::steady_clock;

std::uint64_t ElapsedMs(SteadyClock::time_point since) {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          SteadyClock::now() - since)
          .count());
}

/// Everything a scenario needs: the live server, its address, the
/// configured timeouts, a seeded RNG, and a place to explain failures.
struct ChaosContext {
  server::Server* srv = nullptr;
  std::string address;
  std::uint64_t io_timeout_ms = 0;
  std::uint64_t idle_timeout_ms = 0;
  Rng* rng = nullptr;
  bool verbose = false;
  std::string detail;  ///< filled in by a failing scenario

  bool Fail(const std::string& why) {
    detail = why;
    return false;
  }
};

/// Raw blocking TCP connect to the server — deliberately below
/// BlockingClient so scenarios control every byte on the wire.
int RawConnect(const ChaosContext& ctx) {
  server::ListenAddress addr;
  std::string error;
  if (!server::ListenAddress::Parse(ctx.address, &addr, &error)) return -1;
  sockaddr_in sin{};
  sin.sin_family = AF_INET;
  sin.sin_port = htons(addr.port);
  if (::inet_pton(AF_INET, addr.host.c_str(), &sin.sin_addr) != 1) {
    return -1;
  }
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  if (::connect(fd, reinterpret_cast<sockaddr*>(&sin), sizeof(sin)) != 0) {
    ::close(fd);
    return -1;
  }
  return fd;
}

bool SendAll(int fd, const void* buf, std::size_t n) {
  const char* p = static_cast<const char*>(buf);
  std::size_t done = 0;
  while (done < n) {
    const ssize_t put = ::send(fd, p + done, n - done, MSG_NOSIGNAL);
    if (put < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    done += static_cast<std::size_t>(put);
  }
  return true;
}

void PutHeader(char out[4], std::uint32_t len) {
  out[0] = static_cast<char>((len >> 24) & 0xFF);
  out[1] = static_cast<char>((len >> 16) & 0xFF);
  out[2] = static_cast<char>((len >> 8) & 0xFF);
  out[3] = static_cast<char>(len & 0xFF);
}

bool SendRawFrame(int fd, std::string_view payload) {
  char header[4];
  PutHeader(header, static_cast<std::uint32_t>(payload.size()));
  return SendAll(fd, header, sizeof(header)) &&
         SendAll(fd, payload.data(), payload.size());
}

/// Waits (bounded) until the server closes `fd`; returns elapsed ms, or
/// UINT64_MAX when it never did within `limit_ms` — the hang detector.
std::uint64_t WaitForPeerClose(int fd, std::uint64_t limit_ms) {
  const auto start = SteadyClock::now();
  char b;
  while (ElapsedMs(start) < limit_ms) {
    pollfd pfd{fd, POLLIN, 0};
    const int ready = ::poll(&pfd, 1, 100);
    if (ready < 0 && errno != EINTR) return ElapsedMs(start);
    if (ready <= 0) continue;
    const ssize_t got = ::recv(fd, &b, 1, 0);
    if (got == 0) return ElapsedMs(start);               // orderly close
    if (got < 0 && errno != EINTR && errno != EAGAIN) {
      return ElapsedMs(start);                           // RST et al.
    }
    // Data (a response frame) — drain it and keep waiting for close.
  }
  return UINT64_MAX;
}

/// Reads one response frame (bounded); true when a complete frame came
/// back. Scenarios that expect a bad_request response use this.
bool ReadRawFrame(int fd, std::string* payload, std::uint64_t limit_ms) {
  return server::ReadFrameDeadline(fd, payload, limit_ms, limit_ms) ==
         server::FrameReadStatus::kFrame;
}

std::string PingBytes() {
  server::JsonValue ping = server::JsonValue::MakeObject();
  ping.Set("op", "ping");
  return ping.Serialize();
}

std::string HeavyMiningBytes() {
  server::JsonValue req = server::JsonValue::MakeObject();
  req.Set("op", "structural");
  server::JsonValue params = server::JsonValue::MakeObject();
  params.Set("miner", "gspan");
  params.Set("support", static_cast<std::int64_t>(2));
  params.Set("max_edges", static_cast<std::int64_t>(6));
  params.Set("reps", static_cast<std::int64_t>(8));
  params.Set("threads", static_cast<std::int64_t>(2));
  req.Set("params", std::move(params));
  return req.Serialize();
}

/// The post-scenario liveness probe: a fresh well-formed request must
/// round-trip. THE core chaos invariant — whatever the hostile client
/// did, the next honest client is served.
bool NextRequestServed(ChaosContext& ctx) {
  server::BlockingClient client;
  client.set_io_timeout_ms(30000);
  std::string error;
  server::JsonValue response;
  server::JsonValue ping = server::JsonValue::MakeObject();
  ping.Set("op", "ping");
  if (!client.Connect(ctx.address, &error)) {
    return ctx.Fail("liveness connect failed: " + error);
  }
  if (!client.Call(ping, &response, &error)) {
    return ctx.Fail("liveness ping failed: " + error);
  }
  if (!response.Get("ok").AsBool(false)) {
    return ctx.Fail("liveness ping answered !ok: " + response.Serialize());
  }
  return true;
}

/// Drains the server after a scenario: every connection slot the
/// scenario consumed must be released (conn_open -> 0, inflight -> 0).
/// A slot that never frees is exactly the leak this harness hunts.
bool DrainedClean(ChaosContext& ctx) {
  const auto start = SteadyClock::now();
  while (ElapsedMs(start) < 30000) {
    if (ctx.srv->conn_open() == 0 && ctx.srv->inflight() == 0) return true;
    ::usleep(20 * 1000);
  }
  return ctx.Fail(
      "connection slots stuck: conn_open=" +
      std::to_string(ctx.srv->conn_open()) +
      " inflight=" + std::to_string(ctx.srv->inflight()) + " after 30s");
}

// Generous scheduling slack on top of the configured deadline before a
// drop counts as "too slow" (CI boxes stall; the contract is bounded,
// not tight).
constexpr std::uint64_t kSlackMs = 8000;

// ---------------------------------------------------------------------
// Scenarios. Each returns true on pass; on failure ctx.detail says why.

bool ScenarioTornHeader(ChaosContext& ctx) {
  const int fd = RawConnect(ctx);
  if (fd < 0) return ctx.Fail("connect failed");
  char header[4];
  PutHeader(header, 16);
  const std::size_t torn = 1 + ctx.rng->NextBounded(3);  // 1..3 of 4
  if (!SendAll(fd, header, torn)) {
    ::close(fd);
    return ctx.Fail("send failed");
  }
  const std::uint64_t dropped_ms =
      WaitForPeerClose(fd, ctx.io_timeout_ms + kSlackMs);
  ::close(fd);
  if (dropped_ms == UINT64_MAX) {
    return ctx.Fail("torn header never dropped (slow-loris hole)");
  }
  if (ctx.verbose) {
    std::printf("  torn_header dropped after %llu ms\n",
                static_cast<unsigned long long>(dropped_ms));
  }
  return true;
}

bool ScenarioTornPayload(ChaosContext& ctx) {
  const int fd = RawConnect(ctx);
  if (fd < 0) return ctx.Fail("connect failed");
  char header[4];
  const std::uint32_t len = 64 + static_cast<std::uint32_t>(
                                     ctx.rng->NextBounded(256));
  PutHeader(header, len);
  std::string partial(ctx.rng->NextBounded(len), 'x');
  if (!SendAll(fd, header, sizeof(header)) ||
      !SendAll(fd, partial.data(), partial.size())) {
    ::close(fd);
    return ctx.Fail("send failed");
  }
  const std::uint64_t dropped_ms =
      WaitForPeerClose(fd, ctx.io_timeout_ms + kSlackMs);
  ::close(fd);
  if (dropped_ms == UINT64_MAX) {
    return ctx.Fail("torn payload never dropped");
  }
  return true;
}

bool ScenarioSlowLoris(ChaosContext& ctx) {
  // Trickle a valid frame one byte at a time: per-byte progress keeps
  // happening, so only a whole-frame budget can stop it.
  const int fd = RawConnect(ctx);
  if (fd < 0) return ctx.Fail("connect failed");
  const std::string payload = PingBytes();
  std::string frame(4, '\0');
  PutHeader(frame.data(), static_cast<std::uint32_t>(payload.size()));
  frame += payload;
  const auto start = SteadyClock::now();
  bool closed = false;
  for (std::size_t i = 0;
       i < frame.size() && ElapsedMs(start) < ctx.io_timeout_ms + kSlackMs;
       ++i) {
    if (!SendAll(fd, frame.data() + i, 1)) {
      closed = true;  // server already dropped us mid-trickle
      break;
    }
    ::usleep(30 * 1000);
  }
  if (!closed) {
    closed = WaitForPeerClose(fd, ctx.io_timeout_ms + kSlackMs) !=
             UINT64_MAX;
  }
  ::close(fd);
  if (!closed) return ctx.Fail("slow-loris trickle was never dropped");
  return true;
}

bool ScenarioGarbageLength(ChaosContext& ctx) {
  const int fd = RawConnect(ctx);
  if (fd < 0) return ctx.Fail("connect failed");
  // Any length above kMaxFrameBytes, drawn from the full garbage range.
  const std::uint32_t len =
      server::kMaxFrameBytes + 1 +
      static_cast<std::uint32_t>(ctx.rng->NextBounded(
          0xFFFFFFFFu - server::kMaxFrameBytes - 1));
  char header[4];
  PutHeader(header, len);
  if (!SendAll(fd, header, sizeof(header))) {
    ::close(fd);
    return ctx.Fail("send failed");
  }
  const std::uint64_t dropped_ms =
      WaitForPeerClose(fd, ctx.io_timeout_ms + kSlackMs);
  ::close(fd);
  if (dropped_ms == UINT64_MAX) {
    return ctx.Fail("garbage length prefix not dropped");
  }
  return true;
}

bool ScenarioOversized(ChaosContext& ctx) {
  const int fd = RawConnect(ctx);
  if (fd < 0) return ctx.Fail("connect failed");
  char header[4];
  PutHeader(header, server::kMaxFrameBytes + 1);
  if (!SendAll(fd, header, sizeof(header))) {
    ::close(fd);
    return ctx.Fail("send failed");
  }
  const std::uint64_t dropped_ms =
      WaitForPeerClose(fd, ctx.io_timeout_ms + kSlackMs);
  ::close(fd);
  if (dropped_ms == UINT64_MAX) {
    return ctx.Fail("oversized frame not dropped");
  }
  return true;
}

/// Shared shape for the three "well-framed, bad payload" scenarios:
/// the server must answer bad_request (then drop), never crash.
bool ExpectBadRequest(ChaosContext& ctx, std::string_view payload,
                      const char* what) {
  const int fd = RawConnect(ctx);
  if (fd < 0) return ctx.Fail("connect failed");
  if (!SendRawFrame(fd, payload)) {
    ::close(fd);
    return ctx.Fail("send failed");
  }
  std::string response;
  const bool got = ReadRawFrame(fd, &response, 30000);
  ::close(fd);
  if (!got) {
    return ctx.Fail(std::string(what) + ": no bad_request response");
  }
  server::JsonValue doc;
  std::string error;
  if (!server::JsonValue::Parse(response, &doc, &error)) {
    return ctx.Fail(std::string(what) +
                    ": response is not JSON: " + error);
  }
  if (doc.Get("code").AsString() != "bad_request") {
    return ctx.Fail(std::string(what) +
                    ": expected bad_request, got: " + response);
  }
  return true;
}

bool ScenarioZeroFrame(ChaosContext& ctx) {
  return ExpectBadRequest(ctx, "", "zero-length frame");
}

bool ScenarioNonJson(ChaosContext& ctx) {
  std::string garbage(1 + ctx.rng->NextBounded(128), '\0');
  for (char& c : garbage) {
    c = static_cast<char>(ctx.rng->NextBounded(256));
  }
  // A mutated payload can accidentally be valid JSON; force a byte that
  // cannot start a document so bad_request is the only legal answer.
  garbage[0] = '\x01';
  return ExpectBadRequest(ctx, garbage, "non-JSON payload");
}

bool ScenarioJsonNonObject(ChaosContext& ctx) {
  static const char* kDocs[] = {"[1,2,3]", "\"op\"", "42", "true", "null"};
  return ExpectBadRequest(ctx, kDocs[ctx.rng->NextBounded(5)],
                          "JSON non-object");
}

bool ScenarioByteMutate(ChaosContext& ctx) {
  // A valid request with one byte flipped: the server may answer
  // (bad_request, unknown op, even success when the flip is benign) or
  // drop — but it must survive and the framing must not wedge.
  std::string payload = HeavyMiningBytes();
  const std::size_t pos = ctx.rng->NextBounded(payload.size());
  payload[pos] = static_cast<char>(payload[pos] ^
                                   (1 + ctx.rng->NextBounded(255)));
  const int fd = RawConnect(ctx);
  if (fd < 0) return ctx.Fail("connect failed");
  if (!SendRawFrame(fd, payload)) {
    ::close(fd);
    return ctx.Fail("send failed");
  }
  std::string response;
  ReadRawFrame(fd, &response, 60000);  // response optional; drop is fine
  ::close(fd);
  return true;
}

bool ScenarioRstMidRequest(ChaosContext& ctx) {
  const int fd = RawConnect(ctx);
  if (fd < 0) return ctx.Fail("connect failed");
  if (!SendRawFrame(fd, HeavyMiningBytes())) {
    ::close(fd);
    return ctx.Fail("send failed");
  }
  ::usleep((50 + ctx.rng->NextBounded(300)) * 1000);
  // SO_LINGER 0 turns close() into an RST — the rudest disconnect.
  linger lin{1, 0};
  ::setsockopt(fd, SOL_SOCKET, SO_LINGER, &lin, sizeof(lin));
  ::close(fd);
  return true;  // epilogue asserts liveness + drained slots
}

bool ScenarioConnectFlood(ChaosContext& ctx) {
  std::vector<int> herd;
  for (int i = 0; i < 32; ++i) {
    const int fd = RawConnect(ctx);
    if (fd >= 0) herd.push_back(fd);
  }
  if (herd.size() < 16) {
    for (int fd : herd) ::close(fd);
    return ctx.Fail("flood: most connects refused (" +
                    std::to_string(herd.size()) + "/32)");
  }
  // A few of the flooded connections behave; they must still be served.
  const std::string ping = PingBytes();
  for (std::size_t i = 0; i < herd.size(); i += 8) {
    if (!SendRawFrame(herd[i], ping)) {
      // An idle-reaped or backlogged socket may already be gone —
      // that is load-shedding, not a failure.
      continue;
    }
    std::string response;
    if (!ReadRawFrame(herd[i], &response, 30000)) {
      for (int fd : herd) ::close(fd);
      return ctx.Fail("flood: polite ping in the herd got no response");
    }
  }
  for (int fd : herd) ::close(fd);
  return true;
}

bool ScenarioIdlePark(ChaosContext& ctx) {
  if (ctx.idle_timeout_ms == 0) return true;  // reaper disabled
  const int fd = RawConnect(ctx);
  if (fd < 0) return ctx.Fail("connect failed");
  const std::uint64_t before = ctx.srv->conn_idle_reaped();
  const std::uint64_t dropped_ms =
      WaitForPeerClose(fd, ctx.idle_timeout_ms + kSlackMs);
  ::close(fd);
  if (dropped_ms == UINT64_MAX) {
    return ctx.Fail("idle connection never reaped");
  }
  if (ctx.srv->conn_idle_reaped() <= before) {
    return ctx.Fail("idle drop not counted in conn_idle_reaped");
  }
  return true;
}

#if TNMINE_FAILPOINTS_ENABLED
/// Arms `spec` one-shot inside the server's own wire path, fires it
/// with a valid request, and asserts the server absorbs the injected
/// fault (drop or error response) and serves the next request.
bool InjectScenario(ChaosContext& ctx, const char* site,
                    failpoint::Kind kind) {
  failpoint::DisarmAll();
  if (!failpoint::Arm(site, kind)) {
    return ctx.Fail(std::string("cannot arm ") + site);
  }
  const int fd = RawConnect(ctx);
  if (fd < 0) {
    failpoint::DisarmAll();
    return ctx.Fail("connect failed");
  }
  std::string response;
  if (SendRawFrame(fd, PingBytes())) {
    ReadRawFrame(fd, &response, 10000);  // drop or error both legal
  }
  ::close(fd);
  failpoint::DisarmAll();
  return true;  // epilogue asserts liveness
}

bool ScenarioInjectReadTorn(ChaosContext& ctx) {
  return InjectScenario(ctx, "wire/read_torn", failpoint::Kind::kIoError);
}
bool ScenarioInjectWriteShort(ChaosContext& ctx) {
  return InjectScenario(ctx, "wire/write_short",
                        failpoint::Kind::kIoError);
}
bool ScenarioInjectFrameGarbage(ChaosContext& ctx) {
  return InjectScenario(ctx, "wire/frame_garbage",
                        failpoint::Kind::kIoError);
}

bool ScenarioInjectAcceptFail(ChaosContext& ctx) {
  failpoint::DisarmAll();
  if (!failpoint::Arm("server/accept_fail", failpoint::Kind::kIoError)) {
    return ctx.Fail("cannot arm server/accept_fail");
  }
  const std::uint64_t before = ctx.srv->accept_failures();
  // This connect lands on the armed site: the server drops it at
  // accept. TCP has already completed the handshake, so the client
  // only notices at I/O time.
  const int fd = RawConnect(ctx);
  if (fd >= 0) {
    WaitForPeerClose(fd, 10000);
    ::close(fd);
  }
  failpoint::DisarmAll();
  const auto start = SteadyClock::now();
  while (ctx.srv->accept_failures() <= before && ElapsedMs(start) < 10000) {
    ::usleep(10 * 1000);
  }
  if (ctx.srv->accept_failures() <= before) {
    return ctx.Fail("injected accept failure not observed");
  }
  return true;  // epilogue proves the next connect is served
}
#endif  // TNMINE_FAILPOINTS_ENABLED

struct Scenario {
  const char* name;
  bool (*run)(ChaosContext&);
};

constexpr Scenario kScenarios[] = {
    {"torn_header", ScenarioTornHeader},
    {"torn_payload", ScenarioTornPayload},
    {"slow_loris", ScenarioSlowLoris},
    {"garbage_length", ScenarioGarbageLength},
    {"oversized", ScenarioOversized},
    {"zero_frame", ScenarioZeroFrame},
    {"non_json", ScenarioNonJson},
    {"json_non_object", ScenarioJsonNonObject},
    {"byte_mutate", ScenarioByteMutate},
    {"rst_mid_request", ScenarioRstMidRequest},
    {"connect_flood", ScenarioConnectFlood},
    {"idle_park", ScenarioIdlePark},
#if TNMINE_FAILPOINTS_ENABLED
    {"inject_read_torn", ScenarioInjectReadTorn},
    {"inject_write_short", ScenarioInjectWriteShort},
    {"inject_frame_garbage", ScenarioInjectFrameGarbage},
    {"inject_accept_fail", ScenarioInjectAcceptFail},
#endif
};

constexpr std::size_t kNumScenarios =
    sizeof(kScenarios) / sizeof(kScenarios[0]);

void WriteArtifact(const std::string& dir, const Scenario& scenario,
                   std::uint64_t seed, const ChaosContext& ctx) {
  const std::string path = dir + "/" + scenario.name + "_" +
                           std::to_string(seed) + ".wirechaos";
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "wire_chaos: cannot write artifact %s\n",
                 path.c_str());
    return;
  }
  std::fprintf(f,
               "scenario: %s\nseed: %llu\nio_timeout_ms: %llu\n"
               "idle_timeout_ms: %llu\ndetail: %s\n"
               "replay: wire_chaos --scenario %s --seed %llu --iters 1\n",
               scenario.name, static_cast<unsigned long long>(seed),
               static_cast<unsigned long long>(ctx.io_timeout_ms),
               static_cast<unsigned long long>(ctx.idle_timeout_ms),
               ctx.detail.c_str(), scenario.name,
               static_cast<unsigned long long>(seed));
  std::fclose(f);
}

/// One scenario plus the universal epilogue (alive + drained). Returns
/// true on pass; ctx.detail explains a failure.
bool RunOne(const Scenario& scenario, std::uint64_t seed,
            ChaosContext& ctx) {
  Rng rng(seed);
  ctx.rng = &rng;
  ctx.detail.clear();
  if (!scenario.run(ctx)) return false;
  if (!NextRequestServed(ctx)) return false;
  if (!DrainedClean(ctx)) return false;
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  const tools::Flags flags(argc, argv, 1);
  if (!flags.ok()) return 2;

  const std::uint64_t seed =
      static_cast<std::uint64_t>(flags.GetInt("seed", 1));
  const long iters = flags.GetInt("iters", 1);
  const std::string only = flags.Get("scenario", "");
  const std::string artifact_dir = flags.Get("artifact-dir", "");
  const bool verbose = flags.GetInt("verbose", 0) != 0;

  // A short frame deadline keeps the stall scenarios fast; the idle
  // reaper is on so parked flood connections cannot pile up forever.
  server::ServerOptions options;
  options.listen = "tcp:127.0.0.1:0";
  options.io_timeout_ms =
      static_cast<std::uint64_t>(flags.GetInt("io-timeout-ms", 500));
  options.idle_timeout_ms =
      static_cast<std::uint64_t>(flags.GetInt("idle-timeout-ms", 2500));
  options.max_inflight = 2;
  options.cache_bytes = 8ull << 20;

  const std::string data_path =
      "/tmp/wire_chaos_data_" + std::to_string(::getpid()) + ".csv";
  {
    data::GeneratorConfig config = data::GeneratorConfig::SmallScale();
    config.seed = 7;
    std::string error;
    if (!data::GenerateTransportData(config).SaveCsv(data_path, &error)) {
      std::fprintf(stderr, "wire_chaos: cannot write dataset: %s\n",
                   error.c_str());
      return 2;
    }
  }
  options.snapshot_path = data_path;

  server::Server srv(options);
  std::string error;
  if (!srv.Start(&error)) {
    std::fprintf(stderr, "wire_chaos: server start failed: %s\n",
                 error.c_str());
    ::unlink(data_path.c_str());
    return 2;
  }

  ChaosContext ctx;
  ctx.srv = &srv;
  ctx.address = srv.address();
  ctx.io_timeout_ms = options.io_timeout_ms;
  ctx.idle_timeout_ms = options.idle_timeout_ms;
  ctx.verbose = verbose;

  int failures = 0;
  long executed = 0;
  if (only == "all" || (only.empty() && iters <= 1)) {
    // Corpus mode: every named scenario once, deterministically.
    for (const Scenario& scenario : kScenarios) {
      ++executed;
      if (verbose) std::printf("corpus: %s\n", scenario.name);
      if (!RunOne(scenario, seed, ctx)) {
        ++failures;
        std::fprintf(stderr, "FAIL %s: %s\nREPLAY: wire_chaos --scenario "
                             "%s --seed %llu --iters 1\n",
                     scenario.name, ctx.detail.c_str(), scenario.name,
                     static_cast<unsigned long long>(seed));
        if (!artifact_dir.empty()) {
          WriteArtifact(artifact_dir, scenario, seed, ctx);
        }
        break;
      }
    }
  } else {
    // Named-scenario or seeded-sweep mode.
    const Scenario* pinned = nullptr;
    if (!only.empty()) {
      for (const Scenario& scenario : kScenarios) {
        if (only == scenario.name) pinned = &scenario;
      }
      if (pinned == nullptr) {
        std::fprintf(stderr, "wire_chaos: unknown scenario '%s'\n",
                     only.c_str());
        srv.Stop();
        ::unlink(data_path.c_str());
        return 2;
      }
    }
    for (long i = 0; i < iters; ++i) {
      const std::uint64_t iter_seed = seed + static_cast<std::uint64_t>(i);
      Rng pick(iter_seed * 0x9E3779B97F4A7C15ull + 1);
      const Scenario& scenario =
          pinned != nullptr ? *pinned
                            : kScenarios[pick.NextBounded(kNumScenarios)];
      ++executed;
      if (verbose) {
        std::printf("iter %ld: %s (seed %llu)\n", i, scenario.name,
                    static_cast<unsigned long long>(iter_seed));
      }
      if (!RunOne(scenario, iter_seed, ctx)) {
        ++failures;
        std::fprintf(stderr, "FAIL %s (iter %ld): %s\nREPLAY: wire_chaos "
                             "--scenario %s --seed %llu --iters 1\n",
                     scenario.name, i, ctx.detail.c_str(), scenario.name,
                     static_cast<unsigned long long>(iter_seed));
        if (!artifact_dir.empty()) {
          WriteArtifact(artifact_dir, scenario, iter_seed, ctx);
        }
        break;
      }
    }
  }

#if TNMINE_FAILPOINTS_ENABLED
  failpoint::DisarmAll();
#endif
  srv.Stop();
  ::unlink(data_path.c_str());
  if (failures == 0) {
    std::printf("wire_chaos: %ld scenario run(s) OK\n", executed);
    return 0;
  }
  return 1;
}
