#!/usr/bin/env bash
# End-to-end smoke of the tnmined server (DESIGN.md §14), run by CI's
# server-smoke job and reproducible locally:
#
#   tools/server_smoke.sh BUILD_DIR OUT_DIR
#
# Exercises the full client-visible contract against a real tnmined
# process over a unix socket:
#   * serial warmup of every distinct mining request (deterministic
#     cache misses), then 32 concurrent mixed requests — cached mining,
#     pings, stats — that must all hit;
#   * honest outcome labels: complete results cached, a tick-truncated
#     request labeled deadline_exceeded and NOT cached;
#   * a mid-flight client disconnect that cancels its mining without
#     taking the server down;
#   * a snapshot reload that bumps the version and empties the cache;
#   * client retry (--retry) riding through an injected transient
#     connect failure that a retry-less client correctly fails on;
#   * connection-lifecycle accounting (DESIGN.md §15): conn counters in
#     stats, every slot drained before shutdown;
#   * shutdown over the wire, flushing the RunReport to OUT_DIR (the CI
#     job uploads it as an artifact).
#
# Cache counters are asserted exactly: the request schedule is fixed and
# the concurrent phase only replays warmed keys, so hits/misses have one
# correct value. Any drift is a real regression, not noise.
set -euo pipefail

BUILD_DIR=${1:?usage: server_smoke.sh BUILD_DIR OUT_DIR}
OUT_DIR=${2:?usage: server_smoke.sh BUILD_DIR OUT_DIR}
CLI="$BUILD_DIR/tools/tnmine_cli"
TNMINED="$BUILD_DIR/tools/tnmined"
mkdir -p "$OUT_DIR"

WORK=$(mktemp -d)
SERVER_PID=""
cleanup() {
  [ -n "$SERVER_PID" ] && kill "$SERVER_PID" 2>/dev/null || true
  rm -rf "$WORK"
}
trap cleanup EXIT

# assert_json FILE PYTHON_EXPR — evaluates the expression with the
# parsed response bound to `r`; prints the document on failure.
assert_json() {
  python3 - "$1" "$2" <<'EOF'
import json, sys
with open(sys.argv[1]) as f:
    r = json.load(f)
if not eval("(" + sys.argv[2] + ")", {"r": r}):
    json.dump(r, sys.stderr, indent=1)
    sys.exit(f"\nassertion failed: {sys.argv[2]}")
EOF
}

client() { "$CLI" client --connect "$CONNECT" "$@"; }

echo "== generate snapshots"
"$CLI" generate --scale small --seed 7 --out "$WORK/data1.csv"
"$CLI" generate --scale small --seed 8 --out "$WORK/data2.csv"

echo "== start tnmined"
"$TNMINED" --listen "unix:$WORK/tnmined.sock" --data "$WORK/data1.csv" \
  --max-inflight 8 --cache-mb 64 --ready-file "$WORK/ready" \
  --io-timeout-ms 10000 --idle-timeout-ms 30000 \
  --metrics-out "$OUT_DIR/RUNREPORT_server_smoke.json" \
  > "$OUT_DIR/tnmined.log" 2>&1 &
SERVER_PID=$!
for _ in $(seq 1 100); do
  [ -s "$WORK/ready" ] && break
  kill -0 "$SERVER_PID" 2>/dev/null || {
    cat "$OUT_DIR/tnmined.log" >&2
    echo "tnmined died before becoming ready" >&2
    exit 1
  }
  sleep 0.1
done
CONNECT=$(cat "$WORK/ready")
echo "   ready at $CONNECT"

echo "== serial warmup (5 distinct mining requests, all misses)"
for support in 8 9 10 11; do
  client --op structural --support "$support" --top 3 --threads 2 \
    > "$WORK/warm_$support.json"
  assert_json "$WORK/warm_$support.json" \
    'r["ok"] and r["result"]["outcome"] == "complete" and not r.get("cached")'
done
client --op temporal --support-fraction 0.05 --threads 2 \
  > "$WORK/warm_temporal.json"
assert_json "$WORK/warm_temporal.json" \
  'r["ok"] and r["result"]["outcome"] == "complete" and not r.get("cached")'

echo "== 32 concurrent mixed requests (mining must all be cache hits)"
pids=()
for i in $(seq 0 31); do
  case $((i % 4)) in
    0) client --op structural --support $((8 + i / 4 % 4)) --top 3 \
         --threads 2 > "$WORK/mixed_$i.json" & ;;
    1) client --op temporal --support-fraction 0.05 --threads 2 \
         > "$WORK/mixed_$i.json" & ;;
    2) client --op ping > "$WORK/mixed_$i.json" & ;;
    3) client --op stats > "$WORK/mixed_$i.json" & ;;
  esac
  pids+=($!)
done
for pid in "${pids[@]}"; do wait "$pid"; done
for i in $(seq 0 31); do
  case $((i % 4)) in
    0 | 1)
      assert_json "$WORK/mixed_$i.json" \
        'r["ok"] and r["cached"] is True and r["result"]["outcome"] == "complete"'
      ;;
    *) assert_json "$WORK/mixed_$i.json" 'r["ok"]' ;;
  esac
done

echo "== cache counters are exact: 5 warmup misses, 16 concurrent hits"
client --op stats > "$WORK/stats1.json"
assert_json "$WORK/stats1.json" \
  'r["result"]["cache"]["misses"] == 5 and r["result"]["cache"]["hits"] == 16
   and r["result"]["cache"]["entries"] == 5
   and r["result"]["server"]["requests_cancelled"] == 0
   and r["result"]["report"]["counters"]["server/cache_hits"] == 16'

echo "== connection-lifecycle counters are surfaced in stats"
assert_json "$WORK/stats1.json" \
  'r["result"]["server"]["conn_accepted"] >= 38
   and r["result"]["server"]["conn_open"] >= 1
   and r["result"]["server"]["conn_idle_reaped"] == 0
   and r["result"]["server"]["conn_io_timeout"] == 0
   and r["result"]["server"]["conn_bad_frame"] == 0
   and r["result"]["server"]["io_timeout_ms"] == 10000
   and r["result"]["server"]["idle_timeout_ms"] == 30000'

echo "== tick-truncated mining is labeled honestly and not cached"
client --op structural --support 8 --top 3 --threads 2 \
  --max-work-ticks 50 > "$WORK/truncated.json"
assert_json "$WORK/truncated.json" \
  'r["ok"] and r["result"]["outcome"] == "deadline_exceeded" and not r.get("cached")'
client --op stats > "$WORK/stats2.json"
assert_json "$WORK/stats2.json" 'r["result"]["cache"]["entries"] == 5'

echo "== mid-flight disconnect cancels the mining, server survives"
client --op structural --miner gspan --support 2 --max-edges 6 --reps 8 \
  --threads 2 --disconnect-after-ms 300 > /dev/null
for _ in $(seq 1 300); do
  client --op stats > "$WORK/stats3.json"
  if assert_json "$WORK/stats3.json" \
    'r["result"]["server"]["requests_cancelled"] >= 1' 2>/dev/null; then
    break
  fi
  sleep 0.1
done
assert_json "$WORK/stats3.json" \
  'r["result"]["server"]["requests_cancelled"] >= 1
   and r["result"]["server"]["inflight"] == 0'
client --op ping > "$WORK/ping_after.json"
assert_json "$WORK/ping_after.json" 'r["ok"]'

echo "== snapshot reload bumps the version and empties the cache"
client --op load_snapshot --path "$WORK/data2.csv" > "$WORK/reload.json"
assert_json "$WORK/reload.json" \
  'r["ok"] and r["result"]["version"] == 2'
client --op stats > "$WORK/stats4.json"
assert_json "$WORK/stats4.json" \
  'r["result"]["cache"]["entries"] == 0
   and r["result"]["cache"]["invalidations"] == 2
   and r["result"]["snapshot"]["version"] == 2'
client --op structural --support 8 --top 3 --threads 2 \
  > "$WORK/fresh1.json"
assert_json "$WORK/fresh1.json" \
  'r["ok"] and not r.get("cached") and r["result"]["outcome"] == "complete"'
client --op structural --support 8 --top 3 --threads 2 \
  > "$WORK/fresh2.json"
assert_json "$WORK/fresh2.json" 'r["ok"] and r["cached"] is True'

echo "== client --retry rides through an injected transient connect failure"
# The failpoint arms inside the *client* process: its first connect
# attempt fails as if the network blinked, the retry succeeds.
client --op ping --retry 3 --retry-backoff-ms 20 --retry-seed 7 \
  --failpoint wire/connect_fail:io:1 > "$WORK/retry.json"
assert_json "$WORK/retry.json" 'r["ok"]'
# Control: without --retry the same injected failure is fatal, and the
# error names the target address (not a bare "connect failed").
if client --op ping --failpoint wire/connect_fail:io:1 \
    > /dev/null 2> "$WORK/noretry.err"; then
  echo "expected connect failure without --retry" >&2
  exit 1
fi
grep -q "injected failure" "$WORK/noretry.err"
grep -q "$WORK/tnmined.sock" "$WORK/noretry.err"

echo "== every connection slot drains before shutdown"
client --op stats > "$WORK/stats5.json"
# Our own stats connection is the only one open at this point.
assert_json "$WORK/stats5.json" \
  'r["result"]["server"]["conn_open"] == 1
   and r["result"]["server"]["inflight"] == 0
   and r["result"]["server"]["accept_failures"] == 0'

echo "== shutdown over the wire flushes the RunReport"
client --op shutdown > /dev/null
for _ in $(seq 1 100); do
  kill -0 "$SERVER_PID" 2>/dev/null || break
  sleep 0.1
done
if kill -0 "$SERVER_PID" 2>/dev/null; then
  echo "tnmined still alive after shutdown request" >&2
  exit 1
fi
wait "$SERVER_PID" || true
SERVER_PID=""
assert_json "$OUT_DIR/RUNREPORT_server_smoke.json" \
  '"server/requests_total" in r["counters"]
   and r["counters"]["server/cache_hits"] >= 17
   and r["counters"]["server/snapshots_loaded"] == 2
   and "server/conn_accepted" in r["counters"]
   and "server/conn_closed" in r["counters"]
   and r["counters"]["server/conn_accepted"]
       == r["counters"]["server/conn_closed"]'

echo "server smoke: OK"
