// Differential scenario fuzzer: seeded end-to-end mining scenarios checked
// against cross-implementation oracles (the buzz-house "query oracle"
// style — two paths that must agree, disagreement is a bug in one of them).
//
// Each iteration draws a ScenarioConfig (synth/scenario.h): KK-generator
// parameters including the transportation-texture knobs (hub skew,
// seasonality, disruptions, motif concentration), an optional re-cut
// through the multilevel partitioner, a support threshold (0 and 1 are
// drawn on purpose), a pattern-size cap, a thread count, and a budget
// fraction. The scenario's transaction set is then mined along several
// legs and the oracles assert:
//
//   miner_equiv      gSpan and FSG produce the identical canonical-code ->
//                    {support, tid-set} map; at min_support <= 1 the two
//                    degenerate thresholds (0 and 1) also agree per miner.
//   parallel         N-thread runs are byte-identical to sequential runs
//                    (both miners promise this in their option docs).
//   encoding         Forced-sparse and forced-bitmap TidSet encodings
//                    yield byte-identical mined output (DESIGN.md §12).
//   budget_prefix    A tick-budgeted FSG run is an exact prefix of the
//                    unbudgeted pattern list; a tick-budgeted gSpan run is
//                    a subset with identical support/tids (not a prefix —
//                    see DESIGN.md §13 for why that divergence is benign).
//   support_monotone Raising min_support only removes patterns; survivors
//                    keep their exact support and tid set.
//   partition        Algorithm 1 with m repetitions covers every pattern
//                    an m'<m run finds (at >= the support), and the
//                    structural driver agrees across the two miners.
//   shard_equiv      Mining through a sharded TransactionSource — two
//                    in-memory shard cuts plus a real mmapped shard
//                    directory (DESIGN.md §16) — is byte-identical to
//                    the classic in-RAM run, for both miners, at
//                    multiple thread counts.
//
// Usage:
//   scenario_fuzz [--seed N] [--iters M]
//                 [--oracle miner_equiv|parallel|encoding|budget_prefix|
//                           support_monotone|partition|shard_equiv|all]
//                 [--artifact-dir DIR] [--replay FILE] [--corpus DIR]
//
// Exit status 0 when every iteration passes; 1 on the first failure after
// printing the oracle, seed, iteration, and detail needed to reproduce it
// (replay: scenario_fuzz --oracle X --seed <iter seed> --iters 1). With
// --artifact-dir, a sidecar recipe file is also written there containing a
// greedily minimized ScenarioConfig that still fails, replayable with
// --replay FILE; CI uploads the directory on failure (same shape as
// fuzz_io). --corpus replays every *.scenario file in a directory — the
// checked-in regression corpus under tests/scenario_corpus/ runs through
// this in the scenario_smoke ctest label.

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <map>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include <dirent.h>
#include <sys/stat.h>
#include <unistd.h>

#include "common/budget.h"
#include "common/check.h"
#include "common/parse.h"
#include "common/random.h"
#include "common/thread_pool.h"
#include "core/miner.h"
#include "fsg/fsg.h"
#include "graph/graph_view.h"
#include "graph/labeled_graph.h"
#include "graph/shard_store.h"
#include "graph/transaction_source.h"
#include "gspan/gspan.h"
#include "partition/multilevel.h"
#include "pattern/pattern.h"
#include "pattern/tid_set.h"
#include "synth/kk_generator.h"
#include "synth/scenario.h"

namespace {

using tnmine::Rng;
using tnmine::common::BudgetLimits;
using tnmine::common::MiningOutcome;
using tnmine::common::Parallelism;
using tnmine::common::ResourceBudget;
using tnmine::graph::LabeledGraph;
using tnmine::pattern::FrequentPattern;
using tnmine::pattern::TidSet;
using tnmine::synth::ScenarioConfig;
using tnmine::synth::ScenarioPartitioner;

/// code -> (support, ascending tids); the encoding- and order-independent
/// view two legs must agree on exactly.
using PatternMap =
    std::map<std::string, std::pair<std::size_t, std::vector<std::uint32_t>>>;

PatternMap ToMap(const std::vector<FrequentPattern>& patterns) {
  PatternMap map;
  for (const FrequentPattern& p : patterns) {
    map[p.code] = {p.support, p.tids.ToVector()};
  }
  return map;
}

/// One line per pattern, in emission order: "code#support@t0,t1,...".
/// Byte-identical fingerprints mean byte-identical mined output.
std::string Fingerprint(const std::vector<FrequentPattern>& patterns) {
  std::string out;
  for (const FrequentPattern& p : patterns) {
    out += p.code;
    out += '#';
    out += std::to_string(p.support);
    out += '@';
    bool first = true;
    for (const std::uint32_t tid : p.tids) {
      if (!first) out += ',';
      out += std::to_string(tid);
      first = false;
    }
    out += '\n';
  }
  return out;
}

/// Disjoint union of the transactions (vertex ids offset per graph) — the
/// "whole network" a partitioning scenario re-cuts.
LabeledGraph FlattenDisjoint(const std::vector<LabeledGraph>& transactions) {
  LabeledGraph flat;
  for (const LabeledGraph& txn : transactions) {
    std::vector<tnmine::graph::VertexId> map(txn.num_vertices());
    for (tnmine::graph::VertexId v = 0; v < txn.num_vertices(); ++v) {
      map[v] = flat.AddVertex(txn.vertex_label(v));
    }
    txn.ForEachEdge([&](tnmine::graph::EdgeId e) {
      const auto& edge = txn.edge(e);
      flat.AddEdge(map[edge.src], map[edge.dst], edge.label);
    });
  }
  return flat;
}

/// Materializes the scenario's transaction set (generator, then the
/// optional multilevel re-cut). Every returned graph is dense.
std::vector<LabeledGraph> BuildTransactions(const ScenarioConfig& config) {
  std::vector<LabeledGraph> txns =
      tnmine::synth::GenerateKkTransactions(config.generator).transactions;
  if (config.partitioner == ScenarioPartitioner::kNone) return txns;
  const LabeledGraph flat = FlattenDisjoint(txns);
  if (flat.num_edges() == 0) return {};
  tnmine::partition::MultilevelOptions options;
  options.num_partitions = std::max<std::size_t>(1, config.num_partitions);
  options.seed = config.generator.seed;
  const tnmine::partition::MultilevelResult cut =
      tnmine::partition::MultilevelPartition(flat, options);
  return tnmine::partition::ExtractPartitions(flat, cut.assignment);
}

tnmine::gspan::GspanResult RunGspan(const std::vector<LabeledGraph>& txns,
                                    const ScenarioConfig& config,
                                    std::size_t threads,
                                    const ResourceBudget& budget = {}) {
  tnmine::gspan::GspanOptions options;
  options.min_support = config.min_support;
  options.max_edges = config.max_edges;
  options.parallelism = Parallelism{threads};
  options.budget = budget;
  return tnmine::gspan::MineGspan(txns, options);
}

tnmine::fsg::FsgResult RunFsg(const std::vector<LabeledGraph>& txns,
                              const ScenarioConfig& config,
                              std::size_t threads,
                              const ResourceBudget& budget = {}) {
  tnmine::fsg::FsgOptions options;
  options.min_support = config.min_support;
  options.max_edges = config.max_edges;
  options.parallelism = Parallelism{threads};
  options.budget = budget;
  return tnmine::fsg::MineFsg(txns, options);
}

/// Source-based legs for the shard_equiv oracle (same knobs as
/// RunGspan/RunFsg, mined through a TransactionSource).
tnmine::gspan::GspanResult RunGspanSource(
    tnmine::graph::TransactionSource& source, const ScenarioConfig& config,
    std::size_t threads) {
  tnmine::gspan::GspanOptions options;
  options.min_support = config.min_support;
  options.max_edges = config.max_edges;
  options.parallelism = Parallelism{threads};
  return tnmine::gspan::MineGspan(source, options);
}

tnmine::fsg::FsgResult RunFsgSource(
    tnmine::graph::TransactionSource& source, const ScenarioConfig& config,
    std::size_t threads) {
  tnmine::fsg::FsgOptions options;
  options.min_support = config.min_support;
  options.max_edges = config.max_edges;
  options.parallelism = Parallelism{threads};
  return tnmine::fsg::MineFsg(source, options);
}

std::string DescribeMapDiff(const PatternMap& a, const char* a_name,
                            const PatternMap& b, const char* b_name) {
  for (const auto& [code, payload] : a) {
    auto it = b.find(code);
    if (it == b.end()) {
      return "pattern '" + code + "' (support " +
             std::to_string(payload.first) + ") found by " + a_name +
             " but not by " + b_name;
    }
    if (it->second.first != payload.first) {
      return "pattern '" + code + "' support " +
             std::to_string(payload.first) + " (" + a_name + ") vs " +
             std::to_string(it->second.first) + " (" + b_name + ")";
    }
    if (it->second.second != payload.second) {
      return "pattern '" + code + "' tid sets differ between " + a_name +
             " and " + b_name;
    }
  }
  for (const auto& [code, payload] : b) {
    if (a.find(code) == a.end()) {
      return "pattern '" + code + "' (support " +
             std::to_string(payload.first) + ") found by " + b_name +
             " but not by " + a_name;
    }
  }
  return "";
}

// ---------------------------------------------------------------------------
// Oracles. Each returns nullopt on agreement, a human-readable detail on
// disagreement. They all take the already-built transaction set so one
// generator run feeds every leg.

std::optional<std::string> OracleMinerEquiv(
    const std::vector<LabeledGraph>& txns, const ScenarioConfig& config) {
  const PatternMap gspan = ToMap(RunGspan(txns, config, 1).patterns);
  const PatternMap fsg = ToMap(RunFsg(txns, config, 1).patterns);
  std::string diff = DescribeMapDiff(gspan, "gspan", fsg, "fsg");
  if (!diff.empty()) return "miner_equiv: " + diff;
  if (config.min_support <= 1) {
    // The degenerate-threshold contract (GspanOptions / FsgOptions): 0 and
    // 1 are the same threshold, for both miners.
    ScenarioConfig zero = config;
    zero.min_support = 0;
    ScenarioConfig one = config;
    one.min_support = 1;
    if (Fingerprint(RunGspan(txns, zero, 1).patterns) !=
        Fingerprint(RunGspan(txns, one, 1).patterns)) {
      return "miner_equiv: gspan min_support=0 differs from min_support=1";
    }
    if (Fingerprint(RunFsg(txns, zero, 1).patterns) !=
        Fingerprint(RunFsg(txns, one, 1).patterns)) {
      return "miner_equiv: fsg min_support=0 differs from min_support=1";
    }
  }
  return std::nullopt;
}

std::optional<std::string> OracleParallel(
    const std::vector<LabeledGraph>& txns, const ScenarioConfig& config) {
  const std::size_t threads =
      static_cast<std::size_t>(std::max(2, config.num_threads));
  if (Fingerprint(RunGspan(txns, config, 1).patterns) !=
      Fingerprint(RunGspan(txns, config, threads).patterns)) {
    return "parallel: gspan with " + std::to_string(threads) +
           " threads is not byte-identical to sequential";
  }
  if (Fingerprint(RunFsg(txns, config, 1).patterns) !=
      Fingerprint(RunFsg(txns, config, threads).patterns)) {
    return "parallel: fsg with " + std::to_string(threads) +
           " threads is not byte-identical to sequential";
  }
  return std::nullopt;
}

std::optional<std::string> OracleEncoding(
    const std::vector<LabeledGraph>& txns, const ScenarioConfig& config) {
  std::string sparse_gspan, sparse_fsg, bitmap_gspan, bitmap_fsg;
  {
    TidSet::ScopedEncodingPolicy policy(
        TidSet::EncodingPolicy::kForceSparse);
    sparse_gspan = Fingerprint(RunGspan(txns, config, 1).patterns);
    sparse_fsg = Fingerprint(RunFsg(txns, config, 1).patterns);
  }
  {
    TidSet::ScopedEncodingPolicy policy(
        TidSet::EncodingPolicy::kForceBitmap);
    bitmap_gspan = Fingerprint(RunGspan(txns, config, 1).patterns);
    bitmap_fsg = Fingerprint(RunFsg(txns, config, 1).patterns);
  }
  if (sparse_gspan != bitmap_gspan) {
    return "encoding: gspan output depends on the TidSet encoding";
  }
  if (sparse_fsg != bitmap_fsg) {
    return "encoding: fsg output depends on the TidSet encoding";
  }
  return std::nullopt;
}

std::optional<std::string> OracleBudgetPrefix(
    const std::vector<LabeledGraph>& txns, const ScenarioConfig& config) {
  // Accounting-only budget (active, tick-unlimited): measures the
  // scenario's full deterministic tick cost without truncating anything.
  const auto accounting = [] { return ResourceBudget(BudgetLimits{}); };

  const tnmine::fsg::FsgResult fsg_full =
      RunFsg(txns, config, 1, accounting());
  if (fsg_full.work_ticks > 0) {
    BudgetLimits limits;
    limits.max_work_ticks = std::max<std::uint64_t>(
        1, static_cast<std::uint64_t>(
               static_cast<double>(fsg_full.work_ticks) *
               config.budget_fraction));
    const tnmine::fsg::FsgResult fsg_cut =
        RunFsg(txns, config, 1, ResourceBudget(limits));
    const std::string full = Fingerprint(fsg_full.patterns);
    const std::string cut = Fingerprint(fsg_cut.patterns);
    if (cut.size() > full.size() || full.compare(0, cut.size(), cut) != 0) {
      return "budget_prefix: tick-truncated fsg output is not a prefix of "
             "the unbudgeted pattern list (allotment " +
             std::to_string(limits.max_work_ticks) + " of " +
             std::to_string(fsg_full.work_ticks) + " ticks)";
    }
    if (fsg_cut.outcome == MiningOutcome::kComplete && cut != full) {
      return "budget_prefix: fsg reported kComplete but dropped patterns";
    }
  }

  const tnmine::gspan::GspanResult gspan_full =
      RunGspan(txns, config, 1, accounting());
  if (gspan_full.work_ticks > 0) {
    BudgetLimits limits;
    limits.max_work_ticks = std::max<std::uint64_t>(
        1, static_cast<std::uint64_t>(
               static_cast<double>(gspan_full.work_ticks) *
               config.budget_fraction));
    const tnmine::gspan::GspanResult gspan_cut =
        RunGspan(txns, config, 1, ResourceBudget(limits));
    // gSpan's truncated output is a subset with identical metadata, not a
    // prefix (per-seed tick slices shift dedup claims — DESIGN.md §13).
    const PatternMap full = ToMap(gspan_full.patterns);
    for (const FrequentPattern& p : gspan_cut.patterns) {
      auto it = full.find(p.code);
      if (it == full.end()) {
        return "budget_prefix: tick-truncated gspan found pattern '" +
               p.code + "' absent from the unbudgeted run";
      }
      if (it->second.first != p.support ||
          it->second.second != p.tids.ToVector()) {
        return "budget_prefix: tick-truncated gspan pattern '" + p.code +
               "' carries different support/tids than the unbudgeted run";
      }
    }
    if (gspan_cut.outcome == MiningOutcome::kComplete &&
        Fingerprint(gspan_cut.patterns) != Fingerprint(gspan_full.patterns)) {
      return "budget_prefix: gspan reported kComplete but its output "
             "differs from the unbudgeted run";
    }
  }
  return std::nullopt;
}

std::optional<std::string> OracleSupportMonotone(
    const std::vector<LabeledGraph>& txns, const ScenarioConfig& config) {
  const std::size_t low = std::max<std::size_t>(1, config.min_support);
  ScenarioConfig low_config = config;
  low_config.min_support = low;
  ScenarioConfig high_config = config;
  high_config.min_support = low + 1;
  const PatternMap at_low = ToMap(RunGspan(txns, low_config, 1).patterns);
  const PatternMap at_high = ToMap(RunGspan(txns, high_config, 1).patterns);
  for (const auto& [code, payload] : at_low) {
    if (payload.first < low) {
      return "support_monotone: pattern '" + code + "' reported support " +
             std::to_string(payload.first) + " below the threshold " +
             std::to_string(low);
    }
  }
  for (const auto& [code, payload] : at_high) {
    if (payload.first < low + 1) {
      return "support_monotone: pattern '" + code +
             "' survived min_support " + std::to_string(low + 1) +
             " with support " + std::to_string(payload.first);
    }
    auto it = at_low.find(code);
    if (it == at_low.end()) {
      return "support_monotone: pattern '" + code +
             "' found at min_support " + std::to_string(low + 1) +
             " but not at " + std::to_string(low);
    }
    if (it->second != payload) {
      return "support_monotone: pattern '" + code +
             "' changed support/tids when the threshold rose";
    }
  }
  return std::nullopt;
}

std::optional<std::string> OraclePartition(
    const std::vector<LabeledGraph>& txns, const ScenarioConfig& config) {
  // Algorithm 1 over the flattened network: more repetitions may only add
  // patterns (the union keeps the max support), and the driver's result
  // must not depend on which miner ran underneath.
  const LabeledGraph flat = FlattenDisjoint(txns);
  if (flat.num_edges() == 0) return std::nullopt;
  auto run = [&](tnmine::core::MinerKind miner, std::size_t reps) {
    tnmine::core::StructuralMiningOptions options;
    options.num_partitions = std::max<std::size_t>(1, config.num_partitions);
    options.repetitions = reps;
    options.min_support = config.min_support;
    options.max_pattern_edges = config.max_edges;
    options.miner = miner;
    options.seed = config.generator.seed;
    options.parallelism = Parallelism{1};
    return tnmine::core::MineStructuralPatterns(flat, options);
  };
  const auto one = run(tnmine::core::MinerKind::kFsg, 1);
  const auto three = run(tnmine::core::MinerKind::kFsg, 3);
  for (const FrequentPattern* p : one.registry.SortedBySupport()) {
    const FrequentPattern* in_three = three.registry.Find(p->code);
    if (in_three == nullptr) {
      return "partition: pattern '" + p->code +
             "' from the 1-repetition union is missing from the "
             "3-repetition union";
    }
    if (in_three->support < p->support) {
      return "partition: pattern '" + p->code + "' support dropped from " +
             std::to_string(p->support) + " (1 rep) to " +
             std::to_string(in_three->support) + " (3 reps)";
    }
  }
  const auto three_gspan = run(tnmine::core::MinerKind::kGspan, 3);
  if (three_gspan.registry.size() != three.registry.size()) {
    return "partition: structural driver found " +
           std::to_string(three.registry.size()) + " patterns under fsg vs " +
           std::to_string(three_gspan.registry.size()) + " under gspan";
  }
  for (const FrequentPattern* p : three.registry.SortedBySupport()) {
    const FrequentPattern* other = three_gspan.registry.Find(p->code);
    if (other == nullptr || other->support != p->support) {
      return "partition: structural driver disagrees across miners on "
             "pattern '" +
             p->code + "'";
    }
  }
  return std::nullopt;
}

std::optional<std::string> OracleShardEquiv(
    const std::vector<LabeledGraph>& txns, const ScenarioConfig& config) {
  const std::string fsg_ref = Fingerprint(RunFsg(txns, config, 1).patterns);
  const std::string gspan_ref =
      Fingerprint(RunGspan(txns, config, 1).patterns);
  const std::size_t threads =
      static_cast<std::size_t>(std::max(2, config.num_threads));

  std::vector<tnmine::graph::GraphView> views;
  views.reserve(txns.size());
  for (const LabeledGraph& t : txns) views.emplace_back(t);

  const std::size_t n = txns.size();
  const auto check = [&](tnmine::graph::TransactionSource& source,
                         const std::string& leg)
      -> std::optional<std::string> {
    for (const std::size_t t : {std::size_t{1}, threads}) {
      if (Fingerprint(RunFsgSource(source, config, t).patterns) !=
          fsg_ref) {
        return "shard_equiv: fsg over " + leg + " with " +
               std::to_string(t) +
               " threads is not byte-identical to the in-memory run";
      }
      if (Fingerprint(RunGspanSource(source, config, t).patterns) !=
          gspan_ref) {
        return "shard_equiv: gspan over " + leg + " with " +
               std::to_string(t) +
               " threads is not byte-identical to the in-memory run";
      }
    }
    return std::nullopt;
  };

  // In-memory shard cuts: the file-free multi-shard aggregation path.
  for (const std::size_t cut : {std::max<std::size_t>(1, n / 3),
                                std::max<std::size_t>(1, (n + 1) / 2)}) {
    tnmine::graph::InMemoryTransactionSource source(views, cut);
    if (auto diff = check(source, "in-memory shards of " +
                                      std::to_string(cut))) {
      return diff;
    }
  }

  // Real shard files: serialize, mmap, and mine through the LRU cache.
  if (n > 0) {
    char tmpl[] = "/tmp/shard-equiv-XXXXXX";
    if (mkdtemp(tmpl) == nullptr) {
      return std::string("shard_equiv: mkdtemp failed");
    }
    const std::string dir = tmpl;
    const std::size_t cut = std::max<std::size_t>(1, (n + 2) / 3);
    std::size_t shards = 0;
    std::string error;
    bool write_ok = true;
    for (std::size_t start = 0; start < n && write_ok; start += cut) {
      tnmine::graph::ShardWriter writer(
          dir + "/" + tnmine::graph::ShardFileName(shards));
      for (std::size_t i = start; i < std::min(start + cut, n); ++i) {
        writer.Add(views[i]);
      }
      write_ok = writer.Finish(&error);
      ++shards;
    }
    std::optional<std::string> diff;
    if (!write_ok) {
      diff = "shard_equiv: shard write failed: " + error;
    } else {
      tnmine::graph::ShardedTransactionSource::Options options;
      options.max_resident_shards = 2;
      options.verify_fingerprints = true;
      const auto source = tnmine::graph::ShardedTransactionSource::Open(
          dir, options, &error);
      diff = source == nullptr
                 ? std::optional<std::string>(
                       "shard_equiv: cannot open shard dir: " + error)
                 : check(*source, "mmapped shard files of " +
                                      std::to_string(cut));
    }
    for (std::size_t i = 0; i < shards; ++i) {
      unlink((dir + "/" + tnmine::graph::ShardFileName(i)).c_str());
    }
    rmdir(dir.c_str());
    if (diff.has_value()) return diff;
  }
  return std::nullopt;
}

// ---------------------------------------------------------------------------

struct Oracle {
  const char* name;
  std::function<std::optional<std::string>(const std::vector<LabeledGraph>&,
                                           const ScenarioConfig&)>
      check;
};

const std::vector<Oracle>& Oracles() {
  static const std::vector<Oracle> oracles = {
      {"miner_equiv", OracleMinerEquiv},
      {"parallel", OracleParallel},
      {"encoding", OracleEncoding},
      {"budget_prefix", OracleBudgetPrefix},
      {"support_monotone", OracleSupportMonotone},
      {"partition", OraclePartition},
      {"shard_equiv", OracleShardEquiv},
  };
  return oracles;
}

/// Runs one oracle over one scenario, translating crashes-by-exception
/// into failure details (a thrown TNMINE_CHECK inside a miner is exactly
/// the kind of edge-case bug the fuzzer exists to flush out).
std::optional<std::string> RunOracle(const Oracle& oracle,
                                     const ScenarioConfig& config) {
  try {
    const std::vector<LabeledGraph> txns = BuildTransactions(config);
    return oracle.check(txns, config);
  } catch (const std::exception& e) {
    return std::string("uncaught exception: ") + e.what();
  }
}

/// Greedy scenario shrinking: repeatedly tries simpler configs (texture
/// knobs off, fewer/smaller transactions, no partitioner, fewer labels)
/// and keeps any that still fail the same oracle. Bounded work: each pass
/// tries a fixed candidate list, and every accepted candidate strictly
/// shrinks the scenario.
ScenarioConfig MinimizeScenario(const Oracle& oracle, ScenarioConfig config) {
  bool changed = true;
  int rounds = 0;
  while (changed && rounds++ < 16) {
    changed = false;
    std::vector<ScenarioConfig> candidates;
    auto push = [&](auto&& mutate) {
      ScenarioConfig c = config;
      mutate(c);
      candidates.push_back(c);
    };
    if (config.partitioner != ScenarioPartitioner::kNone) {
      push([](ScenarioConfig& c) {
        c.partitioner = ScenarioPartitioner::kNone;
      });
    }
    if (config.generator.hub_skew > 0) {
      push([](ScenarioConfig& c) { c.generator.hub_skew = 0; });
    }
    if (config.generator.seasonality_period > 0) {
      push([](ScenarioConfig& c) { c.generator.seasonality_period = 0; });
    }
    if (config.generator.disruption_rate > 0) {
      push([](ScenarioConfig& c) { c.generator.disruption_rate = 0; });
    }
    if (config.generator.motif_concentration > 0) {
      push([](ScenarioConfig& c) { c.generator.motif_concentration = 0; });
    }
    if (config.generator.num_transactions > 1) {
      push([](ScenarioConfig& c) { c.generator.num_transactions /= 2; });
      push([](ScenarioConfig& c) { c.generator.num_transactions -= 1; });
    }
    if (config.generator.num_seed_patterns > 0) {
      push([](ScenarioConfig& c) { c.generator.num_seed_patterns -= 1; });
    }
    if (config.generator.avg_transaction_edges > 2.0) {
      push([](ScenarioConfig& c) { c.generator.avg_transaction_edges /= 2; });
    }
    if (config.generator.num_vertex_labels > 1) {
      push([](ScenarioConfig& c) { c.generator.num_vertex_labels = 1; });
    }
    if (config.generator.num_edge_labels > 1) {
      push([](ScenarioConfig& c) { c.generator.num_edge_labels = 1; });
    }
    if (config.max_edges > 1) {
      push([](ScenarioConfig& c) { c.max_edges -= 1; });
    }
    for (const ScenarioConfig& candidate : candidates) {
      if (RunOracle(oracle, candidate).has_value()) {
        config = candidate;
        changed = true;
        break;
      }
    }
  }
  return config;
}

int Usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s [--seed N] [--iters M] [--oracle NAME|all]\n"
      "          [--artifact-dir DIR] [--replay FILE] [--corpus DIR]\n"
      "oracles: miner_equiv parallel encoding budget_prefix "
      "support_monotone partition shard_equiv\n",
      argv0);
  return 2;
}

bool WriteFile(const std::string& path, const std::string& bytes) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) return false;
  const bool ok = bytes.empty() ||
                  std::fwrite(bytes.data(), 1, bytes.size(), f) ==
                      bytes.size();
  return std::fclose(f) == 0 && ok;
}

bool ReadFile(const std::string& path, std::string* out) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return false;
  char buf[4096];
  std::size_t n = 0;
  out->clear();
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) out->append(buf, n);
  const bool ok = std::ferror(f) == 0;
  std::fclose(f);
  return ok;
}

/// Persists the failing scenario's recipe sidecar (fuzz_io shape): replay
/// metadata first, then the minimized config — the whole file parses back
/// through ParseScenario (metadata keys are ignored by the parser).
void WriteFailureArtifact(const std::string& dir, const Oracle& oracle,
                          std::uint64_t base_seed, std::uint64_t iteration,
                          std::uint64_t iter_seed, const std::string& detail,
                          const ScenarioConfig& minimized) {
  const std::string path = dir + "/failing_scenario_" +
                           std::string(oracle.name) + "_" +
                           std::to_string(iter_seed) + ".scenario";
  std::string meta;
  meta += "oracle: " + std::string(oracle.name) + "\n";
  meta += "base_seed: " + std::to_string(base_seed) + "\n";
  meta += "iteration: " + std::to_string(iteration) + "\n";
  meta += "iter_seed: " + std::to_string(iter_seed) + "\n";
  meta += "detail: " + detail + "\n";
  meta += "replay: scenario_fuzz --oracle " + std::string(oracle.name) +
          " --seed " + std::to_string(iter_seed) + " --iters 1\n";
  meta += "minimized_replay: scenario_fuzz --replay " + path + "\n";
  meta += tnmine::synth::SerializeScenario(minimized);
  if (!WriteFile(path, meta)) {
    std::fprintf(stderr, "scenario_fuzz: cannot write artifact under %s\n",
                 dir.c_str());
    return;
  }
  std::fprintf(stderr, "scenario_fuzz: failing scenario saved to %s\n",
               path.c_str());
}

/// Replays one scenario file against its recorded oracle (or all oracles
/// when the file carries no "oracle:" line). Returns true on agreement.
bool ReplayFile(const std::string& path) {
  std::string text;
  if (!ReadFile(path, &text)) {
    std::fprintf(stderr, "scenario_fuzz: cannot read %s\n", path.c_str());
    return false;
  }
  ScenarioConfig config;
  std::string error;
  if (!tnmine::synth::ParseScenario(text, &config, &error)) {
    std::fprintf(stderr, "scenario_fuzz: %s: %s\n", path.c_str(),
                 error.c_str());
    return false;
  }
  std::string oracle_name = "all";
  tnmine::ForEachLine(text, [&](std::size_t, std::string_view line) {
    if (line.rfind("oracle:", 0) == 0) {
      std::string_view v = line.substr(std::strlen("oracle:"));
      while (!v.empty() && v.front() == ' ') v.remove_prefix(1);
      oracle_name = std::string(v);
      return false;
    }
    return true;
  });
  bool ok = true;
  for (const Oracle& oracle : Oracles()) {
    if (oracle_name != "all" && oracle_name != oracle.name) continue;
    const std::optional<std::string> failure = RunOracle(oracle, config);
    if (failure.has_value()) {
      std::fprintf(stderr, "scenario_fuzz: %s: %s FAILS: %s\n", path.c_str(),
                   oracle.name, failure->c_str());
      ok = false;
    }
  }
  if (ok) {
    std::printf("scenario_fuzz: %s OK (%s)\n", path.c_str(),
                oracle_name.c_str());
  }
  return ok;
}

/// Replays every *.scenario file under `dir`, in name order.
bool ReplayCorpus(const std::string& dir) {
  DIR* d = opendir(dir.c_str());
  if (d == nullptr) {
    std::fprintf(stderr, "scenario_fuzz: cannot open corpus dir %s\n",
                 dir.c_str());
    return false;
  }
  std::vector<std::string> files;
  while (const dirent* entry = readdir(d)) {
    const std::string name = entry->d_name;
    const std::string suffix = ".scenario";
    if (name.size() > suffix.size() &&
        name.compare(name.size() - suffix.size(), suffix.size(), suffix) ==
            0) {
      files.push_back(dir + "/" + name);
    }
  }
  closedir(d);
  std::sort(files.begin(), files.end());
  if (files.empty()) {
    std::fprintf(stderr, "scenario_fuzz: no *.scenario files in %s\n",
                 dir.c_str());
    return false;
  }
  bool ok = true;
  for (const std::string& file : files) ok = ReplayFile(file) && ok;
  return ok;
}

}  // namespace

int main(int argc, char** argv) {
  std::uint64_t seed = 1;
  std::uint64_t iters = 200;
  std::string oracle_name = "all";
  std::string artifact_dir;
  std::string replay_path;
  std::string corpus_dir;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "scenario_fuzz: %s requires a value\n", flag);
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--seed") {
      seed = std::strtoull(next("--seed"), nullptr, 10);
    } else if (arg == "--iters") {
      iters = std::strtoull(next("--iters"), nullptr, 10);
    } else if (arg == "--oracle") {
      oracle_name = next("--oracle");
    } else if (arg == "--artifact-dir") {
      artifact_dir = next("--artifact-dir");
    } else if (arg == "--replay") {
      replay_path = next("--replay");
    } else if (arg == "--corpus") {
      corpus_dir = next("--corpus");
    } else if (arg == "--help" || arg == "-h") {
      return Usage(argv[0]);
    } else {
      std::fprintf(stderr, "scenario_fuzz: unknown argument '%s'\n",
                   arg.c_str());
      return Usage(argv[0]);
    }
  }

  if (!replay_path.empty()) return ReplayFile(replay_path) ? 0 : 1;
  if (!corpus_dir.empty()) return ReplayCorpus(corpus_dir) ? 0 : 1;

  bool matched = false;
  for (const Oracle& oracle : Oracles()) {
    if (oracle_name != "all" && oracle_name != oracle.name) continue;
    matched = true;
    for (std::uint64_t i = 0; i < iters; ++i) {
      // Independent per-iteration seed (golden-ratio stride), so a failure
      // replays alone: --seed <iter seed> --iters 1.
      const std::uint64_t iter_seed = seed + i * 0x9E3779B97F4A7C15ULL;
      Rng rng(iter_seed);
      const ScenarioConfig config = tnmine::synth::DrawScenario(rng);
      const std::optional<std::string> failure = RunOracle(oracle, config);
      if (!failure.has_value()) continue;
      std::fprintf(stderr,
                   "scenario_fuzz FAILURE\n  oracle:    %s\n  base seed: "
                   "%llu\n  iteration: %llu\n  iter seed: %llu\n  detail:  "
                   "  %s\n",
                   oracle.name, static_cast<unsigned long long>(seed),
                   static_cast<unsigned long long>(i),
                   static_cast<unsigned long long>(iter_seed),
                   failure->c_str());
      if (!artifact_dir.empty()) {
        const ScenarioConfig minimized = MinimizeScenario(oracle, config);
        WriteFailureArtifact(artifact_dir, oracle, seed, i, iter_seed,
                             *failure, minimized);
      }
      return 1;
    }
    std::printf("scenario_fuzz: %-16s %llu iterations OK\n", oracle.name,
                static_cast<unsigned long long>(iters));
  }
  if (!matched) {
    std::fprintf(stderr, "scenario_fuzz: unknown oracle '%s'\n",
                 oracle_name.c_str());
    return Usage(argv[0]);
  }
  return 0;
}
