#!/usr/bin/env python3
"""Compares a fresh benchmark result against a committed baseline.

Two input shapes are understood, matched automatically:

* RunReport JSON objects (telemetry::RenderRunReport: a dict with a
  "counters" map and a "wall_seconds" scalar). Counters are compared
  pairwise; wall time is compared as a scalar.
* Row-list JSON (bench_util.h JsonRowWriter: a list of flat dicts, e.g.
  BENCH_parallel.json). Rows are matched on every field except "seconds",
  and "seconds" is compared.

A metric REGRESSES when the current value exceeds the baseline by more
than the tolerance (default 20%, i.e. 0.2). Improvements never fail.
Baseline entries that CANNOT be compared are never silently skipped:
a baseline counter or row absent from the fresh run is a regression
(the workload shrank or the row key drifted), while malformed baseline
entries (a row without "seconds") and non-positive baseline values are
reported as ::notice:: annotations — visible in the job log but never
affecting the exit code, since there is nothing meaningful to compare.
Counters that describe the schedule rather than the computation are
skipped (they legitimately differ across machines and thread counts):
"threadpool/*", plus the scratch-pool hit/miss split
("scratch/reuse_hits", "scratch/fresh_allocs" — which thread's pool was
warm is scheduling; "scratch/acquires" IS deterministic and is checked).
The TID-set kernel counters ("tidset/intersect_words",
"tidset/gallop_steps") and the FSG join-prune counter
("fsg/feasible_pruned_by_join") are deterministic functions of the
workload and encoding policy — identical across thread counts — so they
get no skip entry and ARE compared.

Override knob: pass --tolerance or set TNMINE_BENCH_TOLERANCE (a float;
e.g. 0.5 for 50%). CI runs this as a non-blocking job: regressions print
GitHub ::warning:: annotations and exit 1, but the job is marked
continue-on-error so it annotates the PR without gating it.

--require-counter NAME (repeatable, RunReport shape only) asserts the
counter exists in the *fresh* run regardless of the baseline — the guard
for telemetry the code is contractually supposed to emit (e.g. the
server/conn_* connection-lifecycle counters): a build that silently
stops emitting one is a regression even if the baseline predates it.

Usage:
  tools/check_bench_regression.py --baseline bench/baselines/X.json \
      --current /tmp/X.json [--tolerance 0.2] [--require-counter NAME]

Exit codes: 0 clean, 1 regression found, 2 usage/input error.
"""

import argparse
import json
import os
import sys


def github_annotate(level, message):
    """Prints a GitHub Actions annotation (plain text elsewhere)."""
    if os.environ.get("GITHUB_ACTIONS") == "true":
        print(f"::{level}::{message}")
    else:
        print(f"{level}: {message}")


def load(path):
    try:
        with open(path, "r", encoding="utf-8") as f:
            return json.load(f)
    except (OSError, ValueError) as err:
        github_annotate("error", f"cannot read {path}: {err}")
        sys.exit(2)


def exceeds(current, baseline, tolerance):
    """True when `current` regressed past `baseline` by > tolerance."""
    if baseline <= 0:
        return False  # nothing meaningful to compare against
    return current > baseline * (1.0 + tolerance)


# Schedule-dependent counters (see DESIGN.md §9): legitimate to differ
# between machines/thread counts, so never compared.
SCHEDULE_COUNTER_PREFIXES = (
    "threadpool/",
    "scratch/reuse_hits",
    "scratch/fresh_allocs",
)


def compare_runreports(baseline, current, tolerance):
    regressions = []
    notices = []
    base_counters = baseline.get("counters", {})
    cur_counters = current.get("counters", {})
    for name, base_value in sorted(base_counters.items()):
        if name.startswith(SCHEDULE_COUNTER_PREFIXES):
            continue
        cur_value = cur_counters.get(name)
        if cur_value is None:
            regressions.append(f"counter {name} vanished "
                               f"(baseline {base_value})")
            continue
        if base_value <= 0:
            notices.append(f"counter {name} has non-positive baseline "
                           f"{base_value}; not compared")
            continue
        if exceeds(cur_value, base_value, tolerance):
            regressions.append(
                f"counter {name}: {base_value} -> {cur_value} "
                f"(+{100.0 * (cur_value / base_value - 1):.1f}%)")
    base_wall = baseline.get("wall_seconds", 0.0)
    cur_wall = current.get("wall_seconds", 0.0)
    if base_wall <= 0:
        notices.append(f"wall_seconds has non-positive baseline "
                       f"{base_wall}; not compared")
    elif exceeds(cur_wall, base_wall, tolerance):
        regressions.append(
            f"wall_seconds: {base_wall:.3f} -> {cur_wall:.3f} "
            f"(+{100.0 * (cur_wall / base_wall - 1):.1f}%)")
    return regressions, notices


def row_key(row):
    return tuple(sorted((k, v) for k, v in row.items() if k != "seconds"))


def compare_row_lists(baseline, current, tolerance):
    regressions = []
    notices = []
    current_by_key = {row_key(row): row for row in current}
    for row in baseline:
        if "seconds" not in row:
            notices.append(f"baseline row {dict(row_key(row))} has no "
                           "\"seconds\" field; not compared")
            continue
        match = current_by_key.get(row_key(row))
        if match is None:
            regressions.append(f"row {dict(row_key(row))} vanished")
            continue
        if "seconds" not in match:
            regressions.append(f"row {dict(row_key(row))} present in the "
                               "fresh run but lost its \"seconds\" field")
            continue
        if row["seconds"] <= 0:
            notices.append(f"row {dict(row_key(row))} has non-positive "
                           f"baseline seconds {row['seconds']}; "
                           "not compared")
            continue
        if exceeds(match["seconds"], row["seconds"], tolerance):
            regressions.append(
                f"row {dict(row_key(row))}: {row['seconds']:.3f}s -> "
                f"{match['seconds']:.3f}s "
                f"(+{100.0 * (match['seconds'] / row['seconds'] - 1):.1f}%)")
    return regressions, notices


def main():
    parser = argparse.ArgumentParser(
        description="Fail on >tolerance wall-time or counter regressions.")
    parser.add_argument("--baseline", required=True,
                        help="committed baseline JSON")
    parser.add_argument("--current", required=True,
                        help="freshly produced JSON of the same shape")
    parser.add_argument(
        "--require-counter", action="append", default=[],
        metavar="NAME",
        help="counter that must exist in the fresh RunReport (repeatable); "
             "a missing one is a regression even when absent from the "
             "baseline")
    parser.add_argument(
        "--tolerance", type=float,
        default=float(os.environ.get("TNMINE_BENCH_TOLERANCE", "0.2")),
        help="allowed relative growth before failing (default 0.2 = 20%%; "
             "env TNMINE_BENCH_TOLERANCE overrides)")
    args = parser.parse_args()

    baseline = load(args.baseline)
    current = load(args.current)
    if isinstance(baseline, dict) != isinstance(current, dict):
        github_annotate("error",
                        f"{args.baseline} and {args.current} have "
                        "different shapes")
        return 2
    if isinstance(baseline, dict):
        regressions, notices = compare_runreports(baseline, current,
                                                  args.tolerance)
        for name in args.require_counter:
            if name not in current.get("counters", {}):
                regressions.append(
                    f"required counter {name} missing from the fresh run")
    else:
        if args.require_counter:
            github_annotate("error", "--require-counter only applies to "
                            "RunReport-shaped inputs")
            return 2
        regressions, notices = compare_row_lists(baseline, current,
                                                 args.tolerance)

    for n in notices:
        github_annotate(
            "notice",
            f"bench baseline {os.path.basename(args.baseline)}: {n}")
    if regressions:
        for r in regressions:
            github_annotate(
                "warning",
                f"bench regression vs {os.path.basename(args.baseline)}: "
                f"{r}")
        print(f"{len(regressions)} regression(s) beyond "
              f"{100 * args.tolerance:.0f}% tolerance")
        return 1
    print(f"no regressions vs {args.baseline} "
          f"(tolerance {100 * args.tolerance:.0f}%)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
