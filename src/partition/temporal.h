#ifndef TNMINE_PARTITION_TEMPORAL_H_
#define TNMINE_PARTITION_TEMPORAL_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/binning.h"
#include "common/budget.h"
#include "data/dataset.h"
#include "data/od_graph.h"
#include "graph/labeled_graph.h"

namespace tnmine::partition {

/// Options for Section 6's temporal partitioning ("Temporally Repeated
/// Routes").
struct TemporalOptions {
  /// Edge-labeling attribute (the paper used gross weight ranges).
  data::EdgeAttribute attribute = data::EdgeAttribute::kGrossWeight;
  /// Number of attribute bins (seven weight ranges in the paper).
  int num_bins = 7;
  /// Equal-frequency ranges (default) keep all bins populated despite
  /// heavy-tailed attributes; false = equal-width.
  bool equal_frequency = true;
  /// Drop whole days whose active graph has at least this many distinct
  /// vertex labels (the paper's Table-3 run kept "dates with fewer than
  /// 200 distinct vertex labels"). 0 disables the filter.
  std::size_t max_distinct_vertex_labels = 0;
  /// Remove duplicate (src, dst, label) edges within each day ("FSG
  /// operates on graphs, not multigraphs").
  bool deduplicate_edges = true;
  /// Break each day's graph into weakly connected components.
  bool split_components = true;
  /// Drop transactions with a single edge ("eliminated as not producing
  /// interesting patterns").
  bool remove_single_edge_transactions = true;
  /// Resource governance (one tick per active transaction-day; the day
  /// loop is sequential, so tick truncation is deterministic). Default:
  /// inert.
  common::ResourceBudget budget;
};

/// The per-day graph-transaction set.
struct TemporalPartition {
  /// Graph transactions ready for a transaction-set miner.
  std::vector<graph::LabeledGraph> transactions;
  /// Day number each transaction came from (parallel to `transactions`).
  std::vector<std::int64_t> transaction_day;
  /// The global edge-label discretizer (shared across all days so the same
  /// route supports the same pattern on different days).
  Discretizer discretizer = Discretizer::FromCutPoints({});
  /// Global location -> vertex-label map (stable across days, which is
  /// what lets patterns recur "in the same location across time").
  std::unordered_map<data::LocationKey, graph::Label> location_label;
  /// Number of days dropped by the vertex-label filter.
  std::size_t days_filtered_out = 0;
  /// How the partitioning ended. Anything but kComplete means the day
  /// loop stopped early: transactions for the days processed so far are
  /// complete and valid; later days are missing.
  common::MiningOutcome outcome = common::MiningOutcome::kComplete;
  std::uint64_t work_ticks = 0;
};

/// Builds one graph per calendar day containing every OD pair active on
/// that day (a transaction is active on each day d with
/// req_pickup_day <= d <= req_delivery_day), with location-unique vertex
/// labels and binned edge labels, then applies the configured filters.
TemporalPartition PartitionByActiveDay(const data::TransactionDataset& data,
                                       const TemporalOptions& options);

/// Table-2-style statistics over a temporal transaction set.
struct TemporalStats {
  std::size_t num_transactions = 0;
  std::size_t distinct_edge_labels = 0;
  std::size_t distinct_vertex_labels = 0;
  double avg_edges = 0.0;
  double avg_vertices = 0.0;
  std::size_t max_edges = 0;
  std::size_t max_vertices = 0;
  /// Transaction counts by edge-count bucket, Table 2's breakdown:
  /// [1,10), [10,100), [100,1000), [1000,2000), [2000,5000), [5000, inf).
  std::size_t size_buckets[6] = {0, 0, 0, 0, 0, 0};
};

TemporalStats ComputeTemporalStats(
    const std::vector<graph::LabeledGraph>& transactions);

}  // namespace tnmine::partition

#endif  // TNMINE_PARTITION_TEMPORAL_H_
