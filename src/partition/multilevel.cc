#include "partition/multilevel.h"

#include <algorithm>
#include <numeric>
#include <unordered_map>

#include "common/check.h"
#include "common/random.h"

namespace tnmine::partition {

namespace {

/// Undirected weighted working graph used internally by the multilevel
/// scheme. Parallel input edges are collapsed into weights; self-loops are
/// dropped (they never contribute to a cut).
struct WorkGraph {
  std::vector<std::uint32_t> vertex_weight;
  // adj[v] = (neighbor, edge weight), each undirected edge stored twice.
  std::vector<std::vector<std::pair<std::uint32_t, std::uint32_t>>> adj;

  std::size_t size() const { return vertex_weight.size(); }
  std::uint64_t total_vertex_weight() const {
    return std::accumulate(vertex_weight.begin(), vertex_weight.end(),
                           std::uint64_t{0});
  }
};

WorkGraph FromLabeledGraph(const graph::LabeledGraph& g) {
  WorkGraph w;
  w.vertex_weight.assign(g.num_vertices(), 1);
  w.adj.resize(g.num_vertices());
  std::unordered_map<std::uint64_t, std::uint32_t> weight;
  g.ForEachEdge([&](graph::EdgeId e) {
    const auto& edge = g.edge(e);
    if (edge.src == edge.dst) return;
    const std::uint32_t a = std::min(edge.src, edge.dst);
    const std::uint32_t b = std::max(edge.src, edge.dst);
    ++weight[(static_cast<std::uint64_t>(a) << 32) | b];
  });
  for (const auto& [key, wgt] : weight) {
    const std::uint32_t a = static_cast<std::uint32_t>(key >> 32);
    const std::uint32_t b = static_cast<std::uint32_t>(key & 0xFFFFFFFFu);
    w.adj[a].emplace_back(b, wgt);
    w.adj[b].emplace_back(a, wgt);
  }
  return w;
}

/// One coarsening step: heavy-edge matching. Returns the coarse graph and
/// fills fine_to_coarse.
WorkGraph Coarsen(const WorkGraph& fine, Rng& rng,
                  std::vector<std::uint32_t>* fine_to_coarse) {
  const std::size_t n = fine.size();
  std::vector<std::uint32_t> match(n, ~std::uint32_t{0});
  std::vector<std::uint32_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  rng.Shuffle(order);
  for (std::uint32_t v : order) {
    if (match[v] != ~std::uint32_t{0}) continue;
    std::uint32_t best = v;  // default: match with self (singleton)
    std::uint32_t best_weight = 0;
    for (const auto& [nbr, wgt] : fine.adj[v]) {
      if (match[nbr] == ~std::uint32_t{0} && wgt > best_weight) {
        best = nbr;
        best_weight = wgt;
      }
    }
    match[v] = best;
    match[best] = v;
  }
  fine_to_coarse->assign(n, 0);
  std::uint32_t next = 0;
  for (std::uint32_t v = 0; v < n; ++v) {
    if (match[v] >= v) {  // representative of its pair (or singleton)
      (*fine_to_coarse)[v] = next;
      if (match[v] != v && match[v] != ~std::uint32_t{0}) {
        (*fine_to_coarse)[match[v]] = next;
      }
      ++next;
    }
  }
  WorkGraph coarse;
  coarse.vertex_weight.assign(next, 0);
  coarse.adj.resize(next);
  for (std::uint32_t v = 0; v < n; ++v) {
    coarse.vertex_weight[(*fine_to_coarse)[v]] += fine.vertex_weight[v];
  }
  std::unordered_map<std::uint64_t, std::uint32_t> weight;
  for (std::uint32_t v = 0; v < n; ++v) {
    for (const auto& [nbr, wgt] : fine.adj[v]) {
      if (nbr < v) continue;  // visit each undirected edge once
      const std::uint32_t a = (*fine_to_coarse)[v];
      const std::uint32_t b = (*fine_to_coarse)[nbr];
      if (a == b) continue;
      const std::uint32_t lo = std::min(a, b), hi = std::max(a, b);
      weight[(static_cast<std::uint64_t>(lo) << 32) | hi] += wgt;
    }
  }
  for (const auto& [key, wgt] : weight) {
    const std::uint32_t a = static_cast<std::uint32_t>(key >> 32);
    const std::uint32_t b = static_cast<std::uint32_t>(key & 0xFFFFFFFFu);
    coarse.adj[a].emplace_back(b, wgt);
    coarse.adj[b].emplace_back(a, wgt);
  }
  return coarse;
}

/// Greedy region-growing initial partition of the coarsest graph.
std::vector<std::uint32_t> InitialPartition(const WorkGraph& g,
                                            std::size_t k, Rng& rng) {
  const std::size_t n = g.size();
  std::vector<std::uint32_t> part(n, ~std::uint32_t{0});
  const double target =
      static_cast<double>(g.total_vertex_weight()) / static_cast<double>(k);
  std::size_t assigned = 0;
  for (std::size_t p = 0; p + 1 < k && assigned < n; ++p) {
    double weight = 0.0;
    while (weight < target && assigned < n) {
      // Seed from a random unassigned vertex.
      std::uint32_t seed = ~std::uint32_t{0};
      for (std::size_t tries = 0; tries < 2 * n; ++tries) {
        const std::uint32_t v =
            static_cast<std::uint32_t>(rng.NextBounded(n));
        if (part[v] == ~std::uint32_t{0}) {
          seed = v;
          break;
        }
      }
      if (seed == ~std::uint32_t{0}) {
        for (std::uint32_t v = 0; v < n; ++v) {
          if (part[v] == ~std::uint32_t{0}) {
            seed = v;
            break;
          }
        }
      }
      if (seed == ~std::uint32_t{0}) break;
      // BFS growth.
      std::vector<std::uint32_t> frontier = {seed};
      part[seed] = static_cast<std::uint32_t>(p);
      weight += g.vertex_weight[seed];
      ++assigned;
      std::size_t head = 0;
      while (head < frontier.size() && weight < target) {
        const std::uint32_t v = frontier[head++];
        for (const auto& [nbr, wgt] : g.adj[v]) {
          (void)wgt;
          if (weight >= target) break;
          if (part[nbr] == ~std::uint32_t{0}) {
            part[nbr] = static_cast<std::uint32_t>(p);
            weight += g.vertex_weight[nbr];
            ++assigned;
            frontier.push_back(nbr);
          }
        }
      }
    }
  }
  for (std::uint32_t v = 0; v < n; ++v) {
    if (part[v] == ~std::uint32_t{0}) {
      part[v] = static_cast<std::uint32_t>(k - 1);
    }
  }
  return part;
}

/// Greedy boundary refinement: move vertices to the neighboring partition
/// with the largest positive gain, subject to the balance cap.
void Refine(const WorkGraph& g, std::size_t k, double max_part_weight,
            int passes, Rng& rng, std::vector<std::uint32_t>* part) {
  const std::size_t n = g.size();
  std::vector<double> part_weight(k, 0.0);
  for (std::uint32_t v = 0; v < n; ++v) {
    part_weight[(*part)[v]] += g.vertex_weight[v];
  }
  std::vector<std::uint32_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  for (int pass = 0; pass < passes; ++pass) {
    rng.Shuffle(order);
    bool moved_any = false;
    for (std::uint32_t v : order) {
      // Edge weight from v toward each adjacent partition.
      std::unordered_map<std::uint32_t, std::int64_t> toward;
      for (const auto& [nbr, wgt] : g.adj[v]) {
        toward[(*part)[nbr]] += wgt;
      }
      const std::int64_t internal = toward[(*part)[v]];
      std::uint32_t best_part = (*part)[v];
      std::int64_t best_gain = 0;
      for (const auto& [p, w] : toward) {
        if (p == (*part)[v]) continue;
        const std::int64_t gain = w - internal;
        if (gain > best_gain &&
            part_weight[p] + g.vertex_weight[v] <= max_part_weight) {
          best_gain = gain;
          best_part = p;
        }
      }
      if (best_part != (*part)[v]) {
        part_weight[(*part)[v]] -= g.vertex_weight[v];
        part_weight[best_part] += g.vertex_weight[v];
        (*part)[v] = best_part;
        moved_any = true;
      }
    }
    if (!moved_any) break;
  }
}

}  // namespace

MultilevelResult MultilevelPartition(const graph::LabeledGraph& g,
                                     const MultilevelOptions& options) {
  TNMINE_CHECK(options.num_partitions >= 1);
  MultilevelResult result;
  result.assignment.assign(g.num_vertices(), 0);
  if (g.num_vertices() == 0 || options.num_partitions == 1) {
    g.ForEachEdge([](graph::EdgeId) {});
    return result;
  }
  Rng rng(options.seed);

  // Coarsening phase.
  std::vector<WorkGraph> levels;
  std::vector<std::vector<std::uint32_t>> maps;  // fine index -> coarse
  levels.push_back(FromLabeledGraph(g));
  const std::size_t stop_size = std::max<std::size_t>(
      options.num_partitions,
      options.coarsen_to_per_partition * options.num_partitions);
  while (levels.back().size() > stop_size) {
    std::vector<std::uint32_t> fine_to_coarse;
    WorkGraph coarse = Coarsen(levels.back(), rng, &fine_to_coarse);
    if (coarse.size() >=
        levels.back().size() - levels.back().size() / 20) {
      break;  // matching stalled; further coarsening is pointless
    }
    maps.push_back(std::move(fine_to_coarse));
    levels.push_back(std::move(coarse));
  }

  // Initial partition on the coarsest level, then uncoarsen with
  // refinement at every level.
  const double max_part_weight =
      (1.0 + options.balance_slack) *
      static_cast<double>(levels.front().total_vertex_weight()) /
      static_cast<double>(options.num_partitions);
  std::vector<std::uint32_t> part =
      InitialPartition(levels.back(), options.num_partitions, rng);
  Refine(levels.back(), options.num_partitions, max_part_weight,
         options.refine_passes, rng, &part);
  for (std::size_t level = levels.size() - 1; level-- > 0;) {
    std::vector<std::uint32_t> finer(levels[level].size());
    for (std::uint32_t v = 0; v < finer.size(); ++v) {
      finer[v] = part[maps[level][v]];
    }
    part = std::move(finer);
    Refine(levels[level], options.num_partitions, max_part_weight,
           options.refine_passes, rng, &part);
  }

  result.assignment = std::move(part);
  g.ForEachEdge([&](graph::EdgeId e) {
    const auto& edge = g.edge(e);
    if (result.assignment[edge.src] != result.assignment[edge.dst]) {
      ++result.cut_edges;
    }
  });
  return result;
}

std::vector<graph::LabeledGraph> ExtractPartitions(
    const graph::LabeledGraph& g,
    const std::vector<std::uint32_t>& assignment) {
  TNMINE_CHECK(assignment.size() == g.num_vertices());
  std::uint32_t num_parts = 0;
  for (std::uint32_t p : assignment) num_parts = std::max(num_parts, p + 1);
  std::vector<graph::LabeledGraph> parts(num_parts);
  std::vector<std::vector<graph::VertexId>> local(
      num_parts, std::vector<graph::VertexId>(g.num_vertices(),
                                              graph::kInvalidVertex));
  auto local_vertex = [&](std::uint32_t p, graph::VertexId v) {
    if (local[p][v] == graph::kInvalidVertex) {
      local[p][v] = parts[p].AddVertex(g.vertex_label(v));
    }
    return local[p][v];
  };
  g.ForEachEdge([&](graph::EdgeId e) {
    const auto& edge = g.edge(e);
    const std::uint32_t p = assignment[edge.src];
    if (p != assignment[edge.dst]) return;  // cut edge dropped
    parts[p].AddEdge(local_vertex(p, edge.src), local_vertex(p, edge.dst),
                     edge.label);
  });
  std::vector<graph::LabeledGraph> out;
  for (graph::LabeledGraph& part : parts) {
    if (part.num_edges() > 0) out.push_back(std::move(part));
  }
  return out;
}

}  // namespace tnmine::partition
