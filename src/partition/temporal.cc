#include "partition/temporal.h"

#include <algorithm>
#include <unordered_set>

#include "common/budget.h"
#include "common/check.h"
#include "common/failpoint.h"
#include "common/telemetry.h"
#include "common/trace.h"
#include "graph/algorithms.h"

namespace tnmine::partition {

using data::Transaction;
using data::TransactionDataset;
using graph::LabeledGraph;

TemporalPartition PartitionByActiveDay(const TransactionDataset& dataset,
                                       const TemporalOptions& options) {
  TNMINE_TRACE_SPAN("partition/by_active_day");
  TemporalPartition out;
  if (dataset.empty()) return out;

  // Global discretizer over the labeling attribute.
  std::vector<double> values;
  values.reserve(dataset.size());
  for (const Transaction& t : dataset.transactions()) {
    values.push_back(data::AttributeValue(t, options.attribute));
  }
  out.discretizer =
      options.equal_frequency
          ? Discretizer::EqualFrequency(values, options.num_bins)
          : Discretizer::EqualWidth(values, options.num_bins);

  // Global location labels.
  auto location_label = [&](data::LocationKey key) {
    const auto it = out.location_label.find(key);
    if (it != out.location_label.end()) return it->second;
    const graph::Label label =
        static_cast<graph::Label>(out.location_label.size());
    out.location_label.emplace(key, label);
    return label;
  };

  // Index transactions by active day.
  std::int64_t first_day = dataset[0].req_pickup_day;
  std::int64_t last_day = dataset[0].req_delivery_day;
  for (const Transaction& t : dataset.transactions()) {
    first_day = std::min(first_day, t.req_pickup_day);
    last_day = std::max(last_day, t.req_delivery_day);
  }
  const std::size_t num_days =
      static_cast<std::size_t>(last_day - first_day + 1);
  std::vector<std::vector<std::uint32_t>> active(num_days);
  for (std::size_t i = 0; i < dataset.size(); ++i) {
    const Transaction& t = dataset[i];
    TNMINE_CHECK(t.req_delivery_day >= t.req_pickup_day);
    for (std::int64_t d = t.req_pickup_day; d <= t.req_delivery_day; ++d) {
      active[static_cast<std::size_t>(d - first_day)].push_back(
          static_cast<std::uint32_t>(i));
    }
  }

  common::BudgetMeter meter(options.budget);
  try {
    for (std::size_t day_index = 0; day_index < num_days; ++day_index) {
      const auto& txns = active[day_index];
      if (txns.empty()) continue;
      (void)TNMINE_FAILPOINT("partition/active_day");
      // One tick per active transaction-day; days already emitted stay
      // valid when the budget stops the loop.
      const common::MiningOutcome stop = meter.Charge(1 + txns.size());
      if (stop != common::MiningOutcome::kComplete) {
        out.outcome = common::CombineOutcomes(out.outcome, stop);
        break;
      }
      // Day-level vertex-label filter (Table 3's "< 200 distinct vertex
      // labels").
      if (options.max_distinct_vertex_labels > 0) {
        std::unordered_set<data::LocationKey> distinct;
        for (std::uint32_t i : txns) {
          distinct.insert(TransactionDataset::OriginKey(dataset[i]));
          distinct.insert(TransactionDataset::DestKey(dataset[i]));
        }
        if (distinct.size() >= options.max_distinct_vertex_labels) {
          ++out.days_filtered_out;
          continue;
        }
      }
      // Build the day's graph.
      LabeledGraph day_graph;
      std::unordered_map<data::LocationKey, graph::VertexId> vertex_of;
      auto vertex_for = [&](data::LocationKey key) {
        const auto it = vertex_of.find(key);
        if (it != vertex_of.end()) return it->second;
        const graph::VertexId v = day_graph.AddVertex(location_label(key));
        vertex_of.emplace(key, v);
        return v;
      };
      for (std::uint32_t i : txns) {
        const Transaction& t = dataset[i];
        const graph::VertexId src =
            vertex_for(TransactionDataset::OriginKey(t));
        const graph::VertexId dst = vertex_for(TransactionDataset::DestKey(t));
        const graph::Label label = static_cast<graph::Label>(
            out.discretizer.Bin(data::AttributeValue(t, options.attribute)));
        day_graph.AddEdge(src, dst, label);
      }
      if (options.deduplicate_edges) graph::DeduplicateEdges(&day_graph);

      const std::int64_t day = first_day + static_cast<std::int64_t>(day_index);
      if (options.split_components) {
        for (LabeledGraph& component : graph::SplitIntoComponents(day_graph)) {
          if (options.remove_single_edge_transactions &&
              component.num_edges() <= 1) {
            continue;
          }
          out.transactions.push_back(std::move(component));
          out.transaction_day.push_back(day);
        }
      } else {
        if (options.remove_single_edge_transactions &&
            day_graph.num_edges() <= 1) {
          continue;
        }
        out.transactions.push_back(
            day_graph.Compact(/*drop_isolated_vertices=*/true));
        out.transaction_day.push_back(day);
      }
    }
  } catch (const std::bad_alloc&) {
    // Days already emitted stay valid; the in-flight day is dropped.
    out.outcome = common::CombineOutcomes(
        out.outcome, common::MiningOutcome::kMemoryBudgetExceeded);
  }
  TNMINE_COUNTER_ADD("partition/day_graphs_emitted", out.transactions.size());
  TNMINE_COUNTER_ADD("partition/days_filtered_out", out.days_filtered_out);
  out.work_ticks = meter.ticks_spent();
  common::RecordOutcome("partition", out.outcome);
  return out;
}

TemporalStats ComputeTemporalStats(
    const std::vector<LabeledGraph>& transactions) {
  TemporalStats stats;
  stats.num_transactions = transactions.size();
  if (transactions.empty()) return stats;
  std::unordered_set<graph::Label> edge_labels;
  std::unordered_set<graph::Label> vertex_labels;
  std::size_t total_edges = 0, total_vertices = 0;
  for (const LabeledGraph& g : transactions) {
    total_edges += g.num_edges();
    total_vertices += g.num_vertices();
    stats.max_edges = std::max(stats.max_edges, g.num_edges());
    stats.max_vertices = std::max(stats.max_vertices, g.num_vertices());
    for (graph::VertexId v = 0; v < g.num_vertices(); ++v) {
      vertex_labels.insert(g.vertex_label(v));
    }
    g.ForEachEdge(
        [&](graph::EdgeId e) { edge_labels.insert(g.edge(e).label); });
    const std::size_t size = g.num_edges();
    if (size < 10) {
      ++stats.size_buckets[0];
    } else if (size < 100) {
      ++stats.size_buckets[1];
    } else if (size < 1000) {
      ++stats.size_buckets[2];
    } else if (size < 2000) {
      ++stats.size_buckets[3];
    } else if (size < 5000) {
      ++stats.size_buckets[4];
    } else {
      ++stats.size_buckets[5];
    }
  }
  stats.distinct_edge_labels = edge_labels.size();
  stats.distinct_vertex_labels = vertex_labels.size();
  stats.avg_edges = static_cast<double>(total_edges) /
                    static_cast<double>(transactions.size());
  stats.avg_vertices = static_cast<double>(total_vertices) /
                       static_cast<double>(transactions.size());
  return stats;
}

}  // namespace tnmine::partition
