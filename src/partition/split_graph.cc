#include "partition/split_graph.h"

#include <algorithm>
#include <deque>

#include "common/budget.h"
#include "common/check.h"
#include "common/failpoint.h"
#include "common/random.h"
#include "common/telemetry.h"
#include "common/trace.h"

namespace tnmine::partition {

using graph::EdgeId;
using graph::kInvalidVertex;
using graph::LabeledGraph;
using graph::VertexId;

SplitResult SplitGraphBudgeted(const LabeledGraph& g,
                               const SplitOptions& options) {
  TNMINE_TRACE_SPAN("partition/split_graph");
  TNMINE_CHECK(options.num_partitions >= 1);
  SplitResult result;
  std::vector<LabeledGraph>& partitions = result.partitions;
  common::BudgetMeter meter(options.budget);
  if (g.num_edges() == 0) return result;

  LabeledGraph work = g;  // edges are consumed from this copy
  Rng rng(options.seed);

  // Monotonic scan cursors into each vertex's raw adjacency: edges never
  // come back to life, so the first-live-edge scan is amortized O(degree)
  // per vertex over the whole run instead of O(degree^2).
  std::vector<std::size_t> out_cursor(work.num_vertices(), 0);
  std::vector<std::size_t> in_cursor(work.num_vertices(), 0);
  auto first_live_edge = [&](VertexId v) -> EdgeId {
    const auto& outs = work.RawOutEdges(v);
    while (out_cursor[v] < outs.size() &&
           !work.edge_alive(outs[out_cursor[v]])) {
      ++out_cursor[v];
    }
    if (out_cursor[v] < outs.size()) return outs[out_cursor[v]];
    const auto& ins = work.RawInEdges(v);
    while (in_cursor[v] < ins.size() &&
           !work.edge_alive(ins[in_cursor[v]])) {
      ++in_cursor[v];
    }
    if (in_cursor[v] < ins.size()) return ins[in_cursor[v]];
    return graph::kInvalidEdge;
  };

  // Vertices that still have live edges, for seed selection. Refreshed
  // lazily: stale entries (degree 0) are skipped.
  std::vector<VertexId> active;
  active.reserve(work.num_vertices());
  for (VertexId v = 0; v < work.num_vertices(); ++v) {
    if (work.Degree(v) > 0) active.push_back(v);
  }

  auto pick_seed = [&]() -> VertexId {
    while (!active.empty()) {
      const std::size_t i = rng.NextBounded(active.size());
      const VertexId v = active[i];
      if (work.Degree(v) > 0) return v;
      active[i] = active.back();
      active.pop_back();
    }
    return kInvalidVertex;
  };

  try {
    while (work.num_edges() > 0) {
      if (result.outcome != common::MiningOutcome::kComplete) break;
      (void)TNMINE_FAILPOINT("partition/split");
      const std::size_t partitions_remaining =
          options.num_partitions > partitions.size()
              ? options.num_partitions - partitions.size()
              : 1;
      std::size_t budget = std::max<std::size_t>(
          1, work.num_edges() / partitions_remaining);

      const VertexId seed = pick_seed();
      TNMINE_CHECK(seed != kInvalidVertex);

      LabeledGraph part;
      std::vector<VertexId> local(work.num_vertices(), kInvalidVertex);
      auto local_vertex = [&](VertexId v) {
        if (local[v] == kInvalidVertex) {
          local[v] = part.AddVertex(work.vertex_label(v));
        }
        return local[v];
      };

      std::deque<VertexId> frontier;
      std::vector<char> queued(work.num_vertices(), 0);
      frontier.push_back(seed);
      queued[seed] = 1;

      while (budget > 0 && !frontier.empty() &&
             result.outcome == common::MiningOutcome::kComplete) {
        VertexId v;
        if (options.strategy == SplitStrategy::kBreadthFirst) {
          v = frontier.front();
          frontier.pop_front();
        } else {
          v = frontier.back();
          frontier.pop_back();
        }
        local_vertex(v);
        // Move all of v's remaining edges (both directions) while budget
        // lasts.
        while (budget > 0 && work.Degree(v) > 0) {
          const common::MiningOutcome stop = meter.Charge(1);
          if (stop != common::MiningOutcome::kComplete) {
            result.outcome = common::CombineOutcomes(result.outcome, stop);
            break;
          }
          const EdgeId take = first_live_edge(v);
          TNMINE_DCHECK(take != graph::kInvalidEdge);
          const graph::Edge edge = work.edge(take);
          part.AddEdge(local_vertex(edge.src), local_vertex(edge.dst),
                       edge.label);
          work.RemoveEdge(take);
          --budget;
          const VertexId other = (edge.src == v) ? edge.dst : edge.src;
          if (!queued[other]) {
            queued[other] = 1;
            frontier.push_back(other);
          }
        }
      }
      // Drop vertices that never received an edge (the seed can end up
      // orphaned when its edges were consumed by the budget check).
      // A resource-stopped partition is kept too: its edges were already
      // consumed from the working copy and it is a valid sub-graph.
      if (part.num_edges() > 0) {
        partitions.push_back(part.Compact(/*drop_isolated_vertices=*/true));
      }
    }
  } catch (const std::bad_alloc&) {
    // Allocation failure mid-partition: partitions already emitted are
    // valid sub-graphs; the in-flight one is dropped (its edges count as
    // assigned-but-unemitted).
    result.outcome = common::CombineOutcomes(
        result.outcome, common::MiningOutcome::kMemoryBudgetExceeded);
  }
  TNMINE_COUNTER_ADD("partition/partitions_emitted", partitions.size());
  TNMINE_COUNTER_ADD("partition/edges_assigned",
                     g.num_edges() - work.num_edges());
  // Boundary duplication factor: partition vertex occurrences per source
  // vertex with edges. 1000x fixed-point so the gauge stays integral.
  std::size_t vertex_occurrences = 0;
  for (const LabeledGraph& part : partitions) {
    vertex_occurrences += part.num_vertices();
  }
  std::size_t touched_vertices = 0;
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    if (g.Degree(v) > 0) ++touched_vertices;
  }
  if (touched_vertices > 0) {
    TNMINE_GAUGE_SET("partition/overlap_ratio_milli",
                     vertex_occurrences * 1000 / touched_vertices);
  }
  result.work_ticks = meter.ticks_spent();
  common::RecordOutcome("partition", result.outcome);
  return result;
}

std::vector<LabeledGraph> SplitGraph(const LabeledGraph& g,
                                     const SplitOptions& options) {
  return SplitGraphBudgeted(g, options).partitions;
}

}  // namespace tnmine::partition
