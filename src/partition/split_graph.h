#ifndef TNMINE_PARTITION_SPLIT_GRAPH_H_
#define TNMINE_PARTITION_SPLIT_GRAPH_H_

#include <cstdint>
#include <vector>

#include "common/budget.h"
#include "graph/labeled_graph.h"

namespace tnmine::partition {

/// Traversal order for Algorithm 2's ordering structure q: a queue gives
/// breadth-first partitioning (preserves high-out-degree star patterns), a
/// stack gives depth-first partitioning (preserves long chains) —
/// Section 5.2.1.
enum class SplitStrategy {
  kBreadthFirst,
  kDepthFirst,
};

/// Options for SplitGraph.
struct SplitOptions {
  SplitStrategy strategy = SplitStrategy::kBreadthFirst;
  /// Target number of graph transactions, k. The actual count can differ:
  /// a partition stops early when its frontier empties (disconnection), so
  /// some partitions come out smaller and extra ones are produced until no
  /// edges remain — exactly the behaviour the paper describes.
  std::size_t num_partitions = 10;
  std::uint64_t seed = 1;
  /// Resource governance (one tick per assigned edge; the walk is
  /// sequential, so tick truncation is deterministic). Default: inert.
  common::ResourceBudget budget;
};

/// SplitGraphBudgeted's outcome: the partitions plus how the run ended.
struct SplitResult {
  std::vector<graph::LabeledGraph> partitions;
  /// Anything but kComplete means the split stopped early: the emitted
  /// partitions are valid edge-disjoint sub-graphs, but some edges of the
  /// source graph remain unassigned.
  common::MiningOutcome outcome = common::MiningOutcome::kComplete;
  std::uint64_t work_ticks = 0;
};

/// Faithful implementation of Algorithm 2 (SplitGraph, breadth-first /
/// depth-first partitioning).
///
/// Pulls edge-disjoint sub-graphs off a copy of `g` one at a time: start
/// from a random vertex, repeatedly take a vertex from the ordering
/// structure, move all of its remaining edges (ignoring direction) into
/// the current sub-graph — removing them from the source graph so
/// sub-graphs never overlap — and enqueue the far endpoints, until the
/// per-partition edge budget |E_remaining| / partitions_remaining is
/// reached or the frontier empties. Repeats until every edge of `g` has
/// been assigned. Orphaned vertices are dropped from the sub-graphs.
///
/// Every live edge of `g` appears in exactly one returned sub-graph —
/// unless the budget in `options` stops the run (see SplitResult).
SplitResult SplitGraphBudgeted(const graph::LabeledGraph& g,
                               const SplitOptions& options);

/// Convenience wrapper returning just the partitions (callers that care
/// about truncation use SplitGraphBudgeted).
std::vector<graph::LabeledGraph> SplitGraph(const graph::LabeledGraph& g,
                                            const SplitOptions& options);

}  // namespace tnmine::partition

#endif  // TNMINE_PARTITION_SPLIT_GRAPH_H_
