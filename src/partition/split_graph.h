#ifndef TNMINE_PARTITION_SPLIT_GRAPH_H_
#define TNMINE_PARTITION_SPLIT_GRAPH_H_

#include <cstdint>
#include <vector>

#include "graph/labeled_graph.h"

namespace tnmine::partition {

/// Traversal order for Algorithm 2's ordering structure q: a queue gives
/// breadth-first partitioning (preserves high-out-degree star patterns), a
/// stack gives depth-first partitioning (preserves long chains) —
/// Section 5.2.1.
enum class SplitStrategy {
  kBreadthFirst,
  kDepthFirst,
};

/// Options for SplitGraph.
struct SplitOptions {
  SplitStrategy strategy = SplitStrategy::kBreadthFirst;
  /// Target number of graph transactions, k. The actual count can differ:
  /// a partition stops early when its frontier empties (disconnection), so
  /// some partitions come out smaller and extra ones are produced until no
  /// edges remain — exactly the behaviour the paper describes.
  std::size_t num_partitions = 10;
  std::uint64_t seed = 1;
};

/// Faithful implementation of Algorithm 2 (SplitGraph, breadth-first /
/// depth-first partitioning).
///
/// Pulls edge-disjoint sub-graphs off a copy of `g` one at a time: start
/// from a random vertex, repeatedly take a vertex from the ordering
/// structure, move all of its remaining edges (ignoring direction) into
/// the current sub-graph — removing them from the source graph so
/// sub-graphs never overlap — and enqueue the far endpoints, until the
/// per-partition edge budget |E_remaining| / partitions_remaining is
/// reached or the frontier empties. Repeats until every edge of `g` has
/// been assigned. Orphaned vertices are dropped from the sub-graphs.
///
/// Every live edge of `g` appears in exactly one returned sub-graph.
std::vector<graph::LabeledGraph> SplitGraph(const graph::LabeledGraph& g,
                                            const SplitOptions& options);

}  // namespace tnmine::partition

#endif  // TNMINE_PARTITION_SPLIT_GRAPH_H_
