#ifndef TNMINE_PARTITION_MULTILEVEL_H_
#define TNMINE_PARTITION_MULTILEVEL_H_

#include <cstdint>
#include <vector>

#include "graph/labeled_graph.h"

namespace tnmine::partition {

/// Options for the multilevel edge-cut partitioner.
struct MultilevelOptions {
  std::size_t num_partitions = 8;
  std::uint64_t seed = 1;
  /// Stop coarsening once the graph has at most this many vertices per
  /// requested partition.
  std::size_t coarsen_to_per_partition = 16;
  /// Boundary-refinement sweeps per level.
  int refine_passes = 4;
  /// Maximum allowed imbalance: a partition may hold at most
  /// (1 + balance_slack) * (total_weight / num_partitions) vertex weight.
  double balance_slack = 0.10;
};

/// Result of a multilevel partition.
struct MultilevelResult {
  /// assignment[v] in [0, num_partitions) for every vertex of the input.
  std::vector<std::uint32_t> assignment;
  /// Number of edges whose endpoints landed in different partitions.
  std::size_t cut_edges = 0;
};

/// METIS-style multilevel partitioning (Karypis & Kumar 1998, referenced
/// by the paper as the "efficient graph partitioning" alternative to its
/// BFS/DFS SplitGraph): coarsen by heavy-edge matching, partition the
/// coarsest graph by greedy region growing, then uncoarsen with
/// boundary-vertex refinement. Edge direction is ignored; parallel edges
/// act as edge weight.
MultilevelResult MultilevelPartition(const graph::LabeledGraph& g,
                                     const MultilevelOptions& options);

/// Extracts the per-partition sub-graphs induced by `assignment`
/// (cut edges are dropped; isolated vertices are dropped). Partitions that
/// end up empty are omitted.
std::vector<graph::LabeledGraph> ExtractPartitions(
    const graph::LabeledGraph& g, const std::vector<std::uint32_t>& assignment);

}  // namespace tnmine::partition

#endif  // TNMINE_PARTITION_MULTILEVEL_H_
