#include "subdue/subdue.h"

#include <algorithm>
#include <map>
#include <sstream>
#include <unordered_map>
#include <unordered_set>

#include "common/budget.h"
#include "common/check.h"
#include "common/failpoint.h"
#include "common/telemetry.h"
#include "common/trace.h"
#include "graph/graph_view.h"
#include "iso/canonical.h"
#include "subdue/mdl.h"

namespace tnmine::subdue {

using graph::Edge;
using graph::EdgeId;
using graph::kInvalidVertex;
using graph::Label;
using graph::LabeledGraph;
using graph::VertexId;

namespace {

/// Unique key for an instance (vertex set + edge set).
std::string InstanceKey(const Instance& inst) {
  std::ostringstream key;
  std::vector<VertexId> vs = inst.vertices;
  std::sort(vs.begin(), vs.end());
  for (VertexId v : vs) key << v << ',';
  key << '|';
  for (EdgeId e : inst.edges) key << e << ',';
  return key.str();
}

/// Builds the local pattern graph of an instance. Vertex order follows
/// inst.vertices.
LabeledGraph PatternOf(const LabeledGraph& host, const Instance& inst) {
  LabeledGraph pattern;
  std::unordered_map<VertexId, VertexId> local;
  for (VertexId v : inst.vertices) {
    local.emplace(v, pattern.AddVertex(host.vertex_label(v)));
  }
  for (EdgeId e : inst.edges) {
    const Edge& edge = host.edge(e);
    pattern.AddEdge(local.at(edge.src), local.at(edge.dst), edge.label);
  }
  return pattern;
}

/// Greedy vertex-disjoint instance selection, in list order. Returns the
/// selected indices.
std::vector<std::size_t> SelectDisjoint(const LabeledGraph& host,
                                        const std::vector<Instance>& insts) {
  std::vector<char> used(host.num_vertices(), 0);
  std::vector<std::size_t> chosen;
  for (std::size_t i = 0; i < insts.size(); ++i) {
    bool free = true;
    for (VertexId v : insts[i].vertices) {
      if (used[v]) {
        free = false;
        break;
      }
    }
    if (!free) continue;
    for (VertexId v : insts[i].vertices) used[v] = 1;
    chosen.push_back(i);
  }
  return chosen;
}

/// Evaluation context: host-graph quantities precomputed once per run.
struct EvalContext {
  const LabeledGraph* host;
  EvalMethod method;
  bool allow_overlap;
  double base_cost;          // DL(G) bits or size(G)
  std::size_t host_vlabels;  // label alphabet sizes of the host
  std::size_t host_elabels;
  Label replacement_label;   // fresh label used by trial compressions
};

void Evaluate(const EvalContext& ctx, Substructure* sub) {
  const std::vector<std::size_t> chosen =
      SelectDisjoint(*ctx.host, sub->instances);
  sub->non_overlapping_instances = chosen.size();
  switch (ctx.method) {
    case EvalMethod::kSetCover: {
      // No negative examples in transportation data (Section 5.1): the
      // value degenerates to the number of counted instances.
      sub->value = static_cast<double>(ctx.allow_overlap
                                           ? sub->instances.size()
                                           : chosen.size());
      return;
    }
    case EvalMethod::kMdl: {
      TNMINE_COUNTER_ADD("subdue/mdl_computations", 1);
      const LabeledGraph compressed =
          CompressGraph(*ctx.host, *sub, ctx.replacement_label);
      // The compressed graph and the substructure are priced with the
      // host's alphabets extended by the replacement label.
      const double dl_s = DescriptionLengthBits(
          sub->pattern, ctx.host_vlabels + 1, ctx.host_elabels);
      const double dl_gs = DescriptionLengthBits(
          compressed, ctx.host_vlabels + 1, ctx.host_elabels);
      sub->value = ctx.base_cost / std::max(1e-9, dl_s + dl_gs);
      return;
    }
    case EvalMethod::kSize: {
      const LabeledGraph compressed =
          CompressGraph(*ctx.host, *sub, ctx.replacement_label);
      const double denom = static_cast<double>(GraphSize(sub->pattern) +
                                               GraphSize(compressed));
      sub->value = ctx.base_cost / std::max(1.0, denom);
      return;
    }
  }
  TNMINE_CHECK(false);
}

}  // namespace

LabeledGraph CompressGraph(const LabeledGraph& g, const Substructure& sub,
                           Label replacement_label) {
  const std::vector<std::size_t> chosen = SelectDisjoint(g, sub.instances);
  // Host vertex -> owning chosen instance (or none).
  std::vector<std::int32_t> owner(g.num_vertices(), -1);
  std::unordered_set<EdgeId> instance_edges;
  for (std::size_t rank = 0; rank < chosen.size(); ++rank) {
    const Instance& inst = sub.instances[chosen[rank]];
    for (VertexId v : inst.vertices) {
      owner[v] = static_cast<std::int32_t>(rank);
    }
    instance_edges.insert(inst.edges.begin(), inst.edges.end());
  }
  LabeledGraph out;
  // One vertex per chosen instance, then the untouched vertices.
  std::vector<VertexId> instance_vertex(chosen.size());
  for (std::size_t rank = 0; rank < chosen.size(); ++rank) {
    instance_vertex[rank] = out.AddVertex(replacement_label);
  }
  std::vector<VertexId> mapped(g.num_vertices(), kInvalidVertex);
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    mapped[v] = owner[v] >= 0
                    ? instance_vertex[static_cast<std::size_t>(owner[v])]
                    : out.AddVertex(g.vertex_label(v));
  }
  g.ForEachEdge([&](EdgeId e) {
    if (instance_edges.contains(e)) return;
    const Edge& edge = g.edge(e);
    out.AddEdge(mapped[edge.src], mapped[edge.dst], edge.label);
  });
  return out;
}

SubdueResult DiscoverSubstructures(const LabeledGraph& g,
                                   const SubdueOptions& options) {
  TNMINE_TRACE_SPAN("subdue/discover");
  TNMINE_CHECK(options.beam_width >= 1);
  TNMINE_CHECK(options.num_best >= 1);
  TNMINE_COUNTER_ADD("subdue/runs_started", 1);
  SubdueResult result;
  // Sequential search, sequential ledger: the same allotment always cuts
  // the beam at the same substructure.
  common::BudgetMeter meter(options.budget);
  // Run-local telemetry, flushed once at the end (the discovery loop is
  // sequential, so locals also keep totals trivially deterministic).
  std::uint64_t instances_grown = 0;
  std::uint64_t beam_evictions = 0;

  EvalContext ctx;
  ctx.host = &g;
  ctx.method = options.method;
  ctx.allow_overlap = options.allow_overlap;
  ctx.host_vlabels = std::max<std::size_t>(1, g.CountDistinctVertexLabels());
  ctx.host_elabels = std::max<std::size_t>(1, g.CountDistinctEdgeLabels());
  // A label value guaranteed unused by the host.
  Label max_label = 0;
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    max_label = std::max(max_label, g.vertex_label(v));
  }
  ctx.replacement_label = max_label + 1;
  ctx.base_cost = options.method == EvalMethod::kMdl
                      ? DescriptionLengthBits(g, ctx.host_vlabels,
                                              ctx.host_elabels)
                      : static_cast<double>(GraphSize(g));
  result.base_cost = ctx.base_cost;

  const std::size_t limit =
      options.limit != 0 ? options.limit : g.num_edges() / 2 + 1;

  // Flat snapshot of the host: the growth loop below walks its
  // EdgeId-ascending adjacency spans (discovery order is output-relevant
  // here — the max_instances cap and SelectDisjoint are first-come).
  const graph::GraphView view(g);

  // Initial substructures: one per distinct vertex label, instances in
  // ascending VertexId order (the order the label index stores).
  std::map<Label, Substructure> initial;
  for (const Label label : view.DistinctVertexLabels()) {
    Substructure sub;
    sub.pattern.AddVertex(label);
    sub.code = iso::CanonicalCode(sub.pattern);
    for (const VertexId v : view.VerticesWithLabel(label)) {
      if (options.max_instances != 0 &&
          sub.instances.size() >= options.max_instances) {
        break;
      }
      sub.instances.push_back(Instance{{v}, {}});
    }
    initial.emplace(label, std::move(sub));
  }

  std::vector<Substructure> best;
  auto offer_best = [&](const Substructure& sub) {
    best.push_back(sub);
    std::sort(best.begin(), best.end(),
              [](const Substructure& a, const Substructure& b) {
                return a.value > b.value;
              });
    if (best.size() > options.num_best) best.resize(options.num_best);
  };

  std::vector<Substructure> parents;
  for (auto& [label, sub] : initial) {
    const common::MiningOutcome stop =
        meter.Charge(1 + sub.instances.size());
    if (stop != common::MiningOutcome::kComplete) {
      result.outcome = common::CombineOutcomes(result.outcome, stop);
      break;
    }
    Evaluate(ctx, &sub);
    ++result.substructures_evaluated;
    offer_best(sub);
    parents.push_back(std::move(sub));
  }
  std::sort(parents.begin(), parents.end(),
            [](const Substructure& a, const Substructure& b) {
              return a.value > b.value;
            });
  if (parents.size() > options.beam_width) {
    beam_evictions += parents.size() - options.beam_width;
    parents.resize(options.beam_width);
  }

  while (result.outcome == common::MiningOutcome::kComplete &&
         !parents.empty() && result.substructures_evaluated < limit) {
    // Grow every parent instance by one host edge; group the grown
    // instances by pattern isomorphism class. A bad_alloc (real or
    // injected) anywhere in the round is absorbed at this boundary:
    // `best` keeps the substructures already evaluated.
    try {
      struct Child {
        LabeledGraph pattern;
        std::vector<Instance> instances;
        std::unordered_set<std::string> seen;  // instance dedup
      };
      std::map<std::string, Child> children;
      for (const Substructure& parent : parents) {
        if (result.outcome != common::MiningOutcome::kComplete) break;
        if (options.max_pattern_edges != 0 &&
            parent.pattern.num_edges() >= options.max_pattern_edges) {
          continue;
        }
        for (const Instance& inst : parent.instances) {
          const common::MiningOutcome grow_stop = meter.Charge(1);
          if (grow_stop != common::MiningOutcome::kComplete) {
            result.outcome = common::CombineOutcomes(result.outcome, grow_stop);
            break;
          }
          // Membership helpers.
          auto vertex_in = [&](VertexId v) {
            return std::find(inst.vertices.begin(), inst.vertices.end(), v) !=
                   inst.vertices.end();
          };
          auto edge_in = [&](EdgeId e) {
            return std::binary_search(inst.edges.begin(), inst.edges.end(), e);
          };
          for (VertexId v : inst.vertices) {
            auto try_extend = [&](EdgeId e) {
              if (edge_in(e)) return;
              const Edge& edge = g.edge(e);
              Instance grown = inst;
              grown.edges.insert(
                  std::lower_bound(grown.edges.begin(), grown.edges.end(), e),
                  e);
              const VertexId other = (edge.src == v) ? edge.dst : edge.src;
              if (!vertex_in(other)) grown.vertices.push_back(other);
              ++instances_grown;
              const std::string key = InstanceKey(grown);
              const LabeledGraph pattern = PatternOf(g, grown);
              std::string code = iso::CanonicalCode(pattern);
              auto [it, inserted] =
                  children.try_emplace(std::move(code));
              Child& child = it->second;
              if (inserted) child.pattern = pattern;
              if (!child.seen.insert(key).second) return;
              if (options.max_instances != 0 &&
                  child.instances.size() >= options.max_instances) {
                return;
              }
              child.instances.push_back(std::move(grown));
            };
            for (EdgeId e : view.OutEdgesById(v)) try_extend(e);
            for (EdgeId e : view.InEdgesById(v)) {
              if (g.edge(e).src != g.edge(e).dst) try_extend(e);
            }
          }
        }
      }

      // A budget stop mid-grow leaves `children` with partially grown
      // instance groups; evaluating them would under-count, so stop here.
      if (result.outcome != common::MiningOutcome::kComplete) break;

      std::vector<Substructure> evaluated;
      for (auto& [code, child] : children) {
        if (result.substructures_evaluated >= limit) break;
        (void)TNMINE_FAILPOINT("subdue/evaluate");
        const common::MiningOutcome eval_stop =
            meter.Charge(1 + child.instances.size());
        if (eval_stop != common::MiningOutcome::kComplete) {
          result.outcome = common::CombineOutcomes(result.outcome, eval_stop);
          break;
        }
        Substructure sub;
        sub.pattern = std::move(child.pattern);
        sub.code = code;
        sub.instances = std::move(child.instances);
        Evaluate(ctx, &sub);
        ++result.substructures_evaluated;
        offer_best(sub);
        evaluated.push_back(std::move(sub));
      }
      std::sort(evaluated.begin(), evaluated.end(),
                [](const Substructure& a, const Substructure& b) {
                  return a.value > b.value;
                });
      if (evaluated.size() > options.beam_width) {
        beam_evictions += evaluated.size() - options.beam_width;
        evaluated.resize(options.beam_width);
      }
      parents = std::move(evaluated);
    } catch (const std::bad_alloc&) {
      result.outcome = common::CombineOutcomes(
          result.outcome, common::MiningOutcome::kMemoryBudgetExceeded);
      break;
    }
  }

  result.best = std::move(best);
  result.work_ticks = meter.ticks_spent();
  TNMINE_COUNTER_ADD("subdue/substructures_evaluated",
                     result.substructures_evaluated);
  TNMINE_COUNTER_ADD("subdue/instances_grown", instances_grown);
  TNMINE_COUNTER_ADD("subdue/beam_evictions", beam_evictions);
  common::RecordOutcome("subdue", result.outcome);
  return result;
}

std::vector<HierarchyLevel> HierarchicalDiscover(
    const LabeledGraph& g, const SubdueOptions& options, std::size_t passes,
    common::MiningOutcome* outcome) {
  std::vector<HierarchyLevel> levels;
  if (outcome != nullptr) *outcome = common::MiningOutcome::kComplete;
  LabeledGraph current = g;
  for (std::size_t pass = 0; pass < passes; ++pass) {
    if (current.num_edges() == 0) break;
    const SubdueResult found = DiscoverSubstructures(current, options);
    if (found.outcome != common::MiningOutcome::kComplete) {
      // Keep completed levels; a truncated pass cannot be trusted to have
      // found the genuinely best substructure.
      if (outcome != nullptr) {
        *outcome = common::CombineOutcomes(*outcome, found.outcome);
      }
      break;
    }
    if (found.best.empty()) break;
    const Substructure& winner = found.best.front();
    // Stop when nothing compresses any more (for instance-count methods,
    // require at least two disjoint instances with at least one edge).
    if (options.method == EvalMethod::kSetCover) {
      if (winner.non_overlapping_instances < 2 ||
          winner.pattern.num_edges() == 0) {
        break;
      }
    } else if (winner.value <= 1.0) {
      break;
    }
    Label max_label = 0;
    for (VertexId v = 0; v < current.num_vertices(); ++v) {
      max_label = std::max(max_label, current.vertex_label(v));
    }
    HierarchyLevel level;
    level.substructure = winner;
    level.compressed = CompressGraph(current, winner, max_label + 1)
                           .Compact(/*drop_isolated_vertices=*/false);
    levels.push_back(level);
    current = levels.back().compressed;
  }
  return levels;
}

}  // namespace tnmine::subdue
