#ifndef TNMINE_SUBDUE_MDL_H_
#define TNMINE_SUBDUE_MDL_H_

#include "graph/labeled_graph.h"

namespace tnmine::subdue {

/// Description length of a labeled directed multigraph in bits, following
/// the adjacency-matrix encoding of Cook & Holder (JAIR 1994):
///
///   vbits — the number of vertices plus each vertex's label
///           (log2(v+1) + v * log2(lv));
///   rbits — the adjacency-matrix rows, each encoded as its count of
///           nonzero entries k_i plus which of the C(v, k_i) vertex
///           subsets is adjacent ((v+1) * log2(b+1) + sum_i log2 C(v, k_i)
///           with b = max_i k_i);
///   ebits — the edge entries: each of the e edges carries its label and
///           a continuation bit, plus the parallel-edge multiplicities
///           (e * (1 + log2(le)) + (K+1) * log2(m+1) with K the number of
///           nonzero adjacency entries and m the largest multiplicity).
///
/// `vertex_label_alphabet` / `edge_label_alphabet` give the label-universe
/// sizes; pass 0 to use the graph's own distinct-label counts (the right
/// choice when measuring a standalone graph; when measuring a substructure
/// against a host graph, pass the host's counts so both sides price labels
/// consistently).
double DescriptionLengthBits(const graph::LabeledGraph& g,
                             std::size_t vertex_label_alphabet = 0,
                             std::size_t edge_label_alphabet = 0);

/// Size of a graph in SUBDUE's "size" evaluation: vertices + edges.
std::size_t GraphSize(const graph::LabeledGraph& g);

}  // namespace tnmine::subdue

#endif  // TNMINE_SUBDUE_MDL_H_
