#ifndef TNMINE_SUBDUE_SUBDUE_H_
#define TNMINE_SUBDUE_SUBDUE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/budget.h"
#include "graph/labeled_graph.h"

namespace tnmine::subdue {

/// Substructure-evaluation principles (Section 5.1: the paper ran MDL and
/// Size; Set Cover "is not relevant, as the transportation data has no
/// concept of negative examples" — it is implemented for completeness and
/// degenerates to instance counting without negative graphs).
enum class EvalMethod {
  kMdl,
  kSize,
  kSetCover,
};

/// One occurrence of a substructure inside the host graph.
struct Instance {
  std::vector<graph::VertexId> vertices;  ///< host vertex ids
  std::vector<graph::EdgeId> edges;       ///< host edge ids, sorted
};

/// A candidate substructure: its pattern graph and all discovered
/// instances in the host graph.
struct Substructure {
  graph::LabeledGraph pattern;  ///< dense local pattern graph
  std::string code;             ///< canonical isomorphism-class code
  std::vector<Instance> instances;
  /// Greedily-selected count of vertex-disjoint instances (what the
  /// paper's "without allowing overlap" runs count).
  std::size_t non_overlapping_instances = 0;
  /// Evaluation score; higher is better. For MDL and Size this is the
  /// compression ratio DL(G) / (DL(S) + DL(G|S)) — a value above 1 means
  /// the substructure compresses the graph.
  double value = 0.0;
};

/// Options for substructure discovery.
struct SubdueOptions {
  EvalMethod method = EvalMethod::kMdl;
  /// Beam width of the search (the paper's runs used 4 and 5).
  std::size_t beam_width = 4;
  /// Number of best substructures to report (the paper asked for 3-15).
  std::size_t num_best = 3;
  /// Do not grow patterns past this many edges (0 = unlimited; the
  /// paper's Size run capped at 6).
  std::size_t max_pattern_edges = 0;
  /// Total substructures to evaluate before stopping (SUBDUE's "limit";
  /// 0 chooses the tool's default of |E|/2 + 1).
  std::size_t limit = 0;
  /// Count overlapping instances in the evaluation. Compression always
  /// uses a vertex-disjoint instance subset (overlap would double-count
  /// savings); this flag only changes the reported instance counts.
  bool allow_overlap = false;
  /// Cap on retained instances per substructure; keeps hub-heavy graphs
  /// from exploding the search. 0 = unlimited.
  std::size_t max_instances = 5000;
  /// Resource governance. The beam search is sequential, so tick
  /// truncation is trivially deterministic: the search stops at the same
  /// substructure for the same allotment. Default: inert (unbounded).
  common::ResourceBudget budget;
};

/// Discovery outcome.
struct SubdueResult {
  /// The num_best best substructures, best first.
  std::vector<Substructure> best;
  std::size_t substructures_evaluated = 0;
  /// DL(G) in bits (MDL) or size(G) in vertices+edges (Size), the
  /// denominatorless baseline the values are relative to.
  double base_cost = 0.0;
  /// How the run ended. Anything but kComplete means the beam search was
  /// cut short; `best` still holds the best substructures evaluated
  /// before the cutoff.
  common::MiningOutcome outcome = common::MiningOutcome::kComplete;
  /// Work ticks spent (deterministic for tick-budgeted runs).
  std::uint64_t work_ticks = 0;
};

/// SUBDUE substructure discovery (Holder, Cook & Djoko 1994): beam search
/// from single-vertex substructures, growing each substructure's instances
/// one host edge at a time, grouping the grown instances by pattern
/// isomorphism class, and scoring each class by how well replacing its
/// instances with a single vertex compresses the host graph.
SubdueResult DiscoverSubstructures(const graph::LabeledGraph& g,
                                   const SubdueOptions& options);

/// Replaces the greedily-chosen vertex-disjoint instances of `sub` in `g`
/// with single vertices labeled `replacement_label`. Edges interior to an
/// instance disappear; edges crossing the boundary reattach to the new
/// vertex (possibly becoming self-loops). This is the compression step
/// SUBDUE uses for hierarchical multi-pass discovery.
graph::LabeledGraph CompressGraph(const graph::LabeledGraph& g,
                                  const Substructure& sub,
                                  graph::Label replacement_label);

/// One level of hierarchical discovery.
struct HierarchyLevel {
  Substructure substructure;      ///< best substructure found at this level
  graph::LabeledGraph compressed; ///< host graph after compression
};

/// Multi-pass discovery: repeatedly finds the best substructure and
/// compresses it out of the graph, producing "a hierarchical description
/// of the structural regularities in the data". Stops after `passes`
/// levels, when no substructure compresses (value <= 1), when the graph
/// runs out of edges, or when the budget in `options` stops a pass. When
/// `outcome` is non-null it receives the combined MiningOutcome (levels
/// already produced are kept on truncation).
std::vector<HierarchyLevel> HierarchicalDiscover(
    const graph::LabeledGraph& g, const SubdueOptions& options,
    std::size_t passes, common::MiningOutcome* outcome = nullptr);

}  // namespace tnmine::subdue

#endif  // TNMINE_SUBDUE_SUBDUE_H_
