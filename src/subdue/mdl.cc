#include "subdue/mdl.h"

#include <cmath>
#include <map>
#include <utility>

namespace tnmine::subdue {

using graph::EdgeId;
using graph::LabeledGraph;
using graph::VertexId;

namespace {

double Lg(double x) { return x <= 1.0 ? 0.0 : std::log2(x); }

/// log2 of the binomial coefficient C(n, k) via lgamma.
double LgChoose(std::size_t n, std::size_t k) {
  if (k == 0 || k >= n) return 0.0;
  const double nd = static_cast<double>(n);
  const double kd = static_cast<double>(k);
  return (std::lgamma(nd + 1) - std::lgamma(kd + 1) -
          std::lgamma(nd - kd + 1)) /
         std::log(2.0);
}

}  // namespace

double DescriptionLengthBits(const LabeledGraph& g,
                             std::size_t vertex_label_alphabet,
                             std::size_t edge_label_alphabet) {
  const std::size_t v = g.num_vertices();
  const std::size_t e = g.num_edges();
  const std::size_t lv = vertex_label_alphabet != 0
                             ? vertex_label_alphabet
                             : std::max<std::size_t>(
                                   1, g.CountDistinctVertexLabels());
  const std::size_t le =
      edge_label_alphabet != 0
          ? edge_label_alphabet
          : std::max<std::size_t>(1, g.CountDistinctEdgeLabels());

  const double vbits =
      Lg(static_cast<double>(v) + 1) + static_cast<double>(v) * Lg(lv);

  // Adjacency rows: k_i = number of distinct out-neighbors of vertex i;
  // multiplicities counted separately below.
  std::map<std::pair<VertexId, VertexId>, std::size_t> entries;
  g.ForEachEdge([&](EdgeId eid) {
    const auto& edge = g.edge(eid);
    ++entries[{edge.src, edge.dst}];
  });
  std::vector<std::size_t> row_count(v, 0);
  std::size_t max_multiplicity = 0;
  for (const auto& [key, mult] : entries) {
    ++row_count[key.first];
    max_multiplicity = std::max(max_multiplicity, mult);
  }
  std::size_t b = 0;
  for (std::size_t k : row_count) b = std::max(b, k);
  double rbits = (static_cast<double>(v) + 1) * Lg(static_cast<double>(b) + 1);
  for (std::size_t i = 0; i < v; ++i) rbits += LgChoose(v, row_count[i]);

  const double ebits =
      static_cast<double>(e) * (1.0 + Lg(le)) +
      (static_cast<double>(entries.size()) + 1) *
          Lg(static_cast<double>(max_multiplicity) + 1);

  return vbits + rbits + ebits;
}

std::size_t GraphSize(const LabeledGraph& g) {
  return g.num_vertices() + g.num_edges();
}

}  // namespace tnmine::subdue
