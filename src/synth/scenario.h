#ifndef TNMINE_SYNTH_SCENARIO_H_
#define TNMINE_SYNTH_SCENARIO_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "common/random.h"
#include "synth/kk_generator.h"

namespace tnmine::synth {

/// How a scenario turns the generated transactions into the miner's input.
enum class ScenarioPartitioner : std::uint8_t {
  /// The KK transactions are mined directly.
  kNone,
  /// The KK transactions are flattened into one disjoint-union graph and
  /// re-cut with the multilevel partitioner; the extracted partitions are
  /// the transactions. Exercises the partition-then-mine composition of
  /// the paper's pipeline with a partitioner the miners never chose.
  kMultilevel,
};

const char* ToString(ScenarioPartitioner partitioner);

/// One end-to-end differential-fuzz scenario: a full recipe for building
/// a transaction set and the mining parameters every oracle leg shares.
/// The config is the entire replay artifact — serialize it, parse it back,
/// and the identical scenario re-runs byte-for-byte (see
/// tools/scenario_fuzz.cc for the oracle suite that consumes it).
struct ScenarioConfig {
  /// Transaction-set recipe, including the generator seed and the
  /// transportation-texture knobs (hub skew, seasonality, disruptions,
  /// motif concentration).
  KkOptions generator;
  ScenarioPartitioner partitioner = ScenarioPartitioner::kNone;
  /// Partition count for kMultilevel (ignored for kNone).
  std::size_t num_partitions = 4;
  /// Shared mining parameters. min_support deliberately draws 0 and 1 so
  /// the degenerate-value contract (see GspanOptions / FsgOptions) stays
  /// under permanent cross-miner test.
  std::size_t min_support = 2;
  std::size_t max_edges = 3;
  /// Thread count for the parallel-vs-sequential leg (compared against 1).
  int num_threads = 2;
  /// Tick allotment for the budget-truncation leg, as a fraction of the
  /// scenario's measured unbudgeted tick cost.
  double budget_fraction = 0.5;
};

/// Draws a random scenario. Ranges are tuned so a 10k-seed sweep stays
/// tractable under sanitizers while still reaching every degenerate corner
/// (zero transactions, empty seed-pattern pool, label cardinality 1,
/// min_support 0).
ScenarioConfig DrawScenario(Rng& rng);

/// Serializes `config` as "key: value" lines (one per field, stable order,
/// doubles at full round-trip precision). The format is the sidecar body
/// scenario_fuzz writes next to a failure and the corpus-file format under
/// tests/scenario_corpus/.
std::string SerializeScenario(const ScenarioConfig& config);

/// Parses SerializeScenario output (unknown keys and lines without a ':'
/// are ignored, so the sidecar's metadata lines can share the file).
/// Returns false and fills `error` (may be null) on a malformed value.
bool ParseScenario(std::string_view text, ScenarioConfig* config,
                   std::string* error);

}  // namespace tnmine::synth

#endif  // TNMINE_SYNTH_SCENARIO_H_
