#ifndef TNMINE_SYNTH_KK_GENERATOR_H_
#define TNMINE_SYNTH_KK_GENERATOR_H_

#include <cstdint>
#include <vector>

#include "graph/labeled_graph.h"

namespace tnmine::synth {

/// Parameters of the Kuramochi–Karypis synthetic transaction generator
/// (the tool the paper borrowed from the FSG authors, footnote 3). The
/// defaults mirror the chemical-compound dataset the paper contrasts its
/// own data against: "4 edge labels, 66 vertex labels and 340 transactions
/// with average size 27.4 edges and 27 vertices".
///
/// Degenerate-parameter contract (relied on by tools/scenario_fuzz, which
/// draws arbitrary parameter combinations):
///   - num_transactions == 0  -> `transactions` is empty (seed patterns
///     are still drawn — they are the ground truth, not the data).
///   - num_seed_patterns == 0 -> `seed_patterns` is empty and every
///     transaction is assembled from random edges alone (the top-up path).
///   - num_vertex_labels / num_edge_labels below 1 are clamped to 1, so a
///     label cardinality of 1 (every vertex/edge identically labeled) is
///     the smallest reachable configuration.
/// No parameter combination aborts or reads out of bounds.
struct KkOptions {
  std::size_t num_transactions = 340;   ///< |D|
  double avg_transaction_edges = 27.4;  ///< |T|
  std::size_t num_seed_patterns = 20;   ///< |L|
  double avg_pattern_edges = 5.0;       ///< |I|
  int num_vertex_labels = 66;
  int num_edge_labels = 4;
  std::uint64_t seed = 1;

  // --- Scenario texture (all default-off; a default-constructed
  // KkOptions produces the byte-identical stream it always has). These
  // knobs let tools/scenario_fuzz compose transportation-flavoured
  // workloads: hub-and-spoke skew, seasonal route mixes, and service
  // disruptions (ROADMAP "Differential scenario fuzzing").

  /// > 0: the random top-up edges attach Zipf(hub_skew)-preferentially to
  /// low-id vertices, concentrating degree on a few hubs the way the OD
  /// network concentrates freight on distribution centres. 0 = uniform.
  double hub_skew = 0.0;

  /// > 0: the seed-pattern mix rotates with the transaction index: in
  /// phase p = (t / seasonality_period) % 2, the usable pattern pool is
  /// the first (p == 0) or second (p == 1) half of `seed_patterns` —
  /// patterns "in season" recur, the rest go quiet, so support varies by
  /// period the way weekly routes do. 0 = every pattern always in season.
  std::size_t seasonality_period = 0;

  /// Probability that a finished transaction is "disrupted": a random
  /// subset (up to half) of its edges is removed — cancelled legs of a
  /// route — and the transaction re-compacted (output stays dense).
  /// 0 = never.
  double disruption_rate = 0.0;

  /// > 0: seed-pattern choice inside the in-season pool is
  /// Zipf(motif_concentration)-skewed towards low-index patterns instead
  /// of uniform, so a few motifs dominate the mix. 0 = uniform.
  double motif_concentration = 0.0;
};

/// Generated transaction set plus the seed patterns that were embedded
/// (the potentially-frequent ground truth).
struct KkResult {
  std::vector<graph::LabeledGraph> transactions;
  std::vector<graph::LabeledGraph> seed_patterns;
};

/// Generates |D| graph transactions: a pool of |L| connected seed patterns
/// of average size |I| is drawn first; each transaction is assembled by
/// overlaying randomly-chosen seed patterns (sharing vertices with what is
/// already there, as the original generator does) until the target size
/// around |T| is reached, topping up with random edges. Increasing
/// `num_vertex_labels` reproduces the label-cardinality candidate
/// explosion the paper observed in FSG (Section 8 / footnote 3).
/// Every returned graph is dense (no tombstones), ready for the miners.
KkResult GenerateKkTransactions(const KkOptions& options);

}  // namespace tnmine::synth

#endif  // TNMINE_SYNTH_KK_GENERATOR_H_
