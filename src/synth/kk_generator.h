#ifndef TNMINE_SYNTH_KK_GENERATOR_H_
#define TNMINE_SYNTH_KK_GENERATOR_H_

#include <cstdint>
#include <vector>

#include "graph/labeled_graph.h"

namespace tnmine::synth {

/// Parameters of the Kuramochi–Karypis synthetic transaction generator
/// (the tool the paper borrowed from the FSG authors, footnote 3). The
/// defaults mirror the chemical-compound dataset the paper contrasts its
/// own data against: "4 edge labels, 66 vertex labels and 340 transactions
/// with average size 27.4 edges and 27 vertices".
struct KkOptions {
  std::size_t num_transactions = 340;   ///< |D|
  double avg_transaction_edges = 27.4;  ///< |T|
  std::size_t num_seed_patterns = 20;   ///< |L|
  double avg_pattern_edges = 5.0;       ///< |I|
  int num_vertex_labels = 66;
  int num_edge_labels = 4;
  std::uint64_t seed = 1;
};

/// Generated transaction set plus the seed patterns that were embedded
/// (the potentially-frequent ground truth).
struct KkResult {
  std::vector<graph::LabeledGraph> transactions;
  std::vector<graph::LabeledGraph> seed_patterns;
};

/// Generates |D| graph transactions: a pool of |L| connected seed patterns
/// of average size |I| is drawn first; each transaction is assembled by
/// overlaying randomly-chosen seed patterns (sharing vertices with what is
/// already there, as the original generator does) until the target size
/// around |T| is reached, topping up with random edges. Increasing
/// `num_vertex_labels` reproduces the label-cardinality candidate
/// explosion the paper observed in FSG (Section 8 / footnote 3).
KkResult GenerateKkTransactions(const KkOptions& options);

}  // namespace tnmine::synth

#endif  // TNMINE_SYNTH_KK_GENERATOR_H_
