#include "synth/scenario.h"

#include <cinttypes>
#include <cstdio>
#include <cstring>

#include "common/parse.h"

namespace tnmine::synth {

namespace {

/// Full-round-trip double formatting ("%.17g" survives parse-back exactly;
/// ParseDouble accepts the scientific notation it can emit).
std::string FormatDouble(double value) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", value);
  return buf;
}

void AppendField(std::string& out, const char* key, const std::string& v) {
  out += key;
  out += ": ";
  out += v;
  out += "\n";
}

}  // namespace

const char* ToString(ScenarioPartitioner partitioner) {
  switch (partitioner) {
    case ScenarioPartitioner::kNone:
      return "none";
    case ScenarioPartitioner::kMultilevel:
      return "multilevel";
  }
  return "none";
}

ScenarioConfig DrawScenario(Rng& rng) {
  ScenarioConfig config;
  KkOptions& g = config.generator;
  // ~5% empty transaction sets keep the all-empty paths under test.
  g.num_transactions = rng.NextBool(0.05) ? 0 : 4 + rng.NextBounded(28);
  g.avg_transaction_edges = rng.NextDouble(3.0, 12.0);
  g.num_seed_patterns = rng.NextBounded(6);  // 0 hits the no-pool path
  g.avg_pattern_edges = rng.NextDouble(1.5, 4.0);
  g.num_vertex_labels = 1 + static_cast<int>(rng.NextBounded(5));
  g.num_edge_labels = 1 + static_cast<int>(rng.NextBounded(3));
  g.seed = rng.Next();
  g.hub_skew = rng.NextBool(0.5) ? rng.NextDouble(0.5, 2.0) : 0.0;
  g.seasonality_period =
      rng.NextBool(0.5) ? 1 + rng.NextBounded(4) : 0;
  g.disruption_rate = rng.NextBool(0.5) ? rng.NextDouble(0.05, 0.4) : 0.0;
  g.motif_concentration =
      rng.NextBool(0.5) ? rng.NextDouble(0.5, 2.0) : 0.0;
  config.partitioner = rng.NextBool(0.3) ? ScenarioPartitioner::kMultilevel
                                         : ScenarioPartitioner::kNone;
  config.num_partitions = 2 + rng.NextBounded(4);
  config.min_support = rng.NextBounded(5);  // 0 and 1 are on purpose
  config.max_edges = 2 + rng.NextBounded(3);
  config.num_threads = rng.NextBool() ? 2 : 4;
  config.budget_fraction = rng.NextDouble(0.25, 0.75);
  return config;
}

std::string SerializeScenario(const ScenarioConfig& config) {
  const KkOptions& g = config.generator;
  std::string out;
  AppendField(out, "num_transactions", std::to_string(g.num_transactions));
  AppendField(out, "avg_transaction_edges",
              FormatDouble(g.avg_transaction_edges));
  AppendField(out, "num_seed_patterns", std::to_string(g.num_seed_patterns));
  AppendField(out, "avg_pattern_edges", FormatDouble(g.avg_pattern_edges));
  AppendField(out, "num_vertex_labels", std::to_string(g.num_vertex_labels));
  AppendField(out, "num_edge_labels", std::to_string(g.num_edge_labels));
  AppendField(out, "generator_seed", std::to_string(g.seed));
  AppendField(out, "hub_skew", FormatDouble(g.hub_skew));
  AppendField(out, "seasonality_period",
              std::to_string(g.seasonality_period));
  AppendField(out, "disruption_rate", FormatDouble(g.disruption_rate));
  AppendField(out, "motif_concentration",
              FormatDouble(g.motif_concentration));
  AppendField(out, "partitioner", ToString(config.partitioner));
  AppendField(out, "num_partitions", std::to_string(config.num_partitions));
  AppendField(out, "min_support", std::to_string(config.min_support));
  AppendField(out, "max_edges", std::to_string(config.max_edges));
  AppendField(out, "num_threads", std::to_string(config.num_threads));
  AppendField(out, "budget_fraction", FormatDouble(config.budget_fraction));
  return out;
}

bool ParseScenario(std::string_view text, ScenarioConfig* config,
                   std::string* error) {
  ScenarioConfig parsed;
  KkOptions& g = parsed.generator;
  bool ok = true;
  ForEachLine(text, [&](std::size_t line_number, std::string_view line) {
    const std::size_t sep = line.find(':');
    if (sep == std::string_view::npos) return true;  // metadata / prose
    std::string_view key = line.substr(0, sep);
    std::string_view value = line.substr(sep + 1);
    while (!value.empty() && (value.front() == ' ' || value.front() == '\t')) {
      value.remove_prefix(1);
    }
    auto fail = [&](const char* what) {
      if (error != nullptr) {
        *error = "line " + std::to_string(line_number) + ": bad " +
                 std::string(what) + " value '" + std::string(value) + "'";
      }
      ok = false;
      return false;  // stop at the first malformed value
    };
    auto size_field = [&](std::size_t* out) {
      std::size_t v = 0;
      if (!ParseSize(value, &v)) return fail(std::string(key).c_str());
      *out = v;
      return true;
    };
    auto double_field = [&](double* out) {
      double v = 0;
      if (!ParseFiniteDouble(value, &v)) return fail(std::string(key).c_str());
      *out = v;
      return true;
    };
    if (key == "num_transactions") return size_field(&g.num_transactions);
    if (key == "avg_transaction_edges") {
      return double_field(&g.avg_transaction_edges);
    }
    if (key == "num_seed_patterns") return size_field(&g.num_seed_patterns);
    if (key == "avg_pattern_edges") return double_field(&g.avg_pattern_edges);
    if (key == "num_vertex_labels" || key == "num_edge_labels") {
      std::int32_t v = 0;
      if (!ParseInt32(value, &v)) return fail(std::string(key).c_str());
      (key == "num_vertex_labels" ? g.num_vertex_labels : g.num_edge_labels) =
          v;
      return true;
    }
    if (key == "generator_seed") {
      std::uint64_t v = 0;
      if (!ParseUint64(value, &v)) return fail("generator_seed");
      g.seed = v;
      return true;
    }
    if (key == "hub_skew") return double_field(&g.hub_skew);
    if (key == "seasonality_period") return size_field(&g.seasonality_period);
    if (key == "disruption_rate") return double_field(&g.disruption_rate);
    if (key == "motif_concentration") {
      return double_field(&g.motif_concentration);
    }
    if (key == "partitioner") {
      if (value == "none") {
        parsed.partitioner = ScenarioPartitioner::kNone;
      } else if (value == "multilevel") {
        parsed.partitioner = ScenarioPartitioner::kMultilevel;
      } else {
        return fail("partitioner");
      }
      return true;
    }
    if (key == "num_partitions") return size_field(&parsed.num_partitions);
    if (key == "min_support") return size_field(&parsed.min_support);
    if (key == "max_edges") return size_field(&parsed.max_edges);
    if (key == "num_threads") {
      std::int32_t v = 0;
      if (!ParseInt32(value, &v) || v < 1) return fail("num_threads");
      parsed.num_threads = v;
      return true;
    }
    if (key == "budget_fraction") return double_field(&parsed.budget_fraction);
    return true;  // unknown key: sidecar metadata
  });
  if (ok && config != nullptr) *config = parsed;
  return ok;
}

}  // namespace tnmine::synth
