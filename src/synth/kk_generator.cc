#include "synth/kk_generator.h"

#include <algorithm>
#include <cmath>

#include "common/random.h"

namespace tnmine::synth {

using graph::EdgeId;
using graph::Label;
using graph::LabeledGraph;
using graph::VertexId;

namespace {

/// A connected random graph: a random tree plus a few extra edges.
LabeledGraph RandomConnectedPattern(Rng& rng, std::size_t edges,
                                    int vlabels, int elabels) {
  LabeledGraph g;
  const std::size_t tree_edges = std::max<std::size_t>(1, edges);
  const std::size_t vertices =
      std::max<std::size_t>(2, tree_edges * 3 / 4 + 1);
  for (std::size_t i = 0; i < vertices; ++i) {
    g.AddVertex(static_cast<Label>(rng.NextBounded(vlabels)));
  }
  // Random tree over the vertices (each vertex attaches to an earlier
  // one), random direction.
  for (VertexId v = 1; v < vertices; ++v) {
    const VertexId u = static_cast<VertexId>(rng.NextBounded(v));
    const Label label = static_cast<Label>(rng.NextBounded(elabels));
    if (rng.NextBool()) {
      g.AddEdge(u, v, label);
    } else {
      g.AddEdge(v, u, label);
    }
  }
  while (g.num_edges() < edges) {
    const VertexId a = static_cast<VertexId>(rng.NextBounded(vertices));
    const VertexId b = static_cast<VertexId>(rng.NextBounded(vertices));
    g.AddEdge(a, b, static_cast<Label>(rng.NextBounded(elabels)));
  }
  return g;
}

/// Approximately-Poisson positive size around `mean`.
std::size_t DrawSize(Rng& rng, double mean) {
  const double x = rng.NextGaussian(mean, std::sqrt(std::max(1.0, mean)));
  return static_cast<std::size_t>(std::max(1.0, std::round(x)));
}

}  // namespace

KkResult GenerateKkTransactions(const KkOptions& options) {
  // Degenerate parameters degrade to honest small results instead of
  // aborting (see the header contract): the scenario fuzzer feeds this
  // generator arbitrary draws.
  const int vlabels = std::max(1, options.num_vertex_labels);
  const int elabels = std::max(1, options.num_edge_labels);
  Rng rng(options.seed);
  KkResult result;

  for (std::size_t i = 0; i < options.num_seed_patterns; ++i) {
    result.seed_patterns.push_back(RandomConnectedPattern(
        rng, DrawSize(rng, options.avg_pattern_edges), vlabels, elabels));
  }

  // Picks a vertex of `txn` for a random top-up edge endpoint: uniform by
  // default, Zipf-skewed towards low ids when hub skew is on (low ids are
  // the oldest vertices — the "hubs" every overlay can reuse).
  auto pick_vertex = [&](const LabeledGraph& txn) -> VertexId {
    if (options.hub_skew > 0.0) {
      return static_cast<VertexId>(
          rng.NextZipf(txn.num_vertices(), options.hub_skew));
    }
    return static_cast<VertexId>(rng.NextBounded(txn.num_vertices()));
  };

  for (std::size_t t = 0; t < options.num_transactions; ++t) {
    const std::size_t target = DrawSize(rng, options.avg_transaction_edges);
    LabeledGraph txn;
    // The in-season slice of the seed pool for this transaction (the
    // whole pool unless seasonality is on).
    std::size_t pool_begin = 0;
    std::size_t pool_size = result.seed_patterns.size();
    if (options.seasonality_period > 0 && pool_size > 1) {
      const std::size_t half = pool_size / 2;
      const bool second_half = (t / options.seasonality_period) % 2 == 1;
      pool_begin = second_half ? half : 0;
      pool_size = second_half ? pool_size - half : half;
    }
    while (pool_size > 0 && txn.num_edges() < target) {
      std::size_t pick;
      if (options.motif_concentration > 0.0) {
        pick = rng.NextZipf(pool_size, options.motif_concentration);
      } else {
        pick = rng.NextBounded(pool_size);
      }
      const LabeledGraph& seed = result.seed_patterns[pool_begin + pick];
      // Embed the seed: map each seed vertex either to a fresh vertex or
      // (with some probability, when the transaction already has
      // vertices) to a random existing vertex with a matching label — the
      // overlay step of the original generator.
      std::vector<VertexId> map(seed.num_vertices());
      for (VertexId sv = 0; sv < seed.num_vertices(); ++sv) {
        VertexId target_v = graph::kInvalidVertex;
        if (txn.num_vertices() > 0 && rng.NextBool(0.3)) {
          // Try a few times to find a label-compatible existing vertex.
          for (int tries = 0; tries < 4; ++tries) {
            const VertexId candidate = static_cast<VertexId>(
                rng.NextBounded(txn.num_vertices()));
            if (txn.vertex_label(candidate) == seed.vertex_label(sv)) {
              target_v = candidate;
              break;
            }
          }
        }
        if (target_v == graph::kInvalidVertex) {
          target_v = txn.AddVertex(seed.vertex_label(sv));
        }
        map[sv] = target_v;
      }
      seed.ForEachEdge([&](EdgeId e) {
        const auto& edge = seed.edge(e);
        txn.AddEdge(map[edge.src], map[edge.dst], edge.label);
      });
    }
    // Top up with random edges if the overlay undershot (always the case
    // with an empty seed pool) and trim is impossible; a little size
    // noise is fine.
    while (txn.num_edges() < target) {
      if (txn.num_vertices() < 2) {
        txn.AddVertex(static_cast<Label>(rng.NextBounded(vlabels)));
        continue;
      }
      txn.AddEdge(pick_vertex(txn), pick_vertex(txn),
                  static_cast<Label>(rng.NextBounded(elabels)));
    }
    if (options.disruption_rate > 0.0 &&
        rng.NextBool(options.disruption_rate) && txn.num_edges() > 1) {
      // Disruption: cancel up to half of the legs, then re-compact so the
      // emitted transaction is dense again.
      const std::size_t cancels =
          1 + rng.NextBounded(std::max<std::size_t>(1, txn.num_edges() / 2));
      std::vector<EdgeId> live = txn.LiveEdges();
      rng.Shuffle(live);
      for (std::size_t i = 0; i < cancels && i < live.size(); ++i) {
        txn.RemoveEdge(live[i]);
      }
      txn = txn.Compact(/*drop_isolated_vertices=*/true);
    }
    result.transactions.push_back(std::move(txn));
  }
  return result;
}

}  // namespace tnmine::synth
