#include "synth/kk_generator.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "common/random.h"

namespace tnmine::synth {

using graph::Label;
using graph::LabeledGraph;
using graph::VertexId;

namespace {

/// A connected random graph: a random tree plus a few extra edges.
LabeledGraph RandomConnectedPattern(Rng& rng, std::size_t edges,
                                    int vlabels, int elabels) {
  LabeledGraph g;
  const std::size_t tree_edges = std::max<std::size_t>(1, edges);
  const std::size_t vertices =
      std::max<std::size_t>(2, tree_edges * 3 / 4 + 1);
  for (std::size_t i = 0; i < vertices; ++i) {
    g.AddVertex(static_cast<Label>(rng.NextBounded(vlabels)));
  }
  // Random tree over the vertices (each vertex attaches to an earlier
  // one), random direction.
  for (VertexId v = 1; v < vertices; ++v) {
    const VertexId u = static_cast<VertexId>(rng.NextBounded(v));
    const Label label = static_cast<Label>(rng.NextBounded(elabels));
    if (rng.NextBool()) {
      g.AddEdge(u, v, label);
    } else {
      g.AddEdge(v, u, label);
    }
  }
  while (g.num_edges() < edges) {
    const VertexId a = static_cast<VertexId>(rng.NextBounded(vertices));
    const VertexId b = static_cast<VertexId>(rng.NextBounded(vertices));
    g.AddEdge(a, b, static_cast<Label>(rng.NextBounded(elabels)));
  }
  return g;
}

/// Approximately-Poisson positive size around `mean`.
std::size_t DrawSize(Rng& rng, double mean) {
  const double x = rng.NextGaussian(mean, std::sqrt(std::max(1.0, mean)));
  return static_cast<std::size_t>(std::max(1.0, std::round(x)));
}

}  // namespace

KkResult GenerateKkTransactions(const KkOptions& options) {
  TNMINE_CHECK(options.num_transactions >= 1);
  TNMINE_CHECK(options.num_seed_patterns >= 1);
  TNMINE_CHECK(options.num_vertex_labels >= 1);
  TNMINE_CHECK(options.num_edge_labels >= 1);
  Rng rng(options.seed);
  KkResult result;

  for (std::size_t i = 0; i < options.num_seed_patterns; ++i) {
    result.seed_patterns.push_back(RandomConnectedPattern(
        rng, DrawSize(rng, options.avg_pattern_edges),
        options.num_vertex_labels, options.num_edge_labels));
  }

  for (std::size_t t = 0; t < options.num_transactions; ++t) {
    const std::size_t target = DrawSize(rng, options.avg_transaction_edges);
    LabeledGraph txn;
    while (txn.num_edges() < target) {
      const LabeledGraph& seed =
          result.seed_patterns[rng.NextBounded(
              result.seed_patterns.size())];
      // Embed the seed: map each seed vertex either to a fresh vertex or
      // (with some probability, when the transaction already has
      // vertices) to a random existing vertex with a matching label — the
      // overlay step of the original generator.
      std::vector<VertexId> map(seed.num_vertices());
      for (VertexId sv = 0; sv < seed.num_vertices(); ++sv) {
        VertexId target_v = graph::kInvalidVertex;
        if (txn.num_vertices() > 0 && rng.NextBool(0.3)) {
          // Try a few times to find a label-compatible existing vertex.
          for (int tries = 0; tries < 4; ++tries) {
            const VertexId candidate = static_cast<VertexId>(
                rng.NextBounded(txn.num_vertices()));
            if (txn.vertex_label(candidate) == seed.vertex_label(sv)) {
              target_v = candidate;
              break;
            }
          }
        }
        if (target_v == graph::kInvalidVertex) {
          target_v = txn.AddVertex(seed.vertex_label(sv));
        }
        map[sv] = target_v;
      }
      seed.ForEachEdge([&](graph::EdgeId e) {
        const auto& edge = seed.edge(e);
        txn.AddEdge(map[edge.src], map[edge.dst], edge.label);
      });
    }
    // Top up with random edges if the overlay undershot (rare) and trim is
    // impossible; a little size noise is fine.
    while (txn.num_edges() < target) {
      if (txn.num_vertices() < 2) {
        txn.AddVertex(
            static_cast<Label>(rng.NextBounded(options.num_vertex_labels)));
        continue;
      }
      txn.AddEdge(
          static_cast<VertexId>(rng.NextBounded(txn.num_vertices())),
          static_cast<VertexId>(rng.NextBounded(txn.num_vertices())),
          static_cast<Label>(rng.NextBounded(options.num_edge_labels)));
    }
    result.transactions.push_back(std::move(txn));
  }
  return result;
}

}  // namespace tnmine::synth
