#include "synth/planted.h"

#include <algorithm>

#include "common/check.h"
#include "common/random.h"
#include "iso/canonical.h"

namespace tnmine::synth {

using graph::Label;
using graph::LabeledGraph;
using graph::VertexId;

namespace {

LabeledGraph RandomConnectedPattern(Rng& rng, std::size_t edges,
                                    int vlabels, int elabels) {
  LabeledGraph g;
  const std::size_t vertices = std::max<std::size_t>(2, edges * 3 / 4 + 1);
  for (std::size_t i = 0; i < vertices; ++i) {
    g.AddVertex(static_cast<Label>(rng.NextBounded(vlabels)));
  }
  for (VertexId v = 1; v < vertices; ++v) {
    const VertexId u = static_cast<VertexId>(rng.NextBounded(v));
    const Label label = static_cast<Label>(rng.NextBounded(elabels));
    if (rng.NextBool()) {
      g.AddEdge(u, v, label);
    } else {
      g.AddEdge(v, u, label);
    }
  }
  while (g.num_edges() < edges) {
    g.AddEdge(static_cast<VertexId>(rng.NextBounded(vertices)),
              static_cast<VertexId>(rng.NextBounded(vertices)),
              static_cast<Label>(rng.NextBounded(elabels)));
  }
  return g;
}

}  // namespace

PlantedResult GeneratePlantedGraph(const PlantedOptions& options) {
  TNMINE_CHECK(options.num_patterns >= 1);
  TNMINE_CHECK(options.pattern_edges >= 1);
  TNMINE_CHECK(options.instances_per_pattern >= 1);
  Rng rng(options.seed);
  PlantedResult result;

  // Draw pairwise non-isomorphic patterns.
  std::vector<std::string> codes;
  std::size_t attempts = 0;
  while (result.patterns.size() < options.num_patterns) {
    TNMINE_CHECK_MSG(++attempts < 1000 * options.num_patterns,
                     "cannot draw enough distinct patterns; enlarge the "
                     "label alphabets or pattern size");
    LabeledGraph candidate = RandomConnectedPattern(
        rng, options.pattern_edges, options.num_vertex_labels,
        options.num_edge_labels);
    std::string code = iso::CanonicalCode(candidate);
    if (std::find(codes.begin(), codes.end(), code) != codes.end()) {
      continue;
    }
    codes.push_back(std::move(code));
    result.patterns.push_back(std::move(candidate));
  }

  // Embed vertex-disjoint instances.
  LabeledGraph& g = result.graph;
  for (const LabeledGraph& pattern : result.patterns) {
    for (std::size_t i = 0; i < options.instances_per_pattern; ++i) {
      std::vector<VertexId> map(pattern.num_vertices());
      for (VertexId pv = 0; pv < pattern.num_vertices(); ++pv) {
        map[pv] = g.AddVertex(pattern.vertex_label(pv));
      }
      pattern.ForEachEdge([&](graph::EdgeId e) {
        const auto& edge = pattern.edge(e);
        g.AddEdge(map[edge.src], map[edge.dst], edge.label);
      });
    }
  }
  // Noise vertices and joining edges (single-graph glue).
  for (std::size_t i = 0; i < options.noise_vertices; ++i) {
    g.AddVertex(
        static_cast<Label>(rng.NextBounded(options.num_vertex_labels)));
  }
  for (std::size_t i = 0; i < options.noise_edges && g.num_vertices() >= 2;
       ++i) {
    g.AddEdge(static_cast<VertexId>(rng.NextBounded(g.num_vertices())),
              static_cast<VertexId>(rng.NextBounded(g.num_vertices())),
              static_cast<Label>(rng.NextBounded(options.num_edge_labels)));
  }
  return result;
}

double PatternRecall(const std::vector<LabeledGraph>& truth,
                     const pattern::PatternRegistry& mined) {
  if (truth.empty()) return 0.0;
  std::size_t found = 0;
  for (const LabeledGraph& pattern : truth) {
    found += mined.Contains(pattern);
  }
  return static_cast<double>(found) / static_cast<double>(truth.size());
}

}  // namespace tnmine::synth
