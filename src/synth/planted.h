#ifndef TNMINE_SYNTH_PLANTED_H_
#define TNMINE_SYNTH_PLANTED_H_

#include <cstdint>
#include <vector>

#include "graph/labeled_graph.h"
#include "pattern/pattern.h"

namespace tnmine::synth {

/// Parameters for the planted-pattern single-graph generator — the
/// "simulated data constructed by joining subgraphs with known frequent
/// patterns to form a single graph" of the paper's footnote 2, used to
/// measure the recall of partition-then-mine (Algorithm 1).
struct PlantedOptions {
  std::size_t num_patterns = 5;
  std::size_t pattern_edges = 4;
  std::size_t instances_per_pattern = 30;
  /// Random vertices/edges stitched around the instances so the result is
  /// one connected-ish graph rather than a disjoint union.
  std::size_t noise_vertices = 100;
  std::size_t noise_edges = 200;
  int num_vertex_labels = 1;  ///< 1 = uniform (Section 5's setting)
  int num_edge_labels = 6;
  std::uint64_t seed = 1;
};

struct PlantedResult {
  graph::LabeledGraph graph;
  /// The planted ground-truth patterns (dense, connected, pairwise
  /// non-isomorphic).
  std::vector<graph::LabeledGraph> patterns;
};

/// Generates a single graph containing `instances_per_pattern`
/// vertex-disjoint embeddings of each planted pattern, joined into one
/// graph by noise edges.
PlantedResult GeneratePlantedGraph(const PlantedOptions& options);

/// Fraction of `truth` patterns whose isomorphism class appears in
/// `mined` — the footnote-2 recall measure.
double PatternRecall(const std::vector<graph::LabeledGraph>& truth,
                     const pattern::PatternRegistry& mined);

}  // namespace tnmine::synth

#endif  // TNMINE_SYNTH_PLANTED_H_
