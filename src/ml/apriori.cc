#include "ml/apriori.h"

#include <algorithm>
#include <limits>
#include <map>
#include <sstream>

#include "common/check.h"

namespace tnmine::ml {

namespace {

/// True when `row` contains every item of `items`.
bool RowSupports(const std::vector<double>& row,
                 const std::vector<Item>& items) {
  for (const Item& item : items) {
    if (static_cast<int>(row[static_cast<std::size_t>(item.attribute)]) !=
        item.value) {
      return false;
    }
  }
  return true;
}

std::size_t CountSupport(const AttributeTable& table,
                         const std::vector<Item>& items) {
  std::size_t count = 0;
  for (std::size_t r = 0; r < table.num_rows(); ++r) {
    count += RowSupports(table.row(r), items);
  }
  return count;
}

}  // namespace

AprioriResult MineAssociationRules(const AttributeTable& table,
                                   const AprioriOptions& options) {
  AprioriResult result;
  for (const Attribute& attr : table.attributes()) {
    TNMINE_CHECK_MSG(attr.kind == AttrKind::kNominal,
                     "Apriori needs a fully-nominal table (Discretize "
                     "first): %s is numeric",
                     attr.name.c_str());
  }
  const std::size_t n = table.num_rows();
  if (n == 0) return result;
  const std::size_t min_count = static_cast<std::size_t>(
      std::max(1.0, options.min_support * static_cast<double>(n)));

  // Level 1.
  std::vector<ItemSet> frontier;
  for (int a = 0; a < table.num_attributes(); ++a) {
    const Attribute& attr = table.attribute(a);
    std::vector<std::size_t> counts(attr.values.size(), 0);
    for (std::size_t r = 0; r < n; ++r) {
      ++counts[static_cast<std::size_t>(table.value(r, a))];
    }
    for (std::size_t v = 0; v < counts.size(); ++v) {
      if (counts[v] >= min_count) {
        frontier.push_back(
            ItemSet{{Item{a, static_cast<int>(v)}}, counts[v]});
      }
    }
  }
  // Single-item support lookup for the rule metrics.
  std::map<Item, std::size_t> item_support;
  for (const ItemSet& s : frontier) item_support[s.items[0]] = s.count;

  for (const ItemSet& s : frontier) result.frequent_itemsets.push_back(s);

  // Levels 2..max.
  std::size_t level = 1;
  while (!frontier.empty() && level < options.max_itemset_size) {
    ++level;
    // Join pairs sharing the first level-1 items; require the last items'
    // attributes to differ (at most one item per attribute).
    std::vector<ItemSet> next;
    for (std::size_t i = 0; i < frontier.size(); ++i) {
      for (std::size_t j = i + 1; j < frontier.size(); ++j) {
        const auto& a = frontier[i].items;
        const auto& b = frontier[j].items;
        if (!std::equal(a.begin(), a.end() - 1, b.begin())) continue;
        if (a.back().attribute >= b.back().attribute) continue;
        std::vector<Item> candidate = a;
        candidate.push_back(b.back());
        // Apriori prune: all (k-1)-subsets must be frequent. The two
        // generating parents cover the subsets missing the last or
        // second-to-last item; check the rest.
        bool prunable = false;
        if (candidate.size() > 2) {
          for (std::size_t drop = 0; drop + 2 < candidate.size(); ++drop) {
            std::vector<Item> sub;
            for (std::size_t t = 0; t < candidate.size(); ++t) {
              if (t != drop) sub.push_back(candidate[t]);
            }
            const bool found = std::any_of(
                frontier.begin(), frontier.end(),
                [&](const ItemSet& s) { return s.items == sub; });
            if (!found) {
              prunable = true;
              break;
            }
          }
        }
        if (prunable) continue;
        const std::size_t count = CountSupport(table, candidate);
        if (count >= min_count) {
          next.push_back(ItemSet{std::move(candidate), count});
        }
      }
    }
    for (const ItemSet& s : next) result.frequent_itemsets.push_back(s);
    frontier = std::move(next);
  }

  // Rule generation: single-item consequents from every itemset of size
  // >= 2.
  std::map<std::vector<Item>, std::size_t> itemset_support;
  for (const ItemSet& s : result.frequent_itemsets) {
    itemset_support[s.items] = s.count;
  }
  const double nd = static_cast<double>(n);
  for (const ItemSet& s : result.frequent_itemsets) {
    if (s.items.size() < 2) continue;
    for (std::size_t c = 0; c < s.items.size(); ++c) {
      const Item consequent = s.items[c];
      std::vector<Item> lhs;
      for (std::size_t t = 0; t < s.items.size(); ++t) {
        if (t != c) lhs.push_back(s.items[t]);
      }
      const auto lhs_it = itemset_support.find(lhs);
      TNMINE_DCHECK(lhs_it != itemset_support.end());
      const double lhs_count = static_cast<double>(lhs_it->second);
      const double confidence = static_cast<double>(s.count) / lhs_count;
      if (confidence < options.min_confidence) continue;
      const double rhs_frac =
          static_cast<double>(item_support.at(consequent)) / nd;
      AssociationRule rule;
      rule.lhs = std::move(lhs);
      rule.rhs = {consequent};
      rule.support = static_cast<double>(s.count) / nd;
      rule.confidence = confidence;
      rule.lift = rhs_frac > 0 ? confidence / rhs_frac : 0.0;
      rule.leverage = rule.support - (lhs_count / nd) * rhs_frac;
      rule.conviction = confidence >= 1.0
                            ? std::numeric_limits<double>::infinity()
                            : (1.0 - rhs_frac) / (1.0 - confidence);
      result.rules.push_back(std::move(rule));
    }
  }
  std::sort(result.rules.begin(), result.rules.end(),
            [](const AssociationRule& a, const AssociationRule& b) {
              if (a.confidence != b.confidence) {
                return a.confidence > b.confidence;
              }
              return a.support > b.support;
            });
  if (options.max_rules != 0 && result.rules.size() > options.max_rules) {
    result.rules.resize(options.max_rules);
  }
  return result;
}

std::string RuleToString(const AttributeTable& table,
                         const AssociationRule& rule) {
  std::ostringstream out;
  auto emit = [&](const std::vector<Item>& items) {
    for (std::size_t i = 0; i < items.size(); ++i) {
      if (i > 0) out << " AND ";
      const Attribute& attr = table.attribute(items[i].attribute);
      out << attr.name << "="
          << attr.values[static_cast<std::size_t>(items[i].value)];
    }
  };
  emit(rule.lhs);
  out << " -> ";
  emit(rule.rhs);
  char buf[96];
  std::snprintf(buf, sizeof(buf), " (sup %.3f, conf %.2f, lift %.2f)",
                rule.support, rule.confidence, rule.lift);
  out << buf;
  return out.str();
}

}  // namespace tnmine::ml
