#ifndef TNMINE_ML_ARFF_H_
#define TNMINE_ML_ARFF_H_

#include <string>

#include "common/parse.h"
#include "ml/attribute_table.h"

namespace tnmine::ml {

/// Serializes `table` as a Weka ARFF document — the interchange format of
/// the tool the paper's Section-7 experiments ran in. Numeric attributes
/// become `@attribute <name> numeric`, nominal ones enumerate their
/// values.
std::string WriteArff(const AttributeTable& table,
                      const std::string& relation_name);

/// Parses an ARFF document produced by WriteArff (a practical subset of
/// the format: `@relation`, `@attribute ... numeric`, `@attribute
/// {v1,v2,...}`, `@data` with comma-separated rows; `%` comments and blank
/// lines are skipped; strings may be single-quoted). Numeric cells are
/// parsed with the strict locale-independent helpers in common/parse.h.
/// Returns false and fills `error` (line/message) on malformed input.
bool ReadArff(const std::string& text, AttributeTable* table,
              ParseError* error);
/// Legacy overload reporting the formatted error as a string.
bool ReadArff(const std::string& text, AttributeTable* table,
              std::string* error);

/// Convenience wrappers over files.
bool SaveArff(const AttributeTable& table, const std::string& relation_name,
              const std::string& path, std::string* error);
bool LoadArff(const std::string& path, AttributeTable* table,
              std::string* error);

}  // namespace tnmine::ml

#endif  // TNMINE_ML_ARFF_H_
