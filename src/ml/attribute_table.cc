#include "ml/attribute_table.h"

#include <algorithm>

#include "common/check.h"

namespace tnmine::ml {

int AttributeTable::AddNumericAttribute(const std::string& name) {
  TNMINE_CHECK_MSG(rows_.empty(), "add attributes before rows");
  attributes_.push_back(Attribute{name, AttrKind::kNumeric, {}});
  return static_cast<int>(attributes_.size()) - 1;
}

int AttributeTable::AddNominalAttribute(const std::string& name,
                                        std::vector<std::string> values) {
  TNMINE_CHECK_MSG(rows_.empty(), "add attributes before rows");
  TNMINE_CHECK(!values.empty());
  attributes_.push_back(
      Attribute{name, AttrKind::kNominal, std::move(values)});
  return static_cast<int>(attributes_.size()) - 1;
}

void AttributeTable::AddRow(std::vector<double> row) {
  TNMINE_CHECK(row.size() == attributes_.size());
  for (std::size_t i = 0; i < row.size(); ++i) {
    if (attributes_[i].kind == AttrKind::kNominal) {
      const auto index = static_cast<std::size_t>(row[i]);
      TNMINE_CHECK_MSG(row[i] >= 0 &&
                           index < attributes_[i].values.size() &&
                           row[i] == static_cast<double>(index),
                       "invalid nominal index in column %zu", i);
    }
  }
  rows_.push_back(std::move(row));
}

const Attribute& AttributeTable::attribute(int index) const {
  TNMINE_DCHECK(index >= 0 &&
                index < static_cast<int>(attributes_.size()));
  return attributes_[static_cast<std::size_t>(index)];
}

double AttributeTable::value(std::size_t row, int attribute) const {
  TNMINE_DCHECK(row < rows_.size());
  return rows_[row][static_cast<std::size_t>(attribute)];
}

const std::vector<double>& AttributeTable::row(std::size_t index) const {
  TNMINE_DCHECK(index < rows_.size());
  return rows_[index];
}

int AttributeTable::AttributeIndex(const std::string& name) const {
  for (std::size_t i = 0; i < attributes_.size(); ++i) {
    if (attributes_[i].name == name) return static_cast<int>(i);
  }
  return -1;
}

std::vector<double> AttributeTable::Column(int attribute) const {
  std::vector<double> out;
  out.reserve(rows_.size());
  for (const auto& row : rows_) {
    out.push_back(row[static_cast<std::size_t>(attribute)]);
  }
  return out;
}

const std::string& AttributeTable::NominalValue(std::size_t row,
                                                int attribute) const {
  const Attribute& attr = this->attribute(attribute);
  TNMINE_CHECK(attr.kind == AttrKind::kNominal);
  return attr.values[static_cast<std::size_t>(value(row, attribute))];
}

AttributeTable AttributeTable::FromTransactions(
    const data::TransactionDataset& ds) {
  AttributeTable table;
  table.AddNumericAttribute("ORIGIN_LATITUDE");
  table.AddNumericAttribute("ORIGIN_LONGITUDE");
  table.AddNumericAttribute("DEST_LATITUDE");
  table.AddNumericAttribute("DEST_LONGITUDE");
  table.AddNumericAttribute("TOTAL_DISTANCE");
  table.AddNumericAttribute("GROSS_WEIGHT");
  table.AddNumericAttribute("MOVE_TRANSIT_HOURS");
  table.AddNominalAttribute("TRANS_MODE", {"TL", "LTL"});
  for (const data::Transaction& t : ds.transactions()) {
    table.AddRow({t.origin_latitude, t.origin_longitude, t.dest_latitude,
                  t.dest_longitude, t.total_distance, t.gross_weight,
                  t.transit_hours,
                  static_cast<double>(static_cast<int>(t.mode))});
  }
  return table;
}

AttributeTable AttributeTable::Discretized(int num_bins,
                                           bool equal_frequency) const {
  TNMINE_CHECK(num_bins >= 1);
  AttributeTable out;
  std::vector<Discretizer> discretizers;
  discretizers.reserve(attributes_.size());
  for (int a = 0; a < num_attributes(); ++a) {
    const Attribute& attr = attributes_[static_cast<std::size_t>(a)];
    if (attr.kind == AttrKind::kNominal) {
      out.AddNominalAttribute(attr.name, attr.values);
      discretizers.push_back(Discretizer::FromCutPoints({}));
      continue;
    }
    const std::vector<double> column = Column(a);
    Discretizer d = column.empty()
                        ? Discretizer::FromCutPoints({})
                        : (equal_frequency
                               ? Discretizer::EqualFrequency(column,
                                                             num_bins)
                               : Discretizer::EqualWidth(column, num_bins));
    std::vector<std::string> values;
    for (int b = 0; b < d.num_bins(); ++b) {
      values.push_back(d.IntervalLabel(b));
    }
    out.AddNominalAttribute(attr.name, std::move(values));
    discretizers.push_back(std::move(d));
  }
  for (const auto& row : rows_) {
    std::vector<double> cells(row.size());
    for (std::size_t a = 0; a < row.size(); ++a) {
      if (attributes_[a].kind == AttrKind::kNominal) {
        cells[a] = row[a];
      } else {
        cells[a] = discretizers[a].Bin(row[a]);
      }
    }
    out.AddRow(std::move(cells));
  }
  return out;
}

void AttributeTable::Split(double test_fraction, Rng& rng,
                           AttributeTable* train,
                           AttributeTable* test) const {
  TNMINE_CHECK(test_fraction >= 0.0 && test_fraction <= 1.0);
  *train = AttributeTable();
  *test = AttributeTable();
  train->attributes_ = attributes_;
  test->attributes_ = attributes_;
  std::vector<std::size_t> order(rows_.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  rng.Shuffle(order);
  const std::size_t test_count = static_cast<std::size_t>(
      test_fraction * static_cast<double>(rows_.size()));
  for (std::size_t i = 0; i < order.size(); ++i) {
    if (i < test_count) {
      test->rows_.push_back(rows_[order[i]]);
    } else {
      train->rows_.push_back(rows_[order[i]]);
    }
  }
}

}  // namespace tnmine::ml
