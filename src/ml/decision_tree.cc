#include "ml/decision_tree.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "common/check.h"

namespace tnmine::ml {

namespace {

double Entropy(const std::vector<double>& counts, double total) {
  if (total <= 0) return 0.0;
  double h = 0.0;
  for (double c : counts) {
    if (c <= 0) continue;
    const double p = c / total;
    h -= p * std::log2(p);
  }
  return h;
}

/// Acklam's rational approximation to the standard normal quantile.
double NormalInverse(double p) {
  TNMINE_CHECK(p > 0.0 && p < 1.0);
  static const double a[] = {-3.969683028665376e+01, 2.209460984245205e+02,
                             -2.759285104469687e+02, 1.383577518672690e+02,
                             -3.066479806614716e+01, 2.506628277459239e+00};
  static const double b[] = {-5.447609879822406e+01, 1.615858368580409e+02,
                             -1.556989798598866e+02, 6.680131188771972e+01,
                             -1.328068155288572e+01};
  static const double c[] = {-7.784894002430293e-03, -3.223964580411365e-01,
                             -2.400758277161838e+00, -2.549732539343734e+00,
                             4.374664141464968e+00,  2.938163982698783e+00};
  static const double d[] = {7.784695709041462e-03, 3.224671290700398e-01,
                             2.445134137142996e+00, 3.754408661907416e+00};
  const double plow = 0.02425;
  double q, r;
  if (p < plow) {
    q = std::sqrt(-2 * std::log(p));
    return (((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q +
            c[5]) /
           ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1);
  }
  if (p > 1 - plow) {
    q = std::sqrt(-2 * std::log(1 - p));
    return -(((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q +
             c[5]) /
           ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1);
  }
  q = p - 0.5;
  r = q * q;
  return (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r +
          a[5]) *
         q /
         (((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) * r + 1);
}

}  // namespace

double PessimisticExtraErrors(double n, double e, double cf) {
  // Port of Weka's Utils.addErrs (the J4.8 pruning bound).
  if (cf > 0.5) return e;  // no pessimism requested
  if (e < 1) {
    const double base = n * (1 - std::pow(cf, 1 / n));
    if (e == 0) return base;
    return base + e * (PessimisticExtraErrors(n, 1, cf) - base);
  }
  if (e + 0.5 >= n) return std::max(n - e, 0.0);
  const double z = NormalInverse(1 - cf);
  const double f = (e + 0.5) / n;
  const double r =
      (f + z * z / (2 * n) +
       z * std::sqrt(f / n - f * f / n + z * z / (4 * n * n))) /
      (1 + z * z / n);
  return r * n - e;
}

int DecisionTree::BuildNode(const AttributeTable& table, int class_attribute,
                            const DecisionTreeOptions& options,
                            std::vector<std::size_t>& rows, int depth,
                            std::vector<char>& used_nominal) {
  const Attribute& class_attr = table.attribute(class_attribute);
  const std::size_t num_classes = class_attr.values.size();
  std::vector<double> counts(num_classes, 0.0);
  for (std::size_t r : rows) {
    counts[static_cast<std::size_t>(table.value(r, class_attribute))] += 1;
  }
  const double total = static_cast<double>(rows.size());
  const int node_index = static_cast<int>(nodes_.size());
  nodes_.emplace_back();
  {
    Node& node = nodes_.back();
    node.count = total;
    node.prediction = static_cast<int>(
        std::max_element(counts.begin(), counts.end()) - counts.begin());
    node.errors =
        total - counts[static_cast<std::size_t>(node.prediction)];
  }

  const double base_entropy = Entropy(counts, total);
  const bool pure = base_entropy <= 1e-12;
  if (pure || total < 2.0 * options.min_instances_per_leaf ||
      (options.max_depth != 0 && depth >= options.max_depth)) {
    return node_index;
  }

  // Evaluate candidate splits.
  int best_attr = -1;
  bool best_numeric = false;
  double best_threshold = 0.0;
  double best_gain_ratio = 1e-9;
  for (int a = 0; a < table.num_attributes(); ++a) {
    if (a == class_attribute) continue;
    const Attribute& attr = table.attribute(a);
    if (attr.kind == AttrKind::kNominal) {
      if (used_nominal[static_cast<std::size_t>(a)]) continue;
      std::vector<std::vector<double>> branch_counts(
          attr.values.size(), std::vector<double>(num_classes, 0.0));
      std::vector<double> branch_totals(attr.values.size(), 0.0);
      for (std::size_t r : rows) {
        const auto v = static_cast<std::size_t>(table.value(r, a));
        branch_counts[v][static_cast<std::size_t>(
            table.value(r, class_attribute))] += 1;
        branch_totals[v] += 1;
      }
      double remainder = 0.0, split_info = 0.0;
      std::size_t nonempty = 0;
      for (std::size_t v = 0; v < attr.values.size(); ++v) {
        if (branch_totals[v] <= 0) continue;
        ++nonempty;
        const double frac = branch_totals[v] / total;
        remainder += frac * Entropy(branch_counts[v], branch_totals[v]);
        split_info -= frac * std::log2(frac);
      }
      if (nonempty < 2 || split_info <= 1e-12) continue;
      const double gain = base_entropy - remainder;
      if (gain <= 1e-9) continue;
      const double ratio = gain / split_info;
      if (ratio > best_gain_ratio) {
        best_gain_ratio = ratio;
        best_attr = a;
        best_numeric = false;
      }
    } else {
      // Numeric: scan sorted values for the best binary threshold.
      std::vector<std::pair<double, int>> values;
      values.reserve(rows.size());
      for (std::size_t r : rows) {
        values.emplace_back(table.value(r, a),
                            static_cast<int>(table.value(r,
                                                         class_attribute)));
      }
      std::sort(values.begin(), values.end());
      std::vector<double> left(num_classes, 0.0);
      std::vector<double> right = counts;
      double left_total = 0.0;
      for (std::size_t i = 0; i + 1 < values.size(); ++i) {
        left[static_cast<std::size_t>(values[i].second)] += 1;
        right[static_cast<std::size_t>(values[i].second)] -= 1;
        left_total += 1;
        if (values[i].first == values[i + 1].first) continue;
        const double right_total = total - left_total;
        if (left_total < options.min_instances_per_leaf ||
            right_total < options.min_instances_per_leaf) {
          continue;
        }
        const double lf = left_total / total;
        const double rf = right_total / total;
        const double remainder = lf * Entropy(left, left_total) +
                                 rf * Entropy(right, right_total);
        const double gain = base_entropy - remainder;
        if (gain <= 1e-9) continue;
        const double split_info = -(lf * std::log2(lf) + rf * std::log2(rf));
        if (split_info <= 1e-12) continue;
        const double ratio = gain / split_info;
        if (ratio > best_gain_ratio) {
          best_gain_ratio = ratio;
          best_attr = a;
          best_numeric = true;
          best_threshold = (values[i].first + values[i + 1].first) / 2.0;
        }
      }
    }
  }
  if (best_attr < 0) return node_index;  // no useful split

  // Partition the rows and recurse.
  if (best_numeric) {
    std::vector<std::size_t> left_rows, right_rows;
    for (std::size_t r : rows) {
      (table.value(r, best_attr) <= best_threshold ? left_rows : right_rows)
          .push_back(r);
    }
    rows.clear();
    rows.shrink_to_fit();
    const int left = BuildNode(table, class_attribute, options, left_rows,
                               depth + 1, used_nominal);
    const int right = BuildNode(table, class_attribute, options, right_rows,
                                depth + 1, used_nominal);
    Node& node = nodes_[static_cast<std::size_t>(node_index)];
    node.leaf = false;
    node.attribute = best_attr;
    node.numeric_split = true;
    node.threshold = best_threshold;
    node.children = {left, right};
  } else {
    const Attribute& attr = table.attribute(best_attr);
    std::vector<std::vector<std::size_t>> branches(attr.values.size());
    for (std::size_t r : rows) {
      branches[static_cast<std::size_t>(table.value(r, best_attr))]
          .push_back(r);
    }
    rows.clear();
    rows.shrink_to_fit();
    used_nominal[static_cast<std::size_t>(best_attr)] = 1;
    std::vector<int> children;
    const int majority =
        nodes_[static_cast<std::size_t>(node_index)].prediction;
    for (auto& branch : branches) {
      if (branch.empty()) {
        // Empty branch: a leaf predicting the parent majority.
        const int leaf_index = static_cast<int>(nodes_.size());
        nodes_.emplace_back();
        nodes_.back().prediction = majority;
        children.push_back(leaf_index);
      } else {
        children.push_back(BuildNode(table, class_attribute, options,
                                     branch, depth + 1, used_nominal));
      }
    }
    used_nominal[static_cast<std::size_t>(best_attr)] = 0;
    Node& node = nodes_[static_cast<std::size_t>(node_index)];
    node.leaf = false;
    node.attribute = best_attr;
    node.numeric_split = false;
    node.children = std::move(children);
  }
  return node_index;
}

double DecisionTree::PruneNode(int node_index,
                               const DecisionTreeOptions& options) {
  Node& node = nodes_[static_cast<std::size_t>(node_index)];
  const double leaf_estimate =
      node.errors +
      PessimisticExtraErrors(std::max(1.0, node.count), node.errors,
                             options.pruning_confidence);
  if (node.leaf) return leaf_estimate;
  double subtree_estimate = 0.0;
  for (int child : node.children) {
    subtree_estimate += PruneNode(child, options);
  }
  if (leaf_estimate <= subtree_estimate + 0.1) {
    node.leaf = true;
    node.children.clear();
    return leaf_estimate;
  }
  return subtree_estimate;
}

DecisionTree DecisionTree::Train(const AttributeTable& table,
                                 int class_attribute,
                                 const DecisionTreeOptions& options) {
  TNMINE_CHECK(class_attribute >= 0 &&
               class_attribute < table.num_attributes());
  TNMINE_CHECK_MSG(
      table.attribute(class_attribute).kind == AttrKind::kNominal,
      "class attribute must be nominal");
  TNMINE_CHECK(table.num_rows() > 0);
  DecisionTree tree;
  tree.class_attribute_ = class_attribute;
  std::vector<std::size_t> rows(table.num_rows());
  for (std::size_t i = 0; i < rows.size(); ++i) rows[i] = i;
  std::vector<char> used_nominal(
      static_cast<std::size_t>(table.num_attributes()), 0);
  tree.root_ =
      tree.BuildNode(table, class_attribute, options, rows, 0, used_nominal);
  if (options.prune) tree.PruneNode(tree.root_, options);
  return tree;
}

int DecisionTree::Predict(const std::vector<double>& row) const {
  TNMINE_CHECK(root_ >= 0);
  int current = root_;
  for (;;) {
    const Node& node = nodes_[static_cast<std::size_t>(current)];
    if (node.leaf) return node.prediction;
    if (node.numeric_split) {
      current = row[static_cast<std::size_t>(node.attribute)] <=
                        node.threshold
                    ? node.children[0]
                    : node.children[1];
    } else {
      const auto v = static_cast<std::size_t>(
          row[static_cast<std::size_t>(node.attribute)]);
      if (v >= node.children.size()) return node.prediction;
      current = node.children[v];
    }
  }
}

double DecisionTree::Accuracy(const AttributeTable& table) const {
  if (table.num_rows() == 0) return 0.0;
  std::size_t correct = 0;
  for (std::size_t r = 0; r < table.num_rows(); ++r) {
    correct += Predict(table.row(r)) ==
               static_cast<int>(table.value(r, class_attribute_));
  }
  return static_cast<double>(correct) /
         static_cast<double>(table.num_rows());
}

int DecisionTree::root_attribute() const {
  if (root_ < 0) return -1;
  const Node& node = nodes_[static_cast<std::size_t>(root_)];
  return node.leaf ? -1 : node.attribute;
}

std::size_t DecisionTree::DepthOf(int node_index) const {
  const Node& node = nodes_[static_cast<std::size_t>(node_index)];
  if (node.leaf) return 1;
  std::size_t deepest = 0;
  for (int child : node.children) {
    deepest = std::max(deepest, DepthOf(child));
  }
  return deepest + 1;
}

std::size_t DecisionTree::depth() const {
  return root_ < 0 ? 0 : DepthOf(root_);
}

void DecisionTree::Render(const AttributeTable& table, int node_index,
                          int indent, std::string* out) const {
  const Node& node = nodes_[static_cast<std::size_t>(node_index)];
  const std::string pad(static_cast<std::size_t>(indent) * 2, ' ');
  if (node.leaf) {
    const Attribute& cls = table.attribute(class_attribute_);
    out->append(pad + "-> " +
                cls.values[static_cast<std::size_t>(node.prediction)] +
                " (" + std::to_string(static_cast<long long>(node.count)) +
                ")\n");
    return;
  }
  const Attribute& attr = table.attribute(node.attribute);
  if (node.numeric_split) {
    std::ostringstream line;
    line << pad << attr.name << " <= " << node.threshold << ":\n";
    out->append(line.str());
    Render(table, node.children[0], indent + 1, out);
    std::ostringstream line2;
    line2 << pad << attr.name << " > " << node.threshold << ":\n";
    out->append(line2.str());
    Render(table, node.children[1], indent + 1, out);
  } else {
    for (std::size_t v = 0; v < node.children.size(); ++v) {
      out->append(pad + attr.name + " = " + attr.values[v] + ":\n");
      Render(table, node.children[v], indent + 1, out);
    }
  }
}

std::string DecisionTree::ToString(const AttributeTable& table) const {
  std::string out;
  if (root_ >= 0) Render(table, root_, 0, &out);
  return out;
}

}  // namespace tnmine::ml
