#ifndef TNMINE_ML_KMEANS_H_
#define TNMINE_ML_KMEANS_H_

#include <cstdint>
#include <vector>

#include "common/random.h"

namespace tnmine::ml {

/// Options for Lloyd's k-means with k-means++ seeding.
struct KMeansOptions {
  int k = 2;
  int max_iterations = 100;
  std::uint64_t seed = 1;
  /// Deterministic farthest-point seeding instead of k-means++: the first
  /// centroid is the point closest to the data mean, each next centroid
  /// the point farthest from all chosen ones. Guarantees extreme outlier
  /// groups (e.g., the paper's three air-freight shipments) get their own
  /// seed.
  bool farthest_point_init = false;
};

struct KMeansResult {
  std::vector<std::vector<double>> centroids;  ///< k x d
  std::vector<int> assignment;                 ///< per point
  double inertia = 0.0;  ///< sum of squared distances to centroids
  int iterations = 0;
};

/// Clusters `points` (row vectors, equal dimension) into k groups. Used
/// standalone and as the EM initializer (Weka's EM also initializes with
/// k-means).
KMeansResult RunKMeans(const std::vector<std::vector<double>>& points,
                       const KMeansOptions& options);

}  // namespace tnmine::ml

#endif  // TNMINE_ML_KMEANS_H_
