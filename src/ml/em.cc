#include "ml/em.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>

#include "common/check.h"
#include "ml/kmeans.h"

namespace tnmine::ml {

namespace {

constexpr double kLog2Pi = 1.8378770664093453;

/// Standardized view of the selected numeric columns.
struct Standardized {
  std::vector<std::vector<double>> points;  // n x d, z-scored
  std::vector<double> mean;                 // per dimension
  std::vector<double> scale;                // per dimension (stddev or 1)
};

Standardized StandardizeColumns(const AttributeTable& table,
                                const std::vector<int>& attrs) {
  Standardized s;
  const std::size_t n = table.num_rows();
  const std::size_t d = attrs.size();
  s.mean.assign(d, 0.0);
  s.scale.assign(d, 1.0);
  for (std::size_t j = 0; j < d; ++j) {
    double sum = 0.0;
    for (std::size_t i = 0; i < n; ++i) sum += table.value(i, attrs[j]);
    s.mean[j] = sum / static_cast<double>(n);
    double var = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      const double dx = table.value(i, attrs[j]) - s.mean[j];
      var += dx * dx;
    }
    var /= static_cast<double>(n);
    s.scale[j] = var > 1e-12 ? std::sqrt(var) : 1.0;
  }
  s.points.assign(n, std::vector<double>(d, 0.0));
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < d; ++j) {
      s.points[i][j] = (table.value(i, attrs[j]) - s.mean[j]) / s.scale[j];
    }
  }
  return s;
}

struct Model {
  std::vector<double> priors;
  std::vector<std::vector<double>> means;    // standardized units
  std::vector<std::vector<double>> stddevs;  // standardized units
};

double LogDensity(const Model& m, std::size_t c,
                  const std::vector<double>& x) {
  double ll = 0.0;
  const auto& mu = m.means[c];
  const auto& sd = m.stddevs[c];
  for (std::size_t j = 0; j < x.size(); ++j) {
    const double z = (x[j] - mu[j]) / sd[j];
    ll += -0.5 * (z * z + kLog2Pi) - std::log(sd[j]);
  }
  return ll;
}

/// One full EM fit on standardized points. Returns total log-likelihood.
double FitOnce(const std::vector<std::vector<double>>& points, int k,
               const EmOptions& options, std::uint64_t seed, Model* model,
               int* iterations) {
  const std::size_t n = points.size();
  const std::size_t d = points[0].size();
  const std::size_t kk = static_cast<std::size_t>(k);

  // Initialize from k-means.
  KMeansOptions km;
  km.k = k;
  km.seed = seed;
  km.farthest_point_init = options.farthest_point_init;
  const KMeansResult init = RunKMeans(points, km);
  model->priors.assign(kk, 1.0 / static_cast<double>(kk));
  model->means.assign(kk, std::vector<double>(d, 0.0));
  model->stddevs.assign(kk, std::vector<double>(d, 1.0));
  {
    std::vector<std::size_t> counts(kk, 0);
    for (std::size_t i = 0; i < n; ++i) {
      const auto c = static_cast<std::size_t>(init.assignment[i]);
      ++counts[c];
      for (std::size_t j = 0; j < d; ++j) {
        model->means[c][j] += points[i][j];
      }
    }
    for (std::size_t c = 0; c < kk; ++c) {
      if (counts[c] == 0) continue;
      for (std::size_t j = 0; j < d; ++j) {
        model->means[c][j] /= static_cast<double>(counts[c]);
      }
      model->priors[c] =
          static_cast<double>(counts[c]) / static_cast<double>(n);
    }
    std::vector<std::vector<double>> var(kk, std::vector<double>(d, 0.0));
    for (std::size_t i = 0; i < n; ++i) {
      const auto c = static_cast<std::size_t>(init.assignment[i]);
      for (std::size_t j = 0; j < d; ++j) {
        const double dx = points[i][j] - model->means[c][j];
        var[c][j] += dx * dx;
      }
    }
    for (std::size_t c = 0; c < kk; ++c) {
      for (std::size_t j = 0; j < d; ++j) {
        const double v = counts[c] > 0
                             ? var[c][j] / static_cast<double>(counts[c])
                             : 1.0;
        model->stddevs[c][j] =
            std::max(options.min_stddev, std::sqrt(std::max(v, 0.0)));
      }
    }
  }

  std::vector<std::vector<double>> resp(n, std::vector<double>(kk, 0.0));
  double prev_ll = -std::numeric_limits<double>::max();
  double total_ll = prev_ll;
  *iterations = 0;
  for (int iter = 0; iter < options.max_iterations; ++iter) {
    ++*iterations;
    // E step (log-sum-exp).
    total_ll = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      double max_l = -std::numeric_limits<double>::max();
      std::vector<double>& r = resp[i];
      for (std::size_t c = 0; c < kk; ++c) {
        r[c] = std::log(std::max(model->priors[c], 1e-300)) +
               LogDensity(*model, c, points[i]);
        max_l = std::max(max_l, r[c]);
      }
      double sum = 0.0;
      for (std::size_t c = 0; c < kk; ++c) {
        r[c] = std::exp(r[c] - max_l);
        sum += r[c];
      }
      for (std::size_t c = 0; c < kk; ++c) r[c] /= sum;
      total_ll += max_l + std::log(sum);
    }
    // M step.
    for (std::size_t c = 0; c < kk; ++c) {
      double weight = 0.0;
      std::vector<double> mean(d, 0.0);
      for (std::size_t i = 0; i < n; ++i) {
        weight += resp[i][c];
        for (std::size_t j = 0; j < d; ++j) {
          mean[j] += resp[i][c] * points[i][j];
        }
      }
      if (weight < 1e-9) {
        model->priors[c] = 1e-9;
        continue;
      }
      for (std::size_t j = 0; j < d; ++j) mean[j] /= weight;
      std::vector<double> var(d, 0.0);
      for (std::size_t i = 0; i < n; ++i) {
        for (std::size_t j = 0; j < d; ++j) {
          const double dx = points[i][j] - mean[j];
          var[j] += resp[i][c] * dx * dx;
        }
      }
      model->priors[c] = weight / static_cast<double>(n);
      model->means[c] = std::move(mean);
      for (std::size_t j = 0; j < d; ++j) {
        model->stddevs[c][j] = std::max(
            options.min_stddev, std::sqrt(var[j] / weight));
      }
    }
    if (total_ll - prev_ll <
        options.tolerance * static_cast<double>(n) &&
        iter > 0) {
      break;
    }
    prev_ll = total_ll;
  }
  return total_ll;
}

/// Average held-out log-likelihood per row under `folds`-fold CV.
double CrossValidatedLl(const std::vector<std::vector<double>>& points,
                        int k, const EmOptions& options) {
  const std::size_t n = points.size();
  const std::size_t folds =
      std::min<std::size_t>(static_cast<std::size_t>(options.cv_folds), n);
  if (folds < 2) return -std::numeric_limits<double>::max();
  double total = 0.0;
  std::size_t held_out = 0;
  for (std::size_t f = 0; f < folds; ++f) {
    std::vector<std::vector<double>> train, test;
    for (std::size_t i = 0; i < n; ++i) {
      if (i % folds == f) {
        test.push_back(points[i]);
      } else {
        train.push_back(points[i]);
      }
    }
    if (train.size() < static_cast<std::size_t>(k) || test.empty()) {
      return -std::numeric_limits<double>::max();
    }
    Model model;
    int iters = 0;
    FitOnce(train, k, options, options.seed + f, &model, &iters);
    for (const auto& x : test) {
      double max_l = -std::numeric_limits<double>::max();
      std::vector<double> logs(model.priors.size());
      for (std::size_t c = 0; c < model.priors.size(); ++c) {
        logs[c] = std::log(std::max(model.priors[c], 1e-300)) +
                  LogDensity(model, c, x);
        max_l = std::max(max_l, logs[c]);
      }
      double sum = 0.0;
      for (double l : logs) sum += std::exp(l - max_l);
      total += max_l + std::log(sum);
      ++held_out;
    }
  }
  return total / static_cast<double>(held_out);
}

}  // namespace

EmResult FitEm(const AttributeTable& table,
               const std::vector<int>& numeric_attributes,
               const EmOptions& options) {
  TNMINE_CHECK(!numeric_attributes.empty());
  TNMINE_CHECK(table.num_rows() >= 2);
  for (int a : numeric_attributes) {
    TNMINE_CHECK(table.attribute(a).kind == AttrKind::kNumeric);
  }
  const Standardized s = StandardizeColumns(table, numeric_attributes);

  int k = options.num_clusters;
  if (k <= 0) {
    // Weka-style selection: grow k while cross-validated likelihood
    // improves.
    double best_ll = -std::numeric_limits<double>::max();
    k = 1;
    for (int trial = 1; trial <= options.max_clusters; ++trial) {
      const double ll = CrossValidatedLl(s.points, trial, options);
      // Require a material relative improvement, not a hairline one —
      // otherwise high-dimensional mixtures keep "improving" all the way
      // to the bound.
      const double needed =
          best_ll == -std::numeric_limits<double>::max()
              ? 0.0
              : std::fabs(best_ll) * options.cv_improvement;
      if (ll > best_ll + needed) {
        best_ll = ll;
        k = trial;
      } else {
        break;
      }
    }
  }

  Model model;
  EmResult result;
  result.log_likelihood =
      FitOnce(s.points, k, options, options.seed, &model,
              &result.iterations);
  result.num_clusters = k;

  // Hard assignments and soft counts.
  const std::size_t n = s.points.size();
  const std::size_t kk = static_cast<std::size_t>(k);
  result.assignment.assign(n, 0);
  result.soft_counts.assign(kk, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    double best = -std::numeric_limits<double>::max();
    int arg = 0;
    std::vector<double> logs(kk);
    double max_l = -std::numeric_limits<double>::max();
    for (std::size_t c = 0; c < kk; ++c) {
      logs[c] = std::log(std::max(model.priors[c], 1e-300)) +
                LogDensity(model, c, s.points[i]);
      max_l = std::max(max_l, logs[c]);
      if (logs[c] > best) {
        best = logs[c];
        arg = static_cast<int>(c);
      }
    }
    result.assignment[i] = arg;
    double sum = 0.0;
    for (double l : logs) sum += std::exp(l - max_l);
    for (std::size_t c = 0; c < kk; ++c) {
      result.soft_counts[c] += std::exp(logs[c] - max_l) / sum;
    }
  }

  // Report in original units, clusters ordered largest-first.
  std::vector<std::size_t> order(kk);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return model.priors[a] > model.priors[b];
  });
  std::vector<int> rank(kk);
  for (std::size_t r = 0; r < kk; ++r) {
    rank[order[r]] = static_cast<int>(r);
  }
  result.priors.resize(kk);
  result.means.assign(kk, std::vector<double>(numeric_attributes.size()));
  result.stddevs.assign(kk, std::vector<double>(numeric_attributes.size()));
  std::vector<double> reordered_counts(kk);
  for (std::size_t c = 0; c < kk; ++c) {
    const std::size_t to = static_cast<std::size_t>(rank[c]);
    result.priors[to] = model.priors[c];
    reordered_counts[to] = result.soft_counts[c];
    for (std::size_t j = 0; j < numeric_attributes.size(); ++j) {
      result.means[to][j] = model.means[c][j] * s.scale[j] + s.mean[j];
      result.stddevs[to][j] = model.stddevs[c][j] * s.scale[j];
    }
  }
  result.soft_counts = std::move(reordered_counts);
  for (int& a : result.assignment) a = rank[static_cast<std::size_t>(a)];
  return result;
}

double ClusterMean(const AttributeTable& table, const EmResult& em,
                   int attribute, int cluster) {
  double sum = 0.0;
  std::size_t count = 0;
  for (std::size_t i = 0; i < table.num_rows(); ++i) {
    if (em.assignment[i] == cluster) {
      sum += table.value(i, attribute);
      ++count;
    }
  }
  return count == 0 ? 0.0 : sum / static_cast<double>(count);
}

std::size_t ClusterSize(const EmResult& em, int cluster) {
  std::size_t count = 0;
  for (int a : em.assignment) count += (a == cluster);
  return count;
}

}  // namespace tnmine::ml
