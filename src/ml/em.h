#ifndef TNMINE_ML_EM_H_
#define TNMINE_ML_EM_H_

#include <cstdint>
#include <vector>

#include "ml/attribute_table.h"

namespace tnmine::ml {

/// Options for the EM Gaussian-mixture clusterer (Weka's EM, Section 7.3).
struct EmOptions {
  /// Number of clusters; 0 selects it by cross-validated log-likelihood
  /// the way Weka's EM does (increase k while held-out likelihood
  /// improves).
  int num_clusters = 0;
  int max_clusters = 12;   ///< bound for the CV search
  int cv_folds = 5;
  int max_iterations = 100;
  double tolerance = 1e-6;  ///< stop when the LL gain per row drops below
  std::uint64_t seed = 1;
  /// Floor for per-dimension standard deviations (on the standardized
  /// scale) — keeps singleton clusters from collapsing.
  double min_stddev = 1e-3;
  /// Seed the k-means initializer with deterministic farthest-point
  /// centroids so far-flung outlier groups (the paper's air-freight
  /// shipments) reliably receive their own mixture component.
  bool farthest_point_init = false;
  /// Relative held-out log-likelihood improvement required to keep
  /// growing k during automatic selection.
  double cv_improvement = 0.002;
};

/// Mixture-model result. Means/stddevs are reported in the original units
/// of the selected attributes.
struct EmResult {
  int num_clusters = 0;
  std::vector<double> priors;                  ///< mixing weights
  std::vector<std::vector<double>> means;      ///< k x d
  std::vector<std::vector<double>> stddevs;    ///< k x d
  std::vector<int> assignment;                 ///< argmax responsibility
  std::vector<double> soft_counts;             ///< expected cluster sizes
  double log_likelihood = 0.0;                 ///< total over rows
  int iterations = 0;
};

/// Fits a diagonal-covariance Gaussian mixture to the listed numeric
/// attributes of `table` by expectation-maximization, initialized with
/// k-means on standardized data. Clusters are reported largest-first.
EmResult FitEm(const AttributeTable& table,
               const std::vector<int>& numeric_attributes,
               const EmOptions& options);

/// Mean of `attribute` over the rows hard-assigned to `cluster` — the
/// per-cluster summaries behind Figure 6(a)/(b).
double ClusterMean(const AttributeTable& table, const EmResult& em,
                   int attribute, int cluster);

/// Number of rows hard-assigned to `cluster` (Figure 5's cluster sizes).
std::size_t ClusterSize(const EmResult& em, int cluster);

}  // namespace tnmine::ml

#endif  // TNMINE_ML_EM_H_
