#ifndef TNMINE_ML_VALIDATION_H_
#define TNMINE_ML_VALIDATION_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "ml/attribute_table.h"

namespace tnmine::ml {

/// A confusion matrix over the class values of a nominal attribute.
class ConfusionMatrix {
 public:
  explicit ConfusionMatrix(std::size_t num_classes)
      : counts_(num_classes, std::vector<std::size_t>(num_classes, 0)) {}

  void Add(int actual, int predicted) {
    ++counts_[static_cast<std::size_t>(actual)]
             [static_cast<std::size_t>(predicted)];
  }

  std::size_t count(int actual, int predicted) const {
    return counts_[static_cast<std::size_t>(actual)]
                  [static_cast<std::size_t>(predicted)];
  }

  std::size_t total() const;
  double Accuracy() const;
  /// Per-class precision / recall (0 when undefined).
  double Precision(int cls) const;
  double Recall(int cls) const;

  /// Readable grid with class value names from `attr`.
  std::string ToString(const Attribute& attr) const;

 private:
  std::vector<std::vector<std::size_t>> counts_;
};

/// A classifier under evaluation: trained on one table, queried per row.
/// The factory receives the training fold and the class attribute; the
/// returned function maps a row to a predicted class value index.
using ClassifierFactory = std::function<std::function<int(
    const std::vector<double>&)>(const AttributeTable&, int)>;

/// Result of a k-fold cross-validation.
struct CrossValidationResult {
  double mean_accuracy = 0.0;
  double stddev_accuracy = 0.0;
  std::vector<double> fold_accuracies;
  ConfusionMatrix confusion{0};
};

/// Stratification-free k-fold cross-validation of a classifier on
/// `table` (rows shuffled by `seed`, split into `folds` consecutive
/// blocks; each block serves once as the test fold).
CrossValidationResult CrossValidate(const AttributeTable& table,
                                    int class_attribute, std::size_t folds,
                                    std::uint64_t seed,
                                    const ClassifierFactory& factory);

}  // namespace tnmine::ml

#endif  // TNMINE_ML_VALIDATION_H_
