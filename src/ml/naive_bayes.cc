#include "ml/naive_bayes.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace tnmine::ml {

namespace {
constexpr double kLog2Pi = 1.8378770664093453;
}  // namespace

NaiveBayes NaiveBayes::Train(const AttributeTable& table,
                             int class_attribute,
                             const NaiveBayesOptions& options) {
  TNMINE_CHECK(table.num_rows() > 0);
  TNMINE_CHECK(table.attribute(class_attribute).kind == AttrKind::kNominal);
  NaiveBayes model;
  model.class_attribute_ = class_attribute;
  const std::size_t num_classes =
      table.attribute(class_attribute).values.size();
  const std::size_t n = table.num_rows();

  std::vector<double> class_counts(num_classes, 0.0);
  for (std::size_t r = 0; r < n; ++r) {
    class_counts[static_cast<std::size_t>(
        table.value(r, class_attribute))] += 1;
  }
  model.log_prior_.resize(num_classes);
  for (std::size_t c = 0; c < num_classes; ++c) {
    model.log_prior_[c] = std::log(
        (class_counts[c] + options.laplace) /
        (static_cast<double>(n) +
         options.laplace * static_cast<double>(num_classes)));
  }

  const int num_attrs = table.num_attributes();
  model.nominal_.resize(static_cast<std::size_t>(num_attrs));
  model.numeric_.resize(static_cast<std::size_t>(num_attrs));
  model.kinds_.resize(static_cast<std::size_t>(num_attrs));
  for (int a = 0; a < num_attrs; ++a) {
    const Attribute& attr = table.attribute(a);
    model.kinds_[static_cast<std::size_t>(a)] = attr.kind;
    if (a == class_attribute) continue;
    if (attr.kind == AttrKind::kNominal) {
      const std::size_t num_values = attr.values.size();
      std::vector<std::vector<double>> counts(
          num_classes, std::vector<double>(num_values, 0.0));
      for (std::size_t r = 0; r < n; ++r) {
        const auto c = static_cast<std::size_t>(
            table.value(r, class_attribute));
        counts[c][static_cast<std::size_t>(table.value(r, a))] += 1;
      }
      auto& ll = model.nominal_[static_cast<std::size_t>(a)].log_likelihood;
      ll.assign(num_classes, std::vector<double>(num_values, 0.0));
      for (std::size_t c = 0; c < num_classes; ++c) {
        for (std::size_t v = 0; v < num_values; ++v) {
          ll[c][v] = std::log(
              (counts[c][v] + options.laplace) /
              (class_counts[c] +
               options.laplace * static_cast<double>(num_values)));
        }
      }
    } else {
      auto& nm = model.numeric_[static_cast<std::size_t>(a)];
      nm.mean.assign(num_classes, 0.0);
      nm.stddev.assign(num_classes, 1.0);
      std::vector<double> sums(num_classes, 0.0);
      for (std::size_t r = 0; r < n; ++r) {
        const auto c = static_cast<std::size_t>(
            table.value(r, class_attribute));
        sums[c] += table.value(r, a);
      }
      for (std::size_t c = 0; c < num_classes; ++c) {
        if (class_counts[c] > 0) nm.mean[c] = sums[c] / class_counts[c];
      }
      std::vector<double> sq(num_classes, 0.0);
      for (std::size_t r = 0; r < n; ++r) {
        const auto c = static_cast<std::size_t>(
            table.value(r, class_attribute));
        const double d = table.value(r, a) - nm.mean[c];
        sq[c] += d * d;
      }
      for (std::size_t c = 0; c < num_classes; ++c) {
        const double var =
            class_counts[c] > 0 ? sq[c] / class_counts[c] : 1.0;
        nm.stddev[c] = std::max(options.min_stddev, std::sqrt(var));
      }
    }
  }
  return model;
}

std::vector<double> NaiveBayes::LogPosterior(
    const std::vector<double>& row) const {
  std::vector<double> scores = log_prior_;
  for (std::size_t a = 0; a < kinds_.size(); ++a) {
    if (static_cast<int>(a) == class_attribute_) continue;
    if (kinds_[a] == AttrKind::kNominal) {
      const auto& ll = nominal_[a].log_likelihood;
      const auto v = static_cast<std::size_t>(row[a]);
      for (std::size_t c = 0; c < scores.size(); ++c) {
        if (v < ll[c].size()) scores[c] += ll[c][v];
      }
    } else {
      const auto& nm = numeric_[a];
      for (std::size_t c = 0; c < scores.size(); ++c) {
        const double z = (row[a] - nm.mean[c]) / nm.stddev[c];
        scores[c] += -0.5 * (z * z + kLog2Pi) - std::log(nm.stddev[c]);
      }
    }
  }
  return scores;
}

int NaiveBayes::Predict(const std::vector<double>& row) const {
  const std::vector<double> scores = LogPosterior(row);
  return static_cast<int>(
      std::max_element(scores.begin(), scores.end()) - scores.begin());
}

double NaiveBayes::Accuracy(const AttributeTable& table) const {
  if (table.num_rows() == 0) return 0.0;
  std::size_t correct = 0;
  for (std::size_t r = 0; r < table.num_rows(); ++r) {
    correct += Predict(table.row(r)) ==
               static_cast<int>(table.value(r, class_attribute_));
  }
  return static_cast<double>(correct) /
         static_cast<double>(table.num_rows());
}

}  // namespace tnmine::ml
