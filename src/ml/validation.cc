#include "ml/validation.h"

#include <cmath>
#include <sstream>

#include "common/check.h"
#include "common/random.h"

namespace tnmine::ml {

std::size_t ConfusionMatrix::total() const {
  std::size_t sum = 0;
  for (const auto& row : counts_) {
    for (std::size_t c : row) sum += c;
  }
  return sum;
}

double ConfusionMatrix::Accuracy() const {
  const std::size_t n = total();
  if (n == 0) return 0.0;
  std::size_t diag = 0;
  for (std::size_t i = 0; i < counts_.size(); ++i) diag += counts_[i][i];
  return static_cast<double>(diag) / static_cast<double>(n);
}

double ConfusionMatrix::Precision(int cls) const {
  const auto c = static_cast<std::size_t>(cls);
  std::size_t predicted = 0;
  for (const auto& row : counts_) predicted += row[c];
  if (predicted == 0) return 0.0;
  return static_cast<double>(counts_[c][c]) /
         static_cast<double>(predicted);
}

double ConfusionMatrix::Recall(int cls) const {
  const auto c = static_cast<std::size_t>(cls);
  std::size_t actual = 0;
  for (std::size_t j = 0; j < counts_.size(); ++j) actual += counts_[c][j];
  if (actual == 0) return 0.0;
  return static_cast<double>(counts_[c][c]) / static_cast<double>(actual);
}

std::string ConfusionMatrix::ToString(const Attribute& attr) const {
  std::ostringstream out;
  out << "actual \\ predicted";
  for (const std::string& v : attr.values) out << "  " << v;
  out << "\n";
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    out << attr.values[i];
    for (std::size_t j = 0; j < counts_.size(); ++j) {
      out << "  " << counts_[i][j];
    }
    out << "\n";
  }
  return out.str();
}

CrossValidationResult CrossValidate(const AttributeTable& table,
                                    int class_attribute, std::size_t folds,
                                    std::uint64_t seed,
                                    const ClassifierFactory& factory) {
  TNMINE_CHECK(folds >= 2);
  TNMINE_CHECK(table.num_rows() >= folds);
  const std::size_t num_classes =
      table.attribute(class_attribute).values.size();
  CrossValidationResult result;
  result.confusion = ConfusionMatrix(num_classes);

  std::vector<std::size_t> order(table.num_rows());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  Rng rng(seed);
  rng.Shuffle(order);

  for (std::size_t f = 0; f < folds; ++f) {
    // Rebuild fold tables (rows copied; tables are modest).
    AttributeTable train, test;
    {
      // Steal the schema via Discretized(1)? No — copy attributes by
      // constructing from scratch.
      AttributeTable schema;
      for (const Attribute& attr : table.attributes()) {
        if (attr.kind == AttrKind::kNumeric) {
          schema.AddNumericAttribute(attr.name);
        } else {
          schema.AddNominalAttribute(attr.name, attr.values);
        }
      }
      train = schema;
      test = schema;
    }
    for (std::size_t i = 0; i < order.size(); ++i) {
      if (i % folds == f) {
        test.AddRow(table.row(order[i]));
      } else {
        train.AddRow(table.row(order[i]));
      }
    }
    const auto classifier = factory(train, class_attribute);
    std::size_t correct = 0;
    for (std::size_t r = 0; r < test.num_rows(); ++r) {
      const int actual =
          static_cast<int>(test.value(r, class_attribute));
      const int predicted = classifier(test.row(r));
      result.confusion.Add(actual, predicted);
      correct += predicted == actual;
    }
    result.fold_accuracies.push_back(
        test.num_rows() == 0
            ? 0.0
            : static_cast<double>(correct) /
                  static_cast<double>(test.num_rows()));
  }
  double sum = 0.0;
  for (double a : result.fold_accuracies) sum += a;
  result.mean_accuracy = sum / static_cast<double>(folds);
  double sq = 0.0;
  for (double a : result.fold_accuracies) {
    sq += (a - result.mean_accuracy) * (a - result.mean_accuracy);
  }
  result.stddev_accuracy = std::sqrt(sq / static_cast<double>(folds));
  return result;
}

}  // namespace tnmine::ml
