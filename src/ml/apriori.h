#ifndef TNMINE_ML_APRIORI_H_
#define TNMINE_ML_APRIORI_H_

#include <cstdint>
#include <string>
#include <vector>

#include "ml/attribute_table.h"

namespace tnmine::ml {

/// One (attribute = value) item over a fully-nominal table.
struct Item {
  int attribute = 0;
  int value = 0;

  auto operator<=>(const Item&) const = default;
};

/// A frequent itemset with its absolute row count.
struct ItemSet {
  std::vector<Item> items;  ///< sorted by attribute
  std::size_t count = 0;
};

/// An association rule LHS -> RHS with the standard interestingness
/// measures (Section 7.1 cites [15, 18] on choosing between these).
struct AssociationRule {
  std::vector<Item> lhs;
  std::vector<Item> rhs;
  double support = 0.0;     ///< P(LHS and RHS)
  double confidence = 0.0;  ///< P(RHS | LHS)
  double lift = 0.0;        ///< confidence / P(RHS)
  double leverage = 0.0;    ///< P(LHS,RHS) - P(LHS)P(RHS)
  double conviction = 0.0;  ///< (1 - P(RHS)) / (1 - confidence)
};

/// Options for Apriori.
struct AprioriOptions {
  double min_support = 0.1;      ///< fraction of rows
  double min_confidence = 0.8;
  std::size_t max_itemset_size = 4;
  /// Keep at most this many rules, ordered by confidence then support
  /// (0 = unlimited).
  std::size_t max_rules = 0;
};

struct AprioriResult {
  std::vector<ItemSet> frequent_itemsets;
  std::vector<AssociationRule> rules;
};

/// Classic Apriori (Agrawal & Srikant, VLDB 1994 — the paper's [1]) over a
/// fully-nominal attribute table: each row is a basket of one
/// (attribute = value) item per column, so itemsets contain at most one
/// item per attribute. Rules are generated with single-item consequents,
/// which is what Weka's Apriori reports by default and what the paper's
/// Section-7.1 examples look like.
AprioriResult MineAssociationRules(const AttributeTable& table,
                                   const AprioriOptions& options);

/// Formats a rule in the paper's style:
/// "GROSS_WEIGHT=(-inf, 4501] -> TRANS_MODE=LTL (conf 0.95, lift 1.7)".
std::string RuleToString(const AttributeTable& table,
                         const AssociationRule& rule);

}  // namespace tnmine::ml

#endif  // TNMINE_ML_APRIORI_H_
