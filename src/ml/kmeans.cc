#include "ml/kmeans.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/check.h"

namespace tnmine::ml {

namespace {

double SquaredDistance(const std::vector<double>& a,
                       const std::vector<double>& b) {
  double s = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double d = a[i] - b[i];
    s += d * d;
  }
  return s;
}

}  // namespace

KMeansResult RunKMeans(const std::vector<std::vector<double>>& points,
                       const KMeansOptions& options) {
  TNMINE_CHECK(options.k >= 1);
  TNMINE_CHECK(!points.empty());
  const std::size_t n = points.size();
  const std::size_t d = points[0].size();
  for (const auto& p : points) TNMINE_CHECK(p.size() == d);
  const std::size_t k =
      std::min<std::size_t>(static_cast<std::size_t>(options.k), n);
  Rng rng(options.seed);

  KMeansResult result;
  if (options.farthest_point_init) {
    // First centroid: the point nearest the mean; then repeatedly the
    // point farthest from every chosen centroid.
    std::vector<double> mean(d, 0.0);
    for (const auto& p : points) {
      for (std::size_t j = 0; j < d; ++j) mean[j] += p[j];
    }
    for (double& m : mean) m /= static_cast<double>(n);
    std::size_t first = 0;
    double best = std::numeric_limits<double>::max();
    for (std::size_t i = 0; i < n; ++i) {
      const double dd = SquaredDistance(points[i], mean);
      if (dd < best) {
        best = dd;
        first = i;
      }
    }
    result.centroids.push_back(points[first]);
    std::vector<double> dist2(n, std::numeric_limits<double>::max());
    while (result.centroids.size() < k) {
      std::size_t farthest = 0;
      double far_d = -1.0;
      for (std::size_t i = 0; i < n; ++i) {
        dist2[i] = std::min(dist2[i],
                            SquaredDistance(points[i],
                                            result.centroids.back()));
        if (dist2[i] > far_d) {
          far_d = dist2[i];
          farthest = i;
        }
      }
      result.centroids.push_back(points[farthest]);
    }
  }
  if (result.centroids.empty()) {
    // k-means++ seeding.
    result.centroids.push_back(points[rng.NextBounded(n)]);
    std::vector<double> dist2(n, std::numeric_limits<double>::max());
    while (result.centroids.size() < k) {
      for (std::size_t i = 0; i < n; ++i) {
        dist2[i] = std::min(dist2[i],
                            SquaredDistance(points[i],
                                            result.centroids.back()));
      }
      double total = 0.0;
      for (double x : dist2) total += x;
      if (total <= 0.0) {
        // All remaining points coincide with chosen centroids.
        result.centroids.push_back(points[rng.NextBounded(n)]);
        continue;
      }
      double target = rng.NextDouble() * total;
      std::size_t chosen = n - 1;
      for (std::size_t i = 0; i < n; ++i) {
        target -= dist2[i];
        if (target <= 0.0) {
          chosen = i;
          break;
        }
      }
      result.centroids.push_back(points[chosen]);
    }
  }

  result.assignment.assign(n, 0);
  for (int iter = 0; iter < options.max_iterations; ++iter) {
    ++result.iterations;
    bool changed = false;
    for (std::size_t i = 0; i < n; ++i) {
      int best = 0;
      double best_d = std::numeric_limits<double>::max();
      for (std::size_t c = 0; c < result.centroids.size(); ++c) {
        const double dd = SquaredDistance(points[i], result.centroids[c]);
        if (dd < best_d) {
          best_d = dd;
          best = static_cast<int>(c);
        }
      }
      if (result.assignment[i] != best) {
        result.assignment[i] = best;
        changed = true;
      }
    }
    // Recompute centroids.
    std::vector<std::vector<double>> sums(result.centroids.size(),
                                          std::vector<double>(d, 0.0));
    std::vector<std::size_t> counts(result.centroids.size(), 0);
    for (std::size_t i = 0; i < n; ++i) {
      const auto c = static_cast<std::size_t>(result.assignment[i]);
      ++counts[c];
      for (std::size_t j = 0; j < d; ++j) sums[c][j] += points[i][j];
    }
    for (std::size_t c = 0; c < result.centroids.size(); ++c) {
      if (counts[c] == 0) {
        // Re-seed an empty cluster at a random point.
        result.centroids[c] = points[rng.NextBounded(n)];
        changed = true;
        continue;
      }
      for (std::size_t j = 0; j < d; ++j) {
        result.centroids[c][j] =
            sums[c][j] / static_cast<double>(counts[c]);
      }
    }
    if (!changed) break;
  }
  result.inertia = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    result.inertia += SquaredDistance(
        points[i],
        result.centroids[static_cast<std::size_t>(result.assignment[i])]);
  }
  return result;
}

}  // namespace tnmine::ml
