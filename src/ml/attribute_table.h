#ifndef TNMINE_ML_ATTRIBUTE_TABLE_H_
#define TNMINE_ML_ATTRIBUTE_TABLE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/binning.h"
#include "common/random.h"
#include "data/dataset.h"

namespace tnmine::ml {

/// Attribute kinds in the tabular ("transactional", Section 7) view.
enum class AttrKind {
  kNumeric,
  kNominal,
};

/// Attribute metadata. Nominal attributes carry their value dictionary;
/// cell values are indices into it.
struct Attribute {
  std::string name;
  AttrKind kind = AttrKind::kNumeric;
  std::vector<std::string> values;  ///< nominal domain (empty for numeric)
};

/// A dense row-major table of instances — the ARFF-file equivalent the
/// paper fed to Weka. Numeric cells hold raw values; nominal cells hold
/// the index of the value in the attribute's dictionary.
class AttributeTable {
 public:
  AttributeTable() = default;

  /// Adds a numeric attribute; returns its column index. Must be called
  /// before any rows exist.
  int AddNumericAttribute(const std::string& name);

  /// Adds a nominal attribute with the given value dictionary.
  int AddNominalAttribute(const std::string& name,
                          std::vector<std::string> values);

  /// Appends a row; must have one cell per attribute, and nominal cells
  /// must be valid dictionary indices.
  void AddRow(std::vector<double> row);

  std::size_t num_rows() const { return rows_.size(); }
  int num_attributes() const { return static_cast<int>(attributes_.size()); }
  const Attribute& attribute(int index) const;
  const std::vector<Attribute>& attributes() const { return attributes_; }

  double value(std::size_t row, int attribute) const;
  const std::vector<double>& row(std::size_t index) const;

  /// Index of the attribute named `name`, or -1.
  int AttributeIndex(const std::string& name) const;

  /// Extracts one numeric column.
  std::vector<double> Column(int attribute) const;

  /// The nominal cell's string value.
  const std::string& NominalValue(std::size_t row, int attribute) const;

  /// Builds the paper's Section-7 table from a transaction dataset: the
  /// eight non-date attributes (the paper excluded REQ_PICKUP_DT and
  /// REQ_DELIVERY_DT because Weka's DATE handling made results
  /// uninterpretable). Lat/long, distance, weight, and hours are numeric;
  /// TRANS_MODE is nominal {TL, LTL}. The ID column is dropped too (it is
  /// a key, not a feature).
  static AttributeTable FromTransactions(const data::TransactionDataset& ds);

  /// Returns a copy with every numeric attribute discretized into
  /// `num_bins` nominal interval values (equal-frequency when
  /// `equal_frequency`, else equal-width) — Weka's Discretize filter, the
  /// preprocessing for Experiments 1/2 and J4.8.
  AttributeTable Discretized(int num_bins, bool equal_frequency) const;

  /// Splits rows into train/test by sampling `test_fraction` of rows
  /// without replacement.
  void Split(double test_fraction, Rng& rng, AttributeTable* train,
             AttributeTable* test) const;

 private:
  std::vector<Attribute> attributes_;
  std::vector<std::vector<double>> rows_;
};

}  // namespace tnmine::ml

#endif  // TNMINE_ML_ATTRIBUTE_TABLE_H_
