#ifndef TNMINE_ML_NAIVE_BAYES_H_
#define TNMINE_ML_NAIVE_BAYES_H_

#include <vector>

#include "ml/attribute_table.h"

namespace tnmine::ml {

/// Options for the naive Bayes classifier.
struct NaiveBayesOptions {
  /// Laplace smoothing constant for nominal likelihoods.
  double laplace = 1.0;
  /// Floor for per-class numeric standard deviations.
  double min_stddev = 1e-6;
};

/// Naive Bayes classifier over mixed attributes: nominal features use
/// Laplace-smoothed frequency estimates, numeric features per-class
/// Gaussians — Weka's NaiveBayes, the standard sanity baseline next to
/// J4.8 in the paper's Section-7 tool chest.
class NaiveBayes {
 public:
  /// Learns class-conditional models for the nominal attribute
  /// `class_attribute`.
  static NaiveBayes Train(const AttributeTable& table, int class_attribute,
                          const NaiveBayesOptions& options = {});

  /// Predicts the class value index for a row laid out like the training
  /// table's rows.
  int Predict(const std::vector<double>& row) const;

  /// Per-class log posterior (up to a constant) for a row; useful for
  /// confidence inspection.
  std::vector<double> LogPosterior(const std::vector<double>& row) const;

  double Accuracy(const AttributeTable& table) const;

  int class_attribute() const { return class_attribute_; }

 private:
  int class_attribute_ = -1;
  std::vector<double> log_prior_;  // per class
  struct NominalModel {
    // log P(value | class): [class][value]
    std::vector<std::vector<double>> log_likelihood;
  };
  struct NumericModel {
    std::vector<double> mean;    // per class
    std::vector<double> stddev;  // per class
  };
  // Index by attribute; exactly one of the two is populated per feature.
  std::vector<NominalModel> nominal_;
  std::vector<NumericModel> numeric_;
  std::vector<AttrKind> kinds_;
};

}  // namespace tnmine::ml

#endif  // TNMINE_ML_NAIVE_BAYES_H_
