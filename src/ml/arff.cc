#include "ml/arff.h"

#include <algorithm>
#include <cctype>
#include <charconv>
#include <cstdio>
#include <sstream>
#include <string_view>

#include "common/parse.h"
#include "graph/graph_io.h"

namespace tnmine::ml {

namespace {

/// Quotes a name/value when it contains ARFF-significant characters.
/// Inside quotes both the quote and the backslash are escaped — otherwise
/// a value ending in '\' would serialize as '...\'' and the trailing \'
/// would read back as an escaped quote.
std::string Quote(const std::string& s) {
  const bool needs = s.empty() ||
                     s.find_first_of(" ,{}%'\"\t") != std::string::npos;
  if (!needs) return s;
  std::string out = "'";
  for (char c : s) {
    if (c == '\'') out += "\\'";
    else if (c == '\\') out += "\\\\";
    else out.push_back(c);
  }
  out += "'";
  return out;
}

std::string TrimCopy(const std::string& s) {
  std::size_t b = 0, e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

bool IsSpace(char c) {
  return std::isspace(static_cast<unsigned char>(c)) != 0;
}

/// Splits a comma-separated list, honoring single quotes. Whitespace
/// around unquoted items is trimmed; the content of quoted items is
/// preserved verbatim (including leading/trailing spaces), which is what
/// makes Quote() round-trip. After a closing quote only whitespace may
/// precede the next comma.
bool SplitList(const std::string& text, std::vector<std::string>* out) {
  out->clear();
  std::size_t i = 0;
  const std::size_t n = text.size();
  for (;;) {
    while (i < n && IsSpace(text[i])) ++i;
    std::string item;
    if (i < n && text[i] == '\'') {
      ++i;
      bool closed = false;
      while (i < n) {
        const char c = text[i];
        if (c == '\\' && i + 1 < n &&
            (text[i + 1] == '\'' || text[i + 1] == '\\')) {
          item.push_back(text[i + 1]);
          i += 2;
        } else if (c == '\'') {
          ++i;
          closed = true;
          break;
        } else {
          item.push_back(c);
          ++i;
        }
      }
      if (!closed) return false;  // unterminated quote
      while (i < n && IsSpace(text[i])) ++i;
      if (i < n && text[i] != ',') return false;  // junk after closing quote
    } else {
      const std::size_t start = i;
      while (i < n && text[i] != ',') {
        if (text[i] == '\'') return false;  // quote inside unquoted item
        ++i;
      }
      std::size_t end = i;
      while (end > start && IsSpace(text[end - 1])) --end;
      item = text.substr(start, end - start);
    }
    out->push_back(std::move(item));
    if (i >= n) break;
    ++i;  // skip the comma
  }
  return true;
}

/// Shortest representation that parses back to exactly the same double
/// (std::to_chars), so numeric cells survive Write -> Read unchanged.
void AppendDouble(std::ostringstream& out, double value) {
  char buf[64];
  const auto [ptr, ec] = std::to_chars(buf, buf + sizeof(buf), value);
  out << std::string_view(buf, static_cast<std::size_t>(ptr - buf));
}

}  // namespace

std::string WriteArff(const AttributeTable& table,
                      const std::string& relation_name) {
  std::ostringstream out;
  out << "@relation " << Quote(relation_name) << "\n\n";
  for (const Attribute& attr : table.attributes()) {
    out << "@attribute " << Quote(attr.name) << " ";
    if (attr.kind == AttrKind::kNumeric) {
      out << "numeric\n";
    } else {
      out << "{";
      for (std::size_t v = 0; v < attr.values.size(); ++v) {
        if (v > 0) out << ",";
        out << Quote(attr.values[v]);
      }
      out << "}\n";
    }
  }
  out << "\n@data\n";
  for (std::size_t r = 0; r < table.num_rows(); ++r) {
    for (int a = 0; a < table.num_attributes(); ++a) {
      if (a > 0) out << ",";
      const Attribute& attr = table.attribute(a);
      if (attr.kind == AttrKind::kNumeric) {
        AppendDouble(out, table.value(r, a));
      } else {
        out << Quote(table.NominalValue(r, a));
      }
    }
    out << "\n";
  }
  return out.str();
}

bool ReadArff(const std::string& text, AttributeTable* table,
              ParseError* error) {
  *table = AttributeTable();
  std::istringstream in(text);
  std::string line;
  bool in_data = false;
  std::size_t line_number = 0;
  auto fail = [&](const std::string& message) {
    if (error != nullptr) *error = ParseError::At(line_number, 0, message);
    return false;
  };
  while (std::getline(in, line)) {
    ++line_number;
    const std::string trimmed = TrimCopy(line);
    if (trimmed.empty() || trimmed[0] == '%') continue;
    if (!in_data) {
      std::string lower = trimmed;
      std::transform(lower.begin(), lower.end(), lower.begin(),
                     [](unsigned char c) { return std::tolower(c); });
      if (lower.rfind("@relation", 0) == 0) continue;
      if (lower.rfind("@data", 0) == 0) {
        in_data = true;
        continue;
      }
      if (lower.rfind("@attribute", 0) == 0) {
        std::string rest = TrimCopy(trimmed.substr(10));
        // Name: quoted or up to whitespace.
        std::string name;
        if (!rest.empty() && rest[0] == '\'') {
          std::size_t i = 1;
          bool closed = false;
          while (i < rest.size()) {
            if (rest[i] == '\\' && i + 1 < rest.size() &&
                (rest[i + 1] == '\'' || rest[i + 1] == '\\')) {
              name.push_back(rest[i + 1]);
              i += 2;
            } else if (rest[i] == '\'') {
              ++i;
              closed = true;
              break;
            } else {
              name.push_back(rest[i]);
              ++i;
            }
          }
          if (!closed) return fail("unterminated attribute name");
          rest = TrimCopy(rest.substr(i));
        } else {
          const std::size_t space = rest.find_first_of(" \t");
          if (space == std::string::npos) {
            return fail("attribute missing type");
          }
          name = rest.substr(0, space);
          rest = TrimCopy(rest.substr(space));
        }
        std::string lower_rest = rest;
        std::transform(lower_rest.begin(), lower_rest.end(),
                       lower_rest.begin(),
                       [](unsigned char c) { return std::tolower(c); });
        if (lower_rest.rfind("numeric", 0) == 0 ||
            lower_rest.rfind("real", 0) == 0 ||
            lower_rest.rfind("integer", 0) == 0) {
          table->AddNumericAttribute(name);
        } else if (!rest.empty() && rest[0] == '{' &&
                   rest.back() == '}') {
          std::vector<std::string> values;
          if (!SplitList(rest.substr(1, rest.size() - 2), &values)) {
            return fail("malformed nominal domain");
          }
          table->AddNominalAttribute(name, std::move(values));
        } else {
          return fail("unsupported attribute type: " + rest);
        }
        continue;
      }
      return fail("unexpected header line");
    }
    // Data row.
    std::vector<std::string> cells;
    if (!SplitList(trimmed, &cells)) return fail("malformed data row");
    if (static_cast<int>(cells.size()) != table->num_attributes()) {
      return fail("wrong cell count");
    }
    std::vector<double> row(cells.size());
    for (int a = 0; a < table->num_attributes(); ++a) {
      const Attribute& attr = table->attribute(a);
      const std::string& cell = cells[static_cast<std::size_t>(a)];
      if (attr.kind == AttrKind::kNumeric) {
        if (!ParseDouble(cell, &row[static_cast<std::size_t>(a)])) {
          return fail("bad numeric cell '" + cell + "'");
        }
      } else {
        const auto it =
            std::find(attr.values.begin(), attr.values.end(), cell);
        if (it == attr.values.end()) {
          return fail("unknown nominal value '" + cell + "'");
        }
        row[static_cast<std::size_t>(a)] =
            static_cast<double>(it - attr.values.begin());
      }
    }
    table->AddRow(std::move(row));
  }
  if (!in_data) return fail("missing @data section");
  return true;
}

bool ReadArff(const std::string& text, AttributeTable* table,
              std::string* error) {
  ParseError err;
  if (ReadArff(text, table, &err)) return true;
  if (error != nullptr) *error = err.ToString();
  return false;
}

bool SaveArff(const AttributeTable& table, const std::string& relation_name,
              const std::string& path, std::string* error) {
  if (!graph::WriteTextFile(path, WriteArff(table, relation_name))) {
    if (error != nullptr) *error = "cannot write " + path;
    return false;
  }
  return true;
}

bool LoadArff(const std::string& path, AttributeTable* table,
              std::string* error) {
  std::string text;
  if (!graph::ReadTextFile(path, &text)) {
    if (error != nullptr) *error = "cannot read " + path;
    return false;
  }
  return ReadArff(text, table, error);
}

}  // namespace tnmine::ml
