#include "ml/arff.h"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <sstream>

#include "graph/graph_io.h"

namespace tnmine::ml {

namespace {

/// Quotes a name/value when it contains ARFF-significant characters.
std::string Quote(const std::string& s) {
  const bool needs = s.empty() ||
                     s.find_first_of(" ,{}%'\"\t") != std::string::npos;
  if (!needs) return s;
  std::string out = "'";
  for (char c : s) {
    if (c == '\'') out += "\\'";
    else out.push_back(c);
  }
  out += "'";
  return out;
}

std::string TrimCopy(const std::string& s) {
  std::size_t b = 0, e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

/// Splits a comma-separated list, honoring single quotes.
bool SplitList(const std::string& text, std::vector<std::string>* out) {
  out->clear();
  std::string cur;
  bool quoted = false;
  for (std::size_t i = 0; i < text.size(); ++i) {
    const char c = text[i];
    if (quoted) {
      if (c == '\\' && i + 1 < text.size() && text[i + 1] == '\'') {
        cur.push_back('\'');
        ++i;
      } else if (c == '\'') {
        quoted = false;
      } else {
        cur.push_back(c);
      }
    } else if (c == '\'') {
      quoted = true;
    } else if (c == ',') {
      out->push_back(TrimCopy(cur));
      cur.clear();
    } else {
      cur.push_back(c);
    }
  }
  if (quoted) return false;
  out->push_back(TrimCopy(cur));
  return true;
}

}  // namespace

std::string WriteArff(const AttributeTable& table,
                      const std::string& relation_name) {
  std::ostringstream out;
  out << "@relation " << Quote(relation_name) << "\n\n";
  for (const Attribute& attr : table.attributes()) {
    out << "@attribute " << Quote(attr.name) << " ";
    if (attr.kind == AttrKind::kNumeric) {
      out << "numeric\n";
    } else {
      out << "{";
      for (std::size_t v = 0; v < attr.values.size(); ++v) {
        if (v > 0) out << ",";
        out << Quote(attr.values[v]);
      }
      out << "}\n";
    }
  }
  out << "\n@data\n";
  char buf[64];
  for (std::size_t r = 0; r < table.num_rows(); ++r) {
    for (int a = 0; a < table.num_attributes(); ++a) {
      if (a > 0) out << ",";
      const Attribute& attr = table.attribute(a);
      if (attr.kind == AttrKind::kNumeric) {
        std::snprintf(buf, sizeof(buf), "%.10g", table.value(r, a));
        out << buf;
      } else {
        out << Quote(table.NominalValue(r, a));
      }
    }
    out << "\n";
  }
  return out.str();
}

bool ReadArff(const std::string& text, AttributeTable* table,
              std::string* error) {
  *table = AttributeTable();
  std::istringstream in(text);
  std::string line;
  bool in_data = false;
  std::size_t line_number = 0;
  auto fail = [&](const std::string& message) {
    if (error != nullptr) {
      *error = message + " at line " + std::to_string(line_number);
    }
    return false;
  };
  // Nominal dictionaries for cell lookup.
  std::vector<const Attribute*> attrs;
  while (std::getline(in, line)) {
    ++line_number;
    const std::string trimmed = TrimCopy(line);
    if (trimmed.empty() || trimmed[0] == '%') continue;
    if (!in_data) {
      std::string lower = trimmed;
      std::transform(lower.begin(), lower.end(), lower.begin(),
                     [](unsigned char c) { return std::tolower(c); });
      if (lower.rfind("@relation", 0) == 0) continue;
      if (lower.rfind("@data", 0) == 0) {
        in_data = true;
        continue;
      }
      if (lower.rfind("@attribute", 0) == 0) {
        std::string rest = TrimCopy(trimmed.substr(10));
        // Name: quoted or up to whitespace.
        std::string name;
        if (!rest.empty() && rest[0] == '\'') {
          std::size_t i = 1;
          while (i < rest.size() && rest[i] != '\'') {
            if (rest[i] == '\\' && i + 1 < rest.size()) ++i;
            name.push_back(rest[i]);
            ++i;
          }
          if (i >= rest.size()) return fail("unterminated attribute name");
          rest = TrimCopy(rest.substr(i + 1));
        } else {
          const std::size_t space = rest.find_first_of(" \t");
          if (space == std::string::npos) {
            return fail("attribute missing type");
          }
          name = rest.substr(0, space);
          rest = TrimCopy(rest.substr(space));
        }
        std::string lower_rest = rest;
        std::transform(lower_rest.begin(), lower_rest.end(),
                       lower_rest.begin(),
                       [](unsigned char c) { return std::tolower(c); });
        if (lower_rest.rfind("numeric", 0) == 0 ||
            lower_rest.rfind("real", 0) == 0 ||
            lower_rest.rfind("integer", 0) == 0) {
          table->AddNumericAttribute(name);
        } else if (!rest.empty() && rest[0] == '{' &&
                   rest.back() == '}') {
          std::vector<std::string> values;
          if (!SplitList(rest.substr(1, rest.size() - 2), &values)) {
            return fail("malformed nominal domain");
          }
          table->AddNominalAttribute(name, std::move(values));
        } else {
          return fail("unsupported attribute type: " + rest);
        }
        continue;
      }
      return fail("unexpected header line");
    }
    // Data row.
    std::vector<std::string> cells;
    if (!SplitList(trimmed, &cells)) return fail("malformed data row");
    if (static_cast<int>(cells.size()) != table->num_attributes()) {
      return fail("wrong cell count");
    }
    std::vector<double> row(cells.size());
    for (int a = 0; a < table->num_attributes(); ++a) {
      const Attribute& attr = table->attribute(a);
      const std::string& cell = cells[static_cast<std::size_t>(a)];
      if (attr.kind == AttrKind::kNumeric) {
        char* end = nullptr;
        row[static_cast<std::size_t>(a)] = std::strtod(cell.c_str(), &end);
        if (end == cell.c_str() || *end != '\0') {
          return fail("bad numeric cell '" + cell + "'");
        }
      } else {
        const auto it =
            std::find(attr.values.begin(), attr.values.end(), cell);
        if (it == attr.values.end()) {
          return fail("unknown nominal value '" + cell + "'");
        }
        row[static_cast<std::size_t>(a)] =
            static_cast<double>(it - attr.values.begin());
      }
    }
    table->AddRow(std::move(row));
  }
  if (!in_data) return fail("missing @data section");
  (void)attrs;
  return true;
}

bool SaveArff(const AttributeTable& table, const std::string& relation_name,
              const std::string& path, std::string* error) {
  if (!graph::WriteTextFile(path, WriteArff(table, relation_name))) {
    if (error != nullptr) *error = "cannot write " + path;
    return false;
  }
  return true;
}

bool LoadArff(const std::string& path, AttributeTable* table,
              std::string* error) {
  std::string text;
  if (!graph::ReadTextFile(path, &text)) {
    if (error != nullptr) *error = "cannot read " + path;
    return false;
  }
  return ReadArff(text, table, error);
}

}  // namespace tnmine::ml
