#ifndef TNMINE_ML_DECISION_TREE_H_
#define TNMINE_ML_DECISION_TREE_H_

#include <string>
#include <vector>

#include "ml/attribute_table.h"

namespace tnmine::ml {

/// Options for the C4.5-style tree learner (Weka's J4.8, Section 7.2).
struct DecisionTreeOptions {
  /// Minimum training instances in a leaf (J4.8's -M, default 2).
  int min_instances_per_leaf = 2;
  /// Post-prune with pessimistic (confidence-bound) subtree replacement.
  bool prune = true;
  /// Pruning confidence factor (J4.8's -C, default 0.25; smaller prunes
  /// harder).
  double pruning_confidence = 0.25;
  /// Maximum tree depth (0 = unlimited).
  int max_depth = 0;
};

/// A C4.5-style decision tree: gain-ratio splits, multiway branches on
/// nominal attributes, binary threshold splits on numeric attributes, and
/// pessimistic-error subtree-replacement pruning.
class DecisionTree {
 public:
  /// Learns a tree predicting the nominal attribute `class_attribute`.
  static DecisionTree Train(const AttributeTable& table, int class_attribute,
                            const DecisionTreeOptions& options);

  /// Predicts the class value index for a row laid out like the training
  /// table's rows (the class cell is ignored).
  int Predict(const std::vector<double>& row) const;

  /// Fraction of rows of `table` classified correctly.
  double Accuracy(const AttributeTable& table) const;

  /// The root split attribute (-1 when the tree is a single leaf). The
  /// paper reads this off J4.8's output: "The classification tree first
  /// splits on the GROSS_WEIGHT attribute".
  int root_attribute() const;

  std::size_t num_nodes() const { return nodes_.size(); }
  std::size_t depth() const;
  int class_attribute() const { return class_attribute_; }

  /// Indented, human-readable rendering.
  std::string ToString(const AttributeTable& table) const;

 private:
  struct Node {
    bool leaf = true;
    int prediction = 0;              ///< majority class value index
    int attribute = -1;              ///< split attribute (when not a leaf)
    bool numeric_split = false;
    double threshold = 0.0;          ///< numeric: <= goes to children[0]
    std::vector<int> children;       ///< indices into nodes_
    double count = 0.0;              ///< training rows at this node
    double errors = 0.0;             ///< training misclassifications
  };

  int BuildNode(const AttributeTable& table, int class_attribute,
                const DecisionTreeOptions& options,
                std::vector<std::size_t>& rows, int depth,
                std::vector<char>& used_nominal);
  double PruneNode(int node, const DecisionTreeOptions& options);
  std::size_t DepthOf(int node) const;
  void Render(const AttributeTable& table, int node, int indent,
              std::string* out) const;

  std::vector<Node> nodes_;
  int class_attribute_ = -1;
  int root_ = -1;
};

/// C4.5's pessimistic additional-error estimate: given `n` instances with
/// `e` observed errors at a leaf, the upper-confidence-bound estimate of
/// extra errors at confidence factor `cf` (Weka's Utils.addErrs). Exposed
/// for testing.
double PessimisticExtraErrors(double n, double e, double cf);

}  // namespace tnmine::ml

#endif  // TNMINE_ML_DECISION_TREE_H_
