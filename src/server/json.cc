#include "server/json.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace tnmine::server {

namespace {

const JsonValue& NullValue() {
  static const JsonValue kNull;
  return kNull;
}

void AppendEscaped(std::string* out, const std::string& s) {
  out->push_back('"');
  for (char c : s) {
    const unsigned char u = static_cast<unsigned char>(c);
    switch (c) {
      case '"':
        *out += "\\\"";
        break;
      case '\\':
        *out += "\\\\";
        break;
      case '\n':
        *out += "\\n";
        break;
      case '\r':
        *out += "\\r";
        break;
      case '\t':
        *out += "\\t";
        break;
      default:
        if (u < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", u);
          *out += buf;
        } else {
          out->push_back(c);
        }
    }
  }
  out->push_back('"');
}

/// Strict parser over a bounded string_view. Positions are advanced only
/// on successful matches; the first error wins.
class Parser {
 public:
  Parser(std::string_view text, std::string* error)
      : text_(text), error_(error) {}

  bool ParseDocument(JsonValue* out) {
    SkipSpace();
    if (!ParseValue(out, 0)) return false;
    SkipSpace();
    if (pos_ != text_.size()) return Fail("trailing characters");
    return true;
  }

 private:
  static constexpr int kMaxDepth = 64;

  bool Fail(const std::string& what) {
    if (error_ != nullptr && error_->empty()) {
      *error_ = what + " at offset " + std::to_string(pos_);
    }
    return false;
  }

  void SkipSpace() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' ||
            text_[pos_] == '\n' || text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool Literal(std::string_view word) {
    if (text_.substr(pos_, word.size()) != word) return false;
    pos_ += word.size();
    return true;
  }

  bool ParseValue(JsonValue* out, int depth) {
    if (depth > kMaxDepth) return Fail("nesting too deep");
    if (pos_ >= text_.size()) return Fail("unexpected end of input");
    const char c = text_[pos_];
    switch (c) {
      case 'n':
        if (!Literal("null")) return Fail("bad literal");
        *out = JsonValue();
        return true;
      case 't':
        if (!Literal("true")) return Fail("bad literal");
        *out = JsonValue(true);
        return true;
      case 'f':
        if (!Literal("false")) return Fail("bad literal");
        *out = JsonValue(false);
        return true;
      case '"':
        return ParseString(out);
      case '[':
        return ParseArray(out, depth);
      case '{':
        return ParseObject(out, depth);
      default:
        return ParseNumber(out);
    }
  }

  bool ParseString(JsonValue* out) {
    std::string s;
    if (!ParseRawString(&s)) return false;
    *out = JsonValue(std::move(s));
    return true;
  }

  bool ParseRawString(std::string* s) {
    ++pos_;  // opening quote
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c == '"') {
        ++pos_;
        return true;
      }
      if (c == '\\') {
        if (pos_ + 1 >= text_.size()) return Fail("truncated escape");
        const char e = text_[pos_ + 1];
        pos_ += 2;
        switch (e) {
          case '"':
            s->push_back('"');
            break;
          case '\\':
            s->push_back('\\');
            break;
          case '/':
            s->push_back('/');
            break;
          case 'b':
            s->push_back('\b');
            break;
          case 'f':
            s->push_back('\f');
            break;
          case 'n':
            s->push_back('\n');
            break;
          case 'r':
            s->push_back('\r');
            break;
          case 't':
            s->push_back('\t');
            break;
          case 'u': {
            if (pos_ + 4 > text_.size()) return Fail("truncated \\u");
            unsigned code = 0;
            for (int i = 0; i < 4; ++i) {
              const char h = text_[pos_ + i];
              code <<= 4;
              if (h >= '0' && h <= '9') {
                code |= static_cast<unsigned>(h - '0');
              } else if (h >= 'a' && h <= 'f') {
                code |= static_cast<unsigned>(h - 'a' + 10);
              } else if (h >= 'A' && h <= 'F') {
                code |= static_cast<unsigned>(h - 'A' + 10);
              } else {
                return Fail("bad \\u digit");
              }
            }
            pos_ += 4;
            // UTF-8 encode the code point (surrogate pairs are passed
            // through as two 3-byte sequences; the protocol only needs
            // ASCII + escaped control bytes to round-trip).
            if (code < 0x80) {
              s->push_back(static_cast<char>(code));
            } else if (code < 0x800) {
              s->push_back(static_cast<char>(0xC0 | (code >> 6)));
              s->push_back(static_cast<char>(0x80 | (code & 0x3F)));
            } else {
              s->push_back(static_cast<char>(0xE0 | (code >> 12)));
              s->push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
              s->push_back(static_cast<char>(0x80 | (code & 0x3F)));
            }
            break;
          }
          default:
            return Fail("bad escape");
        }
        continue;
      }
      if (static_cast<unsigned char>(c) < 0x20) {
        return Fail("raw control character in string");
      }
      s->push_back(c);
      ++pos_;
    }
    return Fail("unterminated string");
  }

  bool ParseNumber(JsonValue* out) {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    bool integral = true;
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (std::isdigit(static_cast<unsigned char>(c))) {
        ++pos_;
      } else if (c == '.' || c == 'e' || c == 'E' || c == '+' ||
                 c == '-') {
        integral = false;
        ++pos_;
      } else {
        break;
      }
    }
    if (pos_ == start) return Fail("expected value");
    const std::string token(text_.substr(start, pos_ - start));
    char* end = nullptr;
    if (integral) {
      errno = 0;
      const long long v = std::strtoll(token.c_str(), &end, 10);
      if (end == token.c_str() + token.size() && errno == 0) {
        *out = JsonValue(static_cast<std::int64_t>(v));
        return true;
      }
    }
    errno = 0;
    const double d = std::strtod(token.c_str(), &end);
    if (end != token.c_str() + token.size()) return Fail("bad number");
    *out = JsonValue(d);
    return true;
  }

  bool ParseArray(JsonValue* out, int depth) {
    ++pos_;  // '['
    JsonValue::Array items;
    SkipSpace();
    if (pos_ < text_.size() && text_[pos_] == ']') {
      ++pos_;
      *out = JsonValue(std::move(items));
      return true;
    }
    while (true) {
      JsonValue item;
      SkipSpace();
      if (!ParseValue(&item, depth + 1)) return false;
      items.push_back(std::move(item));
      SkipSpace();
      if (pos_ >= text_.size()) return Fail("unterminated array");
      if (text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (text_[pos_] == ']') {
        ++pos_;
        *out = JsonValue(std::move(items));
        return true;
      }
      return Fail("expected ',' or ']'");
    }
  }

  bool ParseObject(JsonValue* out, int depth) {
    ++pos_;  // '{'
    JsonValue::Object members;
    SkipSpace();
    if (pos_ < text_.size() && text_[pos_] == '}') {
      ++pos_;
      *out = JsonValue(std::move(members));
      return true;
    }
    while (true) {
      SkipSpace();
      if (pos_ >= text_.size() || text_[pos_] != '"') {
        return Fail("expected member name");
      }
      std::string key;
      if (!ParseRawString(&key)) return false;
      SkipSpace();
      if (pos_ >= text_.size() || text_[pos_] != ':') {
        return Fail("expected ':'");
      }
      ++pos_;
      SkipSpace();
      JsonValue value;
      if (!ParseValue(&value, depth + 1)) return false;
      members[std::move(key)] = std::move(value);
      SkipSpace();
      if (pos_ >= text_.size()) return Fail("unterminated object");
      if (text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (text_[pos_] == '}') {
        ++pos_;
        *out = JsonValue(std::move(members));
        return true;
      }
      return Fail("expected ',' or '}'");
    }
  }

  std::string_view text_;
  std::size_t pos_ = 0;
  std::string* error_;
};

}  // namespace

const JsonValue& JsonValue::Get(std::string_view key) const {
  if (kind_ != Kind::kObject) return NullValue();
  const auto it = object_.find(std::string(key));
  return it == object_.end() ? NullValue() : it->second;
}

bool JsonValue::Has(std::string_view key) const {
  return kind_ == Kind::kObject && object_.contains(std::string(key));
}

void JsonValue::Set(std::string key, JsonValue v) {
  if (kind_ != Kind::kObject) {
    *this = MakeObject();
  }
  object_[std::move(key)] = std::move(v);
}

void JsonValue::SerializeTo(std::string* out) const {
  switch (kind_) {
    case Kind::kNull:
      *out += "null";
      return;
    case Kind::kBool:
      *out += bool_ ? "true" : "false";
      return;
    case Kind::kInt:
      *out += std::to_string(int_);
      return;
    case Kind::kDouble: {
      if (!std::isfinite(double_)) {
        *out += "null";
        return;
      }
      char buf[40];
      std::snprintf(buf, sizeof(buf), "%.17g", double_);
      *out += buf;
      return;
    }
    case Kind::kString:
      AppendEscaped(out, string_);
      return;
    case Kind::kArray: {
      out->push_back('[');
      bool first = true;
      for (const JsonValue& v : array_) {
        if (!first) out->push_back(',');
        first = false;
        v.SerializeTo(out);
      }
      out->push_back(']');
      return;
    }
    case Kind::kObject: {
      out->push_back('{');
      bool first = true;
      for (const auto& [key, value] : object_) {
        if (!first) out->push_back(',');
        first = false;
        AppendEscaped(out, key);
        out->push_back(':');
        value.SerializeTo(out);
      }
      out->push_back('}');
      return;
    }
  }
}

std::string JsonValue::Serialize() const {
  std::string out;
  out.reserve(64);
  SerializeTo(&out);
  return out;
}

bool JsonValue::Parse(std::string_view text, JsonValue* out,
                      std::string* error) {
  if (error != nullptr) error->clear();
  Parser parser(text, error);
  return parser.ParseDocument(out);
}

}  // namespace tnmine::server
