#ifndef TNMINE_SERVER_RESULT_CACHE_H_
#define TNMINE_SERVER_RESULT_CACHE_H_

#include <cstdint>
#include <list>
#include <mutex>
#include <string>
#include <unordered_map>

namespace tnmine::server {

/// Keyed mining-result cache (DESIGN.md §14), in the spirit of
/// ClickHouse's saved-subquery-result buffer: the key is
///
///   snapshot fingerprint × snapshot version × miner op ×
///   canonicalized params
///
/// rendered as one string (the canonical JSON serialization of the
/// params object makes "identical params" exact), and the value is the
/// serialized response payload — stored verbatim, so a cache hit is
/// byte-identical to the freshly mined response by construction.
///
/// Bounded LRU: entries are evicted least-recently-used first once
/// MemoryBytes() exceeds the capacity. Loading a new snapshot calls
/// Clear() (the snapshot version in the key already prevents stale hits;
/// clearing also returns the memory). Thread-safe; every method takes
/// the one internal mutex — the cache holds small serialized strings and
/// is never on a mining hot path.
class ResultCache {
 public:
  /// `capacity_bytes` bounds MemoryBytes(); 0 disables caching entirely
  /// (Lookup always misses, Insert is a no-op).
  explicit ResultCache(std::uint64_t capacity_bytes)
      : capacity_bytes_(capacity_bytes) {}

  /// Returns true and copies the cached payload on a hit; the entry
  /// becomes most-recently-used. Counts a miss otherwise.
  bool Lookup(const std::string& key, std::string* payload);

  /// Inserts (or refreshes) `key`, then evicts LRU entries until the
  /// cache fits the capacity again. An entry larger than the whole
  /// capacity is not admitted.
  void Insert(const std::string& key, const std::string& payload);

  /// Drops every entry (snapshot reload). Counts one invalidation.
  void Clear();

  /// Estimated resident bytes: keys + payloads + fixed per-entry
  /// overhead.
  std::uint64_t MemoryBytes() const;
  std::uint64_t capacity_bytes() const { return capacity_bytes_; }
  std::size_t entries() const;

  std::uint64_t hits() const;
  std::uint64_t misses() const;
  std::uint64_t evictions() const;
  std::uint64_t invalidations() const;

 private:
  struct Entry {
    std::string key;
    std::string payload;
  };

  static std::uint64_t EntryBytes(const Entry& e) {
    return e.key.size() + e.payload.size() + kEntryOverheadBytes;
  }

  /// Approximate bookkeeping cost per entry (list node + map slot).
  static constexpr std::uint64_t kEntryOverheadBytes = 128;

  mutable std::mutex mu_;
  std::uint64_t capacity_bytes_;
  std::uint64_t bytes_ = 0;                 // guarded by mu_
  std::list<Entry> lru_;                    // front = most recent
  std::unordered_map<std::string, std::list<Entry>::iterator> index_;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
  std::uint64_t evictions_ = 0;
  std::uint64_t invalidations_ = 0;
};

}  // namespace tnmine::server

#endif  // TNMINE_SERVER_RESULT_CACHE_H_
