#include "server/wire.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>

#include "common/failpoint.h"
#include "common/parse.h"
#include "common/telemetry.h"

namespace tnmine::server {

namespace {

using SteadyClock = std::chrono::steady_clock;

/// Monotonic budget for one frame (or one connect attempt). A zero
/// timeout constructs an unlimited deadline: remaining_ms() is poll's
/// "wait forever" and expired() is never true.
class Deadline {
 public:
  explicit Deadline(std::uint64_t timeout_ms)
      : unlimited_(timeout_ms == 0),
        at_(SteadyClock::now() + std::chrono::milliseconds(timeout_ms)) {}

  bool expired() const { return !unlimited_ && SteadyClock::now() >= at_; }

  /// Remaining budget as a poll() timeout: -1 = infinite, >= 0
  /// otherwise (clamped so a just-expired deadline polls with 0 and
  /// fails fast instead of blocking).
  int remaining_poll_ms() const {
    if (unlimited_) return -1;
    const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
        at_ - SteadyClock::now());
    if (left.count() <= 0) return 0;
    if (left.count() > 3600000) return 3600000;
    return static_cast<int>(left.count());
  }

 private:
  bool unlimited_;
  SteadyClock::time_point at_;
};

enum class IoStatus : std::uint8_t { kOk, kEof, kTimeout, kError };

/// Reads exactly `n` bytes with poll-before-read under `deadline`.
/// Handles blocking and O_NONBLOCK fds: poll gates every read, and
/// EAGAIN simply loops back into poll.
IoStatus ReadExactDeadline(int fd, char* buf, std::size_t n,
                           const Deadline& deadline) {
  std::size_t done = 0;
  while (done < n) {
    pollfd pfd{fd, POLLIN, 0};
    const int ready = ::poll(&pfd, 1, deadline.remaining_poll_ms());
    if (ready < 0) {
      if (errno == EINTR) continue;
      return IoStatus::kError;
    }
    if (ready == 0) return IoStatus::kTimeout;
    const ssize_t got = ::recv(fd, buf + done, n - done, 0);
    if (got == 0) return IoStatus::kEof;
    if (got < 0) {
      if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK) {
        if (deadline.expired()) return IoStatus::kTimeout;
        continue;
      }
      return IoStatus::kError;
    }
    done += static_cast<std::size_t>(got);
  }
  return IoStatus::kOk;
}

IoStatus WriteExactDeadline(int fd, const char* buf, std::size_t n,
                            const Deadline& deadline) {
  std::size_t done = 0;
  while (done < n) {
    pollfd pfd{fd, POLLOUT, 0};
    const int ready = ::poll(&pfd, 1, deadline.remaining_poll_ms());
    if (ready < 0) {
      if (errno == EINTR) continue;
      return IoStatus::kError;
    }
    if (ready == 0) return IoStatus::kTimeout;
    const ssize_t put =
        ::send(fd, buf + done, n - done, MSG_NOSIGNAL);
    if (put < 0) {
      if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK) {
        if (deadline.expired()) return IoStatus::kTimeout;
        continue;
      }
      return IoStatus::kError;
    }
    done += static_cast<std::size_t>(put);
  }
  return IoStatus::kOk;
}

int ConnectTo(const ListenAddress& addr, std::string* error) {
  if (TNMINE_FAILPOINT("wire/connect_fail")) {
    // Injected transient connect failure — the site the client-retry
    // tests and the smoke script arm to prove --retry recovers.
    if (error != nullptr) {
      *error = "connect " + addr.ToString() +
               ": injected failure (failpoint wire/connect_fail)";
    }
    return -1;
  }
  if (addr.is_unix) {
    sockaddr_un sun{};
    sun.sun_family = AF_UNIX;
    if (addr.unix_path.size() >= sizeof(sun.sun_path)) {
      if (error != nullptr) *error = "unix socket path too long";
      return -1;
    }
    std::memcpy(sun.sun_path, addr.unix_path.c_str(),
                addr.unix_path.size() + 1);
    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0 ||
        ::connect(fd, reinterpret_cast<sockaddr*>(&sun), sizeof(sun)) != 0) {
      if (error != nullptr) {
        *error = "connect " + addr.ToString() + ": " + std::strerror(errno);
      }
      if (fd >= 0) ::close(fd);
      return -1;
    }
    return fd;
  }
  sockaddr_in sin{};
  sin.sin_family = AF_INET;
  sin.sin_port = htons(addr.port);
  if (::inet_pton(AF_INET, addr.host.c_str(), &sin.sin_addr) != 1) {
    if (error != nullptr) *error = "bad host " + addr.host;
    return -1;
  }
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0 ||
      ::connect(fd, reinterpret_cast<sockaddr*>(&sin), sizeof(sin)) != 0) {
    if (error != nullptr) {
      *error = "connect " + addr.ToString() + ": " + std::strerror(errno);
    }
    if (fd >= 0) ::close(fd);
    return -1;
  }
  return fd;
}

std::uint64_t SplitMix64(std::uint64_t x) {
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

/// Backoff for the k-th retry (k = 1 for the first): exponential from
/// initial_backoff_ms capped at max_backoff_ms, plus deterministic
/// jitter in [0, base/2] drawn from (jitter_seed, k). Deterministic so
/// retry schedules replay exactly under test.
std::uint64_t BackoffMs(const RetryPolicy& policy, int k) {
  std::uint64_t base = policy.initial_backoff_ms;
  for (int i = 1; i < k && base < policy.max_backoff_ms; ++i) base *= 2;
  if (base > policy.max_backoff_ms) base = policy.max_backoff_ms;
  if (base == 0) return 0;
  const std::uint64_t jitter =
      SplitMix64(policy.jitter_seed ^ static_cast<std::uint64_t>(k)) %
      (base / 2 + 1);
  return base + jitter;
}

}  // namespace

bool ListenAddress::Parse(const std::string& spec, ListenAddress* out,
                          std::string* error) {
  *out = ListenAddress{};
  if (spec.rfind("unix:", 0) == 0) {
    out->is_unix = true;
    out->unix_path = spec.substr(5);
    if (out->unix_path.empty()) {
      if (error != nullptr) *error = "empty unix socket path";
      return false;
    }
    return true;
  }
  std::string rest = spec;
  if (rest.rfind("tcp:", 0) == 0) rest = rest.substr(4);
  std::string port_text = rest;
  const std::size_t colon = rest.rfind(':');
  if (colon != std::string::npos) {
    out->host = rest.substr(0, colon);
    port_text = rest.substr(colon + 1);
  }
  std::uint64_t port = 0;
  if (!tnmine::ParseUint64(port_text, &port) || port > 65535) {
    if (error != nullptr) *error = "bad port in '" + spec + "'";
    return false;
  }
  out->port = static_cast<std::uint16_t>(port);
  return true;
}

std::string ListenAddress::ToString() const {
  if (is_unix) return "unix:" + unix_path;
  return "tcp:" + host + ":" + std::to_string(port);
}

FrameReadStatus ReadFrameDeadline(int fd, std::string* payload,
                                  std::uint64_t idle_timeout_ms,
                                  std::uint64_t io_timeout_ms) {
  char header[4];
  // First header byte under the idle allotment: a connection parked
  // between requests is not "slow", it is idle — budgeted separately.
  {
    const Deadline idle(idle_timeout_ms);
    switch (ReadExactDeadline(fd, header, 1, idle)) {
      case IoStatus::kOk:
        break;
      case IoStatus::kEof:
        return FrameReadStatus::kEof;
      case IoStatus::kTimeout:
        return FrameReadStatus::kIdleTimeout;
      case IoStatus::kError:
        return FrameReadStatus::kTornFrame;
    }
  }
  // A frame has started: everything else shares one monotonic I/O
  // budget, so trickling bytes cannot stretch it.
  const Deadline io(io_timeout_ms);
  switch (ReadExactDeadline(fd, header + 1, sizeof(header) - 1, io)) {
    case IoStatus::kOk:
      break;
    case IoStatus::kTimeout:
      return FrameReadStatus::kIoTimeout;
    case IoStatus::kEof:
    case IoStatus::kError:
      return FrameReadStatus::kTornFrame;
  }
  std::uint32_t len =
      (static_cast<std::uint32_t>(static_cast<unsigned char>(header[0]))
       << 24) |
      (static_cast<std::uint32_t>(static_cast<unsigned char>(header[1]))
       << 16) |
      (static_cast<std::uint32_t>(static_cast<unsigned char>(header[2]))
       << 8) |
      static_cast<std::uint32_t>(static_cast<unsigned char>(header[3]));
  if (TNMINE_FAILPOINT("wire/frame_garbage")) {
    // Injected garbage length prefix: behave exactly as if the peer
    // sent 0xFFFFFFFF.
    len = 0xFFFFFFFFu;
  }
  if (len > kMaxFrameBytes) return FrameReadStatus::kOversized;
  payload->resize(len);
  if (len > 0) {
    switch (ReadExactDeadline(fd, payload->data(), len, io)) {
      case IoStatus::kOk:
        break;
      case IoStatus::kTimeout:
        return FrameReadStatus::kIoTimeout;
      case IoStatus::kEof:
      case IoStatus::kError:
        return FrameReadStatus::kTornFrame;
    }
  }
  if (TNMINE_FAILPOINT("wire/read_torn")) {
    // Injected torn read: the bytes arrived but the site reports the
    // peer died mid-frame, driving the server's torn-frame path.
    return FrameReadStatus::kTornFrame;
  }
  return FrameReadStatus::kFrame;
}

bool WriteFrameDeadline(int fd, std::string_view payload,
                        std::uint64_t io_timeout_ms, bool* timed_out) {
  if (timed_out != nullptr) *timed_out = false;
  if (payload.size() > kMaxFrameBytes) return false;
  if (TNMINE_FAILPOINT("wire/write_short")) {
    // Injected short write: the frame is reported failed without
    // touching the socket, as if the peer's window closed forever.
    return false;
  }
  const std::uint32_t len = static_cast<std::uint32_t>(payload.size());
  const char header[4] = {
      static_cast<char>((len >> 24) & 0xFF),
      static_cast<char>((len >> 16) & 0xFF),
      static_cast<char>((len >> 8) & 0xFF),
      static_cast<char>(len & 0xFF),
  };
  const Deadline io(io_timeout_ms);
  IoStatus status = WriteExactDeadline(fd, header, sizeof(header), io);
  if (status == IoStatus::kOk) {
    status = WriteExactDeadline(fd, payload.data(), payload.size(), io);
  }
  if (status == IoStatus::kTimeout && timed_out != nullptr) {
    *timed_out = true;
  }
  return status == IoStatus::kOk;
}

bool ReadFrame(int fd, std::string* payload) {
  return ReadFrameDeadline(fd, payload, 0, 0) == FrameReadStatus::kFrame;
}

bool WriteFrame(int fd, std::string_view payload) {
  return WriteFrameDeadline(fd, payload, 0, nullptr);
}

bool BlockingClient::Connect(const std::string& spec, std::string* error) {
  Close();
  spec_ = spec;
  ListenAddress addr;
  if (!ListenAddress::Parse(spec, &addr, error)) return false;
  fd_ = ConnectTo(addr, error);
  return fd_ >= 0;
}

bool BlockingClient::Connect(const std::string& spec,
                             const RetryPolicy& policy,
                             std::string* error) {
  const Deadline wall(policy.request_deadline_ms);
  std::string last_error;
  for (int attempt = 1; attempt <= std::max(1, policy.max_attempts);
       ++attempt) {
    if (attempt > 1) {
      TNMINE_COUNTER_ADD("client/retry_connect", 1);
      std::this_thread::sleep_for(
          std::chrono::milliseconds(BackoffMs(policy, attempt - 1)));
    }
    if (wall.expired()) {
      TNMINE_COUNTER_ADD("client/request_deadline_expired", 1);
      if (error != nullptr) {
        *error = "connect " + spec + ": request deadline expired after " +
                 std::to_string(policy.request_deadline_ms) +
                 " ms (last error: " +
                 (last_error.empty() ? "none" : last_error) + ")";
      }
      return false;
    }
    if (Connect(spec, &last_error)) return true;
  }
  TNMINE_COUNTER_ADD("client/retry_giveup", 1);
  if (error != nullptr) {
    *error = last_error + " (after " +
             std::to_string(std::max(1, policy.max_attempts)) +
             " attempts)";
  }
  return false;
}

void BlockingClient::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

bool BlockingClient::Send(const JsonValue& request, std::string* error) {
  if (fd_ < 0) {
    if (error != nullptr) *error = "send to " + spec_ + ": not connected";
    return false;
  }
  bool timed_out = false;
  if (!WriteFrameDeadline(fd_, request.Serialize(), io_timeout_ms_,
                          &timed_out)) {
    if (error != nullptr) {
      *error = "send to " + spec_ + ": " +
               (timed_out ? "I/O timeout after " +
                                std::to_string(io_timeout_ms_) + " ms"
                          : std::string(std::strerror(errno)));
    }
    return false;
  }
  return true;
}

bool BlockingClient::Receive(JsonValue* response, std::string* error) {
  if (fd_ < 0) {
    if (error != nullptr) *error = "recv from " + spec_ + ": not connected";
    return false;
  }
  std::string payload;
  switch (ReadFrameDeadline(fd_, &payload, io_timeout_ms_,
                            io_timeout_ms_)) {
    case FrameReadStatus::kFrame:
      break;
    case FrameReadStatus::kEof:
      if (error != nullptr) {
        *error = "recv from " + spec_ + ": connection closed by peer";
      }
      return false;
    case FrameReadStatus::kIdleTimeout:
    case FrameReadStatus::kIoTimeout:
      if (error != nullptr) {
        *error = "recv from " + spec_ + ": I/O timeout after " +
                 std::to_string(io_timeout_ms_) + " ms";
      }
      return false;
    case FrameReadStatus::kTornFrame:
      if (error != nullptr) {
        *error = "recv from " + spec_ + ": torn frame (" +
                 std::strerror(errno) + ")";
      }
      return false;
    case FrameReadStatus::kOversized:
      if (error != nullptr) {
        *error = "recv from " + spec_ + ": oversized frame";
      }
      return false;
  }
  return JsonValue::Parse(payload, response, error);
}

bool BlockingClient::Call(const JsonValue& request, JsonValue* response,
                          std::string* error) {
  return Send(request, error) && Receive(response, error);
}

bool BlockingClient::CallWithRetry(const JsonValue& request,
                                   const RetryPolicy& policy,
                                   bool idempotent, JsonValue* response,
                                   std::string* error) {
  const Deadline wall(policy.request_deadline_ms);
  std::string last_error;
  const int attempts =
      idempotent ? std::max(1, policy.max_attempts) : 1;
  for (int attempt = 1; attempt <= attempts; ++attempt) {
    if (attempt > 1) {
      TNMINE_COUNTER_ADD("client/retry_request", 1);
      std::this_thread::sleep_for(
          std::chrono::milliseconds(BackoffMs(policy, attempt - 1)));
      // The old connection is in an unknown framing state after a
      // transport failure — always reconnect before re-sending.
      if (!Connect(spec_, &last_error)) continue;
    }
    if (wall.expired()) {
      TNMINE_COUNTER_ADD("client/request_deadline_expired", 1);
      if (error != nullptr) {
        *error = "call " + spec_ + ": request deadline expired after " +
                 std::to_string(policy.request_deadline_ms) +
                 " ms (last error: " +
                 (last_error.empty() ? "none" : last_error) + ")";
      }
      return false;
    }
    if (Call(request, response, &last_error)) return true;
  }
  if (attempts > 1) TNMINE_COUNTER_ADD("client/retry_giveup", 1);
  if (error != nullptr) {
    *error = last_error +
             (attempts > 1
                  ? " (after " + std::to_string(attempts) + " attempts)"
                  : "");
  }
  return false;
}

}  // namespace tnmine::server
