#include "server/wire.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "common/parse.h"

namespace tnmine::server {

namespace {

bool ReadExact(int fd, char* buf, std::size_t n) {
  std::size_t done = 0;
  while (done < n) {
    const ssize_t got = ::recv(fd, buf + done, n - done, 0);
    if (got == 0) return false;  // orderly EOF
    if (got < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    done += static_cast<std::size_t>(got);
  }
  return true;
}

bool WriteExact(int fd, const char* buf, std::size_t n) {
  std::size_t done = 0;
  while (done < n) {
    const ssize_t put = ::send(fd, buf + done, n - done, MSG_NOSIGNAL);
    if (put < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    done += static_cast<std::size_t>(put);
  }
  return true;
}

int ConnectTo(const ListenAddress& addr, std::string* error) {
  if (addr.is_unix) {
    sockaddr_un sun{};
    sun.sun_family = AF_UNIX;
    if (addr.unix_path.size() >= sizeof(sun.sun_path)) {
      if (error != nullptr) *error = "unix socket path too long";
      return -1;
    }
    std::memcpy(sun.sun_path, addr.unix_path.c_str(),
                addr.unix_path.size() + 1);
    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0 ||
        ::connect(fd, reinterpret_cast<sockaddr*>(&sun), sizeof(sun)) != 0) {
      if (error != nullptr) {
        *error = "connect " + addr.unix_path + ": " + std::strerror(errno);
      }
      if (fd >= 0) ::close(fd);
      return -1;
    }
    return fd;
  }
  sockaddr_in sin{};
  sin.sin_family = AF_INET;
  sin.sin_port = htons(addr.port);
  if (::inet_pton(AF_INET, addr.host.c_str(), &sin.sin_addr) != 1) {
    if (error != nullptr) *error = "bad host " + addr.host;
    return -1;
  }
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0 ||
      ::connect(fd, reinterpret_cast<sockaddr*>(&sin), sizeof(sin)) != 0) {
    if (error != nullptr) {
      *error = "connect " + addr.ToString() + ": " + std::strerror(errno);
    }
    if (fd >= 0) ::close(fd);
    return -1;
  }
  return fd;
}

}  // namespace

bool ListenAddress::Parse(const std::string& spec, ListenAddress* out,
                          std::string* error) {
  *out = ListenAddress{};
  if (spec.rfind("unix:", 0) == 0) {
    out->is_unix = true;
    out->unix_path = spec.substr(5);
    if (out->unix_path.empty()) {
      if (error != nullptr) *error = "empty unix socket path";
      return false;
    }
    return true;
  }
  std::string rest = spec;
  if (rest.rfind("tcp:", 0) == 0) rest = rest.substr(4);
  std::string port_text = rest;
  const std::size_t colon = rest.rfind(':');
  if (colon != std::string::npos) {
    out->host = rest.substr(0, colon);
    port_text = rest.substr(colon + 1);
  }
  std::uint64_t port = 0;
  if (!tnmine::ParseUint64(port_text, &port) || port > 65535) {
    if (error != nullptr) *error = "bad port in '" + spec + "'";
    return false;
  }
  out->port = static_cast<std::uint16_t>(port);
  return true;
}

std::string ListenAddress::ToString() const {
  if (is_unix) return "unix:" + unix_path;
  return "tcp:" + host + ":" + std::to_string(port);
}

bool ReadFrame(int fd, std::string* payload) {
  char header[4];
  if (!ReadExact(fd, header, sizeof(header))) return false;
  const std::uint32_t len =
      (static_cast<std::uint32_t>(static_cast<unsigned char>(header[0]))
       << 24) |
      (static_cast<std::uint32_t>(static_cast<unsigned char>(header[1]))
       << 16) |
      (static_cast<std::uint32_t>(static_cast<unsigned char>(header[2]))
       << 8) |
      static_cast<std::uint32_t>(static_cast<unsigned char>(header[3]));
  if (len > kMaxFrameBytes) return false;
  payload->resize(len);
  return len == 0 || ReadExact(fd, payload->data(), len);
}

bool WriteFrame(int fd, std::string_view payload) {
  if (payload.size() > kMaxFrameBytes) return false;
  const std::uint32_t len = static_cast<std::uint32_t>(payload.size());
  const char header[4] = {
      static_cast<char>((len >> 24) & 0xFF),
      static_cast<char>((len >> 16) & 0xFF),
      static_cast<char>((len >> 8) & 0xFF),
      static_cast<char>(len & 0xFF),
  };
  return WriteExact(fd, header, sizeof(header)) &&
         WriteExact(fd, payload.data(), payload.size());
}

bool BlockingClient::Connect(const std::string& spec, std::string* error) {
  Close();
  ListenAddress addr;
  if (!ListenAddress::Parse(spec, &addr, error)) return false;
  fd_ = ConnectTo(addr, error);
  return fd_ >= 0;
}

void BlockingClient::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

bool BlockingClient::Send(const JsonValue& request) {
  return fd_ >= 0 && WriteFrame(fd_, request.Serialize());
}

bool BlockingClient::Receive(JsonValue* response, std::string* error) {
  std::string payload;
  if (fd_ < 0 || !ReadFrame(fd_, &payload)) {
    if (error != nullptr) *error = "connection closed";
    return false;
  }
  return JsonValue::Parse(payload, response, error);
}

bool BlockingClient::Call(const JsonValue& request, JsonValue* response,
                          std::string* error) {
  if (!Send(request)) {
    if (error != nullptr) *error = "send failed";
    return false;
  }
  return Receive(response, error);
}

}  // namespace tnmine::server
