#ifndef TNMINE_SERVER_WIRE_H_
#define TNMINE_SERVER_WIRE_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "server/json.h"

namespace tnmine::server {

/// Wire framing for tnmined (DESIGN.md §14): every message — request or
/// response — is one frame:
///
///   [4-byte big-endian payload length][payload bytes]
///
/// where the payload is a single UTF-8 JSON document. Frames larger than
/// kMaxFrameBytes are rejected (a malformed or hostile peer must not make
/// the server allocate unbounded memory).
inline constexpr std::uint32_t kMaxFrameBytes = 64u << 20;

/// Listen-address spec, parsed from strings like
///   "unix:/tmp/tnmined.sock"   unix domain socket at that path
///   "tcp:127.0.0.1:7077"       TCP on that host:port
///   "tcp:0"                    TCP on 127.0.0.1, ephemeral port
struct ListenAddress {
  bool is_unix = false;
  std::string unix_path;
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;

  static bool Parse(const std::string& spec, ListenAddress* out,
                    std::string* error);
  std::string ToString() const;
};

/// Reads exactly one frame from `fd` into `payload`. Returns false on
/// EOF, I/O error, or an oversized/short frame (peer gone or misbehaving
/// — the connection should be dropped either way).
bool ReadFrame(int fd, std::string* payload);

/// Writes one frame. Uses MSG_NOSIGNAL so a disconnected peer yields an
/// error return instead of SIGPIPE. Returns false on any short write.
bool WriteFrame(int fd, std::string_view payload);

/// Minimal blocking client over the framing above, used by the
/// `tnmine_cli client` subcommand, the end-to-end tests, and
/// bench_server_throughput.
class BlockingClient {
 public:
  BlockingClient() = default;
  ~BlockingClient() { Close(); }
  BlockingClient(const BlockingClient&) = delete;
  BlockingClient& operator=(const BlockingClient&) = delete;

  /// Connects to `spec` (same syntax as ListenAddress). Returns false
  /// and sets `error` on failure.
  bool Connect(const std::string& spec, std::string* error);
  bool connected() const { return fd_ >= 0; }
  void Close();

  /// One request/response round trip. Returns false on transport failure
  /// or a response that does not parse as JSON.
  bool Call(const JsonValue& request, JsonValue* response,
            std::string* error);

  /// Sends a request frame without waiting for the response — the
  /// disconnect-mid-flight path: send, then Close() while the server is
  /// still mining.
  bool Send(const JsonValue& request);
  /// Receives one response frame (after Send).
  bool Receive(JsonValue* response, std::string* error);

 private:
  int fd_ = -1;
};

}  // namespace tnmine::server

#endif  // TNMINE_SERVER_WIRE_H_
