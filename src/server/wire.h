#ifndef TNMINE_SERVER_WIRE_H_
#define TNMINE_SERVER_WIRE_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "server/json.h"

namespace tnmine::server {

/// Wire framing for tnmined (DESIGN.md §14–15): every message — request
/// or response — is one frame:
///
///   [4-byte big-endian payload length][payload bytes]
///
/// where the payload is a single UTF-8 JSON document. Frames larger than
/// kMaxFrameBytes are rejected (a malformed or hostile peer must not make
/// the server allocate unbounded memory).
inline constexpr std::uint32_t kMaxFrameBytes = 64u << 20;

/// Listen-address spec, parsed from strings like
///   "unix:/tmp/tnmined.sock"   unix domain socket at that path
///   "tcp:127.0.0.1:7077"       TCP on that host:port
///   "tcp:0"                    TCP on 127.0.0.1, ephemeral port
struct ListenAddress {
  bool is_unix = false;
  std::string unix_path;
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;

  static bool Parse(const std::string& spec, ListenAddress* out,
                    std::string* error);
  std::string ToString() const;
};

/// How one deadline-governed frame read ended. Every terminal state is
/// distinct so the server can keep honest per-failure counters
/// (DESIGN.md §15 failure taxonomy) instead of folding every problem
/// into "peer gone".
enum class FrameReadStatus : std::uint8_t {
  kFrame = 0,     ///< one complete frame is in `payload`
  kEof,           ///< orderly close before any byte of a frame
  kIdleTimeout,   ///< no frame started within the idle allotment
  kIoTimeout,     ///< frame started but stalled past the I/O budget
  kTornFrame,     ///< EOF or I/O error mid-frame (peer died or lied)
  kOversized,     ///< length prefix exceeds kMaxFrameBytes (or garbage)
};

/// Reads exactly one frame from `fd` into `payload` under two monotonic
/// deadlines: the *first* byte of the header may take up to
/// `idle_timeout_ms` to arrive (0 = wait forever), and once a frame has
/// started, the *whole remainder* must arrive within `io_timeout_ms`
/// (0 = no budget). The I/O budget is a total for the frame, not
/// per-byte — a slow-loris peer trickling one byte per poll interval is
/// dropped when the budget runs out, not never. Works on blocking and
/// O_NONBLOCK sockets alike (poll-then-read).
FrameReadStatus ReadFrameDeadline(int fd, std::string* payload,
                                  std::uint64_t idle_timeout_ms,
                                  std::uint64_t io_timeout_ms);

/// Writes one frame under a monotonic `io_timeout_ms` budget (0 = no
/// budget). Uses MSG_NOSIGNAL so a disconnected peer yields an error
/// return instead of SIGPIPE. Returns false on any short write; when
/// `timed_out` is non-null it reports whether the failure was the
/// deadline (as opposed to the peer vanishing).
bool WriteFrameDeadline(int fd, std::string_view payload,
                        std::uint64_t io_timeout_ms,
                        bool* timed_out = nullptr);

/// Deadline-free compatibility wrappers (tests, benches, the client's
/// default mode). ReadFrame returns false on EOF, I/O error, or an
/// oversized/short frame.
bool ReadFrame(int fd, std::string* payload);
bool WriteFrame(int fd, std::string_view payload);

/// Retry policy for BlockingClient (DESIGN.md §15): exponential backoff
/// with deterministic jitter, capped attempts, and an optional
/// per-request wall deadline spanning every attempt. Retries are only
/// safe for idempotent requests; all current tnmined ops are reads, and
/// the caller states idempotency explicitly per call.
struct RetryPolicy {
  /// Total attempts (1 = no retry).
  int max_attempts = 1;
  /// First backoff; doubles each retry up to max_backoff_ms.
  std::uint64_t initial_backoff_ms = 50;
  std::uint64_t max_backoff_ms = 2000;
  /// Seeds the jitter stream (SplitMix64 over seed ^ attempt), so a
  /// given (seed, attempt) pair always sleeps the same amount — retry
  /// schedules are replayable in tests.
  std::uint64_t jitter_seed = 1;
  /// Wall ceiling across all attempts and backoffs; 0 = unlimited.
  std::uint64_t request_deadline_ms = 0;
};

/// Minimal blocking client over the framing above, used by the
/// `tnmine_cli client` subcommand, the end-to-end tests,
/// bench_server_throughput, and the wire_chaos harness. Error strings
/// always carry the target address spec and strerror(errno) — a failed
/// smoke test must name the socket and the syscall error, not say
/// "send failed".
class BlockingClient {
 public:
  BlockingClient() = default;
  ~BlockingClient() { Close(); }
  BlockingClient(const BlockingClient&) = delete;
  BlockingClient& operator=(const BlockingClient&) = delete;

  /// Connects to `spec` (same syntax as ListenAddress). Returns false
  /// and sets `error` on failure.
  bool Connect(const std::string& spec, std::string* error);

  /// Connect with retry: on failure sleeps policy-backoff and tries
  /// again, up to policy.max_attempts total attempts or the request
  /// deadline. Connecting is always idempotent. Each retry increments
  /// the `client/retry_connect` counter; giving up increments
  /// `client/retry_giveup`.
  bool Connect(const std::string& spec, const RetryPolicy& policy,
               std::string* error);

  bool connected() const { return fd_ >= 0; }
  void Close();

  /// Per-frame I/O deadline for Send/Receive/Call (0 = blocking
  /// forever, the historical behavior).
  void set_io_timeout_ms(std::uint64_t ms) { io_timeout_ms_ = ms; }

  /// One request/response round trip. Returns false on transport failure
  /// or a response that does not parse as JSON.
  bool Call(const JsonValue& request, JsonValue* response,
            std::string* error);

  /// Call with retry: on transport failure, reconnects to the spec of
  /// the last Connect and re-sends, with policy backoff, but ONLY when
  /// the caller declares the request idempotent — a non-idempotent
  /// request (none exist today; guard for future mutating ops) fails on
  /// the first transport error exactly like Call. Counters:
  /// `client/retry_request` per retry, `client/retry_giveup` on
  /// exhaustion, `client/request_deadline_expired` when the wall
  /// deadline cuts the attempt loop short.
  bool CallWithRetry(const JsonValue& request, const RetryPolicy& policy,
                     bool idempotent, JsonValue* response,
                     std::string* error);

  /// Sends a request frame without waiting for the response — the
  /// disconnect-mid-flight path: send, then Close() while the server is
  /// still mining. Sets `error` (when non-null) on failure.
  bool Send(const JsonValue& request, std::string* error = nullptr);
  /// Receives one response frame (after Send).
  bool Receive(JsonValue* response, std::string* error);

 private:
  int fd_ = -1;
  std::uint64_t io_timeout_ms_ = 0;
  std::string spec_;  ///< last Connect target, for error messages
};

}  // namespace tnmine::server

#endif  // TNMINE_SERVER_WIRE_H_
