#ifndef TNMINE_SERVER_SERVER_H_
#define TNMINE_SERVER_SERVER_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/budget.h"
#include "common/thread_pool.h"
#include "data/dataset.h"
#include "data/od_graph.h"
#include "graph/graph_view.h"
#include "server/json.h"
#include "server/result_cache.h"
#include "server/wire.h"

namespace tnmine::server {

/// One immutable graph snapshot: the dataset plus the three paper OD
/// labelings and a flat GraphView, built once at load time and shared by
/// reference. In-flight requests hold their shared_ptr across a reload
/// (MVCC-lite): the old snapshot stays alive until its last request
/// finishes, new requests see the new version.
struct Snapshot {
  std::uint64_t version = 0;
  /// FNV-1a 64 over the source file bytes, hex — the content half of
  /// every cache key.
  std::string fingerprint;
  std::string path;
  data::TransactionDataset dataset;
  data::OdGraph od_weight;
  data::OdGraph od_hours;
  data::OdGraph od_distance;
  std::shared_ptr<const graph::GraphView> view;  ///< of od_weight.graph
};

/// One registered out-of-core shard directory (DESIGN.md §16): validated
/// at load_shards time, identified by the combined shard fingerprint.
/// Only the metadata is kept resident — every mine_shards request opens
/// its own ShardedTransactionSource against its own memory budget, and
/// the fingerprint is re-checked then so a directory silently rewritten
/// after load_shards is rejected rather than mined. Same MVCC-lite
/// versioning as Snapshot.
struct ShardSet {
  std::uint64_t version = 0;
  /// Combined FNV-1a over the per-shard fingerprints, hex — the content
  /// half of every mine_shards cache key.
  std::string fingerprint;
  std::string dir;
  std::size_t num_transactions = 0;
  std::size_t num_shards = 0;
};

struct ServerOptions {
  /// ListenAddress spec ("unix:/path" or "tcp:host:port"; port 0 binds
  /// an ephemeral port — read the resolved one from address()).
  std::string listen = "tcp:127.0.0.1:0";
  /// Optional CSV to load as snapshot v1 during Start().
  std::string snapshot_path;
  /// Result-cache capacity; 0 disables caching.
  std::uint64_t cache_bytes = 64ull << 20;
  /// Admission control: mining requests in flight beyond this are
  /// rejected with code "overloaded" instead of queueing unboundedly.
  std::size_t max_inflight = 4;
  /// Per-connection frame I/O budget (DESIGN.md §15): once a frame has
  /// started, the whole remainder (and every response write) must
  /// complete within this monotonic budget or the connection is
  /// dropped. A slow-loris peer trickling bytes is bounded by this, not
  /// by per-byte progress. 0 = no deadline (test/debug only).
  std::uint64_t io_timeout_ms = 10000;
  /// Idle-connection reaper: a connection that has not *started* a
  /// frame for this long is closed and counted in conn_idle_reaped.
  /// 0 = idle connections live forever.
  std::uint64_t idle_timeout_ms = 0;
  /// listen(2) backlog — pending-connect queue bound, surfaced in
  /// stats so capacity tests can see the configured edge.
  int accept_backlog = 64;
  /// Ceilings applied to every mining request on dimensions the request
  /// itself leaves unlimited (0 = no server-side ceiling either).
  common::BudgetLimits default_limits;
  /// Default mining parallelism when a request omits "threads".
  common::Parallelism parallelism;
};

/// The tnmined server: accepts connections on one socket, speaks
/// length-prefixed JSON (see wire.h), serves mining requests from the
/// current Snapshot on the shared ThreadPool, caches complete results,
/// and cancels a request's mining when its client disconnects
/// mid-flight. DESIGN.md §14 documents the protocol.
class Server {
 public:
  explicit Server(ServerOptions options);
  ~Server();
  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Binds, listens, loads the initial snapshot (when configured), and
  /// starts the accept/watchdog threads. Returns false + `error` on any
  /// failure; the server is then inert.
  bool Start(std::string* error);

  /// Graceful stop: closes the listen socket, cancels in-flight mining,
  /// unblocks and joins every connection. Idempotent.
  void Stop();

  /// Blocks until a `shutdown` request (or Stop()) arrives. tnmined's
  /// main sits here.
  void WaitForShutdown();

  /// Async-signal-safe shutdown request (one relaxed atomic store);
  /// WaitForShutdown observes it on its next poll. For SIGINT/SIGTERM
  /// handlers — everything else should use Stop().
  void RequestShutdownFromSignal() {
    signal_shutdown_.store(true, std::memory_order_relaxed);
  }

  /// Resolved listen address (ephemeral TCP port filled in).
  std::string address() const;

  /// Loads `path` as the new snapshot and invalidates the result cache.
  /// Safe while serving; in-flight requests keep the old snapshot.
  bool LoadSnapshot(const std::string& path, std::string* error);

  /// Validates `dir` as a shard directory (headers + structure) and
  /// registers it as the current ShardSet for mine_shards. Safe while
  /// serving; in-flight shard requests keep the old set's metadata.
  bool LoadShards(const std::string& dir, std::string* error);

  std::shared_ptr<const Snapshot> snapshot() const;
  std::shared_ptr<const ShardSet> shard_set() const;
  const ResultCache& cache() const { return cache_; }

  std::uint64_t requests_total() const { return requests_total_; }
  std::uint64_t inflight() const { return inflight_; }
  std::uint64_t requests_cancelled() const { return requests_cancelled_; }
  std::uint64_t admission_rejected() const { return admission_rejected_; }

  /// Connection-lifecycle counters (DESIGN.md §15 failure taxonomy).
  /// conn_open is a gauge: accepted minus closed, and a chaos run must
  /// always drain it back to zero — a stuck slot is a leak.
  std::uint64_t conn_open() const { return conn_open_; }
  std::uint64_t conn_accepted() const { return conn_accepted_; }
  std::uint64_t conn_idle_reaped() const { return conn_idle_reaped_; }
  std::uint64_t conn_io_timeout() const { return conn_io_timeout_; }
  std::uint64_t conn_bad_frame() const { return conn_bad_frame_; }
  std::uint64_t conn_torn() const { return conn_torn_; }
  std::uint64_t accept_failures() const { return accept_failures_; }

 private:
  struct WatchedRequest {
    int fd;
    std::shared_ptr<common::CancelToken> token;
  };

  /// One accepted connection: its socket plus the thread serving it,
  /// keyed by a monotonically increasing id (NOT the fd — fds are
  /// reused by the kernel the moment they close).
  struct Connection {
    int fd = -1;
    std::thread thread;
  };

  void AcceptLoop();
  void WatchLoop();
  void HandleConnection(std::uint64_t conn_id, int fd);

  /// Joins and forgets connections whose threads have finished — called
  /// from the accept loop so a connect flood cannot accumulate
  /// thread handles without bound.
  void ReapFinishedConnections();

  /// Dispatches one parsed request; returns the response document.
  JsonValue HandleRequest(const JsonValue& request, int fd);

  JsonValue HandleStats();
  JsonValue HandleLoadSnapshot(const JsonValue& request);
  JsonValue HandleLoadShards(const JsonValue& request);
  JsonValue HandleMining(const std::string& op, const JsonValue& request,
                         int fd);

  /// Runs the miner for `op` on `snap` and returns the serialized result
  /// payload (canonical JSON) plus the outcome label via out-params.
  std::string MineResult(const std::string& op, const JsonValue& params,
                         const Snapshot& snap,
                         const common::ResourceBudget& budget,
                         std::string* outcome_label);

  /// Runs FSG/gSpan over the ShardSet's directory through a fresh
  /// ShardedTransactionSource bounded by `budget`; throws
  /// std::runtime_error when the directory no longer matches the
  /// fingerprint captured at load_shards.
  std::string MineShardsResult(const JsonValue& params,
                               const ShardSet& shards,
                               const common::ResourceBudget& budget,
                               std::string* outcome_label);

  void RegisterWatch(int fd,
                     const std::shared_ptr<common::CancelToken>& token);
  void UnregisterWatch(int fd);

  bool TryAdmit();
  void Release();

  static JsonValue ErrorResponse(const std::string& op,
                                 const std::string& code,
                                 const std::string& message);

  ServerOptions options_;
  ListenAddress bound_address_;
  int listen_fd_ = -1;
  std::atomic<bool> stop_{false};
  bool started_ = false;

  std::thread accept_thread_;
  std::thread watch_thread_;
  std::mutex conn_mu_;
  std::map<std::uint64_t, Connection> conns_;  // guarded by conn_mu_
  std::vector<std::uint64_t> done_conns_;      // guarded by conn_mu_
  std::uint64_t next_conn_id_ = 1;             // guarded by conn_mu_

  mutable std::mutex snapshot_mu_;
  std::shared_ptr<const Snapshot> snapshot_;  // guarded by snapshot_mu_
  std::uint64_t next_snapshot_version_ = 1;   // guarded by snapshot_mu_
  std::shared_ptr<const ShardSet> shard_set_;  // guarded by snapshot_mu_
  std::uint64_t next_shard_version_ = 1;       // guarded by snapshot_mu_

  std::mutex watch_mu_;
  std::vector<WatchedRequest> watched_;  // guarded by watch_mu_

  std::mutex shutdown_mu_;
  std::condition_variable shutdown_cv_;
  bool shutdown_requested_ = false;  // guarded by shutdown_mu_
  std::atomic<bool> signal_shutdown_{false};

  ResultCache cache_;
  std::atomic<std::size_t> inflight_{0};
  std::atomic<std::uint64_t> requests_total_{0};
  std::atomic<std::uint64_t> requests_ok_{0};
  std::atomic<std::uint64_t> requests_error_{0};
  std::atomic<std::uint64_t> requests_cancelled_{0};
  std::atomic<std::uint64_t> admission_rejected_{0};
  std::atomic<std::uint64_t> snapshots_loaded_{0};
  std::atomic<std::uint64_t> shard_sets_loaded_{0};
  std::atomic<std::uint64_t> conn_open_{0};
  std::atomic<std::uint64_t> conn_accepted_{0};
  std::atomic<std::uint64_t> conn_closed_{0};
  std::atomic<std::uint64_t> conn_idle_reaped_{0};
  std::atomic<std::uint64_t> conn_io_timeout_{0};
  std::atomic<std::uint64_t> conn_bad_frame_{0};
  std::atomic<std::uint64_t> conn_torn_{0};
  std::atomic<std::uint64_t> accept_failures_{0};
  std::chrono::steady_clock::time_point start_time_;
};

}  // namespace tnmine::server

#endif  // TNMINE_SERVER_SERVER_H_
