#ifndef TNMINE_SERVER_JSON_H_
#define TNMINE_SERVER_JSON_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

namespace tnmine::server {

/// Minimal JSON document model for the tnmined wire protocol — no
/// external dependency, and deliberately *canonical* on output: object
/// members are held in a std::map, so serializing any Value yields the
/// unique byte sequence with sorted keys and no insignificant
/// whitespace. The result cache stores serialized payloads keyed by
/// serialized params, and this canonical form is what makes "identical
/// params" and "byte-identical response" well-defined (DESIGN.md §14).
///
/// Numbers are kept as int64 when the literal is integral (no '.', 'e',
/// or overflow), double otherwise; integral values round-trip exactly.
class JsonValue {
 public:
  enum class Kind { kNull, kBool, kInt, kDouble, kString, kArray, kObject };

  using Array = std::vector<JsonValue>;
  using Object = std::map<std::string, JsonValue>;

  JsonValue() = default;  // null
  JsonValue(bool b) : kind_(Kind::kBool), bool_(b) {}
  JsonValue(std::int64_t i) : kind_(Kind::kInt), int_(i) {}
  JsonValue(int i) : JsonValue(static_cast<std::int64_t>(i)) {}
  JsonValue(std::uint64_t u)
      : kind_(Kind::kInt), int_(static_cast<std::int64_t>(u)) {}
  JsonValue(double d) : kind_(Kind::kDouble), double_(d) {}
  JsonValue(std::string s) : kind_(Kind::kString), string_(std::move(s)) {}
  JsonValue(const char* s) : JsonValue(std::string(s)) {}
  JsonValue(Array a) : kind_(Kind::kArray), array_(std::move(a)) {}
  JsonValue(Object o) : kind_(Kind::kObject), object_(std::move(o)) {}

  static JsonValue MakeObject() { return JsonValue(Object{}); }
  static JsonValue MakeArray() { return JsonValue(Array{}); }

  Kind kind() const { return kind_; }
  bool is_null() const { return kind_ == Kind::kNull; }
  bool is_object() const { return kind_ == Kind::kObject; }
  bool is_array() const { return kind_ == Kind::kArray; }
  bool is_string() const { return kind_ == Kind::kString; }
  bool is_number() const {
    return kind_ == Kind::kInt || kind_ == Kind::kDouble;
  }
  bool is_bool() const { return kind_ == Kind::kBool; }

  bool AsBool(bool fallback = false) const {
    return kind_ == Kind::kBool ? bool_ : fallback;
  }
  std::int64_t AsInt(std::int64_t fallback = 0) const {
    if (kind_ == Kind::kInt) return int_;
    if (kind_ == Kind::kDouble) return static_cast<std::int64_t>(double_);
    return fallback;
  }
  double AsDouble(double fallback = 0.0) const {
    if (kind_ == Kind::kDouble) return double_;
    if (kind_ == Kind::kInt) return static_cast<double>(int_);
    return fallback;
  }
  const std::string& AsString() const { return string_; }
  std::string AsString(const std::string& fallback) const {
    return kind_ == Kind::kString ? string_ : fallback;
  }

  const Array& array() const { return array_; }
  Array& array() { return array_; }
  const Object& object() const { return object_; }
  Object& object() { return object_; }

  /// Object member access; `Get` returns null for absent keys or when
  /// this value is not an object.
  const JsonValue& Get(std::string_view key) const;
  bool Has(std::string_view key) const;
  /// Sets a member (this value must be an object).
  void Set(std::string key, JsonValue v);

  /// Canonical compact serialization: sorted object keys, no whitespace,
  /// "\uXXXX" escapes for control characters. Doubles use %.17g (exact
  /// round-trip); NaN/Inf serialize as null (JSON has no spelling for
  /// them).
  std::string Serialize() const;
  void SerializeTo(std::string* out) const;

  /// Strict recursive-descent parse of one JSON document (trailing
  /// whitespace allowed, trailing garbage is an error; nesting capped at
  /// 64). Returns false and sets `error` on malformed input.
  static bool Parse(std::string_view text, JsonValue* out,
                    std::string* error);

 private:
  Kind kind_ = Kind::kNull;
  bool bool_ = false;
  std::int64_t int_ = 0;
  double double_ = 0.0;
  std::string string_;
  Array array_;
  Object object_;
};

}  // namespace tnmine::server

#endif  // TNMINE_SERVER_JSON_H_
