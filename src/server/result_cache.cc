#include "server/result_cache.h"

#include "common/telemetry.h"

namespace tnmine::server {

bool ResultCache::Lookup(const std::string& key, std::string* payload) {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = index_.find(key);
  if (it == index_.end() || capacity_bytes_ == 0) {
    ++misses_;
    TNMINE_COUNTER_ADD("server/cache_misses", 1);
    return false;
  }
  lru_.splice(lru_.begin(), lru_, it->second);
  *payload = it->second->payload;
  ++hits_;
  TNMINE_COUNTER_ADD("server/cache_hits", 1);
  return true;
}

void ResultCache::Insert(const std::string& key,
                         const std::string& payload) {
  std::lock_guard<std::mutex> lock(mu_);
  if (capacity_bytes_ == 0) return;
  const auto it = index_.find(key);
  if (it != index_.end()) {
    bytes_ -= EntryBytes(*it->second);
    it->second->payload = payload;
    bytes_ += EntryBytes(*it->second);
    lru_.splice(lru_.begin(), lru_, it->second);
  } else {
    lru_.push_front(Entry{key, payload});
    if (EntryBytes(lru_.front()) > capacity_bytes_) {
      // Larger than the whole cache: not admissible.
      lru_.pop_front();
      return;
    }
    bytes_ += EntryBytes(lru_.front());
    index_[key] = lru_.begin();
  }
  while (bytes_ > capacity_bytes_ && !lru_.empty()) {
    const Entry& victim = lru_.back();
    bytes_ -= EntryBytes(victim);
    index_.erase(victim.key);
    lru_.pop_back();
    ++evictions_;
    TNMINE_COUNTER_ADD("server/cache_evictions", 1);
  }
  TNMINE_GAUGE_SET("server/cache_bytes", bytes_);
}

void ResultCache::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  lru_.clear();
  index_.clear();
  bytes_ = 0;
  ++invalidations_;
  TNMINE_COUNTER_ADD("server/cache_invalidations", 1);
  TNMINE_GAUGE_SET("server/cache_bytes", 0);
}

std::uint64_t ResultCache::MemoryBytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return bytes_;
}

std::size_t ResultCache::entries() const {
  std::lock_guard<std::mutex> lock(mu_);
  return lru_.size();
}

std::uint64_t ResultCache::hits() const {
  std::lock_guard<std::mutex> lock(mu_);
  return hits_;
}

std::uint64_t ResultCache::misses() const {
  std::lock_guard<std::mutex> lock(mu_);
  return misses_;
}

std::uint64_t ResultCache::evictions() const {
  std::lock_guard<std::mutex> lock(mu_);
  return evictions_;
}

std::uint64_t ResultCache::invalidations() const {
  std::lock_guard<std::mutex> lock(mu_);
  return invalidations_;
}

}  // namespace tnmine::server
