#include "server/server.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <exception>
#include <fstream>
#include <span>
#include <utility>

#include "common/failpoint.h"
#include "common/telemetry.h"
#include "core/interestingness.h"
#include "core/miner.h"
#include "fsg/fsg.h"
#include "graph/transaction_source.h"
#include "gspan/gspan.h"
#include "pattern/render.h"

namespace tnmine::server {

namespace {

/// FNV-1a 64 over a file's bytes, rendered as 16 hex digits. Returns
/// false when the file cannot be read.
bool FingerprintFile(const std::string& path, std::string* out) {
  std::ifstream in(path, std::ios::binary);
  if (!in.is_open()) return false;
  std::uint64_t h = 1469598103934665603ull;
  char buf[1 << 16];
  while (in.read(buf, sizeof(buf)) || in.gcount() > 0) {
    const std::streamsize n = in.gcount();
    for (std::streamsize i = 0; i < n; ++i) {
      h ^= static_cast<unsigned char>(buf[i]);
      h *= 1099511628211ull;
    }
    if (in.eof()) break;
  }
  char hex[17];
  std::snprintf(hex, sizeof(hex), "%016llx",
                static_cast<unsigned long long>(h));
  *out = hex;
  return true;
}

/// A 64-bit fingerprint as the 16-hex-digit string used in cache keys
/// and wire responses.
std::string HexFingerprint(std::uint64_t fingerprint) {
  char hex[17];
  std::snprintf(hex, sizeof(hex), "%016llx",
                static_cast<unsigned long long>(fingerprint));
  return hex;
}

/// Declares one knob of a mining-params schema: every request param is
/// resolved against these (defaults filled in), so two requests that
/// spell the same effective configuration differently still map to the
/// same canonical params object — and therefore the same cache key.
struct ParamSpec {
  const char* name;
  std::int64_t default_int;
  const char* default_string;  // nullptr = integer knob
  double default_double;
  bool is_double;
};

constexpr ParamSpec kStructuralParams[] = {
    {"attribute", 0, "weight", 0, false},
    {"strategy", 0, "bf", 0, false},
    {"miner", 0, "fsg", 0, false},
    {"k", 40, nullptr, 0, false},
    {"support", 10, nullptr, 0, false},
    {"max_edges", 3, nullptr, 0, false},
    {"reps", 1, nullptr, 0, false},
    {"seed", 1, nullptr, 0, false},
    {"threads", 0, nullptr, 0, false},
    {"top", 5, nullptr, 0, false},
    {"deadline_ms", 0, nullptr, 0, false},
    {"max_work_ticks", 0, nullptr, 0, false},
    {"max_memory_mb", 0, nullptr, 0, false},
};

constexpr ParamSpec kShardMiningParams[] = {
    {"miner", 0, "fsg", 0, false},
    {"support", 2, nullptr, 0, false},
    {"max_edges", 3, nullptr, 0, false},
    {"threads", 0, nullptr, 0, false},
    {"top", 5, nullptr, 0, false},
    {"max_resident_shards", 2, nullptr, 0, false},
    {"deadline_ms", 0, nullptr, 0, false},
    {"max_work_ticks", 0, nullptr, 0, false},
    {"max_memory_mb", 0, nullptr, 0, false},
};

constexpr ParamSpec kTemporalParams[] = {
    {"support_fraction", 0, nullptr, 0.05, true},
    {"max_edges", 3, nullptr, 0, false},
    {"max_labels", 0, nullptr, 0, false},
    {"threads", 0, nullptr, 0, false},
    {"top", 5, nullptr, 0, false},
    {"deadline_ms", 0, nullptr, 0, false},
    {"max_work_ticks", 0, nullptr, 0, false},
    {"max_memory_mb", 0, nullptr, 0, false},
};

/// Resolves request params against a schema into the canonical params
/// object. Unknown keys and wrong types are errors (a typoed knob must
/// not silently become a distinct cache key for the default config).
bool CanonicalizeParams(const JsonValue& given,
                        std::span<const ParamSpec> schema,
                        JsonValue* canonical, std::string* error) {
  *canonical = JsonValue::MakeObject();
  if (!given.is_null() && !given.is_object()) {
    *error = "params must be an object";
    return false;
  }
  for (const ParamSpec& spec : schema) {
    const JsonValue& v = given.Get(spec.name);
    if (spec.default_string != nullptr) {
      if (!v.is_null() && !v.is_string()) {
        *error = std::string("param '") + spec.name + "' must be a string";
        return false;
      }
      canonical->Set(spec.name, v.AsString(spec.default_string));
    } else if (spec.is_double) {
      if (!v.is_null() && !v.is_number()) {
        *error = std::string("param '") + spec.name + "' must be a number";
        return false;
      }
      canonical->Set(spec.name,
                     v.is_null() ? spec.default_double : v.AsDouble());
    } else {
      if (!v.is_null() && v.kind() != JsonValue::Kind::kInt) {
        *error =
            std::string("param '") + spec.name + "' must be an integer";
        return false;
      }
      canonical->Set(spec.name,
                     v.is_null() ? spec.default_int : v.AsInt());
    }
  }
  if (given.is_object()) {
    for (const auto& [key, unused] : given.object()) {
      bool known = false;
      for (const ParamSpec& spec : schema) {
        if (key == spec.name) {
          known = true;
          break;
        }
      }
      if (!known) {
        *error = "unknown param '" + key + "'";
        return false;
      }
    }
  }
  return true;
}

/// Budget for one request: request knobs first, the server's default
/// ceilings on any dimension the request leaves unlimited.
common::ResourceBudget BudgetFor(
    const JsonValue& params, const common::BudgetLimits& defaults,
    const std::shared_ptr<common::CancelToken>& token) {
  common::BudgetLimits limits;
  limits.deadline_ms =
      static_cast<std::uint64_t>(params.Get("deadline_ms").AsInt());
  limits.max_work_ticks =
      static_cast<std::uint64_t>(params.Get("max_work_ticks").AsInt());
  limits.max_memory_bytes =
      static_cast<std::uint64_t>(params.Get("max_memory_mb").AsInt())
      << 20;
  if (limits.deadline_ms == 0) limits.deadline_ms = defaults.deadline_ms;
  if (limits.max_work_ticks == 0) {
    limits.max_work_ticks = defaults.max_work_ticks;
  }
  if (limits.max_memory_bytes == 0) {
    limits.max_memory_bytes = defaults.max_memory_bytes;
  }
  return common::ResourceBudget(limits, token);
}

JsonValue RenderPatterns(
    const std::vector<const pattern::FrequentPattern*>& ranked,
    std::size_t top, const Discretizer* bins) {
  JsonValue patterns = JsonValue::MakeArray();
  for (std::size_t i = 0; i < ranked.size() && i < top; ++i) {
    JsonValue p = JsonValue::MakeObject();
    p.Set("support", ranked[i]->support);
    p.Set("vertices", ranked[i]->graph.num_vertices());
    p.Set("edges", ranked[i]->graph.num_edges());
    p.Set("render", pattern::RenderPattern(*ranked[i], bins));
    patterns.array().push_back(std::move(p));
  }
  return patterns;
}

}  // namespace

Server::Server(ServerOptions options)
    : options_(std::move(options)), cache_(options_.cache_bytes) {}

Server::~Server() { Stop(); }

bool Server::Start(std::string* error) {
  if (!ListenAddress::Parse(options_.listen, &bound_address_, error)) {
    return false;
  }
  if (!options_.snapshot_path.empty() &&
      !LoadSnapshot(options_.snapshot_path, error)) {
    return false;
  }
  if (bound_address_.is_unix) {
    sockaddr_un sun{};
    sun.sun_family = AF_UNIX;
    if (bound_address_.unix_path.size() >= sizeof(sun.sun_path)) {
      if (error != nullptr) *error = "unix socket path too long";
      return false;
    }
    std::memcpy(sun.sun_path, bound_address_.unix_path.c_str(),
                bound_address_.unix_path.size() + 1);
    ::unlink(bound_address_.unix_path.c_str());
    listen_fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (listen_fd_ < 0 ||
        ::bind(listen_fd_, reinterpret_cast<sockaddr*>(&sun),
               sizeof(sun)) != 0) {
      if (error != nullptr) {
        *error = "bind " + bound_address_.unix_path + ": " +
                 std::strerror(errno);
      }
      return false;
    }
  } else {
    sockaddr_in sin{};
    sin.sin_family = AF_INET;
    sin.sin_port = htons(bound_address_.port);
    if (::inet_pton(AF_INET, bound_address_.host.c_str(),
                    &sin.sin_addr) != 1) {
      if (error != nullptr) *error = "bad host " + bound_address_.host;
      return false;
    }
    listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (listen_fd_ < 0) {
      if (error != nullptr) *error = "socket: ";
      return false;
    }
    const int one = 1;
    ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&sin),
               sizeof(sin)) != 0) {
      if (error != nullptr) {
        *error = "bind " + bound_address_.ToString() + ": " +
                 std::strerror(errno);
      }
      return false;
    }
    socklen_t len = sizeof(sin);
    if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&sin),
                      &len) == 0) {
      bound_address_.port = ntohs(sin.sin_port);
    }
  }
  if (::listen(listen_fd_, options_.accept_backlog) != 0) {
    if (error != nullptr) {
      *error = std::string("listen: ") + std::strerror(errno);
    }
    return false;
  }
  start_time_ = std::chrono::steady_clock::now();
  started_ = true;
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  watch_thread_ = std::thread([this] { WatchLoop(); });
  return true;
}

void Server::Stop() {
  if (!started_ || stop_.exchange(true)) {
    stop_.store(true);
    return;
  }
  // Unblock accept() and every connection's blocking read.
  ::shutdown(listen_fd_, SHUT_RDWR);
  {
    std::lock_guard<std::mutex> lock(watch_mu_);
    for (const WatchedRequest& w : watched_) w.token->RequestCancel();
  }
  {
    std::lock_guard<std::mutex> lock(conn_mu_);
    for (auto& [id, conn] : conns_) ::shutdown(conn.fd, SHUT_RDWR);
  }
  if (accept_thread_.joinable()) accept_thread_.join();
  if (watch_thread_.joinable()) watch_thread_.join();
  std::vector<std::thread> conns;
  {
    std::lock_guard<std::mutex> lock(conn_mu_);
    for (auto& [id, conn] : conns_) {
      conns.push_back(std::move(conn.thread));
    }
    conns_.clear();
    done_conns_.clear();
  }
  for (std::thread& t : conns) {
    if (t.joinable()) t.join();
  }
  ::close(listen_fd_);
  listen_fd_ = -1;
  if (bound_address_.is_unix) {
    ::unlink(bound_address_.unix_path.c_str());
  }
  {
    std::lock_guard<std::mutex> lock(shutdown_mu_);
    shutdown_requested_ = true;
  }
  shutdown_cv_.notify_all();
}

void Server::WaitForShutdown() {
  std::unique_lock<std::mutex> lock(shutdown_mu_);
  while (!shutdown_requested_ &&
         !signal_shutdown_.load(std::memory_order_relaxed)) {
    shutdown_cv_.wait_for(lock, std::chrono::milliseconds(50));
  }
}

std::string Server::address() const { return bound_address_.ToString(); }

bool Server::LoadSnapshot(const std::string& path, std::string* error) {
  auto snap = std::make_shared<Snapshot>();
  snap->path = path;
  if (!FingerprintFile(path, &snap->fingerprint)) {
    if (error != nullptr) *error = "cannot read " + path;
    return false;
  }
  if (!data::TransactionDataset::LoadCsv(path, &snap->dataset, error)) {
    return false;
  }
  snap->od_weight = data::BuildOdGw(snap->dataset);
  snap->od_hours = data::BuildOdTh(snap->dataset);
  snap->od_distance = data::BuildOdTd(snap->dataset);
  snap->view =
      std::make_shared<const graph::GraphView>(snap->od_weight.graph);
  {
    std::lock_guard<std::mutex> lock(snapshot_mu_);
    snap->version = next_snapshot_version_++;
    snapshot_ = std::move(snap);
  }
  cache_.Clear();
  snapshots_loaded_.fetch_add(1, std::memory_order_relaxed);
  TNMINE_COUNTER_ADD("server/snapshots_loaded", 1);
  return true;
}

std::shared_ptr<const Snapshot> Server::snapshot() const {
  std::lock_guard<std::mutex> lock(snapshot_mu_);
  return snapshot_;
}

bool Server::LoadShards(const std::string& dir, std::string* error) {
  // Open validates every shard header and builds the combined
  // fingerprint; the source itself is discarded — mine_shards reopens
  // per request so each request's mappings charge that request's
  // memory budget. No cache clear: mine_shards keys carry the shard
  // fingerprint and version, so entries for an older set can never be
  // returned for the new one (they age out of the LRU instead).
  graph::ShardedTransactionSource::Options options;
  std::string open_error;
  const auto source =
      graph::ShardedTransactionSource::Open(dir, options, &open_error);
  if (source == nullptr) {
    if (error != nullptr) *error = open_error;
    return false;
  }
  auto set = std::make_shared<ShardSet>();
  set->dir = dir;
  set->fingerprint = HexFingerprint(source->fingerprint());
  set->num_transactions = source->num_transactions();
  set->num_shards = source->num_shards();
  {
    std::lock_guard<std::mutex> lock(snapshot_mu_);
    set->version = next_shard_version_++;
    shard_set_ = std::move(set);
  }
  shard_sets_loaded_.fetch_add(1, std::memory_order_relaxed);
  TNMINE_COUNTER_ADD("server/shard_sets_loaded", 1);
  return true;
}

std::shared_ptr<const ShardSet> Server::shard_set() const {
  std::lock_guard<std::mutex> lock(snapshot_mu_);
  return shard_set_;
}

void Server::ReapFinishedConnections() {
  // Extract the finished threads under the lock, join outside it: a
  // finishing connection thread pushes its id and returns without
  // reacquiring conn_mu_, so the join here can never deadlock with it.
  std::vector<std::thread> finished;
  {
    std::lock_guard<std::mutex> lock(conn_mu_);
    for (std::uint64_t id : done_conns_) {
      auto it = conns_.find(id);
      if (it != conns_.end()) {
        finished.push_back(std::move(it->second.thread));
        conns_.erase(it);
      }
    }
    done_conns_.clear();
  }
  for (std::thread& t : finished) {
    if (t.joinable()) t.join();
  }
}

void Server::AcceptLoop() {
  // Wait with a timeout instead of blocking in accept(): shutdown() on a
  // *listening* socket does not reliably unblock accept() (AF_UNIX on
  // Linux in particular), so Stop() only has to flip stop_ and join.
  while (!stop_.load()) {
    ReapFinishedConnections();
    pollfd pfd{listen_fd_, POLLIN, 0};
    const int ready = ::poll(&pfd, 1, 100);
    if (ready < 0 && errno != EINTR) return;
    if (ready <= 0) continue;
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR || errno == ECONNABORTED || errno == EAGAIN ||
          errno == EWOULDBLOCK) {
        accept_failures_.fetch_add(1, std::memory_order_relaxed);
        TNMINE_COUNTER_ADD("server/accept_failures", 1);
        continue;
      }
      if (stop_.load()) return;
      // Listen socket gone bad; nothing useful left to do.
      return;
    }
    if (TNMINE_FAILPOINT("server/accept_fail")) {
      // Injected accept failure: drop the connection on the floor and
      // keep serving — the chaos harness asserts the *next* connect
      // succeeds.
      ::close(fd);
      accept_failures_.fetch_add(1, std::memory_order_relaxed);
      TNMINE_COUNTER_ADD("server/accept_failures", 1);
      continue;
    }
    if (stop_.load()) {
      ::close(fd);
      return;
    }
    // Non-blocking so the deadline-governed frame I/O (poll + EAGAIN
    // loop) can never park a connection thread in a bare send/recv.
    const int fd_flags = ::fcntl(fd, F_GETFL, 0);
    if (fd_flags >= 0) ::fcntl(fd, F_SETFL, fd_flags | O_NONBLOCK);
    conn_accepted_.fetch_add(1, std::memory_order_relaxed);
    conn_open_.fetch_add(1, std::memory_order_relaxed);
    TNMINE_COUNTER_ADD("server/conn_accepted", 1);
    std::lock_guard<std::mutex> lock(conn_mu_);
    const std::uint64_t id = next_conn_id_++;
    Connection& conn = conns_[id];
    conn.fd = fd;
    conn.thread =
        std::thread([this, id, fd] { HandleConnection(id, fd); });
  }
}

void Server::WatchLoop() {
  // Poll every watched in-flight request's socket; a peer that vanished
  // (orderly close or reset) fires that request's CancelToken, and the
  // miner unwinds cooperatively at its next budget poll.
  while (!stop_.load()) {
    {
      std::lock_guard<std::mutex> lock(watch_mu_);
      for (const WatchedRequest& w : watched_) {
        char b;
        const ssize_t r =
            ::recv(w.fd, &b, 1, MSG_PEEK | MSG_DONTWAIT);
        if (r == 0 ||
            (r < 0 && errno != EAGAIN && errno != EWOULDBLOCK &&
             errno != EINTR)) {
          w.token->RequestCancel();
        }
      }
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
}

void Server::HandleConnection(std::uint64_t conn_id, int fd) {
  std::string payload;
  while (!stop_.load()) {
    const FrameReadStatus status = ReadFrameDeadline(
        fd, &payload, options_.idle_timeout_ms, options_.io_timeout_ms);
    if (status == FrameReadStatus::kIdleTimeout) {
      // The per-connection idle deadline IS the reaper: a parked
      // connection reaps itself instead of holding a slot forever.
      conn_idle_reaped_.fetch_add(1, std::memory_order_relaxed);
      TNMINE_COUNTER_ADD("server/conn_idle_reaped", 1);
      break;
    }
    if (status == FrameReadStatus::kIoTimeout) {
      conn_io_timeout_.fetch_add(1, std::memory_order_relaxed);
      TNMINE_COUNTER_ADD("server/conn_io_timeout", 1);
      break;
    }
    if (status == FrameReadStatus::kOversized) {
      // The length prefix is garbage or hostile; there is no way to
      // resync the framing, so the only safe answer is a drop.
      conn_bad_frame_.fetch_add(1, std::memory_order_relaxed);
      TNMINE_COUNTER_ADD("server/conn_bad_frame", 1);
      break;
    }
    if (status == FrameReadStatus::kTornFrame) {
      conn_torn_.fetch_add(1, std::memory_order_relaxed);
      TNMINE_COUNTER_ADD("server/conn_torn", 1);
      break;
    }
    if (status != FrameReadStatus::kFrame) break;  // kEof
    JsonValue request;
    std::string parse_error;
    JsonValue response;
    if (!JsonValue::Parse(payload, &request, &parse_error) ||
        !request.is_object()) {
      conn_bad_frame_.fetch_add(1, std::memory_order_relaxed);
      TNMINE_COUNTER_ADD("server/conn_bad_frame", 1);
      response = ErrorResponse("", "bad_request",
                               "request is not a JSON object: " +
                                   parse_error);
      WriteFrameDeadline(fd, response.Serialize(),
                         options_.io_timeout_ms);
      break;  // framing may be out of sync — drop the connection
    }
    response = HandleRequest(request, fd);
    bool write_timed_out = false;
    if (!WriteFrameDeadline(fd, response.Serialize(),
                            options_.io_timeout_ms, &write_timed_out)) {
      if (write_timed_out) {
        conn_io_timeout_.fetch_add(1, std::memory_order_relaxed);
        TNMINE_COUNTER_ADD("server/conn_io_timeout", 1);
      }
      break;
    }
    if (request.Get("op").AsString() == "shutdown") {
      // Only now — with the ok response on the wire — wake
      // WaitForShutdown; Stop() may shut this fd down immediately.
      {
        std::lock_guard<std::mutex> lock(shutdown_mu_);
        shutdown_requested_ = true;
      }
      shutdown_cv_.notify_all();
      break;
    }
  }
  ::close(fd);
  conn_closed_.fetch_add(1, std::memory_order_relaxed);
  conn_open_.fetch_sub(1, std::memory_order_relaxed);
  TNMINE_COUNTER_ADD("server/conn_closed", 1);
  std::lock_guard<std::mutex> lock(conn_mu_);
  done_conns_.push_back(conn_id);
}

JsonValue Server::ErrorResponse(const std::string& op,
                                const std::string& code,
                                const std::string& message) {
  JsonValue response = JsonValue::MakeObject();
  response.Set("ok", false);
  if (!op.empty()) response.Set("op", op);
  response.Set("code", code);
  response.Set("error", message);
  return response;
}

JsonValue Server::HandleRequest(const JsonValue& request, int fd) {
  requests_total_.fetch_add(1, std::memory_order_relaxed);
  TNMINE_COUNTER_ADD("server/requests_total", 1);
  const auto started = std::chrono::steady_clock::now();
  const std::string op = request.Get("op").AsString();
  JsonValue response;
  if (op == "ping") {
    response = JsonValue::MakeObject();
    response.Set("ok", true);
    response.Set("op", op);
    JsonValue result = JsonValue::MakeObject();
    result.Set("pong", true);
    response.Set("result", std::move(result));
  } else if (op == "stats") {
    response = HandleStats();
  } else if (op == "load_snapshot") {
    response = HandleLoadSnapshot(request);
  } else if (op == "load_shards") {
    response = HandleLoadShards(request);
  } else if (op == "structural" || op == "temporal" ||
             op == "mine_shards") {
    response = HandleMining(op, request, fd);
  } else if (op == "shutdown") {
    // The acknowledgement must reach the client before Stop() starts
    // tearing connections down, so the shutdown notification itself is
    // deferred to HandleConnection after the response write.
    response = JsonValue::MakeObject();
    response.Set("ok", true);
    response.Set("op", op);
  } else {
    response = ErrorResponse(op, "bad_request",
                             op.empty() ? "missing op"
                                        : "unknown op '" + op + "'");
  }
  if (request.Has("id")) {
    response.Set("id", request.Get("id"));
  }
  if (response.Get("ok").AsBool()) {
    requests_ok_.fetch_add(1, std::memory_order_relaxed);
  } else {
    requests_error_.fetch_add(1, std::memory_order_relaxed);
    TNMINE_COUNTER_ADD("server/requests_error", 1);
  }
  TNMINE_HISTOGRAM_NANOS(
      "server/request_nanos",
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - started)
          .count());
  return response;
}

JsonValue Server::HandleStats() {
  JsonValue result = JsonValue::MakeObject();

  JsonValue server = JsonValue::MakeObject();
  server.Set("requests_total",
             requests_total_.load(std::memory_order_relaxed));
  server.Set("requests_ok", requests_ok_.load(std::memory_order_relaxed));
  server.Set("requests_error",
             requests_error_.load(std::memory_order_relaxed));
  server.Set("requests_cancelled",
             requests_cancelled_.load(std::memory_order_relaxed));
  server.Set("admission_rejected",
             admission_rejected_.load(std::memory_order_relaxed));
  server.Set("snapshots_loaded",
             snapshots_loaded_.load(std::memory_order_relaxed));
  server.Set("shard_sets_loaded",
             shard_sets_loaded_.load(std::memory_order_relaxed));
  server.Set("inflight", inflight_.load(std::memory_order_relaxed));
  server.Set("max_inflight", options_.max_inflight);
  server.Set("conn_open", conn_open_.load(std::memory_order_relaxed));
  server.Set("conn_accepted",
             conn_accepted_.load(std::memory_order_relaxed));
  server.Set("conn_closed",
             conn_closed_.load(std::memory_order_relaxed));
  server.Set("conn_idle_reaped",
             conn_idle_reaped_.load(std::memory_order_relaxed));
  server.Set("conn_io_timeout",
             conn_io_timeout_.load(std::memory_order_relaxed));
  server.Set("conn_bad_frame",
             conn_bad_frame_.load(std::memory_order_relaxed));
  server.Set("conn_torn", conn_torn_.load(std::memory_order_relaxed));
  server.Set("accept_failures",
             accept_failures_.load(std::memory_order_relaxed));
  server.Set("accept_backlog", options_.accept_backlog);
  server.Set("io_timeout_ms", options_.io_timeout_ms);
  server.Set("idle_timeout_ms", options_.idle_timeout_ms);
  server.Set(
      "uptime_seconds",
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    start_time_)
          .count());
  result.Set("server", std::move(server));

  JsonValue cache = JsonValue::MakeObject();
  cache.Set("entries", cache_.entries());
  cache.Set("bytes", cache_.MemoryBytes());
  cache.Set("capacity_bytes", cache_.capacity_bytes());
  cache.Set("hits", cache_.hits());
  cache.Set("misses", cache_.misses());
  cache.Set("evictions", cache_.evictions());
  cache.Set("invalidations", cache_.invalidations());
  result.Set("cache", std::move(cache));

  const std::shared_ptr<const Snapshot> snap = snapshot();
  if (snap != nullptr) {
    JsonValue s = JsonValue::MakeObject();
    s.Set("version", snap->version);
    s.Set("fingerprint", snap->fingerprint);
    s.Set("path", snap->path);
    s.Set("transactions", snap->dataset.size());
    s.Set("graph_vertices", snap->view->num_vertices());
    s.Set("graph_edges", snap->view->num_edges());
    result.Set("snapshot", std::move(s));
  } else {
    result.Set("snapshot", JsonValue());
  }

  const std::shared_ptr<const ShardSet> set = shard_set();
  if (set != nullptr) {
    JsonValue s = JsonValue::MakeObject();
    s.Set("version", set->version);
    s.Set("fingerprint", set->fingerprint);
    s.Set("dir", set->dir);
    s.Set("transactions", set->num_transactions);
    s.Set("shards", set->num_shards);
    result.Set("shard_set", std::move(s));
  } else {
    result.Set("shard_set", JsonValue());
  }

  // The telemetry RunReport, embedded verbatim: the same document the
  // CLI's --metrics-out writes, served over the wire.
  telemetry::RunReportOptions report_options;
  report_options.binary = "tnmined";
  report_options.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    start_time_)
          .count();
  JsonValue report;
  if (JsonValue::Parse(telemetry::RenderRunReport(report_options),
                       &report, nullptr)) {
    result.Set("report", std::move(report));
  }

  JsonValue response = JsonValue::MakeObject();
  response.Set("ok", true);
  response.Set("op", "stats");
  response.Set("result", std::move(result));
  return response;
}

JsonValue Server::HandleLoadSnapshot(const JsonValue& request) {
  const std::string path =
      request.Get("params").Get("path").AsString(std::string());
  if (path.empty()) {
    return ErrorResponse("load_snapshot", "bad_request",
                         "params.path is required");
  }
  std::string error;
  if (!LoadSnapshot(path, &error)) {
    return ErrorResponse("load_snapshot", "load_failed", error);
  }
  const std::shared_ptr<const Snapshot> snap = snapshot();
  JsonValue result = JsonValue::MakeObject();
  result.Set("version", snap->version);
  result.Set("fingerprint", snap->fingerprint);
  result.Set("transactions", snap->dataset.size());
  JsonValue response = JsonValue::MakeObject();
  response.Set("ok", true);
  response.Set("op", "load_snapshot");
  response.Set("result", std::move(result));
  return response;
}

JsonValue Server::HandleLoadShards(const JsonValue& request) {
  const std::string dir =
      request.Get("params").Get("dir").AsString(std::string());
  if (dir.empty()) {
    return ErrorResponse("load_shards", "bad_request",
                         "params.dir is required");
  }
  std::string error;
  if (!LoadShards(dir, &error)) {
    return ErrorResponse("load_shards", "load_failed", error);
  }
  const std::shared_ptr<const ShardSet> set = shard_set();
  JsonValue result = JsonValue::MakeObject();
  result.Set("version", set->version);
  result.Set("fingerprint", set->fingerprint);
  result.Set("transactions", set->num_transactions);
  result.Set("shards", set->num_shards);
  JsonValue response = JsonValue::MakeObject();
  response.Set("ok", true);
  response.Set("op", "load_shards");
  response.Set("result", std::move(result));
  return response;
}

bool Server::TryAdmit() {
  std::size_t cur = inflight_.load(std::memory_order_relaxed);
  do {
    if (cur >= options_.max_inflight) return false;
  } while (!inflight_.compare_exchange_weak(cur, cur + 1,
                                            std::memory_order_relaxed));
  return true;
}

void Server::Release() {
  inflight_.fetch_sub(1, std::memory_order_relaxed);
}

void Server::RegisterWatch(
    int fd, const std::shared_ptr<common::CancelToken>& token) {
  std::lock_guard<std::mutex> lock(watch_mu_);
  watched_.push_back(WatchedRequest{fd, token});
}

void Server::UnregisterWatch(int fd) {
  std::lock_guard<std::mutex> lock(watch_mu_);
  for (auto it = watched_.begin(); it != watched_.end(); ++it) {
    if (it->fd == fd) {
      watched_.erase(it);
      return;
    }
  }
}

JsonValue Server::HandleMining(const std::string& op,
                               const JsonValue& request, int fd) {
  // mine_shards mines the registered ShardSet instead of the Snapshot;
  // everything downstream (cache key, admission, cancel watch) is
  // shared, parameterized by the data's fingerprint and version.
  const bool over_shards = op == "mine_shards";
  std::shared_ptr<const Snapshot> snap;
  std::shared_ptr<const ShardSet> shards;
  std::string fingerprint;
  std::uint64_t version = 0;
  if (over_shards) {
    shards = shard_set();
    if (shards == nullptr) {
      return ErrorResponse(op, "no_shards",
                           "no shard set loaded (use load_shards)");
    }
    fingerprint = shards->fingerprint;
    version = shards->version;
  } else {
    snap = snapshot();
    if (snap == nullptr) {
      return ErrorResponse(op, "no_snapshot",
                           "no snapshot loaded (use load_snapshot)");
    }
    fingerprint = snap->fingerprint;
    version = snap->version;
  }
  JsonValue params;
  std::string error;
  const std::span<const ParamSpec> schema =
      op == "structural" ? std::span<const ParamSpec>(kStructuralParams)
      : over_shards      ? std::span<const ParamSpec>(kShardMiningParams)
                         : std::span<const ParamSpec>(kTemporalParams);
  if (!CanonicalizeParams(request.Get("params"), schema, &params,
                          &error)) {
    return ErrorResponse(op, "bad_request", error);
  }

  const std::string key = op + "|" + fingerprint + "|v" +
                          std::to_string(version) + "|" +
                          params.Serialize();
  std::string payload;
  bool cached = cache_.Lookup(key, &payload);
  std::string outcome_label = "complete";
  if (!cached) {
    if (!TryAdmit()) {
      admission_rejected_.fetch_add(1, std::memory_order_relaxed);
      TNMINE_COUNTER_ADD("server/admission_rejected", 1);
      return ErrorResponse(op, "overloaded",
                           "too many mining requests in flight");
    }
    auto token = std::make_shared<common::CancelToken>();
    RegisterWatch(fd, token);
    const common::ResourceBudget budget =
        BudgetFor(params, options_.default_limits, token);
    try {
      payload = over_shards
                    ? MineShardsResult(params, *shards, budget,
                                       &outcome_label)
                    : MineResult(op, params, *snap, budget,
                                 &outcome_label);
    } catch (const std::exception& e) {
      UnregisterWatch(fd);
      Release();
      return ErrorResponse(op, "internal", e.what());
    }
    UnregisterWatch(fd);
    Release();
    if (outcome_label == "cancelled") {
      requests_cancelled_.fetch_add(1, std::memory_order_relaxed);
      TNMINE_COUNTER_ADD("server/requests_cancelled", 1);
    }
    // Only complete results are cached: deadline/memory truncation
    // depends on wall clock and allocator state, so a truncated payload
    // is not a deterministic function of the key.
    if (outcome_label == "complete") {
      cache_.Insert(key, payload);
    }
  }

  JsonValue result;
  if (!JsonValue::Parse(payload, &result, &error)) {
    return ErrorResponse(op, "internal",
                         "result payload corrupt: " + error);
  }
  JsonValue response = JsonValue::MakeObject();
  response.Set("ok", true);
  response.Set("op", op);
  response.Set("cached", cached);
  response.Set("snapshot_version", version);
  response.Set("result", std::move(result));
  return response;
}

std::string Server::MineResult(const std::string& op,
                               const JsonValue& params,
                               const Snapshot& snap,
                               const common::ResourceBudget& budget,
                               std::string* outcome_label) {
  JsonValue result = JsonValue::MakeObject();
  const std::size_t top =
      static_cast<std::size_t>(params.Get("top").AsInt());
  const common::Parallelism parallelism =
      params.Get("threads").AsInt() > 0
          ? common::Parallelism{static_cast<std::size_t>(
                params.Get("threads").AsInt())}
          : options_.parallelism;
  if (op == "structural") {
    const std::string attribute = params.Get("attribute").AsString();
    const data::OdGraph& od = attribute == "hours" ? snap.od_hours
                              : attribute == "distance"
                                  ? snap.od_distance
                                  : snap.od_weight;
    core::StructuralMiningOptions options;
    options.strategy = params.Get("strategy").AsString() == "df"
                           ? partition::SplitStrategy::kDepthFirst
                           : partition::SplitStrategy::kBreadthFirst;
    options.num_partitions =
        static_cast<std::size_t>(params.Get("k").AsInt());
    options.min_support =
        static_cast<std::size_t>(params.Get("support").AsInt());
    options.max_pattern_edges =
        static_cast<std::size_t>(params.Get("max_edges").AsInt());
    options.repetitions =
        static_cast<std::size_t>(params.Get("reps").AsInt());
    options.miner = params.Get("miner").AsString() == "gspan"
                        ? core::MinerKind::kGspan
                        : core::MinerKind::kFsg;
    options.seed = static_cast<std::uint64_t>(params.Get("seed").AsInt());
    options.parallelism = parallelism;
    options.budget = budget;
    const core::StructuralMiningResult mined =
        core::MineStructuralPatterns(od.graph, options);
    *outcome_label = common::ToString(mined.outcome);
    common::RecordOutcome("server", mined.outcome);
    result.Set("outcome", *outcome_label);
    result.Set("num_patterns", mined.registry.size());
    result.Set("work_ticks", mined.work_ticks);
    JsonValue reps = JsonValue::MakeArray();
    for (std::size_t n : mined.patterns_per_repetition) {
      reps.array().push_back(JsonValue(n));
    }
    result.Set("patterns_per_repetition", std::move(reps));
    result.Set("patterns",
               RenderPatterns(core::RankPatterns(mined.registry), top,
                              &od.discretizer));
  } else {
    core::TemporalMiningOptions options;
    options.min_support_fraction =
        params.Get("support_fraction").AsDouble();
    options.max_pattern_edges =
        static_cast<std::size_t>(params.Get("max_edges").AsInt());
    options.partition.max_distinct_vertex_labels =
        static_cast<std::size_t>(params.Get("max_labels").AsInt());
    options.parallelism = parallelism;
    options.budget = budget;
    const core::TemporalMiningResult mined =
        core::MineTemporalPatterns(snap.dataset, options);
    *outcome_label = common::ToString(mined.outcome);
    common::RecordOutcome("server", mined.outcome);
    result.Set("outcome", *outcome_label);
    result.Set("num_patterns", mined.registry.size());
    result.Set("work_ticks", mined.work_ticks);
    result.Set("day_transactions", mined.partition.transactions.size());
    result.Set("absolute_min_support", mined.absolute_min_support);
    result.Set("patterns",
               RenderPatterns(mined.registry.SortedBySupport(), top,
                              &mined.partition.discretizer));
  }
  return result.Serialize();
}

std::string Server::MineShardsResult(const JsonValue& params,
                                     const ShardSet& shards,
                                     const common::ResourceBudget& budget,
                                     std::string* outcome_label) {
  graph::ShardedTransactionSource::Options source_options;
  std::int64_t resident = params.Get("max_resident_shards").AsInt();
  if (resident < 1) resident = 1;
  source_options.max_resident_shards =
      static_cast<std::size_t>(resident);
  source_options.budget = budget;
  std::string error;
  const auto source = graph::ShardedTransactionSource::Open(
      shards.dir, source_options, &error);
  if (source == nullptr) {
    throw std::runtime_error("cannot open shard dir " + shards.dir +
                             ": " + error);
  }
  if (HexFingerprint(source->fingerprint()) != shards.fingerprint) {
    throw std::runtime_error(
        "shard dir " + shards.dir +
        " changed since load_shards; re-issue load_shards");
  }

  const common::Parallelism parallelism =
      params.Get("threads").AsInt() > 0
          ? common::Parallelism{static_cast<std::size_t>(
                params.Get("threads").AsInt())}
          : options_.parallelism;
  JsonValue result = JsonValue::MakeObject();
  result.Set("transactions", source->num_transactions());
  result.Set("shards", source->num_shards());
  std::vector<pattern::FrequentPattern> patterns;
  if (params.Get("miner").AsString() == "gspan") {
    gspan::GspanOptions options;
    options.min_support =
        static_cast<std::size_t>(params.Get("support").AsInt());
    options.max_edges =
        static_cast<std::size_t>(params.Get("max_edges").AsInt());
    options.parallelism = parallelism;
    options.budget = budget;
    gspan::GspanResult mined = gspan::MineGspan(*source, options);
    *outcome_label = common::ToString(mined.outcome);
    common::RecordOutcome("server", mined.outcome);
    result.Set("work_ticks", mined.work_ticks);
    patterns = std::move(mined.patterns);
  } else {
    fsg::FsgOptions options;
    options.min_support =
        static_cast<std::size_t>(params.Get("support").AsInt());
    options.max_edges =
        static_cast<std::size_t>(params.Get("max_edges").AsInt());
    options.parallelism = parallelism;
    options.budget = budget;
    fsg::FsgResult mined = fsg::MineFsg(*source, options);
    *outcome_label = common::ToString(mined.outcome);
    common::RecordOutcome("server", mined.outcome);
    result.Set("work_ticks", mined.work_ticks);
    patterns = std::move(mined.patterns);
  }
  result.Set("outcome", *outcome_label);
  result.Set("num_patterns", patterns.size());
  // Rank by support descending; ties keep the miner's deterministic
  // enumeration order so responses (and cache payloads) are stable.
  std::vector<const pattern::FrequentPattern*> ranked;
  ranked.reserve(patterns.size());
  for (const pattern::FrequentPattern& p : patterns) {
    ranked.push_back(&p);
  }
  std::stable_sort(ranked.begin(), ranked.end(),
                   [](const pattern::FrequentPattern* a,
                      const pattern::FrequentPattern* b) {
                     return a->support > b->support;
                   });
  result.Set("patterns",
             RenderPatterns(
                 ranked,
                 static_cast<std::size_t>(params.Get("top").AsInt()),
                 nullptr));
  return result.Serialize();
}

}  // namespace tnmine::server
