#ifndef TNMINE_COMMON_STOPWATCH_H_
#define TNMINE_COMMON_STOPWATCH_H_

#include <chrono>

namespace tnmine {

/// Wall-clock stopwatch for reporting experiment runtimes.
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  /// Restarts the measurement.
  void Reset() { start_ = Clock::now(); }

  /// Elapsed seconds since construction or the last Reset().
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Elapsed milliseconds since construction or the last Reset().
  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace tnmine

#endif  // TNMINE_COMMON_STOPWATCH_H_
