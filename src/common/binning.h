#ifndef TNMINE_COMMON_BINNING_H_
#define TNMINE_COMMON_BINNING_H_

#include <cstdint>
#include <string>
#include <vector>

namespace tnmine {

/// Discretizer maps a continuous value to one of a small number of interval
/// bins (Section 3 of the paper: "Each label (distance, hours, weight) is
/// divided into ranges, giving a few distinct labels for each type").
///
/// A discretizer holds ascending cut points c_0 < c_1 < ... < c_{k-2}
/// defining k bins:
///   bin 0: (-inf, c_0],  bin i: (c_{i-1}, c_i],  bin k-1: (c_{k-2}, +inf).
/// The closed-on-the-right convention matches Weka's discretization filter,
/// which the paper's Section 7 experiments depend on.
class Discretizer {
 public:
  /// Builds a discretizer from explicit ascending cut points. `cuts` may be
  /// empty, in which case everything maps to bin 0.
  static Discretizer FromCutPoints(std::vector<double> cuts);

  /// Equal-width binning: `num_bins` bins of equal width spanning
  /// [min(values), max(values)]. Requires num_bins >= 1 and non-empty
  /// values. Degenerate input (all values identical) yields a single bin.
  static Discretizer EqualWidth(const std::vector<double>& values,
                                int num_bins);

  /// Equal-frequency binning: cut points at the empirical quantiles so each
  /// bin receives roughly |values| / num_bins points. Duplicate quantile
  /// values are collapsed, so fewer than `num_bins` bins may result.
  static Discretizer EqualFrequency(const std::vector<double>& values,
                                    int num_bins);

  /// Number of bins (cut points + 1).
  int num_bins() const { return static_cast<int>(cuts_.size()) + 1; }

  /// Maps `value` to its bin index in [0, num_bins()).
  int Bin(double value) const;

  /// Human-readable interval label for `bin`, e.g. "(-inf, 6500]" — the
  /// style used for Figure 4's edge labels.
  std::string IntervalLabel(int bin) const;

  /// The ascending cut points.
  const std::vector<double>& cut_points() const { return cuts_; }

 private:
  explicit Discretizer(std::vector<double> cuts) : cuts_(std::move(cuts)) {}

  std::vector<double> cuts_;
};

}  // namespace tnmine

#endif  // TNMINE_COMMON_BINNING_H_
