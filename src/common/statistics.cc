#include "common/statistics.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace tnmine {

SummaryStats Summarize(const std::vector<double>& values) {
  RunningStats acc;
  for (double v : values) acc.Add(v);
  return acc.Finish();
}

void RunningStats::Add(double x) {
  if (count_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

SummaryStats RunningStats::Finish() const {
  SummaryStats out;
  out.count = count_;
  if (count_ == 0) return out;
  out.min = min_;
  out.max = max_;
  out.mean = mean_;
  out.sum = sum_;
  out.stddev = std::sqrt(m2_ / static_cast<double>(count_));
  return out;
}

std::vector<HistogramBucket> Histogram(const std::vector<double>& values,
                                       const std::vector<double>& edges) {
  TNMINE_CHECK(edges.size() >= 2);
  for (std::size_t i = 1; i < edges.size(); ++i) {
    TNMINE_CHECK(edges[i - 1] < edges[i]);
  }
  std::vector<HistogramBucket> buckets(edges.size() - 1);
  for (std::size_t i = 0; i + 1 < edges.size(); ++i) {
    buckets[i].lo = edges[i];
    buckets[i].hi = edges[i + 1];
  }
  for (double v : values) {
    // The final bucket is closed ([lo, hi], Weka convention) so the
    // maximum in-range value is counted rather than silently dropped.
    if (v < edges.front() || v > edges.back()) continue;
    const auto it = std::upper_bound(edges.begin(), edges.end(), v);
    std::size_t idx = static_cast<std::size_t>(it - edges.begin());
    if (idx > 0) --idx;
    if (idx >= buckets.size()) idx = buckets.size() - 1;
    ++buckets[idx].count;
  }
  return buckets;
}

double PearsonCorrelation(const std::vector<double>& x,
                          const std::vector<double>& y) {
  TNMINE_CHECK(x.size() == y.size());
  const std::size_t n = x.size();
  if (n < 2) return 0.0;
  double mx = 0.0, my = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    mx += x[i];
    my += y[i];
  }
  mx /= static_cast<double>(n);
  my /= static_cast<double>(n);
  double sxy = 0.0, sxx = 0.0, syy = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double dx = x[i] - mx;
    const double dy = y[i] - my;
    sxy += dx * dy;
    sxx += dx * dx;
    syy += dy * dy;
  }
  if (sxx <= 0.0 || syy <= 0.0) return 0.0;
  return sxy / std::sqrt(sxx * syy);
}

}  // namespace tnmine
