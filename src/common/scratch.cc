#include "common/scratch.h"

#include <atomic>

#include "common/telemetry.h"

namespace tnmine::common {

namespace {

// Always-on (telemetry-off builds included): the allocation-freedom
// contract is asserted by tests that must run in every configuration.
std::atomic<std::uint64_t> g_acquires{0};
std::atomic<std::uint64_t> g_reuse_hits{0};
std::atomic<std::uint64_t> g_fresh_allocs{0};

}  // namespace

namespace internal {

void NoteScratchAcquire(bool fresh) {
  g_acquires.fetch_add(1, std::memory_order_relaxed);
  TNMINE_COUNTER_ADD("scratch/acquires", 1);
  if (fresh) {
    g_fresh_allocs.fetch_add(1, std::memory_order_relaxed);
    TNMINE_COUNTER_ADD("scratch/fresh_allocs", 1);
  } else {
    g_reuse_hits.fetch_add(1, std::memory_order_relaxed);
    TNMINE_COUNTER_ADD("scratch/reuse_hits", 1);
  }
}

}  // namespace internal

ScratchStats GetScratchStats() {
  ScratchStats stats;
  stats.acquires = g_acquires.load(std::memory_order_relaxed);
  stats.reuse_hits = g_reuse_hits.load(std::memory_order_relaxed);
  stats.fresh_allocs = g_fresh_allocs.load(std::memory_order_relaxed);
  return stats;
}

void ResetScratchStats() {
  g_acquires.store(0, std::memory_order_relaxed);
  g_reuse_hits.store(0, std::memory_order_relaxed);
  g_fresh_allocs.store(0, std::memory_order_relaxed);
}

}  // namespace tnmine::common
