#ifndef TNMINE_COMMON_PARSE_H_
#define TNMINE_COMMON_PARSE_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace tnmine {

/// Strict, locale-independent text-to-number conversion.
///
/// Every reader in tnmine (CSV, native/SUBDUE/FSG graph formats, ARFF,
/// dates) funnels numeric fields through these helpers instead of
/// `operator>>`, `sscanf`, or `strtod`. The contract is uniform:
///
///   - The ENTIRE input must be consumed. "12x", "1 2", and "" all fail.
///   - No leading or trailing whitespace is accepted.
///   - No leading '+' is accepted; '-' only for signed targets.
///   - Overflow fails instead of wrapping or saturating. In particular a
///     negative literal never turns into a huge unsigned value.
///   - Results are locale-independent ('.' is always the decimal point).
///
/// All functions return false without touching `*out` on failure.
bool ParseInt64(std::string_view text, std::int64_t* out);
bool ParseInt32(std::string_view text, std::int32_t* out);
bool ParseUint64(std::string_view text, std::uint64_t* out);
bool ParseUint32(std::string_view text, std::uint32_t* out);
/// Parses a non-negative size. Rejects '-' outright, so "-1" can never
/// wrap to SIZE_MAX.
bool ParseSize(std::string_view text, std::size_t* out);
/// Parses a double (fixed or scientific notation, "inf"/"nan" accepted as
/// by std::from_chars). Full consumption, locale-independent.
bool ParseDouble(std::string_view text, double* out);
/// Like ParseDouble but additionally rejects non-finite results.
bool ParseFiniteDouble(std::string_view text, double* out);

/// Uniform parse-failure report carried by every tnmine reader.
///
/// `line` and `column` are 1-based positions in the input text; 0 means
/// "not applicable" (e.g. a file-level error). Readers expose this next to
/// the legacy `std::string* error` overloads so call sites can migrate
/// incrementally.
struct ParseError {
  std::size_t line = 0;
  std::size_t column = 0;
  std::string message;

  /// "line 3, column 7: malformed vertex line" (or just the message when
  /// no position is known).
  std::string ToString() const;

  /// Convenience factory.
  static ParseError At(std::size_t line, std::size_t column,
                       std::string message);
};

/// Copies `e` into the two error-reporting styles used across the
/// codebase: a structured ParseError and/or a legacy string. Either sink
/// may be null.
void ReportParseError(const ParseError& e, ParseError* structured,
                      std::string* legacy);

/// A whitespace-separated token of a line, with the 1-based column where
/// it starts (for ParseError reporting).
struct LineToken {
  std::string_view text;
  std::size_t column = 0;
};

/// Splits `line` on spaces/tabs into tokens with column positions. A
/// trailing '\r' (CRLF input) is dropped first.
std::vector<LineToken> TokenizeLine(std::string_view line);

/// Iterates the lines of `text` (split on '\n', no newline translation
/// beyond dropping a trailing '\r' per line) and calls
/// `fn(line_number, line)` with 1-based line numbers. `fn` returns false
/// to stop early; ForEachLine then returns false.
template <typename Fn>
bool ForEachLine(std::string_view text, Fn&& fn) {
  std::size_t line_number = 0;
  std::size_t begin = 0;
  while (begin < text.size()) {
    std::size_t end = text.find('\n', begin);
    const std::size_t next =
        (end == std::string_view::npos) ? text.size() : end + 1;
    if (end == std::string_view::npos) end = text.size();
    std::string_view line = text.substr(begin, end - begin);
    if (!line.empty() && line.back() == '\r') line.remove_suffix(1);
    ++line_number;
    if (!fn(line_number, line)) return false;
    begin = next;
  }
  return true;
}

}  // namespace tnmine

#endif  // TNMINE_COMMON_PARSE_H_
