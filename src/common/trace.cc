#include "common/trace.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <mutex>
#include <vector>

namespace tnmine::trace {

namespace {

/// Collected events of the current/last session. One global buffer under
/// one mutex is enough: spans are placed at coarse granularity (per run,
/// per level, per seed subtree), so contention here is negligible next to
/// the work a span brackets.
struct EventStore {
  std::mutex mu;
  std::vector<SpanEvent> events;
  std::uint64_t base_nanos = 0;  ///< session start, absolute clock
  std::uint64_t dropped = 0;
};

EventStore& Store() {
  static EventStore* store = new EventStore();
  return *store;
}

/// Hard cap so a forgotten session cannot grow without bound.
constexpr std::size_t kMaxEvents = 1 << 20;

std::atomic<Session::ClockFn> g_clock{nullptr};

std::uint32_t ThisThreadTid() {
  static std::atomic<std::uint32_t> next_tid{0};
  thread_local const std::uint32_t tid =
      next_tid.fetch_add(1, std::memory_order_relaxed);
  return tid;
}

thread_local std::uint32_t tls_depth = 0;

}  // namespace

std::atomic<bool> Session::recording_{false};

std::uint64_t Session::NowNanos() {
  if (const ClockFn clock = g_clock.load(std::memory_order_acquire);
      clock != nullptr) {
    return clock();
  }
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

void Session::Start() {
  EventStore& store = Store();
  std::lock_guard<std::mutex> lock(store.mu);
  store.events.clear();
  store.dropped = 0;
  store.base_nanos = NowNanos();
  recording_.store(true, std::memory_order_release);
}

void Session::Stop() { recording_.store(false, std::memory_order_release); }

void Session::SetClockForTest(ClockFn clock) {
  g_clock.store(clock, std::memory_order_release);
}

std::vector<SpanEvent> Session::CollectedEvents() {
  EventStore& store = Store();
  std::vector<SpanEvent> events;
  {
    std::lock_guard<std::mutex> lock(store.mu);
    events = store.events;
  }
  std::stable_sort(events.begin(), events.end(),
                   [](const SpanEvent& a, const SpanEvent& b) {
                     if (a.tid != b.tid) return a.tid < b.tid;
                     if (a.start_nanos != b.start_nanos) {
                       return a.start_nanos < b.start_nanos;
                     }
                     // Outer spans close after inner ones but start at or
                     // before them; deeper-last keeps children after their
                     // parent at equal timestamps.
                     return a.depth < b.depth;
                   });
  return events;
}

std::string Session::ExportChromeTraceJson() {
  const std::vector<SpanEvent> events = CollectedEvents();
  std::string out;
  out.reserve(64 + events.size() * 96);
  out += "{\"displayTimeUnit\": \"ms\", \"traceEvents\": [";
  char buf[64];
  for (std::size_t i = 0; i < events.size(); ++i) {
    const SpanEvent& e = events[i];
    out += i == 0 ? "\n" : ",\n";
    out += "  {\"ph\": \"X\", \"cat\": \"tnmine\", \"pid\": 1, \"tid\": ";
    out += std::to_string(e.tid);
    out += ", \"name\": \"";
    for (const char* c = e.name; *c != '\0'; ++c) {
      if (*c == '"' || *c == '\\') out += '\\';
      out += *c;
    }
    out += "\", \"ts\": ";
    std::snprintf(buf, sizeof(buf), "%.3f",
                  static_cast<double>(e.start_nanos) * 1e-3);
    out += buf;
    out += ", \"dur\": ";
    std::snprintf(buf, sizeof(buf), "%.3f",
                  static_cast<double>(e.duration_nanos) * 1e-3);
    out += buf;
    out += ", \"args\": {\"depth\": ";
    out += std::to_string(e.depth);
    out += "}}";
  }
  out += events.empty() ? "]}\n" : "\n]}\n";
  return out;
}

bool Session::WriteChromeTrace(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  const std::string json = ExportChromeTraceJson();
  const bool ok = std::fwrite(json.data(), 1, json.size(), f) == json.size();
  return (std::fclose(f) == 0) && ok;
}

Span::Span(const char* name) : name_(name) {
  depth_ = tls_depth++;
  recording_ = Session::IsRecording();
  start_nanos_ = Session::NowNanos();
}

Span::~Span() {
  const std::uint64_t end_nanos = Session::NowNanos();
  --tls_depth;
  const std::uint64_t duration =
      end_nanos >= start_nanos_ ? end_nanos - start_nanos_ : 0;
  telemetry::Registry::Global().GetSpanStat(name_).Record(duration);
  if (!recording_) return;
  EventStore& store = Store();
  SpanEvent event;
  event.name = name_;
  event.tid = ThisThreadTid();
  event.depth = depth_;
  std::lock_guard<std::mutex> lock(store.mu);
  event.start_nanos = start_nanos_ >= store.base_nanos
                          ? start_nanos_ - store.base_nanos
                          : 0;
  event.duration_nanos = duration;
  if (store.events.size() >= kMaxEvents) {
    ++store.dropped;
    return;
  }
  store.events.push_back(event);
}

}  // namespace tnmine::trace
