#ifndef TNMINE_COMMON_RANDOM_H_
#define TNMINE_COMMON_RANDOM_H_

#include <cstdint>
#include <vector>

namespace tnmine {

/// Deterministic 64-bit pseudo-random generator (xoshiro256** seeded via
/// SplitMix64).
///
/// Every stochastic component in tnmine draws from an explicitly seeded Rng
/// so that experiments, tests, and benchmarks are bit-reproducible. The
/// engine satisfies the UniformRandomBitGenerator concept, so it can also be
/// plugged into <random> distributions, although the member helpers below
/// cover everything the library needs with stable cross-platform results
/// (std::uniform_*_distribution output is implementation-defined; these
/// helpers are not).
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Seeds the four 64-bit lanes from `seed` using SplitMix64.
  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ULL);

  Rng(const Rng&) = default;
  Rng& operator=(const Rng&) = default;

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ULL; }

  /// Returns the next raw 64-bit output.
  std::uint64_t Next();

  /// UniformRandomBitGenerator interface.
  result_type operator()() { return Next(); }

  /// Uniform integer in [0, bound). `bound` must be positive. Uses Lemire's
  /// unbiased multiply-shift rejection method.
  std::uint64_t NextBounded(std::uint64_t bound);

  /// Uniform integer in the closed range [lo, hi].
  std::int64_t NextInt(std::int64_t lo, std::int64_t hi);

  /// Uniform double in [0, 1).
  double NextDouble();

  /// Uniform double in [lo, hi).
  double NextDouble(double lo, double hi);

  /// Bernoulli draw with success probability `p` (clamped to [0, 1]).
  bool NextBool(double p = 0.5);

  /// Standard normal draw (Box–Muller, no caching so the stream is a pure
  /// function of the call sequence).
  double NextGaussian();

  /// Normal draw with mean `mu` and standard deviation `sigma` (>= 0).
  double NextGaussian(double mu, double sigma);

  /// Log-normal draw: exp(N(mu_log, sigma_log)).
  double NextLogNormal(double mu_log, double sigma_log);

  /// Exponential draw with rate `lambda` (> 0).
  double NextExponential(double lambda);

  /// Zipf-distributed rank in [0, n) with exponent `s` (> 0). Rank 0 is the
  /// most popular item. Uses an O(1)-per-draw approximation via inverse CDF
  /// on the continuous Zipf envelope with rejection.
  std::uint64_t NextZipf(std::uint64_t n, double s);

  /// Draws an index in [0, weights.size()) proportionally to `weights`
  /// (non-negative, not all zero).
  std::size_t NextWeighted(const std::vector<double>& weights);

  /// Fisher–Yates shuffles `items` in place.
  template <typename T>
  void Shuffle(std::vector<T>& items) {
    for (std::size_t i = items.size(); i > 1; --i) {
      std::size_t j = static_cast<std::size_t>(NextBounded(i));
      using std::swap;
      swap(items[i - 1], items[j]);
    }
  }

  /// Returns an independent generator whose seed is derived from this
  /// stream; convenient for giving each sub-component its own stream.
  Rng Fork();

 private:
  std::uint64_t s_[4];
};

}  // namespace tnmine

#endif  // TNMINE_COMMON_RANDOM_H_
