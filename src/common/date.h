#ifndef TNMINE_COMMON_DATE_H_
#define TNMINE_COMMON_DATE_H_

#include <cstdint>
#include <string>

namespace tnmine {

/// Calendar date utilities for the REQ_PICKUP_DT / REQ_DELIVERY_DT
/// transaction attributes.
///
/// Dates are carried as day numbers (days since 1970-01-01, the proleptic
/// Gregorian civil calendar) so that temporal partitioning (Section 6) is
/// plain integer arithmetic. Conversion uses Howard Hinnant's
/// days-from-civil algorithm.
struct CivilDate {
  int year = 1970;
  int month = 1;  ///< 1..12
  int day = 1;    ///< 1..31
};

/// Returns the day number of `date` (1970-01-01 -> 0).
std::int64_t DayNumberFromCivil(const CivilDate& date);

/// Inverse of DayNumberFromCivil.
CivilDate CivilFromDayNumber(std::int64_t day_number);

/// Formats a day number as "YYYY-MM-DD".
std::string FormatDayNumber(std::int64_t day_number);

/// Parses "YYYY-MM-DD" into a day number. Returns false on malformed input.
bool ParseDayNumber(const std::string& text, std::int64_t* day_number);

/// Day of week for a day number: 0 = Monday ... 6 = Sunday.
int DayOfWeek(std::int64_t day_number);

}  // namespace tnmine

#endif  // TNMINE_COMMON_DATE_H_
