#ifndef TNMINE_COMMON_THREAD_POOL_H_
#define TNMINE_COMMON_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <optional>
#include <thread>
#include <utility>
#include <vector>

#include "common/budget.h"

namespace tnmine::common {

/// How much parallelism a call may use. Every parallel entry point in
/// tnmine (the miners, Algorithm 1's repetition driver, the benches)
/// carries one of these in its options struct, so thread counts can be
/// pinned for reproducible benchmarks.
struct Parallelism {
  /// Worker lanes a call may occupy, including the calling thread.
  /// 0 means one lane per hardware thread
  /// (std::thread::hardware_concurrency()).
  std::size_t num_threads = 0;

  /// The effective lane count (never 0).
  std::size_t Resolve() const;

  /// Single-threaded execution: the exact sequential code path, no pool
  /// involvement.
  static Parallelism Serial() { return Parallelism{1}; }
};

/// Fixed-size worker pool with a blocking ParallelFor/ParallelMap API.
///
/// One shared pool (Shared()) serves the whole process; mining layers
/// never spawn threads of their own. Properties the miners rely on:
///
/// - **Deterministic results.** ParallelFor invokes fn(i) for every
///   i in [0, n) exactly once (any lane, any order); ParallelMap returns
///   results in input order. Callers that need a deterministic *output
///   sequence* combine per-index results in index order after the call.
/// - **Nested calls run inline.** A ParallelFor issued from inside a pool
///   lane executes serially on that lane. This makes nesting deadlock-free
///   (no lane ever blocks waiting for work that only itself could run) and
///   keeps the total lane count bounded by the pool size.
/// - **Exceptions propagate.** If any fn(i) throws, the job's cancel flag
///   is set so sibling lanes short-circuit before every not-yet-started
///   item, and the exception with the lowest index is rethrown on the
///   calling thread once all lanes have quiesced.
/// - **Cooperative cancellation.** Run/ParallelFor accept an optional
///   CancelToken; once it fires, not-yet-started items are skipped.
///   Skipped items never ran, so token-based calls are for fire-and-skip
///   loops — ParallelMap requires every slot and therefore polls budgets
///   inside fn instead of taking a token.
/// - **Multiple concurrent jobs are fair.** Jobs from different caller
///   threads queue FIFO; each caller always works on its own job, so a
///   busy pool degrades toward serial execution, never deadlock.
class ThreadPool {
 public:
  /// Pool with `num_threads` lanes total: the calling thread participates
  /// in every job it submits, so num_threads - 1 worker threads are
  /// spawned. num_threads == 1 means a purely inline, thread-free pool.
  explicit ThreadPool(std::size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Total lanes (worker threads + the caller's lane).
  std::size_t num_threads() const { return workers_.size() + 1; }

  /// The process-wide pool used by the free ParallelFor/ParallelMap.
  /// Sized max(2, hardware_concurrency) so concurrent code paths are
  /// exercised (and sanitizer-checked) even on single-core machines;
  /// effective parallelism is still capped per call by Parallelism.
  static ThreadPool& Shared();

  /// Runs fn(0) .. fn(n-1), using at most `max_threads` lanes (clamped to
  /// the pool size), and blocks until all items finished. When `cancel`
  /// is non-null and fires, items that have not started yet are skipped
  /// (the call still blocks until in-flight items settle). See the class
  /// comment for determinism / nesting / exception semantics.
  void Run(std::size_t n, std::size_t max_threads,
           const std::function<void(std::size_t)>& fn,
           const CancelToken* cancel = nullptr);

  /// Run() with all of the pool's lanes available.
  void ParallelFor(std::size_t n,
                   const std::function<void(std::size_t)>& fn,
                   const CancelToken* cancel = nullptr) {
    Run(n, num_threads(), fn, cancel);
  }

  /// Maps fn over [0, n); result i is fn(i), in input order.
  template <typename T, typename Fn>
  std::vector<T> ParallelMap(std::size_t n, Fn&& fn) {
    std::vector<std::optional<T>> slots(n);
    ParallelFor(n, [&](std::size_t i) { slots[i].emplace(fn(i)); });
    std::vector<T> out;
    out.reserve(n);
    for (std::optional<T>& slot : slots) out.push_back(std::move(*slot));
    return out;
  }

 private:
  struct Job;

  void WorkerLoop();
  void WorkOn(Job& job);

  std::vector<std::thread> workers_;
  std::mutex mu_;
  std::condition_variable work_available_;
  std::deque<std::shared_ptr<Job>> queue_;  // guarded by mu_
  bool shutting_down_ = false;              // guarded by mu_
};

/// Runs fn(0) .. fn(n-1) on the shared pool with at most par.Resolve()
/// lanes; blocks until done. With Parallelism::Serial() (or n <= 1, or
/// when called from inside a pool lane) this is a plain sequential loop.
/// A fired `cancel` token skips not-yet-started items.
void ParallelFor(const Parallelism& par, std::size_t n,
                 const std::function<void(std::size_t)>& fn,
                 const CancelToken* cancel = nullptr);

/// Maps fn over [0, n) on the shared pool; result i is fn(i), in input
/// order regardless of execution order.
template <typename T, typename Fn>
std::vector<T> ParallelMap(const Parallelism& par, std::size_t n, Fn&& fn) {
  std::vector<std::optional<T>> slots(n);
  ParallelFor(par, n, [&](std::size_t i) { slots[i].emplace(fn(i)); });
  std::vector<T> out;
  out.reserve(n);
  for (std::optional<T>& slot : slots) out.push_back(std::move(*slot));
  return out;
}

}  // namespace tnmine::common

#endif  // TNMINE_COMMON_THREAD_POOL_H_
