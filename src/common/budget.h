#ifndef TNMINE_COMMON_BUDGET_H_
#define TNMINE_COMMON_BUDGET_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <string_view>

namespace tnmine::common {

/// How a resource-governed run ended. Every mining entry point returns one
/// of these next to its (possibly partial) result, so callers can always
/// tell a truncated answer from a complete one. Ordered by severity:
/// CombineOutcomes keeps the larger value.
enum class MiningOutcome : std::uint8_t {
  kComplete = 0,
  /// The wall-clock deadline or the work-tick allotment ran out. Tick
  /// exhaustion is deterministic (see ResourceBudget); wall-clock is not.
  kDeadlineExceeded = 1,
  /// The memory ceiling tripped, or an allocation failure was absorbed at
  /// a work-unit boundary.
  kMemoryBudgetExceeded = 2,
  /// The CancelToken was fired (SIGINT, caller shutdown, ...).
  kCancelled = 3,
};

/// Stable lowercase label ("complete", "deadline_exceeded", ...), used in
/// CLI output and telemetry counter names.
const char* ToString(MiningOutcome outcome);

/// Severity-max merge for combining per-work-unit outcomes.
inline MiningOutcome CombineOutcomes(MiningOutcome a, MiningOutcome b) {
  return static_cast<std::uint8_t>(a) >= static_cast<std::uint8_t>(b) ? a
                                                                      : b;
}

/// Cooperative cancellation flag. RequestCancel is a single relaxed atomic
/// store, safe to call from any thread and from a signal handler (the
/// flag is lock-free); workers observe it at their next budget poll.
class CancelToken {
 public:
  void RequestCancel() { flag_.store(true, std::memory_order_relaxed); }
  bool cancelled() const { return flag_.load(std::memory_order_relaxed); }

 private:
  std::atomic<bool> flag_{false};
};

/// Resource ceilings for one governed run. A zero means "unlimited" for
/// that dimension; all-zero limits still buy outcome labelling, tick
/// accounting, and cancellation when attached to a ResourceBudget.
struct BudgetLimits {
  /// Total abstract work ticks the run may spend. Ticks meter the
  /// superlinear mining work (patterns grown, candidates considered,
  /// containment checks), not wall time, so the same allotment cuts the
  /// search at the same point on any machine and any thread count.
  std::uint64_t max_work_ticks = 0;
  /// Wall-clock ceiling, measured from ResourceBudget construction.
  std::uint64_t deadline_ms = 0;
  /// Ceiling on the estimated bytes charged via TryChargeMemory.
  std::uint64_t max_memory_bytes = 0;
};

/// Shared handle on one run's resource governance: a deterministic
/// work-tick allotment plus shared (atomic) deadline / memory / cancel
/// state. Cheap to copy; copies share the root state.
///
/// **Determinism contract.** The tick dimension is deterministic by
/// construction: allotments are split across work units with Slice()
/// *before* any parallel fan-out, each unit spends its slice through its
/// own BudgetMeter with no cross-thread communication, and therefore the
/// same max_work_ticks produces byte-identical partial results at any
/// thread count. The deadline, memory, and cancel dimensions are shared
/// mutable state and inherently scheduling-dependent; they trade
/// determinism for hard ceilings.
///
/// A default-constructed ResourceBudget is inert (active() == false) and
/// costs one branch per BudgetMeter::Charge — the miners' hot paths stay
/// unmetered unless a caller opts in.
class ResourceBudget {
 public:
  /// Inert budget: never stops anything, meters nothing.
  ResourceBudget() = default;

  /// Active budget. The deadline clock starts now. `cancel` may be null.
  explicit ResourceBudget(const BudgetLimits& limits,
                          std::shared_ptr<CancelToken> cancel = nullptr);

  /// False for the default-constructed inert budget.
  bool active() const { return root_ != nullptr; }

  /// This handle's work-tick allotment (meaningful when ticks_limited()).
  std::uint64_t tick_allotment() const { return ticks_; }
  bool ticks_limited() const { return ticks_limited_; }

  /// Deterministic tick split: unit i of n gets allotment/n ticks plus one
  /// of the remainder ticks when i < allotment % n. Deadline / memory /
  /// cancel state stays shared with the parent. Slicing an inert or
  /// tick-unlimited budget returns an equivalent handle.
  ResourceBudget Slice(std::size_t unit, std::size_t num_units) const;

  /// Sibling handle with an explicit tick allotment (shared root state).
  /// Used to split one slice between pipeline phases deterministically.
  ResourceBudget WithTicks(std::uint64_t ticks) const;

  bool cancelled() const;
  bool deadline_exceeded() const;

  /// Charges `bytes` against the memory ceiling. Returns false — and trips
  /// the sticky memory outcome — when the ceiling would be exceeded (the
  /// charge is rolled back). Always succeeds when no ceiling is set.
  /// Const because it mutates only shared root state, so budgets held in
  /// const options structs can still meter.
  bool TryChargeMemory(std::uint64_t bytes) const;
  /// Like TryChargeMemory, but a failed charge does NOT trip the sticky
  /// memory outcome. For callers with a recovery move left (the shard LRU
  /// evicts resident shards and retries); only the final, unrecoverable
  /// attempt should go through TryChargeMemory so a run that recovered
  /// still reports kComplete.
  bool TryChargeMemoryNoTrip(std::uint64_t bytes) const;
  void ReleaseMemory(std::uint64_t bytes) const;
  std::uint64_t memory_charged() const;

  /// Polls the shared stop conditions (cancel, wall-clock deadline, and
  /// the sticky memory trip) — everything except this handle's tick
  /// allotment. Returns kComplete when the run may continue. Stop reasons
  /// are sticky: once observed, every later poll reports at least that
  /// severity.
  MiningOutcome StopReason() const;

 private:
  struct Root {
    std::chrono::steady_clock::time_point deadline;
    bool has_deadline = false;
    std::uint64_t max_memory_bytes = 0;
    std::atomic<std::uint64_t> memory_charged{0};
    /// Sticky max-severity stop reason observed so far.
    std::atomic<std::uint8_t> tripped{0};
    std::shared_ptr<CancelToken> cancel;
  };

  std::shared_ptr<Root> root_;
  std::uint64_t ticks_ = 0;
  bool ticks_limited_ = false;
};

/// Per-work-unit spending meter: a local (thread-free, deterministic) tick
/// ledger over one ResourceBudget slice, plus a throttled poll of the
/// shared stop conditions. One meter belongs to exactly one work unit
/// (a gSpan seed subtree, an FSG run, a SUBDUE search); it must not be
/// shared across threads.
class BudgetMeter {
 public:
  /// Meter over an inert budget: Charge always returns kComplete and the
  /// compiler can hoist the single branch.
  BudgetMeter() = default;

  explicit BudgetMeter(const ResourceBudget& budget);

  /// Spends n ticks. Returns kComplete to keep going, otherwise the stop
  /// reason (tick exhaustion reports kDeadlineExceeded — the work-tick
  /// allotment is a deterministic deadline). Every 256th call also polls
  /// the shared stop conditions. Stops are sticky.
  MiningOutcome Charge(std::uint64_t n = 1) {
    if (!active_) return MiningOutcome::kComplete;
    return ChargeSlow(n);
  }

  /// Polls only the shared stop conditions (no tick spend, unthrottled).
  MiningOutcome Poll() const;

  /// Ticks spent through this meter, including the tick that exhausted
  /// the allotment. Deterministic for a fixed work unit.
  std::uint64_t ticks_spent() const { return spent_; }

  bool active() const { return active_; }

 private:
  MiningOutcome ChargeSlow(std::uint64_t n);

  ResourceBudget budget_;
  std::uint64_t remaining_ = 0;
  std::uint64_t spent_ = 0;
  std::uint64_t probe_ = 0;
  MiningOutcome stopped_ = MiningOutcome::kComplete;
  bool ticks_limited_ = false;
  bool active_ = false;
};

/// Records a non-complete outcome as the telemetry counter
/// `<subsystem>/outcome_<label>` (no-op for kComplete, and compiled to
/// nothing when telemetry is off). Gives RunReports an honest record of
/// every truncated run.
void RecordOutcome(std::string_view subsystem, MiningOutcome outcome);

}  // namespace tnmine::common

#endif  // TNMINE_COMMON_BUDGET_H_
