#include "common/csv.h"

#include <cstdio>
#include <cstring>

namespace tnmine {

namespace {

FILE* AsFile(void* p) { return static_cast<FILE*>(p); }

}  // namespace

bool ParseCsvLine(const std::string& line, std::vector<std::string>* fields) {
  fields->clear();
  std::string cur;
  bool in_quotes = false;
  std::size_t i = 0;
  const std::size_t n = line.size();
  while (i < n) {
    const char c = line[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < n && line[i + 1] == '"') {
          cur.push_back('"');
          i += 2;
        } else {
          in_quotes = false;
          ++i;
        }
      } else {
        cur.push_back(c);
        ++i;
      }
    } else {
      if (c == '"') {
        if (!cur.empty()) return false;  // quote in the middle of a field
        in_quotes = true;
        ++i;
      } else if (c == ',') {
        fields->push_back(std::move(cur));
        cur.clear();
        ++i;
      } else {
        cur.push_back(c);
        ++i;
      }
    }
  }
  if (in_quotes) return false;  // unterminated quote
  fields->push_back(std::move(cur));
  return true;
}

std::string EscapeCsvField(const std::string& field) {
  const bool needs_quotes =
      field.find_first_of(",\"\n\r") != std::string::npos;
  if (!needs_quotes) return field;
  std::string out = "\"";
  for (char c : field) {
    if (c == '"') out += "\"\"";
    else out.push_back(c);
  }
  out.push_back('"');
  return out;
}

CsvReader::CsvReader(const std::string& path) {
  FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    error_ = "cannot open " + path;
    return;
  }
  file_ = f;
  ok_ = true;
}

CsvReader::~CsvReader() {
  if (file_ != nullptr) std::fclose(AsFile(file_));
}

bool CsvReader::ReadRecord(std::vector<std::string>* fields) {
  if (!ok_ || file_ == nullptr) return false;
  std::string line;
  for (;;) {
    line.clear();
    int c;
    bool saw_any = false;
    while ((c = std::fgetc(AsFile(file_))) != EOF) {
      saw_any = true;
      if (c == '\n') break;
      if (c == '\r') continue;
      line.push_back(static_cast<char>(c));
    }
    if (!saw_any && line.empty()) return false;  // clean EOF
    ++line_number_;
    if (line.empty()) {
      if (c == EOF) return false;
      continue;  // skip blank line
    }
    if (!ParseCsvLine(line, fields)) {
      ok_ = false;
      error_ = "malformed CSV record at line " + std::to_string(line_number_);
      return false;
    }
    return true;
  }
}

CsvWriter::CsvWriter(const std::string& path) {
  FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    error_ = "cannot open " + path + " for writing";
    return;
  }
  file_ = f;
  ok_ = true;
}

CsvWriter::~CsvWriter() {
  if (file_ != nullptr) std::fclose(AsFile(file_));
}

void CsvWriter::WriteRecord(const std::vector<std::string>& fields) {
  if (!ok_) return;
  std::string line;
  for (std::size_t i = 0; i < fields.size(); ++i) {
    if (i > 0) line.push_back(',');
    line += EscapeCsvField(fields[i]);
  }
  line.push_back('\n');
  if (std::fwrite(line.data(), 1, line.size(), AsFile(file_)) != line.size()) {
    ok_ = false;
    error_ = "write failed";
  }
}

}  // namespace tnmine
