#include "common/csv.h"

#include <cstdio>
#include <cstring>

#include "common/failpoint.h"

namespace tnmine {

namespace {

FILE* AsFile(void* p) { return static_cast<FILE*>(p); }

/// Incremental CSV record parser shared by the streaming reader and
/// ParseCsvLine.
///
/// `next_char` is a getc-style callable returning the next byte or EOF.
/// Parses ONE record: fields separated by ',', fields optionally quoted
/// with '"', escaped quotes doubled. Inside quotes every byte — including
/// '\n' and '\r' — is preserved verbatim; outside quotes '\n' (or a bare
/// '\r', covering CRLF and classic-Mac line endings) terminates the
/// record. Records with no content at all (blank lines) are skipped.
///
/// `line`/`column` are updated as characters are consumed so errors carry
/// a position ('\n' advances the line and resets the column).
///
/// Returns 1 when a record was parsed into `fields`, 0 on clean
/// end-of-input with no record, -1 on a malformed record (with `error`
/// filled in).
template <typename GetC>
int ParseOneRecord(GetC&& next_char, std::size_t* line, std::size_t* column,
                   std::size_t* record_line, std::vector<std::string>* fields,
                   ParseError* error) {
  fields->clear();
  std::string cur;
  enum State {
    kRecordStart,  // nothing seen yet for this record
    kFieldStart,   // right after a comma
    kUnquoted,     // inside an unquoted field
    kQuoted,       // inside a quoted field
    kQuoteEnd,     // just saw a '"' inside a quoted field
  };
  State state = kRecordStart;
  auto fail = [&](const char* msg) {
    *error = ParseError::At(*line, *column, msg);
    return -1;
  };
  auto end_field = [&] {
    fields->push_back(std::move(cur));
    cur.clear();
  };
  for (;;) {
    const int ci = next_char();
    if (ci == EOF) {
      switch (state) {
        case kRecordStart:
          return 0;
        case kQuoted:
          return fail("unterminated quoted field at end of input");
        case kFieldStart:
        case kUnquoted:
        case kQuoteEnd:
          end_field();
          return 1;  // final record without trailing newline
      }
    }
    const char c = static_cast<char>(ci);
    ++*column;
    const bool is_terminator = (c == '\n' || c == '\r');
    if (is_terminator && state != kQuoted) {
      if (c == '\n') {
        ++*line;
        *column = 0;
      }
      if (state == kRecordStart) continue;  // blank line (or the LF of CRLF)
      end_field();
      return 1;
    }
    if (state == kRecordStart) *record_line = *line;
    switch (state) {
      case kRecordStart:
      case kFieldStart:
        if (c == '"') {
          state = kQuoted;
        } else if (c == ',') {
          end_field();
          state = kFieldStart;
        } else {
          cur.push_back(c);
          state = kUnquoted;
        }
        break;
      case kUnquoted:
        if (c == ',') {
          end_field();
          state = kFieldStart;
        } else if (c == '"') {
          return fail("quote inside unquoted field");
        } else {
          cur.push_back(c);
        }
        break;
      case kQuoted:
        if (c == '"') {
          state = kQuoteEnd;
        } else {
          if (c == '\n') {
            ++*line;
            *column = 0;
          }
          cur.push_back(c);
        }
        break;
      case kQuoteEnd:
        if (c == '"') {
          cur.push_back('"');  // escaped quote
          state = kQuoted;
        } else if (c == ',') {
          end_field();
          state = kFieldStart;
        } else {
          return fail("unexpected character after closing quote");
        }
        break;
    }
  }
}

}  // namespace

bool ParseCsvLine(const std::string& line, std::vector<std::string>* fields) {
  if (line.empty()) {
    fields->assign(1, std::string());
    return true;
  }
  std::size_t i = 0;
  auto next_char = [&]() -> int {
    return i < line.size() ? static_cast<unsigned char>(line[i++]) : EOF;
  };
  std::size_t ln = 1, col = 0, record_ln = 1;
  ParseError err;
  const int r = ParseOneRecord(next_char, &ln, &col, &record_ln, fields, &err);
  // Reject records that end before the string does (an unquoted embedded
  // newline) — this function is documented as single-record.
  return r == 1 && i == line.size();
}

std::string EscapeCsvField(const std::string& field) {
  const bool needs_quotes =
      field.find_first_of(",\"\n\r") != std::string::npos;
  if (!needs_quotes) return field;
  std::string out = "\"";
  for (char c : field) {
    if (c == '"') out += "\"\"";
    else out.push_back(c);
  }
  out.push_back('"');
  return out;
}

CsvReader::CsvReader(const std::string& path) {
  FILE* f = TNMINE_FAILPOINT("csv/open_read")
                ? nullptr
                : std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    error_ = "cannot open " + path;
    parse_error_.message = error_;
    return;
  }
  file_ = f;
  ok_ = true;
}

CsvReader::~CsvReader() {
  if (file_ != nullptr) std::fclose(AsFile(file_));
}

bool CsvReader::ReadRecord(std::vector<std::string>* fields) {
  if (!ok_ || file_ == nullptr) return false;
  FILE* f = AsFile(file_);
  auto next_char = [f]() -> int { return std::fgetc(f); };
  record_line_ = current_line_;
  const int r =
      ParseOneRecord(next_char, &current_line_, &current_column_,
                     &record_line_, fields, &parse_error_);
  if (r == 1) return true;
  if (r == -1) {
    ok_ = false;
    error_ = parse_error_.ToString();
  }
  return false;
}

CsvWriter::CsvWriter(const std::string& path) {
  FILE* f = TNMINE_FAILPOINT("csv/open_write")
                ? nullptr
                : std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    error_ = "cannot open " + path + " for writing";
    return;
  }
  file_ = f;
  ok_ = true;
}

CsvWriter::~CsvWriter() {
  if (file_ != nullptr) std::fclose(AsFile(file_));
}

void CsvWriter::WriteRecord(const std::vector<std::string>& fields) {
  if (!ok_) return;
  std::string line;
  if (fields.size() == 1 && fields[0].empty()) {
    // A lone empty field would serialize to a blank line, which readers
    // skip; quote it so the record survives the round trip.
    line = "\"\"";
  } else {
    for (std::size_t i = 0; i < fields.size(); ++i) {
      if (i > 0) line.push_back(',');
      line += EscapeCsvField(fields[i]);
    }
  }
  line.push_back('\n');
  if (std::fwrite(line.data(), 1, line.size(), AsFile(file_)) != line.size()) {
    ok_ = false;
    error_ = "write failed";
  }
}

}  // namespace tnmine
