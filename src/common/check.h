#ifndef TNMINE_COMMON_CHECK_H_
#define TNMINE_COMMON_CHECK_H_

#include <cstdio>
#include <cstdlib>

/// Invariant checking for tnmine.
///
/// TNMINE_CHECK aborts the process with a source location when the condition
/// fails. It is always on (benchmark-critical inner loops use
/// TNMINE_DCHECK, which compiles away in NDEBUG builds). The library does
/// not throw exceptions across its API boundary; programming errors fail
/// fast instead.
#define TNMINE_CHECK(cond)                                                  \
  do {                                                                      \
    if (!(cond)) {                                                          \
      std::fprintf(stderr, "TNMINE_CHECK failed at %s:%d: %s\n", __FILE__,  \
                   __LINE__, #cond);                                        \
      std::abort();                                                         \
    }                                                                       \
  } while (0)

/// Like TNMINE_CHECK but with a printf-style explanatory message.
#define TNMINE_CHECK_MSG(cond, ...)                                         \
  do {                                                                      \
    if (!(cond)) {                                                          \
      std::fprintf(stderr, "TNMINE_CHECK failed at %s:%d: %s: ", __FILE__,  \
                   __LINE__, #cond);                                        \
      std::fprintf(stderr, __VA_ARGS__);                                    \
      std::fprintf(stderr, "\n");                                           \
      std::abort();                                                         \
    }                                                                       \
  } while (0)

#ifdef NDEBUG
#define TNMINE_DCHECK(cond) \
  do {                      \
  } while (0)
#else
#define TNMINE_DCHECK(cond) TNMINE_CHECK(cond)
#endif

#endif  // TNMINE_COMMON_CHECK_H_
