#ifndef TNMINE_COMMON_CHECK_H_
#define TNMINE_COMMON_CHECK_H_

#include <cstdarg>
#include <stdexcept>
#include <string>

/// Invariant checking for tnmine.
///
/// TNMINE_CHECK throws tnmine::CheckError (carrying file, line, and the
/// failed expression) when the condition fails, so harnesses like
/// tnmine_cli and fuzz_io can report the violation and exit cleanly
/// instead of dumping core. It is always on (benchmark-critical inner
/// loops use TNMINE_DCHECK, which compiles away in NDEBUG builds).
///
/// Under the sanitizer presets (-DTNMINE_CHECK_ABORTS=ON, set
/// automatically when TNMINE_SANITIZE is non-empty) a failed check
/// aborts instead: sanitizers produce their report at the point of
/// failure, and an exception unwinding through the stack would destroy
/// the evidence.
namespace tnmine {

/// A failed TNMINE_CHECK. what() is the full human-readable message.
class CheckError : public std::logic_error {
 public:
  CheckError(const char* file, int line, const char* expression,
             const std::string& message)
      : std::logic_error(Format(file, line, expression, message)),
        file_(file),
        line_(line),
        expression_(expression) {}

  const char* file() const { return file_; }
  int line() const { return line_; }
  const char* expression() const { return expression_; }

 private:
  static std::string Format(const char* file, int line,
                            const char* expression,
                            const std::string& message);

  const char* file_;
  int line_;
  const char* expression_;
};

namespace internal {

/// Out-of-line failure paths keep the macro expansion small. Both are
/// [[noreturn]]: they throw CheckError, or abort with the message on
/// stderr when TNMINE_CHECK_ABORTS is defined.
[[noreturn]] void CheckFailed(const char* file, int line,
                              const char* expression);
[[noreturn]] void CheckFailedMsg(const char* file, int line,
                                 const char* expression, const char* format,
                                 ...) __attribute__((format(printf, 4, 5)));

}  // namespace internal
}  // namespace tnmine

#define TNMINE_CHECK(cond)                                            \
  do {                                                                \
    if (!(cond)) {                                                    \
      ::tnmine::internal::CheckFailed(__FILE__, __LINE__, #cond);     \
    }                                                                 \
  } while (0)

/// Like TNMINE_CHECK but with a printf-style explanatory message.
#define TNMINE_CHECK_MSG(cond, ...)                                   \
  do {                                                                \
    if (!(cond)) {                                                    \
      ::tnmine::internal::CheckFailedMsg(__FILE__, __LINE__, #cond,   \
                                         __VA_ARGS__);                \
    }                                                                 \
  } while (0)

#ifdef NDEBUG
#define TNMINE_DCHECK(cond) \
  do {                      \
  } while (0)
#else
#define TNMINE_DCHECK(cond) TNMINE_CHECK(cond)
#endif

#endif  // TNMINE_COMMON_CHECK_H_
