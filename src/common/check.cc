#include "common/check.h"

#include <cstdarg>
#include <cstdio>
#include <cstdlib>

namespace tnmine {

std::string CheckError::Format(const char* file, int line,
                               const char* expression,
                               const std::string& message) {
  std::string out = "TNMINE_CHECK failed at ";
  out += file;
  out += ':';
  out += std::to_string(line);
  out += ": ";
  out += expression;
  if (!message.empty()) {
    out += ": ";
    out += message;
  }
  return out;
}

namespace internal {
namespace {

[[noreturn]] void Fail(const char* file, int line, const char* expression,
                       const std::string& message) {
#if defined(TNMINE_CHECK_ABORTS)
  std::fprintf(stderr, "%s\n",
               CheckError(file, line, expression, message).what());
  std::abort();
#else
  throw CheckError(file, line, expression, message);
#endif
}

}  // namespace

void CheckFailed(const char* file, int line, const char* expression) {
  Fail(file, line, expression, std::string());
}

void CheckFailedMsg(const char* file, int line, const char* expression,
                    const char* format, ...) {
  char buffer[512];
  va_list args;
  va_start(args, format);
  std::vsnprintf(buffer, sizeof(buffer), format, args);
  va_end(args);
  Fail(file, line, expression, buffer);
}

}  // namespace internal
}  // namespace tnmine
