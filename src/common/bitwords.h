#ifndef TNMINE_COMMON_BITWORDS_H_
#define TNMINE_COMMON_BITWORDS_H_

#include <bit>
#include <cstdint>
#include <span>
#include <vector>

namespace tnmine::common {

/// Word-aligned bitset primitives shared by pattern::TidSet (compressed
/// transaction-id sets) and the VF2 candidate-domain pruning in
/// iso::SubgraphMatcher. The iteration idiom is the classic ctz walk:
/// peel the lowest set bit with countr_zero, clear it with `word &
/// (word - 1)`, repeat — so enumerating a word costs one iteration per
/// set bit, not one per bit.

inline constexpr std::size_t kBitsPerWord = 64;

inline constexpr std::size_t WordsForBits(std::size_t nbits) {
  return (nbits + kBitsPerWord - 1) / kBitsPerWord;
}

/// Calls fn(bit_index) for every set bit of `words`, ascending.
template <typename Fn>
void ForEachSetBit(std::span<const std::uint64_t> words, Fn&& fn) {
  for (std::size_t w = 0; w < words.size(); ++w) {
    std::uint64_t word = words[w];
    while (word != 0) {
      fn(static_cast<std::uint32_t>(w * kBitsPerWord +
                                    std::countr_zero(word)));
      word &= word - 1;
    }
  }
}

/// Reusable scratch bitset that remembers which word range Set() dirtied,
/// so the next ClearTouched() re-zeroes only that range. Rebuilding a
/// small candidate domain over a large vertex space therefore costs
/// O(domain), not O(universe) — the property the per-depth VF2 domains
/// rely on when the target is a full host graph rather than a small
/// transaction.
class ScratchBitset {
 public:
  /// Grows the word store to cover `nbits` bits (new words zeroed; never
  /// shrinks, so pooled instances keep their warmed capacity).
  void EnsureBits(std::size_t nbits) {
    const std::size_t words = WordsForBits(nbits);
    if (words_.size() < words) words_.resize(words, 0);
  }

  /// Zeroes the words dirtied since the last clear and resets the range.
  void ClearTouched() {
    for (std::size_t w = lo_; w < hi_; ++w) words_[w] = 0;
    lo_ = kNoWord;
    hi_ = 0;
  }

  /// Zeroes everything (used when individual Clear() calls may have been
  /// skipped by an exceptional unwind).
  void ClearAll() {
    words_.assign(words_.size(), 0);
    lo_ = kNoWord;
    hi_ = 0;
  }

  void Set(std::uint32_t i) {
    const std::size_t w = i / kBitsPerWord;
    words_[w] |= std::uint64_t{1} << (i % kBitsPerWord);
    if (w < lo_) lo_ = w;
    if (w + 1 > hi_) hi_ = w + 1;
  }
  /// Clears one bit without shrinking the touched range.
  void Clear(std::uint32_t i) {
    words_[i / kBitsPerWord] &= ~(std::uint64_t{1} << (i % kBitsPerWord));
  }
  bool Test(std::uint32_t i) const {
    return (words_[i / kBitsPerWord] >> (i % kBitsPerWord)) & 1;
  }

  std::uint64_t word(std::size_t w) const { return words_[w]; }
  std::size_t touched_begin() const { return lo_ == kNoWord ? 0 : lo_; }
  std::size_t touched_end() const { return hi_; }

  std::uint64_t MemoryBytes() const {
    return sizeof(*this) + words_.capacity() * sizeof(std::uint64_t);
  }

 private:
  static constexpr std::size_t kNoWord = ~std::size_t{0};

  std::vector<std::uint64_t> words_;
  std::size_t lo_ = kNoWord;  // dirtied word range [lo_, hi_)
  std::size_t hi_ = 0;
};

}  // namespace tnmine::common

#endif  // TNMINE_COMMON_BITWORDS_H_
