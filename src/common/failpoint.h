#ifndef TNMINE_COMMON_FAILPOINT_H_
#define TNMINE_COMMON_FAILPOINT_H_

#include <cstdint>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

/// Deterministic fault injection. A failpoint is a named site in
/// production code — `if (TNMINE_FAILPOINT("csv/reader_open")) ...` —
/// that normally evaluates to false with the cost of one relaxed atomic
/// load. Tests and stress harnesses Arm() a site to fire on its Nth hit,
/// injecting an allocation failure (throws std::bad_alloc), a simulated
/// I/O error (the macro returns true and the call site takes its error
/// path), or a worker-thread exception (throws InjectedFault). Hits are
/// counted per site, so "fire on hit 3" reproduces exactly on replay.
///
/// Configure with -DTNMINE_FAILPOINTS=OFF to define
/// TNMINE_FAILPOINTS_DISABLED: every macro site compiles to `(false)` and
/// the branch folds away. The registry functions below stay compiled so
/// harness code links either way (arming is a no-op that reports failure).
#if defined(TNMINE_FAILPOINTS_DISABLED)
#define TNMINE_FAILPOINTS_ENABLED 0
#else
#define TNMINE_FAILPOINTS_ENABLED 1
#endif

namespace tnmine::failpoint {

/// Thrown by sites armed with Kind::kThrow — models an unexpected
/// exception escaping a worker task (distinct from std::bad_alloc, which
/// miners absorb at work-unit boundaries; this one must propagate).
class InjectedFault : public std::runtime_error {
 public:
  explicit InjectedFault(std::string_view site)
      : std::runtime_error("injected fault at failpoint: " +
                           std::string(site)),
        site_(site) {}
  const std::string& site() const { return site_; }

 private:
  std::string site_;
};

enum class Kind : std::uint8_t {
  kBadAlloc,  ///< site throws std::bad_alloc
  kIoError,   ///< site's macro returns true (caller takes error path)
  kThrow,     ///< site throws InjectedFault
};

const char* KindName(Kind kind);

/// Arms `site` to fire once, on its `fire_at_hit`-th hit (1-based),
/// counting from this call. Returns false when failpoints are compiled
/// out. Arming is process-global; not intended for use while worker
/// threads are mid-flight (arm, run the workload, inspect, DisarmAll).
bool Arm(std::string_view site, Kind kind, std::uint64_t fire_at_hit = 1);

/// Arms from a "site:kind[:hit]" spec, kind in {alloc, io, throw} —
/// e.g. "gspan/grow:alloc:5". Returns false on a malformed spec or when
/// compiled out.
bool ArmFromSpec(std::string_view spec);

void DisarmAll();

/// Starts recording distinct site names (and resets hit/injection
/// tallies). Recording also takes the slow path on every hit, so keep it
/// to site-discovery sweeps.
void StartRecording();

/// Distinct sites hit since StartRecording(), sorted. This is how the
/// stress harness discovers the full site inventory to sweep.
std::vector<std::string> SitesSeen();

/// Hits observed at `site` since the last StartRecording()/Arm() reset
/// of that site's counter.
std::uint64_t HitCount(std::string_view site);

/// Total faults injected since the last StartRecording()/DisarmAll().
std::uint64_t InjectionCount();

/// Site of the most recent injection ("" when none). fuzz_io writes this
/// into failure artifacts so CI reproduces injected faults exactly.
std::string LastInjectedSite();

/// Implementation hook behind TNMINE_FAILPOINT. Returns true when an
/// armed kIoError fires; throws for kBadAlloc / kThrow.
bool Hit(std::string_view site);

/// True when any site is armed or recording is on (one relaxed load).
bool Active();

}  // namespace tnmine::failpoint

#if TNMINE_FAILPOINTS_ENABLED
#define TNMINE_FAILPOINT(site)                  \
  (::tnmine::failpoint::Active() ? ::tnmine::failpoint::Hit(site) : false)
#else
#define TNMINE_FAILPOINT(site) (false)
#endif

#endif  // TNMINE_COMMON_FAILPOINT_H_
