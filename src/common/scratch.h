#ifndef TNMINE_COMMON_SCRATCH_H_
#define TNMINE_COMMON_SCRATCH_H_

#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

namespace tnmine::common {

/// Global scratch-pool statistics, always on (independent of the
/// TNMINE_TELEMETRY kill switch) so tests can assert steady-state
/// allocation-freedom even in telemetry-off builds.
///
/// `acquires` is a deterministic function of the work performed (one per
/// lease taken). `reuse_hits` and `fresh_allocs` split those acquires by
/// whether a pooled object was available on the acquiring thread; the
/// split depends on which thread ran which work unit, so — like the
/// `threadpool/*` counters (DESIGN.md §9) — it is scheduling-dependent
/// and legitimately varies across thread counts.
struct ScratchStats {
  std::uint64_t acquires = 0;
  std::uint64_t reuse_hits = 0;
  std::uint64_t fresh_allocs = 0;
};

ScratchStats GetScratchStats();
void ResetScratchStats();

namespace internal {
/// Records one lease acquisition (also mirrored to the telemetry
/// counters scratch/acquires and scratch/reuse_hits|fresh_allocs).
void NoteScratchAcquire(bool fresh);
}  // namespace internal

/// RAII lease of a reusable scratch object from a per-thread free list.
///
/// T must be default-constructible and expose `void Reset()` that clears
/// logical contents while KEEPING allocated capacity (clear() vectors,
/// don't shrink them). Reset() runs on every acquisition, so a lease
/// always starts logically empty; after the first few leases on a thread
/// have warmed the pooled objects' capacities, steady-state inner loops
/// that route their temporaries through a lease perform no heap
/// allocation at all.
///
/// Lifetime rules (DESIGN.md §11):
///  - a lease lives on the stack of the acquiring thread and must be
///    released (destroyed) on that same thread;
///  - leases may nest (recursion acquiring a second object is fine) up to
///    the per-thread pool cap, past which extra objects are simply freed;
///  - pooled objects die with their thread, so pool memory is bounded by
///    threads x kMaxPooledPerThread x per-object high-water capacity.
template <typename T>
class ScratchLease {
 public:
  ScratchLease() {
    auto& pool = Pool();
    if (pool.empty()) {
      obj_ = std::make_unique<T>();
      internal::NoteScratchAcquire(/*fresh=*/true);
    } else {
      obj_ = std::move(pool.back());
      pool.pop_back();
      internal::NoteScratchAcquire(/*fresh=*/false);
    }
    obj_->Reset();
  }
  ~ScratchLease() {
    auto& pool = Pool();
    if (pool.size() < kMaxPooledPerThread) pool.push_back(std::move(obj_));
  }
  ScratchLease(const ScratchLease&) = delete;
  ScratchLease& operator=(const ScratchLease&) = delete;

  T* operator->() { return obj_.get(); }
  T& operator*() { return *obj_; }
  T* get() { return obj_.get(); }

 private:
  static constexpr std::size_t kMaxPooledPerThread = 8;

  static std::vector<std::unique_ptr<T>>& Pool() {
    thread_local std::vector<std::unique_ptr<T>> pool;
    return pool;
  }

  std::unique_ptr<T> obj_;
};

}  // namespace tnmine::common

#endif  // TNMINE_COMMON_SCRATCH_H_
