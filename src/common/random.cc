#include "common/random.h"

#include <cmath>

#include "common/check.h"

namespace tnmine {
namespace {

std::uint64_t SplitMix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9E3779B97F4A7C15ULL);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

std::uint64_t Rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& lane : s_) lane = SplitMix64(sm);
}

std::uint64_t Rng::Next() {
  const std::uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

std::uint64_t Rng::NextBounded(std::uint64_t bound) {
  TNMINE_DCHECK(bound > 0);
  // Lemire's method: multiply-shift with rejection to remove modulo bias.
  std::uint64_t x = Next();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  std::uint64_t low = static_cast<std::uint64_t>(m);
  if (low < bound) {
    std::uint64_t threshold = -bound % bound;
    while (low < threshold) {
      x = Next();
      m = static_cast<__uint128_t>(x) * bound;
      low = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

std::int64_t Rng::NextInt(std::int64_t lo, std::int64_t hi) {
  TNMINE_DCHECK(lo <= hi);
  const std::uint64_t span =
      static_cast<std::uint64_t>(hi) - static_cast<std::uint64_t>(lo) + 1;
  if (span == 0) return static_cast<std::int64_t>(Next());  // full range
  return lo + static_cast<std::int64_t>(NextBounded(span));
}

double Rng::NextDouble() {
  // 53 high bits -> [0, 1).
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

double Rng::NextDouble(double lo, double hi) {
  return lo + (hi - lo) * NextDouble();
}

bool Rng::NextBool(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return NextDouble() < p;
}

double Rng::NextGaussian() {
  // Box–Muller; draw u1 away from zero to keep log() finite.
  double u1 = NextDouble();
  while (u1 <= 0.0) u1 = NextDouble();
  const double u2 = NextDouble();
  return std::sqrt(-2.0 * std::log(u1)) * std::cos(2.0 * M_PI * u2);
}

double Rng::NextGaussian(double mu, double sigma) {
  TNMINE_DCHECK(sigma >= 0.0);
  return mu + sigma * NextGaussian();
}

double Rng::NextLogNormal(double mu_log, double sigma_log) {
  return std::exp(NextGaussian(mu_log, sigma_log));
}

double Rng::NextExponential(double lambda) {
  TNMINE_DCHECK(lambda > 0.0);
  double u = NextDouble();
  while (u <= 0.0) u = NextDouble();
  return -std::log(u) / lambda;
}

std::uint64_t Rng::NextZipf(std::uint64_t n, double s) {
  TNMINE_DCHECK(n > 0);
  TNMINE_DCHECK(s > 0.0);
  if (n == 1) return 0;
  // Rejection sampling against the continuous envelope (Devroye / Gray).
  const double nd = static_cast<double>(n);
  if (std::fabs(s - 1.0) < 1e-9) {
    // Harmonic case: invert H(x) = ln(1 + x).
    const double h_n = std::log(nd + 1.0);
    for (;;) {
      const double u = NextDouble() * h_n;
      const double x = std::exp(u) - 1.0;
      const std::uint64_t k = static_cast<std::uint64_t>(x);
      if (k >= n) continue;
      const double accept =
          (1.0 / static_cast<double>(k + 1)) /
          (std::log((static_cast<double>(k) + 2.0) /
                    (static_cast<double>(k) + 1.0)));
      if (NextDouble() * accept <= 1.0) return k;
    }
  }
  const double one_minus_s = 1.0 - s;
  const double h_n = (std::pow(nd + 1.0, one_minus_s) - 1.0) / one_minus_s;
  for (;;) {
    const double u = NextDouble() * h_n;
    const double x = std::pow(u * one_minus_s + 1.0, 1.0 / one_minus_s) - 1.0;
    std::uint64_t k = static_cast<std::uint64_t>(x);
    if (k >= n) continue;
    const double kd = static_cast<double>(k);
    const double envelope =
        (std::pow(kd + 2.0, one_minus_s) - std::pow(kd + 1.0, one_minus_s)) /
        one_minus_s;
    const double target = std::pow(kd + 1.0, -s);
    if (NextDouble() * envelope <= target) return k;
  }
}

std::size_t Rng::NextWeighted(const std::vector<double>& weights) {
  TNMINE_DCHECK(!weights.empty());
  double total = 0.0;
  for (double w : weights) {
    TNMINE_DCHECK(w >= 0.0);
    total += w;
  }
  TNMINE_DCHECK(total > 0.0);
  double target = NextDouble() * total;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    target -= weights[i];
    if (target < 0.0) return i;
  }
  return weights.size() - 1;  // numeric slack lands on the last item
}

Rng Rng::Fork() { return Rng(Next()); }

}  // namespace tnmine
