#include "common/budget.h"

#include <string>

#include "common/telemetry.h"

namespace tnmine::common {

const char* ToString(MiningOutcome outcome) {
  switch (outcome) {
    case MiningOutcome::kComplete:
      return "complete";
    case MiningOutcome::kDeadlineExceeded:
      return "deadline_exceeded";
    case MiningOutcome::kMemoryBudgetExceeded:
      return "memory_budget_exceeded";
    case MiningOutcome::kCancelled:
      return "cancelled";
  }
  return "unknown";
}

ResourceBudget::ResourceBudget(const BudgetLimits& limits,
                               std::shared_ptr<CancelToken> cancel)
    : root_(std::make_shared<Root>()),
      ticks_(limits.max_work_ticks),
      ticks_limited_(limits.max_work_ticks != 0) {
  if (limits.deadline_ms != 0) {
    root_->has_deadline = true;
    root_->deadline = std::chrono::steady_clock::now() +
                      std::chrono::milliseconds(limits.deadline_ms);
  }
  root_->max_memory_bytes = limits.max_memory_bytes;
  root_->cancel = std::move(cancel);
}

ResourceBudget ResourceBudget::Slice(std::size_t unit,
                                     std::size_t num_units) const {
  if (!ticks_limited_ || num_units <= 1) return *this;
  ResourceBudget slice = *this;
  const std::uint64_t base = ticks_ / num_units;
  const std::uint64_t remainder = ticks_ % num_units;
  slice.ticks_ = base + (unit < remainder ? 1 : 0);
  return slice;
}

ResourceBudget ResourceBudget::WithTicks(std::uint64_t ticks) const {
  ResourceBudget sibling = *this;
  if (sibling.ticks_limited_) sibling.ticks_ = ticks;
  return sibling;
}

bool ResourceBudget::cancelled() const {
  return root_ != nullptr && root_->cancel != nullptr &&
         root_->cancel->cancelled();
}

bool ResourceBudget::deadline_exceeded() const {
  return root_ != nullptr && root_->has_deadline &&
         std::chrono::steady_clock::now() >= root_->deadline;
}

bool ResourceBudget::TryChargeMemory(std::uint64_t bytes) const {
  if (root_ == nullptr) return true;
  const std::uint64_t charged =
      root_->memory_charged.fetch_add(bytes, std::memory_order_relaxed) +
      bytes;
  if (root_->max_memory_bytes != 0 && charged > root_->max_memory_bytes) {
    root_->memory_charged.fetch_sub(bytes, std::memory_order_relaxed);
    std::uint8_t cur = root_->tripped.load(std::memory_order_relaxed);
    const auto memory =
        static_cast<std::uint8_t>(MiningOutcome::kMemoryBudgetExceeded);
    while (cur < memory && !root_->tripped.compare_exchange_weak(
                               cur, memory, std::memory_order_relaxed)) {
    }
    return false;
  }
  return true;
}

bool ResourceBudget::TryChargeMemoryNoTrip(std::uint64_t bytes) const {
  if (root_ == nullptr) return true;
  const std::uint64_t charged =
      root_->memory_charged.fetch_add(bytes, std::memory_order_relaxed) +
      bytes;
  if (root_->max_memory_bytes != 0 && charged > root_->max_memory_bytes) {
    root_->memory_charged.fetch_sub(bytes, std::memory_order_relaxed);
    return false;
  }
  return true;
}

void ResourceBudget::ReleaseMemory(std::uint64_t bytes) const {
  if (root_ != nullptr) {
    root_->memory_charged.fetch_sub(bytes, std::memory_order_relaxed);
  }
}

std::uint64_t ResourceBudget::memory_charged() const {
  return root_ == nullptr
             ? 0
             : root_->memory_charged.load(std::memory_order_relaxed);
}

MiningOutcome ResourceBudget::StopReason() const {
  if (root_ == nullptr) return MiningOutcome::kComplete;
  MiningOutcome reason = static_cast<MiningOutcome>(
      root_->tripped.load(std::memory_order_relaxed));
  if (cancelled()) {
    reason = CombineOutcomes(reason, MiningOutcome::kCancelled);
  } else if (reason < MiningOutcome::kDeadlineExceeded &&
             deadline_exceeded()) {
    reason = CombineOutcomes(reason, MiningOutcome::kDeadlineExceeded);
  }
  if (reason != MiningOutcome::kComplete) {
    std::uint8_t cur = root_->tripped.load(std::memory_order_relaxed);
    const auto raw = static_cast<std::uint8_t>(reason);
    while (cur < raw && !root_->tripped.compare_exchange_weak(
                            cur, raw, std::memory_order_relaxed)) {
    }
  }
  return reason;
}

BudgetMeter::BudgetMeter(const ResourceBudget& budget)
    : budget_(budget),
      remaining_(budget.tick_allotment()),
      ticks_limited_(budget.ticks_limited()),
      active_(budget.active()) {}

MiningOutcome BudgetMeter::ChargeSlow(std::uint64_t n) {
  if (stopped_ != MiningOutcome::kComplete) return stopped_;
  spent_ += n;
  if (ticks_limited_) {
    if (remaining_ < n) {
      remaining_ = 0;
      stopped_ = MiningOutcome::kDeadlineExceeded;
      return stopped_;
    }
    remaining_ -= n;
  }
  // Poll the shared stop conditions on the first charge (prompt reaction
  // to a cancel fired before the unit started) and every 256th after.
  if ((probe_++ & 255) == 0) {
    stopped_ = CombineOutcomes(stopped_, budget_.StopReason());
  }
  return stopped_;
}

MiningOutcome BudgetMeter::Poll() const {
  if (!active_) return MiningOutcome::kComplete;
  if (stopped_ != MiningOutcome::kComplete) return stopped_;
  return budget_.StopReason();
}

void RecordOutcome(std::string_view subsystem, MiningOutcome outcome) {
#if TNMINE_TELEMETRY_ENABLED
  if (outcome == MiningOutcome::kComplete) return;
  std::string name;
  name.reserve(subsystem.size() + 32);
  name.append(subsystem);
  name.append("/outcome_");
  name.append(ToString(outcome));
  telemetry::Registry::Global().GetCounter(name).Add(1);
#else
  (void)subsystem;
  (void)outcome;
#endif
}

}  // namespace tnmine::common
