#ifndef TNMINE_COMMON_TELEMETRY_H_
#define TNMINE_COMMON_TELEMETRY_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "common/statistics.h"

/// Compile-time kill switch. Configure with -DTNMINE_TELEMETRY=OFF (see the
/// root CMakeLists) to define TNMINE_TELEMETRY_DISABLED and compile every
/// TNMINE_COUNTER_* / TNMINE_GAUGE_* / TNMINE_TRACE_SPAN macro to a no-op
/// that does not evaluate its arguments. The registry classes below still
/// exist in OFF builds (RunReports stay writable, just empty), only the
/// instrumentation call sites vanish.
#if defined(TNMINE_TELEMETRY_DISABLED)
#define TNMINE_TELEMETRY_ENABLED 0
#else
#define TNMINE_TELEMETRY_ENABLED 1
#endif

namespace tnmine::telemetry {

/// Worker-lane shards per metric. Each thread hashes to one cache-line-
/// padded slot, so concurrent Add()s from different pool lanes touch
/// different cache lines; reads merge the shards. 16 covers the shared
/// pool on any machine this project targets (contention on a shared slot
/// is still correct, just slower).
inline constexpr std::size_t kMetricShards = 16;

/// Index of the calling thread's metric shard (assigned round-robin on
/// first use, stable for the thread's lifetime).
std::size_t ThisThreadShard();

/// Monotonic counter. Add() is wait-free (one relaxed fetch_add on the
/// calling thread's shard); Value() merges the shards — exact, because
/// every increment lands in exactly one shard.
class Counter {
 public:
  void Add(std::uint64_t n) {
    shards_[ThisThreadShard()].value.fetch_add(n,
                                               std::memory_order_relaxed);
  }
  std::uint64_t Value() const {
    std::uint64_t total = 0;
    for (const Shard& s : shards_) {
      total += s.value.load(std::memory_order_relaxed);
    }
    return total;
  }
  void Reset() {
    for (Shard& s : shards_) s.value.store(0, std::memory_order_relaxed);
  }

 private:
  struct alignas(64) Shard {
    std::atomic<std::uint64_t> value{0};
  };
  std::array<Shard, kMetricShards> shards_;
};

/// Last-write-wins scalar (plus a monotonic-max variant). Used for ratios
/// and sizes that describe a run rather than accumulate over it.
class Gauge {
 public:
  void Set(double v) { bits_.store(Encode(v), std::memory_order_relaxed); }
  void SetMax(double v) {
    std::uint64_t cur = bits_.load(std::memory_order_relaxed);
    while (Decode(cur) < v &&
           !bits_.compare_exchange_weak(cur, Encode(v),
                                        std::memory_order_relaxed)) {
    }
  }
  double Value() const {
    return Decode(bits_.load(std::memory_order_relaxed));
  }
  void Reset() { Set(0.0); }

 private:
  static std::uint64_t Encode(double v) {
    std::uint64_t bits;
    static_assert(sizeof(bits) == sizeof(v));
    __builtin_memcpy(&bits, &v, sizeof(bits));
    return bits;
  }
  static double Decode(std::uint64_t bits) {
    double v;
    __builtin_memcpy(&v, &bits, sizeof(v));
    return v;
  }
  std::atomic<std::uint64_t> bits_{0};
};

/// Log2-bucketed latency histogram over nanoseconds: bucket i counts
/// durations in [2^i, 2^(i+1)) ns, so 64 buckets cover any uint64
/// duration. Snapshot() renders the occupied range as the same
/// HistogramBucket rows statistics.h produces, keeping bench/report
/// consumers on one bucket vocabulary.
class LatencyHistogram {
 public:
  void RecordNanos(std::uint64_t nanos) {
    buckets_[BucketOf(nanos)].fetch_add(1, std::memory_order_relaxed);
    total_nanos_.fetch_add(nanos, std::memory_order_relaxed);
  }
  std::uint64_t Count() const;
  std::uint64_t TotalNanos() const {
    return total_nanos_.load(std::memory_order_relaxed);
  }
  /// Occupied buckets as [2^i, 2^(i+1)) ranges in seconds.
  std::vector<HistogramBucket> Snapshot() const;
  void Reset();

 private:
  static constexpr std::size_t kBuckets = 64;
  static std::size_t BucketOf(std::uint64_t nanos) {
    return nanos == 0 ? 0 : 63 - static_cast<std::size_t>(
                                     __builtin_clzll(nanos));
  }
  std::array<std::atomic<std::uint64_t>, kBuckets> buckets_{};
  std::atomic<std::uint64_t> total_nanos_{0};
};

/// Aggregate statistics for one trace-span name: how many times the span
/// ran and the total wall time inside it. Filled by trace::Span whether or
/// not a trace session is recording, so RunReports always carry span
/// aggregates.
class SpanStat {
 public:
  void Record(std::uint64_t nanos) {
    count_.fetch_add(1, std::memory_order_relaxed);
    total_nanos_.fetch_add(nanos, std::memory_order_relaxed);
  }
  std::uint64_t Count() const {
    return count_.load(std::memory_order_relaxed);
  }
  std::uint64_t TotalNanos() const {
    return total_nanos_.load(std::memory_order_relaxed);
  }
  void Reset() {
    count_.store(0, std::memory_order_relaxed);
    total_nanos_.store(0, std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> total_nanos_{0};
};

/// Point-in-time copy of every metric, sorted by name (the registry's
/// map order), suitable for diffing and serialization.
struct MetricsSnapshot {
  std::map<std::string, std::uint64_t> counters;
  std::map<std::string, double> gauges;
  struct HistogramRow {
    std::uint64_t count = 0;
    std::uint64_t total_nanos = 0;
    std::vector<HistogramBucket> buckets;
  };
  std::map<std::string, HistogramRow> histograms;
  struct SpanRow {
    std::uint64_t count = 0;
    std::uint64_t total_nanos = 0;
  };
  std::map<std::string, SpanRow> spans;
};

/// Process-wide metric registry. Get*() interns the metric by name and
/// returns a reference that stays valid for the process lifetime (entries
/// are never removed), which is what lets call sites cache the pointer in
/// a function-local static and pay the name lookup exactly once.
///
/// Naming scheme (DESIGN.md §9): `subsystem/verb_noun`, e.g.
/// "gspan/seeds_expanded", "fsg/candidates_pruned", "iso/cache_hits".
class Registry {
 public:
  static Registry& Global();

  Counter& GetCounter(std::string_view name);
  Gauge& GetGauge(std::string_view name);
  LatencyHistogram& GetHistogram(std::string_view name);
  SpanStat& GetSpanStat(std::string_view name);

  MetricsSnapshot Snapshot() const;
  /// Zeroes every registered metric (entries stay registered). Benchmarks
  /// call this between timed sections so reports cover one section only.
  void ResetAll();

 private:
  Registry() = default;
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_;
  std::map<std::string, std::unique_ptr<LatencyHistogram>, std::less<>>
      histograms_;
  std::map<std::string, std::unique_ptr<SpanStat>, std::less<>> spans_;
};

/// Machine-checkable record of one run: every counter/gauge/histogram/span
/// aggregate plus wall time, hardware_concurrency, and the git SHA
/// (TNMINE_GIT_SHA or GITHUB_SHA env, else the configure-time SHA baked
/// into the library). CI diffs these against committed BENCH_*.json
/// baselines via tools/check_bench_regression.py.
struct RunReportOptions {
  std::string binary;          ///< e.g. "bench_parallel_scaling"
  double wall_seconds = 0.0;   ///< whole-run wall time
  /// Extra flat string fields recorded verbatim (workload knobs etc.).
  std::map<std::string, std::string> extra;
};

/// Serializes the current registry contents as a RunReport JSON object.
std::string RenderRunReport(const RunReportOptions& options);

/// RenderRunReport + write to `path`. Returns false on I/O failure.
bool WriteRunReport(const std::string& path,
                    const RunReportOptions& options);

/// The git SHA a RunReport will record (env override, else build-time).
std::string GitSha();

}  // namespace tnmine::telemetry

// ---------------------------------------------------------------------------
// Instrumentation macros. ON expansion: resolve the metric once per call
// site (function-local static), then one relaxed atomic op per hit. OFF
// expansion: nothing — arguments are not evaluated ((void)sizeof only
// typechecks them).

#define TNMINE_INTERNAL_COUNTER_ADD_ON(name, n)                        \
  do {                                                                 \
    static ::tnmine::telemetry::Counter& tnmine_internal_counter =     \
        ::tnmine::telemetry::Registry::Global().GetCounter(name);      \
    tnmine_internal_counter.Add(                                       \
        static_cast<std::uint64_t>(n));                                \
  } while (0)

#define TNMINE_INTERNAL_GAUGE_SET_ON(name, v)                          \
  do {                                                                 \
    static ::tnmine::telemetry::Gauge& tnmine_internal_gauge =         \
        ::tnmine::telemetry::Registry::Global().GetGauge(name);        \
    tnmine_internal_gauge.Set(static_cast<double>(v));                 \
  } while (0)

#define TNMINE_INTERNAL_GAUGE_MAX_ON(name, v)                          \
  do {                                                                 \
    static ::tnmine::telemetry::Gauge& tnmine_internal_gauge =         \
        ::tnmine::telemetry::Registry::Global().GetGauge(name);        \
    tnmine_internal_gauge.SetMax(static_cast<double>(v));              \
  } while (0)

#define TNMINE_INTERNAL_HISTOGRAM_NANOS_ON(name, nanos)                \
  do {                                                                 \
    static ::tnmine::telemetry::LatencyHistogram&                      \
        tnmine_internal_histogram =                                    \
            ::tnmine::telemetry::Registry::Global().GetHistogram(      \
                name);                                                 \
    tnmine_internal_histogram.RecordNanos(                             \
        static_cast<std::uint64_t>(nanos));                            \
  } while (0)

#define TNMINE_INTERNAL_TELEMETRY_NOOP(name, value) \
  do {                                              \
    (void)sizeof(name);                             \
    (void)sizeof(value);                            \
  } while (0)

#if TNMINE_TELEMETRY_ENABLED
#define TNMINE_COUNTER_ADD(name, n) TNMINE_INTERNAL_COUNTER_ADD_ON(name, n)
#define TNMINE_GAUGE_SET(name, v) TNMINE_INTERNAL_GAUGE_SET_ON(name, v)
#define TNMINE_GAUGE_MAX(name, v) TNMINE_INTERNAL_GAUGE_MAX_ON(name, v)
#define TNMINE_HISTOGRAM_NANOS(name, nanos) \
  TNMINE_INTERNAL_HISTOGRAM_NANOS_ON(name, nanos)
#else
#define TNMINE_COUNTER_ADD(name, n) TNMINE_INTERNAL_TELEMETRY_NOOP(name, n)
#define TNMINE_GAUGE_SET(name, v) TNMINE_INTERNAL_TELEMETRY_NOOP(name, v)
#define TNMINE_GAUGE_MAX(name, v) TNMINE_INTERNAL_TELEMETRY_NOOP(name, v)
#define TNMINE_HISTOGRAM_NANOS(name, nanos) \
  TNMINE_INTERNAL_TELEMETRY_NOOP(name, nanos)
#endif

#endif  // TNMINE_COMMON_TELEMETRY_H_
