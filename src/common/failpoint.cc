#include "common/failpoint.h"

#include <algorithm>
#include <atomic>
#include <charconv>
#include <map>
#include <mutex>
#include <new>

namespace tnmine::failpoint {
namespace {

struct Armed {
  Kind kind;
  std::uint64_t fire_at_hit;  // 1-based, counted from Arm()
  std::uint64_t hits_since_arm = 0;
  bool fired = false;
};

struct State {
  std::mutex mu;
  std::map<std::string, Armed, std::less<>> armed;
  std::map<std::string, std::uint64_t, std::less<>> hit_counts;
  bool recording = false;
  std::uint64_t injections = 0;
  std::string last_injected_site;
};

/// Leaked singleton: failpoints may be hit during static destruction
/// (e.g. from a RunReport flush), so the state must never be destroyed.
State& GetState() {
  static State* state = new State();
  return *state;
}

/// Fast-path gate: true iff any site is armed or recording is on. Hot
/// sites pay exactly this one relaxed load when fault injection is idle.
std::atomic<bool> g_active{false};

void UpdateActiveLocked(const State& state) {
  g_active.store(state.recording || !state.armed.empty(),
                 std::memory_order_relaxed);
}

}  // namespace

const char* KindName(Kind kind) {
  switch (kind) {
    case Kind::kBadAlloc:
      return "alloc";
    case Kind::kIoError:
      return "io";
    case Kind::kThrow:
      return "throw";
  }
  return "unknown";
}

bool Active() { return g_active.load(std::memory_order_relaxed); }

bool Arm(std::string_view site, Kind kind, std::uint64_t fire_at_hit) {
#if !TNMINE_FAILPOINTS_ENABLED
  (void)site;
  (void)kind;
  (void)fire_at_hit;
  return false;
#else
  if (site.empty() || fire_at_hit == 0) return false;
  State& state = GetState();
  std::lock_guard<std::mutex> lock(state.mu);
  state.armed[std::string(site)] = Armed{kind, fire_at_hit};
  UpdateActiveLocked(state);
  return true;
#endif
}

bool ArmFromSpec(std::string_view spec) {
  const std::size_t first = spec.find(':');
  if (first == std::string_view::npos || first == 0) return false;
  const std::string_view site = spec.substr(0, first);
  std::string_view rest = spec.substr(first + 1);
  std::string_view kind_name = rest;
  std::uint64_t fire_at_hit = 1;
  const std::size_t second = rest.find(':');
  if (second != std::string_view::npos) {
    kind_name = rest.substr(0, second);
    const std::string_view hit = rest.substr(second + 1);
    auto [ptr, ec] = std::from_chars(hit.data(), hit.data() + hit.size(),
                                     fire_at_hit);
    if (ec != std::errc() || ptr != hit.data() + hit.size() ||
        fire_at_hit == 0) {
      return false;
    }
  }
  Kind kind;
  if (kind_name == "alloc") {
    kind = Kind::kBadAlloc;
  } else if (kind_name == "io") {
    kind = Kind::kIoError;
  } else if (kind_name == "throw") {
    kind = Kind::kThrow;
  } else {
    return false;
  }
  return Arm(site, kind, fire_at_hit);
}

void DisarmAll() {
  State& state = GetState();
  std::lock_guard<std::mutex> lock(state.mu);
  state.armed.clear();
  state.injections = 0;
  state.last_injected_site.clear();
  UpdateActiveLocked(state);
}

void StartRecording() {
  State& state = GetState();
  std::lock_guard<std::mutex> lock(state.mu);
  state.recording = true;
  state.hit_counts.clear();
  state.injections = 0;
  state.last_injected_site.clear();
  UpdateActiveLocked(state);
}

std::vector<std::string> SitesSeen() {
  State& state = GetState();
  std::lock_guard<std::mutex> lock(state.mu);
  std::vector<std::string> sites;
  sites.reserve(state.hit_counts.size());
  for (const auto& [site, count] : state.hit_counts) sites.push_back(site);
  return sites;  // std::map iteration order is already sorted
}

std::uint64_t HitCount(std::string_view site) {
  State& state = GetState();
  std::lock_guard<std::mutex> lock(state.mu);
  const auto it = state.hit_counts.find(site);
  return it == state.hit_counts.end() ? 0 : it->second;
}

std::uint64_t InjectionCount() {
  State& state = GetState();
  std::lock_guard<std::mutex> lock(state.mu);
  return state.injections;
}

std::string LastInjectedSite() {
  State& state = GetState();
  std::lock_guard<std::mutex> lock(state.mu);
  return state.last_injected_site;
}

bool Hit(std::string_view site) {
  State& state = GetState();
  Kind fire_kind;
  {
    std::lock_guard<std::mutex> lock(state.mu);
    if (state.recording) ++state.hit_counts[std::string(site)];
    const auto it = state.armed.find(site);
    if (it == state.armed.end()) return false;
    Armed& armed = it->second;
    if (armed.fired || ++armed.hits_since_arm != armed.fire_at_hit) {
      return false;
    }
    armed.fired = true;  // one-shot
    ++state.injections;
    state.last_injected_site = std::string(site);
    fire_kind = armed.kind;
  }
  switch (fire_kind) {
    case Kind::kBadAlloc:
      throw std::bad_alloc();
    case Kind::kThrow:
      throw InjectedFault(site);
    case Kind::kIoError:
      return true;
  }
  return false;
}

}  // namespace tnmine::failpoint
