#include "common/telemetry.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <thread>

namespace tnmine::telemetry {

std::size_t ThisThreadShard() {
  static std::atomic<std::size_t> next_shard{0};
  thread_local const std::size_t shard =
      next_shard.fetch_add(1, std::memory_order_relaxed) % kMetricShards;
  return shard;
}

std::uint64_t LatencyHistogram::Count() const {
  std::uint64_t total = 0;
  for (const auto& b : buckets_) {
    total += b.load(std::memory_order_relaxed);
  }
  return total;
}

std::vector<HistogramBucket> LatencyHistogram::Snapshot() const {
  std::vector<HistogramBucket> out;
  for (std::size_t i = 0; i < kBuckets; ++i) {
    const std::uint64_t count = buckets_[i].load(std::memory_order_relaxed);
    if (count == 0) continue;
    HistogramBucket bucket;
    bucket.lo = std::ldexp(1.0, static_cast<int>(i)) * 1e-9;
    bucket.hi = std::ldexp(1.0, static_cast<int>(i) + 1) * 1e-9;
    bucket.count = count;
    out.push_back(bucket);
  }
  return out;
}

void LatencyHistogram::Reset() {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  total_nanos_.store(0, std::memory_order_relaxed);
}

Registry& Registry::Global() {
  // Intentionally leaked: instrumentation in static destructors (worker
  // threads, cache teardown) must still find a live registry.
  static Registry* registry = new Registry();
  return *registry;
}

Counter& Registry::GetCounter(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(std::string(name), std::make_unique<Counter>())
             .first;
  }
  return *it->second;
}

Gauge& Registry::GetGauge(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.emplace(std::string(name), std::make_unique<Gauge>())
             .first;
  }
  return *it->second;
}

LatencyHistogram& Registry::GetHistogram(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_
             .emplace(std::string(name),
                      std::make_unique<LatencyHistogram>())
             .first;
  }
  return *it->second;
}

SpanStat& Registry::GetSpanStat(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = spans_.find(name);
  if (it == spans_.end()) {
    it = spans_.emplace(std::string(name), std::make_unique<SpanStat>())
             .first;
  }
  return *it->second;
}

MetricsSnapshot Registry::Snapshot() const {
  MetricsSnapshot snap;
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [name, counter] : counters_) {
    snap.counters.emplace(name, counter->Value());
  }
  for (const auto& [name, gauge] : gauges_) {
    snap.gauges.emplace(name, gauge->Value());
  }
  for (const auto& [name, histogram] : histograms_) {
    MetricsSnapshot::HistogramRow row;
    row.count = histogram->Count();
    row.total_nanos = histogram->TotalNanos();
    row.buckets = histogram->Snapshot();
    snap.histograms.emplace(name, std::move(row));
  }
  for (const auto& [name, span] : spans_) {
    MetricsSnapshot::SpanRow row;
    row.count = span->Count();
    row.total_nanos = span->TotalNanos();
    snap.spans.emplace(name, row);
  }
  return snap;
}

void Registry::ResetAll() {
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [name, counter] : counters_) counter->Reset();
  for (const auto& [name, gauge] : gauges_) gauge->Reset();
  for (const auto& [name, histogram] : histograms_) histogram->Reset();
  for (const auto& [name, span] : spans_) span->Reset();
}

namespace {

/// Minimal JSON string escaping (quotes, backslashes, control bytes).
void AppendEscaped(std::string* out, std::string_view s) {
  out->push_back('"');
  for (char c : s) {
    if (c == '"' || c == '\\') out->push_back('\\');
    if (static_cast<unsigned char>(c) >= 0x20) {
      out->push_back(c);
    }
  }
  out->push_back('"');
}

void AppendDouble(std::string* out, double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  out->append(buf);
}

}  // namespace

std::string GitSha() {
  if (const char* sha = std::getenv("TNMINE_GIT_SHA");
      sha != nullptr && *sha != '\0') {
    return sha;
  }
  if (const char* sha = std::getenv("GITHUB_SHA");
      sha != nullptr && *sha != '\0') {
    return sha;
  }
#if defined(TNMINE_BUILD_GIT_SHA)
  return TNMINE_BUILD_GIT_SHA;
#else
  return "unknown";
#endif
}

std::string RenderRunReport(const RunReportOptions& options) {
  const MetricsSnapshot snap = Registry::Global().Snapshot();
  std::string out;
  out.reserve(4096);
  out += "{\n  \"report_version\": 1,\n  \"binary\": ";
  AppendEscaped(&out, options.binary);
  out += ",\n  \"git_sha\": ";
  AppendEscaped(&out, GitSha());
  out += ",\n  \"hardware_concurrency\": ";
  out += std::to_string(
      static_cast<std::size_t>(std::thread::hardware_concurrency()));
  out += ",\n  \"telemetry_enabled\": ";
  out += TNMINE_TELEMETRY_ENABLED ? "true" : "false";
  out += ",\n  \"wall_seconds\": ";
  AppendDouble(&out, options.wall_seconds);
  for (const auto& [key, value] : options.extra) {
    out += ",\n  ";
    AppendEscaped(&out, key);
    out += ": ";
    AppendEscaped(&out, value);
  }
  out += ",\n  \"counters\": {";
  bool first = true;
  for (const auto& [name, value] : snap.counters) {
    out += first ? "\n    " : ",\n    ";
    first = false;
    AppendEscaped(&out, name);
    out += ": ";
    out += std::to_string(value);
  }
  out += first ? "},\n  \"gauges\": {" : "\n  },\n  \"gauges\": {";
  first = true;
  for (const auto& [name, value] : snap.gauges) {
    out += first ? "\n    " : ",\n    ";
    first = false;
    AppendEscaped(&out, name);
    out += ": ";
    AppendDouble(&out, value);
  }
  out += first ? "},\n  \"histograms\": {" : "\n  },\n  \"histograms\": {";
  first = true;
  for (const auto& [name, row] : snap.histograms) {
    out += first ? "\n    " : ",\n    ";
    first = false;
    AppendEscaped(&out, name);
    out += ": {\"count\": ";
    out += std::to_string(row.count);
    out += ", \"total_seconds\": ";
    AppendDouble(&out, static_cast<double>(row.total_nanos) * 1e-9);
    out += ", \"buckets\": [";
    for (std::size_t i = 0; i < row.buckets.size(); ++i) {
      if (i > 0) out += ", ";
      out += "{\"lo\": ";
      AppendDouble(&out, row.buckets[i].lo);
      out += ", \"hi\": ";
      AppendDouble(&out, row.buckets[i].hi);
      out += ", \"count\": ";
      out += std::to_string(row.buckets[i].count);
      out += "}";
    }
    out += "]}";
  }
  out += first ? "},\n  \"spans\": {" : "\n  },\n  \"spans\": {";
  first = true;
  for (const auto& [name, row] : snap.spans) {
    out += first ? "\n    " : ",\n    ";
    first = false;
    AppendEscaped(&out, name);
    out += ": {\"count\": ";
    out += std::to_string(row.count);
    out += ", \"total_seconds\": ";
    AppendDouble(&out, static_cast<double>(row.total_nanos) * 1e-9);
    out += "}";
  }
  out += first ? "}\n}\n" : "\n  }\n}\n";
  return out;
}

bool WriteRunReport(const std::string& path,
                    const RunReportOptions& options) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  const std::string report = RenderRunReport(options);
  const bool ok =
      std::fwrite(report.data(), 1, report.size(), f) == report.size();
  return (std::fclose(f) == 0) && ok;
}

}  // namespace tnmine::telemetry
