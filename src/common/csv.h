#ifndef TNMINE_COMMON_CSV_H_
#define TNMINE_COMMON_CSV_H_

#include <string>
#include <vector>

#include "common/parse.h"

namespace tnmine {

/// Minimal RFC-4180-style CSV support for persisting transaction datasets.
///
/// Fields may be quoted with double quotes; embedded quotes are doubled;
/// embedded commas, CRs, and newlines inside quoted fields are preserved
/// byte-for-byte, so everything CsvWriter::WriteRecord emits reads back
/// identically. Outside quotes, LF, CRLF, and bare CR all terminate a
/// record. This is deliberately a small, dependency-free reader sized for
/// the project's needs, not a general CSV engine.
class CsvReader {
 public:
  /// Opens `path`. Check ok() before reading; on failure error() describes
  /// the problem.
  explicit CsvReader(const std::string& path);
  ~CsvReader();

  CsvReader(const CsvReader&) = delete;
  CsvReader& operator=(const CsvReader&) = delete;

  bool ok() const { return ok_; }
  const std::string& error() const { return error_; }

  /// Structured position-carrying error for the most recent failure.
  const ParseError& parse_error() const { return parse_error_; }

  /// Reads the next record into `fields`. Quoted fields may span multiple
  /// physical lines. Returns false at end of input or on a malformed
  /// record (in which case ok() turns false and error()/parse_error() are
  /// set). Blank lines are skipped.
  bool ReadRecord(std::vector<std::string>* fields);

  /// 1-based physical line on which the most recently read record starts.
  std::size_t line_number() const { return record_line_; }

 private:
  void* file_ = nullptr;  // FILE*, kept opaque to avoid <cstdio> in the API
  bool ok_ = false;
  std::string error_;
  ParseError parse_error_;
  std::size_t current_line_ = 1;
  std::size_t current_column_ = 0;
  std::size_t record_line_ = 1;
};

/// Streams CSV records to a file.
class CsvWriter {
 public:
  explicit CsvWriter(const std::string& path);
  ~CsvWriter();

  CsvWriter(const CsvWriter&) = delete;
  CsvWriter& operator=(const CsvWriter&) = delete;

  bool ok() const { return ok_; }
  const std::string& error() const { return error_; }

  /// Writes one record, quoting fields as needed.
  void WriteRecord(const std::vector<std::string>& fields);

 private:
  void* file_ = nullptr;
  bool ok_ = false;
  std::string error_;
};

/// Parses a single CSV record given as a string into fields. The record
/// must span the whole string (an unquoted embedded newline fails);
/// newlines inside quoted fields are allowed and preserved. Returns false
/// if the quoting is malformed. Exposed for unit testing.
bool ParseCsvLine(const std::string& line, std::vector<std::string>* fields);

/// Escapes a field for CSV output (quotes only when necessary).
std::string EscapeCsvField(const std::string& field);

}  // namespace tnmine

#endif  // TNMINE_COMMON_CSV_H_
