#ifndef TNMINE_COMMON_CSV_H_
#define TNMINE_COMMON_CSV_H_

#include <string>
#include <vector>

namespace tnmine {

/// Minimal RFC-4180-style CSV support for persisting transaction datasets.
///
/// Fields may be quoted with double quotes; embedded quotes are doubled;
/// embedded commas and newlines inside quoted fields are preserved. This is
/// deliberately a small, dependency-free reader sized for the project's
/// needs, not a general CSV engine.
class CsvReader {
 public:
  /// Opens `path`. Check ok() before reading; on failure error() describes
  /// the problem.
  explicit CsvReader(const std::string& path);
  ~CsvReader();

  CsvReader(const CsvReader&) = delete;
  CsvReader& operator=(const CsvReader&) = delete;

  bool ok() const { return ok_; }
  const std::string& error() const { return error_; }

  /// Reads the next record into `fields`. Returns false at end of input or
  /// on a malformed record (in which case ok() turns false and error() is
  /// set). Blank lines are skipped.
  bool ReadRecord(std::vector<std::string>* fields);

  /// 1-based line number of the most recently read record.
  std::size_t line_number() const { return line_number_; }

 private:
  void* file_ = nullptr;  // FILE*, kept opaque to avoid <cstdio> in the API
  bool ok_ = false;
  std::string error_;
  std::size_t line_number_ = 0;
};

/// Streams CSV records to a file.
class CsvWriter {
 public:
  explicit CsvWriter(const std::string& path);
  ~CsvWriter();

  CsvWriter(const CsvWriter&) = delete;
  CsvWriter& operator=(const CsvWriter&) = delete;

  bool ok() const { return ok_; }
  const std::string& error() const { return error_; }

  /// Writes one record, quoting fields as needed.
  void WriteRecord(const std::vector<std::string>& fields);

 private:
  void* file_ = nullptr;
  bool ok_ = false;
  std::string error_;
};

/// Parses a single CSV line (no embedded newlines) into fields. Returns
/// false if the quoting is malformed. Exposed for unit testing.
bool ParseCsvLine(const std::string& line, std::vector<std::string>* fields);

/// Escapes a field for CSV output (quotes only when necessary).
std::string EscapeCsvField(const std::string& field);

}  // namespace tnmine

#endif  // TNMINE_COMMON_CSV_H_
