#include "common/date.h"

#include <cstdio>
#include <string_view>

#include "common/parse.h"

namespace tnmine {

std::int64_t DayNumberFromCivil(const CivilDate& date) {
  // Howard Hinnant's days_from_civil.
  std::int64_t y = date.year;
  const int m = date.month;
  const int d = date.day;
  y -= m <= 2;
  const std::int64_t era = (y >= 0 ? y : y - 399) / 400;
  const unsigned yoe = static_cast<unsigned>(y - era * 400);  // [0, 399]
  const unsigned doy =
      static_cast<unsigned>((153 * (m + (m > 2 ? -3 : 9)) + 2) / 5 + d - 1);
  const unsigned doe = yoe * 365 + yoe / 4 - yoe / 100 + doy;  // [0, 146096]
  return era * 146097 + static_cast<std::int64_t>(doe) - 719468;
}

CivilDate CivilFromDayNumber(std::int64_t day_number) {
  // Howard Hinnant's civil_from_days.
  std::int64_t z = day_number + 719468;
  const std::int64_t era = (z >= 0 ? z : z - 146096) / 146097;
  const unsigned doe = static_cast<unsigned>(z - era * 146097);  // [0, 146096]
  const unsigned yoe =
      (doe - doe / 1460 + doe / 36524 - doe / 146096) / 365;  // [0, 399]
  const std::int64_t y = static_cast<std::int64_t>(yoe) + era * 400;
  const unsigned doy = doe - (365 * yoe + yoe / 4 - yoe / 100);  // [0, 365]
  const unsigned mp = (5 * doy + 2) / 153;  // [0, 11]
  const unsigned d = doy - (153 * mp + 2) / 5 + 1;  // [1, 31]
  const unsigned m = mp + (mp < 10 ? 3 : static_cast<unsigned>(-9));  // [1, 12]
  CivilDate out;
  out.year = static_cast<int>(y + (m <= 2));
  out.month = static_cast<int>(m);
  out.day = static_cast<int>(d);
  return out;
}

std::string FormatDayNumber(std::int64_t day_number) {
  const CivilDate c = CivilFromDayNumber(day_number);
  char buf[32];  // sized for a full 10-digit year plus sign
  std::snprintf(buf, sizeof(buf), "%04d-%02d-%02d", c.year, c.month, c.day);
  return buf;
}

bool ParseDayNumber(const std::string& text, std::int64_t* day_number) {
  // Strict "Y-M-D": three '-'-separated integer fields, each fully
  // consumed, no whitespace, no trailing garbage. The year may itself be
  // negative ("-0004-01-02"), so the year/month separator is searched from
  // position 1.
  const std::string_view s = text;
  if (s.empty()) return false;
  const std::size_t p1 = s.find('-', 1);
  if (p1 == std::string_view::npos) return false;
  const std::size_t p2 = s.find('-', p1 + 1);
  if (p2 == std::string_view::npos) return false;
  CivilDate c;
  if (!ParseInt32(s.substr(0, p1), &c.year) ||
      !ParseInt32(s.substr(p1 + 1, p2 - p1 - 1), &c.month) ||
      !ParseInt32(s.substr(p2 + 1), &c.day)) {
    return false;
  }
  if (c.month < 1 || c.month > 12 || c.day < 1 || c.day > 31) return false;
  const std::int64_t dn = DayNumberFromCivil(c);
  // Round-trip to reject impossible days such as February 30.
  const CivilDate back = CivilFromDayNumber(dn);
  if (back.year != c.year || back.month != c.month || back.day != c.day) {
    return false;
  }
  *day_number = dn;
  return true;
}

int DayOfWeek(std::int64_t day_number) {
  // 1970-01-01 was a Thursday (index 3 when Monday = 0).
  std::int64_t wd = (day_number + 3) % 7;
  if (wd < 0) wd += 7;
  return static_cast<int>(wd);
}

}  // namespace tnmine
