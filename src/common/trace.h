#ifndef TNMINE_COMMON_TRACE_H_
#define TNMINE_COMMON_TRACE_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <type_traits>

#include "common/telemetry.h"

namespace tnmine::trace {

/// Hierarchical wall-clock trace spans over the mining core.
///
/// `TNMINE_TRACE_SPAN("gspan/mine")` opens a RAII span: the destructor
/// closes it, so spans nest lexically and close correctly when an
/// exception unwinds the scope. Every span always feeds the aggregate
/// `telemetry::SpanStat` for its name (count + total nanos — what
/// RunReports serialize); when a `Session` is recording, the span
/// additionally appends a timestamped event to a per-thread buffer that
/// `ExportChromeTraceJson()` renders in Chrome `trace_event` format
/// (load it at chrome://tracing or https://ui.perfetto.dev).
///
/// Span names must be string literals (or otherwise outlive the process):
/// events store the pointer, not a copy.

/// One finished span occurrence.
struct SpanEvent {
  const char* name = nullptr;
  std::uint64_t start_nanos = 0;  ///< relative to session start
  std::uint64_t duration_nanos = 0;
  std::uint32_t tid = 0;    ///< dense per-thread id, assigned on first use
  std::uint32_t depth = 0;  ///< nesting depth at open (0 = top level)
};

/// Global recording session. Exactly one can record at a time; Start()
/// clears previously collected events. All methods are safe to call
/// while pool lanes are emitting spans.
class Session {
 public:
  /// True when a session is recording (spans buffer events).
  static bool IsRecording() {
    return recording_.load(std::memory_order_acquire);
  }
  static void Start();
  static void Stop();

  /// The events collected by the last session, merged across threads in
  /// (tid, start time) order.
  static std::vector<SpanEvent> CollectedEvents();

  /// Chrome trace_event JSON ("X" complete events, microsecond units).
  static std::string ExportChromeTraceJson();
  /// ExportChromeTraceJson + write to `path`. False on I/O failure.
  static bool WriteChromeTrace(const std::string& path);

  /// Test hook: a deterministic fake clock returning nanoseconds.
  /// nullptr restores the real steady clock.
  using ClockFn = std::uint64_t (*)();
  static void SetClockForTest(ClockFn clock);

 private:
  friend class Span;
  static std::uint64_t NowNanos();
  static std::atomic<bool> recording_;
};

/// RAII span (ON builds). Cost when no session records: one acquire load
/// + the SpanStat aggregate (two relaxed adds) + two clock reads.
class Span {
 public:
  explicit Span(const char* name);
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;
  ~Span();

 private:
  const char* name_;
  std::uint64_t start_nanos_;
  std::uint32_t depth_ = 0;
  bool recording_ = false;
};

/// OFF-build span: an empty object the optimizer erases. The size check
/// in tests/telemetry_test.cc pins the "compiles away" claim.
class NullSpan {
 public:
  explicit NullSpan(const char* /*name*/) {}
};
static_assert(sizeof(NullSpan) == 1 && std::is_empty_v<NullSpan>,
              "NullSpan must carry no state");

}  // namespace tnmine::trace

#define TNMINE_INTERNAL_TRACE_CONCAT2(a, b) a##b
#define TNMINE_INTERNAL_TRACE_CONCAT(a, b) \
  TNMINE_INTERNAL_TRACE_CONCAT2(a, b)

#define TNMINE_INTERNAL_TRACE_SPAN_ON(name)                 \
  ::tnmine::trace::Span TNMINE_INTERNAL_TRACE_CONCAT(       \
      tnmine_internal_span_, __LINE__)(name)
#define TNMINE_INTERNAL_TRACE_SPAN_OFF(name)                \
  ::tnmine::trace::NullSpan TNMINE_INTERNAL_TRACE_CONCAT(   \
      tnmine_internal_span_, __LINE__)(name)

#if TNMINE_TELEMETRY_ENABLED
#define TNMINE_TRACE_SPAN(name) TNMINE_INTERNAL_TRACE_SPAN_ON(name)
#else
#define TNMINE_TRACE_SPAN(name) TNMINE_INTERNAL_TRACE_SPAN_OFF(name)
#endif

#endif  // TNMINE_COMMON_TRACE_H_
