#ifndef TNMINE_COMMON_STATISTICS_H_
#define TNMINE_COMMON_STATISTICS_H_

#include <cstdint>
#include <string>
#include <vector>

namespace tnmine {

/// Descriptive statistics over a numeric sample.
struct SummaryStats {
  std::size_t count = 0;
  double min = 0.0;
  double max = 0.0;
  double mean = 0.0;
  double stddev = 0.0;  ///< population standard deviation
  double sum = 0.0;
};

/// Computes count/min/max/mean/stddev/sum of `values` (all zeros if empty).
SummaryStats Summarize(const std::vector<double>& values);

/// Streaming accumulator (Welford) for the same statistics; useful when the
/// sample is produced incrementally.
class RunningStats {
 public:
  void Add(double x);
  SummaryStats Finish() const;
  std::size_t count() const { return count_; }
  double mean() const { return mean_; }

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  double sum_ = 0.0;
};

/// A labeled histogram bucket for Table-2-style size breakdowns.
struct HistogramBucket {
  double lo = 0.0;   ///< inclusive lower bound
  double hi = 0.0;   ///< upper bound (exclusive except for the last bucket)
  std::size_t count = 0;
};

/// Counts `values` into buckets delimited by `edges` (ascending). Bucket i
/// covers [edges[i], edges[i+1]); the final bucket is closed,
/// [edges[n-2], edges[n-1]], following the Weka convention, so every value
/// in [edges.front(), edges.back()] is counted exactly once. Values
/// strictly outside that range are ignored.
std::vector<HistogramBucket> Histogram(const std::vector<double>& values,
                                       const std::vector<double>& edges);

/// Pearson correlation of two equal-length samples; 0 if degenerate.
double PearsonCorrelation(const std::vector<double>& x,
                          const std::vector<double>& y);

}  // namespace tnmine

#endif  // TNMINE_COMMON_STATISTICS_H_
