#include "common/parse.h"

#include <charconv>
#include <cmath>

namespace tnmine {

namespace {

/// Shared body for the integer parsers: std::from_chars with a
/// full-consumption check. from_chars already rejects leading whitespace,
/// leading '+', and a '-' on unsigned targets, and reports overflow via
/// std::errc::result_out_of_range, which is exactly the strict contract.
template <typename Int>
bool ParseIntegral(std::string_view text, Int* out) {
  if (text.empty()) return false;
  Int value{};
  const auto [ptr, ec] =
      std::from_chars(text.data(), text.data() + text.size(), value, 10);
  if (ec != std::errc() || ptr != text.data() + text.size()) return false;
  *out = value;
  return true;
}

}  // namespace

bool ParseInt64(std::string_view text, std::int64_t* out) {
  return ParseIntegral(text, out);
}

bool ParseInt32(std::string_view text, std::int32_t* out) {
  return ParseIntegral(text, out);
}

bool ParseUint64(std::string_view text, std::uint64_t* out) {
  return ParseIntegral(text, out);
}

bool ParseUint32(std::string_view text, std::uint32_t* out) {
  return ParseIntegral(text, out);
}

bool ParseSize(std::string_view text, std::size_t* out) {
  std::uint64_t value = 0;
  if (!ParseUint64(text, &value)) return false;
  if (value > static_cast<std::uint64_t>(SIZE_MAX)) return false;
  *out = static_cast<std::size_t>(value);
  return true;
}

bool ParseDouble(std::string_view text, double* out) {
  if (text.empty()) return false;
  // from_chars rejects leading whitespace and '+'; it accepts fixed and
  // scientific notation plus "inf"/"nan", always with '.' as the decimal
  // point regardless of the global locale.
  double value = 0.0;
  const auto [ptr, ec] = std::from_chars(
      text.data(), text.data() + text.size(), value,
      std::chars_format::general);
  if (ec != std::errc() || ptr != text.data() + text.size()) return false;
  *out = value;
  return true;
}

bool ParseFiniteDouble(std::string_view text, double* out) {
  double value = 0.0;
  if (!ParseDouble(text, &value)) return false;
  if (!std::isfinite(value)) return false;
  *out = value;
  return true;
}

std::string ParseError::ToString() const {
  if (line == 0) return message;
  std::string out = "line " + std::to_string(line);
  if (column != 0) out += ", column " + std::to_string(column);
  out += ": " + message;
  return out;
}

ParseError ParseError::At(std::size_t line, std::size_t column,
                          std::string message) {
  ParseError e;
  e.line = line;
  e.column = column;
  e.message = std::move(message);
  return e;
}

void ReportParseError(const ParseError& e, ParseError* structured,
                      std::string* legacy) {
  if (structured != nullptr) *structured = e;
  if (legacy != nullptr) *legacy = e.ToString();
}

std::vector<LineToken> TokenizeLine(std::string_view line) {
  if (!line.empty() && line.back() == '\r') line.remove_suffix(1);
  std::vector<LineToken> tokens;
  std::size_t i = 0;
  while (i < line.size()) {
    while (i < line.size() && (line[i] == ' ' || line[i] == '\t')) ++i;
    if (i >= line.size()) break;
    const std::size_t start = i;
    while (i < line.size() && line[i] != ' ' && line[i] != '\t') ++i;
    tokens.push_back(LineToken{line.substr(start, i - start), start + 1});
  }
  return tokens;
}

}  // namespace tnmine
