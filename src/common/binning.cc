#include "common/binning.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "common/check.h"

namespace tnmine {

Discretizer Discretizer::FromCutPoints(std::vector<double> cuts) {
  for (std::size_t i = 1; i < cuts.size(); ++i) {
    TNMINE_CHECK_MSG(cuts[i - 1] < cuts[i],
                     "cut points must be strictly ascending");
  }
  return Discretizer(std::move(cuts));
}

Discretizer Discretizer::EqualWidth(const std::vector<double>& values,
                                    int num_bins) {
  TNMINE_CHECK(num_bins >= 1);
  TNMINE_CHECK(!values.empty());
  const auto [min_it, max_it] = std::minmax_element(values.begin(),
                                                    values.end());
  const double lo = *min_it;
  const double hi = *max_it;
  std::vector<double> cuts;
  if (hi > lo) {
    const double width = (hi - lo) / num_bins;
    cuts.reserve(static_cast<std::size_t>(num_bins) - 1);
    for (int i = 1; i < num_bins; ++i) {
      const double cut = lo + width * i;
      if (cuts.empty() || cut > cuts.back()) cuts.push_back(cut);
    }
  }
  return Discretizer(std::move(cuts));
}

Discretizer Discretizer::EqualFrequency(const std::vector<double>& values,
                                        int num_bins) {
  TNMINE_CHECK(num_bins >= 1);
  TNMINE_CHECK(!values.empty());
  std::vector<double> sorted = values;
  std::sort(sorted.begin(), sorted.end());
  std::vector<double> cuts;
  cuts.reserve(static_cast<std::size_t>(num_bins) - 1);
  const std::size_t n = sorted.size();
  for (int i = 1; i < num_bins; ++i) {
    const std::size_t idx =
        std::min(n - 1, static_cast<std::size_t>(
                            std::llround(static_cast<double>(i) * n /
                                         num_bins)));
    const double cut = sorted[idx];
    if (cuts.empty() || cut > cuts.back()) cuts.push_back(cut);
  }
  // Drop a trailing cut equal to the maximum; it would create an empty
  // top bin.
  while (!cuts.empty() && cuts.back() >= sorted.back()) cuts.pop_back();
  return Discretizer(std::move(cuts));
}

int Discretizer::Bin(double value) const {
  // First cut point >= value; bins are closed on the right.
  const auto it = std::lower_bound(cuts_.begin(), cuts_.end(), value);
  return static_cast<int>(it - cuts_.begin());
}

std::string Discretizer::IntervalLabel(int bin) const {
  TNMINE_CHECK(bin >= 0 && bin < num_bins());
  std::ostringstream out;
  out << "(";
  if (bin == 0) {
    out << "-inf";
  } else {
    out << cuts_[static_cast<std::size_t>(bin) - 1];
  }
  out << ", ";
  if (bin == static_cast<int>(cuts_.size())) {
    out << "+inf)";
  } else {
    out << cuts_[static_cast<std::size_t>(bin)] << "]";
  }
  return out.str();
}

}  // namespace tnmine
