#include "common/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <exception>
#include <memory>

#include "common/check.h"
#include "common/telemetry.h"

namespace tnmine::common {

namespace {

/// Set while a thread is executing pool work (worker threads permanently;
/// submitting threads for the duration of their own job). Nested parallel
/// calls check it and degrade to inline serial execution.
thread_local bool tls_in_pool_lane = false;

}  // namespace

std::size_t Parallelism::Resolve() const {
  if (num_threads != 0) return num_threads;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

/// One ParallelFor call in flight. Lanes claim chunks of the index space
/// with a shared atomic cursor; completion is tracked by counting finished
/// items so the submitter can block until the exact moment all work (and
/// all in-flight exceptions) have settled.
struct ThreadPool::Job {
  const std::function<void(std::size_t)>* fn = nullptr;
  const CancelToken* cancel = nullptr;  // optional caller-owned token
  std::size_t n = 0;
  std::size_t chunk = 1;
  std::size_t extra_lanes = 0;  // worker lanes still allowed to join;
                                // guarded by the owning pool's mu_
  std::atomic<std::size_t> next{0};
  std::atomic<std::size_t> done{0};
  std::atomic<bool> cancelled{false};

  std::mutex mu;  // guards error/error_index and the finished wait
  std::condition_variable finished;
  std::exception_ptr error;
  std::size_t error_index = ~std::size_t{0};
};

ThreadPool::ThreadPool(std::size_t num_threads) {
  TNMINE_CHECK(num_threads >= 1);
  workers_.reserve(num_threads - 1);
  for (std::size_t i = 0; i + 1 < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutting_down_ = true;
  }
  work_available_.notify_all();
  for (std::thread& w : workers_) w.join();
}

ThreadPool& ThreadPool::Shared() {
  // Intentionally leaked: worker threads must not be joined during static
  // destruction (other static destructors might still submit work).
  static ThreadPool* pool = new ThreadPool(
      std::max<std::size_t>(2, Parallelism{}.Resolve()));
  return *pool;
}

void ThreadPool::WorkerLoop() {
  tls_in_pool_lane = true;
  for (;;) {
    std::shared_ptr<Job> job;
    {
      std::unique_lock<std::mutex> lock(mu_);
#if TNMINE_TELEMETRY_ENABLED
      const auto wait_start = std::chrono::steady_clock::now();
#endif
      work_available_.wait(
          lock, [&] { return shutting_down_ || !queue_.empty(); });
#if TNMINE_TELEMETRY_ENABLED
      TNMINE_HISTOGRAM_NANOS(
          "threadpool/idle_wait_nanos",
          static_cast<std::uint64_t>(
              std::chrono::duration_cast<std::chrono::nanoseconds>(
                  std::chrono::steady_clock::now() - wait_start)
                  .count()));
#endif
      if (shutting_down_) return;
      // Front-most job that still wants lanes; claim one under the lock.
      job = queue_.front();
      if (--job->extra_lanes == 0) queue_.pop_front();
    }
    WorkOn(*job);
  }
}

void ThreadPool::WorkOn(Job& job) {
  for (;;) {
    const std::size_t begin = job.next.fetch_add(job.chunk);
    if (begin >= job.n) return;
    const std::size_t end = std::min(job.n, begin + job.chunk);
    for (std::size_t i = begin; i < end; ++i) {
      // Checked before every item (not per chunk) so a sibling's
      // exception or a fired cancel token stops this lane at the next
      // item boundary, not after tens of thousands more calls.
      if (job.cancelled.load(std::memory_order_relaxed) ||
          (job.cancel != nullptr && job.cancel->cancelled())) {
        break;
      }
      try {
        (*job.fn)(i);
      } catch (...) {
        job.cancelled.store(true, std::memory_order_relaxed);
        std::lock_guard<std::mutex> lock(job.mu);
        // Keep the lowest-index exception so reruns rethrow the same one.
        if (job.error == nullptr || i < job.error_index) {
          job.error = std::current_exception();
          job.error_index = i;
        }
        break;  // drop the rest of this chunk (items counted below)
      }
    }
    // Count the whole chunk — skipped (cancelled) items included — so
    // done == n remains the exact completion condition.
    const std::size_t finished =
        job.done.fetch_add(end - begin) + (end - begin);
    if (finished == job.n) {
      std::lock_guard<std::mutex> lock(job.mu);
      job.finished.notify_all();
    }
  }
}

void ThreadPool::Run(std::size_t n, std::size_t max_threads,
                     const std::function<void(std::size_t)>& fn,
                     const CancelToken* cancel) {
  if (n == 0) return;
  TNMINE_COUNTER_ADD("threadpool/items_run", n);
  const std::size_t lanes =
      std::min({max_threads, n, num_threads()});
  if (lanes <= 1 || tls_in_pool_lane) {
    // Inline path: sequential semantics, exceptions propagate naturally.
    TNMINE_COUNTER_ADD("threadpool/inline_runs", 1);
    for (std::size_t i = 0; i < n; ++i) {
      if (cancel != nullptr && cancel->cancelled()) break;
      fn(i);
    }
    return;
  }
  TNMINE_COUNTER_ADD("threadpool/jobs_submitted", 1);

  auto job = std::make_shared<Job>();
  job->fn = &fn;
  job->cancel = cancel;
  job->n = n;
  // Coarse dynamic chunking: enough chunks for load balance, few enough
  // that the shared cursor stays cold. Results are index-addressed, so
  // chunking never affects output.
  job->chunk = std::max<std::size_t>(1, n / (lanes * 8));
  job->extra_lanes = lanes - 1;  // the submitter occupies one lane itself
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back(job);
  }
  work_available_.notify_all();

  tls_in_pool_lane = true;
  WorkOn(*job);
  tls_in_pool_lane = false;

  {
    std::unique_lock<std::mutex> lock(job->mu);
    job->finished.wait(lock, [&] { return job->done.load() == job->n; });
  }
  {
    // Workers that never woke up may still hold the job in the queue;
    // remove it so they cannot touch `fn` after we return.
    std::lock_guard<std::mutex> lock(mu_);
    std::erase(queue_, job);
  }
  if (job->error != nullptr) std::rethrow_exception(job->error);
}

void ParallelFor(const Parallelism& par, std::size_t n,
                 const std::function<void(std::size_t)>& fn,
                 const CancelToken* cancel) {
  ThreadPool::Shared().Run(n, par.Resolve(), fn, cancel);
}

}  // namespace tnmine::common
