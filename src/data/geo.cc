#include "data/geo.h"

#include <cmath>

namespace tnmine::data {

namespace {
constexpr double kEarthRadiusMiles = 3958.8;
constexpr double kDegToRad = M_PI / 180.0;
}  // namespace

double RoundToDeciDegree(double value) {
  return std::round(value * 10.0) / 10.0;
}

LocationKey MakeLocationKey(double latitude, double longitude) {
  const std::int64_t lat_deci =
      static_cast<std::int64_t>(std::llround(latitude * 10.0));
  const std::int64_t lon_deci =
      static_cast<std::int64_t>(std::llround(longitude * 10.0));
  // Latitude deci-degrees fit comfortably in 16 bits; longitude in 16 bits.
  return (lat_deci << 20) ^ (lon_deci & 0xFFFFF);
}

void LocationFromKey(LocationKey key, double* latitude, double* longitude) {
  const std::int64_t lat_deci = key >> 20;
  std::int64_t lon_deci = key & 0xFFFFF;
  if (lon_deci & 0x80000) lon_deci -= 0x100000;  // sign-extend 20 bits
  *latitude = static_cast<double>(lat_deci) / 10.0;
  *longitude = static_cast<double>(lon_deci) / 10.0;
}

double HaversineMiles(double lat1, double lon1, double lat2, double lon2) {
  const double phi1 = lat1 * kDegToRad;
  const double phi2 = lat2 * kDegToRad;
  const double dphi = (lat2 - lat1) * kDegToRad;
  const double dlambda = (lon2 - lon1) * kDegToRad;
  const double a = std::sin(dphi / 2) * std::sin(dphi / 2) +
                   std::cos(phi1) * std::cos(phi2) * std::sin(dlambda / 2) *
                       std::sin(dlambda / 2);
  const double c = 2.0 * std::atan2(std::sqrt(a), std::sqrt(1.0 - a));
  return kEarthRadiusMiles * c;
}

}  // namespace tnmine::data
