#ifndef TNMINE_DATA_GEO_H_
#define TNMINE_DATA_GEO_H_

#include <cstdint>

namespace tnmine::data {

/// A lat/long point quantized to 0.1 degree, packed into one integer so it
/// can be used as a map key. This mirrors the paper's data, which records
/// coordinates "to nearest 0.1 degree" and treats each distinct pair as one
/// network location.
using LocationKey = std::int64_t;

/// Rounds a coordinate to the nearest 0.1 degree.
double RoundToDeciDegree(double value);

/// Packs a (latitude, longitude) pair — rounded to 0.1 degree — into a key.
LocationKey MakeLocationKey(double latitude, double longitude);

/// Unpacks a key back into (latitude, longitude) in degrees.
void LocationFromKey(LocationKey key, double* latitude, double* longitude);

/// Great-circle distance in statute miles between two points given in
/// degrees (haversine formula on a spherical Earth, radius 3958.8 mi).
double HaversineMiles(double lat1, double lon1, double lat2, double lon2);

}  // namespace tnmine::data

#endif  // TNMINE_DATA_GEO_H_
