#include "data/dataset.h"

#include <algorithm>
#include <cstdio>
#include <unordered_set>

#include "common/check.h"
#include "common/csv.h"
#include "common/date.h"
#include "common/parse.h"

namespace tnmine::data {

std::string ToString(TransMode mode) {
  return mode == TransMode::kTruckload ? "TL" : "LTL";
}

bool ParseTransMode(const std::string& text, TransMode* mode) {
  if (text == "TL") {
    *mode = TransMode::kTruckload;
    return true;
  }
  if (text == "LTL") {
    *mode = TransMode::kLessThanTruckload;
    return true;
  }
  return false;
}

DatasetStats TransactionDataset::ComputeStats() const {
  DatasetStats stats;
  stats.num_transactions = transactions_.size();
  if (transactions_.empty()) return stats;

  std::unordered_set<LocationKey> locations;
  std::unordered_set<LocationKey> origins;
  std::unordered_set<LocationKey> destinations;
  std::unordered_set<std::uint64_t> od_pairs;
  RunningStats distance, weight, hours;
  stats.first_pickup_day = transactions_.front().req_pickup_day;
  stats.last_pickup_day = transactions_.front().req_pickup_day;
  for (const Transaction& t : transactions_) {
    const LocationKey o = OriginKey(t);
    const LocationKey d = DestKey(t);
    locations.insert(o);
    locations.insert(d);
    origins.insert(o);
    destinations.insert(d);
    // Combine the two 44-bit-ish keys into one pair key.
    od_pairs.insert(static_cast<std::uint64_t>(o) * 0x9E3779B97F4A7C15ULL ^
                    static_cast<std::uint64_t>(d));
    distance.Add(t.total_distance);
    weight.Add(t.gross_weight);
    hours.Add(t.transit_hours);
    stats.first_pickup_day = std::min(stats.first_pickup_day,
                                      t.req_pickup_day);
    stats.last_pickup_day = std::max(stats.last_pickup_day,
                                     t.req_pickup_day);
    if (t.mode == TransMode::kTruckload) {
      ++stats.num_truckload;
    } else {
      ++stats.num_less_than_truckload;
    }
  }
  stats.distinct_locations = locations.size();
  stats.distinct_origins = origins.size();
  stats.distinct_destinations = destinations.size();
  stats.distinct_od_pairs = od_pairs.size();
  stats.distance = distance.Finish();
  stats.weight = weight.Finish();
  stats.transit_hours = hours.Finish();
  return stats;
}

bool TransactionDataset::SaveCsv(const std::string& path,
                                 std::string* error) const {
  CsvWriter writer(path);
  if (!writer.ok()) {
    *error = writer.error();
    return false;
  }
  std::vector<std::string> header;
  for (const char* name : kAttributeNames) header.push_back(name);
  writer.WriteRecord(header);
  char buf[64];
  auto fmt = [&](double v, int decimals) {
    std::snprintf(buf, sizeof(buf), "%.*f", decimals, v);
    return std::string(buf);
  };
  for (const Transaction& t : transactions_) {
    writer.WriteRecord({
        std::to_string(t.id),
        FormatDayNumber(t.req_pickup_day),
        FormatDayNumber(t.req_delivery_day),
        fmt(t.origin_latitude, 1),
        fmt(t.origin_longitude, 1),
        fmt(t.dest_latitude, 1),
        fmt(t.dest_longitude, 1),
        fmt(t.total_distance, 1),
        fmt(t.gross_weight, 1),
        fmt(t.transit_hours, 2),
        ToString(t.mode),
    });
    if (!writer.ok()) {
      *error = writer.error();
      return false;
    }
  }
  return true;
}

bool TransactionDataset::LoadCsv(const std::string& path,
                                 TransactionDataset* dataset,
                                 std::string* error) {
  CsvReader reader(path);
  if (!reader.ok()) {
    *error = reader.error();
    return false;
  }
  std::vector<std::string> fields;
  if (!reader.ReadRecord(&fields)) {
    *error = reader.ok() ? "empty file" : reader.error();
    return false;
  }
  if (fields.size() != kNumAttributes) {
    *error = "unexpected header width";
    return false;
  }
  std::vector<Transaction> rows;
  auto fail_row = [&](const char* what) {
    *error = std::string(what) + " at line " +
             std::to_string(reader.line_number());
    return false;
  };
  while (reader.ReadRecord(&fields)) {
    if (fields.size() != kNumAttributes) return fail_row("wrong field count");
    Transaction t;
    if (!ParseInt64(fields[0], &t.id)) return fail_row("bad id");
    if (!ParseDayNumber(fields[1], &t.req_pickup_day)) {
      return fail_row("bad pickup date");
    }
    if (!ParseDayNumber(fields[2], &t.req_delivery_day)) {
      return fail_row("bad delivery date");
    }
    if (!ParseFiniteDouble(fields[3], &t.origin_latitude) ||
        !ParseFiniteDouble(fields[4], &t.origin_longitude) ||
        !ParseFiniteDouble(fields[5], &t.dest_latitude) ||
        !ParseFiniteDouble(fields[6], &t.dest_longitude) ||
        !ParseFiniteDouble(fields[7], &t.total_distance) ||
        !ParseFiniteDouble(fields[8], &t.gross_weight) ||
        !ParseFiniteDouble(fields[9], &t.transit_hours)) {
      return fail_row("bad numeric field");
    }
    if (!ParseTransMode(fields[10], &t.mode)) return fail_row("bad mode");
    rows.push_back(t);
  }
  if (!reader.ok()) {
    *error = reader.error();
    return false;
  }
  *dataset = TransactionDataset(std::move(rows));
  return true;
}

}  // namespace tnmine::data
