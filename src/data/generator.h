#ifndef TNMINE_DATA_GENERATOR_H_
#define TNMINE_DATA_GENERATOR_H_

#include <cstdint>

#include "data/dataset.h"

namespace tnmine::data {

/// Configuration for the synthetic transportation-network generator.
///
/// The defaults (PaperScale()) are calibrated to the proprietary
/// third-party-logistics dataset described in Section 3 of the paper:
/// 98,292 transactions across six months, 4,038 distinct lat/long points,
/// 1,797 distinct origins, 3,770 distinct destinations (several locations
/// both), 20,900 distinct OD pairs, out-degree 1/2373/~12 and in-degree
/// 1/832/~6 (min/max/avg over the deduplicated OD graph).
///
/// Beyond the aggregate counts, the generator plants the phenomena each of
/// the paper's experiments depends on:
///  - Zipf-skewed hub popularity (hub-and-spoke structures, Figure 2);
///  - repeated multi-stop route chains (long-chain patterns, Figure 3);
///  - weekly scheduled routes with stable weights (temporal patterns,
///    Section 6 / Figure 4);
///  - a weight -> transportation-mode dependence (association rules and
///    the 96 %-accurate J4.8 classifier, Section 7);
///  - regional geography that ties origin longitude bands to origin
///    latitude bands (the confidence-0.87 association rule, Section 7.1);
///  - a tiny air-freight outlier group, Pacific Northwest -> Hawaii, over
///    3,000 miles in under 24 hours (EM cluster 0, Section 7.3).
struct GeneratorConfig {
  std::uint64_t seed = 2005;

  // Network cardinalities. Must satisfy:
  //   num_origins + num_destinations >= num_locations  (overlap exists)
  //   num_origins, num_destinations <= num_locations
  //   hub_out_degree <= num_destinations
  //   hub_in_degree <= num_origins
  //   num_od_pairs >= mandatory pairs (hub, coverage, chains)
  //   num_transactions >= num_od_pairs
  std::size_t num_locations = 4038;
  std::size_t num_origins = 1797;
  std::size_t num_destinations = 3770;
  std::size_t num_od_pairs = 20900;
  std::size_t num_transactions = 98292;
  std::size_t hub_out_degree = 2373;  ///< OD-graph max out-degree
  std::size_t hub_in_degree = 832;    ///< OD-graph max in-degree

  // Calendar.
  int start_year = 2004;
  int start_month = 1;
  int start_day_of_month = 5;
  std::size_t num_days = 182;  ///< six months

  // Load characteristics.
  double truckload_weight_threshold = 10000.0;  ///< pounds
  double mode_noise = 0.04;   ///< chance the mode contradicts the weight
  std::size_t num_air_freight = 3;
  std::size_t num_heavy_outliers = 5;  ///< near-500-ton project loads
  double road_factor = 1.18;  ///< road miles per great-circle mile

  // Temporal / structural pattern planting.
  double scheduled_pair_fraction = 0.10;  ///< pairs on a weekly schedule
  std::size_t num_route_chains = 40;
  std::size_t chain_length = 7;  ///< edges per chain

  // Calendar texture. Weekends and a mid-window quiet (holiday) week carry
  // much less freight; these low-activity days are what Section 6's
  // "dates with fewer than 200 distinct vertex labels" filter (Table 3)
  // selects.
  double saturday_factor = 0.12;
  double sunday_factor = 0.06;
  bool enable_quiet_week = true;   ///< 7 consecutive days at ~3 % volume
  std::size_t num_holiday_days = 3;

  /// Full paper-calibrated scale (the defaults).
  static GeneratorConfig PaperScale() { return GeneratorConfig{}; }

  /// A small configuration for tests and examples (hundreds of
  /// transactions; generates in well under a millisecond).
  static GeneratorConfig SmallScale();
};

/// Deterministically synthesizes a TransactionDataset from `config`.
/// Aborts (TNMINE_CHECK) on inconsistent configurations.
TransactionDataset GenerateTransportData(const GeneratorConfig& config);

}  // namespace tnmine::data

#endif  // TNMINE_DATA_GENERATOR_H_
