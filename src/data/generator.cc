#include "data/generator.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/check.h"
#include "common/date.h"
#include "common/random.h"

namespace tnmine::data {

namespace {

/// Regional mixture for continental-US location placement. The Northeast /
/// Great-Lakes-East region dominates the (-85, -75] longitude band and is
/// centered near latitude 42, which is what makes the paper's
/// origin-longitude -> origin-latitude association rule come out with high
/// confidence.
struct Region {
  double weight;
  double lat_mu, lat_sd;
  double lon_mu, lon_sd;
};

constexpr Region kRegions[] = {
    {0.28, 41.8, 1.1, -79.5, 2.6},   // Northeast / eastern Great Lakes
    {0.24, 41.5, 1.4, -89.5, 2.2},   // Midwest
    {0.10, 32.8, 1.4, -86.8, 1.2},   // Southeast
    {0.12, 31.5, 1.5, -97.0, 1.8},   // Texas
    {0.12, 36.5, 2.5, -120.0, 1.5},  // West coast
    {0.06, 46.5, 1.0, -122.0, 1.0},  // Pacific Northwest
    {0.08, 39.5, 2.0, -105.0, 3.0},  // Mountain / Plains
};

struct PairInfo {
  std::uint32_t origin;
  std::uint32_t dest;
  std::size_t count = 1;      // transactions carried by this pair
  bool scheduled = false;     // weekly repeated route with stable weight
  bool air = false;           // air-freight outlier pair
  int phase = 0;              // schedule phase (day offset)
  double base_weight = 0.0;   // stable weight for scheduled pairs
};

double Clamp(double x, double lo, double hi) {
  return std::min(hi, std::max(lo, x));
}

}  // namespace

GeneratorConfig GeneratorConfig::SmallScale() {
  GeneratorConfig c;
  c.num_locations = 120;
  c.num_origins = 60;
  c.num_destinations = 90;
  c.num_od_pairs = 400;
  c.num_transactions = 2000;
  c.hub_out_degree = 50;
  c.hub_in_degree = 25;
  c.num_days = 60;
  c.num_route_chains = 6;
  c.chain_length = 5;
  c.scheduled_pair_fraction = 0.15;
  c.num_heavy_outliers = 2;
  return c;
}

TransactionDataset GenerateTransportData(const GeneratorConfig& config) {
  TNMINE_CHECK(config.num_locations >= 8);
  TNMINE_CHECK(config.num_origins <= config.num_locations);
  TNMINE_CHECK(config.num_destinations <= config.num_locations);
  TNMINE_CHECK_MSG(
      config.num_origins + config.num_destinations >= config.num_locations,
      "every location must be an origin, a destination, or both");
  TNMINE_CHECK(config.hub_out_degree >= 1 &&
               config.hub_out_degree <= config.num_destinations);
  TNMINE_CHECK(config.hub_in_degree >= 1 &&
               config.hub_in_degree <= config.num_origins);
  TNMINE_CHECK(config.num_transactions >= config.num_od_pairs);
  TNMINE_CHECK(config.num_days >= 7);

  Rng rng(config.seed);

  // ---------------------------------------------------------------------
  // 1. Place locations. Index layout:
  //      [0, num_origins)                      may originate loads
  //      [num_locations - num_destinations, n) may receive loads
  //    (the two ranges overlap in the middle). Fixed special locations:
  //      0                  continental mega-hub origin
  //      1                  Seattle (air-freight origin, PNW)
  //      n-1, n-2           Hawaii (air-freight destinations, dest-only)
  //      n-3                continental mega-destination
  const std::size_t n = config.num_locations;
  struct Point {
    double lat, lon;
  };
  std::vector<Point> locations(n);
  std::unordered_set<LocationKey> used_keys;
  auto claim = [&](std::size_t index, double lat, double lon) {
    lat = RoundToDeciDegree(lat);
    lon = RoundToDeciDegree(lon);
    const LocationKey key = MakeLocationKey(lat, lon);
    if (!used_keys.insert(key).second) return false;
    locations[index] = {lat, lon};
    return true;
  };
  TNMINE_CHECK(claim(1, 47.6, -122.3));      // Seattle
  TNMINE_CHECK(claim(n - 1, 21.3, -157.9));  // Honolulu
  TNMINE_CHECK(claim(n - 2, 19.7, -155.1));  // Hilo
  for (std::size_t i = 0; i < n; ++i) {
    if (i == 1 || i == n - 1 || i == n - 2) continue;
    for (;;) {
      std::vector<double> weights;
      for (const Region& r : kRegions) weights.push_back(r.weight);
      const Region& region = kRegions[rng.NextWeighted(weights)];
      const double lat =
          Clamp(rng.NextGaussian(region.lat_mu, region.lat_sd), 24.6, 49.0);
      const double lon =
          Clamp(rng.NextGaussian(region.lon_mu, region.lon_sd), -124.4,
                -67.0);
      if (claim(i, lat, lon)) break;
    }
  }

  const std::size_t dest_begin = n - config.num_destinations;
  auto is_origin = [&](std::size_t i) { return i < config.num_origins; };
  auto is_dest = [&](std::size_t i) { return i >= dest_begin; };
  const std::size_t mega_dest = n - 3;
  TNMINE_CHECK(is_dest(mega_dest));
  TNMINE_CHECK(is_origin(0) && is_origin(1));
  TNMINE_CHECK(is_dest(n - 1) && is_dest(n - 2));

  // ---------------------------------------------------------------------
  // 2. Build the distinct OD-pair set with exact cardinality.
  std::vector<PairInfo> pairs;
  std::unordered_set<std::uint64_t> pair_keys;
  auto add_pair = [&](std::size_t o, std::size_t d) -> PairInfo* {
    TNMINE_DCHECK(is_origin(o));
    TNMINE_DCHECK(is_dest(d));
    const std::uint64_t key = (static_cast<std::uint64_t>(o) << 32) | d;
    if (!pair_keys.insert(key).second) return nullptr;
    pairs.push_back(
        {static_cast<std::uint32_t>(o), static_cast<std::uint32_t>(d)});
    return &pairs.back();
  };

  // 2a. Mega-hub origin 0: exactly hub_out_degree distinct destinations.
  {
    std::vector<std::size_t> dests;
    for (std::size_t d = dest_begin; d < n; ++d) dests.push_back(d);
    rng.Shuffle(dests);
    std::size_t added = 0;
    for (std::size_t d : dests) {
      if (added == config.hub_out_degree) break;
      if (d == n - 1 || d == n - 2) continue;  // keep Hawaii air-only
      if (add_pair(0, d) != nullptr) ++added;
    }
    TNMINE_CHECK(added == config.hub_out_degree);
  }
  // 2b. Mega-destination: hub_in_degree distinct origins (origin 0 may
  // already point at it; count it if so).
  {
    std::size_t have = pair_keys.contains(
                           (static_cast<std::uint64_t>(0) << 32) | mega_dest)
                           ? 1u
                           : 0u;
    std::vector<std::size_t> origins;
    for (std::size_t o = 1; o < config.num_origins; ++o) origins.push_back(o);
    rng.Shuffle(origins);
    for (std::size_t o : origins) {
      if (have == config.hub_in_degree) break;
      if (add_pair(o, mega_dest) != nullptr) ++have;
    }
    TNMINE_CHECK(have == config.hub_in_degree);
  }
  // 2c. Air-freight pair: Seattle -> Honolulu.
  std::size_t air_pair_index = 0;
  {
    PairInfo* air = add_pair(1, n - 1);
    TNMINE_CHECK(air != nullptr);
    air->air = true;
    air_pair_index = pairs.size() - 1;
  }
  // 2d. Route chains through the origin∩destination overlap zone.
  std::vector<std::size_t> chain_pair_indices;
  {
    std::vector<std::size_t> overlap;
    for (std::size_t i = std::max<std::size_t>(dest_begin, 2);
         i < config.num_origins; ++i) {
      overlap.push_back(i);
    }
    if (overlap.size() >= config.chain_length + 1) {
      for (std::size_t c = 0; c < config.num_route_chains; ++c) {
        std::vector<std::size_t> stops = overlap;
        rng.Shuffle(stops);
        stops.resize(config.chain_length + 1);
        for (std::size_t i = 0; i + 1 < stops.size(); ++i) {
          PairInfo* p = add_pair(stops[i], stops[i + 1]);
          if (p != nullptr) {
            p->scheduled = true;
            chain_pair_indices.push_back(pairs.size() - 1);
          }
        }
      }
    }
  }
  // 2e. Coverage: every origin ships somewhere, every destination receives.
  {
    std::vector<char> origin_covered(config.num_origins, 0);
    std::vector<char> dest_covered(n, 0);
    for (const PairInfo& p : pairs) {
      origin_covered[p.origin] = 1;
      dest_covered[p.dest] = 1;
    }
    // Keep the coverage fill away from the special vertices so the
    // mega-hub / mega-destination degrees stay exactly at the configured
    // maxima and Hawaii stays air-only.
    for (std::size_t o = 0; o < config.num_origins; ++o) {
      while (!origin_covered[o]) {
        const std::size_t d =
            dest_begin + rng.NextBounded(config.num_destinations);
        if (d == mega_dest || d == n - 1 || d == n - 2) continue;
        if (add_pair(o, d) != nullptr) origin_covered[o] = 1;
      }
    }
    for (std::size_t d = dest_begin; d < n; ++d) {
      if (d == n - 1 || d == n - 2) continue;  // Hawaii reached only by air
      while (!dest_covered[d]) {
        const std::size_t o = 2 + rng.NextBounded(config.num_origins - 2);
        if (add_pair(o, d) != nullptr) dest_covered[d] = 1;
      }
    }
    // Hilo (n-2) still needs one inbound edge: a second air lane.
    if (!dest_covered[n - 2]) {
      PairInfo* p = add_pair(1, n - 2);
      if (p != nullptr) p->air = true;
    }
  }
  TNMINE_CHECK_MSG(pairs.size() <= config.num_od_pairs,
                   "mandatory pairs (%zu) exceed num_od_pairs (%zu)",
                   pairs.size(), config.num_od_pairs);

  // 2f. Fill with Zipf-popular pairs. Exclude the mega-hub origin and
  // mega-destination so their degrees stay the configured maxima.
  {
    std::vector<std::size_t> origin_rank;  // Zipf rank -> origin index
    for (std::size_t o = 2; o < config.num_origins; ++o) {
      origin_rank.push_back(o);
    }
    rng.Shuffle(origin_rank);
    std::vector<std::size_t> dest_rank;
    for (std::size_t d = dest_begin; d < n; ++d) {
      if (d != mega_dest && d != n - 1 && d != n - 2) dest_rank.push_back(d);
    }
    rng.Shuffle(dest_rank);
    TNMINE_CHECK(!origin_rank.empty() && !dest_rank.empty());
    while (pairs.size() < config.num_od_pairs) {
      const std::size_t o =
          origin_rank[rng.NextZipf(origin_rank.size(), 0.8)];
      const std::size_t d = dest_rank[rng.NextZipf(dest_rank.size(), 0.8)];
      add_pair(o, d);
    }
  }
  TNMINE_CHECK(pairs.size() == config.num_od_pairs);

  // ---------------------------------------------------------------------
  // 3. Allocate transaction counts per pair (each pair >= 1).
  std::size_t remaining = config.num_transactions - pairs.size();
  const std::size_t weekly_occurrences =
      std::max<std::size_t>(2, config.num_days / 7);
  {
    // Scheduled pairs repeat weekly. Chain pairs are always scheduled;
    // top up with random pairs to the configured fraction if budget
    // allows.
    std::vector<std::size_t> candidates;
    for (std::size_t i = 0; i < pairs.size(); ++i) {
      if (!pairs[i].scheduled && !pairs[i].air) candidates.push_back(i);
    }
    rng.Shuffle(candidates);
    const std::size_t want_scheduled = static_cast<std::size_t>(
        config.scheduled_pair_fraction * static_cast<double>(pairs.size()));
    std::size_t have_scheduled = chain_pair_indices.size();
    for (std::size_t i : candidates) {
      if (have_scheduled >= want_scheduled) break;
      pairs[i].scheduled = true;
      ++have_scheduled;
    }
    // Give scheduled pairs their weekly occurrences while budget lasts.
    for (PairInfo& p : pairs) {
      if (!p.scheduled) continue;
      const std::size_t extra =
          std::min(remaining, weekly_occurrences - 1);
      p.count += extra;
      remaining -= extra;
      if (remaining == 0) break;
    }
  }
  // Air pairs carry the configured number of outlier shipments.
  if (pairs[air_pair_index].air) {
    const std::size_t extra = std::min(
        remaining,
        config.num_air_freight > 0 ? config.num_air_freight - 1 : 0);
    pairs[air_pair_index].count += extra;
    remaining -= extra;
  }
  // Distribute the rest by Zipf popularity over a shuffled pair order.
  {
    std::vector<std::size_t> order(pairs.size());
    for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
    rng.Shuffle(order);
    while (remaining > 0) {
      PairInfo& p = pairs[order[rng.NextZipf(order.size(), 0.7)]];
      if (p.air) continue;
      ++p.count;
      --remaining;
    }
  }

  // ---------------------------------------------------------------------
  // 4. Emit transactions.
  const std::int64_t start_day = DayNumberFromCivil(
      {config.start_year, config.start_month, config.start_day_of_month});
  const std::int64_t last_day =
      start_day + static_cast<std::int64_t>(config.num_days) - 1;

  // Daily activity multipliers: weekends run light, and a mid-window
  // quiet week plus a few scattered holidays run nearly empty.
  std::vector<double> day_factor(config.num_days, 1.0);
  for (std::size_t d = 0; d < config.num_days; ++d) {
    const int dow = DayOfWeek(start_day + static_cast<std::int64_t>(d));
    if (dow == 5) day_factor[d] = config.saturday_factor;
    if (dow == 6) day_factor[d] = config.sunday_factor;
  }
  std::size_t quiet_start = config.num_days;  // past-the-end = disabled
  if (config.enable_quiet_week && config.num_days >= 30) {
    quiet_start = config.num_days / 2;
    for (std::size_t d = quiet_start;
         d < std::min(config.num_days, quiet_start + 7); ++d) {
      day_factor[d] = 0.03;
    }
  }
  for (std::size_t h = 0; h < config.num_holiday_days; ++h) {
    const std::size_t d = rng.NextBounded(config.num_days);
    if (d < quiet_start || d >= quiet_start + 7) day_factor[d] = 0.03;
  }
  auto draw_adhoc_day = [&]() {
    // Rejection sampling against the activity profile.
    for (int tries = 0; tries < 12; ++tries) {
      const std::size_t d = rng.NextBounded(config.num_days);
      if (rng.NextBool(day_factor[d])) {
        return start_day + static_cast<std::int64_t>(d);
      }
    }
    return start_day +
           static_cast<std::int64_t>(rng.NextBounded(config.num_days));
  };
  auto shift_off_quiet_days = [&](std::int64_t day) {
    // Scheduled freight avoids weekends/holidays: roll forward to the
    // next normal-activity day (bounded look-ahead).
    for (int step = 0; step < 4; ++step) {
      const std::int64_t candidate = day + step;
      if (candidate > last_day) break;
      const std::size_t index =
          static_cast<std::size_t>(candidate - start_day);
      if (day_factor[index] >= 0.5) return candidate;
    }
    return day;
  };

  std::vector<Transaction> out;
  out.reserve(config.num_transactions);

  auto draw_weight = [&]() {
    // Mixture: 55 % light LTL-ish loads, 45 % heavy TL loads.
    double w = rng.NextBool(0.55) ? rng.NextLogNormal(8.3, 0.9)
                                  : rng.NextLogNormal(10.3, 0.55);
    return Clamp(w, 40.0, 1.0e6);
  };

  for (PairInfo& p : pairs) {
    const Point& o = locations[p.origin];
    const Point& d = locations[p.dest];
    const double gc = HaversineMiles(o.lat, o.lon, d.lat, d.lon);
    const double base_distance = std::max(5.0, gc * config.road_factor);
    if (p.scheduled) {
      p.phase = static_cast<int>(rng.NextBounded(7));
      p.base_weight = draw_weight();
    }
    for (std::size_t k = 0; k < p.count; ++k) {
      Transaction t;
      // Pickup day.
      if (p.scheduled) {
        std::int64_t day = start_day + p.phase +
                           7 * static_cast<std::int64_t>(k);
        if (rng.NextBool(0.1)) day += rng.NextInt(-1, 1);
        day = std::min(last_day, std::max(start_day, day));
        t.req_pickup_day = shift_off_quiet_days(day);
      } else {
        t.req_pickup_day = draw_adhoc_day();
      }
      // Distance with small per-shipment routing noise.
      t.total_distance =
          std::max(5.0, base_distance * (1.0 + rng.NextGaussian(0, 0.02)));
      // Weight and mode.
      if (p.air) {
        t.gross_weight = Clamp(rng.NextLogNormal(7.2, 0.3), 40.0, 1.0e6);
      } else if (p.scheduled) {
        t.gross_weight =
            Clamp(p.base_weight * (1.0 + rng.NextGaussian(0, 0.05)), 40.0,
                  1.0e6);
      } else {
        t.gross_weight = draw_weight();
      }
      const bool heavy = t.gross_weight > config.truckload_weight_threshold;
      const bool flip = rng.NextBool(config.mode_noise);
      t.mode = (heavy != flip) ? TransMode::kTruckload
                               : TransMode::kLessThanTruckload;
      // Transit hours by service class.
      if (p.air) {
        t.transit_hours = t.total_distance / 500.0 + 3.0;
        t.mode = TransMode::kLessThanTruckload;
      } else if (t.mode == TransMode::kTruckload) {
        // Recorded move time includes terminal/dock dwell, which is far
        // noisier than the driving itself (real operational data; this is
        // what makes TOTAL_DISTANCE correlate with geography more than
        // with MOVE_TRANSIT_HOURS in Section 7.2).
        t.transit_hours =
            t.total_distance / rng.NextDouble(42.0, 52.0) +
            rng.NextDouble(2.0, 16.0);
      } else {
        t.transit_hours =
            t.total_distance / rng.NextDouble(30.0, 45.0) +
            rng.NextDouble(4.0, 36.0);
      }
      t.transit_hours = std::max(1.0, t.transit_hours);
      // Requested delivery date: customers plan on per-day line-haul
      // progress plus slack, independent of the dwell noise above.
      const std::int64_t span = static_cast<std::int64_t>(
          std::floor(t.total_distance / 650.0 + rng.NextDouble() * 0.6));
      t.req_delivery_day = t.req_pickup_day + std::max<std::int64_t>(0, span);
      t.origin_latitude = o.lat;
      t.origin_longitude = o.lon;
      t.dest_latitude = d.lat;
      t.dest_longitude = d.lon;
      out.push_back(t);
    }
  }
  TNMINE_CHECK(out.size() == config.num_transactions);

  // Heavy project-load outliers stretch the weight range toward 500 tons.
  for (std::size_t i = 0; i < config.num_heavy_outliers && !out.empty();
       ++i) {
    Transaction& t = out[rng.NextBounded(out.size())];
    t.gross_weight = rng.NextDouble(8.0e5, 1.0e6);
    t.mode = TransMode::kTruckload;
  }

  // Shuffle into arrival order and assign ids.
  rng.Shuffle(out);
  for (std::size_t i = 0; i < out.size(); ++i) {
    out[i].id = static_cast<std::int64_t>(i) + 1;
  }
  return TransactionDataset(std::move(out));
}

}  // namespace tnmine::data
