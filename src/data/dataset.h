#ifndef TNMINE_DATA_DATASET_H_
#define TNMINE_DATA_DATASET_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/statistics.h"
#include "data/geo.h"
#include "data/schema.h"

namespace tnmine::data {

/// Section-3-style dataset description: the numbers the paper reports in
/// its "Transportation Network Data Description".
struct DatasetStats {
  std::size_t num_transactions = 0;
  std::size_t distinct_locations = 0;      ///< distinct lat/long pairs
  std::size_t distinct_origins = 0;
  std::size_t distinct_destinations = 0;
  std::size_t distinct_od_pairs = 0;
  std::int64_t first_pickup_day = 0;
  std::int64_t last_pickup_day = 0;
  SummaryStats distance;
  SummaryStats weight;
  SummaryStats transit_hours;
  std::size_t num_truckload = 0;
  std::size_t num_less_than_truckload = 0;
};

/// An in-memory collection of OD transactions — the substrate every
/// experiment in the paper starts from.
class TransactionDataset {
 public:
  TransactionDataset() = default;
  explicit TransactionDataset(std::vector<Transaction> transactions)
      : transactions_(std::move(transactions)) {}

  const std::vector<Transaction>& transactions() const {
    return transactions_;
  }
  std::vector<Transaction>& mutable_transactions() { return transactions_; }
  std::size_t size() const { return transactions_.size(); }
  bool empty() const { return transactions_.empty(); }
  const Transaction& operator[](std::size_t i) const {
    return transactions_[i];
  }

  void Add(const Transaction& t) { transactions_.push_back(t); }

  /// Computes the Section-3 dataset description.
  DatasetStats ComputeStats() const;

  /// Origin location key of transaction `t`.
  static LocationKey OriginKey(const Transaction& t) {
    return MakeLocationKey(t.origin_latitude, t.origin_longitude);
  }
  /// Destination location key of transaction `t`.
  static LocationKey DestKey(const Transaction& t) {
    return MakeLocationKey(t.dest_latitude, t.dest_longitude);
  }

  /// Persists the dataset as CSV with a Table-1 header row. Returns false
  /// and sets `error` on I/O failure.
  bool SaveCsv(const std::string& path, std::string* error) const;

  /// Loads a dataset written by SaveCsv. Returns false and sets `error` on
  /// I/O failure or malformed rows (row number included).
  static bool LoadCsv(const std::string& path, TransactionDataset* dataset,
                      std::string* error);

 private:
  std::vector<Transaction> transactions_;
};

}  // namespace tnmine::data

#endif  // TNMINE_DATA_DATASET_H_
