#include "data/od_graph.h"

#include "common/check.h"

namespace tnmine::data {

double AttributeValue(const Transaction& t, EdgeAttribute attribute) {
  switch (attribute) {
    case EdgeAttribute::kGrossWeight:
      return t.gross_weight;
    case EdgeAttribute::kMoveTransitHours:
      return t.transit_hours;
    case EdgeAttribute::kTotalDistance:
      return t.total_distance;
  }
  TNMINE_CHECK(false);
  return 0.0;
}

const char* OdGraphName(EdgeAttribute attribute) {
  switch (attribute) {
    case EdgeAttribute::kGrossWeight:
      return "OD_GW";
    case EdgeAttribute::kMoveTransitHours:
      return "OD_TH";
    case EdgeAttribute::kTotalDistance:
      return "OD_TD";
  }
  return "OD_??";
}

OdGraph BuildOdGraph(const TransactionDataset& dataset,
                     const OdGraphOptions& options) {
  TNMINE_CHECK(options.num_bins >= 1);
  OdGraph out;
  if (dataset.empty()) return out;

  // Fit the discretizer on the full attribute column.
  std::vector<double> values;
  values.reserve(dataset.size());
  for (const Transaction& t : dataset.transactions()) {
    values.push_back(AttributeValue(t, options.attribute));
  }
  out.discretizer = options.equal_frequency
                        ? Discretizer::EqualFrequency(values,
                                                      options.num_bins)
                        : Discretizer::EqualWidth(values, options.num_bins);

  auto vertex_for = [&](LocationKey key) {
    const auto it = out.location_vertex.find(key);
    if (it != out.location_vertex.end()) return it->second;
    graph::Label label = 0;
    if (options.vertex_labeling == VertexLabeling::kByLocation) {
      label = static_cast<graph::Label>(out.vertex_location.size());
    }
    const graph::VertexId v = out.graph.AddVertex(label);
    out.vertex_location.push_back(key);
    out.location_vertex.emplace(key, v);
    return v;
  };

  out.edge_transaction.reserve(dataset.size());
  for (std::size_t i = 0; i < dataset.size(); ++i) {
    const Transaction& t = dataset[i];
    const graph::VertexId src =
        vertex_for(TransactionDataset::OriginKey(t));
    const graph::VertexId dst = vertex_for(TransactionDataset::DestKey(t));
    const graph::Label label = static_cast<graph::Label>(
        out.discretizer.Bin(AttributeValue(t, options.attribute)));
    out.graph.AddEdge(src, dst, label);
    out.edge_transaction.push_back(static_cast<std::uint32_t>(i));
  }
  return out;
}

namespace {
OdGraph BuildWithDefaults(const TransactionDataset& dataset,
                          EdgeAttribute attribute, int bins,
                          VertexLabeling vertex_labeling) {
  OdGraphOptions options;
  options.attribute = attribute;
  options.num_bins = bins;
  options.vertex_labeling = vertex_labeling;
  // Equal-width ranges, as the paper's figures imply (Figure 4's weight
  // cuts are evenly spaced; Figure 1/3's labels concentrate in the low
  // bins). The concentration is load-bearing: it is what lets chain
  // patterns aggregate support across different short-haul routes.
  options.equal_frequency = false;
  return BuildOdGraph(dataset, options);
}
}  // namespace

OdGraph BuildOdGw(const TransactionDataset& dataset,
                  VertexLabeling vertex_labeling) {
  return BuildWithDefaults(dataset, EdgeAttribute::kGrossWeight, 7,
                           vertex_labeling);
}

OdGraph BuildOdTh(const TransactionDataset& dataset,
                  VertexLabeling vertex_labeling) {
  return BuildWithDefaults(dataset, EdgeAttribute::kMoveTransitHours, 10,
                           vertex_labeling);
}

OdGraph BuildOdTd(const TransactionDataset& dataset,
                  VertexLabeling vertex_labeling) {
  return BuildWithDefaults(dataset, EdgeAttribute::kTotalDistance, 10,
                           vertex_labeling);
}

}  // namespace tnmine::data
