#ifndef TNMINE_DATA_OD_GRAPH_H_
#define TNMINE_DATA_OD_GRAPH_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/binning.h"
#include "data/dataset.h"
#include "graph/labeled_graph.h"

namespace tnmine::data {

/// Which transaction attribute labels the edges (Section 3: the paper
/// builds OD_GW, OD_TH, and OD_TD — same vertices and edges, different
/// edge labelings).
enum class EdgeAttribute {
  kGrossWeight,        ///< OD_GW
  kMoveTransitHours,   ///< OD_TH
  kTotalDistance,      ///< OD_TD
};

/// Vertex labeling scheme.
enum class VertexLabeling {
  /// All vertices share one label — Section 5's structural-similarity
  /// mining, where location identity must not matter.
  kUniform,
  /// One distinct label per location — Section 6's temporally repeated
  /// routes, where patterns must recur at the same places.
  kByLocation,
};

/// Options for building an OD graph from a transaction dataset.
struct OdGraphOptions {
  EdgeAttribute attribute = EdgeAttribute::kGrossWeight;
  VertexLabeling vertex_labeling = VertexLabeling::kUniform;
  /// Number of value ranges for the edge attribute (the paper used seven
  /// for gross weight and ten for transit hours).
  int num_bins = 7;
  /// Equal-frequency instead of equal-width binning.
  bool equal_frequency = false;
};

/// A directed multigraph over locations: one vertex per distinct lat/long
/// point, one edge per transaction, edge label = binned attribute value.
struct OdGraph {
  graph::LabeledGraph graph;
  /// vertex -> quantized location.
  std::vector<LocationKey> vertex_location;
  /// location -> vertex.
  std::unordered_map<LocationKey, graph::VertexId> location_vertex;
  /// edge id -> index of the transaction it represents.
  std::vector<std::uint32_t> edge_transaction;
  /// The discretizer that produced the edge labels (for rendering
  /// Figure-4-style interval labels).
  Discretizer discretizer = Discretizer::FromCutPoints({});
};

/// Returns the labeling attribute's value for `t`.
double AttributeValue(const Transaction& t, EdgeAttribute attribute);

/// Human-readable graph name ("OD_GW", "OD_TH", "OD_TD").
const char* OdGraphName(EdgeAttribute attribute);

/// Builds the OD graph for `dataset` under `options`.
OdGraph BuildOdGraph(const TransactionDataset& dataset,
                     const OdGraphOptions& options);

/// Paper-parameterized conveniences: OD_GW with 7 weight bins, OD_TH with
/// 10 transit-hour bins, OD_TD with 10 distance bins.
OdGraph BuildOdGw(const TransactionDataset& dataset,
                  VertexLabeling vertex_labeling = VertexLabeling::kUniform);
OdGraph BuildOdTh(const TransactionDataset& dataset,
                  VertexLabeling vertex_labeling = VertexLabeling::kUniform);
OdGraph BuildOdTd(const TransactionDataset& dataset,
                  VertexLabeling vertex_labeling = VertexLabeling::kUniform);

}  // namespace tnmine::data

#endif  // TNMINE_DATA_OD_GRAPH_H_
