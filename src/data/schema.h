#ifndef TNMINE_DATA_SCHEMA_H_
#define TNMINE_DATA_SCHEMA_H_

#include <cstdint>
#include <string>

namespace tnmine::data {

/// TRANS_MODE attribute values (Table 1): full truckload or
/// less-than-truckload.
enum class TransMode : std::uint8_t {
  kTruckload = 0,         ///< "TL"
  kLessThanTruckload = 1  ///< "LTL"
};

/// Short string form ("TL" / "LTL").
std::string ToString(TransMode mode);

/// Parses "TL" / "LTL"; returns false on anything else.
bool ParseTransMode(const std::string& text, TransMode* mode);

/// One origin-destination shipment record with the eleven attributes of
/// Table 1 in the paper.
///
/// Latitudes and longitudes are stored to the nearest 0.1 degree, exactly
/// as the paper's data was. Dates are day numbers (see common/date.h).
/// Distances are road miles, weights are pounds, transit time is hours.
struct Transaction {
  std::int64_t id = 0;                 ///< ID
  std::int64_t req_pickup_day = 0;     ///< REQ_PICKUP_DT
  std::int64_t req_delivery_day = 0;   ///< REQ_DELIVERY_DT
  double origin_latitude = 0.0;        ///< ORIGIN_LATITUDE
  double origin_longitude = 0.0;       ///< ORIGIN_LONGITUDE
  double dest_latitude = 0.0;          ///< DEST_LATITUDE
  double dest_longitude = 0.0;         ///< DEST_LONGITUDE
  double total_distance = 0.0;         ///< TOTAL_DISTANCE (road miles)
  double gross_weight = 0.0;           ///< GROSS_WEIGHT (pounds)
  double transit_hours = 0.0;          ///< MOVE_TRANSIT_HOURS
  TransMode mode = TransMode::kTruckload;  ///< TRANS_MODE
};

/// Number of attributes in the schema (Table 1).
inline constexpr int kNumAttributes = 11;

/// Canonical attribute names, in Table 1 order.
inline constexpr const char* kAttributeNames[kNumAttributes] = {
    "ID",
    "REQ_PICKUP_DT",
    "REQ_DELIVERY_DT",
    "ORIGIN_LATITUDE",
    "ORIGIN_LONGITUDE",
    "DEST_LATITUDE",
    "DEST_LONGITUDE",
    "TOTAL_DISTANCE",
    "GROSS_WEIGHT",
    "MOVE_TRANSIT_HOURS",
    "TRANS_MODE",
};

}  // namespace tnmine::data

#endif  // TNMINE_DATA_SCHEMA_H_
