#ifndef TNMINE_CORE_FLOW_BALANCE_H_
#define TNMINE_CORE_FLOW_BALANCE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "data/dataset.h"

namespace tnmine::core {

/// A directionally imbalanced lane: "significant traffic from node 2 to
/// node 4 via node 3, but not much return traffic" is how the paper reads
/// its Figure-1 pattern — trucks deadhead home empty, which is a pricing /
/// repositioning opportunity outside classical route optimization.
struct LaneImbalance {
  data::LocationKey from = 0;
  data::LocationKey to = 0;
  std::size_t forward_shipments = 0;   ///< from -> to
  std::size_t backward_shipments = 0;  ///< to -> from
  /// (forward - backward) / (forward + backward), in (0, 1].
  double imbalance = 0.0;
};

struct LaneBalanceOptions {
  /// Only lanes with at least this much forward traffic matter.
  std::size_t min_forward_shipments = 10;
  /// Minimum directional imbalance to report.
  double min_imbalance = 0.8;
};

/// Finds heavily one-directional lanes, sorted by forward volume
/// descending. A lane is reported once, oriented in its heavy direction.
std::vector<LaneImbalance> FindDeadheadLanes(
    const data::TransactionDataset& dataset,
    const LaneBalanceOptions& options = {});

/// Per-location inbound/outbound totals — Section 9's "balance of flow
/// in/out of a certain market".
struct MarketFlow {
  data::LocationKey location = 0;
  std::size_t inbound = 0;
  std::size_t outbound = 0;
  /// (outbound - inbound) / (outbound + inbound), in [-1, 1]; positive =
  /// net freight source, negative = net sink.
  double net_flow = 0.0;
};

struct MarketFlowOptions {
  /// Only locations moving at least this many shipments total.
  std::size_t min_shipments = 20;
};

/// Computes per-market flow balance, sorted by |net_flow| descending then
/// volume.
std::vector<MarketFlow> ComputeMarketFlows(
    const data::TransactionDataset& dataset,
    const MarketFlowOptions& options = {});

/// Readable one-liners for reports.
std::string ToString(const LaneImbalance& lane);
std::string ToString(const MarketFlow& market);

}  // namespace tnmine::core

#endif  // TNMINE_CORE_FLOW_BALANCE_H_
