#ifndef TNMINE_CORE_EPISODES_H_
#define TNMINE_CORE_EPISODES_H_

#include <cstdint>
#include <string>
#include <vector>

#include "data/dataset.h"

namespace tnmine::core {

/// Options for dynamic-graph episode mining — the Section-9 future-work
/// item this library implements as an extension: "find frequently
/// repeated connection paths, where the entire path is not connected at
/// any given time instant but adjacent edges and vertices always
/// co-exist", with "patterns occurring... possibly with an unknown
/// period" and window/gap constraints ("the transactions composing the
/// pattern must be separated by a minimum or maximum time").
struct EpisodeOptions {
  /// Minimum repetitions for a route to be an episode.
  std::size_t min_occurrences = 4;
  /// A route counts as periodic when the median day gap between
  /// consecutive occurrences lies in [min_period_days, max_period_days]
  /// and the gaps' spread stays within `period_tolerance_days`.
  int min_period_days = 2;
  int max_period_days = 28;
  double period_tolerance_days = 1.5;
  /// Path chaining: a follow-on leg must depart within
  /// [min_leg_gap_days, max_leg_gap_days] of the previous leg's pickup.
  int min_leg_gap_days = 0;
  int max_leg_gap_days = 3;
  std::size_t max_path_legs = 3;
  /// Minimum co-occurrences for a chained path episode.
  std::size_t min_path_occurrences = 3;
};

/// A periodically repeated OD route.
struct RouteEpisode {
  data::LocationKey origin = 0;
  data::LocationKey dest = 0;
  std::vector<std::int64_t> pickup_days;  ///< ascending
  double median_period_days = 0.0;
  double gap_spread_days = 0.0;  ///< median absolute deviation of gaps
};

/// A repeated connection path O -> X -> Y ... where each leg departs
/// shortly after the previous one, across several dated occurrences —
/// never fully connected on any single day, which is exactly what the
/// static per-day partitioning of Section 6 cannot find.
struct PathEpisode {
  std::vector<data::LocationKey> stops;       ///< legs.size() + 1
  std::vector<std::int64_t> start_days;       ///< first-leg pickup days
  std::size_t occurrences = 0;
};

struct EpisodeResult {
  std::vector<RouteEpisode> routes;  ///< sorted by occurrence count desc
  std::vector<PathEpisode> paths;    ///< sorted by occurrences desc
};

/// Mines periodic route episodes and chained path episodes from dated
/// transactions.
EpisodeResult MineRouteEpisodes(const data::TransactionDataset& dataset,
                                const EpisodeOptions& options);

/// Human-readable rendering of an episode ("(44.5,-88.0) -> (40.4,-86.9)
/// every ~7 days x26").
std::string EpisodeToString(const RouteEpisode& episode);
std::string EpisodeToString(const PathEpisode& episode);

}  // namespace tnmine::core

#endif  // TNMINE_CORE_EPISODES_H_
