#ifndef TNMINE_CORE_INTERESTINGNESS_H_
#define TNMINE_CORE_INTERESTINGNESS_H_

#include <vector>

#include "pattern/pattern.h"

namespace tnmine::core {

/// Weights for ranking graph patterns by interestingness — Section 9's
/// challenge ("Even at high support levels we found many frequent
/// patterns. However, many of these patterns turn out to be trivial or
/// uninteresting... Similar metrics are needed for graph mining").
///
/// The score combines:
///  - compression: support * (pattern size - 1), an MDL-flavored estimate
///    of how much of the data the pattern explains beyond its parts;
///  - shape: transportation-meaningful shapes (cycles — "circular
///    routes"; hub-and-spoke; chains — delivery routes) earn a bonus,
///    single edges a penalty;
///  - label diversity: patterns mixing several edge labels (weight/time
///    classes) say more than one-label patterns.
struct InterestingnessWeights {
  double compression_weight = 1.0;
  double shape_bonus = 2.0;      ///< multiplier for cycle/hub/chain shapes
  double single_edge_penalty = 0.25;
  double label_diversity_weight = 0.5;
};

/// Scores one pattern; higher is more interesting. Patterns with no edges
/// score 0.
double PatternInterestingness(const pattern::FrequentPattern& p,
                              const InterestingnessWeights& weights = {});

/// All registry patterns ranked by decreasing interestingness.
std::vector<const pattern::FrequentPattern*> RankPatterns(
    const pattern::PatternRegistry& registry,
    const InterestingnessWeights& weights = {});

}  // namespace tnmine::core

#endif  // TNMINE_CORE_INTERESTINGNESS_H_
