#include "core/interestingness.h"

#include <algorithm>
#include <cmath>
#include <unordered_set>

#include "pattern/render.h"

namespace tnmine::core {

double PatternInterestingness(const pattern::FrequentPattern& p,
                              const InterestingnessWeights& weights) {
  const std::size_t edges = p.graph.num_edges();
  if (edges == 0) return 0.0;
  const double size = static_cast<double>(p.graph.num_vertices() + edges);
  double score = weights.compression_weight *
                 static_cast<double>(p.support) * (size - 1.0);
  const pattern::PatternShape shape = pattern::ClassifyShape(p.graph);
  switch (shape) {
    case pattern::PatternShape::kSingleEdge:
      score *= weights.single_edge_penalty;
      break;
    case pattern::PatternShape::kCycle:
    case pattern::PatternShape::kHubAndSpoke:
    case pattern::PatternShape::kChain:
      score *= weights.shape_bonus;
      break;
    default:
      break;
  }
  const double diversity =
      static_cast<double>(p.graph.CountDistinctEdgeLabels());
  score *= 1.0 + weights.label_diversity_weight * std::log2(diversity + 1.0);
  return score;
}

std::vector<const pattern::FrequentPattern*> RankPatterns(
    const pattern::PatternRegistry& registry,
    const InterestingnessWeights& weights) {
  std::vector<const pattern::FrequentPattern*> out =
      registry.SortedBySupport();
  std::stable_sort(out.begin(), out.end(),
                   [&](const pattern::FrequentPattern* a,
                       const pattern::FrequentPattern* b) {
                     return PatternInterestingness(*a, weights) >
                            PatternInterestingness(*b, weights);
                   });
  return out;
}

}  // namespace tnmine::core
