#ifndef TNMINE_CORE_MINER_H_
#define TNMINE_CORE_MINER_H_

#include <cstdint>
#include <vector>

#include "common/thread_pool.h"
#include "data/dataset.h"
#include "data/od_graph.h"
#include "graph/labeled_graph.h"
#include "partition/split_graph.h"
#include "partition/temporal.h"
#include "pattern/pattern.h"

namespace tnmine::core {

/// Which transaction-set miner drives a pipeline.
enum class MinerKind {
  kFsg,
  kGspan,
};

/// Options for Section 5's structural-similarity pipeline: Algorithm 1
/// (repeat: SplitGraph, mine, union the results).
struct StructuralMiningOptions {
  partition::SplitStrategy strategy = partition::SplitStrategy::kBreadthFirst;
  /// k — the number of graph transactions to partition into.
  std::size_t num_partitions = 400;
  /// m — how many independent partitionings to union (Algorithm 1;
  /// "running multiple times decreases the number of false drops").
  std::size_t repetitions = 1;
  /// s — minimum occurrences across the partition transactions.
  std::size_t min_support = 120;
  std::size_t max_pattern_edges = 4;
  MinerKind miner = MinerKind::kFsg;
  std::uint64_t seed = 1;
  /// Forwarded to FSG's candidate-memory budget (0 = unlimited).
  std::uint64_t max_candidate_bytes = 0;
  /// Lanes shared between the repetition level and the miner beneath it:
  /// independent (SplitGraph, mine) repetitions run concurrently, and
  /// whatever lanes repetitions leave idle the per-call miners use (a
  /// nested parallel call from a busy pool runs inline). Results are
  /// identical for any value: each repetition derives its partitioning
  /// from seed + rep alone, and the union is merged in repetition order.
  common::Parallelism parallelism;
  /// Resource governance for the whole pipeline. The tick allotment is
  /// Slice()d across repetitions; within a repetition the split phase
  /// spends its (deterministic) cost first and the miner receives the
  /// exact remainder — so tick-truncated unions are byte-identical at any
  /// thread count. Default: inert (unbounded).
  common::ResourceBudget budget;
};

struct StructuralMiningResult {
  pattern::PatternRegistry registry;
  /// Partitions produced per repetition.
  std::vector<std::size_t> partitions_per_repetition;
  /// Frequent patterns found per repetition (before the union).
  std::vector<std::size_t> patterns_per_repetition;
  bool any_out_of_memory = false;
  /// Combined outcome over every repetition's split + mine (severity
  /// max). Anything but kComplete means the union is a valid partial
  /// result: patterns present are genuinely frequent in the repetitions
  /// that produced them.
  common::MiningOutcome outcome = common::MiningOutcome::kComplete;
  /// Work ticks spent across all repetitions (deterministic).
  std::uint64_t work_ticks = 0;
};

/// Algorithm 1: for i in 1..m, SplitGraph(G, k) and mine frequent
/// subgraphs at support s; the union over repetitions is returned.
/// Vertex labels of `g` should be uniform for pure structural similarity
/// (use data::VertexLabeling::kUniform when building the OD graph).
StructuralMiningResult MineStructuralPatterns(
    const graph::LabeledGraph& g, const StructuralMiningOptions& options);

/// Options for Section 6's temporally-repeated-routes pipeline.
struct TemporalMiningOptions {
  partition::TemporalOptions partition;
  /// Support as a fraction of the temporal graph transactions (the paper
  /// used 5 %).
  double min_support_fraction = 0.05;
  std::size_t max_pattern_edges = 4;
  MinerKind miner = MinerKind::kFsg;
  std::uint64_t max_candidate_bytes = 0;
  /// Forwarded to the underlying miner (see FsgOptions / GspanOptions).
  common::Parallelism parallelism;
  /// Resource governance: the day partitioner spends its (deterministic)
  /// tick cost first, the miner receives the exact remainder. Default:
  /// inert (unbounded).
  common::ResourceBudget budget;
};

struct TemporalMiningResult {
  pattern::PatternRegistry registry;
  partition::TemporalPartition partition;
  partition::TemporalStats stats;
  std::size_t absolute_min_support = 0;
  bool out_of_memory = false;
  /// Combined partition + mining outcome (severity max).
  common::MiningOutcome outcome = common::MiningOutcome::kComplete;
  std::uint64_t work_ticks = 0;
};

/// Partitions the dated transactions into per-day graph transactions and
/// mines patterns that repeat across days at the same locations.
TemporalMiningResult MineTemporalPatterns(
    const data::TransactionDataset& dataset,
    const TemporalMiningOptions& options);

}  // namespace tnmine::core

#endif  // TNMINE_CORE_MINER_H_
