#include "core/episodes.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <sstream>
#include <unordered_map>

#include "common/check.h"

namespace tnmine::core {

namespace {

using data::LocationKey;

double Median(std::vector<double> values) {
  TNMINE_DCHECK(!values.empty());
  std::sort(values.begin(), values.end());
  const std::size_t n = values.size();
  return n % 2 == 1 ? values[n / 2]
                    : (values[n / 2 - 1] + values[n / 2]) / 2.0;
}

std::string LocationToString(LocationKey key) {
  double lat = 0, lon = 0;
  data::LocationFromKey(key, &lat, &lon);
  char buf[40];
  std::snprintf(buf, sizeof(buf), "(%.1f,%.1f)", lat, lon);
  return buf;
}

/// A route with its distinct, ascending pickup days.
struct Route {
  LocationKey origin;
  LocationKey dest;
  std::vector<std::int64_t> days;
};

/// A chained path in construction: stops plus per-occurrence leg days.
struct Chain {
  std::vector<LocationKey> stops;
  /// occurrence i -> the pickup day of each leg.
  std::vector<std::vector<std::int64_t>> occurrences;
};

}  // namespace

EpisodeResult MineRouteEpisodes(const data::TransactionDataset& dataset,
                                const EpisodeOptions& options) {
  EpisodeResult result;
  if (dataset.empty()) return result;

  // Group by OD pair.
  std::map<std::pair<LocationKey, LocationKey>, std::vector<std::int64_t>>
      by_pair;
  for (const data::Transaction& t : dataset.transactions()) {
    by_pair[{data::TransactionDataset::OriginKey(t),
             data::TransactionDataset::DestKey(t)}]
        .push_back(t.req_pickup_day);
  }
  std::vector<Route> routes;
  for (auto& [key, days] : by_pair) {
    std::sort(days.begin(), days.end());
    days.erase(std::unique(days.begin(), days.end()), days.end());
    if (days.size() < std::min(options.min_occurrences,
                               options.min_path_occurrences)) {
      continue;
    }
    routes.push_back(Route{key.first, key.second, std::move(days)});
  }

  // Periodic route episodes.
  for (const Route& route : routes) {
    if (route.days.size() < options.min_occurrences) continue;
    std::vector<double> gaps;
    for (std::size_t i = 1; i < route.days.size(); ++i) {
      gaps.push_back(static_cast<double>(route.days[i] -
                                         route.days[i - 1]));
    }
    const double median_gap = Median(gaps);
    std::vector<double> deviations;
    for (double g : gaps) deviations.push_back(std::fabs(g - median_gap));
    const double spread = Median(deviations);
    if (median_gap < options.min_period_days ||
        median_gap > options.max_period_days ||
        spread > options.period_tolerance_days) {
      continue;
    }
    RouteEpisode episode;
    episode.origin = route.origin;
    episode.dest = route.dest;
    episode.pickup_days = route.days;
    episode.median_period_days = median_gap;
    episode.gap_spread_days = spread;
    result.routes.push_back(std::move(episode));
  }
  std::sort(result.routes.begin(), result.routes.end(),
            [](const RouteEpisode& a, const RouteEpisode& b) {
              return a.pickup_days.size() > b.pickup_days.size();
            });

  // Path episodes: chain routes whose next leg departs within the gap
  // window of the previous leg.
  std::unordered_map<LocationKey, std::vector<std::size_t>> routes_from;
  for (std::size_t i = 0; i < routes.size(); ++i) {
    routes_from[routes[i].origin].push_back(i);
  }
  auto extend = [&](const Chain& chain, const Route& next)
      -> std::vector<std::vector<std::int64_t>> {
    std::vector<std::vector<std::int64_t>> extended;
    for (const std::vector<std::int64_t>& occ : chain.occurrences) {
      const std::int64_t last_day = occ.back();
      // Earliest departure of `next` within the allowed window.
      const auto it = std::lower_bound(
          next.days.begin(), next.days.end(),
          last_day + options.min_leg_gap_days);
      if (it == next.days.end() ||
          *it > last_day + options.max_leg_gap_days) {
        continue;
      }
      std::vector<std::int64_t> grown = occ;
      grown.push_back(*it);
      extended.push_back(std::move(grown));
    }
    return extended;
  };

  std::vector<Chain> frontier;
  for (const Route& route : routes) {
    if (route.days.size() < options.min_path_occurrences) continue;
    Chain chain;
    chain.stops = {route.origin, route.dest};
    for (std::int64_t d : route.days) chain.occurrences.push_back({d});
    frontier.push_back(std::move(chain));
  }
  for (std::size_t leg = 1;
       leg < options.max_path_legs && !frontier.empty(); ++leg) {
    std::vector<Chain> next_frontier;
    for (const Chain& chain : frontier) {
      const auto it = routes_from.find(chain.stops.back());
      if (it == routes_from.end()) continue;
      for (std::size_t route_index : it->second) {
        const Route& next = routes[route_index];
        // Avoid immediately bouncing back on the same edge (A -> B -> A).
        if (next.dest == chain.stops[chain.stops.size() - 2]) continue;
        std::vector<std::vector<std::int64_t>> occurrences =
            extend(chain, next);
        if (occurrences.size() < options.min_path_occurrences) continue;
        Chain grown;
        grown.stops = chain.stops;
        grown.stops.push_back(next.dest);
        grown.occurrences = std::move(occurrences);
        next_frontier.push_back(std::move(grown));
      }
    }
    for (const Chain& chain : next_frontier) {
      PathEpisode episode;
      episode.stops = chain.stops;
      for (const auto& occ : chain.occurrences) {
        episode.start_days.push_back(occ.front());
      }
      episode.occurrences = chain.occurrences.size();
      result.paths.push_back(std::move(episode));
    }
    frontier = std::move(next_frontier);
  }
  std::sort(result.paths.begin(), result.paths.end(),
            [](const PathEpisode& a, const PathEpisode& b) {
              if (a.occurrences != b.occurrences) {
                return a.occurrences > b.occurrences;
              }
              return a.stops.size() > b.stops.size();
            });
  return result;
}

std::string EpisodeToString(const RouteEpisode& episode) {
  std::ostringstream out;
  out << LocationToString(episode.origin) << " -> "
      << LocationToString(episode.dest) << " every ~"
      << episode.median_period_days << " days x"
      << episode.pickup_days.size();
  return out.str();
}

std::string EpisodeToString(const PathEpisode& episode) {
  std::ostringstream out;
  for (std::size_t i = 0; i < episode.stops.size(); ++i) {
    if (i > 0) out << " -> ";
    out << LocationToString(episode.stops[i]);
  }
  out << " (x" << episode.occurrences << " chained occurrences)";
  return out.str();
}

}  // namespace tnmine::core
