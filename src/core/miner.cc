#include "core/miner.h"

#include <algorithm>

#include "common/check.h"
#include "common/trace.h"
#include "fsg/fsg.h"
#include "gspan/gspan.h"

namespace tnmine::core {

namespace {

/// Runs the selected miner over a transaction set and returns the
/// frequent patterns. `oom` is set when FSG's memory budget aborted;
/// `outcome`/`ticks` receive the miner's MiningOutcome and tick spend.
std::vector<pattern::FrequentPattern> RunMiner(
    const std::vector<graph::LabeledGraph>& transactions, MinerKind miner,
    std::size_t min_support, std::size_t max_edges,
    std::uint64_t max_candidate_bytes, common::Parallelism parallelism,
    const common::ResourceBudget& budget, bool* oom,
    common::MiningOutcome* outcome, std::uint64_t* ticks) {
  if (miner == MinerKind::kFsg) {
    fsg::FsgOptions options;
    options.min_support = min_support;
    options.max_edges = max_edges;
    options.max_candidate_bytes = max_candidate_bytes;
    options.parallelism = parallelism;
    options.budget = budget;
    fsg::FsgResult result = fsg::MineFsg(transactions, options);
    if (oom != nullptr) *oom = result.aborted_out_of_memory;
    if (outcome != nullptr) *outcome = result.outcome;
    if (ticks != nullptr) *ticks = result.work_ticks;
    return std::move(result.patterns);
  }
  gspan::GspanOptions options;
  options.min_support = min_support;
  options.max_edges = max_edges;
  options.parallelism = parallelism;
  options.budget = budget;
  gspan::GspanResult result = gspan::MineGspan(transactions, options);
  if (oom != nullptr) *oom = false;
  if (outcome != nullptr) *outcome = result.outcome;
  if (ticks != nullptr) *ticks = result.work_ticks;
  return std::move(result.patterns);
}

/// A tick-allotment sibling holding `parent`'s allotment minus what an
/// earlier (deterministic) phase already spent.
common::ResourceBudget RemainderBudget(const common::ResourceBudget& parent,
                                       std::uint64_t spent) {
  if (!parent.ticks_limited()) return parent;
  const std::uint64_t total = parent.tick_allotment();
  return parent.WithTicks(total > spent ? total - spent : 0);
}

}  // namespace

StructuralMiningResult MineStructuralPatterns(
    const graph::LabeledGraph& g, const StructuralMiningOptions& options) {
  TNMINE_TRACE_SPAN("core/structural_mine");
  TNMINE_CHECK(options.repetitions >= 1);
  // min_support = 0 is forwarded as-is: both miners clamp it to 1 (see
  // GspanOptions / FsgOptions for the shared degenerate-value contract).
  StructuralMiningResult result;
  // Each repetition is an independent (SplitGraph, mine) run seeded by
  // seed + rep; run them on parallel lanes and merge in rep order so the
  // union registry is filled deterministically.
  struct RepOutcome {
    std::size_t partitions = 0;
    std::vector<pattern::FrequentPattern> found;
    bool oom = false;
    common::MiningOutcome outcome = common::MiningOutcome::kComplete;
    std::uint64_t ticks = 0;
  };
  std::vector<RepOutcome> outcomes = common::ParallelMap<RepOutcome>(
      options.parallelism, options.repetitions, [&](std::size_t rep) {
        // Each repetition spends its own deterministic Slice: the split
        // phase first, then the miner gets the exact remainder (the split
        // cost is a deterministic function of the graph and seed).
        const common::ResourceBudget rep_budget =
            options.budget.Slice(rep, options.repetitions);
        partition::SplitOptions split;
        split.strategy = options.strategy;
        split.num_partitions = options.num_partitions;
        split.seed = options.seed + rep;
        split.budget = rep_budget;
        partition::SplitResult split_result =
            partition::SplitGraphBudgeted(g, split);
        RepOutcome outcome;
        outcome.partitions = split_result.partitions.size();
        outcome.outcome = split_result.outcome;
        outcome.ticks = split_result.work_ticks;
        if (split_result.outcome != common::MiningOutcome::kComplete) {
          // An incomplete partitioning under-counts supports; mining it
          // would report unsound pattern supports, so this repetition
          // contributes nothing to the union.
          return outcome;
        }
        common::MiningOutcome mine_outcome =
            common::MiningOutcome::kComplete;
        std::uint64_t mine_ticks = 0;
        outcome.found =
            RunMiner(split_result.partitions, options.miner,
                     options.min_support, options.max_pattern_edges,
                     options.max_candidate_bytes, options.parallelism,
                     RemainderBudget(rep_budget, split_result.work_ticks),
                     &outcome.oom, &mine_outcome, &mine_ticks);
        outcome.outcome =
            common::CombineOutcomes(outcome.outcome, mine_outcome);
        outcome.ticks += mine_ticks;
        return outcome;
      });
  for (RepOutcome& outcome : outcomes) {
    result.partitions_per_repetition.push_back(outcome.partitions);
    result.any_out_of_memory |= outcome.oom;
    result.patterns_per_repetition.push_back(outcome.found.size());
    result.outcome = common::CombineOutcomes(result.outcome, outcome.outcome);
    result.work_ticks += outcome.ticks;
    for (pattern::FrequentPattern& p : outcome.found) {
      // Across repetitions tids refer to different partitionings; keep
      // the max support, not the tid union.
      p.tids.Clear();
      result.registry.InsertOrMerge(std::move(p));
    }
  }
  common::RecordOutcome("core", result.outcome);
  return result;
}

TemporalMiningResult MineTemporalPatterns(
    const data::TransactionDataset& dataset,
    const TemporalMiningOptions& options) {
  TNMINE_TRACE_SPAN("core/temporal_mine");
  TemporalMiningResult result;
  partition::TemporalOptions part_options = options.partition;
  part_options.budget = options.budget;
  result.partition = partition::PartitionByActiveDay(dataset, part_options);
  result.outcome = result.partition.outcome;
  result.work_ticks = result.partition.work_ticks;
  result.stats = partition::ComputeTemporalStats(
      result.partition.transactions);
  if (result.partition.transactions.empty() ||
      result.partition.outcome != common::MiningOutcome::kComplete) {
    // Mining a truncated day set would report supports against a
    // different (smaller) transaction population than requested.
    common::RecordOutcome("core", result.outcome);
    return result;
  }
  result.absolute_min_support = std::max<std::size_t>(
      1, static_cast<std::size_t>(
             options.min_support_fraction *
             static_cast<double>(result.partition.transactions.size())));
  bool oom = false;
  common::MiningOutcome mine_outcome = common::MiningOutcome::kComplete;
  std::uint64_t mine_ticks = 0;
  std::vector<pattern::FrequentPattern> found = RunMiner(
      result.partition.transactions, options.miner,
      result.absolute_min_support, options.max_pattern_edges,
      options.max_candidate_bytes, options.parallelism,
      RemainderBudget(options.budget, result.partition.work_ticks), &oom,
      &mine_outcome, &mine_ticks);
  result.out_of_memory = oom;
  result.outcome = common::CombineOutcomes(result.outcome, mine_outcome);
  result.work_ticks += mine_ticks;
  for (pattern::FrequentPattern& p : found) {
    result.registry.InsertOrMerge(std::move(p), /*merge_tids=*/true);
  }
  common::RecordOutcome("core", result.outcome);
  return result;
}

}  // namespace tnmine::core
