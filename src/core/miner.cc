#include "core/miner.h"

#include <algorithm>

#include "common/check.h"
#include "common/trace.h"
#include "fsg/fsg.h"
#include "gspan/gspan.h"

namespace tnmine::core {

namespace {

/// Runs the selected miner over a transaction set and returns the
/// frequent patterns. `oom` is set when FSG's memory budget aborted.
std::vector<pattern::FrequentPattern> RunMiner(
    const std::vector<graph::LabeledGraph>& transactions, MinerKind miner,
    std::size_t min_support, std::size_t max_edges,
    std::uint64_t max_candidate_bytes, common::Parallelism parallelism,
    bool* oom) {
  if (miner == MinerKind::kFsg) {
    fsg::FsgOptions options;
    options.min_support = min_support;
    options.max_edges = max_edges;
    options.max_candidate_bytes = max_candidate_bytes;
    options.parallelism = parallelism;
    fsg::FsgResult result = fsg::MineFsg(transactions, options);
    if (oom != nullptr) *oom = result.aborted_out_of_memory;
    return std::move(result.patterns);
  }
  gspan::GspanOptions options;
  options.min_support = min_support;
  options.max_edges = max_edges;
  options.parallelism = parallelism;
  gspan::GspanResult result = gspan::MineGspan(transactions, options);
  if (oom != nullptr) *oom = false;
  return std::move(result.patterns);
}

}  // namespace

StructuralMiningResult MineStructuralPatterns(
    const graph::LabeledGraph& g, const StructuralMiningOptions& options) {
  TNMINE_TRACE_SPAN("core/structural_mine");
  TNMINE_CHECK(options.repetitions >= 1);
  TNMINE_CHECK(options.min_support >= 1);
  StructuralMiningResult result;
  // Each repetition is an independent (SplitGraph, mine) run seeded by
  // seed + rep; run them on parallel lanes and merge in rep order so the
  // union registry is filled deterministically.
  struct RepOutcome {
    std::size_t partitions = 0;
    std::vector<pattern::FrequentPattern> found;
    bool oom = false;
  };
  std::vector<RepOutcome> outcomes = common::ParallelMap<RepOutcome>(
      options.parallelism, options.repetitions, [&](std::size_t rep) {
        partition::SplitOptions split;
        split.strategy = options.strategy;
        split.num_partitions = options.num_partitions;
        split.seed = options.seed + rep;
        const std::vector<graph::LabeledGraph> transactions =
            partition::SplitGraph(g, split);
        RepOutcome outcome;
        outcome.partitions = transactions.size();
        outcome.found =
            RunMiner(transactions, options.miner, options.min_support,
                     options.max_pattern_edges, options.max_candidate_bytes,
                     options.parallelism, &outcome.oom);
        return outcome;
      });
  for (RepOutcome& outcome : outcomes) {
    result.partitions_per_repetition.push_back(outcome.partitions);
    result.any_out_of_memory |= outcome.oom;
    result.patterns_per_repetition.push_back(outcome.found.size());
    for (pattern::FrequentPattern& p : outcome.found) {
      // Across repetitions tids refer to different partitionings; keep
      // the max support, not the tid union.
      p.tids.clear();
      result.registry.InsertOrMerge(std::move(p));
    }
  }
  return result;
}

TemporalMiningResult MineTemporalPatterns(
    const data::TransactionDataset& dataset,
    const TemporalMiningOptions& options) {
  TNMINE_TRACE_SPAN("core/temporal_mine");
  TemporalMiningResult result;
  result.partition = partition::PartitionByActiveDay(dataset,
                                                     options.partition);
  result.stats = partition::ComputeTemporalStats(
      result.partition.transactions);
  if (result.partition.transactions.empty()) return result;
  result.absolute_min_support = std::max<std::size_t>(
      1, static_cast<std::size_t>(
             options.min_support_fraction *
             static_cast<double>(result.partition.transactions.size())));
  bool oom = false;
  std::vector<pattern::FrequentPattern> found = RunMiner(
      result.partition.transactions, options.miner,
      result.absolute_min_support, options.max_pattern_edges,
      options.max_candidate_bytes, options.parallelism, &oom);
  result.out_of_memory = oom;
  for (pattern::FrequentPattern& p : found) {
    result.registry.InsertOrMerge(std::move(p), /*merge_tids=*/true);
  }
  return result;
}

}  // namespace tnmine::core
