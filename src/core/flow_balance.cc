#include "core/flow_balance.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <sstream>
#include <utility>

namespace tnmine::core {

namespace {

using data::LocationKey;

std::string LocationToString(LocationKey key) {
  double lat = 0, lon = 0;
  data::LocationFromKey(key, &lat, &lon);
  char buf[40];
  std::snprintf(buf, sizeof(buf), "(%.1f,%.1f)", lat, lon);
  return buf;
}

}  // namespace

std::vector<LaneImbalance> FindDeadheadLanes(
    const data::TransactionDataset& dataset,
    const LaneBalanceOptions& options) {
  // Shipment counts per ordered pair.
  std::map<std::pair<LocationKey, LocationKey>, std::size_t> counts;
  for (const data::Transaction& t : dataset.transactions()) {
    ++counts[{data::TransactionDataset::OriginKey(t),
              data::TransactionDataset::DestKey(t)}];
  }
  std::vector<LaneImbalance> out;
  for (const auto& [pair, forward] : counts) {
    const auto& [a, b] = pair;
    // Visit each unordered lane once, oriented heavy-side first.
    const auto reverse_it = counts.find({b, a});
    const std::size_t backward =
        reverse_it == counts.end() ? 0 : reverse_it->second;
    if (forward < backward || (forward == backward && a > b)) continue;
    if (forward < options.min_forward_shipments) continue;
    const double total = static_cast<double>(forward + backward);
    const double imbalance =
        (static_cast<double>(forward) - static_cast<double>(backward)) /
        total;
    if (imbalance < options.min_imbalance) continue;
    LaneImbalance lane;
    lane.from = a;
    lane.to = b;
    lane.forward_shipments = forward;
    lane.backward_shipments = backward;
    lane.imbalance = imbalance;
    out.push_back(lane);
  }
  std::sort(out.begin(), out.end(),
            [](const LaneImbalance& x, const LaneImbalance& y) {
              if (x.forward_shipments != y.forward_shipments) {
                return x.forward_shipments > y.forward_shipments;
              }
              return x.imbalance > y.imbalance;
            });
  return out;
}

std::vector<MarketFlow> ComputeMarketFlows(
    const data::TransactionDataset& dataset,
    const MarketFlowOptions& options) {
  std::map<LocationKey, std::pair<std::size_t, std::size_t>> flows;
  for (const data::Transaction& t : dataset.transactions()) {
    ++flows[data::TransactionDataset::OriginKey(t)].second;  // outbound
    ++flows[data::TransactionDataset::DestKey(t)].first;     // inbound
  }
  std::vector<MarketFlow> out;
  for (const auto& [key, in_out] : flows) {
    const auto& [inbound, outbound] = in_out;
    if (inbound + outbound < options.min_shipments) continue;
    MarketFlow market;
    market.location = key;
    market.inbound = inbound;
    market.outbound = outbound;
    market.net_flow = (static_cast<double>(outbound) -
                       static_cast<double>(inbound)) /
                      static_cast<double>(outbound + inbound);
    out.push_back(market);
  }
  std::sort(out.begin(), out.end(),
            [](const MarketFlow& x, const MarketFlow& y) {
              const double ax = std::fabs(x.net_flow);
              const double ay = std::fabs(y.net_flow);
              if (ax != ay) return ax > ay;
              return x.inbound + x.outbound > y.inbound + y.outbound;
            });
  return out;
}

std::string ToString(const LaneImbalance& lane) {
  std::ostringstream out;
  out << LocationToString(lane.from) << " -> " << LocationToString(lane.to)
      << ": " << lane.forward_shipments << " out / "
      << lane.backward_shipments << " back (imbalance "
      << lane.imbalance << ")";
  return out.str();
}

std::string ToString(const MarketFlow& market) {
  std::ostringstream out;
  out << LocationToString(market.location) << ": in " << market.inbound
      << ", out " << market.outbound << " (net "
      << (market.net_flow >= 0 ? "+" : "") << market.net_flow << ")";
  return out.str();
}

}  // namespace tnmine::core
