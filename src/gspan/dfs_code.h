#ifndef TNMINE_GSPAN_DFS_CODE_H_
#define TNMINE_GSPAN_DFS_CODE_H_

#include <compare>
#include <cstdint>
#include <string>
#include <vector>

#include "graph/labeled_graph.h"

namespace tnmine::gspan {

/// One entry of a DFS code (Yan & Han, ICDM 2002), extended for directed
/// graphs: the edge between DFS-discovery positions `from` and `to`,
/// carrying the vertex labels at both ends, the edge label, and whether
/// the underlying directed edge runs from -> to (`forward_direction`) or
/// to -> from.
///
/// A forward entry has to == max position so far + 1 (tree edge of the
/// DFS); a backward entry has to < from (closing edge).
struct DfsEdge {
  std::uint32_t from = 0;
  std::uint32_t to = 0;
  graph::Label from_label = 0;
  graph::Label edge_label = 0;
  bool forward_direction = true;  ///< directed edge goes from -> to
  graph::Label to_label = 0;

  auto operator<=>(const DfsEdge&) const = default;
};

/// A DFS code: the edge sequence of one depth-first traversal of a
/// connected graph. Two isomorphic graphs share the same *minimal* DFS
/// code (lexicographically smallest over all traversals), which is
/// gSpan's canonical form.
class DfsCode {
 public:
  DfsCode() = default;
  explicit DfsCode(std::vector<DfsEdge> edges) : edges_(std::move(edges)) {}

  const std::vector<DfsEdge>& edges() const { return edges_; }
  std::size_t size() const { return edges_.size(); }
  bool empty() const { return edges_.empty(); }

  /// Lexicographic comparison over the edge sequence.
  auto operator<=>(const DfsCode&) const = default;

  /// Reconstructs the pattern graph this code describes. DFS positions
  /// become vertex ids.
  graph::LabeledGraph ToGraph() const;

  /// Readable single-line form, for debugging and tests.
  std::string ToString() const;

 private:
  std::vector<DfsEdge> edges_;
};

/// Computes the minimal DFS code of a connected, dense labeled graph
/// (direction-aware). Exponential worst case like any canonical form;
/// intended for pattern-sized graphs.
DfsCode MinimalDfsCode(const graph::LabeledGraph& g);

/// True when `code` is its graph's minimal DFS code — the gSpan
/// duplicate-pruning test.
bool IsMinimalDfsCode(const DfsCode& code);

}  // namespace tnmine::gspan

#endif  // TNMINE_GSPAN_DFS_CODE_H_
