#ifndef TNMINE_GSPAN_GSPAN_H_
#define TNMINE_GSPAN_GSPAN_H_

#include <cstdint>
#include <vector>

#include "common/budget.h"
#include "common/thread_pool.h"
#include "graph/labeled_graph.h"
#include "graph/transaction_source.h"
#include "pattern/pattern.h"

namespace tnmine::gspan {

/// Options for the pattern-growth miner.
struct GspanOptions {
  /// Minimum number of supporting transactions (absolute count).
  ///
  /// Degenerate-value contract (shared verbatim with FsgOptions, and
  /// cross-checked by tools/scenario_fuzz): 0 is accepted and means the
  /// same as 1 — mine every pattern that occurs at all. Support counting
  /// only ever visits patterns with at least one occurrence, so "at least
  /// zero supporting transactions" and "at least one" denote the same
  /// pattern set; clamping 0 to 1 inside the miner makes the two miners
  /// agree at both degenerate values by construction.
  std::size_t min_support = 2;
  /// Stop growing patterns past this many edges (0 = unlimited).
  std::size_t max_edges = 0;
  /// Cap on stored embeddings per (pattern, transaction). 0 = unlimited.
  /// When hit, results become a sound under-approximation (no false
  /// positives; some deep extensions may be missed); the result is flagged.
  std::size_t max_embeddings_per_transaction = 0;
  /// Lanes for mining the frequent 1-edge seed subtrees concurrently.
  /// Any value yields byte-identical results (see MineGspan).
  common::Parallelism parallelism;
  /// Resource governance. The tick allotment is Slice()d across seed
  /// subtrees before the parallel fan-out, so a tick-truncated run is
  /// byte-identical at any thread count; deadline/memory/cancel cutoffs
  /// are honored but scheduling-dependent. Default: inert (unbounded).
  common::ResourceBudget budget;
};

struct GspanResult {
  std::vector<pattern::FrequentPattern> patterns;
  /// Distinct pattern isomorphism classes visited during growth.
  std::size_t patterns_explored = 0;
  /// Largest pattern size (edges) reached.
  std::size_t max_level = 0;
  /// True when the embedding cap truncated any embedding list.
  bool embeddings_truncated = false;
  /// How the run ended. Anything but kComplete means `patterns` is the
  /// best partial result found before the budget/cancel cutoff: every
  /// pattern listed is genuinely frequent, but deeper extensions may be
  /// missing. Seed patterns are always recorded, so a truncated run on a
  /// non-trivial input is never empty.
  common::MiningOutcome outcome = common::MiningOutcome::kComplete;
  /// Work ticks spent (summed over seed subtrees; deterministic).
  std::uint64_t work_ticks = 0;
};

/// gSpan-style pattern-growth mining (Yan & Han, ICDM 2002 — the
/// "modern" baseline the paper cites as [23]) over directed labeled
/// multigraph transactions.
///
/// Like gSpan, the miner grows patterns one edge at a time depth-first and
/// keeps, for each pattern, its projected database — the full list of
/// embeddings per transaction — so support counting and extension
/// enumeration never re-run subgraph isomorphism from scratch (the
/// decisive difference from FSG's Apriori candidate generation). Where
/// original gSpan avoids duplicate pattern visits via minimal DFS codes,
/// this implementation reuses the library's canonical-form machinery: the
/// first time a pattern class is reached its subtree is explored, and
/// later arrivals are skipped. That substitution preserves completeness
/// because extensions are enumerated from every pattern vertex (not just
/// the rightmost path), and it keeps pattern identity consistent with the
/// rest of tnmine.
///
/// Produces exactly the connected frequent patterns FSG produces on the
/// same input (a property the test suite cross-checks).
///
/// Parallel execution: each frequent 1-edge seed roots an independent
/// growth subtree mined on its own pool lane with its own visited-code
/// set; subtree results are merged in seed order with cross-subtree
/// canonical-code dedup (first seed wins). Because a pattern's embedding
/// list is the same whichever seed grows it, and every ancestor on a
/// pattern's first-arrival path is one of its own subgraphs (so the
/// sequential global visited set can never cut such a path earlier than
/// the subtree-local set does), the merged output is byte-identical to
/// the single-threaded run — same patterns, same order, same graphs,
/// supports and tids. The one caveat: with a nonzero
/// max_embeddings_per_transaction, `embeddings_truncated` may be set in
/// runs where the old global-visited-set miner did not explore the
/// truncating region; the pattern set itself is unaffected.
GspanResult MineGspan(const std::vector<graph::LabeledGraph>& transactions,
                      const GspanOptions& options);

/// Same miner over a TransactionSource — the out-of-core entry point
/// (DESIGN.md §16). The seed scan walks the source one shard at a time
/// and every seed subtree reads its projected database's transactions
/// through its own Reader, so at most a bounded set of shards is
/// resident per lane. Output is byte-identical to the in-memory overload
/// for the same transaction sequence, at any shard cut and any thread
/// count.
GspanResult MineGspan(graph::TransactionSource& source,
                      const GspanOptions& options);

}  // namespace tnmine::gspan

#endif  // TNMINE_GSPAN_GSPAN_H_
