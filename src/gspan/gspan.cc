#include "gspan/gspan.h"

#include <algorithm>
#include <map>
#include <set>
#include <tuple>
#include <unordered_map>
#include <unordered_set>
#include <utility>

#include "common/budget.h"
#include "common/check.h"
#include "common/failpoint.h"
#include "common/telemetry.h"
#include "common/thread_pool.h"
#include "common/trace.h"
#include "graph/graph_view.h"
#include "graph/transaction_source.h"
#include "iso/canonical.h"

namespace tnmine::gspan {

using graph::Edge;
using graph::EdgeId;
using graph::Label;
using graph::LabeledGraph;
using graph::VertexId;
using pattern::FrequentPattern;

namespace {

/// One occurrence of the current pattern inside a transaction: the images
/// of the pattern's vertices and the set of transaction edges in use.
struct Emb {
  std::uint32_t tid;
  std::vector<VertexId> vertices;  // pattern vertex -> transaction vertex
  std::vector<EdgeId> edges;       // sorted; pattern edge i -> edges[i] NOT
                                   // guaranteed — used as an occupancy set
};

/// Extension descriptor: add one edge to the pattern. Either between two
/// existing pattern vertices, or from/to a brand-new vertex.
struct Extension {
  VertexId from;            // pattern vertex (source of the new edge)
  VertexId to;              // pattern vertex, or kNewVertex
  bool new_is_source;       // when new vertex: new -> from instead
  Label new_vertex_label;   // label of the new vertex (if any)
  Label edge_label;

  static constexpr VertexId kNewVertex = ~VertexId{0};

  auto operator<=>(const Extension&) const = default;
};

struct ExtensionHash {
  std::size_t operator()(const Extension& e) const {
    std::uint64_t h = 0xCBF29CE484222325ULL;
    auto mix = [&h](std::uint64_t x) {
      h ^= x;
      h *= 0x100000001B3ULL;
    };
    mix(e.from);
    mix(e.to);
    mix(e.new_is_source ? 1 : 0);
    mix(static_cast<std::uint32_t>(e.new_vertex_label));
    mix(static_cast<std::uint32_t>(e.edge_label));
    return static_cast<std::size_t>(h);
  }
};

std::size_t SupportOf(const std::vector<Emb>& embs) {
  std::size_t support = 0;
  std::uint32_t prev = ~std::uint32_t{0};
  for (const Emb& e : embs) {  // embeddings are grouped by tid
    if (e.tid != prev) {
      ++support;
      prev = e.tid;
    }
  }
  return support;
}

/// Mines one seed's growth subtree. Each instance owns its visited-code
/// set, so instances for different seeds share nothing and can run on
/// separate pool lanes; MineGspan merges their results.
struct Miner {
  /// Transactions read through a per-miner Reader: embeddings are
  /// tid-grouped ascending, so a Grow scan pins each shard it touches
  /// once. One Reader per miner — seed subtrees on separate lanes never
  /// share one.
  graph::TransactionSource::Reader reader;
  std::uint32_t num_transactions;
  const GspanOptions& options;
  GspanResult result{};
  std::unordered_set<std::string> visited_codes{};
  /// This seed subtree's deterministic tick ledger (its Slice of the
  /// run's allotment). The subtree is mined sequentially, so tick
  /// exhaustion cuts the DFS at the same pattern on every run.
  common::BudgetMeter meter{};
  // Subtree-local telemetry, flushed to the registry once per seed (keeps
  // the hot recursion free of atomics and the totals independent of lane
  // scheduling).
  std::uint64_t extensions_enumerated = 0;
  std::uint64_t embeddings_materialized = 0;
  std::uint64_t codes_generated = 0;
  // Reused across Grow calls (a call finishes with it before recursing).
  std::vector<std::pair<VertexId, VertexId>> reverse{};  // (tv, pv) sorted

  void Grow(const LabeledGraph& pg, const std::string& code,
            std::vector<Emb> embs) {
    FrequentPattern fp;
    fp.graph = pg;
    fp.code = code;
    {
      std::vector<std::uint32_t> tids;
      std::uint32_t prev = ~std::uint32_t{0};
      for (const Emb& e : embs) {
        if (e.tid != prev) {
          tids.push_back(e.tid);
          prev = e.tid;
        }
      }
      fp.tids = pattern::TidSet::FromSorted(std::move(tids),
                                            num_transactions);
    }
    fp.support = fp.tids.Cardinality();
    result.patterns.push_back(fp);
    result.max_level = std::max(result.max_level, pg.num_edges());
    if (options.max_edges != 0 && pg.num_edges() >= options.max_edges) {
      return;
    }

    // Budget gate: the pattern above is already recorded (so truncated
    // runs keep every pattern they paid for), but growing costs one tick
    // per embedding scanned — a deterministic function of this subtree.
    if (result.outcome != common::MiningOutcome::kComplete) return;
    (void)TNMINE_FAILPOINT("gspan/grow");
    const common::MiningOutcome tick =
        meter.Charge(1 + static_cast<std::uint64_t>(embs.size()));
    if (tick != common::MiningOutcome::kComplete) {
      result.outcome = common::CombineOutcomes(result.outcome, tick);
      return;
    }
    // Coarse estimate of this level's projected-database footprint,
    // charged against the shared memory ceiling for the duration of the
    // extension scan.
    const std::uint64_t approx_bytes =
        static_cast<std::uint64_t>(embs.size()) *
        (sizeof(Emb) + 8 * (pg.num_vertices() + pg.num_edges()));
    if (!options.budget.TryChargeMemory(approx_bytes)) {
      result.outcome = common::CombineOutcomes(
          result.outcome, common::MiningOutcome::kMemoryBudgetExceeded);
      return;
    }
    struct MemRelease {
      const common::ResourceBudget* budget;
      std::uint64_t bytes;
      ~MemRelease() { budget->ReleaseMemory(bytes); }
    } release{&options.budget, approx_bytes};

    // Enumerate extensions across all embeddings, collecting the extended
    // embeddings per descriptor. Hashed container + reserve: this map is
    // rebuilt for every pattern visited; descriptors are sorted once at
    // recursion time instead of on every insert.
    std::unordered_map<Extension, std::vector<Emb>, ExtensionHash>
        extensions;
    extensions.reserve(embs.size() * 4);
    std::size_t scanned = 0;
    for (const Emb& emb : embs) {
      // Low-support patterns can have embedding lists large enough that
      // one scan runs for seconds; poll the shared stop conditions at a
      // stride so cancellation (client disconnect, SIGINT, deadline) is
      // observed mid-scan instead of only between Grow calls. Poll spends
      // no ticks, so tick-budget determinism is unaffected.
      if ((scanned++ & 255) == 255) {
        const common::MiningOutcome stop = meter.Poll();
        if (stop != common::MiningOutcome::kComplete) {
          result.outcome = common::CombineOutcomes(result.outcome, stop);
          return;
        }
      }
      const graph::GraphView& t = reader.View(emb.tid);
      // Occupancy for O(log n) membership tests.
      auto edge_used = [&](EdgeId e) {
        return std::binary_search(emb.edges.begin(), emb.edges.end(), e);
      };
      // Map transaction vertex -> pattern vertex (or invalid) via a
      // reverse map built once per embedding — the former per-edge linear
      // scan made deep patterns quadratic in pattern size.
      reverse.clear();
      reverse.reserve(emb.vertices.size());
      for (VertexId p = 0; p < emb.vertices.size(); ++p) {
        reverse.emplace_back(emb.vertices[p], p);
      }
      std::sort(reverse.begin(), reverse.end());
      auto pattern_vertex_of = [&](VertexId tv) -> VertexId {
        auto it = std::lower_bound(
            reverse.begin(), reverse.end(), tv,
            [](const std::pair<VertexId, VertexId>& entry, VertexId key) {
              return entry.first < key;
            });
        if (it != reverse.end() && it->first == tv) return it->second;
        return graph::kInvalidVertex;
      };
      for (VertexId pu = 0; pu < emb.vertices.size(); ++pu) {
        const VertexId tu = emb.vertices[pu];
        auto consider = [&](EdgeId te, bool outgoing) {
          if (edge_used(te)) return;
          const Edge& tedge = t.edge(te);
          const VertexId other = outgoing ? tedge.dst : tedge.src;
          const VertexId pother = pattern_vertex_of(other);
          Extension ext;
          ext.edge_label = tedge.label;
          if (pother != graph::kInvalidVertex) {
            // Closing edge between existing pattern vertices (includes
            // self-loops when other == tu).
            if (!outgoing) return;  // counted once, from the source side
            ext.from = pu;
            ext.to = pattern_vertex_of(tedge.dst);
            if (ext.to == graph::kInvalidVertex) return;
            if (pattern_vertex_of(tedge.src) != pu) return;
            ext.new_is_source = false;
            ext.new_vertex_label = 0;
          } else {
            ext.from = pu;
            ext.to = Extension::kNewVertex;
            ext.new_is_source = !outgoing;
            ext.new_vertex_label = t.vertex_label(other);
          }
          ++embeddings_materialized;
          Emb extended = emb;
          extended.edges.insert(
              std::lower_bound(extended.edges.begin(), extended.edges.end(),
                               te),
              te);
          if (pother == graph::kInvalidVertex) {
            extended.vertices.push_back(other);
          }
          extensions[ext].push_back(std::move(extended));
        };
        for (EdgeId te : t.OutEdgesById(tu)) consider(te, true);
        for (EdgeId te : t.InEdgesById(tu)) {
          if (t.edge(te).src != t.edge(te).dst) consider(te, false);
        }
      }
    }

    // Recurse into frequent, unseen extensions, in sorted descriptor
    // order (the order the former std::map iterated in) so the output
    // sequence is unchanged.
    extensions_enumerated += extensions.size();
    std::vector<std::pair<Extension, std::vector<Emb>>> ordered;
    ordered.reserve(extensions.size());
    for (auto& [ext, raw_embs] : extensions) {
      ordered.emplace_back(ext, std::move(raw_embs));
    }
    std::sort(ordered.begin(), ordered.end(),
              [](const auto& a, const auto& b) { return a.first < b.first; });
    for (auto& [ext, raw_embs] : ordered) {
      // A child subtree that ran out of budget stops its siblings too.
      if (result.outcome != common::MiningOutcome::kComplete) break;
      // Same prompt-cancellation poll as the extension scan above: the
      // dedup sort below is heavy for fat extension lists.
      const common::MiningOutcome stop = meter.Poll();
      if (stop != common::MiningOutcome::kComplete) {
        result.outcome = common::CombineOutcomes(result.outcome, stop);
        break;
      }
      // Deduplicate identical embeddings (the same occurrence can be
      // reached from several parent embeddings related by automorphism —
      // keep distinct (tid, vertex map, edge set) triples only) and apply
      // the per-transaction cap.
      std::sort(raw_embs.begin(), raw_embs.end(),
                [](const Emb& a, const Emb& b) {
                  return std::tie(a.tid, a.vertices, a.edges) <
                         std::tie(b.tid, b.vertices, b.edges);
                });
      raw_embs.erase(std::unique(raw_embs.begin(), raw_embs.end(),
                                 [](const Emb& a, const Emb& b) {
                                   return a.tid == b.tid &&
                                          a.vertices == b.vertices &&
                                          a.edges == b.edges;
                                 }),
                     raw_embs.end());
      if (options.max_embeddings_per_transaction != 0) {
        std::vector<Emb> capped;
        std::size_t run = 0;
        std::uint32_t prev = ~std::uint32_t{0};
        for (Emb& e : raw_embs) {
          if (e.tid != prev) {
            prev = e.tid;
            run = 0;
          }
          if (run < options.max_embeddings_per_transaction) {
            capped.push_back(std::move(e));
            ++run;
          } else {
            result.embeddings_truncated = true;
          }
        }
        raw_embs = std::move(capped);
      }
      if (SupportOf(raw_embs) < options.min_support) continue;
      // Build the extended pattern graph.
      LabeledGraph ext_pg = pg;
      if (ext.to == Extension::kNewVertex) {
        const VertexId nv = ext_pg.AddVertex(ext.new_vertex_label);
        if (ext.new_is_source) {
          ext_pg.AddEdge(nv, ext.from, ext.edge_label);
        } else {
          ext_pg.AddEdge(ext.from, nv, ext.edge_label);
        }
      } else {
        ext_pg.AddEdge(ext.from, ext.to, ext.edge_label);
      }
      ++codes_generated;
      std::string ext_code = iso::CanonicalCodeCached(ext_pg);
      if (!visited_codes.insert(ext_code).second) continue;
      ++result.patterns_explored;
      Grow(ext_pg, ext_code, std::move(raw_embs));
    }
  }
};

}  // namespace

GspanResult MineGspan(const std::vector<LabeledGraph>& transactions,
                      const GspanOptions& options) {
  for (const LabeledGraph& t : transactions) {
    TNMINE_CHECK_MSG(t.IsDense(), "transactions must be dense");
  }
  // One flat snapshot per transaction, presented as a single in-memory
  // shard; the source-based core below does all the mining. Keeping the
  // two overloads on one code path is what makes the byte-identity
  // contract between the in-RAM and out-of-core runs checkable.
  std::vector<graph::GraphView> views;
  views.reserve(transactions.size());
  for (const LabeledGraph& t : transactions) views.emplace_back(t);
  graph::InMemoryTransactionSource source(std::move(views));
  return MineGspan(source, options);
}

GspanResult MineGspan(graph::TransactionSource& source,
                      const GspanOptions& raw_options) {
  TNMINE_TRACE_SPAN("gspan/mine");
  TNMINE_COUNTER_ADD("gspan/runs_started", 1);
  // min_support = 0 means the same as 1 (see GspanOptions): clamp once so
  // every comparison below shares the contract with FSG.
  GspanOptions options = raw_options;
  options.min_support = std::max<std::size_t>(1, options.min_support);
  const auto num_transactions =
      static_cast<std::uint32_t>(source.num_transactions());

  // Seed: single-edge patterns with their embeddings, in deterministic
  // (label-tuple) order. Distinct tuples yield non-isomorphic 1-edge
  // patterns, so seed codes are pairwise distinct.
  struct Seed {
    LabeledGraph pg;
    std::string code;
    std::vector<Emb> embs;
  };
  // EdgeTypeKey's ordering matches the label tuple this map used to be
  // keyed on, and each view lists a type's edges in ascending EdgeId
  // order, so seed order and per-seed embedding order are unchanged.
  // The scan walks the source one shard at a time (ascending bases ==
  // ascending global tids), holding a single pin at a time.
  std::map<graph::GraphView::EdgeTypeKey, Seed> seeds;
  try {
    for (std::size_t s = 0; s < source.num_shards(); ++s) {
      const graph::ShardRef shard = source.Pin(s);
      for (std::uint32_t i = 0; i < shard.views.size(); ++i) {
        const std::uint32_t tid = shard.base + i;
        const graph::GraphView& t = shard.views[i];
        for (std::size_t type = 0; type < t.NumEdgeTypes(); ++type) {
          const graph::GraphView::EdgeTypeKey& key = t.EdgeTypeAt(type);
          auto it = seeds.find(key);
          if (it == seeds.end()) {
            Seed seed;
            const VertexId a = seed.pg.AddVertex(key.src_label);
            if (key.self_loop) {
              seed.pg.AddEdge(a, a, key.edge_label);
            } else {
              const VertexId b = seed.pg.AddVertex(key.dst_label);
              seed.pg.AddEdge(a, b, key.edge_label);
            }
            it = seeds.emplace(key, std::move(seed)).first;
          }
          for (EdgeId e : t.EdgesOfType(type)) {
            const Edge& edge = t.edge(e);
            Emb emb;
            emb.tid = tid;
            emb.vertices.push_back(edge.src);
            if (!key.self_loop) emb.vertices.push_back(edge.dst);
            emb.edges.push_back(e);
            it->second.embs.push_back(std::move(emb));
          }
        }
      }
    }
  } catch (const std::bad_alloc&) {
    // A shard pin that could not fit the memory ceiling even after
    // evicting everything else. The seed scan is incomplete, so nothing
    // can be emitted honestly.
    GspanResult aborted;
    aborted.outcome = common::MiningOutcome::kMemoryBudgetExceeded;
    common::RecordOutcome("gspan", aborted.outcome);
    return aborted;
  }
  std::vector<Seed> frequent;
  for (auto& [key, seed] : seeds) {
    if (SupportOf(seed.embs) < options.min_support) continue;
    seed.code = iso::CanonicalCodeCached(seed.pg);
    frequent.push_back(std::move(seed));
  }

  TNMINE_COUNTER_ADD("gspan/seeds_expanded", frequent.size());

  // Mine each seed's subtree independently (own lane, own visited set).
  // Each subtree gets its deterministic Slice of the tick allotment, so
  // tick-truncated output is identical at any thread count; a bad_alloc
  // (real or injected) is absorbed at this boundary, downgrading the
  // subtree to its partial result with an honest memory outcome.
  std::vector<GspanResult> parts = common::ParallelMap<GspanResult>(
      options.parallelism, frequent.size(), [&](std::size_t i) {
        TNMINE_TRACE_SPAN("gspan/seed_subtree");
        Seed& seed = frequent[i];
        Miner miner{graph::TransactionSource::Reader(source),
                    num_transactions, options};
        miner.meter =
            common::BudgetMeter(options.budget.Slice(i, frequent.size()));
        miner.visited_codes.insert(seed.code);
        ++miner.result.patterns_explored;
        try {
          miner.Grow(seed.pg, seed.code, std::move(seed.embs));
        } catch (const std::bad_alloc&) {
          miner.result.outcome = common::CombineOutcomes(
              miner.result.outcome,
              common::MiningOutcome::kMemoryBudgetExceeded);
        }
        miner.result.work_ticks = miner.meter.ticks_spent();
        TNMINE_COUNTER_ADD("gspan/extensions_enumerated",
                           miner.extensions_enumerated);
        TNMINE_COUNTER_ADD("gspan/embeddings_materialized",
                           miner.embeddings_materialized);
        TNMINE_COUNTER_ADD("gspan/codes_generated", miner.codes_generated);
        return std::move(miner.result);
      });

  // ...then merge in seed order with cross-subtree canonical-code dedup.
  // The first (lowest-seed) occurrence of a pattern class is kept — the
  // same occurrence the sequential global-visited-set miner recorded, so
  // the merged output is byte-identical to the sequential run (see the
  // header comment for the argument).
  GspanResult merged;
  std::unordered_set<std::string> claimed;
  for (GspanResult& part : parts) {
    merged.embeddings_truncated |= part.embeddings_truncated;
    merged.outcome = common::CombineOutcomes(merged.outcome, part.outcome);
    merged.work_ticks += part.work_ticks;
    for (FrequentPattern& p : part.patterns) {
      if (!claimed.insert(p.code).second) continue;
      merged.max_level = std::max(merged.max_level, p.graph.num_edges());
      merged.patterns.push_back(std::move(p));
    }
  }
  // Every visited class records exactly one pattern, so after dedup the
  // distinct classes explored equal the patterns kept.
  merged.patterns_explored = merged.patterns.size();
  TNMINE_COUNTER_ADD("gspan/patterns_emitted", merged.patterns.size());
  common::RecordOutcome("gspan", merged.outcome);
  return merged;
}

}  // namespace tnmine::gspan
