#include "gspan/gspan.h"

#include <algorithm>
#include <map>
#include <set>
#include <tuple>
#include <unordered_set>

#include "common/check.h"
#include "iso/canonical.h"

namespace tnmine::gspan {

using graph::Edge;
using graph::EdgeId;
using graph::Label;
using graph::LabeledGraph;
using graph::VertexId;
using pattern::FrequentPattern;

namespace {

/// One occurrence of the current pattern inside a transaction: the images
/// of the pattern's vertices and the set of transaction edges in use.
struct Emb {
  std::uint32_t tid;
  std::vector<VertexId> vertices;  // pattern vertex -> transaction vertex
  std::vector<EdgeId> edges;       // sorted; pattern edge i -> edges[i] NOT
                                   // guaranteed — used as an occupancy set
};

/// Extension descriptor: add one edge to the pattern. Either between two
/// existing pattern vertices, or from/to a brand-new vertex.
struct Extension {
  VertexId from;            // pattern vertex (source of the new edge)
  VertexId to;              // pattern vertex, or kNewVertex
  bool new_is_source;       // when new vertex: new -> from instead
  Label new_vertex_label;   // label of the new vertex (if any)
  Label edge_label;

  static constexpr VertexId kNewVertex = ~VertexId{0};

  auto operator<=>(const Extension&) const = default;
};

struct Miner {
  const std::vector<LabeledGraph>& transactions;
  const GspanOptions& options;
  GspanResult result;
  std::unordered_set<std::string> visited_codes;

  std::size_t SupportOf(const std::vector<Emb>& embs) const {
    std::size_t support = 0;
    std::uint32_t prev = ~std::uint32_t{0};
    for (const Emb& e : embs) {  // embeddings are grouped by tid
      if (e.tid != prev) {
        ++support;
        prev = e.tid;
      }
    }
    return support;
  }

  void Grow(const LabeledGraph& pg, const std::string& code,
            std::vector<Emb> embs) {
    FrequentPattern fp;
    fp.graph = pg;
    fp.code = code;
    {
      std::uint32_t prev = ~std::uint32_t{0};
      for (const Emb& e : embs) {
        if (e.tid != prev) {
          fp.tids.push_back(e.tid);
          prev = e.tid;
        }
      }
    }
    fp.support = fp.tids.size();
    result.patterns.push_back(fp);
    result.max_level = std::max(result.max_level, pg.num_edges());
    if (options.max_edges != 0 && pg.num_edges() >= options.max_edges) {
      return;
    }

    // Enumerate extensions across all embeddings, collecting the extended
    // embeddings per descriptor.
    std::map<Extension, std::vector<Emb>> extensions;
    for (const Emb& emb : embs) {
      const LabeledGraph& t = transactions[emb.tid];
      // Occupancy for O(log n) membership tests.
      auto edge_used = [&](EdgeId e) {
        return std::binary_search(emb.edges.begin(), emb.edges.end(), e);
      };
      // Map transaction vertex -> pattern vertex (or invalid).
      // Linear scan is fine: patterns are small.
      auto pattern_vertex_of = [&](VertexId tv) -> VertexId {
        for (VertexId p = 0; p < emb.vertices.size(); ++p) {
          if (emb.vertices[p] == tv) return p;
        }
        return graph::kInvalidVertex;
      };
      for (VertexId pu = 0; pu < emb.vertices.size(); ++pu) {
        const VertexId tu = emb.vertices[pu];
        auto consider = [&](EdgeId te, bool outgoing) {
          if (edge_used(te)) return;
          const Edge& tedge = t.edge(te);
          const VertexId other = outgoing ? tedge.dst : tedge.src;
          const VertexId pother = pattern_vertex_of(other);
          Extension ext;
          ext.edge_label = tedge.label;
          if (pother != graph::kInvalidVertex) {
            // Closing edge between existing pattern vertices (includes
            // self-loops when other == tu).
            if (!outgoing) return;  // counted once, from the source side
            ext.from = pu;
            ext.to = pattern_vertex_of(tedge.dst);
            if (ext.to == graph::kInvalidVertex) return;
            if (pattern_vertex_of(tedge.src) != pu) return;
            ext.new_is_source = false;
            ext.new_vertex_label = 0;
          } else {
            ext.from = pu;
            ext.to = Extension::kNewVertex;
            ext.new_is_source = !outgoing;
            ext.new_vertex_label = t.vertex_label(other);
          }
          Emb extended = emb;
          extended.edges.insert(
              std::lower_bound(extended.edges.begin(), extended.edges.end(),
                               te),
              te);
          if (pother == graph::kInvalidVertex) {
            extended.vertices.push_back(other);
          }
          extensions[ext].push_back(std::move(extended));
        };
        t.ForEachOutEdge(tu, [&](EdgeId te) { consider(te, true); });
        t.ForEachInEdge(tu, [&](EdgeId te) {
          if (t.edge(te).src != t.edge(te).dst) consider(te, false);
        });
      }
    }

    // Recurse into frequent, unseen extensions.
    for (auto& [ext, raw_embs] : extensions) {
      // Deduplicate identical embeddings (the same occurrence can be
      // reached from several parent embeddings related by automorphism —
      // keep distinct (tid, vertex map, edge set) triples only) and apply
      // the per-transaction cap.
      std::sort(raw_embs.begin(), raw_embs.end(),
                [](const Emb& a, const Emb& b) {
                  return std::tie(a.tid, a.vertices, a.edges) <
                         std::tie(b.tid, b.vertices, b.edges);
                });
      raw_embs.erase(std::unique(raw_embs.begin(), raw_embs.end(),
                                 [](const Emb& a, const Emb& b) {
                                   return a.tid == b.tid &&
                                          a.vertices == b.vertices &&
                                          a.edges == b.edges;
                                 }),
                     raw_embs.end());
      if (options.max_embeddings_per_transaction != 0) {
        std::vector<Emb> capped;
        std::size_t run = 0;
        std::uint32_t prev = ~std::uint32_t{0};
        for (Emb& e : raw_embs) {
          if (e.tid != prev) {
            prev = e.tid;
            run = 0;
          }
          if (run < options.max_embeddings_per_transaction) {
            capped.push_back(std::move(e));
            ++run;
          } else {
            result.embeddings_truncated = true;
          }
        }
        raw_embs = std::move(capped);
      }
      if (SupportOf(raw_embs) < options.min_support) continue;
      // Build the extended pattern graph.
      LabeledGraph ext_pg = pg;
      if (ext.to == Extension::kNewVertex) {
        const VertexId nv = ext_pg.AddVertex(ext.new_vertex_label);
        if (ext.new_is_source) {
          ext_pg.AddEdge(nv, ext.from, ext.edge_label);
        } else {
          ext_pg.AddEdge(ext.from, nv, ext.edge_label);
        }
      } else {
        ext_pg.AddEdge(ext.from, ext.to, ext.edge_label);
      }
      std::string ext_code = iso::CanonicalCode(ext_pg);
      if (!visited_codes.insert(ext_code).second) continue;
      ++result.patterns_explored;
      Grow(ext_pg, ext_code, std::move(raw_embs));
    }
  }
};

}  // namespace

GspanResult MineGspan(const std::vector<LabeledGraph>& transactions,
                      const GspanOptions& options) {
  TNMINE_CHECK(options.min_support >= 1);
  for (const LabeledGraph& t : transactions) {
    TNMINE_CHECK_MSG(t.IsDense(), "transactions must be dense");
  }
  Miner miner{transactions, options, {}, {}};

  // Seed: single-edge patterns with their embeddings.
  struct Seed {
    LabeledGraph pg;
    std::vector<Emb> embs;
  };
  std::map<std::tuple<Label, Label, Label, bool>, Seed> seeds;
  for (std::uint32_t tid = 0; tid < transactions.size(); ++tid) {
    const LabeledGraph& t = transactions[tid];
    t.ForEachEdge([&](EdgeId e) {
      const Edge& edge = t.edge(e);
      const bool self_loop = edge.src == edge.dst;
      const auto key =
          std::make_tuple(t.vertex_label(edge.src),
                          t.vertex_label(edge.dst), edge.label, self_loop);
      auto it = seeds.find(key);
      if (it == seeds.end()) {
        Seed seed;
        const VertexId a = seed.pg.AddVertex(t.vertex_label(edge.src));
        if (self_loop) {
          seed.pg.AddEdge(a, a, edge.label);
        } else {
          const VertexId b = seed.pg.AddVertex(t.vertex_label(edge.dst));
          seed.pg.AddEdge(a, b, edge.label);
        }
        it = seeds.emplace(key, std::move(seed)).first;
      }
      Emb emb;
      emb.tid = tid;
      emb.vertices.push_back(edge.src);
      if (!self_loop) emb.vertices.push_back(edge.dst);
      emb.edges.push_back(e);
      it->second.embs.push_back(std::move(emb));
    });
  }
  for (auto& [key, seed] : seeds) {
    if (miner.SupportOf(seed.embs) < options.min_support) continue;
    std::string code = iso::CanonicalCode(seed.pg);
    if (!miner.visited_codes.insert(code).second) continue;
    ++miner.result.patterns_explored;
    miner.Grow(seed.pg, code, std::move(seed.embs));
  }
  return miner.result;
}

}  // namespace tnmine::gspan
