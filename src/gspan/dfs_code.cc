#include "gspan/dfs_code.h"

#include <algorithm>
#include <map>
#include <sstream>

#include "common/check.h"
#include "graph/algorithms.h"

namespace tnmine::gspan {

using graph::Edge;
using graph::EdgeId;
using graph::kInvalidVertex;
using graph::LabeledGraph;
using graph::VertexId;

graph::LabeledGraph DfsCode::ToGraph() const {
  LabeledGraph g;
  auto ensure_vertex = [&](std::uint32_t position, graph::Label label) {
    while (g.num_vertices() <= position) {
      g.AddVertex(0);  // placeholder label, set below
    }
    g.set_vertex_label(position, label);
  };
  for (const DfsEdge& e : edges_) {
    ensure_vertex(e.from, e.from_label);
    ensure_vertex(e.to, e.to_label);
    if (e.forward_direction) {
      g.AddEdge(e.from, e.to, e.edge_label);
    } else {
      g.AddEdge(e.to, e.from, e.edge_label);
    }
  }
  return g;
}

std::string DfsCode::ToString() const {
  std::ostringstream out;
  for (const DfsEdge& e : edges_) {
    out << "(" << e.from << (e.forward_direction ? ">" : "<") << e.to
        << ":" << e.from_label << "," << e.edge_label << "," << e.to_label
        << ")";
  }
  return out.str();
}

namespace {

/// One embedding of the current code prefix into the graph.
struct State {
  std::vector<VertexId> pos2v;   // DFS position -> graph vertex
  std::vector<char> used_edge;   // by EdgeId
  std::vector<std::uint32_t> v2pos;  // graph vertex -> position (or ~0)
};

/// Recursive minimal-code search: try extensions in ascending entry order;
/// the first complete code reached depth-first is the lexicographic
/// minimum (all complete codes have exactly |E| entries).
class MinimalSearch {
 public:
  explicit MinimalSearch(const LabeledGraph& g) : g_(g) {}

  DfsCode Run() {
    TNMINE_CHECK(g_.num_edges() > 0);
    TNMINE_CHECK_MSG(g_.IsDense(), "graph must be dense");
    TNMINE_CHECK_MSG(graph::IsWeaklyConnected(g_),
                     "DFS codes require a connected graph");
    // Initial entries: every edge in both role assignments.
    std::map<DfsEdge, std::vector<State>> candidates;
    g_.ForEachEdge([&](EdgeId eid) {
      const Edge& edge = g_.edge(eid);
      auto start = [&](VertexId first, VertexId second, bool forward) {
        DfsEdge entry;
        entry.from = 0;
        entry.to = (first == second) ? 0 : 1;
        entry.from_label = g_.vertex_label(first);
        entry.to_label = g_.vertex_label(second);
        entry.edge_label = edge.label;
        entry.forward_direction = forward;
        State state;
        state.pos2v = {first};
        if (first != second) state.pos2v.push_back(second);
        state.used_edge.assign(g_.edge_capacity(), 0);
        state.used_edge[eid] = 1;
        state.v2pos.assign(g_.num_vertices(), ~std::uint32_t{0});
        state.v2pos[first] = 0;
        if (first != second) state.v2pos[second] = 1;
        candidates[entry].push_back(std::move(state));
      };
      if (edge.src == edge.dst) {
        start(edge.src, edge.src, true);
      } else {
        start(edge.src, edge.dst, true);
        start(edge.dst, edge.src, false);
      }
    });
    std::vector<DfsEdge> code;
    const bool found = Extend(&code, candidates);
    TNMINE_CHECK(found);
    return DfsCode(std::move(code));
  }

 private:
  /// Rightmost path positions (rightmost vertex first) of the current
  /// code.
  static std::vector<std::uint32_t> RightmostPath(
      const std::vector<DfsEdge>& code) {
    std::uint32_t max_pos = 0;
    std::map<std::uint32_t, std::uint32_t> parent;
    for (const DfsEdge& e : code) {
      if (e.to > e.from) {  // forward entry
        parent[e.to] = e.from;
        max_pos = std::max(max_pos, e.to);
      }
    }
    std::vector<std::uint32_t> path = {max_pos};
    while (path.back() != 0) path.push_back(parent.at(path.back()));
    return path;
  }

  void Extensions(const std::vector<DfsEdge>& code, const State& state,
                  std::map<DfsEdge, std::vector<State>>* candidates) const {
    const std::vector<std::uint32_t> path = RightmostPath(code);
    const std::uint32_t rightmost = path.front();
    const std::uint32_t next_pos =
        static_cast<std::uint32_t>(state.pos2v.size());
    const VertexId rv = state.pos2v[rightmost];

    auto add = [&](const DfsEdge& entry, EdgeId eid, VertexId new_vertex) {
      State grown = state;
      grown.used_edge[eid] = 1;
      if (new_vertex != kInvalidVertex) {
        grown.v2pos[new_vertex] = next_pos;
        grown.pos2v.push_back(new_vertex);
      }
      (*candidates)[entry].push_back(std::move(grown));
    };

    // Backward edges and self-loops from the rightmost vertex.
    auto backward = [&](EdgeId eid, bool outgoing) {
      if (state.used_edge[eid]) return;
      const Edge& edge = g_.edge(eid);
      const VertexId other = outgoing ? edge.dst : edge.src;
      if (other == rv && outgoing) {
        DfsEdge entry{rightmost, rightmost, g_.vertex_label(rv), edge.label,
                      true, g_.vertex_label(rv)};
        add(entry, eid, kInvalidVertex);
        return;
      }
      if (other == rv) return;  // self-loop handled on the outgoing side
      const std::uint32_t opos = state.v2pos[other];
      if (opos == ~std::uint32_t{0}) return;  // forward case, handled below
      // Valid backward targets: vertices on the rightmost path.
      if (std::find(path.begin(), path.end(), opos) == path.end()) return;
      if (opos == rightmost) return;
      DfsEdge entry{rightmost, opos, g_.vertex_label(rv), edge.label,
                    outgoing, g_.vertex_label(other)};
      add(entry, eid, kInvalidVertex);
    };
    g_.ForEachOutEdge(rv, [&](EdgeId eid) { backward(eid, true); });
    g_.ForEachInEdge(rv, [&](EdgeId eid) {
      if (g_.edge(eid).src != g_.edge(eid).dst) backward(eid, false);
    });

    // Forward edges from every rightmost-path vertex to unvisited
    // vertices.
    for (const std::uint32_t from_pos : path) {
      const VertexId fv = state.pos2v[from_pos];
      auto forward = [&](EdgeId eid, bool outgoing) {
        if (state.used_edge[eid]) return;
        const Edge& edge = g_.edge(eid);
        const VertexId other = outgoing ? edge.dst : edge.src;
        if (other == fv) return;
        if (state.v2pos[other] != ~std::uint32_t{0}) return;  // visited
        DfsEdge entry{from_pos, next_pos, g_.vertex_label(fv), edge.label,
                      outgoing, g_.vertex_label(other)};
        add(entry, eid, other);
      };
      g_.ForEachOutEdge(fv, [&](EdgeId eid) { forward(eid, true); });
      g_.ForEachInEdge(fv, [&](EdgeId eid) { forward(eid, false); });
    }
  }

  bool Extend(std::vector<DfsEdge>* code,
              const std::map<DfsEdge, std::vector<State>>& candidates) {
    if (candidates.empty()) return false;
    for (const auto& [entry, states] : candidates) {
      code->push_back(entry);
      if (code->size() == g_.num_edges()) return true;
      std::map<DfsEdge, std::vector<State>> next;
      for (const State& state : states) {
        Extensions(*code, state, &next);
      }
      if (Extend(code, next)) return true;
      code->pop_back();
    }
    return false;
  }

  const LabeledGraph& g_;
};

}  // namespace

DfsCode MinimalDfsCode(const LabeledGraph& g) {
  MinimalSearch search(g);
  return search.Run();
}

bool IsMinimalDfsCode(const DfsCode& code) {
  if (code.empty()) return true;
  const LabeledGraph g = code.ToGraph();
  return MinimalDfsCode(g) == code;
}

}  // namespace tnmine::gspan
