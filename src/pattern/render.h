#ifndef TNMINE_PATTERN_RENDER_H_
#define TNMINE_PATTERN_RENDER_H_

#include <string>

#include "common/binning.h"
#include "pattern/pattern.h"

namespace tnmine::pattern {

/// Coarse structural shape of a connected pattern — the vocabulary the
/// paper uses when reading its figures ("hub-and-spoke", "long chain",
/// circular routes).
enum class PatternShape {
  kSingleEdge,
  kHubAndSpoke,  ///< every edge shares one center vertex (Figure 2)
  kChain,        ///< a simple path (Figure 3)
  kCycle,        ///< a simple cycle (the paper's "circular route")
  kTree,         ///< acyclic, branching
  kComplex,      ///< anything with a cycle plus extra structure
};

/// Classifies the undirected shape of `g` (must be non-empty).
PatternShape ClassifyShape(const graph::LabeledGraph& g);

/// Human-readable shape name.
const char* ShapeName(PatternShape shape);

/// Renders a pattern as readable text, Figure-1/2/3-style: one line per
/// edge "v0 -[label]-> v1". When `bins` is given, edge labels are shown as
/// value intervals (Figure 4's "[0, 6500]" style); otherwise as raw label
/// integers. Vertex labels are shown only when not uniform.
std::string RenderPattern(const FrequentPattern& p,
                          const Discretizer* bins = nullptr);

/// Renders just the graph (no support line).
std::string RenderGraph(const graph::LabeledGraph& g,
                        const Discretizer* bins = nullptr);

}  // namespace tnmine::pattern

#endif  // TNMINE_PATTERN_RENDER_H_
