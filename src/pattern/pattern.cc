#include "pattern/pattern.h"

#include <algorithm>

#include "common/check.h"
#include "iso/canonical.h"

namespace tnmine::pattern {

bool PatternRegistry::InsertOrMerge(FrequentPattern p, bool merge_tids) {
  if (p.code.empty()) p.code = iso::CanonicalCode(p.graph);
  const auto it = patterns_.find(p.code);
  if (it == patterns_.end()) {
    const std::string code = p.code;
    patterns_.emplace(code, std::move(p));
    return true;
  }
  FrequentPattern& existing = it->second;
  if (merge_tids) {
    existing.tids.UnionWith(p.tids);
    existing.support =
        std::max(existing.support, existing.tids.Cardinality());
  }
  existing.support = std::max(existing.support, p.support);
  return false;
}

bool PatternRegistry::Contains(const graph::LabeledGraph& g) const {
  return patterns_.contains(iso::CanonicalCode(g));
}

const FrequentPattern* PatternRegistry::Find(const std::string& code) const {
  const auto it = patterns_.find(code);
  return it == patterns_.end() ? nullptr : &it->second;
}

std::vector<const FrequentPattern*> PatternRegistry::SortedBySupport() const {
  std::vector<const FrequentPattern*> out;
  out.reserve(patterns_.size());
  for (const auto& [code, p] : patterns_) out.push_back(&p);
  std::sort(out.begin(), out.end(),
            [](const FrequentPattern* a, const FrequentPattern* b) {
              if (a->support != b->support) return a->support > b->support;
              if (a->graph.num_edges() != b->graph.num_edges()) {
                return a->graph.num_edges() > b->graph.num_edges();
              }
              return a->code < b->code;
            });
  return out;
}

std::vector<FrequentPattern> PatternRegistry::TakeAll() {
  std::vector<FrequentPattern> out;
  out.reserve(patterns_.size());
  for (auto& [code, p] : patterns_) out.push_back(std::move(p));
  patterns_.clear();
  return out;
}

}  // namespace tnmine::pattern
