#ifndef TNMINE_PATTERN_PATTERN_H_
#define TNMINE_PATTERN_PATTERN_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "graph/labeled_graph.h"
#include "pattern/tid_set.h"

namespace tnmine::pattern {

/// A frequent pattern over a graph-transaction set — Section 4's notion:
/// two sub-graphs support the same pattern when they are identical under a
/// label-preserving isomorphism, and a pattern is frequent when at least
/// `min_support` transactions contain a sub-graph identical to it.
struct FrequentPattern {
  /// The pattern graph (dense, no tombstones).
  graph::LabeledGraph graph;
  /// Number of transactions containing the pattern.
  std::size_t support = 0;
  /// The supporting transactions, as a compressed TID set (bitmap or
  /// sorted-sparse per density; iteration is always ascending).
  TidSet tids;
  /// Canonical isomorphism-class code (iso::CanonicalCode of `graph`).
  std::string code;
};

/// Registry of pattern isomorphism classes keyed by canonical code. Used
/// by the miners for candidate dedup and by Algorithm 1 to union results
/// across repeated partitionings.
class PatternRegistry {
 public:
  /// Inserts `p` if its isomorphism class is new; otherwise merges: keeps
  /// the maximum support (Algorithm 1's union semantics — a pattern
  /// frequent under any partitioning is frequent in the whole graph) and
  /// unions the tid lists when `merge_tids` is set. `p.code` may be empty,
  /// in which case it is computed. Returns true when the class was new.
  bool InsertOrMerge(FrequentPattern p, bool merge_tids = false);

  /// True if a pattern isomorphic to `g` is present.
  bool Contains(const graph::LabeledGraph& g) const;

  /// Looks up by canonical code; nullptr when absent.
  const FrequentPattern* Find(const std::string& code) const;

  std::size_t size() const { return patterns_.size(); }
  bool empty() const { return patterns_.empty(); }

  /// All registered patterns, ordered by decreasing support, ties broken
  /// by decreasing edge count then code.
  std::vector<const FrequentPattern*> SortedBySupport() const;

  /// Consumes the registry into a plain vector (unspecified order).
  std::vector<FrequentPattern> TakeAll();

 private:
  std::unordered_map<std::string, FrequentPattern> patterns_;
};

}  // namespace tnmine::pattern

#endif  // TNMINE_PATTERN_PATTERN_H_
