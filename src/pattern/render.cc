#include "pattern/render.h"

#include <sstream>

#include "common/check.h"
#include "graph/algorithms.h"

namespace tnmine::pattern {

using graph::EdgeId;
using graph::LabeledGraph;
using graph::VertexId;

PatternShape ClassifyShape(const LabeledGraph& g) {
  TNMINE_CHECK(g.num_edges() >= 1);
  if (g.num_edges() == 1) return PatternShape::kSingleEdge;

  const bool connected = graph::IsWeaklyConnected(g);
  const bool acyclic =
      connected && g.num_edges() == g.num_vertices() - 1;
  std::size_t max_degree = 0;
  std::size_t degree_two = 0;
  std::size_t active = 0;
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    const std::size_t deg = g.Degree(v);
    if (deg == 0) continue;
    ++active;
    max_degree = std::max(max_degree, deg);
    degree_two += (deg == 2);
  }
  // A simple path (any edge directions along it — Figure 3's route mixes
  // pickups and deliveries). Checked before hub-and-spoke because a
  // two-edge path also trivially shares its middle vertex.
  if (acyclic && max_degree <= 2) return PatternShape::kChain;

  // Hub-and-spoke: one vertex touches every edge (three or more spokes;
  // fewer is a chain).
  for (VertexId hub = 0; hub < g.num_vertices(); ++hub) {
    if (g.Degree(hub) < 3) continue;
    bool all_incident = true;
    g.ForEachEdge([&](EdgeId e) {
      const auto& edge = g.edge(e);
      if (edge.src != hub && edge.dst != hub) all_incident = false;
    });
    if (all_incident) return PatternShape::kHubAndSpoke;
  }

  if (connected && g.num_edges() == g.num_vertices() &&
      degree_two == active) {
    return PatternShape::kCycle;
  }
  if (acyclic) return PatternShape::kTree;
  return PatternShape::kComplex;
}

const char* ShapeName(PatternShape shape) {
  switch (shape) {
    case PatternShape::kSingleEdge:
      return "single-edge";
    case PatternShape::kHubAndSpoke:
      return "hub-and-spoke";
    case PatternShape::kChain:
      return "chain";
    case PatternShape::kCycle:
      return "cycle";
    case PatternShape::kTree:
      return "tree";
    case PatternShape::kComplex:
      return "complex";
  }
  return "?";
}

std::string RenderGraph(const LabeledGraph& g, const Discretizer* bins) {
  std::ostringstream out;
  const bool uniform_vertices = g.CountDistinctVertexLabels() <= 1;
  auto vertex_name = [&](VertexId v) {
    std::ostringstream name;
    name << v;
    if (!uniform_vertices) name << "(L" << g.vertex_label(v) << ")";
    return name.str();
  };
  g.ForEachEdge([&](EdgeId e) {
    const auto& edge = g.edge(e);
    out << "    " << vertex_name(edge.src) << " -[";
    if (bins != nullptr && edge.label >= 0 &&
        edge.label < bins->num_bins()) {
      out << bins->IntervalLabel(edge.label);
    } else {
      out << edge.label;
    }
    out << "]-> " << vertex_name(edge.dst) << "\n";
  });
  return out.str();
}

std::string RenderPattern(const FrequentPattern& p, const Discretizer* bins) {
  std::ostringstream out;
  out << "pattern support=" << p.support << " vertices="
      << p.graph.num_vertices() << " edges=" << p.graph.num_edges();
  if (p.graph.num_edges() >= 1) {
    out << " shape=" << ShapeName(ClassifyShape(p.graph));
  }
  out << "\n" << RenderGraph(p.graph, bins);
  return out.str();
}

}  // namespace tnmine::pattern
