#ifndef TNMINE_PATTERN_TID_SET_H_
#define TNMINE_PATTERN_TID_SET_H_

#include <bit>
#include <cstdint>
#include <vector>

#include "common/bitwords.h"
#include "common/check.h"

namespace tnmine::pattern {

/// Compressed set of transaction ids (the supporting-transaction lists
/// FSG and the pattern registry carry), with two encodings behind one
/// interface — see DESIGN.md §12:
///
///  - kSparse: a sorted std::uint32_t array. Intersection gallops
///    (exponential probe + binary search) through the larger operand, so
///    sparse ∩ sparse costs O(small · log(large / small)).
///  - kBitmap: word-aligned 64-bit words over [0, universe()).
///    Cardinality is a popcount sum, iteration is a ctz walk, and
///    intersection is an in-place word AND.
///
/// Normalize() picks the cheaper encoding by density: the bitmap spends
/// universe/8 bytes regardless of cardinality, the sparse array 4 bytes
/// per element, so the bitmap wins when cardinality ≥ universe/32. All
/// observers (Cardinality, Contains, iteration order, equality) are
/// encoding-independent — mined output is byte-identical whichever
/// encoding a set happens to be in.
///
/// Sets are cheap to copy and safe to share read-only across threads;
/// mutation (Append/Intersect/Union/Convert) requires exclusive access.
class TidSet {
 public:
  enum class Encoding : std::uint8_t { kSparse, kBitmap };

  /// Process-wide override of Normalize()'s density choice, for the
  /// encoding-comparison benches and the byte-identity tests. Read with
  /// relaxed atomics so leases on worker threads may Normalize() while a
  /// test harness holds the policy fixed.
  enum class EncodingPolicy : std::uint8_t {
    kAuto,
    kForceSparse,
    kForceBitmap
  };
  static void SetEncodingPolicy(EncodingPolicy policy);
  static EncodingPolicy GetEncodingPolicy();
  /// RAII policy override (restores the previous policy on destruction).
  class ScopedEncodingPolicy {
   public:
    explicit ScopedEncodingPolicy(EncodingPolicy policy)
        : previous_(GetEncodingPolicy()) {
      SetEncodingPolicy(policy);
    }
    ~ScopedEncodingPolicy() { SetEncodingPolicy(previous_); }
    ScopedEncodingPolicy(const ScopedEncodingPolicy&) = delete;
    ScopedEncodingPolicy& operator=(const ScopedEncodingPolicy&) = delete;

   private:
    EncodingPolicy previous_;
  };

  /// Empty sparse set over an empty universe.
  TidSet() = default;

  /// Takes ownership of a strictly ascending tid vector and normalizes.
  /// `universe` is the exclusive tid bound (number of transactions); it
  /// is raised automatically if the data exceeds it.
  static TidSet FromSorted(std::vector<std::uint32_t> tids,
                           std::uint32_t universe);

  /// Appends a tid strictly greater than every current element (the
  /// streaming build the miners use). Keeps the current encoding; call
  /// Normalize() after the last append.
  void Append(std::uint32_t tid);

  bool Contains(std::uint32_t tid) const;
  std::size_t Cardinality() const { return cardinality_; }
  bool Empty() const { return cardinality_ == 0; }
  /// Exclusive upper bound on stored tids (bitmap bit capacity).
  std::uint32_t universe() const { return universe_; }
  Encoding encoding() const { return encoding_; }

  /// Removes every element (also resets the universe).
  void Clear();

  /// In-place intersection; afterwards the set is re-normalized.
  void IntersectWith(const TidSet& other);
  static TidSet Intersect(const TidSet& a, const TidSet& b);

  /// In-place union; afterwards the set is re-normalized.
  void UnionWith(const TidSet& other);

  /// Offset-splice union: unions {tid + offset : tid ∈ other} into this
  /// set — the per-shard merge kernel (DESIGN.md §16). `other` holds
  /// shard-local tids; `offset` is the shard's global base. When the
  /// spliced range lands entirely past this set's universe (the
  /// ascending-shard merge the miners do), both sparse and bitmap
  /// encodings take a pure append path with no re-merge.
  void SpliceUnion(const TidSet& other, std::uint32_t offset);

  /// Forces a specific encoding (no policy consultation).
  void ConvertTo(Encoding encoding);
  /// Re-encodes per the density rule (or the forced process policy).
  void Normalize();

  /// Exact footprint: the object plus every heap block it owns. This is
  /// what the miners charge against ResourceBudget memory ceilings.
  std::uint64_t MemoryBytes() const {
    return sizeof(*this) + sparse_.capacity() * sizeof(std::uint32_t) +
           words_.capacity() * sizeof(std::uint64_t);
  }

  /// Calls fn(tid) for each element, ascending (ctz walk on bitmaps).
  template <typename Fn>
  void ForEach(Fn&& fn) const {
    if (encoding_ == Encoding::kSparse) {
      for (const std::uint32_t tid : sparse_) fn(tid);
    } else {
      common::ForEachSetBit(std::span<const std::uint64_t>(words_), fn);
    }
  }

  std::vector<std::uint32_t> ToVector() const;

  /// Forward iteration over elements, ascending — works for range-for
  /// regardless of encoding.
  class const_iterator {
   public:
    using value_type = std::uint32_t;
    using difference_type = std::ptrdiff_t;
    using iterator_category = std::forward_iterator_tag;

    std::uint32_t operator*() const {
      if (sparse_ != nullptr) return *sparse_;
      return static_cast<std::uint32_t>(word_index_ * common::kBitsPerWord +
                                        std::countr_zero(current_word_));
    }
    const_iterator& operator++() {
      if (sparse_ != nullptr) {
        ++sparse_;
        return *this;
      }
      current_word_ &= current_word_ - 1;  // peel the lowest set bit
      SkipEmptyWords();
      return *this;
    }
    bool operator==(const const_iterator& other) const {
      if (sparse_ != nullptr || other.sparse_ != nullptr) {
        return sparse_ == other.sparse_;
      }
      return word_index_ == other.word_index_ &&
             current_word_ == other.current_word_;
    }

   private:
    friend class TidSet;
    explicit const_iterator(const std::uint32_t* sparse) : sparse_(sparse) {}
    const_iterator(const std::uint64_t* words, std::size_t num_words,
                   std::size_t word_index)
        : words_(words), num_words_(num_words), word_index_(word_index) {
      if (word_index_ < num_words_) {
        current_word_ = words_[word_index_];
        SkipEmptyWords();
      }
    }
    void SkipEmptyWords() {
      while (current_word_ == 0 && ++word_index_ < num_words_) {
        current_word_ = words_[word_index_];
      }
      if (word_index_ >= num_words_) current_word_ = 0;
    }

    const std::uint32_t* sparse_ = nullptr;
    const std::uint64_t* words_ = nullptr;
    std::size_t num_words_ = 0;
    std::size_t word_index_ = 0;
    std::uint64_t current_word_ = 0;
  };

  const_iterator begin() const {
    if (encoding_ == Encoding::kSparse) {
      return const_iterator(sparse_.data());
    }
    return const_iterator(words_.data(), words_.size(), 0);
  }
  const_iterator end() const {
    if (encoding_ == Encoding::kSparse) {
      return const_iterator(sparse_.data() + sparse_.size());
    }
    return const_iterator(words_.data(), words_.size(), words_.size());
  }

  /// Logical equality: same elements, regardless of encoding.
  bool operator==(const TidSet& other) const;

 private:
  /// Bitmap becomes the cheaper encoding at cardinality ≥ universe / 32
  /// (universe/8 bitmap bytes vs 4·cardinality sparse bytes).
  static constexpr std::size_t kDensityDenominator = 32;

  void IntersectSparseSparse(const TidSet& other);
  void IntersectBitmapBitmap(const TidSet& other);
  void FilterSparseByBitmap(const TidSet& bitmap);

  std::vector<std::uint32_t> sparse_;  // kSparse payload, ascending
  std::vector<std::uint64_t> words_;   // kBitmap payload
  std::uint32_t universe_ = 0;
  std::size_t cardinality_ = 0;
  Encoding encoding_ = Encoding::kSparse;
};

}  // namespace tnmine::pattern

#endif  // TNMINE_PATTERN_TID_SET_H_
