#include "pattern/tid_set.h"

#include <algorithm>
#include <atomic>
#include <utility>

#include "common/telemetry.h"

namespace tnmine::pattern {

namespace {

/// Process-wide Normalize() policy (tests and the encoding benches hold
/// it fixed around a workload; production leaves it kAuto).
std::atomic<TidSet::EncodingPolicy> g_encoding_policy{
    TidSet::EncodingPolicy::kAuto};

/// Galloping lower_bound: exponential probe from `from`, then binary
/// search inside the bracketed range. Returns the first index with
/// data[i] >= key, and counts probe+bisection steps into *steps.
std::size_t Gallop(const std::vector<std::uint32_t>& data, std::size_t from,
                   std::uint32_t key, std::uint64_t* steps) {
  std::size_t bound = 1;
  while (from + bound < data.size() && data[from + bound] < key) {
    bound *= 2;
    ++*steps;
  }
  const auto first =
      data.begin() + static_cast<std::ptrdiff_t>(from + bound / 2);
  const auto last = data.begin() + static_cast<std::ptrdiff_t>(
                                       std::min(from + bound, data.size()));
  const auto it = std::lower_bound(first, last, key);
  *steps += static_cast<std::uint64_t>(std::bit_width(
      static_cast<std::uint64_t>(last - first) + 1));
  return static_cast<std::size_t>(it - data.begin());
}

}  // namespace

void TidSet::SetEncodingPolicy(EncodingPolicy policy) {
  g_encoding_policy.store(policy, std::memory_order_relaxed);
}

TidSet::EncodingPolicy TidSet::GetEncodingPolicy() {
  return g_encoding_policy.load(std::memory_order_relaxed);
}

TidSet TidSet::FromSorted(std::vector<std::uint32_t> tids,
                          std::uint32_t universe) {
  TidSet set;
  set.sparse_ = std::move(tids);
  set.cardinality_ = set.sparse_.size();
  set.universe_ = universe;
  if (!set.sparse_.empty()) {
    TNMINE_DCHECK(
        std::is_sorted(set.sparse_.begin(), set.sparse_.end()) &&
        std::adjacent_find(set.sparse_.begin(), set.sparse_.end()) ==
            set.sparse_.end());
    set.universe_ = std::max(universe, set.sparse_.back() + 1);
  }
  set.Normalize();
  return set;
}

void TidSet::Append(std::uint32_t tid) {
  if (encoding_ == Encoding::kSparse) {
    TNMINE_DCHECK(sparse_.empty() || sparse_.back() < tid);
    sparse_.push_back(tid);
  } else {
    const std::size_t word = tid / common::kBitsPerWord;
    if (word >= words_.size()) words_.resize(word + 1, 0);
    words_[word] |= std::uint64_t{1} << (tid % common::kBitsPerWord);
  }
  ++cardinality_;
  universe_ = std::max(universe_, tid + 1);
}

bool TidSet::Contains(std::uint32_t tid) const {
  if (encoding_ == Encoding::kSparse) {
    return std::binary_search(sparse_.begin(), sparse_.end(), tid);
  }
  const std::size_t word = tid / common::kBitsPerWord;
  if (word >= words_.size()) return false;
  return (words_[word] >> (tid % common::kBitsPerWord)) & 1;
}

void TidSet::Clear() {
  sparse_.clear();
  words_.clear();
  cardinality_ = 0;
  universe_ = 0;
  encoding_ = Encoding::kSparse;
}

void TidSet::IntersectBitmapBitmap(const TidSet& other) {
  const std::size_t common_words =
      std::min(words_.size(), other.words_.size());
  std::size_t count = 0;
  for (std::size_t w = 0; w < common_words; ++w) {
    words_[w] &= other.words_[w];
    count += static_cast<std::size_t>(std::popcount(words_[w]));
  }
  words_.resize(common_words);
  cardinality_ = count;
  universe_ = std::min(universe_, other.universe_);
  TNMINE_COUNTER_ADD("tidset/intersect_words", common_words);
}

void TidSet::IntersectSparseSparse(const TidSet& other) {
  // Walk the smaller operand, galloping through the larger one.
  const std::vector<std::uint32_t>& small =
      sparse_.size() <= other.sparse_.size() ? sparse_ : other.sparse_;
  const std::vector<std::uint32_t>& large =
      sparse_.size() <= other.sparse_.size() ? other.sparse_ : sparse_;
  std::vector<std::uint32_t> out;
  out.reserve(small.size());
  std::uint64_t steps = 0;
  std::size_t pos = 0;
  for (const std::uint32_t tid : small) {
    pos = Gallop(large, pos, tid, &steps);
    if (pos == large.size()) break;
    if (large[pos] == tid) {
      out.push_back(tid);
      ++pos;
    }
  }
  sparse_ = std::move(out);
  cardinality_ = sparse_.size();
  universe_ = std::min(universe_, other.universe_);
  TNMINE_COUNTER_ADD("tidset/gallop_steps", steps);
}

void TidSet::FilterSparseByBitmap(const TidSet& bitmap) {
  std::uint64_t steps = 0;
  std::size_t kept = 0;
  for (const std::uint32_t tid : sparse_) {
    ++steps;  // one bit probe per element
    if (bitmap.Contains(tid)) sparse_[kept++] = tid;
  }
  sparse_.resize(kept);
  cardinality_ = kept;
  TNMINE_COUNTER_ADD("tidset/gallop_steps", steps);
}

void TidSet::IntersectWith(const TidSet& other) {
  if (encoding_ == Encoding::kBitmap &&
      other.encoding_ == Encoding::kBitmap) {
    IntersectBitmapBitmap(other);
  } else if (encoding_ == Encoding::kSparse &&
             other.encoding_ == Encoding::kSparse) {
    IntersectSparseSparse(other);
  } else if (encoding_ == Encoding::kSparse) {
    FilterSparseByBitmap(other);
    universe_ = std::min(universe_, other.universe_);
  } else {
    // Bitmap ∩ sparse: the sparse side is the upper bound on the result,
    // so probe this bitmap per element rather than widening the sparse
    // operand to words.
    std::vector<std::uint32_t> out;
    out.reserve(std::min(cardinality_, other.cardinality_));
    std::uint64_t steps = 0;
    for (const std::uint32_t tid : other.sparse_) {
      ++steps;
      if (Contains(tid)) out.push_back(tid);
    }
    TNMINE_COUNTER_ADD("tidset/gallop_steps", steps);
    words_.clear();
    sparse_ = std::move(out);
    cardinality_ = sparse_.size();
    encoding_ = Encoding::kSparse;
    universe_ = std::min(universe_, other.universe_);
  }
  Normalize();
}

TidSet TidSet::Intersect(const TidSet& a, const TidSet& b) {
  TidSet out = a;
  out.IntersectWith(b);
  return out;
}

void TidSet::UnionWith(const TidSet& other) {
  if (other.Empty()) return;
  universe_ = std::max(universe_, other.universe_);
  if (encoding_ == Encoding::kBitmap ||
      other.encoding_ == Encoding::kBitmap) {
    ConvertTo(Encoding::kBitmap);
    const std::size_t words = common::WordsForBits(universe_);
    if (words_.size() < words) words_.resize(words, 0);
    if (other.encoding_ == Encoding::kBitmap) {
      for (std::size_t w = 0; w < other.words_.size(); ++w) {
        words_[w] |= other.words_[w];
      }
    } else {
      for (const std::uint32_t tid : other.sparse_) {
        words_[tid / common::kBitsPerWord] |=
            std::uint64_t{1} << (tid % common::kBitsPerWord);
      }
    }
    std::size_t count = 0;
    for (const std::uint64_t word : words_) {
      count += static_cast<std::size_t>(std::popcount(word));
    }
    cardinality_ = count;
  } else {
    std::vector<std::uint32_t> merged;
    merged.reserve(sparse_.size() + other.sparse_.size());
    std::merge(sparse_.begin(), sparse_.end(), other.sparse_.begin(),
               other.sparse_.end(), std::back_inserter(merged));
    merged.erase(std::unique(merged.begin(), merged.end()), merged.end());
    sparse_ = std::move(merged);
    cardinality_ = sparse_.size();
  }
  Normalize();
}

void TidSet::SpliceUnion(const TidSet& other, std::uint32_t offset) {
  const std::uint64_t bound =
      static_cast<std::uint64_t>(offset) + other.universe_;
  TNMINE_DCHECK(bound <= std::uint64_t{0xFFFFFFFF});
  const std::uint32_t new_universe =
      std::max(universe_, static_cast<std::uint32_t>(bound));
  if (other.Empty()) {
    universe_ = new_universe;
    Normalize();
    return;
  }
  TNMINE_COUNTER_ADD("tidset/spliced_tids", other.cardinality_);
  if (encoding_ == Encoding::kSparse) {
    if (sparse_.empty() || sparse_.back() < *other.begin() + offset) {
      // Ascending-shard merge: the spliced range starts past every
      // current element, so it appends without a re-merge.
      sparse_.reserve(sparse_.size() + other.cardinality_);
      other.ForEach(
          [&](std::uint32_t tid) { sparse_.push_back(tid + offset); });
    } else {
      std::vector<std::uint32_t> shifted;
      shifted.reserve(other.cardinality_);
      other.ForEach(
          [&](std::uint32_t tid) { shifted.push_back(tid + offset); });
      std::vector<std::uint32_t> merged;
      merged.reserve(sparse_.size() + shifted.size());
      std::merge(sparse_.begin(), sparse_.end(), shifted.begin(),
                 shifted.end(), std::back_inserter(merged));
      merged.erase(std::unique(merged.begin(), merged.end()),
                   merged.end());
      sparse_ = std::move(merged);
    }
    cardinality_ = sparse_.size();
  } else {
    const std::size_t words = common::WordsForBits(new_universe);
    if (words_.size() < words) words_.resize(words, 0);
    other.ForEach([&](std::uint32_t tid) {
      const std::uint32_t t = tid + offset;
      words_[t / common::kBitsPerWord] |= std::uint64_t{1}
                                          << (t % common::kBitsPerWord);
    });
    std::size_t count = 0;
    for (const std::uint64_t word : words_) {
      count += static_cast<std::size_t>(std::popcount(word));
    }
    cardinality_ = count;
  }
  universe_ = new_universe;
  Normalize();
}

void TidSet::ConvertTo(Encoding encoding) {
  if (encoding == encoding_) return;
  if (encoding == Encoding::kBitmap) {
    words_.assign(common::WordsForBits(universe_), 0);
    for (const std::uint32_t tid : sparse_) {
      words_[tid / common::kBitsPerWord] |=
          std::uint64_t{1} << (tid % common::kBitsPerWord);
    }
    sparse_.clear();
    sparse_.shrink_to_fit();
  } else {
    std::vector<std::uint32_t> out;
    out.reserve(cardinality_);
    common::ForEachSetBit(std::span<const std::uint64_t>(words_),
                          [&](std::uint32_t tid) { out.push_back(tid); });
    sparse_ = std::move(out);
    words_.clear();
    words_.shrink_to_fit();
  }
  encoding_ = encoding;
}

void TidSet::Normalize() {
  switch (GetEncodingPolicy()) {
    case EncodingPolicy::kForceSparse:
      ConvertTo(Encoding::kSparse);
      return;
    case EncodingPolicy::kForceBitmap:
      ConvertTo(Encoding::kBitmap);
      return;
    case EncodingPolicy::kAuto:
      break;
  }
  const bool dense =
      cardinality_ > 0 && cardinality_ * kDensityDenominator >= universe_;
  ConvertTo(dense ? Encoding::kBitmap : Encoding::kSparse);
}

std::vector<std::uint32_t> TidSet::ToVector() const {
  std::vector<std::uint32_t> out;
  out.reserve(cardinality_);
  ForEach([&](std::uint32_t tid) { out.push_back(tid); });
  return out;
}

bool TidSet::operator==(const TidSet& other) const {
  if (cardinality_ != other.cardinality_) return false;
  auto it = begin();
  auto jt = other.begin();
  const auto it_end = end();
  for (; it != it_end; ++it, ++jt) {
    if (*it != *jt) return false;
  }
  return true;
}

}  // namespace tnmine::pattern
