#ifndef TNMINE_PATTERN_DOT_H_
#define TNMINE_PATTERN_DOT_H_

#include <string>

#include "common/binning.h"
#include "pattern/pattern.h"

namespace tnmine::pattern {

/// Options for Graphviz export.
struct DotOptions {
  /// Graph name in the `digraph <name> { ... }` header.
  std::string name = "pattern";
  /// Show vertex labels (off for Section-5-style uniform labeling, where
  /// they carry no information).
  bool show_vertex_labels = true;
  /// Render edge labels as value intervals using this discretizer
  /// (Figure-4 style); nullptr prints the raw label integer.
  const Discretizer* bins = nullptr;
};

/// Renders a graph as Graphviz DOT — the paper presents all its patterns
/// (Figures 1-4) as drawn graphs; this produces the same artifacts from
/// mined patterns (`dot -Tpng` renders them).
std::string ToDot(const graph::LabeledGraph& g, const DotOptions& options = {});

/// Renders a frequent pattern with its support in the graph label.
std::string ToDot(const FrequentPattern& p, const DotOptions& options = {});

}  // namespace tnmine::pattern

#endif  // TNMINE_PATTERN_DOT_H_
