#include "pattern/dot.h"

#include <sstream>

namespace tnmine::pattern {

namespace {

/// Escapes a DOT double-quoted string.
std::string Escape(const std::string& s) {
  std::string out;
  for (char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    out.push_back(c);
  }
  return out;
}

void EmitBody(const graph::LabeledGraph& g, const DotOptions& options,
              std::ostringstream& out) {
  for (graph::VertexId v = 0; v < g.num_vertices(); ++v) {
    out << "  n" << v;
    if (options.show_vertex_labels) {
      out << " [label=\"" << v << " (L" << g.vertex_label(v) << ")\"]";
    } else {
      out << " [label=\"" << v << "\"]";
    }
    out << ";\n";
  }
  g.ForEachEdge([&](graph::EdgeId e) {
    const auto& edge = g.edge(e);
    out << "  n" << edge.src << " -> n" << edge.dst << " [label=\"";
    if (options.bins != nullptr && edge.label >= 0 &&
        edge.label < options.bins->num_bins()) {
      out << Escape(options.bins->IntervalLabel(edge.label));
    } else {
      out << edge.label;
    }
    out << "\"];\n";
  });
}

}  // namespace

std::string ToDot(const graph::LabeledGraph& g, const DotOptions& options) {
  std::ostringstream out;
  out << "digraph " << options.name << " {\n";
  out << "  node [shape=circle fontsize=10];\n";
  out << "  edge [fontsize=9];\n";
  EmitBody(g, options, out);
  out << "}\n";
  return out.str();
}

std::string ToDot(const FrequentPattern& p, const DotOptions& options) {
  std::ostringstream out;
  out << "digraph " << options.name << " {\n";
  out << "  label=\"support " << p.support << "\";\n";
  out << "  node [shape=circle fontsize=10];\n";
  out << "  edge [fontsize=9];\n";
  EmitBody(p.graph, options, out);
  out << "}\n";
  return out.str();
}

}  // namespace tnmine::pattern
