#ifndef TNMINE_ISO_VF2_H_
#define TNMINE_ISO_VF2_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "graph/labeled_graph.h"

namespace tnmine::iso {

/// One occurrence of a pattern inside a target graph.
///
/// `vertex_map[p]` is the target vertex playing pattern vertex p;
/// `edge_map[i]` is the target edge playing the i-th live pattern edge
/// (pattern edges are indexed by ascending EdgeId). When the pattern has
/// parallel edges, interchangeable target edges are assigned in a fixed
/// deterministic order, so each distinct vertex mapping yields exactly one
/// embedding.
struct Embedding {
  std::vector<graph::VertexId> vertex_map;
  std::vector<graph::EdgeId> edge_map;
};

/// Options for subgraph matching.
struct MatchOptions {
  /// Target vertices that may not be used (size num_vertices of the target,
  /// nonzero = forbidden). Used by SUBDUE's no-overlap instance search.
  const std::vector<char>* forbidden_target_vertices = nullptr;
  /// Target edges that may not be used (indexed by EdgeId over the
  /// target's edge_capacity()).
  const std::vector<char>* forbidden_target_edges = nullptr;
  /// Abort the search after this many recursive extensions (0 = unlimited);
  /// a safety valve against pathological workloads. When tripped, the
  /// matcher behaves as if no further embeddings exist.
  std::uint64_t max_search_steps = 0;
  /// Induced matching (AGM-style semantics, the paper's [10]): between
  /// every pair of mapped vertices the target must carry *exactly* the
  /// pattern's edges — same multiplicities per direction and label, and
  /// nothing more. Default is the non-induced monomorphism FSG/gSpan use.
  bool induced = false;
};

/// Label-preserving subgraph (monomorphism) matcher for directed labeled
/// multigraphs — the Section 4 notion of "identical" subgraphs: vertices
/// map injectively with equal labels, and every pattern edge maps to a
/// distinct live target edge with the same direction and label. The match
/// is NOT induced: extra target edges between mapped vertices are allowed,
/// which is the semantics FSG/gSpan support counting requires.
class SubgraphMatcher {
 public:
  /// `pattern` must be dense (no tombstoned edges) and non-empty. Both
  /// references must outlive the matcher.
  SubgraphMatcher(const graph::LabeledGraph& pattern,
                  const graph::LabeledGraph& target);

  /// Invokes `fn` for each embedding; `fn` returns false to stop the
  /// enumeration. Returns the number of embeddings visited.
  std::uint64_t ForEachEmbedding(
      const MatchOptions& options,
      const std::function<bool(const Embedding&)>& fn);

  /// True if at least one embedding exists.
  bool Contains(const MatchOptions& options = {});

  /// Counts embeddings, stopping early at `limit` when nonzero.
  std::uint64_t CountEmbeddings(std::uint64_t limit = 0,
                                const MatchOptions& options = {});

 private:
  struct PatternEdgeRef {
    graph::EdgeId edge;
    bool outgoing;  // relative to the pattern vertex being placed
  };

  bool Extend(std::size_t depth);
  bool EmitCurrentEmbedding();

  const graph::LabeledGraph& pattern_;
  const graph::LabeledGraph& target_;

  // Search plan: pattern vertices in placement order; for each, the pattern
  // edges connecting it to earlier-placed vertices.
  std::vector<graph::VertexId> order_;
  std::vector<std::vector<PatternEdgeRef>> back_edges_;
  std::vector<bool> has_anchor_;  // order_[i] adjacent to an earlier vertex?

  // Per-run state.
  const MatchOptions* options_ = nullptr;
  const std::function<bool(const Embedding&)>* callback_ = nullptr;
  std::vector<graph::VertexId> vertex_image_;   // pattern v -> target v
  std::vector<char> target_used_;
  std::uint64_t emitted_ = 0;
  std::uint64_t steps_ = 0;
  bool stopped_ = false;
};

/// Convenience wrappers.
bool ContainsSubgraph(const graph::LabeledGraph& pattern,
                      const graph::LabeledGraph& target);
std::uint64_t CountEmbeddings(const graph::LabeledGraph& pattern,
                              const graph::LabeledGraph& target,
                              std::uint64_t limit = 0);
/// Induced-subgraph containment (MatchOptions::induced).
bool ContainsInducedSubgraph(const graph::LabeledGraph& pattern,
                             const graph::LabeledGraph& target);

}  // namespace tnmine::iso

#endif  // TNMINE_ISO_VF2_H_
