#ifndef TNMINE_ISO_VF2_H_
#define TNMINE_ISO_VF2_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "graph/graph_view.h"
#include "graph/labeled_graph.h"

namespace tnmine::iso {

/// One occurrence of a pattern inside a target graph.
///
/// `vertex_map[p]` is the target vertex playing pattern vertex p;
/// `edge_map[i]` is the target edge playing the i-th live pattern edge
/// (pattern edges are indexed by ascending EdgeId). When the pattern has
/// parallel edges, interchangeable target edges are assigned in a fixed
/// deterministic order, so each distinct vertex mapping yields exactly one
/// embedding.
struct Embedding {
  std::vector<graph::VertexId> vertex_map;
  std::vector<graph::EdgeId> edge_map;
};

/// Options for subgraph matching.
struct MatchOptions {
  /// Target vertices that may not be used (size num_vertices of the target,
  /// nonzero = forbidden). Used by SUBDUE's no-overlap instance search.
  const std::vector<char>* forbidden_target_vertices = nullptr;
  /// Target edges that may not be used (indexed by EdgeId over the
  /// target's edge_capacity()).
  const std::vector<char>* forbidden_target_edges = nullptr;
  /// Abort the search after this many recursive extensions (0 = unlimited);
  /// a safety valve against pathological workloads. When tripped, the
  /// matcher behaves as if no further embeddings exist.
  std::uint64_t max_search_steps = 0;
  /// Induced matching (AGM-style semantics, the paper's [10]): between
  /// every pair of mapped vertices the target must carry *exactly* the
  /// pattern's edges — same multiplicities per direction and label, and
  /// nothing more. Default is the non-induced monomorphism FSG/gSpan use.
  bool induced = false;
};

/// Label-preserving subgraph (monomorphism) matcher for directed labeled
/// multigraphs — the Section 4 notion of "identical" subgraphs: vertices
/// map injectively with equal labels, and every pattern edge maps to a
/// distinct live target edge with the same direction and label. The match
/// is NOT induced: extra target edges between mapped vertices are allowed,
/// which is the semantics FSG/gSpan support counting requires.
///
/// Construction compiles the PATTERN into a search plan (placement order,
/// per-depth requirement tallies, emit groups); targets are bound per
/// call as prebuilt graph::GraphView snapshots. One plan can therefore be
/// reused against many targets — the FSG support-counting loop builds one
/// matcher per candidate and runs it over every transaction view. The
/// per-run search state lives in a per-thread scratch lease, so repeated
/// runs on a warmed thread do not allocate.
class SubgraphMatcher {
 public:
  /// Compiles the plan for `pattern` only; bind a target per call.
  /// `pattern` must be dense (no tombstoned edges), non-empty, and must
  /// outlive the matcher.
  explicit SubgraphMatcher(const graph::LabeledGraph& pattern);

  /// Legacy convenience: also snapshots `target` as the default target
  /// for the target-less call overloads below.
  SubgraphMatcher(const graph::LabeledGraph& pattern,
                  const graph::LabeledGraph& target);

  /// Invokes `fn` for each embedding of the pattern in `target`; `fn`
  /// returns false to stop the enumeration. Returns the number of
  /// embeddings visited.
  std::uint64_t ForEachEmbedding(
      const graph::GraphView& target, const MatchOptions& options,
      const std::function<bool(const Embedding&)>& fn);

  /// True if at least one embedding exists in `target`.
  bool Contains(const graph::GraphView& target,
                const MatchOptions& options = {});

  /// Counts embeddings in `target`, stopping early at `limit` when
  /// nonzero.
  std::uint64_t CountEmbeddings(const graph::GraphView& target,
                                std::uint64_t limit = 0,
                                const MatchOptions& options = {});

  /// Default-target overloads (require the two-argument constructor).
  std::uint64_t ForEachEmbedding(
      const MatchOptions& options,
      const std::function<bool(const Embedding&)>& fn);
  bool Contains(const MatchOptions& options = {});
  std::uint64_t CountEmbeddings(std::uint64_t limit = 0,
                                const MatchOptions& options = {});

 private:
  struct MatchScratch;  // per-run search state, pooled per thread

  /// A required edge multiplicity between the vertex being placed and an
  /// earlier-placed pattern vertex.
  struct Requirement {
    graph::VertexId other;  // earlier-placed pattern vertex
    bool outgoing;          // relative to the vertex being placed
    graph::Label label;
    std::uint32_t count;
  };

  /// Sorted (label, multiplicity) tally.
  using LabelTally = std::vector<std::pair<graph::Label, std::uint32_t>>;

  /// Induced-matching obligation against one other pattern vertex: the
  /// exact per-label edge multiset required in each direction (empty
  /// means the target must carry no such edges at all).
  struct InducedPair {
    graph::VertexId other;  // pattern vertex (any, not just earlier)
    LabelTally need_out;    // placed vertex -> other
    LabelTally need_in;     // other -> placed vertex
  };

  /// Anchor: the first non-self-loop back edge of a depth, used to
  /// enumerate candidates from the anchor image's adjacency.
  struct Anchor {
    graph::VertexId other;
    bool outgoing;
    graph::Label label;
  };

  /// Parallel pattern edges grouped by endpoints and label; target edges
  /// are assigned to `pattern_edges` (ascending) in ascending-target-id
  /// order at emit time.
  struct EmitGroup {
    graph::VertexId src;
    graph::VertexId dst;
    graph::Label label;
    std::vector<graph::EdgeId> pattern_edges;
  };

  void BuildPlan();
  bool Extend(std::size_t depth);
  bool TryCandidate(std::size_t depth, graph::VertexId t);
  bool EmitCurrentEmbedding();

  const graph::LabeledGraph& pattern_;
  std::unique_ptr<graph::GraphView> default_target_;

  // --- Search plan (pattern-only, built once). ---
  std::vector<graph::VertexId> order_;  // placement order
  std::vector<graph::Label> want_label_;
  std::vector<std::uint32_t> p_out_degree_;
  std::vector<std::uint32_t> p_in_degree_;
  std::vector<std::vector<Requirement>> requirements_;
  std::vector<LabelTally> self_loop_need_;
  std::vector<Anchor> anchors_;  // valid when has_anchor_[depth]
  std::vector<bool> has_anchor_;
  std::vector<std::vector<InducedPair>> induced_pairs_;
  std::vector<LabelTally> induced_loop_need_;
  std::vector<EmitGroup> emit_groups_;

  // --- Per-run state. ---
  const graph::GraphView* target_ = nullptr;
  const MatchOptions* options_ = nullptr;
  const std::function<bool(const Embedding&)>* callback_ = nullptr;
  MatchScratch* scratch_ = nullptr;
  std::uint64_t emitted_ = 0;
  std::uint64_t steps_ = 0;
  bool stopped_ = false;
};

/// Convenience wrappers (snapshot the target per call; hot loops should
/// prebuild GraphViews and reuse a SubgraphMatcher instead).
bool ContainsSubgraph(const graph::LabeledGraph& pattern,
                      const graph::LabeledGraph& target);
std::uint64_t CountEmbeddings(const graph::LabeledGraph& pattern,
                              const graph::LabeledGraph& target,
                              std::uint64_t limit = 0);
/// Induced-subgraph containment (MatchOptions::induced).
bool ContainsInducedSubgraph(const graph::LabeledGraph& pattern,
                             const graph::LabeledGraph& target);

}  // namespace tnmine::iso

#endif  // TNMINE_ISO_VF2_H_
