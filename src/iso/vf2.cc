#include "iso/vf2.h"

#include <algorithm>
#include <map>
#include <tuple>

namespace tnmine::iso {

using graph::Edge;
using graph::EdgeId;
using graph::kInvalidVertex;
using graph::Label;
using graph::LabeledGraph;
using graph::VertexId;

SubgraphMatcher::SubgraphMatcher(const LabeledGraph& pattern,
                                 const LabeledGraph& target)
    : pattern_(pattern), target_(target) {
  TNMINE_CHECK_MSG(pattern.num_vertices() > 0, "pattern must be non-empty");
  TNMINE_CHECK_MSG(pattern.IsDense(),
                   "pattern must be dense (Compact() it first)");

  // Placement order: BFS from the highest-degree vertex of each component,
  // so every non-root vertex is anchored to an already-placed neighbor and
  // candidate sets come from target adjacency lists instead of all
  // vertices.
  const std::size_t n = pattern.num_vertices();
  std::vector<char> placed(n, 0);
  order_.reserve(n);
  while (order_.size() < n) {
    VertexId root = kInvalidVertex;
    std::size_t best_degree = 0;
    for (VertexId v = 0; v < n; ++v) {
      if (!placed[v] && (root == kInvalidVertex ||
                         pattern.Degree(v) > best_degree)) {
        root = v;
        best_degree = pattern.Degree(v);
      }
    }
    // BFS over the undirected view of the pattern.
    std::vector<VertexId> queue = {root};
    placed[root] = 1;
    std::size_t head = 0;
    while (head < queue.size()) {
      const VertexId v = queue[head++];
      order_.push_back(v);
      auto visit = [&](EdgeId e) {
        const Edge& edge = pattern.edge(e);
        const VertexId other = (edge.src == v) ? edge.dst : edge.src;
        if (!placed[other]) {
          placed[other] = 1;
          queue.push_back(other);
        }
      };
      pattern.ForEachOutEdge(v, visit);
      pattern.ForEachInEdge(v, visit);
    }
  }

  // Position of each pattern vertex in the order.
  std::vector<std::size_t> position(n, 0);
  for (std::size_t i = 0; i < n; ++i) position[order_[i]] = i;

  back_edges_.resize(n);
  has_anchor_.assign(n, false);
  for (std::size_t i = 0; i < n; ++i) {
    const VertexId p = order_[i];
    pattern.ForEachOutEdge(p, [&](EdgeId e) {
      const VertexId other = pattern.edge(e).dst;
      if (position[other] < i || other == p) {
        back_edges_[i].push_back({e, /*outgoing=*/true});
      }
    });
    pattern.ForEachInEdge(p, [&](EdgeId e) {
      const VertexId other = pattern.edge(e).src;
      if (position[other] < i) {
        back_edges_[i].push_back({e, /*outgoing=*/false});
      }
    });
    has_anchor_[i] = !back_edges_[i].empty() &&
                     // a lone self-loop does not anchor the vertex to an
                     // earlier placement
                     std::any_of(back_edges_[i].begin(), back_edges_[i].end(),
                                 [&](const PatternEdgeRef& ref) {
                                   const Edge& edge = pattern.edge(ref.edge);
                                   return edge.src != edge.dst;
                                 });
  }
}

namespace {

bool EdgeAllowed(const MatchOptions& options, EdgeId e) {
  return options.forbidden_target_edges == nullptr ||
         !(*options.forbidden_target_edges)[e];
}

bool VertexAllowed(const MatchOptions& options, VertexId v) {
  return options.forbidden_target_vertices == nullptr ||
         !(*options.forbidden_target_vertices)[v];
}

/// Counts live, allowed target edges src -> dst with the given label.
std::size_t CountTargetEdges(const LabeledGraph& target,
                             const MatchOptions& options, VertexId src,
                             VertexId dst, Label label) {
  std::size_t count = 0;
  target.ForEachOutEdge(src, [&](EdgeId e) {
    const Edge& edge = target.edge(e);
    if (edge.dst == dst && edge.label == label && EdgeAllowed(options, e)) {
      ++count;
    }
  });
  return count;
}

}  // namespace

bool SubgraphMatcher::EmitCurrentEmbedding() {
  Embedding emb;
  emb.vertex_map = vertex_image_;
  // Assign target edges to pattern edges: group parallel pattern edges by
  // (mapped src, mapped dst, label) and hand out distinct target edges in
  // ascending EdgeId order.
  std::map<std::tuple<VertexId, VertexId, Label>, std::vector<EdgeId>> pool;
  emb.edge_map.assign(pattern_.edge_capacity(), graph::kInvalidEdge);
  bool ok = true;
  pattern_.ForEachEdge([&](EdgeId pe) {
    if (!ok) return;
    const Edge& pedge = pattern_.edge(pe);
    const VertexId ts = vertex_image_[pedge.src];
    const VertexId td = vertex_image_[pedge.dst];
    const auto key = std::make_tuple(ts, td, pedge.label);
    auto it = pool.find(key);
    if (it == pool.end()) {
      std::vector<EdgeId> available;
      target_.ForEachOutEdge(ts, [&](EdgeId te) {
        const Edge& tedge = target_.edge(te);
        if (tedge.dst == td && tedge.label == pedge.label &&
            EdgeAllowed(*options_, te)) {
          available.push_back(te);
        }
      });
      // Descending, so pop_back() hands out ascending EdgeIds.
      std::sort(available.rbegin(), available.rend());
      it = pool.emplace(key, std::move(available)).first;
    }
    if (it->second.empty()) {
      ok = false;  // cannot happen if feasibility counting was exact
      return;
    }
    emb.edge_map[pe] = it->second.back();
    it->second.pop_back();
  });
  TNMINE_DCHECK(ok);
  if (!ok) return true;
  ++emitted_;
  return (*callback_)(emb);
}

bool SubgraphMatcher::Extend(std::size_t depth) {
  if (stopped_) return false;
  if (options_->max_search_steps != 0 &&
      ++steps_ > options_->max_search_steps) {
    stopped_ = true;
    return false;
  }
  if (depth == order_.size()) return EmitCurrentEmbedding();

  const VertexId p = order_[depth];
  const Label want_label = pattern_.vertex_label(p);

  // Required multiplicities to already-placed neighbors, grouped by
  // (target endpoint, outgoing?, label). Self-loops group under the
  // candidate itself and are validated per-candidate below.
  struct Requirement {
    VertexId placed_image;
    bool outgoing;
    Label label;
    std::size_t count;
    bool self_loop;
  };
  std::vector<Requirement> requirements;
  std::size_t self_loops = 0;
  for (const PatternEdgeRef& ref : back_edges_[depth]) {
    const Edge& pedge = pattern_.edge(ref.edge);
    if (pedge.src == pedge.dst) {
      ++self_loops;
      continue;
    }
    const VertexId other = ref.outgoing ? pedge.dst : pedge.src;
    const VertexId image = vertex_image_[other];
    bool merged = false;
    for (Requirement& req : requirements) {
      if (req.placed_image == image && req.outgoing == ref.outgoing &&
          req.label == pedge.label && !req.self_loop) {
        ++req.count;
        merged = true;
        break;
      }
    }
    if (!merged) {
      requirements.push_back({image, ref.outgoing, pedge.label, 1, false});
    }
  }
  // Self-loop label multiplicities.
  std::map<Label, std::size_t> self_loop_need;
  if (self_loops > 0) {
    for (const PatternEdgeRef& ref : back_edges_[depth]) {
      const Edge& pedge = pattern_.edge(ref.edge);
      if (pedge.src == pedge.dst && ref.outgoing) {
        ++self_loop_need[pedge.label];
      }
    }
  }

  auto try_candidate = [&](VertexId t) -> bool {
    // Returns false to abort the whole enumeration.
    if (target_used_[t] || !VertexAllowed(*options_, t)) return true;
    if (target_.vertex_label(t) != want_label) return true;
    if (target_.OutDegree(t) < pattern_.OutDegree(p) ||
        target_.InDegree(t) < pattern_.InDegree(p)) {
      return true;
    }
    for (const Requirement& req : requirements) {
      const std::size_t available =
          req.outgoing
              ? CountTargetEdges(target_, *options_, t, req.placed_image,
                                 req.label)
              : CountTargetEdges(target_, *options_, req.placed_image, t,
                                 req.label);
      if (available < req.count) return true;
    }
    for (const auto& [label, need] : self_loop_need) {
      if (CountTargetEdges(target_, *options_, t, t, label) < need) {
        return true;
      }
    }
    if (options_->induced) {
      // Exact multiset equality against every placed vertex: the target
      // may carry no edge (by direction and label) that the pattern does
      // not.
      auto count_pattern = [&](VertexId a, VertexId b,
                               std::map<Label, std::size_t>* out) {
        pattern_.ForEachOutEdge(a, [&](EdgeId e) {
          if (pattern_.edge(e).dst == b) ++(*out)[pattern_.edge(e).label];
        });
      };
      auto count_target = [&](VertexId a, VertexId b,
                              std::map<Label, std::size_t>* out) {
        target_.ForEachOutEdge(a, [&](EdgeId e) {
          if (target_.edge(e).dst == b && EdgeAllowed(*options_, e)) {
            ++(*out)[target_.edge(e).label];
          }
        });
      };
      for (VertexId q = 0; q < pattern_.num_vertices(); ++q) {
        if (q == p || vertex_image_[q] == kInvalidVertex) continue;
        const VertexId tq = vertex_image_[q];
        std::map<Label, std::size_t> need_out, need_in, have_out, have_in;
        count_pattern(p, q, &need_out);
        count_pattern(q, p, &need_in);
        count_target(t, tq, &have_out);
        count_target(tq, t, &have_in);
        if (need_out != have_out || need_in != have_in) return true;
      }
      std::map<Label, std::size_t> need_loop, have_loop;
      count_pattern(p, p, &need_loop);
      count_target(t, t, &have_loop);
      if (need_loop != have_loop) return true;
    }
    vertex_image_[p] = t;
    target_used_[t] = 1;
    const bool keep_going = Extend(depth + 1);
    target_used_[t] = 0;
    vertex_image_[p] = kInvalidVertex;
    return keep_going;
  };

  if (has_anchor_[depth]) {
    // Enumerate candidates from the adjacency of the anchor's image, using
    // the first non-self-loop back edge.
    const PatternEdgeRef* anchor = nullptr;
    for (const PatternEdgeRef& ref : back_edges_[depth]) {
      const Edge& pedge = pattern_.edge(ref.edge);
      if (pedge.src != pedge.dst) {
        anchor = &ref;
        break;
      }
    }
    TNMINE_DCHECK(anchor != nullptr);
    const Edge& aedge = pattern_.edge(anchor->edge);
    const VertexId placed_other = anchor->outgoing ? aedge.dst : aedge.src;
    const VertexId image = vertex_image_[placed_other];
    bool keep_going = true;
    std::vector<char> tried(0);
    // Dedup candidates locally (parallel target edges would revisit t).
    std::vector<VertexId> candidates;
    if (anchor->outgoing) {
      // pattern edge p -> other; candidate t must have t -> image.
      target_.ForEachInEdge(image, [&](EdgeId e) {
        const Edge& tedge = target_.edge(e);
        if (tedge.label == aedge.label && EdgeAllowed(*options_, e)) {
          candidates.push_back(tedge.src);
        }
      });
    } else {
      target_.ForEachOutEdge(image, [&](EdgeId e) {
        const Edge& tedge = target_.edge(e);
        if (tedge.label == aedge.label && EdgeAllowed(*options_, e)) {
          candidates.push_back(tedge.dst);
        }
      });
    }
    std::sort(candidates.begin(), candidates.end());
    candidates.erase(std::unique(candidates.begin(), candidates.end()),
                     candidates.end());
    for (VertexId t : candidates) {
      if (!try_candidate(t)) {
        keep_going = false;
        break;
      }
    }
    return keep_going;
  }

  // Unanchored (component root): all target vertices are candidates.
  for (VertexId t = 0; t < target_.num_vertices(); ++t) {
    if (!try_candidate(t)) return false;
  }
  return true;
}

std::uint64_t SubgraphMatcher::ForEachEmbedding(
    const MatchOptions& options,
    const std::function<bool(const Embedding&)>& fn) {
  options_ = &options;
  callback_ = &fn;
  vertex_image_.assign(pattern_.num_vertices(), kInvalidVertex);
  target_used_.assign(target_.num_vertices(), 0);
  emitted_ = 0;
  steps_ = 0;
  stopped_ = false;
  if (pattern_.num_vertices() <= target_.num_vertices() &&
      pattern_.num_edges() <= target_.num_edges()) {
    Extend(0);
  }
  return emitted_;
}

bool SubgraphMatcher::Contains(const MatchOptions& options) {
  return ForEachEmbedding(options, [](const Embedding&) { return false; }) >
         0;
}

std::uint64_t SubgraphMatcher::CountEmbeddings(std::uint64_t limit,
                                               const MatchOptions& options) {
  return ForEachEmbedding(options, [&](const Embedding&) {
    return limit == 0 || emitted_ < limit;
  });
}

bool ContainsSubgraph(const LabeledGraph& pattern,
                      const LabeledGraph& target) {
  SubgraphMatcher matcher(pattern, target);
  return matcher.Contains();
}

std::uint64_t CountEmbeddings(const LabeledGraph& pattern,
                              const LabeledGraph& target,
                              std::uint64_t limit) {
  SubgraphMatcher matcher(pattern, target);
  return matcher.CountEmbeddings(limit);
}

bool ContainsInducedSubgraph(const LabeledGraph& pattern,
                             const LabeledGraph& target) {
  SubgraphMatcher matcher(pattern, target);
  MatchOptions options;
  options.induced = true;
  return matcher.Contains(options);
}

}  // namespace tnmine::iso
