#include "iso/vf2.h"

#include <algorithm>
#include <bit>
#include <map>
#include <span>
#include <tuple>

#include "common/bitwords.h"
#include "common/scratch.h"

namespace tnmine::iso {

using graph::Edge;
using graph::EdgeId;
using graph::GraphView;
using graph::kInvalidVertex;
using graph::Label;
using graph::LabeledGraph;
using graph::VertexId;

/// Per-run search state, pooled per thread (common::ScratchLease): after
/// the first few runs on a thread have warmed these buffers' capacities,
/// a match run performs no heap allocation.
struct SubgraphMatcher::MatchScratch {
  std::vector<VertexId> vertex_image;  // pattern v -> target v
  // Placed target vertices, one bit each — used-vertex exclusion during
  // candidate enumeration is a word AND against the domain bitmaps.
  common::ScratchBitset used;
  // One candidate-domain bitmap per depth (recursion at depth d iterates
  // its own domain while deeper levels fill theirs). Touched-range
  // clearing keeps a rebuild O(domain), not O(target vertices).
  std::vector<common::ScratchBitset> depth_domains;
  LabelTally have;              // induced-check tally buffer
  std::vector<EdgeId> avail;    // emit-time parallel-edge pool
  Embedding emb;                // reused embedding handed to callbacks
  // Logical state is fully re-initialized per run; keeping contents (and
  // therefore capacity) across leases is the point.
  void Reset() {}
};

SubgraphMatcher::SubgraphMatcher(const LabeledGraph& pattern)
    : pattern_(pattern) {
  TNMINE_CHECK_MSG(pattern.num_vertices() > 0, "pattern must be non-empty");
  TNMINE_CHECK_MSG(pattern.IsDense(),
                   "pattern must be dense (Compact() it first)");
  BuildPlan();
}

SubgraphMatcher::SubgraphMatcher(const LabeledGraph& pattern,
                                 const LabeledGraph& target)
    : SubgraphMatcher(pattern) {
  default_target_ = std::make_unique<GraphView>(target);
}

void SubgraphMatcher::BuildPlan() {
  // Placement order: BFS from the highest-degree vertex of each component,
  // so every non-root vertex is anchored to an already-placed neighbor and
  // candidate sets come from target adjacency lists instead of all
  // vertices.
  const std::size_t n = pattern_.num_vertices();
  std::vector<char> placed(n, 0);
  order_.reserve(n);
  while (order_.size() < n) {
    VertexId root = kInvalidVertex;
    std::size_t best_degree = 0;
    for (VertexId v = 0; v < n; ++v) {
      if (!placed[v] &&
          (root == kInvalidVertex || pattern_.Degree(v) > best_degree)) {
        root = v;
        best_degree = pattern_.Degree(v);
      }
    }
    // BFS over the undirected view of the pattern.
    std::vector<VertexId> queue = {root};
    placed[root] = 1;
    std::size_t head = 0;
    while (head < queue.size()) {
      const VertexId v = queue[head++];
      order_.push_back(v);
      auto visit = [&](EdgeId e) {
        const Edge& edge = pattern_.edge(e);
        const VertexId other = (edge.src == v) ? edge.dst : edge.src;
        if (!placed[other]) {
          placed[other] = 1;
          queue.push_back(other);
        }
      };
      pattern_.ForEachOutEdge(v, visit);
      pattern_.ForEachInEdge(v, visit);
    }
  }

  // Position of each pattern vertex in the order.
  std::vector<std::size_t> position(n, 0);
  for (std::size_t i = 0; i < n; ++i) position[order_[i]] = i;

  // Back edges per depth: the pattern edges connecting order_[i] to
  // earlier-placed vertices (self-loops count once, via the out side).
  struct PatternEdgeRef {
    EdgeId edge;
    bool outgoing;  // relative to the vertex being placed
  };
  std::vector<std::vector<PatternEdgeRef>> back_edges(n);
  for (std::size_t i = 0; i < n; ++i) {
    const VertexId p = order_[i];
    pattern_.ForEachOutEdge(p, [&](EdgeId e) {
      const VertexId other = pattern_.edge(e).dst;
      if (position[other] < i || other == p) {
        back_edges[i].push_back({e, /*outgoing=*/true});
      }
    });
    pattern_.ForEachInEdge(p, [&](EdgeId e) {
      const VertexId other = pattern_.edge(e).src;
      if (position[other] < i) {
        back_edges[i].push_back({e, /*outgoing=*/false});
      }
    });
  }

  // Compile the per-depth plan rows: wanted label, degree floors, merged
  // requirement tallies (the former per-call rebuild), anchors, and the
  // induced-matching obligations.
  want_label_.resize(n);
  p_out_degree_.resize(n);
  p_in_degree_.resize(n);
  requirements_.resize(n);
  self_loop_need_.resize(n);
  anchors_.resize(n);
  has_anchor_.assign(n, false);
  induced_pairs_.resize(n);
  induced_loop_need_.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    const VertexId p = order_[i];
    want_label_[i] = pattern_.vertex_label(p);
    p_out_degree_[i] = static_cast<std::uint32_t>(pattern_.OutDegree(p));
    p_in_degree_[i] = static_cast<std::uint32_t>(pattern_.InDegree(p));
    std::map<Label, std::uint32_t> loop_need;
    for (const PatternEdgeRef& ref : back_edges[i]) {
      const Edge& pedge = pattern_.edge(ref.edge);
      if (pedge.src == pedge.dst) {
        if (ref.outgoing) ++loop_need[pedge.label];
        continue;
      }
      if (!has_anchor_[i]) {
        has_anchor_[i] = true;
        anchors_[i] = {ref.outgoing ? pedge.dst : pedge.src, ref.outgoing,
                       pedge.label};
      }
      const VertexId other = ref.outgoing ? pedge.dst : pedge.src;
      bool merged = false;
      for (Requirement& req : requirements_[i]) {
        if (req.other == other && req.outgoing == ref.outgoing &&
            req.label == pedge.label) {
          ++req.count;
          merged = true;
          break;
        }
      }
      if (!merged) {
        requirements_[i].push_back({other, ref.outgoing, pedge.label, 1});
      }
    }
    self_loop_need_[i].assign(loop_need.begin(), loop_need.end());

    // Induced obligations: the exact per-label multiset of pattern edges
    // between p and every other pattern vertex, both directions. Empty
    // tallies still matter (the target must carry nothing there).
    auto tally = [&](VertexId a, VertexId b) {
      std::map<Label, std::uint32_t> counts;
      pattern_.ForEachOutEdge(a, [&](EdgeId e) {
        if (pattern_.edge(e).dst == b) ++counts[pattern_.edge(e).label];
      });
      return LabelTally(counts.begin(), counts.end());
    };
    for (VertexId q = 0; q < n; ++q) {
      if (q == p) continue;
      induced_pairs_[i].push_back({q, tally(p, q), tally(q, p)});
    }
    induced_loop_need_[i] = tally(p, p);
  }

  // Emit plan: group parallel pattern edges by (src, dst, label). The
  // vertex mapping is injective, so plan-time groups coincide exactly
  // with the former emit-time groups keyed by mapped endpoints.
  std::map<std::tuple<VertexId, VertexId, Label>, std::vector<EdgeId>>
      groups;
  pattern_.ForEachEdge([&](EdgeId e) {
    const Edge& edge = pattern_.edge(e);
    groups[std::make_tuple(edge.src, edge.dst, edge.label)].push_back(e);
  });
  for (auto& [key, pattern_edges] : groups) {
    const auto& [src, dst, label] = key;
    emit_groups_.push_back({src, dst, label, std::move(pattern_edges)});
  }
}

namespace {

bool EdgeAllowed(const MatchOptions& options, EdgeId e) {
  return options.forbidden_target_edges == nullptr ||
         !(*options.forbidden_target_edges)[e];
}

bool VertexAllowed(const MatchOptions& options, VertexId v) {
  return options.forbidden_target_vertices == nullptr ||
         !(*options.forbidden_target_vertices)[v];
}

/// The contiguous arc subrange of OutArcs(src) with the given (label,
/// dst): parallel edges, ascending EdgeId (the arc sort order).
std::span<const GraphView::Arc> PairRange(const GraphView& target,
                                          VertexId src, VertexId dst,
                                          Label label) {
  const std::span<const GraphView::Arc> range = target.OutArcs(src, label);
  const GraphView::Arc* lo = std::lower_bound(
      range.data(), range.data() + range.size(), dst,
      [](const GraphView::Arc& a, VertexId v) { return a.other < v; });
  const GraphView::Arc* hi = std::upper_bound(
      lo, range.data() + range.size(), dst,
      [](VertexId v, const GraphView::Arc& a) { return v < a.other; });
  return {lo, static_cast<std::size_t>(hi - lo)};
}

/// Counts live, allowed target edges src -> dst with the given label.
std::size_t CountTargetEdges(const GraphView& target,
                             const MatchOptions& options, VertexId src,
                             VertexId dst, Label label) {
  const std::span<const GraphView::Arc> range =
      PairRange(target, src, dst, label);
  if (options.forbidden_target_edges == nullptr) return range.size();
  std::size_t count = 0;
  for (const GraphView::Arc& arc : range) {
    if (EdgeAllowed(options, arc.edge)) ++count;
  }
  return count;
}

/// Tallies allowed arcs of `arcs` pointing at `other` into sorted
/// (label, count) runs. Arcs are label-major sorted, so the filtered
/// subsequence yields ascending labels directly.
void BuildPairTally(std::span<const GraphView::Arc> arcs, VertexId other,
                    const MatchOptions& options,
                    std::vector<std::pair<Label, std::uint32_t>>* out) {
  out->clear();
  for (const GraphView::Arc& arc : arcs) {
    if (arc.other != other || !EdgeAllowed(options, arc.edge)) continue;
    if (!out->empty() && out->back().first == arc.label) {
      ++out->back().second;
    } else {
      out->emplace_back(arc.label, 1);
    }
  }
}

}  // namespace

bool SubgraphMatcher::EmitCurrentEmbedding() {
  Embedding& emb = scratch_->emb;
  emb.vertex_map = scratch_->vertex_image;
  emb.edge_map.assign(pattern_.edge_capacity(), graph::kInvalidEdge);
  for (const EmitGroup& group : emit_groups_) {
    const VertexId ts = scratch_->vertex_image[group.src];
    const VertexId td = scratch_->vertex_image[group.dst];
    std::vector<EdgeId>& avail = scratch_->avail;
    avail.clear();
    for (const GraphView::Arc& arc :
         PairRange(*target_, ts, td, group.label)) {
      if (EdgeAllowed(*options_, arc.edge)) avail.push_back(arc.edge);
    }
    // avail is ascending (the arc sort order); hand the k smallest target
    // edges to the group's pattern edges in ascending pattern-id order —
    // exactly the former per-emission pool assignment.
    if (avail.size() < group.pattern_edges.size()) {
      TNMINE_DCHECK(false);  // cannot happen if feasibility was exact
      return true;
    }
    for (std::size_t i = 0; i < group.pattern_edges.size(); ++i) {
      emb.edge_map[group.pattern_edges[i]] = avail[i];
    }
  }
  ++emitted_;
  return (*callback_)(emb);
}

bool SubgraphMatcher::TryCandidate(std::size_t depth, VertexId t) {
  // Returns false to abort the whole enumeration.
  std::vector<VertexId>& vi = scratch_->vertex_image;
  if (scratch_->used.Test(t) || !VertexAllowed(*options_, t)) return true;
  if (target_->vertex_label(t) != want_label_[depth]) return true;
  if (target_->OutDegree(t) < p_out_degree_[depth] ||
      target_->InDegree(t) < p_in_degree_[depth]) {
    return true;
  }
  for (const Requirement& req : requirements_[depth]) {
    const VertexId image = vi[req.other];
    const std::size_t available =
        req.outgoing
            ? CountTargetEdges(*target_, *options_, t, image, req.label)
            : CountTargetEdges(*target_, *options_, image, t, req.label);
    if (available < req.count) return true;
  }
  for (const auto& [label, need] : self_loop_need_[depth]) {
    if (CountTargetEdges(*target_, *options_, t, t, label) < need) {
      return true;
    }
  }
  if (options_->induced) {
    // Exact multiset equality against every placed vertex: the target
    // may carry no edge (by direction and label) that the pattern does
    // not.
    for (const InducedPair& pair : induced_pairs_[depth]) {
      const VertexId tq = vi[pair.other];
      if (tq == kInvalidVertex) continue;
      BuildPairTally(target_->OutArcs(t), tq, *options_, &scratch_->have);
      if (scratch_->have != pair.need_out) return true;
      BuildPairTally(target_->OutArcs(tq), t, *options_, &scratch_->have);
      if (scratch_->have != pair.need_in) return true;
    }
    BuildPairTally(target_->OutArcs(t), t, *options_, &scratch_->have);
    if (scratch_->have != induced_loop_need_[depth]) return true;
  }
  const VertexId p = order_[depth];
  vi[p] = t;
  scratch_->used.Set(t);
  const bool keep_going = Extend(depth + 1);
  scratch_->used.Clear(t);
  vi[p] = kInvalidVertex;
  return keep_going;
}

bool SubgraphMatcher::Extend(std::size_t depth) {
  if (stopped_) return false;
  if (options_->max_search_steps != 0 &&
      ++steps_ > options_->max_search_steps) {
    stopped_ = true;
    return false;
  }
  if (depth == order_.size()) return EmitCurrentEmbedding();

  if (has_anchor_[depth]) {
    // Build the candidate domain as a bitmap from the label subrange of
    // the anchor image's adjacency (duplicate `other`s from parallel
    // target edges collapse into one bit), then walk it with used-vertex
    // exclusion folded in as a word AND. Bits come out ascending — the
    // exact order the former sorted candidate vector produced.
    const Anchor& anchor = anchors_[depth];
    const VertexId image = scratch_->vertex_image[anchor.other];
    common::ScratchBitset& domain = scratch_->depth_domains[depth];
    domain.EnsureBits(target_->num_vertices());
    domain.ClearTouched();
    const std::span<const GraphView::Arc> arcs =
        anchor.outgoing ? target_->InArcs(image, anchor.label)
                        : target_->OutArcs(image, anchor.label);
    for (const GraphView::Arc& arc : arcs) {
      if (!EdgeAllowed(*options_, arc.edge)) continue;
      domain.Set(arc.other);
    }
    // Deeper recursion only mutates deeper depths' domains and restores
    // `used` bits other than the one it placed, so reading both word by
    // word at iteration time admits exactly the candidates the former
    // per-vertex used check admitted.
    const common::ScratchBitset& used = scratch_->used;
    for (std::size_t w = domain.touched_begin(); w < domain.touched_end();
         ++w) {
      std::uint64_t word = domain.word(w) & ~used.word(w);
      while (word != 0) {
        const VertexId t =
            static_cast<VertexId>(w * common::kBitsPerWord +
                                  static_cast<std::size_t>(
                                      std::countr_zero(word)));
        word &= word - 1;
        if (!TryCandidate(depth, t)) return false;
      }
    }
    return true;
  }

  // Unanchored (component root): every target vertex with the wanted
  // label, ascending — the same sequence the former all-vertex scan
  // admitted past its label check.
  for (VertexId t : target_->VerticesWithLabel(want_label_[depth])) {
    if (!TryCandidate(depth, t)) return false;
  }
  return true;
}

std::uint64_t SubgraphMatcher::ForEachEmbedding(
    const GraphView& target, const MatchOptions& options,
    const std::function<bool(const Embedding&)>& fn) {
  common::ScratchLease<MatchScratch> scratch;
  scratch_ = scratch.get();
  target_ = &target;
  options_ = &options;
  callback_ = &fn;
  scratch_->vertex_image.assign(pattern_.num_vertices(), kInvalidVertex);
  scratch_->used.EnsureBits(target.num_vertices());
  // Full clear (not touched-range): a callback abort can unwind past the
  // per-candidate Clear() calls, leaving stale bits behind.
  scratch_->used.ClearAll();
  if (scratch_->depth_domains.size() < order_.size()) {
    scratch_->depth_domains.resize(order_.size());
  }
  emitted_ = 0;
  steps_ = 0;
  stopped_ = false;
  if (pattern_.num_vertices() <= target.num_vertices() &&
      pattern_.num_edges() <= target.num_edges()) {
    Extend(0);
  }
  scratch_ = nullptr;
  target_ = nullptr;
  return emitted_;
}

bool SubgraphMatcher::Contains(const GraphView& target,
                               const MatchOptions& options) {
  return ForEachEmbedding(target, options,
                          [](const Embedding&) { return false; }) > 0;
}

std::uint64_t SubgraphMatcher::CountEmbeddings(const GraphView& target,
                                               std::uint64_t limit,
                                               const MatchOptions& options) {
  return ForEachEmbedding(target, options, [&](const Embedding&) {
    return limit == 0 || emitted_ < limit;
  });
}

std::uint64_t SubgraphMatcher::ForEachEmbedding(
    const MatchOptions& options,
    const std::function<bool(const Embedding&)>& fn) {
  TNMINE_CHECK_MSG(default_target_ != nullptr,
                   "no default target; pass a GraphView");
  return ForEachEmbedding(*default_target_, options, fn);
}

bool SubgraphMatcher::Contains(const MatchOptions& options) {
  TNMINE_CHECK_MSG(default_target_ != nullptr,
                   "no default target; pass a GraphView");
  return Contains(*default_target_, options);
}

std::uint64_t SubgraphMatcher::CountEmbeddings(std::uint64_t limit,
                                               const MatchOptions& options) {
  TNMINE_CHECK_MSG(default_target_ != nullptr,
                   "no default target; pass a GraphView");
  return CountEmbeddings(*default_target_, limit, options);
}

bool ContainsSubgraph(const LabeledGraph& pattern,
                      const LabeledGraph& target) {
  SubgraphMatcher matcher(pattern, target);
  return matcher.Contains();
}

std::uint64_t CountEmbeddings(const LabeledGraph& pattern,
                              const LabeledGraph& target,
                              std::uint64_t limit) {
  SubgraphMatcher matcher(pattern, target);
  return matcher.CountEmbeddings(limit);
}

bool ContainsInducedSubgraph(const LabeledGraph& pattern,
                             const LabeledGraph& target) {
  SubgraphMatcher matcher(pattern, target);
  MatchOptions options;
  options.induced = true;
  return matcher.Contains(options);
}

}  // namespace tnmine::iso
