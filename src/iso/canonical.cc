#include "iso/canonical.h"

#include <algorithm>
#include <atomic>
#include <mutex>
#include <string>
#include <tuple>
#include <unordered_map>
#include <vector>

#include "common/check.h"
#include "common/telemetry.h"

namespace tnmine::iso {

using graph::Edge;
using graph::EdgeId;
using graph::Label;
using graph::LabeledGraph;
using graph::VertexId;

namespace {

/// Dense, tombstone-free adjacency snapshot used by the search.
struct DenseGraph {
  std::size_t n = 0;
  std::vector<Label> vlabel;
  // adj[u] = sorted list of (v, outgoing?, edge label, multiplicity)
  struct Arc {
    VertexId other;
    bool outgoing;
    Label label;
    std::uint32_t multiplicity;
  };
  std::vector<std::vector<Arc>> adj;
  // Directed edge multiset as a flat run-length-encoded table sorted by
  // (src, dst, label); lookups binary-search instead of walking a map.
  struct EdgeRec {
    VertexId src;
    VertexId dst;
    Label label;
    std::uint32_t multiplicity;
  };
  std::vector<EdgeRec> edges;

  /// Multiplicity of (src, dst, label), 0 if absent.
  std::uint32_t Multiplicity(VertexId src, VertexId dst, Label label) const {
    const auto key = std::make_tuple(src, dst, label);
    const auto it = std::lower_bound(
        edges.begin(), edges.end(), key,
        [](const EdgeRec& rec, const std::tuple<VertexId, VertexId, Label>&
                                   k) {
          return std::tie(rec.src, rec.dst, rec.label) < k;
        });
    if (it == edges.end() ||
        std::make_tuple(it->src, it->dst, it->label) != key) {
      return 0;
    }
    return it->multiplicity;
  }
};

DenseGraph Snapshot(const LabeledGraph& g) {
  DenseGraph d;
  d.n = g.num_vertices();
  d.vlabel.resize(d.n);
  for (VertexId v = 0; v < d.n; ++v) d.vlabel[v] = g.vertex_label(v);
  std::vector<std::tuple<VertexId, VertexId, Label>> keys;
  keys.reserve(g.num_edges());
  g.ForEachEdge([&](EdgeId e) {
    const Edge& edge = g.edge(e);
    keys.emplace_back(edge.src, edge.dst, edge.label);
  });
  std::sort(keys.begin(), keys.end());
  d.edges.reserve(keys.size());
  for (const auto& [src, dst, label] : keys) {
    if (!d.edges.empty() && d.edges.back().src == src &&
        d.edges.back().dst == dst && d.edges.back().label == label) {
      ++d.edges.back().multiplicity;
    } else {
      d.edges.push_back({src, dst, label, 1});
    }
  }
  d.adj.resize(d.n);
  for (const auto& rec : d.edges) {
    d.adj[rec.src].push_back({rec.dst, true, rec.label, rec.multiplicity});
    if (rec.src != rec.dst) {
      d.adj[rec.dst].push_back({rec.src, false, rec.label,
                                rec.multiplicity});
    }
  }
  for (auto& arcs : d.adj) {
    std::sort(arcs.begin(), arcs.end(), [](const auto& a, const auto& b) {
      return std::tie(a.other, a.outgoing, a.label) <
             std::tie(b.other, b.outgoing, b.label);
    });
  }
  return d;
}

/// Iterated 1-WL color refinement. Returns stable colors in [0, #colors).
/// Colors are isomorphism-invariant: they depend only on labels and
/// structure, never on vertex ids.
std::vector<std::uint32_t> RefineColors(const DenseGraph& d) {
  std::vector<std::uint32_t> color(d.n, 0);
  // Initial color: vertex label (plus degree signature folded in on the
  // first refinement round).
  {
    std::vector<Label> keys(d.vlabel);
    std::vector<Label> sorted = keys;
    std::sort(sorted.begin(), sorted.end());
    sorted.erase(std::unique(sorted.begin(), sorted.end()), sorted.end());
    for (std::size_t v = 0; v < d.n; ++v) {
      color[v] = static_cast<std::uint32_t>(
          std::lower_bound(sorted.begin(), sorted.end(), keys[v]) -
          sorted.begin());
    }
  }
  std::size_t num_colors = d.n == 0 ? 0 : 1 + *std::max_element(
                                              color.begin(), color.end());
  for (std::size_t round = 0; round < d.n; ++round) {
    // New key: (old color, sorted multiset of (dir, elabel, neighbor
    // color, multiplicity)).
    using Sig =
        std::pair<std::uint32_t,
                  std::vector<std::tuple<bool, Label, std::uint32_t,
                                         std::uint32_t>>>;
    std::vector<Sig> sigs(d.n);
    for (std::size_t v = 0; v < d.n; ++v) {
      sigs[v].first = color[v];
      for (const auto& arc : d.adj[v]) {
        sigs[v].second.emplace_back(arc.outgoing, arc.label,
                                    color[arc.other], arc.multiplicity);
      }
      std::sort(sigs[v].second.begin(), sigs[v].second.end());
    }
    std::vector<const Sig*> order(d.n);
    for (std::size_t v = 0; v < d.n; ++v) order[v] = &sigs[v];
    std::sort(order.begin(), order.end(),
              [](const Sig* a, const Sig* b) { return *a < *b; });
    std::vector<std::uint32_t> next(d.n, 0);
    std::uint32_t next_colors = 0;
    const Sig* prev = nullptr;
    std::vector<std::uint32_t> assigned(d.n, 0);
    for (std::size_t i = 0; i < d.n; ++i) {
      if (prev != nullptr && *order[i] == *prev) {
        // same color as previous in sort order
      } else {
        if (prev != nullptr) ++next_colors;
        prev = order[i];
      }
      assigned[static_cast<std::size_t>(order[i] - sigs.data())] =
          next_colors;
    }
    const std::size_t new_num_colors = d.n == 0 ? 0 : next_colors + 1;
    next = assigned;
    if (new_num_colors == num_colors) break;  // stable
    color = next;
    num_colors = new_num_colors;
    if (num_colors == d.n) break;  // discrete
  }
  return color;
}

/// Canonical-ordering DFS state.
class CanonicalSearch {
 public:
  explicit CanonicalSearch(const DenseGraph& d) : d_(d) {
    colors_ = RefineColors(d_);
    position_.assign(d_.n, kUnplaced);
  }

  std::string Run() {
    if (d_.n == 0) return "empty";
    best_.clear();
    have_best_ = false;
    current_.clear();
    Extend();
    TNMINE_CHECK(have_best_);
    // Serialize: vertex count then per-position rows.
    std::string out;
    out.reserve(best_.size() * 12);
    out += std::to_string(d_.n);
    out += ';';
    for (const Row& row : best_) {
      out += 'V';
      out += std::to_string(row.vlabel);
      for (const auto& [pos, outgoing, label, mult] : row.arcs) {
        out += outgoing ? '>' : '<';
        out += std::to_string(pos);
        out += ':';
        out += std::to_string(label);
        out += 'x';
        out += std::to_string(mult);
      }
      out += '|';
    }
    return out;
  }

 private:
  static constexpr std::uint32_t kUnplaced = ~std::uint32_t{0};

  /// Code row contributed by placing one vertex: its label plus its arcs
  /// to already-placed vertices (by position), sorted.
  struct Row {
    Label vlabel;
    std::vector<std::tuple<std::uint32_t, bool, Label, std::uint32_t>> arcs;

    bool operator==(const Row&) const = default;
    auto operator<=>(const Row&) const = default;
  };

  Row MakeRow(VertexId v) const {
    Row row;
    row.vlabel = d_.vlabel[v];
    for (const auto& arc : d_.adj[v]) {
      if (arc.other == v) {
        // Self-loop: appears once (outgoing) at own position.
        if (arc.outgoing) {
          row.arcs.emplace_back(static_cast<std::uint32_t>(current_.size()),
                                true, arc.label, arc.multiplicity);
        }
        continue;
      }
      const std::uint32_t pos = position_[arc.other];
      if (pos != kUnplaced) {
        row.arcs.emplace_back(pos, arc.outgoing, arc.label,
                              arc.multiplicity);
      }
    }
    std::sort(row.arcs.begin(), row.arcs.end());
    return row;
  }

  /// True if swapping u and v is an automorphism of the whole graph
  /// (labels equal and edge multisets identical under the transposition).
  bool TranspositionIsAutomorphism(VertexId u, VertexId v) const {
    if (d_.vlabel[u] != d_.vlabel[v]) return false;
    auto mapped = [&](VertexId w) { return w == u ? v : (w == v ? u : w); };
    for (const auto& rec : d_.edges) {
      if (rec.src != u && rec.src != v && rec.dst != u && rec.dst != v) {
        continue;
      }
      if (d_.Multiplicity(mapped(rec.src), mapped(rec.dst), rec.label) !=
          rec.multiplicity) {
        return false;
      }
    }
    return true;
  }

  void Extend() {
    const std::size_t depth = current_.size();
    if (depth == d_.n) {
      if (!have_best_ || current_ < best_) {
        best_ = current_;
        have_best_ = true;
      }
      return;
    }
    // Candidates: unplaced vertices of the minimal refined color among
    // unplaced vertices (cell-consistent ordering keeps the search sound
    // because colors are isomorphism-invariant).
    std::uint32_t min_color = ~std::uint32_t{0};
    for (VertexId v = 0; v < d_.n; ++v) {
      if (position_[v] == kUnplaced) min_color = std::min(min_color,
                                                          colors_[v]);
    }
    std::vector<VertexId> candidates;
    for (VertexId v = 0; v < d_.n; ++v) {
      if (position_[v] == kUnplaced && colors_[v] == min_color) {
        candidates.push_back(v);
      }
    }
    // Sound symmetry pruning: drop candidates interchangeable with a kept
    // one by a transposition automorphism that fixes all placed vertices
    // (it does, since neither endpoint of the swap is placed).
    std::vector<VertexId> kept;
    for (VertexId v : candidates) {
      bool redundant = false;
      for (VertexId u : kept) {
        if (TranspositionIsAutomorphism(u, v)) {
          redundant = true;
          break;
        }
      }
      if (!redundant) kept.push_back(v);
    }
    // Rank candidates by their row so better prefixes are tried first.
    std::vector<std::pair<Row, VertexId>> ranked;
    ranked.reserve(kept.size());
    for (VertexId v : kept) ranked.emplace_back(MakeRow(v), v);
    std::sort(ranked.begin(), ranked.end());
    for (auto& [row, v] : ranked) {
      position_[v] = static_cast<std::uint32_t>(depth);
      current_.push_back(std::move(row));
      // Prefix pruning: lexicographically compare the whole current prefix
      // against the best complete code. A greater prefix can never lead to
      // a smaller code. (Recomputed from the top because best_ may have
      // been replaced anywhere in the subtree; depths are tiny.)
      bool viable = true;
      if (have_best_) {
        for (std::size_t i = 0; i < current_.size(); ++i) {
          if (current_[i] < best_[i]) break;  // strictly better prefix
          if (current_[i] > best_[i]) {
            viable = false;
            break;
          }
        }
      }
      if (viable) Extend();
      current_.pop_back();
      position_[v] = kUnplaced;
    }
  }

  const DenseGraph& d_;
  std::vector<std::uint32_t> colors_;
  std::vector<std::uint32_t> position_;
  std::vector<Row> current_;
  std::vector<Row> best_;
  bool have_best_ = false;
};

}  // namespace

std::string CanonicalCode(const LabeledGraph& g) {
  TNMINE_CHECK_MSG(g.num_vertices() <= kMaxCanonicalVertices,
                   "graph too large for canonical coding (%zu vertices)",
                   g.num_vertices());
  TNMINE_COUNTER_ADD("iso/codes_computed", 1);
  const DenseGraph d = Snapshot(g);
  CanonicalSearch search(d);
  return search.Run();
}

namespace {

/// Exact byte serialization of a dense graph: vertex labels in id order,
/// then the edge list in edge-id order. Two equal serializations denote
/// the very same labeled graph, which is what makes cache hits sound.
std::string SerializeExact(const LabeledGraph& g) {
  std::string key;
  key.reserve(8 + 4 * g.num_vertices() + 12 * g.num_edges());
  auto put32 = [&key](std::uint32_t x) {
    key.push_back(static_cast<char>(x));
    key.push_back(static_cast<char>(x >> 8));
    key.push_back(static_cast<char>(x >> 16));
    key.push_back(static_cast<char>(x >> 24));
  };
  put32(static_cast<std::uint32_t>(g.num_vertices()));
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    put32(static_cast<std::uint32_t>(g.vertex_label(v)));
  }
  g.ForEachEdge([&](EdgeId e) {
    const Edge& edge = g.edge(e);
    put32(edge.src);
    put32(edge.dst);
    put32(static_cast<std::uint32_t>(edge.label));
  });
  return key;
}

/// Cheap isomorphism-invariant fingerprint: vertex-label multiset,
/// edge-label multiset, and the sorted (in, out) degree sequence, mixed
/// order-independently. Isomorphic graphs always collide (desired: their
/// differently-numbered serializations share a bucket); unequal graphs
/// rarely do.
std::uint64_t Fingerprint(const LabeledGraph& g) {
  auto mix = [](std::uint64_t h, std::uint64_t x) {
    h ^= x + 0x9E3779B97F4A7C15ULL + (h << 6) + (h >> 2);
    return h;
  };
  std::uint64_t vertex_acc = 0;
  std::uint64_t degree_acc = 0;
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    vertex_acc += mix(0x51ULL, static_cast<std::uint64_t>(
                                   static_cast<std::uint32_t>(
                                       g.vertex_label(v)))) *
                  0x9E3779B97F4A7C15ULL;
    degree_acc += mix(mix(0xD3ULL, g.InDegree(v)), g.OutDegree(v)) *
                  0xD1B54A32D192ED03ULL;
  }
  std::uint64_t edge_acc = 0;
  g.ForEachEdge([&](EdgeId e) {
    edge_acc += mix(0xE7ULL, static_cast<std::uint64_t>(
                                 static_cast<std::uint32_t>(
                                     g.edge(e).label))) *
                0x8CB92BA72F3D8DD7ULL;
  });
  std::uint64_t h = mix(0xC0DEULL, g.num_vertices());
  h = mix(h, g.num_edges());
  h = mix(h, vertex_acc);
  h = mix(h, degree_acc);
  h = mix(h, edge_acc);
  return h;
}

/// Pass-through hasher: keys are pre-hashed with Fingerprint.
struct IdentityHash {
  std::size_t operator()(std::uint64_t x) const {
    return static_cast<std::size_t>(x);
  }
};

/// One lock-sharded cache segment. Buckets map fingerprint -> the list of
/// (exact serialization, code) entries sharing it; lookup verifies the
/// serialization byte-for-byte, so fingerprint collisions cost a probe
/// but can never produce a wrong code.
struct CacheShard {
  std::mutex mu;
  std::unordered_map<std::uint64_t,
                     std::vector<std::pair<std::string, std::string>>,
                     IdentityHash>
      buckets;
  std::size_t entries = 0;
};

constexpr std::size_t kNumShards = 16;
/// Per-shard entry budget; a shard that grows past it is cleared outright
/// (epoch-style invalidation — recomputing a code is always safe).
constexpr std::size_t kMaxEntriesPerShard = 1 << 16;

CacheShard g_shards[kNumShards];
std::atomic<std::uint64_t> g_cache_hits{0};
std::atomic<std::uint64_t> g_cache_misses{0};

}  // namespace

std::string CanonicalCodeCached(const LabeledGraph& g) {
  TNMINE_CHECK_MSG(g.IsDense(),
                   "CanonicalCodeCached requires a dense graph");
  const std::uint64_t fp = Fingerprint(g);
  std::string key = SerializeExact(g);
  CacheShard& shard = g_shards[fp % kNumShards];
  {
    std::lock_guard<std::mutex> lock(shard.mu);
    auto it = shard.buckets.find(fp);
    if (it != shard.buckets.end()) {
      for (const auto& [entry_key, code] : it->second) {
        if (entry_key == key) {
          g_cache_hits.fetch_add(1, std::memory_order_relaxed);
          TNMINE_COUNTER_ADD("iso/cache_hits", 1);
          return code;
        }
      }
    }
  }
  g_cache_misses.fetch_add(1, std::memory_order_relaxed);
  TNMINE_COUNTER_ADD("iso/cache_misses", 1);
  std::string code = CanonicalCode(g);
  {
    std::lock_guard<std::mutex> lock(shard.mu);
    if (shard.entries >= kMaxEntriesPerShard) {
      shard.buckets.clear();
      shard.entries = 0;
    }
    shard.buckets[fp].emplace_back(std::move(key), code);
    ++shard.entries;
  }
  return code;
}

void ClearCanonicalCodeCache() {
  for (CacheShard& shard : g_shards) {
    std::lock_guard<std::mutex> lock(shard.mu);
    shard.buckets.clear();
    shard.entries = 0;
  }
  g_cache_hits.store(0, std::memory_order_relaxed);
  g_cache_misses.store(0, std::memory_order_relaxed);
}

CanonicalCacheStats GetCanonicalCacheStats() {
  CanonicalCacheStats stats;
  stats.hits = g_cache_hits.load(std::memory_order_relaxed);
  stats.misses = g_cache_misses.load(std::memory_order_relaxed);
  return stats;
}

bool AreIsomorphic(const LabeledGraph& a, const LabeledGraph& b) {
  if (a.num_vertices() != b.num_vertices()) return false;
  if (a.num_edges() != b.num_edges()) return false;
  if (InvariantHash(a) != InvariantHash(b)) return false;
  return CanonicalCode(a) == CanonicalCode(b);
}

std::uint64_t InvariantHash(const LabeledGraph& g) {
  auto mix = [](std::uint64_t h, std::uint64_t x) {
    h ^= x + 0x9E3779B97F4A7C15ULL + (h << 6) + (h >> 2);
    return h;
  };
  // Per-vertex invariant signatures, combined order-independently.
  std::uint64_t total = mix(0x12345678ULL, g.num_vertices());
  total = mix(total, g.num_edges());
  std::uint64_t vertex_acc = 0;
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    std::vector<std::uint64_t> incident;
    g.ForEachOutEdge(v, [&](EdgeId e) {
      incident.push_back(0x1000000000ULL +
                         static_cast<std::uint64_t>(
                             static_cast<std::uint32_t>(g.edge(e).label)));
    });
    g.ForEachInEdge(v, [&](EdgeId e) {
      incident.push_back(0x2000000000ULL +
                         static_cast<std::uint64_t>(
                             static_cast<std::uint32_t>(g.edge(e).label)));
    });
    std::sort(incident.begin(), incident.end());
    std::uint64_t h = mix(0xABCDEFULL, static_cast<std::uint64_t>(
                                           static_cast<std::uint32_t>(
                                               g.vertex_label(v))));
    h = mix(h, g.OutDegree(v));
    h = mix(h, g.InDegree(v));
    for (std::uint64_t x : incident) h = mix(h, x);
    vertex_acc += h * 0x9E3779B97F4A7C15ULL;  // commutative combine
  }
  total = mix(total, vertex_acc);
  // Edge label-pair multiset, order-independent.
  std::uint64_t edge_acc = 0;
  g.ForEachEdge([&](EdgeId e) {
    const Edge& edge = g.edge(e);
    std::uint64_t h = mix(0x777ULL, static_cast<std::uint64_t>(
                                        static_cast<std::uint32_t>(
                                            g.vertex_label(edge.src))));
    h = mix(h, static_cast<std::uint64_t>(
                   static_cast<std::uint32_t>(g.vertex_label(edge.dst))));
    h = mix(h, static_cast<std::uint64_t>(
                   static_cast<std::uint32_t>(edge.label)));
    edge_acc += h * 0xD1B54A32D192ED03ULL;
  });
  total = mix(total, edge_acc);
  return total;
}

}  // namespace tnmine::iso
