#ifndef TNMINE_ISO_CANONICAL_H_
#define TNMINE_ISO_CANONICAL_H_

#include <cstdint>
#include <string>

#include "graph/labeled_graph.h"

namespace tnmine::iso {

/// Returns a canonical code for `g`: a byte string such that two labeled
/// directed multigraphs have equal codes if and only if they are
/// isomorphic (label-preserving, direction-preserving).
///
/// The code is computed by iterated color refinement (1-WL with vertex
/// labels and directed edge-label neighborhoods) followed by a
/// depth-first search over vertex orderings consistent with the refined
/// partition, with lexicographic prefix pruning and sound transposition-
/// automorphism candidate pruning. Exponential in the worst case (as any
/// canonical form must be), but fast for the small, richly-labeled
/// patterns graph miners produce. Intended for pattern-sized graphs; a
/// guard rejects graphs with more than `kMaxCanonicalVertices` vertices.
std::string CanonicalCode(const graph::LabeledGraph& g);

inline constexpr std::size_t kMaxCanonicalVertices = 64;

/// True when `a` and `b` are isomorphic (via canonical codes).
bool AreIsomorphic(const graph::LabeledGraph& a, const graph::LabeledGraph& b);

/// Fast isomorphism-invariant 64-bit hash: equal for isomorphic graphs,
/// usually different otherwise. Use for pre-bucketing before the exact
/// CanonicalCode comparison.
std::uint64_t InvariantHash(const graph::LabeledGraph& g);

}  // namespace tnmine::iso

#endif  // TNMINE_ISO_CANONICAL_H_
