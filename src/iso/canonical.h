#ifndef TNMINE_ISO_CANONICAL_H_
#define TNMINE_ISO_CANONICAL_H_

#include <cstdint>
#include <string>

#include "graph/labeled_graph.h"

namespace tnmine::iso {

/// Returns a canonical code for `g`: a byte string such that two labeled
/// directed multigraphs have equal codes if and only if they are
/// isomorphic (label-preserving, direction-preserving).
///
/// The code is computed by iterated color refinement (1-WL with vertex
/// labels and directed edge-label neighborhoods) followed by a
/// depth-first search over vertex orderings consistent with the refined
/// partition, with lexicographic prefix pruning and sound transposition-
/// automorphism candidate pruning. Exponential in the worst case (as any
/// canonical form must be), but fast for the small, richly-labeled
/// patterns graph miners produce. Intended for pattern-sized graphs; a
/// guard rejects graphs with more than `kMaxCanonicalVertices` vertices.
std::string CanonicalCode(const graph::LabeledGraph& g);

inline constexpr std::size_t kMaxCanonicalVertices = 64;

/// True when `a` and `b` are isomorphic (via canonical codes).
bool AreIsomorphic(const graph::LabeledGraph& a, const graph::LabeledGraph& b);

/// Memoized CanonicalCode, safe to call from any thread. Returns exactly
/// CanonicalCode(g) — the cache can never change an answer, only skip the
/// canonical-ordering search.
///
/// The miners re-derive the same concrete pattern graphs over and over
/// (gSpan rebuilds each extension per arrival path; FSG re-codes every
/// downward-closure sub-pattern; Algorithm 1 re-mines overlapping
/// partitions), so exact-graph memoization hits often. Entries are keyed
/// by the graph's exact byte serialization (vertex labels in id order plus
/// the live edge list) — identical bytes imply an identical graph, so a
/// hit is always sound. The cheap isomorphism-invariant fingerprint
/// (vertex/edge label multisets + degree sequence) is used as the hash, so
/// the many isomorphic-but-differently-numbered variants of one pattern
/// land in the same bucket and probe cheaply. `g` must be dense
/// (tombstone-free), as all miner pattern graphs are.
std::string CanonicalCodeCached(const graph::LabeledGraph& g);

/// Drops every cached canonical code (all shards). Never required for
/// correctness — codes are immutable facts about graphs — but used by
/// benchmarks to time cold runs, and by long-lived processes to bound
/// memory. Shards also self-clear when they exceed a fixed entry budget.
void ClearCanonicalCodeCache();

/// Cache effectiveness counters (process-wide, monotonically increasing
/// except across ClearCanonicalCodeCache, which resets them).
struct CanonicalCacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
};
CanonicalCacheStats GetCanonicalCacheStats();

/// Fast isomorphism-invariant 64-bit hash: equal for isomorphic graphs,
/// usually different otherwise. Use for pre-bucketing before the exact
/// CanonicalCode comparison.
std::uint64_t InvariantHash(const graph::LabeledGraph& g);

}  // namespace tnmine::iso

#endif  // TNMINE_ISO_CANONICAL_H_
