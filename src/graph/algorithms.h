#ifndef TNMINE_GRAPH_ALGORITHMS_H_
#define TNMINE_GRAPH_ALGORITHMS_H_

#include <cstdint>
#include <vector>

#include "graph/labeled_graph.h"

namespace tnmine::graph {

/// Result of a weakly-connected-component decomposition.
struct ComponentResult {
  /// component[v] in [0, num_components); isolated vertices get their own
  /// component.
  std::vector<std::uint32_t> component;
  std::uint32_t num_components = 0;
};

/// Decomposes `g` into weakly connected components (edge direction
/// ignored), considering live edges only.
ComponentResult WeaklyConnectedComponents(const LabeledGraph& g);

/// Splits `g` into one dense graph per weakly connected component that
/// contains at least one edge (Section 6: "We further broke each
/// disconnected graph transaction into multiple connected graph
/// transactions"). Isolated vertices are dropped.
std::vector<LabeledGraph> SplitIntoComponents(const LabeledGraph& g);

/// Builds the subgraph of `g` induced by `vertices` (all live edges whose
/// two endpoints are both selected). `vertex_map`, when non-null, receives
/// old -> new ids (kInvalidVertex when not selected). Used to carve the
/// paper's "100 vertices and all incident edges" SUBDUE workloads.
LabeledGraph InducedSubgraph(const LabeledGraph& g,
                             const std::vector<VertexId>& vertices,
                             std::vector<VertexId>* vertex_map = nullptr);

/// Min/max/mean degree summary for Section 3's dataset description.
struct DegreeStats {
  std::size_t min_out = 0, max_out = 0;
  std::size_t min_in = 0, max_in = 0;
  double avg_out = 0.0, avg_in = 0.0;
};

/// Degree statistics over vertices with at least one live incident edge.
DegreeStats ComputeDegreeStats(const LabeledGraph& g);

/// Removes duplicate parallel edges: among live edges with identical
/// (src, dst, label), keeps one and tombstones the rest ("we also had to
/// remove duplicate edges within each transaction, as FSG operates on
/// graphs, not multigraphs"). Returns the number of edges removed.
std::size_t DeduplicateEdges(LabeledGraph* g);

/// Breadth-first order of live-edge-reachable vertices from `start`,
/// ignoring edge direction.
std::vector<VertexId> BfsOrder(const LabeledGraph& g, VertexId start);

/// True if every pair of vertices is connected ignoring direction
/// (vacuously true for graphs with <= 1 vertex).
bool IsWeaklyConnected(const LabeledGraph& g);

}  // namespace tnmine::graph

#endif  // TNMINE_GRAPH_ALGORITHMS_H_
