#include "graph/algorithms.h"

#include <algorithm>
#include <deque>
#include <map>
#include <tuple>

namespace tnmine::graph {

ComponentResult WeaklyConnectedComponents(const LabeledGraph& g) {
  ComponentResult result;
  const std::size_t n = g.num_vertices();
  result.component.assign(n, ~std::uint32_t{0});
  std::deque<VertexId> queue;
  for (VertexId root = 0; root < n; ++root) {
    if (result.component[root] != ~std::uint32_t{0}) continue;
    const std::uint32_t comp = result.num_components++;
    result.component[root] = comp;
    queue.push_back(root);
    while (!queue.empty()) {
      const VertexId v = queue.front();
      queue.pop_front();
      auto visit = [&](EdgeId e) {
        const Edge& edge = g.edge(e);
        const VertexId other = (edge.src == v) ? edge.dst : edge.src;
        if (result.component[other] == ~std::uint32_t{0}) {
          result.component[other] = comp;
          queue.push_back(other);
        }
      };
      g.ForEachOutEdge(v, visit);
      g.ForEachInEdge(v, visit);
    }
  }
  return result;
}

std::vector<LabeledGraph> SplitIntoComponents(const LabeledGraph& g) {
  const ComponentResult cc = WeaklyConnectedComponents(g);
  // Components that own at least one live edge, in first-seen order.
  std::vector<std::int32_t> comp_slot(cc.num_components, -1);
  std::vector<LabeledGraph> out;
  std::vector<std::vector<VertexId>> vertex_maps;
  g.ForEachEdge([&](EdgeId e) {
    const std::uint32_t comp = cc.component[g.edge(e).src];
    if (comp_slot[comp] < 0) {
      comp_slot[comp] = static_cast<std::int32_t>(out.size());
      out.emplace_back();
      vertex_maps.emplace_back(g.num_vertices(), kInvalidVertex);
    }
  });
  auto local_vertex = [&](std::size_t slot, VertexId v) {
    VertexId& mapped = vertex_maps[slot][v];
    if (mapped == kInvalidVertex) {
      mapped = out[slot].AddVertex(g.vertex_label(v));
    }
    return mapped;
  };
  g.ForEachEdge([&](EdgeId e) {
    const Edge& edge = g.edge(e);
    const std::size_t slot =
        static_cast<std::size_t>(comp_slot[cc.component[edge.src]]);
    const VertexId s = local_vertex(slot, edge.src);
    const VertexId d = local_vertex(slot, edge.dst);
    out[slot].AddEdge(s, d, edge.label);
  });
  return out;
}

LabeledGraph InducedSubgraph(const LabeledGraph& g,
                             const std::vector<VertexId>& vertices,
                             std::vector<VertexId>* vertex_map) {
  LabeledGraph out;
  std::vector<VertexId> map(g.num_vertices(), kInvalidVertex);
  for (VertexId v : vertices) {
    TNMINE_CHECK(v < g.num_vertices());
    if (map[v] == kInvalidVertex) map[v] = out.AddVertex(g.vertex_label(v));
  }
  g.ForEachEdge([&](EdgeId e) {
    const Edge& edge = g.edge(e);
    if (map[edge.src] != kInvalidVertex && map[edge.dst] != kInvalidVertex) {
      out.AddEdge(map[edge.src], map[edge.dst], edge.label);
    }
  });
  if (vertex_map != nullptr) *vertex_map = std::move(map);
  return out;
}

DegreeStats ComputeDegreeStats(const LabeledGraph& g) {
  DegreeStats stats;
  std::size_t active = 0;
  std::size_t sum_out = 0, sum_in = 0;
  bool first = true;
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    if (g.Degree(v) == 0) continue;
    ++active;
    const std::size_t od = g.OutDegree(v);
    const std::size_t id = g.InDegree(v);
    sum_out += od;
    sum_in += id;
    if (first) {
      stats.min_out = stats.max_out = od;
      stats.min_in = stats.max_in = id;
      first = false;
    } else {
      stats.min_out = std::min(stats.min_out, od);
      stats.max_out = std::max(stats.max_out, od);
      stats.min_in = std::min(stats.min_in, id);
      stats.max_in = std::max(stats.max_in, id);
    }
  }
  if (active > 0) {
    stats.avg_out = static_cast<double>(sum_out) / static_cast<double>(active);
    stats.avg_in = static_cast<double>(sum_in) / static_cast<double>(active);
  }
  return stats;
}

std::size_t DeduplicateEdges(LabeledGraph* g) {
  std::map<std::tuple<VertexId, VertexId, Label>, bool> seen;
  std::vector<EdgeId> to_remove;
  g->ForEachEdge([&](EdgeId e) {
    const Edge& edge = g->edge(e);
    const auto key = std::make_tuple(edge.src, edge.dst, edge.label);
    auto [it, inserted] = seen.emplace(key, true);
    (void)it;
    if (!inserted) to_remove.push_back(e);
  });
  for (EdgeId e : to_remove) g->RemoveEdge(e);
  return to_remove.size();
}

std::vector<VertexId> BfsOrder(const LabeledGraph& g, VertexId start) {
  std::vector<VertexId> order;
  if (start >= g.num_vertices()) return order;
  std::vector<char> visited(g.num_vertices(), 0);
  std::deque<VertexId> queue;
  visited[start] = 1;
  queue.push_back(start);
  while (!queue.empty()) {
    const VertexId v = queue.front();
    queue.pop_front();
    order.push_back(v);
    auto visit = [&](EdgeId e) {
      const Edge& edge = g.edge(e);
      const VertexId other = (edge.src == v) ? edge.dst : edge.src;
      if (!visited[other]) {
        visited[other] = 1;
        queue.push_back(other);
      }
    };
    g.ForEachOutEdge(v, visit);
    g.ForEachInEdge(v, visit);
  }
  return order;
}

bool IsWeaklyConnected(const LabeledGraph& g) {
  if (g.num_vertices() <= 1) return true;
  return WeaklyConnectedComponents(g).num_components == 1;
}

}  // namespace tnmine::graph
