#include "graph/graph_view.h"

#include <algorithm>
#include <tuple>

#include "common/telemetry.h"

namespace tnmine::graph {

namespace {

bool ArcLess(const GraphView::Arc& a, const GraphView::Arc& b) {
  return std::tie(a.label, a.other, a.edge) <
         std::tie(b.label, b.other, b.edge);
}

}  // namespace

/// Backing arrays for a view copied out of a LabeledGraph. A view built
/// by FromSections has no Storage — its keep-alive is whatever owns the
/// mapped bytes.
struct GraphView::Storage {
  std::vector<Label> vertex_labels;
  std::vector<Edge> edges;
  std::vector<char> alive;
  std::vector<std::uint32_t> out_offsets;
  std::vector<std::uint32_t> in_offsets;
  std::vector<Arc> out_arcs;
  std::vector<Arc> in_arcs;
  std::vector<EdgeId> out_ids;
  std::vector<EdgeId> in_ids;
  std::vector<Label> vertex_label_keys;
  std::vector<std::uint32_t> vertex_label_offsets;
  std::vector<VertexId> vertex_label_ids;
  std::vector<EdgeTypeKey> edge_type_keys;
  std::vector<std::uint32_t> edge_type_offsets;
  std::vector<EdgeId> edge_type_ids;
};

GraphView::GraphView(const LabeledGraph& g) {
  auto storage = std::make_shared<Storage>();
  Storage& s = *storage;
  const std::size_t n = g.num_vertices();
  const std::size_t cap = g.edge_capacity();
  s.vertex_labels.resize(n);
  for (VertexId v = 0; v < n; ++v) s.vertex_labels[v] = g.vertex_label(v);
  s.edges.resize(cap);
  s.alive.resize(cap);
  for (EdgeId e = 0; e < cap; ++e) {
    s.edges[e] = g.edge(e);
    s.alive[e] = g.edge_alive(e) ? 1 : 0;
    if (s.alive[e]) ++num_live_edges_;
  }

  // CSR offsets from live degrees (self-loops count on both sides, as in
  // LabeledGraph).
  s.out_offsets.assign(n + 1, 0);
  s.in_offsets.assign(n + 1, 0);
  for (EdgeId e = 0; e < cap; ++e) {
    if (!s.alive[e]) continue;
    ++s.out_offsets[s.edges[e].src + 1];
    ++s.in_offsets[s.edges[e].dst + 1];
  }
  for (std::size_t v = 0; v < n; ++v) {
    s.out_offsets[v + 1] += s.out_offsets[v];
    s.in_offsets[v + 1] += s.in_offsets[v];
  }

  // Fill the EdgeId-ascending encoding by one ascending edge scan, so each
  // vertex's slice lands in the exact order LabeledGraph iteration visits
  // (insertion order == ascending EdgeId).
  s.out_ids.resize(num_live_edges_);
  s.in_ids.resize(num_live_edges_);
  {
    std::vector<std::uint32_t> out_cursor(s.out_offsets.begin(),
                                          s.out_offsets.end() - 1);
    std::vector<std::uint32_t> in_cursor(s.in_offsets.begin(),
                                         s.in_offsets.end() - 1);
    for (EdgeId e = 0; e < cap; ++e) {
      if (!s.alive[e]) continue;
      s.out_ids[out_cursor[s.edges[e].src]++] = e;
      s.in_ids[in_cursor[s.edges[e].dst]++] = e;
    }
  }

  // Label-sorted arcs share the offsets: seed from the id encoding, then
  // sort each vertex slice by (label, other, edge).
  s.out_arcs.resize(num_live_edges_);
  s.in_arcs.resize(num_live_edges_);
  for (std::size_t i = 0; i < num_live_edges_; ++i) {
    const Edge& oe = s.edges[s.out_ids[i]];
    s.out_arcs[i] = {oe.dst, oe.label, s.out_ids[i]};
    const Edge& ie = s.edges[s.in_ids[i]];
    s.in_arcs[i] = {ie.src, ie.label, s.in_ids[i]};
  }
  for (std::size_t v = 0; v < n; ++v) {
    std::sort(s.out_arcs.begin() + s.out_offsets[v],
              s.out_arcs.begin() + s.out_offsets[v + 1], ArcLess);
    std::sort(s.in_arcs.begin() + s.in_offsets[v],
              s.in_arcs.begin() + s.in_offsets[v + 1], ArcLess);
  }

  // Per-label vertex index: counting sort over (label, vertex).
  {
    std::vector<std::pair<Label, VertexId>> pairs;
    pairs.reserve(n);
    for (VertexId v = 0; v < n; ++v) {
      pairs.emplace_back(s.vertex_labels[v], v);
    }
    std::sort(pairs.begin(), pairs.end());
    s.vertex_label_offsets.push_back(0);
    for (const auto& [label, v] : pairs) {
      if (s.vertex_label_keys.empty() ||
          s.vertex_label_keys.back() != label) {
        s.vertex_label_keys.push_back(label);
        s.vertex_label_offsets.push_back(
            static_cast<std::uint32_t>(s.vertex_label_ids.size()));
      }
      s.vertex_label_ids.push_back(v);
      s.vertex_label_offsets.back() =
          static_cast<std::uint32_t>(s.vertex_label_ids.size());
    }
  }

  // Edge-type index: sort (key, edge) — ascending EdgeId within a key
  // falls out of the pair ordering.
  {
    std::vector<std::pair<std::tuple<Label, Label, Label, bool>, EdgeId>>
        typed;
    typed.reserve(num_live_edges_);
    for (EdgeId e = 0; e < cap; ++e) {
      if (!s.alive[e]) continue;
      const Edge& edge = s.edges[e];
      typed.emplace_back(
          std::make_tuple(s.vertex_labels[edge.src],
                          s.vertex_labels[edge.dst], edge.label,
                          edge.src == edge.dst),
          e);
    }
    std::sort(typed.begin(), typed.end());
    s.edge_type_offsets.push_back(0);
    for (const auto& [key, e] : typed) {
      const auto& [sl, dl, el, loop] = key;
      if (s.edge_type_keys.empty() ||
          EdgeTypeKey{sl, dl, el, loop} != s.edge_type_keys.back()) {
        s.edge_type_keys.push_back({sl, dl, el, loop});
        s.edge_type_offsets.push_back(
            static_cast<std::uint32_t>(s.edge_type_ids.size()));
      }
      s.edge_type_ids.push_back(e);
      s.edge_type_offsets.back() =
          static_cast<std::uint32_t>(s.edge_type_ids.size());
    }
  }

  vertex_labels_ = s.vertex_labels;
  edges_ = s.edges;
  alive_ = s.alive;
  out_offsets_ = s.out_offsets;
  in_offsets_ = s.in_offsets;
  out_arcs_ = s.out_arcs;
  in_arcs_ = s.in_arcs;
  out_ids_ = s.out_ids;
  in_ids_ = s.in_ids;
  vertex_label_keys_ = s.vertex_label_keys;
  vertex_label_offsets_ = s.vertex_label_offsets;
  vertex_label_ids_ = s.vertex_label_ids;
  edge_type_keys_ = s.edge_type_keys;
  edge_type_offsets_ = s.edge_type_offsets;
  edge_type_ids_ = s.edge_type_ids;
  keepalive_ = std::move(storage);

  TNMINE_COUNTER_ADD("graphview/views_built", 1);
  TNMINE_COUNTER_ADD("graphview/vertices_snapshot", n);
  TNMINE_COUNTER_ADD("graphview/edges_snapshot", num_live_edges_);
}

GraphView GraphView::FromSections(const Sections& sections,
                                  std::shared_ptr<const void> keepalive) {
  GraphView view;
  view.vertex_labels_ = sections.vertex_labels;
  view.edges_ = sections.edges;
  view.alive_ = sections.alive;
  view.num_live_edges_ = sections.num_live_edges;
  view.out_offsets_ = sections.out_offsets;
  view.in_offsets_ = sections.in_offsets;
  view.out_arcs_ = sections.out_arcs;
  view.in_arcs_ = sections.in_arcs;
  view.out_ids_ = sections.out_ids;
  view.in_ids_ = sections.in_ids;
  view.vertex_label_keys_ = sections.vertex_label_keys;
  view.vertex_label_offsets_ = sections.vertex_label_offsets;
  view.vertex_label_ids_ = sections.vertex_label_ids;
  view.edge_type_keys_ = sections.edge_type_keys;
  view.edge_type_offsets_ = sections.edge_type_offsets;
  view.edge_type_ids_ = sections.edge_type_ids;
  view.keepalive_ = std::move(keepalive);
  TNMINE_COUNTER_ADD("graphview/views_built", 1);
  TNMINE_COUNTER_ADD("graphview/vertices_snapshot",
                     view.vertex_labels_.size());
  TNMINE_COUNTER_ADD("graphview/edges_snapshot", view.num_live_edges_);
  return view;
}

GraphView::Sections GraphView::sections() const {
  Sections s;
  s.vertex_labels = vertex_labels_;
  s.edges = edges_;
  s.alive = alive_;
  s.num_live_edges = num_live_edges_;
  s.out_offsets = out_offsets_;
  s.in_offsets = in_offsets_;
  s.out_arcs = out_arcs_;
  s.in_arcs = in_arcs_;
  s.out_ids = out_ids_;
  s.in_ids = in_ids_;
  s.vertex_label_keys = vertex_label_keys_;
  s.vertex_label_offsets = vertex_label_offsets_;
  s.vertex_label_ids = vertex_label_ids_;
  s.edge_type_keys = edge_type_keys_;
  s.edge_type_offsets = edge_type_offsets_;
  s.edge_type_ids = edge_type_ids_;
  return s;
}

std::span<const GraphView::Arc> GraphView::LabelRange(
    std::span<const Arc> arcs, Label label) {
  const Arc* lo = std::lower_bound(
      arcs.data(), arcs.data() + arcs.size(), label,
      [](const Arc& a, Label l) { return a.label < l; });
  const Arc* hi =
      std::upper_bound(lo, arcs.data() + arcs.size(), label,
                       [](Label l, const Arc& a) { return l < a.label; });
  return {lo, static_cast<std::size_t>(hi - lo)};
}

std::size_t GraphView::CountOutEdges(VertexId src, VertexId dst,
                                     Label label) const {
  const std::span<const Arc> range = OutArcs(src, label);
  const Arc* lo = std::lower_bound(
      range.data(), range.data() + range.size(), dst,
      [](const Arc& a, VertexId v) { return a.other < v; });
  const Arc* hi =
      std::upper_bound(lo, range.data() + range.size(), dst,
                       [](VertexId v, const Arc& a) { return v < a.other; });
  return static_cast<std::size_t>(hi - lo);
}

std::span<const VertexId> GraphView::VerticesWithLabel(Label label) const {
  const auto it = std::lower_bound(vertex_label_keys_.begin(),
                                   vertex_label_keys_.end(), label);
  if (it == vertex_label_keys_.end() || *it != label) return {};
  const std::size_t i =
      static_cast<std::size_t>(it - vertex_label_keys_.begin());
  return {vertex_label_ids_.data() + vertex_label_offsets_[i],
          vertex_label_offsets_[i + 1] - vertex_label_offsets_[i]};
}

bool GraphView::CheckConsistent() const {
  const std::size_t n = vertex_labels_.size();
  const std::size_t cap = edges_.size();
  if (alive_.size() != cap) return false;
  std::size_t live = 0;
  for (EdgeId e = 0; e < cap; ++e) {
    if (!alive_[e]) continue;
    ++live;
    if (edges_[e].src >= n || edges_[e].dst >= n) return false;
  }
  if (live != num_live_edges_) return false;

  // Offsets: monotone, bracketed by [0, live].
  for (const auto* offsets : {&out_offsets_, &in_offsets_}) {
    if (offsets->size() != n + 1) return false;
    if (offsets->front() != 0 || offsets->back() != live) return false;
    for (std::size_t i = 0; i + 1 < offsets->size(); ++i) {
      if ((*offsets)[i] > (*offsets)[i + 1]) return false;
    }
  }
  if (out_arcs_.size() != live || in_arcs_.size() != live) return false;
  if (out_ids_.size() != live || in_ids_.size() != live) return false;

  // Both encodings, per vertex: ids ascending and owned by the vertex;
  // arcs sorted, consistent with the edge table, and a permutation of the
  // id slice (checked via sorted copies of the edge ids).
  std::vector<EdgeId> seen_out, seen_in, arc_ids;
  for (VertexId v = 0; v < n; ++v) {
    for (const bool out : {true, false}) {
      const std::span<const EdgeId> ids = out ? OutEdgesById(v)
                                              : InEdgesById(v);
      const std::span<const Arc> arcs = out ? OutArcs(v) : InArcs(v);
      if (ids.size() != arcs.size()) return false;
      for (std::size_t i = 0; i < ids.size(); ++i) {
        const EdgeId e = ids[i];
        if (e >= cap || !alive_[e]) return false;
        if ((out ? edges_[e].src : edges_[e].dst) != v) return false;
        if (i > 0 && ids[i - 1] >= e) return false;  // strictly ascending
        (out ? seen_out : seen_in).push_back(e);
      }
      arc_ids.clear();
      for (std::size_t i = 0; i < arcs.size(); ++i) {
        const Arc& a = arcs[i];
        if (a.edge >= cap || !alive_[a.edge]) return false;
        const Edge& edge = edges_[a.edge];
        if ((out ? edge.src : edge.dst) != v) return false;
        if (a.other != (out ? edge.dst : edge.src)) return false;
        if (a.label != edge.label) return false;
        if (i > 0 && !ArcLess(arcs[i - 1], a)) return false;
        arc_ids.push_back(a.edge);
      }
      std::sort(arc_ids.begin(), arc_ids.end());
      std::vector<EdgeId> id_copy(ids.begin(), ids.end());
      if (arc_ids != id_copy) return false;
    }
  }
  // Every live edge appears exactly once per direction.
  std::sort(seen_out.begin(), seen_out.end());
  std::sort(seen_in.begin(), seen_in.end());
  if (seen_out.size() != live || seen_in.size() != live) return false;
  if (seen_out != seen_in) return false;
  if (std::adjacent_find(seen_out.begin(), seen_out.end()) !=
      seen_out.end()) {
    return false;
  }

  // Vertex-label index: keys strictly ascending, slices ascending, every
  // vertex covered exactly once under its own label.
  if (vertex_label_offsets_.size() != vertex_label_keys_.size() + 1) {
    return false;
  }
  if (vertex_label_ids_.size() != n) return false;
  std::size_t covered = 0;
  for (std::size_t i = 0; i < vertex_label_keys_.size(); ++i) {
    if (i > 0 && vertex_label_keys_[i - 1] >= vertex_label_keys_[i]) {
      return false;
    }
    const std::span<const VertexId> vs =
        VerticesWithLabel(vertex_label_keys_[i]);
    if (vs.empty()) return false;
    for (std::size_t j = 0; j < vs.size(); ++j) {
      if (vs[j] >= n || vertex_labels_[vs[j]] != vertex_label_keys_[i]) {
        return false;
      }
      if (j > 0 && vs[j - 1] >= vs[j]) return false;
      ++covered;
    }
  }
  if (covered != n) return false;

  // Edge-type index: keys strictly ascending, ids ascending and of the
  // right type, every live edge covered exactly once.
  if (edge_type_offsets_.size() != edge_type_keys_.size() + 1) return false;
  if (edge_type_ids_.size() != live) return false;
  for (std::size_t i = 0; i < edge_type_keys_.size(); ++i) {
    if (i > 0 && !(edge_type_keys_[i - 1] < edge_type_keys_[i])) {
      return false;
    }
    const EdgeTypeKey& key = edge_type_keys_[i];
    const std::span<const EdgeId> es = EdgesOfType(i);
    if (es.empty()) return false;
    for (std::size_t j = 0; j < es.size(); ++j) {
      const EdgeId e = es[j];
      if (e >= cap || !alive_[e]) return false;
      const Edge& edge = edges_[e];
      const EdgeTypeKey got{vertex_labels_[edge.src],
                            vertex_labels_[edge.dst], edge.label,
                            edge.src == edge.dst};
      if (got != key) return false;
      if (j > 0 && es[j - 1] >= e) return false;
    }
  }
  std::vector<EdgeId> typed(edge_type_ids_.begin(), edge_type_ids_.end());
  std::sort(typed.begin(), typed.end());
  if (typed != seen_out) return false;
  return true;
}

}  // namespace tnmine::graph
