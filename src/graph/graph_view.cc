#include "graph/graph_view.h"

#include <algorithm>
#include <tuple>

#include "common/telemetry.h"

namespace tnmine::graph {

namespace {

bool ArcLess(const GraphView::Arc& a, const GraphView::Arc& b) {
  return std::tie(a.label, a.other, a.edge) <
         std::tie(b.label, b.other, b.edge);
}

}  // namespace

GraphView::GraphView(const LabeledGraph& g) {
  const std::size_t n = g.num_vertices();
  const std::size_t cap = g.edge_capacity();
  vertex_labels_.resize(n);
  for (VertexId v = 0; v < n; ++v) vertex_labels_[v] = g.vertex_label(v);
  edges_.resize(cap);
  alive_.resize(cap);
  for (EdgeId e = 0; e < cap; ++e) {
    edges_[e] = g.edge(e);
    alive_[e] = g.edge_alive(e) ? 1 : 0;
    if (alive_[e]) ++num_live_edges_;
  }

  // CSR offsets from live degrees (self-loops count on both sides, as in
  // LabeledGraph).
  out_offsets_.assign(n + 1, 0);
  in_offsets_.assign(n + 1, 0);
  for (EdgeId e = 0; e < cap; ++e) {
    if (!alive_[e]) continue;
    ++out_offsets_[edges_[e].src + 1];
    ++in_offsets_[edges_[e].dst + 1];
  }
  for (std::size_t v = 0; v < n; ++v) {
    out_offsets_[v + 1] += out_offsets_[v];
    in_offsets_[v + 1] += in_offsets_[v];
  }

  // Fill the EdgeId-ascending encoding by one ascending edge scan, so each
  // vertex's slice lands in the exact order LabeledGraph iteration visits
  // (insertion order == ascending EdgeId).
  out_ids_.resize(num_live_edges_);
  in_ids_.resize(num_live_edges_);
  {
    std::vector<std::uint32_t> out_cursor(out_offsets_.begin(),
                                          out_offsets_.end() - 1);
    std::vector<std::uint32_t> in_cursor(in_offsets_.begin(),
                                         in_offsets_.end() - 1);
    for (EdgeId e = 0; e < cap; ++e) {
      if (!alive_[e]) continue;
      out_ids_[out_cursor[edges_[e].src]++] = e;
      in_ids_[in_cursor[edges_[e].dst]++] = e;
    }
  }

  // Label-sorted arcs share the offsets: seed from the id encoding, then
  // sort each vertex slice by (label, other, edge).
  out_arcs_.resize(num_live_edges_);
  in_arcs_.resize(num_live_edges_);
  for (std::size_t i = 0; i < num_live_edges_; ++i) {
    const Edge& oe = edges_[out_ids_[i]];
    out_arcs_[i] = {oe.dst, oe.label, out_ids_[i]};
    const Edge& ie = edges_[in_ids_[i]];
    in_arcs_[i] = {ie.src, ie.label, in_ids_[i]};
  }
  for (std::size_t v = 0; v < n; ++v) {
    std::sort(out_arcs_.begin() + out_offsets_[v],
              out_arcs_.begin() + out_offsets_[v + 1], ArcLess);
    std::sort(in_arcs_.begin() + in_offsets_[v],
              in_arcs_.begin() + in_offsets_[v + 1], ArcLess);
  }

  // Per-label vertex index: counting sort over (label, vertex).
  {
    std::vector<std::pair<Label, VertexId>> pairs;
    pairs.reserve(n);
    for (VertexId v = 0; v < n; ++v) pairs.emplace_back(vertex_labels_[v], v);
    std::sort(pairs.begin(), pairs.end());
    vertex_label_offsets_.push_back(0);
    for (const auto& [label, v] : pairs) {
      if (vertex_label_keys_.empty() || vertex_label_keys_.back() != label) {
        vertex_label_keys_.push_back(label);
        vertex_label_offsets_.push_back(
            static_cast<std::uint32_t>(vertex_label_ids_.size()));
      }
      vertex_label_ids_.push_back(v);
      vertex_label_offsets_.back() =
          static_cast<std::uint32_t>(vertex_label_ids_.size());
    }
  }

  // Edge-type index: sort (key, edge) — ascending EdgeId within a key
  // falls out of the pair ordering.
  {
    std::vector<std::pair<std::tuple<Label, Label, Label, bool>, EdgeId>>
        typed;
    typed.reserve(num_live_edges_);
    for (EdgeId e = 0; e < cap; ++e) {
      if (!alive_[e]) continue;
      const Edge& edge = edges_[e];
      typed.emplace_back(
          std::make_tuple(vertex_labels_[edge.src], vertex_labels_[edge.dst],
                          edge.label, edge.src == edge.dst),
          e);
    }
    std::sort(typed.begin(), typed.end());
    edge_type_offsets_.push_back(0);
    for (const auto& [key, e] : typed) {
      const auto& [sl, dl, el, loop] = key;
      if (edge_type_keys_.empty() ||
          EdgeTypeKey{sl, dl, el, loop} != edge_type_keys_.back()) {
        edge_type_keys_.push_back({sl, dl, el, loop});
        edge_type_offsets_.push_back(
            static_cast<std::uint32_t>(edge_type_ids_.size()));
      }
      edge_type_ids_.push_back(e);
      edge_type_offsets_.back() =
          static_cast<std::uint32_t>(edge_type_ids_.size());
    }
  }

  TNMINE_COUNTER_ADD("graphview/views_built", 1);
  TNMINE_COUNTER_ADD("graphview/vertices_snapshot", n);
  TNMINE_COUNTER_ADD("graphview/edges_snapshot", num_live_edges_);
}

std::span<const GraphView::Arc> GraphView::LabelRange(
    std::span<const Arc> arcs, Label label) {
  const Arc* lo = std::lower_bound(
      arcs.data(), arcs.data() + arcs.size(), label,
      [](const Arc& a, Label l) { return a.label < l; });
  const Arc* hi =
      std::upper_bound(lo, arcs.data() + arcs.size(), label,
                       [](Label l, const Arc& a) { return l < a.label; });
  return {lo, static_cast<std::size_t>(hi - lo)};
}

std::size_t GraphView::CountOutEdges(VertexId src, VertexId dst,
                                     Label label) const {
  const std::span<const Arc> range = OutArcs(src, label);
  const Arc* lo = std::lower_bound(
      range.data(), range.data() + range.size(), dst,
      [](const Arc& a, VertexId v) { return a.other < v; });
  const Arc* hi =
      std::upper_bound(lo, range.data() + range.size(), dst,
                       [](VertexId v, const Arc& a) { return v < a.other; });
  return static_cast<std::size_t>(hi - lo);
}

std::span<const VertexId> GraphView::VerticesWithLabel(Label label) const {
  const auto it = std::lower_bound(vertex_label_keys_.begin(),
                                   vertex_label_keys_.end(), label);
  if (it == vertex_label_keys_.end() || *it != label) return {};
  const std::size_t i =
      static_cast<std::size_t>(it - vertex_label_keys_.begin());
  return {vertex_label_ids_.data() + vertex_label_offsets_[i],
          vertex_label_offsets_[i + 1] - vertex_label_offsets_[i]};
}

bool GraphView::CheckConsistent() const {
  const std::size_t n = vertex_labels_.size();
  const std::size_t cap = edges_.size();
  if (alive_.size() != cap) return false;
  std::size_t live = 0;
  for (EdgeId e = 0; e < cap; ++e) {
    if (!alive_[e]) continue;
    ++live;
    if (edges_[e].src >= n || edges_[e].dst >= n) return false;
  }
  if (live != num_live_edges_) return false;

  // Offsets: monotone, bracketed by [0, live].
  for (const auto* offsets : {&out_offsets_, &in_offsets_}) {
    if (offsets->size() != n + 1) return false;
    if (offsets->front() != 0 || offsets->back() != live) return false;
    for (std::size_t i = 0; i + 1 < offsets->size(); ++i) {
      if ((*offsets)[i] > (*offsets)[i + 1]) return false;
    }
  }
  if (out_arcs_.size() != live || in_arcs_.size() != live) return false;
  if (out_ids_.size() != live || in_ids_.size() != live) return false;

  // Both encodings, per vertex: ids ascending and owned by the vertex;
  // arcs sorted, consistent with the edge table, and a permutation of the
  // id slice (checked via sorted copies of the edge ids).
  std::vector<EdgeId> seen_out, seen_in, arc_ids;
  for (VertexId v = 0; v < n; ++v) {
    for (const bool out : {true, false}) {
      const std::span<const EdgeId> ids = out ? OutEdgesById(v)
                                              : InEdgesById(v);
      const std::span<const Arc> arcs = out ? OutArcs(v) : InArcs(v);
      if (ids.size() != arcs.size()) return false;
      for (std::size_t i = 0; i < ids.size(); ++i) {
        const EdgeId e = ids[i];
        if (e >= cap || !alive_[e]) return false;
        if ((out ? edges_[e].src : edges_[e].dst) != v) return false;
        if (i > 0 && ids[i - 1] >= e) return false;  // strictly ascending
        (out ? seen_out : seen_in).push_back(e);
      }
      arc_ids.clear();
      for (std::size_t i = 0; i < arcs.size(); ++i) {
        const Arc& a = arcs[i];
        if (a.edge >= cap || !alive_[a.edge]) return false;
        const Edge& edge = edges_[a.edge];
        if ((out ? edge.src : edge.dst) != v) return false;
        if (a.other != (out ? edge.dst : edge.src)) return false;
        if (a.label != edge.label) return false;
        if (i > 0 && !ArcLess(arcs[i - 1], a)) return false;
        arc_ids.push_back(a.edge);
      }
      std::sort(arc_ids.begin(), arc_ids.end());
      std::vector<EdgeId> id_copy(ids.begin(), ids.end());
      if (arc_ids != id_copy) return false;
    }
  }
  // Every live edge appears exactly once per direction.
  std::sort(seen_out.begin(), seen_out.end());
  std::sort(seen_in.begin(), seen_in.end());
  if (seen_out.size() != live || seen_in.size() != live) return false;
  if (seen_out != seen_in) return false;
  if (std::adjacent_find(seen_out.begin(), seen_out.end()) !=
      seen_out.end()) {
    return false;
  }

  // Vertex-label index: keys strictly ascending, slices ascending, every
  // vertex covered exactly once under its own label.
  if (vertex_label_offsets_.size() != vertex_label_keys_.size() + 1) {
    return false;
  }
  if (vertex_label_ids_.size() != n) return false;
  std::size_t covered = 0;
  for (std::size_t i = 0; i < vertex_label_keys_.size(); ++i) {
    if (i > 0 && vertex_label_keys_[i - 1] >= vertex_label_keys_[i]) {
      return false;
    }
    const std::span<const VertexId> vs =
        VerticesWithLabel(vertex_label_keys_[i]);
    if (vs.empty()) return false;
    for (std::size_t j = 0; j < vs.size(); ++j) {
      if (vs[j] >= n || vertex_labels_[vs[j]] != vertex_label_keys_[i]) {
        return false;
      }
      if (j > 0 && vs[j - 1] >= vs[j]) return false;
      ++covered;
    }
  }
  if (covered != n) return false;

  // Edge-type index: keys strictly ascending, ids ascending and of the
  // right type, every live edge covered exactly once.
  if (edge_type_offsets_.size() != edge_type_keys_.size() + 1) return false;
  if (edge_type_ids_.size() != live) return false;
  for (std::size_t i = 0; i < edge_type_keys_.size(); ++i) {
    if (i > 0 && !(edge_type_keys_[i - 1] < edge_type_keys_[i])) {
      return false;
    }
    const EdgeTypeKey& key = edge_type_keys_[i];
    const std::span<const EdgeId> es = EdgesOfType(i);
    if (es.empty()) return false;
    for (std::size_t j = 0; j < es.size(); ++j) {
      const EdgeId e = es[j];
      if (e >= cap || !alive_[e]) return false;
      const Edge& edge = edges_[e];
      const EdgeTypeKey got{vertex_labels_[edge.src],
                            vertex_labels_[edge.dst], edge.label,
                            edge.src == edge.dst};
      if (got != key) return false;
      if (j > 0 && es[j - 1] >= e) return false;
    }
  }
  std::vector<EdgeId> typed(edge_type_ids_);
  std::sort(typed.begin(), typed.end());
  if (typed != seen_out) return false;
  return true;
}

}  // namespace tnmine::graph
