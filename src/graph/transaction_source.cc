#include "graph/transaction_source.h"

#include <algorithm>
#include <new>
#include <stdexcept>

#include "common/telemetry.h"

namespace tnmine::graph {

void TransactionSource::SetBases(std::vector<std::uint32_t> bases) {
  bases_ = std::move(bases);
  num_transactions_ = bases_.empty() ? 0 : bases_.back();
}

void TransactionSource::Reader::Repin(std::uint32_t tid) {
  if (tid >= source_->num_transactions()) {
    throw std::out_of_range("transaction id out of range");
  }
  // bases_ is ascending; the shard owning `tid` is the last base <= tid.
  const auto& bases = source_->bases_;
  const auto it = std::upper_bound(bases.begin(), bases.end(), tid);
  const std::size_t shard =
      static_cast<std::size_t>(it - bases.begin()) - 1;
  pinned_ = source_->Pin(shard);
}

InMemoryTransactionSource::InMemoryTransactionSource(
    std::vector<GraphView> views, std::size_t shard_size)
    : views_(std::move(views)) {
  const std::size_t n = views_.size();
  const std::size_t step = shard_size == 0 ? (n == 0 ? 1 : n) : shard_size;
  std::vector<std::uint32_t> bases;
  for (std::size_t base = 0; base < n; base += step) {
    bases.push_back(static_cast<std::uint32_t>(base));
  }
  bases.push_back(static_cast<std::uint32_t>(n));
  SetBases(std::move(bases));
}

ShardRef InMemoryTransactionSource::Pin(std::size_t s) {
  ShardRef ref;
  ref.base = ShardBase(s);
  ref.views = std::span<const GraphView>(views_.data() + ref.base,
                                         ShardSize(s));
  // No keepalive: the source owns the views and outlives its readers.
  return ref;
}

std::unique_ptr<ShardedTransactionSource> ShardedTransactionSource::Open(
    const std::string& dir, const Options& options, std::string* error) {
  std::vector<std::string> paths;
  if (!ListShardFiles(dir, &paths, error)) return nullptr;
  return OpenFiles(paths, options, error);
}

std::unique_ptr<ShardedTransactionSource>
ShardedTransactionSource::OpenFiles(const std::vector<std::string>& paths,
                                    const Options& options,
                                    std::string* error) {
  if (paths.empty()) {
    if (error != nullptr) *error = "no shard files given";
    return nullptr;
  }
  auto source = std::unique_ptr<ShardedTransactionSource>(
      new ShardedTransactionSource());
  source->options_ = options;
  source->options_.max_resident_shards =
      std::max<std::size_t>(1, options.max_resident_shards);
  source->paths_ = paths;
  std::vector<std::uint32_t> bases;
  std::uint32_t next = 0;
  std::uint64_t combined = 1469598103934665603ull;
  for (const std::string& path : paths) {
    // Open (maps + validates structure, optionally re-hashes) and
    // immediately drop: at this stage we only need counts and
    // fingerprints, not resident pages.
    const std::shared_ptr<ShardFile> file =
        ShardFile::Open(path, error, options.verify_fingerprints);
    if (file == nullptr) return nullptr;
    bases.push_back(next);
    next += static_cast<std::uint32_t>(file->num_transactions());
    const std::uint64_t fp = file->fingerprint();
    const auto* p = reinterpret_cast<const unsigned char*>(&fp);
    for (std::size_t i = 0; i < sizeof(fp); ++i) {
      combined ^= p[i];
      combined *= 1099511628211ull;
    }
  }
  bases.push_back(next);
  source->SetBases(std::move(bases));
  source->fingerprint_ = combined;
  if (source->num_transactions() == 0) {
    if (error != nullptr) *error = "shard set holds zero transactions";
    return nullptr;
  }
  return source;
}

std::shared_ptr<ShardedTransactionSource::ResidentShard>
ShardedTransactionSource::Load(std::size_t s) {
  std::string error;
  const std::shared_ptr<ShardFile> file =
      ShardFile::Open(paths_[s], &error);
  if (file == nullptr) {
    // The file validated at Open() time; it vanishing or corrupting
    // mid-run is unrecoverable.
    throw std::runtime_error("shard reload failed: " + error);
  }
  auto resident = std::make_shared<ResidentShard>();
  resident->budget = options_.budget;
  resident->file = file;
  const std::size_t n = file->num_transactions();
  resident->views.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    resident->views.push_back(file->View(i));
  }
  // What this shard costs while resident: the mapping itself plus the
  // span-table bookkeeping of its views. Charged up front; released by
  // ~ResidentShard when the last reference drops.
  resident->charged = file->mapped_bytes() + n * sizeof(GraphView);
  TNMINE_COUNTER_ADD("shard/shards_loaded", 1);
  return resident;
}

ShardRef ShardedTransactionSource::Pin(std::size_t s) {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto it = lru_.begin(); it != lru_.end(); ++it) {
    if (it->shard == s) {
      lru_.splice(lru_.begin(), lru_, it);  // move to front
      ShardRef ref;
      ref.keepalive = lru_.front().resident;
      ref.views = lru_.front().resident->views;
      ref.base = ShardBase(s);
      return ref;
    }
  }
  // Miss: make an LRU slot available first, then load and charge.
  while (lru_.size() >= options_.max_resident_shards) {
    TNMINE_COUNTER_ADD("shard/evictions", 1);
    lru_.pop_back();
  }
  std::shared_ptr<ResidentShard> resident = Load(s);
  if (!options_.budget.TryChargeMemoryNoTrip(resident->charged)) {
    // Evict every cached shard (outstanding reader pins keep theirs
    // alive — and charged — until they move on) and retry; a second
    // failure is genuine exhaustion and may trip the sticky outcome.
    while (!lru_.empty()) {
      TNMINE_COUNTER_ADD("shard/evictions", 1);
      lru_.pop_back();
    }
    if (!options_.budget.TryChargeMemory(resident->charged)) {
      resident->charged = 0;  // nothing was charged; nothing to release
      throw std::bad_alloc();
    }
  }
  lru_.push_front(CacheEntry{s, resident});
  ShardRef ref;
  ref.keepalive = std::move(resident);
  ref.views = lru_.front().resident->views;
  ref.base = ShardBase(s);
  return ref;
}

std::uint64_t ShardedTransactionSource::resident_bytes() const {
  std::uint64_t total = 0;
  std::lock_guard<std::mutex> lock(mu_);
  for (const CacheEntry& entry : lru_) {
    total += entry.resident->charged;
  }
  return total;
}

}  // namespace tnmine::graph
