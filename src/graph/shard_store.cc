#include "graph/shard_store.h"

#include <dirent.h>
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstddef>
#include <cstdio>
#include <cstring>
#include <stdexcept>

#include "common/telemetry.h"

namespace tnmine::graph {

namespace {

// The format writes these structs verbatim; any layout drift is a silent
// file-format break, so pin it at compile time.
static_assert(sizeof(Edge) == 12 && alignof(Edge) <= 8);
static_assert(sizeof(GraphView::Arc) == 12 && alignof(GraphView::Arc) <= 8);
static_assert(sizeof(GraphView::EdgeTypeKey) == 16 &&
              alignof(GraphView::EdgeTypeKey) <= 8);
static_assert(offsetof(GraphView::EdgeTypeKey, src_label) == 0);
static_assert(offsetof(GraphView::EdgeTypeKey, dst_label) == 4);
static_assert(offsetof(GraphView::EdgeTypeKey, edge_label) == 8);
static_assert(offsetof(GraphView::EdgeTypeKey, self_loop) == 12);

/// Per-transaction block header: the five cardinalities every section
/// length is derived from.
struct TxnHeader {
  std::uint32_t num_vertices;
  std::uint32_t edge_capacity;
  std::uint32_t num_live_edges;
  std::uint32_t num_vertex_label_keys;
  std::uint32_t num_edge_type_keys;
  std::uint32_t reserved[3];
};
static_assert(sizeof(TxnHeader) == 32);

constexpr std::uint64_t kFnvOffset = 1469598103934665603ull;
constexpr std::uint64_t kFnvPrime = 1099511628211ull;

std::uint64_t Fnv1a(std::uint64_t h, const void* data, std::size_t n) {
  const auto* p = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < n; ++i) {
    h ^= p[i];
    h *= kFnvPrime;
  }
  return h;
}

void AlignTo8(std::vector<char>* out) {
  while (out->size() % 8 != 0) out->push_back(0);
}

void AppendRaw(std::vector<char>* out, const void* data, std::size_t n) {
  const char* p = static_cast<const char*>(data);
  out->insert(out->end(), p, p + n);
}

template <typename T>
void AppendSection(std::vector<char>* out, std::span<const T> data) {
  AlignTo8(out);
  AppendRaw(out, data.data(), data.size() * sizeof(T));
}

/// EdgeTypeKey has three trailing padding bytes the compiler never
/// promises to zero; serialize field-wise with explicit zeros so the file
/// bytes are deterministic.
void AppendEdgeTypeKeys(std::vector<char>* out,
                        std::span<const GraphView::EdgeTypeKey> keys) {
  AlignTo8(out);
  for (const GraphView::EdgeTypeKey& key : keys) {
    AppendRaw(out, &key.src_label, sizeof(key.src_label));
    AppendRaw(out, &key.dst_label, sizeof(key.dst_label));
    AppendRaw(out, &key.edge_label, sizeof(key.edge_label));
    const char loop = key.self_loop ? 1 : 0;
    out->push_back(loop);
    out->push_back(0);
    out->push_back(0);
    out->push_back(0);
  }
}

/// Bounds-checked cursor over one mapped transaction block.
struct BlockReader {
  const char* base;
  std::size_t size;
  std::size_t pos = 0;

  template <typename T>
  std::span<const T> Take(std::size_t count) {
    pos = (pos + 7) & ~std::size_t{7};
    const std::size_t bytes = count * sizeof(T);
    if (pos > size || bytes > size - pos) {
      throw std::runtime_error("shard block truncated");
    }
    const T* p = reinterpret_cast<const T*>(base + pos);
    pos += bytes;
    return {p, count};
  }
};

}  // namespace

void ShardWriter::Add(const GraphView& view) {
  AlignTo8(&payload_);
  offsets_.push_back(payload_.size());
  const GraphView::Sections s = view.sections();
  TxnHeader header{};
  header.num_vertices = static_cast<std::uint32_t>(s.vertex_labels.size());
  header.edge_capacity = static_cast<std::uint32_t>(s.edges.size());
  header.num_live_edges = static_cast<std::uint32_t>(s.num_live_edges);
  header.num_vertex_label_keys =
      static_cast<std::uint32_t>(s.vertex_label_keys.size());
  header.num_edge_type_keys =
      static_cast<std::uint32_t>(s.edge_type_keys.size());
  AppendRaw(&payload_, &header, sizeof(header));
  AppendSection(&payload_, s.vertex_labels);
  AppendSection(&payload_, s.edges);
  AppendSection(&payload_, s.alive);
  AppendSection(&payload_, s.out_offsets);
  AppendSection(&payload_, s.in_offsets);
  AppendSection(&payload_, s.out_arcs);
  AppendSection(&payload_, s.in_arcs);
  AppendSection(&payload_, s.out_ids);
  AppendSection(&payload_, s.in_ids);
  AppendSection(&payload_, s.vertex_label_keys);
  AppendSection(&payload_, s.vertex_label_offsets);
  AppendSection(&payload_, s.vertex_label_ids);
  AppendEdgeTypeKeys(&payload_, s.edge_type_keys);
  AppendSection(&payload_, s.edge_type_offsets);
  AppendSection(&payload_, s.edge_type_ids);
}

bool ShardWriter::Finish(std::string* error) {
  AlignTo8(&payload_);
  std::vector<std::uint64_t> table = offsets_;
  table.push_back(payload_.size());

  ShardHeader header{};
  std::memcpy(header.magic, ShardHeader::kMagic, sizeof(header.magic));
  header.format_version = ShardHeader::kFormatVersion;
  header.num_transactions = offsets_.size();
  header.payload_bytes = payload_.size();
  std::uint64_t h = kFnvOffset;
  h = Fnv1a(h, table.data(), table.size() * sizeof(std::uint64_t));
  h = Fnv1a(h, payload_.data(), payload_.size());
  header.fingerprint = h;

  std::FILE* f = std::fopen(path_.c_str(), "wb");
  if (f == nullptr) {
    if (error != nullptr) {
      *error = "cannot open " + path_ + ": " + std::strerror(errno);
    }
    return false;
  }
  bool ok =
      std::fwrite(&header, sizeof(header), 1, f) == 1 &&
      (table.empty() ||
       std::fwrite(table.data(), sizeof(std::uint64_t), table.size(), f) ==
           table.size()) &&
      (payload_.empty() ||
       std::fwrite(payload_.data(), 1, payload_.size(), f) ==
           payload_.size());
  if (std::fclose(f) != 0) ok = false;
  if (!ok) {
    if (error != nullptr) {
      *error = "short write to " + path_ + ": " + std::strerror(errno);
    }
    std::remove(path_.c_str());
    return false;
  }
  TNMINE_COUNTER_ADD("shard/files_written", 1);
  TNMINE_COUNTER_ADD("shard/bytes_written",
                     sizeof(header) + table.size() * 8 + payload_.size());
  return true;
}

std::shared_ptr<ShardFile> ShardFile::Open(const std::string& path,
                                           std::string* error,
                                           bool verify_fingerprint) {
  const auto fail = [&](const std::string& why) {
    if (error != nullptr) *error = path + ": " + why;
    return nullptr;
  };
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) return fail(std::strerror(errno));
  struct stat st{};
  if (::fstat(fd, &st) != 0) {
    ::close(fd);
    return fail(std::strerror(errno));
  }
  const std::size_t size = static_cast<std::size_t>(st.st_size);
  if (size < sizeof(ShardHeader)) {
    ::close(fd);
    return fail("too small for a shard header");
  }
  void* map = ::mmap(nullptr, size, PROT_READ, MAP_PRIVATE, fd, 0);
  ::close(fd);  // the mapping keeps the file open
  if (map == MAP_FAILED) return fail(std::strerror(errno));
  // The mining pass walks each shard front to back; tell the kernel so
  // readahead works for us and evicted pages are cheap to reclaim.
  ::madvise(map, size, MADV_SEQUENTIAL);

  auto file = std::shared_ptr<ShardFile>(new ShardFile());
  file->path_ = path;
  file->data_ = static_cast<const char*>(map);
  file->mapped_size_ = size;
  file->header_ = reinterpret_cast<const ShardHeader*>(file->data_);
  const ShardHeader& h = *file->header_;
  if (std::memcmp(h.magic, ShardHeader::kMagic, sizeof(h.magic)) != 0) {
    return fail("bad magic (not a tnshard file)");
  }
  if (h.format_version != ShardHeader::kFormatVersion) {
    return fail("unsupported shard format version " +
                std::to_string(h.format_version));
  }
  const std::uint64_t n = h.num_transactions;
  const std::uint64_t table_bytes = (n + 1) * sizeof(std::uint64_t);
  if (size < sizeof(ShardHeader) + table_bytes ||
      size - sizeof(ShardHeader) - table_bytes != h.payload_bytes) {
    return fail("header sizes disagree with the file length");
  }
  file->offsets_ = reinterpret_cast<const std::uint64_t*>(
      file->data_ + sizeof(ShardHeader));
  file->payload_ = file->data_ + sizeof(ShardHeader) + table_bytes;
  if (file->offsets_[0] != 0 || file->offsets_[n] != h.payload_bytes) {
    return fail("offset table out of bounds");
  }
  for (std::uint64_t i = 0; i < n; ++i) {
    if (file->offsets_[i] > file->offsets_[i + 1] ||
        file->offsets_[i] % 8 != 0) {
      return fail("offset table not monotone/aligned");
    }
  }
  if (verify_fingerprint) {
    std::uint64_t got = kFnvOffset;
    got = Fnv1a(got, file->offsets_, table_bytes);
    got = Fnv1a(got, file->payload_, h.payload_bytes);
    if (got != h.fingerprint) return fail("fingerprint mismatch");
  }
  TNMINE_COUNTER_ADD("shard/files_opened", 1);
  TNMINE_COUNTER_ADD("shard/bytes_mapped", size);
  return file;
}

ShardFile::~ShardFile() {
  if (data_ != nullptr) {
    ::munmap(const_cast<char*>(data_), mapped_size_);
  }
}

GraphView ShardFile::View(std::size_t i) const {
  if (i >= header_->num_transactions) {
    throw std::runtime_error("shard transaction index out of range");
  }
  BlockReader block{payload_ + offsets_[i],
                    static_cast<std::size_t>(offsets_[i + 1] - offsets_[i])};
  const TxnHeader& t = block.Take<TxnHeader>(1)[0];
  const std::size_t n = t.num_vertices;
  const std::size_t cap = t.edge_capacity;
  const std::size_t live = t.num_live_edges;
  const std::size_t nvk = t.num_vertex_label_keys;
  const std::size_t nek = t.num_edge_type_keys;
  GraphView::Sections s;
  s.num_live_edges = live;
  s.vertex_labels = block.Take<Label>(n);
  s.edges = block.Take<Edge>(cap);
  s.alive = block.Take<char>(cap);
  s.out_offsets = block.Take<std::uint32_t>(n + 1);
  s.in_offsets = block.Take<std::uint32_t>(n + 1);
  s.out_arcs = block.Take<GraphView::Arc>(live);
  s.in_arcs = block.Take<GraphView::Arc>(live);
  s.out_ids = block.Take<EdgeId>(live);
  s.in_ids = block.Take<EdgeId>(live);
  s.vertex_label_keys = block.Take<Label>(nvk);
  s.vertex_label_offsets = block.Take<std::uint32_t>(nvk + 1);
  s.vertex_label_ids = block.Take<VertexId>(n);
  s.edge_type_keys = block.Take<GraphView::EdgeTypeKey>(nek);
  s.edge_type_offsets = block.Take<std::uint32_t>(nek + 1);
  s.edge_type_ids = block.Take<EdgeId>(live);
  TNMINE_COUNTER_ADD("shard/views_materialized", 1);
  return GraphView::FromSections(s, shared_from_this());
}

bool ListShardFiles(const std::string& dir, std::vector<std::string>* paths,
                    std::string* error) {
  paths->clear();
  DIR* d = ::opendir(dir.c_str());
  if (d == nullptr) {
    if (error != nullptr) {
      *error = "cannot open " + dir + ": " + std::strerror(errno);
    }
    return false;
  }
  constexpr const char kSuffix[] = ".tnshard";
  while (dirent* entry = ::readdir(d)) {
    const std::string name = entry->d_name;
    if (name.size() > sizeof(kSuffix) - 1 &&
        name.compare(name.size() - (sizeof(kSuffix) - 1),
                     sizeof(kSuffix) - 1, kSuffix) == 0) {
      paths->push_back(dir + "/" + name);
    }
  }
  ::closedir(d);
  std::sort(paths->begin(), paths->end());
  if (paths->empty()) {
    if (error != nullptr) *error = "no *.tnshard files in " + dir;
    return false;
  }
  return true;
}

std::string ShardFileName(std::size_t index) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "shard-%05zu.tnshard", index);
  return buf;
}

}  // namespace tnmine::graph
