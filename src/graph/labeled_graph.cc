#include "graph/labeled_graph.h"

#include <algorithm>
#include <sstream>
#include <unordered_set>

namespace tnmine::graph {

VertexId LabeledGraph::AddVertex(Label label) {
  const VertexId id = static_cast<VertexId>(vertex_labels_.size());
  vertex_labels_.push_back(label);
  out_edges_.emplace_back();
  in_edges_.emplace_back();
  out_degree_.push_back(0);
  in_degree_.push_back(0);
  return id;
}

EdgeId LabeledGraph::AddEdge(VertexId src, VertexId dst, Label label) {
  TNMINE_CHECK(src < vertex_labels_.size());
  TNMINE_CHECK(dst < vertex_labels_.size());
  const EdgeId id = static_cast<EdgeId>(edges_.size());
  edges_.push_back(Edge{src, dst, label});
  alive_.push_back(1);
  out_edges_[src].push_back(id);
  in_edges_[dst].push_back(id);
  ++out_degree_[src];
  ++in_degree_[dst];
  ++live_edges_;
  return id;
}

void LabeledGraph::RemoveEdge(EdgeId e) {
  TNMINE_CHECK(e < edges_.size());
  TNMINE_CHECK_MSG(alive_[e], "edge %u already removed", e);
  alive_[e] = 0;
  --out_degree_[edges_[e].src];
  --in_degree_[edges_[e].dst];
  --live_edges_;
}

std::vector<EdgeId> LabeledGraph::LiveEdges() const {
  std::vector<EdgeId> out;
  out.reserve(live_edges_);
  for (EdgeId e = 0; e < edges_.size(); ++e) {
    if (alive_[e]) out.push_back(e);
  }
  return out;
}

std::size_t LabeledGraph::CountDistinctVertexLabels() const {
  std::unordered_set<Label> labels(vertex_labels_.begin(),
                                   vertex_labels_.end());
  return labels.size();
}

std::size_t LabeledGraph::CountDistinctEdgeLabels() const {
  std::unordered_set<Label> labels;
  ForEachEdge([&](EdgeId e) { labels.insert(edges_[e].label); });
  return labels.size();
}

LabeledGraph LabeledGraph::Compact(bool drop_isolated_vertices,
                                   std::vector<VertexId>* vertex_map) const {
  LabeledGraph out;
  std::vector<VertexId> map(vertex_labels_.size(), kInvalidVertex);
  for (VertexId v = 0; v < vertex_labels_.size(); ++v) {
    if (drop_isolated_vertices && Degree(v) == 0) continue;
    map[v] = out.AddVertex(vertex_labels_[v]);
  }
  for (EdgeId e = 0; e < edges_.size(); ++e) {
    if (!alive_[e]) continue;
    const Edge& edge = edges_[e];
    TNMINE_DCHECK(map[edge.src] != kInvalidVertex);
    TNMINE_DCHECK(map[edge.dst] != kInvalidVertex);
    out.AddEdge(map[edge.src], map[edge.dst], edge.label);
  }
  if (vertex_map != nullptr) *vertex_map = std::move(map);
  return out;
}

bool LabeledGraph::StructurallyEqual(const LabeledGraph& other) const {
  if (vertex_labels_ != other.vertex_labels_) return false;
  if (live_edges_ != other.live_edges_) return false;
  auto collect = [](const LabeledGraph& g) {
    std::vector<std::tuple<VertexId, VertexId, Label>> es;
    es.reserve(g.live_edges_);
    g.ForEachEdge([&](EdgeId e) {
      const Edge& edge = g.edges_[e];
      es.emplace_back(edge.src, edge.dst, edge.label);
    });
    std::sort(es.begin(), es.end());
    return es;
  };
  return collect(*this) == collect(other);
}

void LabeledGraph::Reserve(std::size_t vertices, std::size_t edges) {
  vertex_labels_.reserve(vertices);
  out_edges_.reserve(vertices);
  in_edges_.reserve(vertices);
  out_degree_.reserve(vertices);
  in_degree_.reserve(vertices);
  edges_.reserve(edges);
  alive_.reserve(edges);
}

std::string LabeledGraph::DebugString() const {
  std::ostringstream out;
  out << "graph(" << num_vertices() << " vertices, " << num_edges()
      << " edges)\n";
  for (VertexId v = 0; v < vertex_labels_.size(); ++v) {
    out << "  v " << v << " label=" << vertex_labels_[v] << "\n";
  }
  ForEachEdge([&](EdgeId e) {
    out << "  e " << edges_[e].src << " -> " << edges_[e].dst
        << " label=" << edges_[e].label << "\n";
  });
  return out.str();
}

}  // namespace tnmine::graph
