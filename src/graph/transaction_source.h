#ifndef TNMINE_GRAPH_TRANSACTION_SOURCE_H_
#define TNMINE_GRAPH_TRANSACTION_SOURCE_H_

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/budget.h"
#include "graph/graph_view.h"
#include "graph/shard_store.h"

namespace tnmine::graph {

/// A pinned shard: a contiguous run of transactions [base, base+n) as
/// GraphViews, plus the keep-alive that owns them. While any copy of a
/// ShardRef (or of a view taken from it) lives, the shard's memory stays
/// valid — eviction from the source's LRU only drops the cache's
/// reference.
struct ShardRef {
  std::shared_ptr<const void> keepalive;
  std::span<const GraphView> views;
  std::uint32_t base = 0;
};

/// What FSG and gSpan support counting iterate instead of a
/// vector<GraphView> (DESIGN.md §16): an ordered transaction set exposed
/// shard by shard. Transactions are globally numbered 0..N-1 in shard
/// order; every TID set the miners emit uses these global ids, so the
/// mined output is independent of how the set is cut into shards.
///
/// Pin() must be thread-safe — parallel support-counting workers each
/// hold their own Reader and pin concurrently.
class TransactionSource {
 public:
  virtual ~TransactionSource() = default;

  std::size_t num_transactions() const { return num_transactions_; }
  std::size_t num_shards() const {
    return bases_.empty() ? 0 : bases_.size() - 1;
  }
  /// Global tid of shard s's first transaction.
  std::uint32_t ShardBase(std::size_t s) const { return bases_[s]; }
  std::size_t ShardSize(std::size_t s) const {
    return bases_[s + 1] - bases_[s];
  }

  /// Maps/loads shard `s` and returns a pinning reference to its views.
  virtual ShardRef Pin(std::size_t s) = 0;

  /// Per-worker random access by global tid, optimized for the miners'
  /// ascending-tid scans: the reader keeps the last pinned shard, so a
  /// tid-sorted pass over N transactions performs num_shards pins total.
  /// The returned reference is valid until the next View() call on the
  /// same reader (the reader's pin is what keeps it alive). Not
  /// thread-safe — one Reader per worker lane.
  class Reader {
   public:
    explicit Reader(TransactionSource& source) : source_(&source) {}

    const GraphView& View(std::uint32_t tid) {
      if (tid - pinned_.base >= pinned_.views.size()) Repin(tid);
      return pinned_.views[tid - pinned_.base];
    }

   private:
    void Repin(std::uint32_t tid);

    TransactionSource* source_;
    ShardRef pinned_;  // empty until the first View
  };

 protected:
  /// Subclasses fill shard boundaries: bases_[s] is shard s's first tid,
  /// with a final sentinel equal to the transaction count.
  void SetBases(std::vector<std::uint32_t> bases);

  std::vector<std::uint32_t> bases_;
  std::size_t num_transactions_ = 0;
};

/// The in-memory path as a TransactionSource: wraps an existing
/// vector<GraphView> without copying. `shard_size` 0 presents everything
/// as one shard (the classic in-RAM layout); a positive value cuts the
/// vector into equal shards, which gives the equivalence harnesses a
/// file-free way to exercise multi-shard aggregation.
class InMemoryTransactionSource : public TransactionSource {
 public:
  explicit InMemoryTransactionSource(std::vector<GraphView> views,
                                     std::size_t shard_size = 0);

  ShardRef Pin(std::size_t s) override;

 private:
  std::vector<GraphView> views_;
};

/// Out-of-core transaction source over a set of shard files: at most
/// `max_resident_shards` are mapped at once, managed LRU; each resident
/// shard's mapped bytes (plus view bookkeeping) are charged to the
/// ResourceBudget memory ceiling, so `--max-memory-mb` honestly bounds
/// the mining working set. When even after evicting every unpinned shard
/// a charge cannot fit, Pin throws std::bad_alloc — the same signal the
/// miners already absorb into kMemoryBudgetExceeded partial results.
///
/// Only shard headers are read at open time (one 64-byte pread per
/// file); mappings are created on first pin.
class ShardedTransactionSource : public TransactionSource {
 public:
  struct Options {
    /// LRU capacity — resident (mapped) shards at any moment, besides
    /// those pinned by in-flight readers.
    std::size_t max_resident_shards = 2;
    /// Memory ceiling to charge resident shards against (an inert
    /// budget means unlimited).
    common::ResourceBudget budget;
    /// Re-hash every shard's payload at open (tnshard --verify).
    bool verify_fingerprints = false;
  };

  /// Opens every "*.tnshard" in `dir` (sorted). Null + `error` when the
  /// directory is unreadable, empty, or any header is invalid.
  static std::unique_ptr<ShardedTransactionSource> Open(
      const std::string& dir, const Options& options, std::string* error);

  /// Same over an explicit file list (kept in the given order).
  static std::unique_ptr<ShardedTransactionSource> OpenFiles(
      const std::vector<std::string>& paths, const Options& options,
      std::string* error);

  ShardRef Pin(std::size_t s) override;

  /// Combined FNV-1a over the per-shard fingerprints, in shard order —
  /// identifies the dataset for result caching (tnmined load_shards).
  std::uint64_t fingerprint() const { return fingerprint_; }
  std::uint64_t resident_bytes() const;

 private:
  /// One mapped shard: the mapping plus its materialized views and the
  /// budget charge taken for them (released on destruction, i.e. when
  /// the LRU slot AND every outstanding reader pin are gone).
  struct ResidentShard {
    std::shared_ptr<ShardFile> file;
    std::vector<GraphView> views;
    common::ResourceBudget budget;
    std::uint64_t charged = 0;

    ~ResidentShard() { budget.ReleaseMemory(charged); }
  };

  struct CacheEntry {
    std::size_t shard;
    std::shared_ptr<ResidentShard> resident;
  };

  ShardedTransactionSource() = default;

  std::shared_ptr<ResidentShard> Load(std::size_t s);

  Options options_;
  std::vector<std::string> paths_;     // one per shard
  std::uint64_t fingerprint_ = 0;

  mutable std::mutex mu_;
  /// Most-recently-used first; size ≤ max_resident_shards.
  std::list<CacheEntry> lru_;  // guarded by mu_
};

}  // namespace tnmine::graph

#endif  // TNMINE_GRAPH_TRANSACTION_SOURCE_H_
