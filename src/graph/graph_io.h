#ifndef TNMINE_GRAPH_GRAPH_IO_H_
#define TNMINE_GRAPH_GRAPH_IO_H_

#include <string>
#include <vector>

#include "graph/labeled_graph.h"

namespace tnmine::graph {

/// Serializes `g` in tnmine's native text format:
///   g <num_vertices> <num_edges>
///   v <id> <label>
///   e <src> <dst> <label>
/// Tombstoned edges are skipped; vertex ids are the dense ids of `g`.
std::string WriteNative(const LabeledGraph& g);

/// Parses the native format. Returns false and sets `error` on malformed
/// input (wrong counts, out-of-range ids, unknown directives).
bool ReadNative(const std::string& text, LabeledGraph* g, std::string* error);

/// Serializes in the SUBDUE 5.x input style used by Cook & Holder's tool:
///   v <1-based-id> <label>
///   d <1-based-src> <1-based-dst> <label>    (directed edge)
std::string WriteSubdueFormat(const LabeledGraph& g);

/// Serializes a transaction set in the FSG input style used by Kuramochi &
/// Karypis's tool (one `t` block per graph, `u` lines emitted for edges —
/// our edges are directed, so we emit `d` lines instead to preserve
/// direction):
///   t # <index>
///   v <0-based-id> <label>
///   d <src> <dst> <label>
std::string WriteFsgFormat(const std::vector<LabeledGraph>& transactions);

/// Parses a transaction set in the FSG input style (the inverse of
/// WriteFsgFormat; `d`, `u`, and `e` edge directives are all accepted and
/// read as directed src -> dst edges). Returns false and sets `error` on
/// malformed input.
bool ReadFsgFormat(const std::string& text,
                   std::vector<LabeledGraph>* transactions,
                   std::string* error);

/// Writes `text` to `path`. Returns false on I/O failure.
bool WriteTextFile(const std::string& path, const std::string& text);

/// Reads the whole of `path` into `text`. Returns false on I/O failure.
bool ReadTextFile(const std::string& path, std::string* text);

}  // namespace tnmine::graph

#endif  // TNMINE_GRAPH_GRAPH_IO_H_
