#ifndef TNMINE_GRAPH_GRAPH_IO_H_
#define TNMINE_GRAPH_GRAPH_IO_H_

#include <functional>
#include <string>
#include <vector>

#include "common/parse.h"
#include "graph/labeled_graph.h"

namespace tnmine::graph {

/// Serializes `g` in tnmine's native text format:
///   g <num_vertices> <num_edges>
///   v <id> <label>
///   e <src> <dst> <label>
/// Tombstoned edges are skipped; vertex ids are the dense ids of `g`.
std::string WriteNative(const LabeledGraph& g);

/// Parses the native format. All numeric fields go through the strict
/// helpers in common/parse.h: negative or overflowing counts and ids are
/// rejected (a header like "g -1 0" is an error, not a wrapped huge
/// reservation), and storage reservations are capped against the input
/// size. Returns false and fills `error` (line/column/message) on
/// malformed input.
bool ReadNative(const std::string& text, LabeledGraph* g, ParseError* error);
/// Legacy overload reporting the formatted error as a string.
bool ReadNative(const std::string& text, LabeledGraph* g, std::string* error);

/// Serializes in the SUBDUE 5.x input style used by Cook & Holder's tool:
///   v <1-based-id> <label>
///   d <1-based-src> <1-based-dst> <label>    (directed edge)
std::string WriteSubdueFormat(const LabeledGraph& g);

/// Parses the SUBDUE input style (the inverse of WriteSubdueFormat; `d`,
/// `e`, and `u` edge directives are all accepted as directed edges).
/// Vertex ids must be 1-based and dense; endpoints must reference declared
/// vertices. Same strict-number contract as ReadNative.
bool ReadSubdueFormat(const std::string& text, LabeledGraph* g,
                      ParseError* error);
bool ReadSubdueFormat(const std::string& text, LabeledGraph* g,
                      std::string* error);

/// Serializes a transaction set in the FSG input style used by Kuramochi &
/// Karypis's tool (one `t` block per graph, `u` lines emitted for edges —
/// our edges are directed, so we emit `d` lines instead to preserve
/// direction):
///   t # <index>
///   v <0-based-id> <label>
///   d <src> <dst> <label>
std::string WriteFsgFormat(const std::vector<LabeledGraph>& transactions);

/// Parses a transaction set in the FSG input style (the inverse of
/// WriteFsgFormat; `d`, `u`, and `e` edge directives are all accepted and
/// read as directed src -> dst edges). Same strict-number contract as
/// ReadNative. Returns false and fills `error` on malformed input.
bool ReadFsgFormat(const std::string& text,
                   std::vector<LabeledGraph>* transactions,
                   ParseError* error);
bool ReadFsgFormat(const std::string& text,
                   std::vector<LabeledGraph>* transactions,
                   std::string* error);

/// Streams an FSG-format transaction file through `callback`, one
/// completed transaction at a time, reading the file in fixed-size
/// chunks: peak memory is one transaction plus the chunk buffer,
/// however large the file — the entry point the shard builder uses to
/// convert datasets bigger than RAM (DESIGN.md §16). Same grammar and
/// strict-number contract as ReadFsgFormat. The callback may return
/// false to stop early; that is a successful return, not an error.
/// Returns false (with `error` filled) on I/O failure or malformed
/// input.
bool StreamFsgTransactions(
    const std::string& path,
    const std::function<bool(LabeledGraph&&)>& callback, std::string* error);

/// Writes `text` to `path`. Returns false on I/O failure.
bool WriteTextFile(const std::string& path, const std::string& text);

/// Reads the whole of `path` into `text`. Returns false on I/O failure.
bool ReadTextFile(const std::string& path, std::string* text);

}  // namespace tnmine::graph

#endif  // TNMINE_GRAPH_GRAPH_IO_H_
