#ifndef TNMINE_GRAPH_LABELED_GRAPH_H_
#define TNMINE_GRAPH_LABELED_GRAPH_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/check.h"

namespace tnmine::graph {

/// Vertex identifier; dense indices starting at 0.
using VertexId = std::uint32_t;
/// Edge identifier; dense indices starting at 0. Removed edges keep their
/// id (tombstoned) until Compact().
using EdgeId = std::uint32_t;
/// Small integer label attached to vertices and edges. The data layer maps
/// attribute bins / locations to labels.
using Label = std::int32_t;

inline constexpr VertexId kInvalidVertex = ~VertexId{0};
inline constexpr EdgeId kInvalidEdge = ~EdgeId{0};

/// A directed labeled edge.
struct Edge {
  VertexId src = kInvalidVertex;
  VertexId dst = kInvalidVertex;
  Label label = 0;
};

/// Directed labeled multigraph.
///
/// This is the single graph representation used across tnmine: the full OD
/// network, partitioned graph transactions, and the small pattern graphs
/// mined from them are all LabeledGraphs. Parallel edges are allowed (the
/// OD network is a multigraph: one edge per shipment between the same
/// origin and destination). Self-loops are allowed.
///
/// Edges can be removed (tombstoned) in O(1); this is what the SplitGraph
/// partitioner (Algorithm 2 in the paper) relies on when it peels
/// sub-graphs off the network. Vertex and edge counts, degrees, and
/// iteration all reflect only live edges. Compact() rebuilds a dense graph
/// without tombstones.
class LabeledGraph {
 public:
  LabeledGraph() = default;

  LabeledGraph(const LabeledGraph&) = default;
  LabeledGraph& operator=(const LabeledGraph&) = default;
  LabeledGraph(LabeledGraph&&) = default;
  LabeledGraph& operator=(LabeledGraph&&) = default;

  /// Adds a vertex with `label`; returns its id.
  VertexId AddVertex(Label label);

  /// Adds a directed edge src -> dst with `label`; returns its id. Both
  /// endpoints must exist.
  EdgeId AddEdge(VertexId src, VertexId dst, Label label);

  /// Tombstones edge `e` (must be live). Degree counts update immediately.
  void RemoveEdge(EdgeId e);

  /// Number of vertices ever added (tombstoning never removes vertices).
  std::size_t num_vertices() const { return vertex_labels_.size(); }

  /// Number of live edges.
  std::size_t num_edges() const { return live_edges_; }

  /// Total edge slots including tombstones; valid EdgeIds are [0, this).
  std::size_t edge_capacity() const { return edges_.size(); }

  Label vertex_label(VertexId v) const {
    TNMINE_DCHECK(v < vertex_labels_.size());
    return vertex_labels_[v];
  }
  void set_vertex_label(VertexId v, Label label) {
    TNMINE_DCHECK(v < vertex_labels_.size());
    vertex_labels_[v] = label;
  }

  const Edge& edge(EdgeId e) const {
    TNMINE_DCHECK(e < edges_.size());
    return edges_[e];
  }
  bool edge_alive(EdgeId e) const {
    TNMINE_DCHECK(e < edges_.size());
    return alive_[e];
  }

  /// Live out-degree / in-degree of `v`.
  std::size_t OutDegree(VertexId v) const {
    TNMINE_DCHECK(v < out_degree_.size());
    return out_degree_[v];
  }
  std::size_t InDegree(VertexId v) const {
    TNMINE_DCHECK(v < in_degree_.size());
    return in_degree_[v];
  }
  std::size_t Degree(VertexId v) const { return OutDegree(v) + InDegree(v); }

  /// Out-edge / in-edge id lists of `v`, including tombstoned entries;
  /// callers must skip ids for which edge_alive() is false (or use the
  /// ForEach helpers, which do).
  const std::vector<EdgeId>& RawOutEdges(VertexId v) const {
    TNMINE_DCHECK(v < out_edges_.size());
    return out_edges_[v];
  }
  const std::vector<EdgeId>& RawInEdges(VertexId v) const {
    TNMINE_DCHECK(v < in_edges_.size());
    return in_edges_[v];
  }

  /// Invokes fn(EdgeId) for every live out-edge of `v`.
  template <typename Fn>
  void ForEachOutEdge(VertexId v, Fn&& fn) const {
    for (EdgeId e : RawOutEdges(v)) {
      if (alive_[e]) fn(e);
    }
  }

  /// Invokes fn(EdgeId) for every live in-edge of `v`.
  template <typename Fn>
  void ForEachInEdge(VertexId v, Fn&& fn) const {
    for (EdgeId e : RawInEdges(v)) {
      if (alive_[e]) fn(e);
    }
  }

  /// Invokes fn(EdgeId) for every live edge incident to `v`, out-edges
  /// first. A self-loop is visited twice (once per direction), matching
  /// its contribution to Degree().
  template <typename Fn>
  void ForEachIncidentEdge(VertexId v, Fn&& fn) const {
    ForEachOutEdge(v, fn);
    ForEachInEdge(v, fn);
  }

  /// Invokes fn(EdgeId) for every live edge.
  template <typename Fn>
  void ForEachEdge(Fn&& fn) const {
    for (EdgeId e = 0; e < edges_.size(); ++e) {
      if (alive_[e]) fn(e);
    }
  }

  /// Returns the ids of all live edges, ascending.
  std::vector<EdgeId> LiveEdges() const;

  /// Number of distinct vertex labels among all vertices.
  std::size_t CountDistinctVertexLabels() const;
  /// Number of distinct edge labels among live edges.
  std::size_t CountDistinctEdgeLabels() const;

  /// Rebuilds a dense graph: drops tombstoned edges and, optionally,
  /// isolated vertices (live degree 0). `vertex_map`, when non-null,
  /// receives old-vertex -> new-vertex (kInvalidVertex for dropped ones).
  LabeledGraph Compact(bool drop_isolated_vertices,
                       std::vector<VertexId>* vertex_map = nullptr) const;

  /// True when the graph has no tombstoned edges.
  bool IsDense() const { return live_edges_ == edges_.size(); }

  /// Structural equality: same vertex count, same labels, same live edge
  /// multiset (src, dst, label). This is identity, not isomorphism; use
  /// iso::AreIsomorphic for the latter.
  bool StructurallyEqual(const LabeledGraph& other) const;

  /// Reserves storage for an expected number of vertices and edges.
  void Reserve(std::size_t vertices, std::size_t edges);

  /// Debug rendering: one line per vertex and edge.
  std::string DebugString() const;

 private:
  std::vector<Label> vertex_labels_;
  std::vector<Edge> edges_;
  std::vector<char> alive_;
  std::vector<std::vector<EdgeId>> out_edges_;
  std::vector<std::vector<EdgeId>> in_edges_;
  std::vector<std::uint32_t> out_degree_;
  std::vector<std::uint32_t> in_degree_;
  std::size_t live_edges_ = 0;
};

}  // namespace tnmine::graph

#endif  // TNMINE_GRAPH_LABELED_GRAPH_H_
