#ifndef TNMINE_GRAPH_SHARD_STORE_H_
#define TNMINE_GRAPH_SHARD_STORE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "graph/graph_view.h"
#include "graph/labeled_graph.h"

namespace tnmine::graph {

/// On-disk shard format for transaction GraphViews (DESIGN.md §16).
///
/// A shard file is a block of serialized CSR snapshots that can be
/// mmapped and read in place: every GraphView section (vertex labels,
/// edge table, CSR offsets, arcs, ids, label/edge-type indexes) is
/// written verbatim at 8-byte alignment, so loading a transaction is a
/// relocation pass — sixteen span assignments into the mapping, zero
/// parsing, zero copying. Layout:
///
///   FileHeader              64 bytes: magic "TNSHRD01", version,
///                           num_transactions, payload_bytes, FNV-1a
///                           fingerprint over offset table + payload
///   offset table            (num_transactions + 1) × u64, relative to
///                           the payload start — O(1) seek to any
///                           transaction, and offsets[i+1]-offsets[i]
///                           bounds every section read
///   payload                 per-transaction blocks, each 8-byte
///                           aligned: a TxnHeader with the five section
///                           cardinalities, then the sections in fixed
///                           order
///
/// The format is little-endian (the only byte order the toolchain
/// targets); `format_version` gates layout evolution — readers reject
/// versions they do not know. All integers are fixed-width; struct
/// padding bytes (EdgeTypeKey's three trailing bytes) are written as
/// zeros so shard files are byte-deterministic functions of their
/// transactions.
struct ShardHeader {
  static constexpr char kMagic[8] = {'T', 'N', 'S', 'H', 'R', 'D', '0',
                                     '1'};
  static constexpr std::uint32_t kFormatVersion = 1;

  char magic[8];
  std::uint32_t format_version;
  std::uint32_t reserved0;
  std::uint64_t num_transactions;
  std::uint64_t payload_bytes;
  /// FNV-1a 64 over the offset table and payload bytes.
  std::uint64_t fingerprint;
  std::uint64_t reserved1[3];
};
static_assert(sizeof(ShardHeader) == 64, "shard header layout drifted");

/// Serializes GraphViews into one shard file. The payload is buffered in
/// memory until Finish() — callers bound resident memory by bounding the
/// transactions per shard (the shard-building loop in tnshard/bench
/// rotates files every --shard-size transactions), not by streaming
/// within one shard.
class ShardWriter {
 public:
  explicit ShardWriter(std::string path) : path_(std::move(path)) {}

  void Add(const GraphView& view);
  void Add(const LabeledGraph& g) { Add(GraphView(g)); }

  std::size_t num_transactions() const { return offsets_.size(); }
  /// Payload bytes buffered so far (the eventual file is this plus the
  /// 64-byte header and the offset table).
  std::size_t payload_bytes() const { return payload_.size(); }

  /// Writes header + offset table + payload and fsync-free closes.
  /// Returns false with `error` set on any I/O failure; the writer is
  /// then spent either way.
  bool Finish(std::string* error);

 private:
  std::string path_;
  std::vector<std::uint64_t> offsets_;  // block starts, payload-relative
  std::vector<char> payload_;
};

/// An opened, mmapped shard file. Views returned by View(i) alias the
/// mapping and keep the whole ShardFile alive through their keep-alive,
/// so a view outliving an LRU eviction stays valid — the mapping is only
/// unmapped when the last view and the last ShardFile reference drop.
class ShardFile : public std::enable_shared_from_this<ShardFile> {
 public:
  /// Opens + mmaps + validates structure (magic, version, sizes, offset
  /// monotonicity). `verify_fingerprint` additionally rehashes the whole
  /// payload — a full sequential read; tnshard --verify wants it, the
  /// mining path (which trusts its own builder) does not.
  static std::shared_ptr<ShardFile> Open(const std::string& path,
                                         std::string* error,
                                         bool verify_fingerprint = false);

  ~ShardFile();
  ShardFile(const ShardFile&) = delete;
  ShardFile& operator=(const ShardFile&) = delete;

  std::size_t num_transactions() const { return header_->num_transactions; }
  std::uint64_t fingerprint() const { return header_->fingerprint; }
  /// Total bytes mmapped (what a resident shard charges to the budget).
  std::size_t mapped_bytes() const { return mapped_size_; }
  const std::string& path() const { return path_; }

  /// The i-th transaction as a zero-copy view into the mapping. Bounds
  /// of every section are checked against the block extent; throws
  /// std::runtime_error on a corrupt block (structure validation at
  /// Open() makes this unreachable for files our writer produced).
  GraphView View(std::size_t i) const;

 private:
  ShardFile() = default;

  std::string path_;
  const char* data_ = nullptr;  // whole mapping
  std::size_t mapped_size_ = 0;
  const ShardHeader* header_ = nullptr;
  const std::uint64_t* offsets_ = nullptr;
  const char* payload_ = nullptr;
};

/// Shard files in `dir` matching "*.tnshard", lexicographically sorted
/// (the writer's shard-00000 naming makes that creation order). Returns
/// false with `error` when the directory cannot be read; an empty
/// directory is an error too — a mining run over zero shards is always
/// a misconfiguration.
bool ListShardFiles(const std::string& dir, std::vector<std::string>* paths,
                    std::string* error);

/// Canonical name of the i-th shard in a shard directory
/// ("shard-00042.tnshard").
std::string ShardFileName(std::size_t index);

}  // namespace tnmine::graph

#endif  // TNMINE_GRAPH_SHARD_STORE_H_
