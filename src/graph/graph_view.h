#ifndef TNMINE_GRAPH_GRAPH_VIEW_H_
#define TNMINE_GRAPH_GRAPH_VIEW_H_

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "graph/labeled_graph.h"

namespace tnmine::graph {

/// Immutable flat-memory snapshot of a LabeledGraph, built once and then
/// read by the mining kernels (VF2, canonical coding, gSpan extension
/// enumeration, FSG support counting, SUBDUE growth). See DESIGN.md §11.
///
/// Layout: CSR out/in adjacency with tombstoned edges compacted away.
/// Vertex and edge ids are the ORIGINAL ids of the source graph — the
/// miners expose both in their output (SUBDUE instances carry host
/// EdgeIds, VF2 embeddings carry target ids), so the view never renumbers
/// anything; it only drops dead edges from the adjacency arrays.
///
/// Two parallel adjacency encodings share the same CSR offsets:
///  - Arcs: per-vertex arc records sorted by (label, other, edge), so a
///    label's neighbors form a contiguous subrange found by binary search
///    and parallel (src, dst, label) edges sit adjacent with ascending
///    edge ids.
///  - Ids: plain EdgeIds in ascending order — exactly the live-edge
///    sequence LabeledGraph::ForEachOutEdge/ForEachInEdge visits, for the
///    kernels (SUBDUE) whose OUTPUT depends on discovery order.
///
/// Indexes:
///  - per-label vertex lists (ascending VertexId within a label);
///  - an edge-type index keyed (src_label, dst_label, edge_label,
///    self_loop), sorted by that key with ascending EdgeIds per type —
///    the same enumeration order as gSpan's seed map and FSG's level-1
///    edge_tids map, so seed enumeration is an index lookup.
///
/// Ownership: every section is a std::span backed by a type-erased
/// refcounted keep-alive. A view built from a LabeledGraph owns freshly
/// copied arrays (mutating the source afterwards does not affect it);
/// a view built by FromSections (the shard loader, DESIGN.md §16) aliases
/// caller-provided memory — typically an mmapped shard — and the
/// keep-alive pins the mapping for as long as any copy of the view lives.
/// Copies are cheap (spans + one shared_ptr bump).
class GraphView {
 public:
  /// One adjacency record. For out-arcs `other` is the edge's dst; for
  /// in-arcs it is the src. Self-loops appear in both directions (as in
  /// LabeledGraph, where a self-loop contributes to both degree sides).
  struct Arc {
    VertexId other;
    Label label;
    EdgeId edge;
  };

  /// Edge-type key; ordering matches the miners' historical std::map /
  /// std::set enumeration order (src label, dst label, edge label,
  /// self-loop flag).
  struct EdgeTypeKey {
    Label src_label;
    Label dst_label;
    Label edge_label;
    bool self_loop;

    auto operator<=>(const EdgeTypeKey&) const = default;
  };

  /// All sections of a view as raw spans — the wire/disk shape of a
  /// snapshot. Produced by sections() (shard writer) and consumed by
  /// FromSections (shard loader). Invariants the loader's consistency
  /// check enforces: offsets spans are num_vertices+1 long, arc/id spans
  /// are num_live_edges long, alive has edge_capacity entries.
  struct Sections {
    std::span<const Label> vertex_labels;
    std::span<const Edge> edges;
    std::span<const char> alive;
    std::size_t num_live_edges = 0;
    std::span<const std::uint32_t> out_offsets;
    std::span<const std::uint32_t> in_offsets;
    std::span<const Arc> out_arcs;
    std::span<const Arc> in_arcs;
    std::span<const EdgeId> out_ids;
    std::span<const EdgeId> in_ids;
    std::span<const Label> vertex_label_keys;
    std::span<const std::uint32_t> vertex_label_offsets;
    std::span<const VertexId> vertex_label_ids;
    std::span<const EdgeTypeKey> edge_type_keys;
    std::span<const std::uint32_t> edge_type_offsets;
    std::span<const EdgeId> edge_type_ids;
  };

  explicit GraphView(const LabeledGraph& g);

  /// Wraps caller-owned section memory without copying. `keepalive` must
  /// own (directly or transitively) every byte the spans point at; the
  /// view holds it alive. The shard loader calls this with spans into an
  /// mmapped file. No validation here — callers that ingest untrusted
  /// bytes must run CheckConsistent() afterwards.
  static GraphView FromSections(const Sections& sections,
                                std::shared_ptr<const void> keepalive);

  /// The view's sections as spans (for serialization).
  Sections sections() const;

  std::size_t num_vertices() const { return vertex_labels_.size(); }
  /// Live edges (tombstones excluded).
  std::size_t num_edges() const { return num_live_edges_; }
  /// Original edge-id space size; valid EdgeIds are [0, this).
  std::size_t edge_capacity() const { return edges_.size(); }

  Label vertex_label(VertexId v) const {
    TNMINE_DCHECK(v < vertex_labels_.size());
    return vertex_labels_[v];
  }
  const Edge& edge(EdgeId e) const {
    TNMINE_DCHECK(e < edges_.size());
    return edges_[e];
  }
  bool edge_alive(EdgeId e) const {
    TNMINE_DCHECK(e < edges_.size());
    return alive_[e];
  }

  std::size_t OutDegree(VertexId v) const {
    TNMINE_DCHECK(v + 1 < out_offsets_.size());
    return out_offsets_[v + 1] - out_offsets_[v];
  }
  std::size_t InDegree(VertexId v) const {
    TNMINE_DCHECK(v + 1 < in_offsets_.size());
    return in_offsets_[v + 1] - in_offsets_[v];
  }
  std::size_t Degree(VertexId v) const { return OutDegree(v) + InDegree(v); }

  /// Label-sorted adjacency: arcs of `v` ordered by (label, other, edge).
  std::span<const Arc> OutArcs(VertexId v) const {
    TNMINE_DCHECK(v + 1 < out_offsets_.size());
    return {out_arcs_.data() + out_offsets_[v],
            out_offsets_[v + 1] - out_offsets_[v]};
  }
  std::span<const Arc> InArcs(VertexId v) const {
    TNMINE_DCHECK(v + 1 < in_offsets_.size());
    return {in_arcs_.data() + in_offsets_[v],
            in_offsets_[v + 1] - in_offsets_[v]};
  }

  /// The contiguous subrange of OutArcs(v)/InArcs(v) carrying `label`
  /// (binary search; `other` ascending within the result).
  std::span<const Arc> OutArcs(VertexId v, Label label) const {
    return LabelRange(OutArcs(v), label);
  }
  std::span<const Arc> InArcs(VertexId v, Label label) const {
    return LabelRange(InArcs(v), label);
  }

  /// Number of live edges src -> dst with `label` (binary search within
  /// the label subrange; parallel edges counted with multiplicity).
  std::size_t CountOutEdges(VertexId src, VertexId dst, Label label) const;

  /// EdgeId-ascending adjacency — the exact sequence
  /// LabeledGraph::ForEachOutEdge / ForEachInEdge visits (live edges, in
  /// insertion order, which is ascending EdgeId order).
  std::span<const EdgeId> OutEdgesById(VertexId v) const {
    TNMINE_DCHECK(v + 1 < out_offsets_.size());
    return {out_ids_.data() + out_offsets_[v],
            out_offsets_[v + 1] - out_offsets_[v]};
  }
  std::span<const EdgeId> InEdgesById(VertexId v) const {
    TNMINE_DCHECK(v + 1 < in_offsets_.size());
    return {in_ids_.data() + in_offsets_[v],
            in_offsets_[v + 1] - in_offsets_[v]};
  }

  /// Distinct vertex labels, ascending.
  std::span<const Label> DistinctVertexLabels() const {
    return vertex_label_keys_;
  }
  /// Vertices carrying `label`, ascending (empty when none do).
  std::span<const VertexId> VerticesWithLabel(Label label) const;

  /// Edge-type index: distinct (src_label, dst_label, edge_label,
  /// self_loop) keys over live edges, ascending by key.
  std::size_t NumEdgeTypes() const { return edge_type_keys_.size(); }
  const EdgeTypeKey& EdgeTypeAt(std::size_t i) const {
    TNMINE_DCHECK(i < edge_type_keys_.size());
    return edge_type_keys_[i];
  }
  /// Live edges of the i-th type, ascending EdgeId.
  std::span<const EdgeId> EdgesOfType(std::size_t i) const {
    TNMINE_DCHECK(i + 1 < edge_type_offsets_.size());
    return {edge_type_ids_.data() + edge_type_offsets_[i],
            edge_type_offsets_[i + 1] - edge_type_offsets_[i]};
  }

  /// Full structural self-check: offsets monotone, arcs sorted and
  /// consistent with the edge table, both encodings agree, every live
  /// edge appears exactly once per direction, indexes cover everything.
  /// Used by the fuzz/property harnesses and the shard loader — a
  /// malformed input file must never yield an inconsistent snapshot.
  /// Returns false (never crashes) on violation.
  bool CheckConsistent() const;

 private:
  /// Heap block owning the arrays of a view built from a LabeledGraph.
  struct Storage;

  GraphView() = default;

  static std::span<const Arc> LabelRange(std::span<const Arc> arcs,
                                         Label label);

  std::span<const Label> vertex_labels_;
  std::span<const Edge> edges_;  // full original edge table, dead slots too
  std::span<const char> alive_;
  std::size_t num_live_edges_ = 0;

  // CSR adjacency; out_arcs_/out_ids_ share out_offsets_ (same for in).
  std::span<const std::uint32_t> out_offsets_;
  std::span<const std::uint32_t> in_offsets_;
  std::span<const Arc> out_arcs_;
  std::span<const Arc> in_arcs_;
  std::span<const EdgeId> out_ids_;
  std::span<const EdgeId> in_ids_;

  // Per-label vertex index (CSR over vertex_label_keys_).
  std::span<const Label> vertex_label_keys_;
  std::span<const std::uint32_t> vertex_label_offsets_;
  std::span<const VertexId> vertex_label_ids_;

  // Edge-type index (CSR over edge_type_keys_).
  std::span<const EdgeTypeKey> edge_type_keys_;
  std::span<const std::uint32_t> edge_type_offsets_;
  std::span<const EdgeId> edge_type_ids_;

  /// Pins whatever the spans point into: a Storage for built views, an
  /// mmapped shard for loaded ones.
  std::shared_ptr<const void> keepalive_;
};

}  // namespace tnmine::graph

#endif  // TNMINE_GRAPH_GRAPH_VIEW_H_
