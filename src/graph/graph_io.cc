#include "graph/graph_io.h"

#include <algorithm>
#include <cstdio>
#include <sstream>
#include <string_view>

#include "common/failpoint.h"
#include "common/telemetry.h"

namespace tnmine::graph {

namespace {

/// Parses a vertex/edge id or count token as uint32 (the width of
/// VertexId/EdgeId). Rejects '-', '+', overflow, and partial consumption,
/// so "-1" can never wrap into a huge id.
bool ParseId(std::string_view token, std::uint32_t* out) {
  return ParseUint32(token, out);
}

bool ParseLabel(std::string_view token, Label* out) {
  return ParseInt32(token, out);
}

/// Caps a header-declared element count against what the remaining input
/// could plausibly hold, so a hostile header ("g 4000000000 0") cannot
/// force a multi-gigabyte Reserve before the count mismatch is detected.
/// `min_bytes_per_element` is the smallest possible serialized line for
/// one element ("v 0 0\n" = 6 bytes, "e 0 0 0\n" = 8 bytes).
std::size_t CapReserve(std::size_t declared, std::size_t input_bytes,
                       std::size_t min_bytes_per_element) {
  return std::min(declared, input_bytes / min_bytes_per_element + 1);
}

}  // namespace

std::string WriteNative(const LabeledGraph& g) {
  std::ostringstream out;
  out << "g " << g.num_vertices() << " " << g.num_edges() << "\n";
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    out << "v " << v << " " << g.vertex_label(v) << "\n";
  }
  g.ForEachEdge([&](EdgeId e) {
    const Edge& edge = g.edge(e);
    out << "e " << edge.src << " " << edge.dst << " " << edge.label << "\n";
  });
  return out.str();
}

bool ReadNative(const std::string& text, LabeledGraph* g,
                ParseError* error) {
  *g = LabeledGraph();
  TNMINE_COUNTER_ADD("graph_io/bytes_parsed", text.size());
  std::size_t expect_vertices = 0, expect_edges = 0;
  bool have_header = false;
  std::size_t seen_vertices = 0, seen_edges = 0;
  ParseError err;
  const bool scanned = ForEachLine(text, [&](std::size_t line_number,
                                             std::string_view line) {
    const std::vector<LineToken> tokens = TokenizeLine(line);
    if (tokens.empty()) return true;  // blank line
    auto fail = [&](std::size_t column, std::string message) {
      err = ParseError::At(line_number, column, std::move(message));
      return false;
    };
    const std::string_view directive = tokens[0].text;
    if (directive[0] == '#') return true;  // comment line
    if (directive == "g") {
      if (have_header) return fail(tokens[0].column, "duplicate header");
      if (tokens.size() != 3) {
        return fail(tokens[0].column,
                    "header must be 'g <vertices> <edges>'");
      }
      std::uint32_t nv = 0, ne = 0;
      if (!ParseId(tokens[1].text, &nv)) {
        return fail(tokens[1].column, "bad vertex count '" +
                                          std::string(tokens[1].text) + "'");
      }
      if (!ParseId(tokens[2].text, &ne)) {
        return fail(tokens[2].column,
                    "bad edge count '" + std::string(tokens[2].text) + "'");
      }
      expect_vertices = nv;
      expect_edges = ne;
      have_header = true;
      g->Reserve(CapReserve(expect_vertices, text.size(), 6),
                 CapReserve(expect_edges, text.size(), 8));
    } else if (directive == "v") {
      if (tokens.size() != 3) {
        return fail(tokens[0].column, "vertex line must be 'v <id> <label>'");
      }
      std::uint32_t id = 0;
      Label label = 0;
      if (!ParseId(tokens[1].text, &id)) {
        return fail(tokens[1].column,
                    "bad vertex id '" + std::string(tokens[1].text) + "'");
      }
      if (!ParseLabel(tokens[2].text, &label)) {
        return fail(tokens[2].column,
                    "bad vertex label '" + std::string(tokens[2].text) + "'");
      }
      if (id != seen_vertices) {
        return fail(tokens[1].column, "vertex ids must be dense");
      }
      g->AddVertex(label);
      ++seen_vertices;
    } else if (directive == "e") {
      if (tokens.size() != 4) {
        return fail(tokens[0].column,
                    "edge line must be 'e <src> <dst> <label>'");
      }
      std::uint32_t src = 0, dst = 0;
      Label label = 0;
      if (!ParseId(tokens[1].text, &src) || !ParseId(tokens[2].text, &dst)) {
        return fail(tokens[1].column, "bad edge endpoint");
      }
      if (!ParseLabel(tokens[3].text, &label)) {
        return fail(tokens[3].column,
                    "bad edge label '" + std::string(tokens[3].text) + "'");
      }
      if (src >= seen_vertices || dst >= seen_vertices) {
        return fail(tokens[1].column, "edge endpoint out of range");
      }
      g->AddEdge(static_cast<VertexId>(src), static_cast<VertexId>(dst),
                 label);
      ++seen_edges;
    } else {
      return fail(tokens[0].column,
                  "unknown directive: " + std::string(directive));
    }
    return true;
  });
  if (!scanned) {
    TNMINE_COUNTER_ADD("graph_io/parse_errors", 1);
    ReportParseError(err, error, nullptr);
    return false;
  }
  auto fail_global = [&](const std::string& message) {
    TNMINE_COUNTER_ADD("graph_io/parse_errors", 1);
    ReportParseError(ParseError::At(0, 0, message), error, nullptr);
    return false;
  };
  if (!have_header) return fail_global("missing header");
  if (seen_vertices != expect_vertices) {
    return fail_global("vertex count mismatch");
  }
  if (seen_edges != expect_edges) return fail_global("edge count mismatch");
  TNMINE_COUNTER_ADD("graph_io/records_parsed", seen_vertices + seen_edges);
  return true;
}

bool ReadNative(const std::string& text, LabeledGraph* g,
                std::string* error) {
  ParseError err;
  if (ReadNative(text, g, &err)) return true;
  if (error != nullptr) *error = err.ToString();
  return false;
}

std::string WriteSubdueFormat(const LabeledGraph& g) {
  std::ostringstream out;
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    out << "v " << (v + 1) << " " << g.vertex_label(v) << "\n";
  }
  g.ForEachEdge([&](EdgeId e) {
    const Edge& edge = g.edge(e);
    out << "d " << (edge.src + 1) << " " << (edge.dst + 1) << " "
        << edge.label << "\n";
  });
  return out.str();
}

bool ReadSubdueFormat(const std::string& text, LabeledGraph* g,
                      ParseError* error) {
  *g = LabeledGraph();
  TNMINE_COUNTER_ADD("graph_io/bytes_parsed", text.size());
  std::size_t seen_vertices = 0;
  std::size_t seen_edges = 0;
  ParseError err;
  const bool scanned = ForEachLine(text, [&](std::size_t line_number,
                                             std::string_view line) {
    const std::vector<LineToken> tokens = TokenizeLine(line);
    if (tokens.empty()) return true;
    auto fail = [&](std::size_t column, std::string message) {
      err = ParseError::At(line_number, column, std::move(message));
      return false;
    };
    const std::string_view directive = tokens[0].text;
    if (directive[0] == '#' || directive[0] == '%') return true;  // comment
    if (directive == "v") {
      if (tokens.size() != 3) {
        return fail(tokens[0].column, "vertex line must be 'v <id> <label>'");
      }
      std::uint32_t id = 0;
      Label label = 0;
      if (!ParseId(tokens[1].text, &id)) {
        return fail(tokens[1].column,
                    "bad vertex id '" + std::string(tokens[1].text) + "'");
      }
      if (!ParseLabel(tokens[2].text, &label)) {
        return fail(tokens[2].column,
                    "bad vertex label '" + std::string(tokens[2].text) + "'");
      }
      if (id != seen_vertices + 1) {
        return fail(tokens[1].column, "vertex ids must be 1-based and dense");
      }
      g->AddVertex(label);
      ++seen_vertices;
    } else if (directive == "d" || directive == "e" || directive == "u") {
      if (tokens.size() != 4) {
        return fail(tokens[0].column,
                    "edge line must be 'd <src> <dst> <label>'");
      }
      std::uint32_t src = 0, dst = 0;
      Label label = 0;
      if (!ParseId(tokens[1].text, &src) || !ParseId(tokens[2].text, &dst)) {
        return fail(tokens[1].column, "bad edge endpoint");
      }
      if (!ParseLabel(tokens[3].text, &label)) {
        return fail(tokens[3].column,
                    "bad edge label '" + std::string(tokens[3].text) + "'");
      }
      if (src < 1 || dst < 1 || src > seen_vertices ||
          dst > seen_vertices) {
        return fail(tokens[1].column, "edge endpoint out of range");
      }
      g->AddEdge(static_cast<VertexId>(src - 1),
                 static_cast<VertexId>(dst - 1), label);
      ++seen_edges;
    } else {
      return fail(tokens[0].column,
                  "unknown directive: " + std::string(directive));
    }
    return true;
  });
  if (!scanned) {
    TNMINE_COUNTER_ADD("graph_io/parse_errors", 1);
    ReportParseError(err, error, nullptr);
    return false;
  }
  TNMINE_COUNTER_ADD("graph_io/records_parsed", seen_vertices + seen_edges);
  return true;
}

bool ReadSubdueFormat(const std::string& text, LabeledGraph* g,
                      std::string* error) {
  ParseError err;
  if (ReadSubdueFormat(text, g, &err)) return true;
  if (error != nullptr) *error = err.ToString();
  return false;
}

std::string WriteFsgFormat(const std::vector<LabeledGraph>& transactions) {
  std::ostringstream out;
  for (std::size_t t = 0; t < transactions.size(); ++t) {
    const LabeledGraph& g = transactions[t];
    out << "t # " << t << "\n";
    for (VertexId v = 0; v < g.num_vertices(); ++v) {
      out << "v " << v << " " << g.vertex_label(v) << "\n";
    }
    g.ForEachEdge([&](EdgeId e) {
      const Edge& edge = g.edge(e);
      out << "d " << edge.src << " " << edge.dst << " " << edge.label << "\n";
    });
  }
  return out.str();
}

namespace {

/// Stateful per-line parser for the FSG transaction grammar, shared by
/// the slurping and streaming readers. Lines go in through
/// ConsumeLine(); each completed transaction goes out through the sink
/// (a transaction completes when the next `t` header arrives, or at
/// Finish()). ConsumeLine returns false to stop the scan — either a
/// parse error (failed() is set) or the sink declining more input.
class FsgLineParser {
 public:
  explicit FsgLineParser(const std::function<bool(LabeledGraph&&)>& sink)
      : sink_(sink) {}

  bool ConsumeLine(std::size_t line_number, std::string_view line) {
    const std::vector<LineToken> tokens = TokenizeLine(line);
    if (tokens.empty()) return true;
    auto fail = [&](std::size_t column, std::string message) {
      error_ = ParseError::At(line_number, column, std::move(message));
      failed_ = true;
      return false;
    };
    const std::string_view directive = tokens[0].text;
    if (directive[0] == '#') return true;  // comment line
    if (directive == "t") {
      std::uint64_t index = 0;
      if (tokens.size() != 3 || tokens[1].text != "#" ||
          !ParseUint64(tokens[2].text, &index)) {
        return fail(tokens[0].column, "malformed transaction header");
      }
      if (!Flush()) return false;
      have_transaction_ = true;
    } else if (directive == "v") {
      if (!have_transaction_) {
        return fail(tokens[0].column, "vertex before transaction");
      }
      if (tokens.size() != 3) {
        return fail(tokens[0].column, "vertex line must be 'v <id> <label>'");
      }
      std::uint32_t id = 0;
      Label label = 0;
      if (!ParseId(tokens[1].text, &id)) {
        return fail(tokens[1].column,
                    "bad vertex id '" + std::string(tokens[1].text) + "'");
      }
      if (!ParseLabel(tokens[2].text, &label)) {
        return fail(tokens[2].column,
                    "bad vertex label '" + std::string(tokens[2].text) + "'");
      }
      if (id != current_.num_vertices()) {
        return fail(tokens[1].column, "vertex ids must be dense per "
                                      "transaction");
      }
      current_.AddVertex(label);
    } else if (directive == "d" || directive == "u" || directive == "e") {
      if (!have_transaction_) {
        return fail(tokens[0].column, "edge before transaction");
      }
      if (tokens.size() != 4) {
        return fail(tokens[0].column,
                    "edge line must be 'd <src> <dst> <label>'");
      }
      std::uint32_t src = 0, dst = 0;
      Label label = 0;
      if (!ParseId(tokens[1].text, &src) || !ParseId(tokens[2].text, &dst)) {
        return fail(tokens[1].column, "bad edge endpoint");
      }
      if (!ParseLabel(tokens[3].text, &label)) {
        return fail(tokens[3].column,
                    "bad edge label '" + std::string(tokens[3].text) + "'");
      }
      if (src >= current_.num_vertices() || dst >= current_.num_vertices()) {
        return fail(tokens[1].column, "edge endpoint out of range");
      }
      current_.AddEdge(static_cast<VertexId>(src),
                       static_cast<VertexId>(dst), label);
    } else {
      return fail(tokens[0].column,
                  "unknown directive: " + std::string(directive));
    }
    ++records_;
    return true;
  }

  /// Emits the trailing transaction. False only when the sink stops.
  bool Finish() { return Flush(); }

  bool failed() const { return failed_; }
  const ParseError& error() const { return error_; }
  std::size_t records() const { return records_; }

 private:
  bool Flush() {
    if (!have_transaction_) return true;
    have_transaction_ = false;
    LabeledGraph done = std::move(current_);
    current_ = LabeledGraph();
    return sink_(std::move(done));
  }

  const std::function<bool(LabeledGraph&&)>& sink_;
  LabeledGraph current_;
  bool have_transaction_ = false;
  bool failed_ = false;
  ParseError error_;
  std::size_t records_ = 0;
};

}  // namespace

bool ReadFsgFormat(const std::string& text,
                   std::vector<LabeledGraph>* transactions,
                   ParseError* error) {
  transactions->clear();
  TNMINE_COUNTER_ADD("graph_io/bytes_parsed", text.size());
  const std::function<bool(LabeledGraph&&)> sink = [&](LabeledGraph&& g) {
    transactions->push_back(std::move(g));
    return true;
  };
  FsgLineParser parser(sink);
  const bool scanned =
      ForEachLine(text, [&](std::size_t line_number, std::string_view line) {
        return parser.ConsumeLine(line_number, line);
      });
  // The collecting sink never stops, so a false scan is always a parse
  // error.
  if (!scanned) {
    TNMINE_COUNTER_ADD("graph_io/parse_errors", 1);
    ReportParseError(parser.error(), error, nullptr);
    return false;
  }
  parser.Finish();
  TNMINE_COUNTER_ADD("graph_io/records_parsed", parser.records());
  return true;
}

bool ReadFsgFormat(const std::string& text,
                   std::vector<LabeledGraph>* transactions,
                   std::string* error) {
  ParseError err;
  if (ReadFsgFormat(text, transactions, &err)) return true;
  if (error != nullptr) *error = err.ToString();
  return false;
}

bool StreamFsgTransactions(
    const std::string& path,
    const std::function<bool(LabeledGraph&&)>& callback,
    std::string* error) {
  if (TNMINE_FAILPOINT("graph_io/read")) {
    if (error != nullptr) *error = "injected read failure";
    return false;
  }
  FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    if (error != nullptr) *error = "cannot open " + path;
    return false;
  }
  FsgLineParser parser(callback);
  // Fixed-size chunks with a carry buffer for the line straddling a
  // chunk boundary — the resident footprint is independent of the file
  // size, unlike the slurping ReadTextFile path.
  std::string carry;
  char buf[1 << 16];
  std::size_t line_number = 0;
  std::uint64_t bytes = 0;
  bool stopped = false;
  std::size_t n = 0;
  while (!stopped && (n = std::fread(buf, 1, sizeof(buf), f)) > 0) {
    bytes += n;
    const std::string_view chunk(buf, n);
    std::size_t begin = 0;
    while (!stopped) {
      const std::size_t nl = chunk.find('\n', begin);
      if (nl == std::string_view::npos) break;
      std::string_view line;
      if (carry.empty()) {
        line = chunk.substr(begin, nl - begin);
      } else {
        carry.append(chunk.substr(begin, nl - begin));
        line = carry;
      }
      if (!line.empty() && line.back() == '\r') line.remove_suffix(1);
      ++line_number;
      if (!parser.ConsumeLine(line_number, line)) stopped = true;
      carry.clear();
      begin = nl + 1;
    }
    if (!stopped) carry.append(chunk.substr(begin));
  }
  const bool read_ok = std::ferror(f) == 0;
  std::fclose(f);
  if (!read_ok) {
    if (error != nullptr) *error = "read error on " + path;
    return false;
  }
  if (!stopped && !carry.empty()) {
    // Final line without a trailing newline.
    std::string_view line = carry;
    if (!line.empty() && line.back() == '\r') line.remove_suffix(1);
    ++line_number;
    if (!parser.ConsumeLine(line_number, line)) stopped = true;
  }
  if (!stopped) parser.Finish();
  if (parser.failed()) {
    TNMINE_COUNTER_ADD("graph_io/parse_errors", 1);
    if (error != nullptr) *error = parser.error().ToString();
    return false;
  }
  TNMINE_COUNTER_ADD("graph_io/bytes_read", bytes);
  TNMINE_COUNTER_ADD("graph_io/records_parsed", parser.records());
  return true;
}

bool WriteTextFile(const std::string& path, const std::string& text) {
  if (TNMINE_FAILPOINT("graph_io/write")) return false;
  FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) return false;
  const bool ok = std::fwrite(text.data(), 1, text.size(), f) == text.size();
  std::fclose(f);
  if (ok) TNMINE_COUNTER_ADD("graph_io/bytes_written", text.size());
  return ok;
}

bool ReadTextFile(const std::string& path, std::string* text) {
  if (TNMINE_FAILPOINT("graph_io/read")) return false;
  FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return false;
  std::string out;
  char buf[1 << 16];
  std::size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) out.append(buf, n);
  const bool ok = std::ferror(f) == 0;
  std::fclose(f);
  if (ok) {
    TNMINE_COUNTER_ADD("graph_io/bytes_read", out.size());
    *text = std::move(out);
  }
  return ok;
}

}  // namespace tnmine::graph
