#include "graph/graph_io.h"

#include <cstdio>
#include <sstream>

namespace tnmine::graph {

std::string WriteNative(const LabeledGraph& g) {
  std::ostringstream out;
  out << "g " << g.num_vertices() << " " << g.num_edges() << "\n";
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    out << "v " << v << " " << g.vertex_label(v) << "\n";
  }
  g.ForEachEdge([&](EdgeId e) {
    const Edge& edge = g.edge(e);
    out << "e " << edge.src << " " << edge.dst << " " << edge.label << "\n";
  });
  return out.str();
}

bool ReadNative(const std::string& text, LabeledGraph* g,
                std::string* error) {
  *g = LabeledGraph();
  std::istringstream in(text);
  std::string directive;
  std::size_t expect_vertices = 0, expect_edges = 0;
  bool have_header = false;
  std::size_t seen_vertices = 0, seen_edges = 0;
  auto fail = [&](const std::string& message) {
    if (error != nullptr) *error = message;
    return false;
  };
  while (in >> directive) {
    if (directive == "g") {
      if (have_header) return fail("duplicate header");
      if (!(in >> expect_vertices >> expect_edges)) {
        return fail("malformed header");
      }
      have_header = true;
      g->Reserve(expect_vertices, expect_edges);
    } else if (directive == "v") {
      std::uint64_t id;
      Label label;
      if (!(in >> id >> label)) return fail("malformed vertex line");
      if (id != seen_vertices) return fail("vertex ids must be dense");
      g->AddVertex(label);
      ++seen_vertices;
    } else if (directive == "e") {
      std::uint64_t src, dst;
      Label label;
      if (!(in >> src >> dst >> label)) return fail("malformed edge line");
      if (src >= seen_vertices || dst >= seen_vertices) {
        return fail("edge endpoint out of range");
      }
      g->AddEdge(static_cast<VertexId>(src), static_cast<VertexId>(dst),
                 label);
      ++seen_edges;
    } else if (directive[0] == '#') {
      std::string rest;
      std::getline(in, rest);  // comment line
    } else {
      return fail("unknown directive: " + directive);
    }
  }
  if (!have_header) return fail("missing header");
  if (seen_vertices != expect_vertices) return fail("vertex count mismatch");
  if (seen_edges != expect_edges) return fail("edge count mismatch");
  return true;
}

std::string WriteSubdueFormat(const LabeledGraph& g) {
  std::ostringstream out;
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    out << "v " << (v + 1) << " " << g.vertex_label(v) << "\n";
  }
  g.ForEachEdge([&](EdgeId e) {
    const Edge& edge = g.edge(e);
    out << "d " << (edge.src + 1) << " " << (edge.dst + 1) << " "
        << edge.label << "\n";
  });
  return out.str();
}

std::string WriteFsgFormat(const std::vector<LabeledGraph>& transactions) {
  std::ostringstream out;
  for (std::size_t t = 0; t < transactions.size(); ++t) {
    const LabeledGraph& g = transactions[t];
    out << "t # " << t << "\n";
    for (VertexId v = 0; v < g.num_vertices(); ++v) {
      out << "v " << v << " " << g.vertex_label(v) << "\n";
    }
    g.ForEachEdge([&](EdgeId e) {
      const Edge& edge = g.edge(e);
      out << "d " << edge.src << " " << edge.dst << " " << edge.label << "\n";
    });
  }
  return out.str();
}

bool ReadFsgFormat(const std::string& text,
                   std::vector<LabeledGraph>* transactions,
                   std::string* error) {
  transactions->clear();
  std::istringstream in(text);
  std::string directive;
  auto fail = [&](const std::string& message) {
    if (error != nullptr) *error = message;
    return false;
  };
  while (in >> directive) {
    if (directive == "t") {
      std::string hash;
      std::uint64_t index;
      if (!(in >> hash >> index) || hash != "#") {
        return fail("malformed transaction header");
      }
      transactions->emplace_back();
    } else if (directive == "v") {
      if (transactions->empty()) return fail("vertex before transaction");
      std::uint64_t id;
      Label label;
      if (!(in >> id >> label)) return fail("malformed vertex line");
      if (id != transactions->back().num_vertices()) {
        return fail("vertex ids must be dense per transaction");
      }
      transactions->back().AddVertex(label);
    } else if (directive == "d" || directive == "u" || directive == "e") {
      if (transactions->empty()) return fail("edge before transaction");
      std::uint64_t src, dst;
      Label label;
      if (!(in >> src >> dst >> label)) return fail("malformed edge line");
      LabeledGraph& g = transactions->back();
      if (src >= g.num_vertices() || dst >= g.num_vertices()) {
        return fail("edge endpoint out of range");
      }
      g.AddEdge(static_cast<VertexId>(src), static_cast<VertexId>(dst),
                label);
    } else if (directive[0] == '#') {
      std::string rest;
      std::getline(in, rest);  // comment
    } else {
      return fail("unknown directive: " + directive);
    }
  }
  return true;
}

bool WriteTextFile(const std::string& path, const std::string& text) {
  FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) return false;
  const bool ok = std::fwrite(text.data(), 1, text.size(), f) == text.size();
  std::fclose(f);
  return ok;
}

bool ReadTextFile(const std::string& path, std::string* text) {
  FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return false;
  std::string out;
  char buf[1 << 16];
  std::size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) out.append(buf, n);
  const bool ok = std::ferror(f) == 0;
  std::fclose(f);
  if (ok) *text = std::move(out);
  return ok;
}

}  // namespace tnmine::graph
