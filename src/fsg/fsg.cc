#include "fsg/fsg.h"

#include <algorithm>
#include <map>
#include <set>
#include <tuple>
#include <unordered_map>
#include <unordered_set>

#include "common/check.h"
#include "common/telemetry.h"
#include "common/thread_pool.h"
#include "common/trace.h"
#include "graph/algorithms.h"
#include "iso/canonical.h"
#include "iso/vf2.h"

namespace tnmine::fsg {

using graph::Edge;
using graph::EdgeId;
using graph::Label;
using graph::LabeledGraph;
using graph::VertexId;
using pattern::FrequentPattern;

namespace {

/// A frequent-edge type: the building block for extensions.
struct EdgeType {
  Label src_label;
  Label dst_label;
  Label edge_label;

  auto operator<=>(const EdgeType&) const = default;
};

/// Rough per-pattern memory footprint used for the OOM budget.
std::uint64_t EstimateBytes(const FrequentPattern& p) {
  return 64 + 8 * p.graph.num_vertices() + 16 * p.graph.num_edges() +
         p.code.size() + 4 * p.tids.size();
}

/// Builds the 1-edge pattern graph for an edge type.
LabeledGraph OneEdgePattern(const EdgeType& t, bool self_loop) {
  LabeledGraph g;
  const VertexId a = g.AddVertex(t.src_label);
  if (self_loop) {
    g.AddEdge(a, a, t.edge_label);
  } else {
    const VertexId b = g.AddVertex(t.dst_label);
    g.AddEdge(a, b, t.edge_label);
  }
  return g;
}

/// Removes edge `drop` from `g`, drops isolated vertices, and returns the
/// result; used for the downward-closure check.
LabeledGraph WithoutEdge(const LabeledGraph& g, EdgeId drop) {
  LabeledGraph copy = g;
  copy.RemoveEdge(drop);
  return copy.Compact(/*drop_isolated_vertices=*/true);
}

bool ContainsWithBudget(const LabeledGraph& pattern,
                        const LabeledGraph& transaction,
                        std::uint64_t max_steps) {
  iso::SubgraphMatcher matcher(pattern, transaction);
  iso::MatchOptions options;
  options.max_search_steps = max_steps;
  return matcher.Contains(options);
}

}  // namespace

FsgResult MineFsg(const std::vector<LabeledGraph>& transactions,
                  const FsgOptions& options) {
  TNMINE_TRACE_SPAN("fsg/mine");
  TNMINE_CHECK(options.min_support >= 1);
  TNMINE_COUNTER_ADD("fsg/runs_started", 1);
  FsgResult result;
  for (const LabeledGraph& t : transactions) {
    TNMINE_CHECK_MSG(t.IsDense(), "transactions must be dense");
  }

  // ---------------------------------------------------------------------
  // Level 1: frequent single-edge patterns by direct counting.
  std::map<std::pair<EdgeType, bool>, std::vector<std::uint32_t>> edge_tids;
  for (std::uint32_t tid = 0; tid < transactions.size(); ++tid) {
    const LabeledGraph& t = transactions[tid];
    std::set<std::pair<EdgeType, bool>> seen;
    t.ForEachEdge([&](EdgeId e) {
      const Edge& edge = t.edge(e);
      EdgeType type{t.vertex_label(edge.src), t.vertex_label(edge.dst),
                    edge.label};
      seen.insert({type, edge.src == edge.dst});
    });
    for (const auto& key : seen) edge_tids[key].push_back(tid);
  }
  result.candidates_per_level.push_back(edge_tids.size());

  std::vector<FrequentPattern> frontier;
  std::vector<EdgeType> frequent_edges;  // for extension generation
  std::set<EdgeType> frequent_edge_set;
  for (auto& [key, tids] : edge_tids) {
    if (tids.size() < options.min_support) continue;
    const auto& [type, self_loop] = key;
    FrequentPattern p;
    p.graph = OneEdgePattern(type, self_loop);
    p.tids = std::move(tids);
    p.support = p.tids.size();
    p.code = iso::CanonicalCodeCached(p.graph);
    frontier.push_back(std::move(p));
    if (frequent_edge_set.insert(type).second) {
      frequent_edges.push_back(type);
    }
  }
  result.frequent_per_level.push_back(frontier.size());
  result.levels_completed = 1;
  TNMINE_COUNTER_ADD("fsg/candidates_generated", edge_tids.size());
  TNMINE_COUNTER_ADD("fsg/patterns_frequent", frontier.size());

  std::uint64_t frontier_bytes = 0;
  for (const FrequentPattern& p : frontier) frontier_bytes +=
      EstimateBytes(p);
  result.peak_candidate_bytes = frontier_bytes;

  // Codes of all frequent patterns at the previous level, for the
  // downward-closure prune.
  std::unordered_set<std::string> previous_level_codes;
  for (const FrequentPattern& p : frontier) {
    previous_level_codes.insert(p.code);
  }

  for (const FrequentPattern& p : frontier) {
    result.patterns.push_back(p);
  }

  // ---------------------------------------------------------------------
  // Levels 2..: extend, dedup, prune, count.
  std::size_t level = 1;  // edges in current frontier patterns
  while (!frontier.empty() &&
         (options.max_edges == 0 || level < options.max_edges)) {
    ++level;
    // Candidate generation.
    struct Candidate {
      FrequentPattern pattern;            // support/tids empty until counted
      std::vector<std::uint32_t> parent_tids;
    };
    std::unordered_map<std::string, Candidate> candidates;
    std::uint64_t candidate_bytes = 0;
    bool oom = false;
    // Level-local telemetry, flushed once per level so the hot extension
    // loop stays free of atomics.
    std::uint64_t extensions_considered = 0;
    std::uint64_t pruned_closure = 0;

    TNMINE_TRACE_SPAN("fsg/level");
    for (const FrequentPattern& parent : frontier) {
      if (oom) break;
      const LabeledGraph& pg = parent.graph;
      auto consider = [&](LabeledGraph&& extended) {
        if (oom) return;
        ++extensions_considered;
        std::string code = iso::CanonicalCodeCached(extended);
        if (candidates.contains(code)) return;
        // Downward closure: every connected k-edge sub-pattern must be
        // frequent.
        bool prunable = false;
        const std::vector<EdgeId> live = extended.LiveEdges();
        for (EdgeId drop : live) {
          const LabeledGraph sub = WithoutEdge(extended, drop);
          if (!graph::IsWeaklyConnected(sub)) continue;  // not checkable
          if (!previous_level_codes.contains(iso::CanonicalCodeCached(sub))) {
            prunable = true;
            break;
          }
        }
        if (prunable) {
          ++pruned_closure;
          return;
        }
        Candidate c;
        c.pattern.graph = std::move(extended);
        c.pattern.code = code;
        c.parent_tids = parent.tids;
        candidate_bytes += EstimateBytes(c.pattern) +
                           4 * c.parent_tids.size();
        result.peak_candidate_bytes =
            std::max(result.peak_candidate_bytes,
                     frontier_bytes + candidate_bytes);
        if (options.max_candidate_bytes != 0 &&
            frontier_bytes + candidate_bytes > options.max_candidate_bytes) {
          oom = true;
          return;
        }
        candidates.emplace(std::move(code), std::move(c));
      };

      for (VertexId u = 0; u < pg.num_vertices(); ++u) {
        const Label lu = pg.vertex_label(u);
        for (const EdgeType& t : frequent_edges) {
          if (t.src_label == lu) {
            // u -> new vertex.
            {
              LabeledGraph ext = pg;
              const VertexId w = ext.AddVertex(t.dst_label);
              ext.AddEdge(u, w, t.edge_label);
              consider(std::move(ext));
            }
            // u -> existing vertex (including self-loop when labels
            // allow).
            for (VertexId w = 0; w < pg.num_vertices(); ++w) {
              if (pg.vertex_label(w) != t.dst_label) continue;
              LabeledGraph ext = pg;
              ext.AddEdge(u, w, t.edge_label);
              consider(std::move(ext));
            }
          }
          if (t.dst_label == lu) {
            // new vertex -> u. (existing -> u is covered by the outgoing
            // case at that existing vertex.)
            LabeledGraph ext = pg;
            const VertexId w = ext.AddVertex(t.src_label);
            ext.AddEdge(w, u, t.edge_label);
            consider(std::move(ext));
          }
          if (oom) break;
        }
        if (oom) break;
      }
    }
    result.candidates_per_level.push_back(candidates.size());
    TNMINE_COUNTER_ADD("fsg/extensions_considered", extensions_considered);
    TNMINE_COUNTER_ADD("fsg/candidates_pruned_closure", pruned_closure);
    TNMINE_COUNTER_ADD("fsg/candidates_generated", candidates.size());
    if (oom) {
      result.aborted_out_of_memory = true;
      break;
    }

    // Support counting against the generating parent's TID list. Each
    // candidate's containment checks are independent, so candidates are
    // counted on parallel lanes; sorting them by canonical code first
    // fixes the counting/output order deterministically (the hash-map
    // iteration order it replaces was implementation-defined).
    std::vector<Candidate> ordered;
    ordered.reserve(candidates.size());
    for (auto& [code, candidate] : candidates) {
      ordered.push_back(std::move(candidate));
    }
    std::sort(ordered.begin(), ordered.end(),
              [](const Candidate& a, const Candidate& b) {
                return a.pattern.code < b.pattern.code;
              });
    const std::vector<std::vector<std::uint32_t>> counted =
        common::ParallelMap<std::vector<std::uint32_t>>(
            options.parallelism, ordered.size(), [&](std::size_t c) {
              const FrequentPattern& p = ordered[c].pattern;
              const std::vector<std::uint32_t>& feasible =
                  ordered[c].parent_tids;
              std::vector<std::uint32_t> tids;
              std::uint64_t checks = 0;
              for (std::size_t i = 0; i < feasible.size(); ++i) {
                // Early abort when the remaining transactions cannot
                // reach min_support.
                if (tids.size() + (feasible.size() - i) <
                    options.min_support) {
                  break;
                }
                const std::uint32_t tid = feasible[i];
                ++checks;
                if (ContainsWithBudget(p.graph, transactions[tid],
                                       options.max_match_steps)) {
                  tids.push_back(tid);
                }
              }
              // One flush per candidate: the per-candidate check count is
              // scheduling-independent, so the total is too.
              TNMINE_COUNTER_ADD("fsg/support_checks", checks);
              return tids;
            });
    std::vector<FrequentPattern> next_frontier;
    for (std::size_t c = 0; c < ordered.size(); ++c) {
      if (counted[c].size() < options.min_support) continue;
      FrequentPattern& p = ordered[c].pattern;
      p.tids = counted[c];
      p.support = p.tids.size();
      next_frontier.push_back(std::move(p));
    }
    result.frequent_per_level.push_back(next_frontier.size());
    result.levels_completed = level;
    TNMINE_COUNTER_ADD("fsg/candidates_counted", ordered.size());
    TNMINE_COUNTER_ADD("fsg/patterns_frequent", next_frontier.size());

    previous_level_codes.clear();
    for (const FrequentPattern& p : next_frontier) {
      previous_level_codes.insert(p.code);
      result.patterns.push_back(p);
    }
    frontier = std::move(next_frontier);
    frontier_bytes = 0;
    for (const FrequentPattern& p : frontier) {
      frontier_bytes += EstimateBytes(p);
    }
  }
  return result;
}

}  // namespace tnmine::fsg
