#include "fsg/fsg.h"

#include <algorithm>
#include <map>
#include <set>
#include <tuple>
#include <unordered_map>
#include <unordered_set>

#include "common/budget.h"
#include "common/check.h"
#include "common/failpoint.h"
#include "common/telemetry.h"
#include "common/thread_pool.h"
#include "common/trace.h"
#include "graph/algorithms.h"
#include "graph/graph_view.h"
#include "iso/canonical.h"
#include "iso/vf2.h"

namespace tnmine::fsg {

using graph::Edge;
using graph::EdgeId;
using graph::Label;
using graph::LabeledGraph;
using graph::VertexId;
using pattern::FrequentPattern;

namespace {

/// A frequent-edge type: the building block for extensions.
struct EdgeType {
  Label src_label;
  Label dst_label;
  Label edge_label;

  auto operator<=>(const EdgeType&) const = default;
};

/// Rough per-pattern memory footprint used for the OOM budget.
std::uint64_t EstimateBytes(const FrequentPattern& p) {
  return 64 + 8 * p.graph.num_vertices() + 16 * p.graph.num_edges() +
         p.code.size() + 4 * p.tids.size();
}

/// Builds the 1-edge pattern graph for an edge type.
LabeledGraph OneEdgePattern(const EdgeType& t, bool self_loop) {
  LabeledGraph g;
  const VertexId a = g.AddVertex(t.src_label);
  if (self_loop) {
    g.AddEdge(a, a, t.edge_label);
  } else {
    const VertexId b = g.AddVertex(t.dst_label);
    g.AddEdge(a, b, t.edge_label);
  }
  return g;
}

/// Removes edge `drop` from `g`, drops isolated vertices, and returns the
/// result; used for the downward-closure check.
LabeledGraph WithoutEdge(const LabeledGraph& g, EdgeId drop) {
  LabeledGraph copy = g;
  copy.RemoveEdge(drop);
  return copy.Compact(/*drop_isolated_vertices=*/true);
}

}  // namespace

FsgResult MineFsg(const std::vector<LabeledGraph>& transactions,
                  const FsgOptions& options) {
  TNMINE_TRACE_SPAN("fsg/mine");
  TNMINE_CHECK(options.min_support >= 1);
  TNMINE_COUNTER_ADD("fsg/runs_started", 1);
  FsgResult result;
  for (const LabeledGraph& t : transactions) {
    TNMINE_CHECK_MSG(t.IsDense(), "transactions must be dense");
  }

  // One flat snapshot per transaction, shared read-only by all counting
  // lanes below.
  std::vector<graph::GraphView> views;
  views.reserve(transactions.size());
  for (const LabeledGraph& t : transactions) views.emplace_back(t);

  // Sequential tick ledger: level 1 and candidate generation run on the
  // calling thread, so charging them directly is deterministic. The
  // parallel counting phase is settled post hoc (see below).
  common::BudgetMeter meter(options.budget);

  // ---------------------------------------------------------------------
  // Level 1: frequent single-edge patterns by direct counting. A budget
  // stop here returns an empty (but honest) result: partially counted
  // level-1 supports would under-report and cannot be emitted as frequent.
  std::map<std::pair<EdgeType, bool>, std::vector<std::uint32_t>> edge_tids;
  for (std::uint32_t tid = 0; tid < transactions.size(); ++tid) {
    const graph::GraphView& t = views[tid];
    const common::MiningOutcome stop = meter.Charge(1 + t.num_edges());
    if (stop != common::MiningOutcome::kComplete) {
      result.outcome = stop;
      result.work_ticks = meter.ticks_spent();
      common::RecordOutcome("fsg", result.outcome);
      return result;
    }
    // The view's edge-type index is exactly the distinct live edge types
    // of the transaction, in the order the former per-transaction
    // std::set produced them.
    for (std::size_t type = 0; type < t.NumEdgeTypes(); ++type) {
      const graph::GraphView::EdgeTypeKey& key = t.EdgeTypeAt(type);
      edge_tids[{EdgeType{key.src_label, key.dst_label, key.edge_label},
                 key.self_loop}]
          .push_back(tid);
    }
  }
  result.candidates_per_level.push_back(edge_tids.size());

  std::vector<FrequentPattern> frontier;
  std::vector<EdgeType> frequent_edges;  // for extension generation
  std::set<EdgeType> frequent_edge_set;
  for (auto& [key, tids] : edge_tids) {
    if (tids.size() < options.min_support) continue;
    const auto& [type, self_loop] = key;
    FrequentPattern p;
    p.graph = OneEdgePattern(type, self_loop);
    p.tids = std::move(tids);
    p.support = p.tids.size();
    p.code = iso::CanonicalCodeCached(p.graph);
    frontier.push_back(std::move(p));
    if (frequent_edge_set.insert(type).second) {
      frequent_edges.push_back(type);
    }
  }
  result.frequent_per_level.push_back(frontier.size());
  result.levels_completed = 1;
  TNMINE_COUNTER_ADD("fsg/candidates_generated", edge_tids.size());
  TNMINE_COUNTER_ADD("fsg/patterns_frequent", frontier.size());

  std::uint64_t frontier_bytes = 0;
  for (const FrequentPattern& p : frontier) frontier_bytes +=
      EstimateBytes(p);
  result.peak_candidate_bytes = frontier_bytes;

  // Codes of all frequent patterns at the previous level, for the
  // downward-closure prune.
  std::unordered_set<std::string> previous_level_codes;
  for (const FrequentPattern& p : frontier) {
    previous_level_codes.insert(p.code);
  }

  for (const FrequentPattern& p : frontier) {
    result.patterns.push_back(p);
  }

  // ---------------------------------------------------------------------
  // Levels 2..: extend, dedup, prune, count.
  std::size_t level = 1;  // edges in current frontier patterns
  while (!frontier.empty() &&
         (options.max_edges == 0 || level < options.max_edges)) {
    ++level;
    // Candidate generation.
    struct Candidate {
      FrequentPattern pattern;            // support/tids empty until counted
      std::vector<std::uint32_t> parent_tids;
    };
    std::unordered_map<std::string, Candidate> candidates;
    std::uint64_t candidate_bytes = 0;
    bool oom = false;
    common::MiningOutcome level_outcome = common::MiningOutcome::kComplete;
    // Bytes charged against the shared memory ceiling for this level's
    // candidate set, released when the level's scope ends (break or not).
    std::uint64_t level_charged = 0;
    struct MemRelease {
      const common::ResourceBudget* budget;
      const std::uint64_t* bytes;
      ~MemRelease() { budget->ReleaseMemory(*bytes); }
    } release{&options.budget, &level_charged};
    // Level-local telemetry, flushed once per level so the hot extension
    // loop stays free of atomics.
    std::uint64_t extensions_considered = 0;
    std::uint64_t pruned_closure = 0;

    TNMINE_TRACE_SPAN("fsg/level");
    try {
      for (const FrequentPattern& parent : frontier) {
        if (oom || level_outcome != common::MiningOutcome::kComplete) break;
        const LabeledGraph& pg = parent.graph;
        auto consider = [&](LabeledGraph&& extended) {
          if (oom || level_outcome != common::MiningOutcome::kComplete) {
            return;
          }
          (void)TNMINE_FAILPOINT("fsg/consider");
          ++extensions_considered;
          // One tick per extension plus one per edge covers the canonical
          // code and closure checks; all of it runs sequentially, so the
          // ledger is deterministic.
          const common::MiningOutcome stop =
              meter.Charge(1 + extended.num_edges());
          if (stop != common::MiningOutcome::kComplete) {
            level_outcome = stop;
            return;
          }
          std::string code = iso::CanonicalCodeCached(extended);
          if (candidates.contains(code)) return;
          // Downward closure: every connected k-edge sub-pattern must be
          // frequent.
          bool prunable = false;
          const std::vector<EdgeId> live = extended.LiveEdges();
          for (EdgeId drop : live) {
            const LabeledGraph sub = WithoutEdge(extended, drop);
            if (!graph::IsWeaklyConnected(sub)) continue;  // not checkable
            if (!previous_level_codes.contains(iso::CanonicalCodeCached(sub))) {
              prunable = true;
              break;
            }
          }
          if (prunable) {
            ++pruned_closure;
            return;
          }
          Candidate c;
          c.pattern.graph = std::move(extended);
          c.pattern.code = code;
          c.parent_tids = parent.tids;
          const std::uint64_t delta =
              EstimateBytes(c.pattern) + 4 * c.parent_tids.size();
          candidate_bytes += delta;
          result.peak_candidate_bytes =
              std::max(result.peak_candidate_bytes,
                       frontier_bytes + candidate_bytes);
          if (options.max_candidate_bytes != 0 &&
              frontier_bytes + candidate_bytes > options.max_candidate_bytes) {
            oom = true;
            return;
          }
          if (!options.budget.TryChargeMemory(delta)) {
            oom = true;
            return;
          }
          level_charged += delta;
          candidates.emplace(std::move(code), std::move(c));
        };

        for (VertexId u = 0; u < pg.num_vertices(); ++u) {
          const Label lu = pg.vertex_label(u);
          for (const EdgeType& t : frequent_edges) {
            if (t.src_label == lu) {
              // u -> new vertex.
              {
                LabeledGraph ext = pg;
                const VertexId w = ext.AddVertex(t.dst_label);
                ext.AddEdge(u, w, t.edge_label);
                consider(std::move(ext));
              }
              // u -> existing vertex (including self-loop when labels
              // allow).
              for (VertexId w = 0; w < pg.num_vertices(); ++w) {
                if (pg.vertex_label(w) != t.dst_label) continue;
                LabeledGraph ext = pg;
                ext.AddEdge(u, w, t.edge_label);
                consider(std::move(ext));
              }
            }
            if (t.dst_label == lu) {
              // new vertex -> u. (existing -> u is covered by the outgoing
              // case at that existing vertex.)
              LabeledGraph ext = pg;
              const VertexId w = ext.AddVertex(t.src_label);
              ext.AddEdge(w, u, t.edge_label);
              consider(std::move(ext));
            }
            if (oom || level_outcome != common::MiningOutcome::kComplete) {
              break;
            }
          }
          if (oom || level_outcome != common::MiningOutcome::kComplete) {
            break;
          }
        }
      }
    } catch (const std::bad_alloc&) {
      // Allocation failure (real or injected) while building the level's
      // candidate set: degrade exactly like the candidate-byte ceiling.
      oom = true;
    }
    result.candidates_per_level.push_back(candidates.size());
    TNMINE_COUNTER_ADD("fsg/extensions_considered", extensions_considered);
    TNMINE_COUNTER_ADD("fsg/candidates_pruned_closure", pruned_closure);
    TNMINE_COUNTER_ADD("fsg/candidates_generated", candidates.size());
    if (oom) {
      result.aborted_out_of_memory = true;
      result.outcome = common::CombineOutcomes(
          result.outcome, common::MiningOutcome::kMemoryBudgetExceeded);
      break;
    }
    if (level_outcome != common::MiningOutcome::kComplete) {
      // Budget stop mid-generation: the level's candidate set is partial,
      // so none of it can be honestly counted. Keep completed levels.
      result.outcome = common::CombineOutcomes(result.outcome, level_outcome);
      break;
    }

    // Support counting against the generating parent's TID list. Each
    // candidate's containment checks are independent, so candidates are
    // counted on parallel lanes; sorting them by canonical code first
    // fixes the counting/output order deterministically (the hash-map
    // iteration order it replaces was implementation-defined).
    std::vector<Candidate> ordered;
    ordered.reserve(candidates.size());
    for (auto& [code, candidate] : candidates) {
      ordered.push_back(std::move(candidate));
    }
    std::sort(ordered.begin(), ordered.end(),
              [](const Candidate& a, const Candidate& b) {
                return a.pattern.code < b.pattern.code;
              });
    struct CountResult {
      std::vector<std::uint32_t> tids;
      std::uint64_t checks = 0;
      common::MiningOutcome aborted = common::MiningOutcome::kComplete;
    };
    const std::vector<CountResult> counted =
        common::ParallelMap<CountResult>(
            options.parallelism, ordered.size(), [&](std::size_t c) {
              CountResult out;
              // Shared stop conditions (cancel/deadline/memory trip) are
              // honored per candidate; tick truncation is settled
              // deterministically after the map, below.
              out.aborted = options.budget.StopReason();
              if (out.aborted != common::MiningOutcome::kComplete) {
                return out;
              }
              const FrequentPattern& p = ordered[c].pattern;
              const std::vector<std::uint32_t>& feasible =
                  ordered[c].parent_tids;
              try {
                (void)TNMINE_FAILPOINT("fsg/count");
                // One search plan per candidate, reused across every
                // feasible transaction view (the former code rebuilt the
                // matcher per containment check).
                iso::SubgraphMatcher matcher(p.graph);
                iso::MatchOptions match_options;
                match_options.max_search_steps = options.max_match_steps;
                for (std::size_t i = 0; i < feasible.size(); ++i) {
                  // Early abort when the remaining transactions cannot
                  // reach min_support.
                  if (out.tids.size() + (feasible.size() - i) <
                      options.min_support) {
                    break;
                  }
                  const std::uint32_t tid = feasible[i];
                  ++out.checks;
                  if (matcher.Contains(views[tid], match_options)) {
                    out.tids.push_back(tid);
                  }
                }
              } catch (const std::bad_alloc&) {
                out.aborted = common::MiningOutcome::kMemoryBudgetExceeded;
                out.tids.clear();
              }
              // One flush per candidate: the per-candidate check count is
              // scheduling-independent, so the total is too.
              TNMINE_COUNTER_ADD("fsg/support_checks", out.checks);
              return out;
            });
    // Settle the parallel phase against the tick ledger in sorted
    // candidate order. Each candidate's check count is a deterministic
    // function of the candidate alone, so the prefix that fits the
    // remaining allotment — and therefore the emitted pattern set — is
    // identical at any thread count.
    std::vector<FrequentPattern> next_frontier;
    for (std::size_t c = 0; c < ordered.size(); ++c) {
      if (counted[c].aborted != common::MiningOutcome::kComplete) {
        level_outcome =
            common::CombineOutcomes(level_outcome, counted[c].aborted);
        continue;
      }
      const common::MiningOutcome stop =
          meter.Charge(counted[c].checks > 0 ? counted[c].checks : 1);
      if (stop != common::MiningOutcome::kComplete) {
        level_outcome = common::CombineOutcomes(level_outcome, stop);
        break;
      }
      if (counted[c].tids.size() < options.min_support) continue;
      FrequentPattern& p = ordered[c].pattern;
      p.tids = counted[c].tids;
      p.support = p.tids.size();
      next_frontier.push_back(std::move(p));
    }
    result.frequent_per_level.push_back(next_frontier.size());
    TNMINE_COUNTER_ADD("fsg/candidates_counted", ordered.size());
    TNMINE_COUNTER_ADD("fsg/patterns_frequent", next_frontier.size());

    previous_level_codes.clear();
    for (const FrequentPattern& p : next_frontier) {
      previous_level_codes.insert(p.code);
      result.patterns.push_back(p);
    }
    if (level_outcome != common::MiningOutcome::kComplete) {
      // The level was truncated: its surviving prefix is emitted above
      // (every pattern in it was fully counted), but the frontier is
      // incomplete, so deeper levels cannot be mined honestly.
      result.outcome = common::CombineOutcomes(result.outcome, level_outcome);
      break;
    }
    result.levels_completed = level;
    frontier = std::move(next_frontier);
    frontier_bytes = 0;
    for (const FrequentPattern& p : frontier) {
      frontier_bytes += EstimateBytes(p);
    }
  }
  result.work_ticks = meter.ticks_spent();
  common::RecordOutcome("fsg", result.outcome);
  return result;
}

}  // namespace tnmine::fsg
