#include "fsg/fsg.h"

#include <algorithm>
#include <array>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <tuple>
#include <unordered_map>
#include <unordered_set>

#include "common/budget.h"
#include "common/check.h"
#include "common/failpoint.h"
#include "common/telemetry.h"
#include "common/thread_pool.h"
#include "common/trace.h"
#include "graph/algorithms.h"
#include "graph/graph_view.h"
#include "graph/transaction_source.h"
#include "iso/canonical.h"
#include "iso/vf2.h"
#include "pattern/tid_set.h"

namespace tnmine::fsg {

using graph::Edge;
using graph::EdgeId;
using graph::Label;
using graph::LabeledGraph;
using graph::VertexId;
using pattern::FrequentPattern;
using pattern::TidSet;

namespace {

/// A frequent-edge type: the building block for extensions.
struct EdgeType {
  Label src_label;
  Label dst_label;
  Label edge_label;

  auto operator<=>(const EdgeType&) const = default;
};

/// Per-pattern memory footprint used for the OOM budget. The TID set
/// reports its exact heap footprint (DESIGN.md §12); the rest stays a
/// structural estimate.
std::uint64_t EstimateBytes(const FrequentPattern& p) {
  return 64 + 8 * p.graph.num_vertices() + 16 * p.graph.num_edges() +
         p.code.size() + p.tids.MemoryBytes();
}

/// Builds the 1-edge pattern graph for an edge type.
LabeledGraph OneEdgePattern(const EdgeType& t, bool self_loop) {
  LabeledGraph g;
  const VertexId a = g.AddVertex(t.src_label);
  if (self_loop) {
    g.AddEdge(a, a, t.edge_label);
  } else {
    const VertexId b = g.AddVertex(t.dst_label);
    g.AddEdge(a, b, t.edge_label);
  }
  return g;
}

/// Removes edge `drop` from `g`, drops isolated vertices, and returns the
/// result; used for the downward-closure check.
LabeledGraph WithoutEdge(const LabeledGraph& g, EdgeId drop) {
  LabeledGraph copy = g;
  copy.RemoveEdge(drop);
  return copy.Compact(/*drop_isolated_vertices=*/true);
}

/// Role of vertex v in edge e: 0 = source, 1 = destination, 2 = both
/// (self-loop).
std::uint32_t RoleOf(const Edge& e, VertexId v) {
  if (e.src == v && e.dst == v) return 2;
  return e.src == v ? 0 : 1;
}

void AppendU32(std::string* out, std::uint32_t x) {
  out->append(reinterpret_cast<const char*>(&x), sizeof(x));
}

/// Serializes the adjacent edge pair (first, second) of `g` in that edge
/// order: both edge types, then the shared-vertex descriptors (label,
/// role in first, role in second), sorted. Works on any graph type with
/// edge(e) and vertex_label(v) — LabeledGraph for candidate patterns,
/// GraphView for transactions read through a TransactionSource.
template <typename G>
void AppendWedgeOrdering(const G& g, EdgeId first, EdgeId second,
                         std::string* out) {
  out->clear();
  const Edge& a = g.edge(first);
  const Edge& b = g.edge(second);
  for (const Edge* e : {&a, &b}) {
    AppendU32(out, static_cast<std::uint32_t>(g.vertex_label(e->src)));
    AppendU32(out, static_cast<std::uint32_t>(g.vertex_label(e->dst)));
    AppendU32(out, static_cast<std::uint32_t>(e->label));
    AppendU32(out, e->src == e->dst ? 1 : 0);
  }
  std::array<std::array<std::uint32_t, 3>, 2> desc;
  std::size_t n = 0;
  const VertexId ends[2] = {a.src, a.dst};
  for (int i = 0; i < (a.src == a.dst ? 1 : 2); ++i) {
    const VertexId v = ends[i];
    if (b.src == v || b.dst == v) {
      desc[n++] = {static_cast<std::uint32_t>(g.vertex_label(v)),
                   RoleOf(a, v), RoleOf(b, v)};
    }
  }
  if (n == 2 && desc[1] < desc[0]) std::swap(desc[0], desc[1]);
  AppendU32(out, static_cast<std::uint32_t>(n));
  for (std::size_t i = 0; i < n; ++i) {
    for (const std::uint32_t x : desc[i]) AppendU32(out, x);
  }
}

/// Canonical signature of the connected 2-edge subgraph {e1, e2} (the
/// edges must share at least one vertex): two such subgraphs get equal
/// signatures iff they are isomorphic. The two edge orderings are
/// serialized into the caller's buffers and the lexicographic minimum is
/// returned (covers the swap ambiguity when both edges have the same
/// type). This is what makes exact level-2 support counting from the
/// per-transaction wedge index possible — see DESIGN.md §12.
template <typename G>
const std::string& WedgeSignature(const G& g, EdgeId e1, EdgeId e2,
                                  std::string* buf_a, std::string* buf_b) {
  AppendWedgeOrdering(g, e1, e2, buf_a);
  AppendWedgeOrdering(g, e2, e1, buf_b);
  return *buf_a < *buf_b ? *buf_a : *buf_b;
}

/// Exact isomorphism test for the tiny dense pattern graphs extension
/// dedup compares: tries every label-respecting vertex bijection and
/// matches the translated edge multiset. Callers bucket by
/// iso::InvariantHash first, so inputs already agree on counts and
/// degrees; past a handful of vertices it falls back to canonical codes
/// instead of enumerating permutations.
bool SmallGraphsIsomorphic(const LabeledGraph& a, const LabeledGraph& b) {
  const std::size_t n = a.num_vertices();
  if (n != b.num_vertices() || a.num_edges() != b.num_edges()) return false;
  if (n > 8) {
    return iso::CanonicalCodeCached(a) == iso::CanonicalCodeCached(b);
  }
  std::vector<std::tuple<VertexId, VertexId, Label>> b_edges;
  b_edges.reserve(b.num_edges());
  b.ForEachEdge([&](EdgeId e) {
    const Edge& ed = b.edge(e);
    b_edges.emplace_back(ed.src, ed.dst, ed.label);
  });
  std::sort(b_edges.begin(), b_edges.end());
  std::vector<VertexId> perm(n);
  for (std::size_t v = 0; v < n; ++v) perm[v] = static_cast<VertexId>(v);
  std::vector<std::tuple<VertexId, VertexId, Label>> mapped;
  mapped.reserve(a.num_edges());
  do {
    bool labels_ok = true;
    for (std::size_t v = 0; v < n; ++v) {
      if (a.vertex_label(static_cast<VertexId>(v)) !=
          b.vertex_label(perm[v])) {
        labels_ok = false;
        break;
      }
    }
    if (!labels_ok) continue;
    mapped.clear();
    a.ForEachEdge([&](EdgeId e) {
      const Edge& ed = a.edge(e);
      mapped.emplace_back(perm[ed.src], perm[ed.dst], ed.label);
    });
    std::sort(mapped.begin(), mapped.end());
    if (mapped == b_edges) return true;
  } while (std::next_permutation(perm.begin(), perm.end()));
  return false;
}

}  // namespace

FsgResult MineFsg(const std::vector<LabeledGraph>& transactions,
                  const FsgOptions& options) {
  for (const LabeledGraph& t : transactions) {
    TNMINE_CHECK_MSG(t.IsDense(), "transactions must be dense");
  }
  // One flat snapshot per transaction, presented as a single in-memory
  // shard; the source-based core below does all the mining. Keeping the
  // two overloads on one code path is what makes the byte-identity
  // contract between the in-RAM and out-of-core runs checkable.
  std::vector<graph::GraphView> views;
  views.reserve(transactions.size());
  for (const LabeledGraph& t : transactions) views.emplace_back(t);
  graph::InMemoryTransactionSource source(std::move(views));
  return MineFsg(source, options);
}

FsgResult MineFsg(graph::TransactionSource& source,
                  const FsgOptions& raw_options) {
  TNMINE_TRACE_SPAN("fsg/mine");
  TNMINE_COUNTER_ADD("fsg/runs_started", 1);
  // min_support = 0 means the same as 1 (see FsgOptions): clamp once so
  // every comparison below shares the contract with gSpan.
  FsgOptions options = raw_options;
  options.min_support = std::max<std::size_t>(1, options.min_support);
  FsgResult result;
  const auto universe = static_cast<std::uint32_t>(source.num_transactions());

  // Sequential tick ledger: level 1 and candidate generation run on the
  // calling thread, so charging them directly is deterministic. The
  // parallel counting phase is settled post hoc (see below).
  common::BudgetMeter meter(options.budget);

  // ---------------------------------------------------------------------
  // Level 1: frequent single-edge patterns by direct counting, gathered
  // one shard at a time: each shard accumulates shard-local TID lists
  // (ids relative to the shard base) which are then spliced into the
  // global sets with TidSet::SpliceUnion at the shard's base. Shards are
  // visited in ascending base order, so every splice takes the pure
  // append path and the global sets come out identical to a flat
  // single-pass build — at any shard cut. A budget stop here returns an
  // empty (but honest) result: partially counted level-1 supports would
  // under-report and cannot be emitted as frequent.
  std::map<std::pair<EdgeType, bool>, TidSet> edge_sets;
  // Transactions with at least k (2 <= k <= kMaxTypeMult) edges of a
  // type: a candidate using a type m > 1 times can only live where the
  // type occurs >= m times, and these sets are far smaller than the
  // plain presence sets. Capped at kMaxTypeMult (higher multiplicities
  // fall back to the >= kMaxTypeMult set — weaker but still exact).
  constexpr std::uint32_t kMaxTypeMult = 4;
  std::map<std::tuple<EdgeType, bool, std::uint32_t>, TidSet> mult_sets;
  // Wedge index: for every adjacent edge pair of every transaction, the
  // pair's canonical signature is recorded once per transaction. Because
  // the signature identifies a connected 2-edge pattern up to
  // isomorphism, a signature's TID list is the exact support set of that
  // pattern — level 2 is counted from this index with no VF2 at all.
  std::map<std::string, TidSet> wedge_sets;
  // Shard-local scratch, cleared per shard.
  std::map<std::pair<EdgeType, bool>, std::vector<std::uint32_t>> local_edge;
  std::map<std::tuple<EdgeType, bool, std::uint32_t>,
           std::vector<std::uint32_t>>
      local_mult;
  std::map<std::string, std::vector<std::uint32_t>> local_wedge;
  std::vector<std::vector<EdgeId>> incident;
  std::unordered_set<std::string> txn_sigs;
  std::string sig_a;
  std::string sig_b;
  common::MiningOutcome level1_stop = common::MiningOutcome::kComplete;
  try {
    for (std::size_t s = 0; s < source.num_shards(); ++s) {
      const graph::ShardRef shard = source.Pin(s);
      const auto shard_size = static_cast<std::uint32_t>(shard.views.size());
      local_edge.clear();
      local_mult.clear();
      local_wedge.clear();
      for (std::uint32_t i = 0; i < shard_size; ++i) {
        const graph::GraphView& t = shard.views[i];
        level1_stop = meter.Charge(1 + t.num_edges());
        if (level1_stop != common::MiningOutcome::kComplete) break;
        // The view's edge-type index is exactly the distinct live edge
        // types of the transaction in sorted-key order, and each type's
        // edge list length is its multiplicity — the per-transaction
        // std::map the in-RAM build used produced the same sequence.
        for (std::size_t type = 0; type < t.NumEdgeTypes(); ++type) {
          const graph::GraphView::EdgeTypeKey& key = t.EdgeTypeAt(type);
          const EdgeType et{key.src_label, key.dst_label, key.edge_label};
          local_edge[{et, key.self_loop}].push_back(i);
          const auto count =
              static_cast<std::uint32_t>(t.EdgesOfType(type).size());
          for (std::uint32_t k = 2; k <= std::min(count, kMaxTypeMult); ++k) {
            local_mult[{et, key.self_loop, k}].push_back(i);
          }
        }
        if (incident.size() < t.num_vertices()) {
          incident.resize(t.num_vertices());
        }
        for (VertexId v = 0; v < t.num_vertices(); ++v) incident[v].clear();
        for (EdgeId e = 0; e < t.edge_capacity(); ++e) {
          if (!t.edge_alive(e)) continue;
          const Edge& edge = t.edge(e);
          incident[edge.src].push_back(e);
          if (edge.dst != edge.src) incident[edge.dst].push_back(e);
        }
        // Every adjacent pair is visited at each shared vertex; pairs
        // sharing two vertices come up twice and the per-transaction
        // signature set collapses the duplicates (presence is all the
        // index stores).
        txn_sigs.clear();
        for (VertexId v = 0; v < t.num_vertices(); ++v) {
          const std::vector<EdgeId>& at_v = incident[v];
          for (std::size_t a = 0; a + 1 < at_v.size(); ++a) {
            for (std::size_t b = a + 1; b < at_v.size(); ++b) {
              const std::string& sig =
                  WedgeSignature(t, at_v[a], at_v[b], &sig_a, &sig_b);
              if (txn_sigs.insert(sig).second) {
                local_wedge[sig].push_back(i);
              }
            }
          }
        }
      }
      if (level1_stop != common::MiningOutcome::kComplete) break;
      // Merge this shard's lists into the global sets at the shard base.
      for (auto& [key, tids] : local_edge) {
        edge_sets[key].SpliceUnion(
            TidSet::FromSorted(std::move(tids), shard_size), shard.base);
      }
      for (auto& [key, tids] : local_mult) {
        mult_sets[key].SpliceUnion(
            TidSet::FromSorted(std::move(tids), shard_size), shard.base);
      }
      for (auto& [sig, tids] : local_wedge) {
        wedge_sets[sig].SpliceUnion(
            TidSet::FromSorted(std::move(tids), shard_size), shard.base);
      }
    }
  } catch (const std::bad_alloc&) {
    // A shard pin that could not fit the memory ceiling even after
    // evicting everything else. Level 1 is incomplete, so nothing can be
    // emitted honestly.
    level1_stop = common::MiningOutcome::kMemoryBudgetExceeded;
    result.aborted_out_of_memory = true;
  }
  if (level1_stop != common::MiningOutcome::kComplete) {
    result.outcome = level1_stop;
    result.work_ticks = meter.ticks_spent();
    common::RecordOutcome("fsg", result.outcome);
    return result;
  }
  // The level-1 index lives for the whole mine: every observed edge
  // type's TID set (frequent or not) is retained so candidate generation
  // can intersect a join parent's set with the added edge type's set — a
  // necessary containment condition that shrinks the feasible set before
  // any VF2 call (DESIGN.md §12). Rebuilding each accumulated set through
  // FromSorted pins its universe to the full transaction count and its
  // heap footprint to a deterministic function of its contents, shard cut
  // notwithstanding.
  std::map<std::pair<EdgeType, bool>, std::shared_ptr<const TidSet>>
      type_tids;
  for (auto& [key, set] : edge_sets) {
    type_tids.emplace(key, std::make_shared<const TidSet>(TidSet::FromSorted(
                               set.ToVector(), universe)));
  }
  edge_sets.clear();
  std::map<std::tuple<EdgeType, bool, std::uint32_t>,
           std::shared_ptr<const TidSet>>
      mult_tids;
  for (auto& [key, set] : mult_sets) {
    mult_tids.emplace(key, std::make_shared<const TidSet>(TidSet::FromSorted(
                               set.ToVector(), universe)));
  }
  mult_sets.clear();
  std::map<std::string, std::shared_ptr<const TidSet>> wedge_tids;
  for (auto& [sig, set] : wedge_sets) {
    wedge_tids.emplace(sig, std::make_shared<const TidSet>(TidSet::FromSorted(
                                set.ToVector(), universe)));
  }
  wedge_sets.clear();
  const auto empty_tids = std::make_shared<const TidSet>();
  result.candidates_per_level.push_back(type_tids.size());

  std::vector<FrequentPattern> frontier;
  std::vector<EdgeType> frequent_edges;  // for extension generation
  std::set<EdgeType> frequent_edge_set;
  for (const auto& [key, set] : type_tids) {
    if (set->Cardinality() < options.min_support) continue;
    const auto& [type, self_loop] = key;
    FrequentPattern p;
    p.graph = OneEdgePattern(type, self_loop);
    p.tids = *set;
    p.support = p.tids.Cardinality();
    p.code = iso::CanonicalCodeCached(p.graph);
    frontier.push_back(std::move(p));
    if (frequent_edge_set.insert(type).second) {
      frequent_edges.push_back(type);
    }
  }
  result.frequent_per_level.push_back(frontier.size());
  result.levels_completed = 1;
  TNMINE_COUNTER_ADD("fsg/candidates_generated", type_tids.size());
  TNMINE_COUNTER_ADD("fsg/patterns_frequent", frontier.size());

  std::uint64_t type_index_bytes = 0;
  for (const auto& [key, set] : type_tids) {
    type_index_bytes += set->MemoryBytes();
  }
  for (const auto& [key, set] : mult_tids) {
    type_index_bytes += set->MemoryBytes();
  }
  for (const auto& [sig, set] : wedge_tids) {
    type_index_bytes += sig.size() + set->MemoryBytes();
  }

  // TID sets of all frequent patterns at the previous level, keyed by
  // canonical code. Serves the downward-closure prune (membership) and
  // the feasibility intersection (each frequent k-edge sub-pattern's set
  // is a superset of the candidate's support). Shared immutably with the
  // candidates that reference them.
  std::unordered_map<std::string, std::shared_ptr<const TidSet>>
      previous_level_tids;
  // When the previous level holds 2-edge patterns, the same sets keyed
  // by wedge signature: 3-edge extensions then run their closure checks
  // without building sub-graphs or canonical codes.
  std::unordered_map<std::string, std::shared_ptr<const TidSet>>
      previous_level_sigs;
  auto rebuild_previous = [&](const std::vector<FrequentPattern>& fr) {
    previous_level_tids.clear();
    previous_level_sigs.clear();
    std::string buf_a;
    std::string buf_b;
    for (const FrequentPattern& p : fr) {
      auto set = std::make_shared<const TidSet>(p.tids);
      previous_level_tids.emplace(p.code, set);
      if (p.graph.num_edges() == 2) {
        previous_level_sigs.emplace(
            WedgeSignature(p.graph, EdgeId{0}, EdgeId{1}, &buf_a, &buf_b),
            std::move(set));
      }
    }
  };
  rebuild_previous(frontier);

  auto retained_bytes = [&] {
    std::uint64_t bytes = type_index_bytes;
    for (const FrequentPattern& p : frontier) bytes += EstimateBytes(p);
    for (const auto& [code, set] : previous_level_tids) {
      bytes += set->MemoryBytes();
    }
    return bytes;
  };
  std::uint64_t frontier_bytes = retained_bytes();
  result.peak_candidate_bytes = frontier_bytes;

  for (const FrequentPattern& p : frontier) {
    result.patterns.push_back(p);
  }

  // ---------------------------------------------------------------------
  // Levels 2..: extend, dedup, prune, count.
  std::size_t level = 1;  // edges in current frontier patterns
  while (!frontier.empty() &&
         (options.max_edges == 0 || level < options.max_edges)) {
    ++level;
    // Candidate generation.
    struct Candidate {
      FrequentPattern pattern;  // support/tids empty until counted
      // Transactions that can possibly contain the pattern: the join
      // parent's TID set intersected with the added edge type's level-1
      // set and every frequent sub-pattern's set. Shared immutably —
      // when the intersection does not shrink the parent's set, all of
      // the parent's candidates share one copy.
      std::shared_ptr<const TidSet> feasible;
      // True when `feasible` is the candidate's exact support set (the
      // level-2 wedge lookup) rather than an upper bound; counting then
      // takes the set as-is and skips VF2 entirely.
      bool feasible_exact = false;
    };
    std::unordered_map<std::string, Candidate> candidates;
    // Isomorphism classes of 2-edge extensions already seen this level,
    // keyed by wedge signature; dedup happens here so duplicates never
    // reach the canonical-code cache.
    std::unordered_set<std::string> level2_seen;
    // Same idea for 3+ edge extensions: representatives of the classes
    // already considered, bucketed by invariant hash.
    std::unordered_map<std::uint64_t, std::vector<LabeledGraph>> ext_classes;
    std::uint64_t candidate_bytes = 0;
    bool oom = false;
    common::MiningOutcome level_outcome = common::MiningOutcome::kComplete;
    // Bytes charged against the shared memory ceiling for this level's
    // candidate set, released when the level's scope ends (break or not).
    std::uint64_t level_charged = 0;
    struct MemRelease {
      const common::ResourceBudget* budget;
      const std::uint64_t* bytes;
      ~MemRelease() { budget->ReleaseMemory(*bytes); }
    } release{&options.budget, &level_charged};
    // Level-local telemetry, flushed once per level so the hot extension
    // loop stays free of atomics.
    std::uint64_t extensions_considered = 0;
    std::uint64_t pruned_closure = 0;
    std::uint64_t pruned_by_join = 0;

    TNMINE_TRACE_SPAN("fsg/level");
    try {
      TNMINE_TRACE_SPAN("fsg/generate");
      for (const FrequentPattern& parent : frontier) {
        if (oom || level_outcome != common::MiningOutcome::kComplete) break;
        const LabeledGraph& pg = parent.graph;
        // Lazily created shared copy of the parent's TID set, handed to
        // every candidate whose feasibility intersection removes nothing
        // (charged against the memory budget once, not per candidate).
        std::shared_ptr<const TidSet> parent_shared;
        std::vector<std::shared_ptr<const TidSet>> sub_sets;
        std::map<std::pair<EdgeType, bool>, std::uint32_t> cand_type_counts;
        std::string sig_a;
        std::string sig_b;
        std::string parent_sig;
        if (pg.num_edges() == 2) {
          parent_sig = WedgeSignature(pg, EdgeId{0}, EdgeId{1}, &sig_a, &sig_b);
        }
        auto consider = [&](LabeledGraph&& extended, const EdgeType& t,
                            bool self_loop) {
          if (oom || level_outcome != common::MiningOutcome::kComplete) {
            return;
          }
          (void)TNMINE_FAILPOINT("fsg/consider");
          ++extensions_considered;
          // One tick per extension plus one per edge covers the canonical
          // code and closure checks; all of it runs sequentially, so the
          // ledger is deterministic.
          const common::MiningOutcome stop =
              meter.Charge(1 + extended.num_edges());
          if (stop != common::MiningOutcome::kComplete) {
            level_outcome = stop;
            return;
          }
          std::string code;
          std::shared_ptr<const TidSet> feasible;
          bool feasible_exact = false;
          std::uint64_t tid_bytes = 0;
          const std::size_t parent_card = parent.tids.Cardinality();
          if (extended.num_edges() == 2) {
            // Level 2 runs entirely off the level-1 indexes. The wedge
            // signature names the candidate's isomorphism class, so it
            // dedups isomorphic extensions before any canonical-code
            // work (isomorphic extensions serialize differently, and
            // each distinct serialization would pay a full canonical
            // search); the retained edge's level-1 frequency is the
            // whole downward-closure check; and the signature's TID set
            // is the exact support set, inside the parent's by
            // anti-monotonicity (DESIGN.md §12).
            const std::string& sig = WedgeSignature(
                extended, EdgeId{0}, EdgeId{1}, &sig_a, &sig_b);
            if (!level2_seen.insert(sig).second) return;  // isomorphic dup
            const Edge& kept = extended.edge(EdgeId{0});
            const auto kept_it = type_tids.find(
                {EdgeType{extended.vertex_label(kept.src),
                          extended.vertex_label(kept.dst), kept.label},
                 kept.src == kept.dst});
            if (kept_it == type_tids.end() ||
                kept_it->second->Cardinality() < options.min_support) {
              ++pruned_closure;
              return;
            }
            const auto wit = wedge_tids.find(sig);
            feasible = wit == wedge_tids.end() ? empty_tids : wit->second;
            feasible_exact = true;
            pruned_by_join += parent_card - feasible->Cardinality();
            if (feasible->Cardinality() < options.min_support) {
              // The set is exact, so the candidate is already known
              // infrequent: dropping it here also skips its canonical
              // code entirely.
              return;
            }
            code = iso::CanonicalCodeCached(extended);
          } else {
            // 3+ edge extensions dedup by isomorphism class before any
            // canonical-code work (isomorphic extensions serialize
            // differently, so every distinct serialization used to pay
            // a full canonical search). Classes bucket by the cheap
            // invariant hash and are separated by an exact tiny-graph
            // isomorphism test; only the class representative runs the
            // closure check and — if it survives — the canonical search.
            const std::uint64_t fp = iso::InvariantHash(extended);
            std::vector<LabeledGraph>& bucket = ext_classes[fp];
            for (const LabeledGraph& rep : bucket) {
              if (SmallGraphsIsomorphic(rep, extended)) return;
            }
            bucket.push_back(extended);
            // Downward closure: every connected k-edge sub-pattern must
            // be frequent. Found sub-patterns double as feasibility
            // filters: their TID sets are supersets of the candidate's
            // support.
            bool prunable = false;
            sub_sets.clear();
            // The extension appended its edge last, so dropping it just
            // reconstructs the parent — frequent by construction and
            // already the feasibility base; skip that copy+code
            // round-trip.
            const auto added = static_cast<EdgeId>(extended.num_edges() - 1);
            const std::vector<EdgeId> live = extended.LiveEdges();
            if (extended.num_edges() == 3) {
              // 2-edge subs are checked by wedge signature: no sub-graph
              // copy, no canonical code, and connectivity of the
              // remaining pair is just "do they share a vertex".
              for (EdgeId drop : live) {
                if (drop == added) continue;
                std::array<EdgeId, 2> rest;
                std::size_t r = 0;
                for (EdgeId e : live) {
                  if (e != drop) rest[r++] = e;
                }
                const Edge& ex = extended.edge(rest[0]);
                const Edge& ey = extended.edge(rest[1]);
                if (ex.src != ey.src && ex.src != ey.dst &&
                    ex.dst != ey.src && ex.dst != ey.dst) {
                  continue;  // disconnected sub: not checkable
                }
                const std::string& sub_sig = WedgeSignature(
                    extended, rest[0], rest[1], &sig_a, &sig_b);
                const auto sub_it = previous_level_sigs.find(sub_sig);
                if (sub_it == previous_level_sigs.end()) {
                  prunable = true;
                  break;
                }
                if (sub_sig == parent_sig) continue;  // base set already
                if (std::find(sub_sets.begin(), sub_sets.end(),
                              sub_it->second) == sub_sets.end()) {
                  sub_sets.push_back(sub_it->second);
                }
              }
            } else {
              for (EdgeId drop : live) {
                if (drop == added) continue;
                const LabeledGraph sub = WithoutEdge(extended, drop);
                if (!graph::IsWeaklyConnected(sub)) continue;  // not checkable
                const std::string sub_code = iso::CanonicalCodeCached(sub);
                const auto sub_it = previous_level_tids.find(sub_code);
                if (sub_it == previous_level_tids.end()) {
                  prunable = true;
                  break;
                }
                if (sub_code == parent.code) continue;  // base set already
                if (std::find(sub_sets.begin(), sub_sets.end(),
                              sub_it->second) == sub_sets.end()) {
                  sub_sets.push_back(sub_it->second);
                }
              }
            }
            if (prunable) {
              ++pruned_closure;
              return;
            }
            code = iso::CanonicalCodeCached(extended);
            if (candidates.contains(code)) return;
            // Feasibility: intersect the parent's TID set with the added
            // edge type's level-1 set and each sub-pattern set. Every
            // one is a necessary containment condition — an embedding of
            // the candidate maps the added edge to an edge of identical
            // type — so this only removes transactions that cannot
            // support the candidate; VF2 counting below stays exact.
            const auto type_it = type_tids.find({t, self_loop});
            if (type_it == type_tids.end()) {
              // The added edge type never occurs: trivially infrequent.
              feasible = empty_tids;
              pruned_by_join += parent_card;
            } else {
              TidSet feas = TidSet::Intersect(parent.tids, *type_it->second);
              for (const auto& sub : sub_sets) feas.IntersectWith(*sub);
              // Repeated edge types: an embedding maps the candidate's
              // edges injectively, so a type used m times needs >= m
              // occurrences in the transaction.
              cand_type_counts.clear();
              extended.ForEachEdge([&](EdgeId e) {
                const Edge& edge = extended.edge(e);
                ++cand_type_counts[{
                    EdgeType{extended.vertex_label(edge.src),
                             extended.vertex_label(edge.dst), edge.label},
                    edge.src == edge.dst}];
              });
              for (const auto& [key, m] : cand_type_counts) {
                if (m < 2 || feas.Empty()) continue;
                const auto mult_it = mult_tids.find(
                    {key.first, key.second, std::min(m, kMaxTypeMult)});
                if (mult_it == mult_tids.end()) {
                  feas.Clear();
                  break;
                }
                feas.IntersectWith(*mult_it->second);
              }
              pruned_by_join += parent_card - feas.Cardinality();
              if (feas.Cardinality() == parent_card) {
                if (!parent_shared) {
                  parent_shared = std::make_shared<const TidSet>(parent.tids);
                  tid_bytes = parent_shared->MemoryBytes();
                }
                feasible = parent_shared;
              } else {
                auto fresh = std::make_shared<const TidSet>(std::move(feas));
                tid_bytes = fresh->MemoryBytes();
                feasible = std::move(fresh);
              }
            }
          }
          Candidate c;
          c.pattern.graph = std::move(extended);
          c.pattern.code = code;
          c.feasible = std::move(feasible);
          c.feasible_exact = feasible_exact;
          const std::uint64_t delta = EstimateBytes(c.pattern) + tid_bytes;
          candidate_bytes += delta;
          result.peak_candidate_bytes =
              std::max(result.peak_candidate_bytes,
                       frontier_bytes + candidate_bytes);
          if (options.max_candidate_bytes != 0 &&
              frontier_bytes + candidate_bytes > options.max_candidate_bytes) {
            oom = true;
            return;
          }
          if (!options.budget.TryChargeMemory(delta)) {
            oom = true;
            return;
          }
          level_charged += delta;
          candidates.emplace(std::move(code), std::move(c));
        };

        for (VertexId u = 0; u < pg.num_vertices(); ++u) {
          const Label lu = pg.vertex_label(u);
          for (const EdgeType& t : frequent_edges) {
            if (t.src_label == lu) {
              // u -> new vertex.
              {
                LabeledGraph ext = pg;
                const VertexId w = ext.AddVertex(t.dst_label);
                ext.AddEdge(u, w, t.edge_label);
                consider(std::move(ext), t, /*self_loop=*/false);
              }
              // u -> existing vertex (including self-loop when labels
              // allow).
              for (VertexId w = 0; w < pg.num_vertices(); ++w) {
                if (pg.vertex_label(w) != t.dst_label) continue;
                LabeledGraph ext = pg;
                ext.AddEdge(u, w, t.edge_label);
                consider(std::move(ext), t, /*self_loop=*/w == u);
              }
            }
            if (t.dst_label == lu) {
              // new vertex -> u. (existing -> u is covered by the outgoing
              // case at that existing vertex.)
              LabeledGraph ext = pg;
              const VertexId w = ext.AddVertex(t.src_label);
              ext.AddEdge(w, u, t.edge_label);
              consider(std::move(ext), t, /*self_loop=*/false);
            }
            if (oom || level_outcome != common::MiningOutcome::kComplete) {
              break;
            }
          }
          if (oom || level_outcome != common::MiningOutcome::kComplete) {
            break;
          }
        }
      }
    } catch (const std::bad_alloc&) {
      // Allocation failure (real or injected) while building the level's
      // candidate set: degrade exactly like the candidate-byte ceiling.
      oom = true;
    }
    result.candidates_per_level.push_back(candidates.size());
    TNMINE_COUNTER_ADD("fsg/extensions_considered", extensions_considered);
    TNMINE_COUNTER_ADD("fsg/candidates_pruned_closure", pruned_closure);
    TNMINE_COUNTER_ADD("fsg/feasible_pruned_by_join", pruned_by_join);
    TNMINE_COUNTER_ADD("fsg/candidates_generated", candidates.size());
    if (oom) {
      result.aborted_out_of_memory = true;
      result.outcome = common::CombineOutcomes(
          result.outcome, common::MiningOutcome::kMemoryBudgetExceeded);
      break;
    }
    if (level_outcome != common::MiningOutcome::kComplete) {
      // Budget stop mid-generation: the level's candidate set is partial,
      // so none of it can be honestly counted. Keep completed levels.
      result.outcome = common::CombineOutcomes(result.outcome, level_outcome);
      break;
    }

    // Support counting against the candidate's feasible TID set. Each
    // candidate's containment checks are independent, so candidates are
    // counted on parallel lanes; sorting them by canonical code first
    // fixes the counting/output order deterministically (the hash-map
    // iteration order it replaces was implementation-defined).
    std::vector<Candidate> ordered;
    ordered.reserve(candidates.size());
    for (auto& [code, candidate] : candidates) {
      ordered.push_back(std::move(candidate));
    }
    std::sort(ordered.begin(), ordered.end(),
              [](const Candidate& a, const Candidate& b) {
                return a.pattern.code < b.pattern.code;
              });
    struct CountResult {
      std::vector<std::uint32_t> tids;
      std::uint64_t checks = 0;
      common::MiningOutcome aborted = common::MiningOutcome::kComplete;
    };
    TNMINE_TRACE_SPAN("fsg/count_phase");
    std::vector<CountResult> counted = common::ParallelMap<CountResult>(
        options.parallelism, ordered.size(), [&](std::size_t c) {
          CountResult out;
          // Shared stop conditions (cancel/deadline/memory trip) are
          // honored per candidate; tick truncation is settled
          // deterministically after the map, below.
          out.aborted = options.budget.StopReason();
          if (out.aborted != common::MiningOutcome::kComplete) {
            return out;
          }
          const FrequentPattern& p = ordered[c].pattern;
          const TidSet& feasible = *ordered[c].feasible;
          try {
            (void)TNMINE_FAILPOINT("fsg/count");
            // The feasible set's cardinality is already an upper bound
            // on support: skip the matcher entirely when it cannot
            // reach min_support.
            const std::size_t card = feasible.Cardinality();
            if (ordered[c].feasible_exact) {
              // Level-2 candidates carry their exact support set from
              // the wedge index; materialize it without any VF2 work.
              if (card >= options.min_support) out.tids = feasible.ToVector();
            } else if (card >= options.min_support) {
              // One search plan per candidate, reused across every
              // feasible transaction view (the former code rebuilt the
              // matcher per containment check).
              iso::SubgraphMatcher matcher(p.graph);
              iso::MatchOptions match_options;
              match_options.max_search_steps = options.max_match_steps;
              // Per-candidate reader: the feasible set is ascending, so
              // the streaming scan pins each shard it touches once.
              graph::TransactionSource::Reader reader(source);
              std::size_t i = 0;
              for (const std::uint32_t tid : feasible) {
                // Early abort when the remaining transactions cannot
                // reach min_support.
                if (out.tids.size() + (card - i) < options.min_support) {
                  break;
                }
                ++i;
                ++out.checks;
                if (matcher.Contains(reader.View(tid), match_options)) {
                  out.tids.push_back(tid);
                }
              }
            }
          } catch (const std::bad_alloc&) {
            out.aborted = common::MiningOutcome::kMemoryBudgetExceeded;
            out.tids.clear();
          }
          // One flush per candidate: the per-candidate check count is
          // scheduling-independent, so the total is too.
          TNMINE_COUNTER_ADD("fsg/support_checks", out.checks);
          return out;
        });
    // Settle the parallel phase against the tick ledger in sorted
    // candidate order. Each candidate's check count is a deterministic
    // function of the candidate alone, so the prefix that fits the
    // remaining allotment — and therefore the emitted pattern set — is
    // identical at any thread count.
    std::vector<FrequentPattern> next_frontier;
    for (std::size_t c = 0; c < ordered.size(); ++c) {
      if (counted[c].aborted != common::MiningOutcome::kComplete) {
        level_outcome =
            common::CombineOutcomes(level_outcome, counted[c].aborted);
        continue;
      }
      const common::MiningOutcome stop =
          meter.Charge(counted[c].checks > 0 ? counted[c].checks : 1);
      if (stop != common::MiningOutcome::kComplete) {
        level_outcome = common::CombineOutcomes(level_outcome, stop);
        break;
      }
      if (counted[c].tids.size() < options.min_support) continue;
      FrequentPattern& p = ordered[c].pattern;
      p.tids = TidSet::FromSorted(std::move(counted[c].tids), universe);
      p.support = p.tids.Cardinality();
      next_frontier.push_back(std::move(p));
    }
    result.frequent_per_level.push_back(next_frontier.size());
    TNMINE_COUNTER_ADD("fsg/candidates_counted", ordered.size());
    TNMINE_COUNTER_ADD("fsg/patterns_frequent", next_frontier.size());

    rebuild_previous(next_frontier);
    for (const FrequentPattern& p : next_frontier) {
      result.patterns.push_back(p);
    }
    if (level_outcome != common::MiningOutcome::kComplete) {
      // The level was truncated: its surviving prefix is emitted above
      // (every pattern in it was fully counted), but the frontier is
      // incomplete, so deeper levels cannot be mined honestly.
      result.outcome = common::CombineOutcomes(result.outcome, level_outcome);
      break;
    }
    result.levels_completed = level;
    frontier = std::move(next_frontier);
    frontier_bytes = retained_bytes();
  }
  result.work_ticks = meter.ticks_spent();
  common::RecordOutcome("fsg", result.outcome);
  return result;
}

}  // namespace tnmine::fsg
