file(REMOVE_RECURSE
  "CMakeFiles/attribute_table_test.dir/attribute_table_test.cc.o"
  "CMakeFiles/attribute_table_test.dir/attribute_table_test.cc.o.d"
  "attribute_table_test"
  "attribute_table_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/attribute_table_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
