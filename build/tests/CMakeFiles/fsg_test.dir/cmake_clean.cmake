file(REMOVE_RECURSE
  "CMakeFiles/fsg_test.dir/fsg_test.cc.o"
  "CMakeFiles/fsg_test.dir/fsg_test.cc.o.d"
  "fsg_test"
  "fsg_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fsg_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
