# Empty dependencies file for fsg_test.
# This may be replaced when dependencies are built.
