file(REMOVE_RECURSE
  "CMakeFiles/labeled_graph_test.dir/labeled_graph_test.cc.o"
  "CMakeFiles/labeled_graph_test.dir/labeled_graph_test.cc.o.d"
  "labeled_graph_test"
  "labeled_graph_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/labeled_graph_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
