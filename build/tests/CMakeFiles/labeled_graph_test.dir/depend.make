# Empty dependencies file for labeled_graph_test.
# This may be replaced when dependencies are built.
