# Empty dependencies file for episodes_test.
# This may be replaced when dependencies are built.
