file(REMOVE_RECURSE
  "CMakeFiles/episodes_test.dir/episodes_test.cc.o"
  "CMakeFiles/episodes_test.dir/episodes_test.cc.o.d"
  "episodes_test"
  "episodes_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/episodes_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
