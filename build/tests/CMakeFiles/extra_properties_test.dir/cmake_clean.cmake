file(REMOVE_RECURSE
  "CMakeFiles/extra_properties_test.dir/extra_properties_test.cc.o"
  "CMakeFiles/extra_properties_test.dir/extra_properties_test.cc.o.d"
  "extra_properties_test"
  "extra_properties_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/extra_properties_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
