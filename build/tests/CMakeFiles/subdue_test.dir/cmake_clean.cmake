file(REMOVE_RECURSE
  "CMakeFiles/subdue_test.dir/subdue_test.cc.o"
  "CMakeFiles/subdue_test.dir/subdue_test.cc.o.d"
  "subdue_test"
  "subdue_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/subdue_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
