# Empty compiler generated dependencies file for subdue_test.
# This may be replaced when dependencies are built.
