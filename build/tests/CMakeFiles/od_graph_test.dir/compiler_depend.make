# Empty compiler generated dependencies file for od_graph_test.
# This may be replaced when dependencies are built.
