file(REMOVE_RECURSE
  "CMakeFiles/od_graph_test.dir/od_graph_test.cc.o"
  "CMakeFiles/od_graph_test.dir/od_graph_test.cc.o.d"
  "od_graph_test"
  "od_graph_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/od_graph_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
