# Empty dependencies file for arff_test.
# This may be replaced when dependencies are built.
