file(REMOVE_RECURSE
  "CMakeFiles/arff_test.dir/arff_test.cc.o"
  "CMakeFiles/arff_test.dir/arff_test.cc.o.d"
  "arff_test"
  "arff_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/arff_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
