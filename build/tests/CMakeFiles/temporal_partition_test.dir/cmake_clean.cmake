file(REMOVE_RECURSE
  "CMakeFiles/temporal_partition_test.dir/temporal_partition_test.cc.o"
  "CMakeFiles/temporal_partition_test.dir/temporal_partition_test.cc.o.d"
  "temporal_partition_test"
  "temporal_partition_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/temporal_partition_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
