# Empty dependencies file for temporal_partition_test.
# This may be replaced when dependencies are built.
