# Empty dependencies file for split_graph_test.
# This may be replaced when dependencies are built.
