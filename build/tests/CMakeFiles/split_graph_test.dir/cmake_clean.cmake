file(REMOVE_RECURSE
  "CMakeFiles/split_graph_test.dir/split_graph_test.cc.o"
  "CMakeFiles/split_graph_test.dir/split_graph_test.cc.o.d"
  "split_graph_test"
  "split_graph_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/split_graph_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
