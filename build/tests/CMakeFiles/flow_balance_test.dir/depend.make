# Empty dependencies file for flow_balance_test.
# This may be replaced when dependencies are built.
