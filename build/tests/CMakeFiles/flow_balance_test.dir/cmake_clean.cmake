file(REMOVE_RECURSE
  "CMakeFiles/flow_balance_test.dir/flow_balance_test.cc.o"
  "CMakeFiles/flow_balance_test.dir/flow_balance_test.cc.o.d"
  "flow_balance_test"
  "flow_balance_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/flow_balance_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
