# Empty dependencies file for dfs_code_test.
# This may be replaced when dependencies are built.
