file(REMOVE_RECURSE
  "CMakeFiles/conventional_mining.dir/conventional_mining.cpp.o"
  "CMakeFiles/conventional_mining.dir/conventional_mining.cpp.o.d"
  "conventional_mining"
  "conventional_mining.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/conventional_mining.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
