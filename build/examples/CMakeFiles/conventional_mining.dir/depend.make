# Empty dependencies file for conventional_mining.
# This may be replaced when dependencies are built.
