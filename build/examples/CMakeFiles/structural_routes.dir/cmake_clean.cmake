file(REMOVE_RECURSE
  "CMakeFiles/structural_routes.dir/structural_routes.cpp.o"
  "CMakeFiles/structural_routes.dir/structural_routes.cpp.o.d"
  "structural_routes"
  "structural_routes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/structural_routes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
