# Empty compiler generated dependencies file for structural_routes.
# This may be replaced when dependencies are built.
