# Empty compiler generated dependencies file for dynamic_episodes.
# This may be replaced when dependencies are built.
