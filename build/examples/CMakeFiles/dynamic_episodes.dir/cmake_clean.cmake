file(REMOVE_RECURSE
  "CMakeFiles/dynamic_episodes.dir/dynamic_episodes.cpp.o"
  "CMakeFiles/dynamic_episodes.dir/dynamic_episodes.cpp.o.d"
  "dynamic_episodes"
  "dynamic_episodes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dynamic_episodes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
