
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/temporal_routes.cpp" "examples/CMakeFiles/temporal_routes.dir/temporal_routes.cpp.o" "gcc" "examples/CMakeFiles/temporal_routes.dir/temporal_routes.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/tnmine_core.dir/DependInfo.cmake"
  "/root/repo/build/src/ml/CMakeFiles/tnmine_ml.dir/DependInfo.cmake"
  "/root/repo/build/src/synth/CMakeFiles/tnmine_synth.dir/DependInfo.cmake"
  "/root/repo/build/src/fsg/CMakeFiles/tnmine_fsg.dir/DependInfo.cmake"
  "/root/repo/build/src/gspan/CMakeFiles/tnmine_gspan.dir/DependInfo.cmake"
  "/root/repo/build/src/subdue/CMakeFiles/tnmine_subdue.dir/DependInfo.cmake"
  "/root/repo/build/src/partition/CMakeFiles/tnmine_partition.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/tnmine_data.dir/DependInfo.cmake"
  "/root/repo/build/src/pattern/CMakeFiles/tnmine_pattern.dir/DependInfo.cmake"
  "/root/repo/build/src/iso/CMakeFiles/tnmine_iso.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/tnmine_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/tnmine_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
