file(REMOVE_RECURSE
  "CMakeFiles/temporal_routes.dir/temporal_routes.cpp.o"
  "CMakeFiles/temporal_routes.dir/temporal_routes.cpp.o.d"
  "temporal_routes"
  "temporal_routes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/temporal_routes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
