# Empty dependencies file for temporal_routes.
# This may be replaced when dependencies are built.
