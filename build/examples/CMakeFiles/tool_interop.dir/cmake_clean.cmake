file(REMOVE_RECURSE
  "CMakeFiles/tool_interop.dir/tool_interop.cpp.o"
  "CMakeFiles/tool_interop.dir/tool_interop.cpp.o.d"
  "tool_interop"
  "tool_interop.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tool_interop.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
