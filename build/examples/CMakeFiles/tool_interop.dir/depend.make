# Empty dependencies file for tool_interop.
# This may be replaced when dependencies are built.
