file(REMOVE_RECURSE
  "libtnmine_fsg.a"
)
