file(REMOVE_RECURSE
  "CMakeFiles/tnmine_fsg.dir/fsg.cc.o"
  "CMakeFiles/tnmine_fsg.dir/fsg.cc.o.d"
  "libtnmine_fsg.a"
  "libtnmine_fsg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tnmine_fsg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
