# Empty compiler generated dependencies file for tnmine_fsg.
# This may be replaced when dependencies are built.
