file(REMOVE_RECURSE
  "CMakeFiles/tnmine_graph.dir/algorithms.cc.o"
  "CMakeFiles/tnmine_graph.dir/algorithms.cc.o.d"
  "CMakeFiles/tnmine_graph.dir/graph_io.cc.o"
  "CMakeFiles/tnmine_graph.dir/graph_io.cc.o.d"
  "CMakeFiles/tnmine_graph.dir/labeled_graph.cc.o"
  "CMakeFiles/tnmine_graph.dir/labeled_graph.cc.o.d"
  "libtnmine_graph.a"
  "libtnmine_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tnmine_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
