file(REMOVE_RECURSE
  "libtnmine_graph.a"
)
