# Empty dependencies file for tnmine_graph.
# This may be replaced when dependencies are built.
