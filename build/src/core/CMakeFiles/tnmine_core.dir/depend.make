# Empty dependencies file for tnmine_core.
# This may be replaced when dependencies are built.
