file(REMOVE_RECURSE
  "libtnmine_core.a"
)
