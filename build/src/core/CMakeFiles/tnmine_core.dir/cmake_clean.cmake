file(REMOVE_RECURSE
  "CMakeFiles/tnmine_core.dir/episodes.cc.o"
  "CMakeFiles/tnmine_core.dir/episodes.cc.o.d"
  "CMakeFiles/tnmine_core.dir/flow_balance.cc.o"
  "CMakeFiles/tnmine_core.dir/flow_balance.cc.o.d"
  "CMakeFiles/tnmine_core.dir/interestingness.cc.o"
  "CMakeFiles/tnmine_core.dir/interestingness.cc.o.d"
  "CMakeFiles/tnmine_core.dir/miner.cc.o"
  "CMakeFiles/tnmine_core.dir/miner.cc.o.d"
  "libtnmine_core.a"
  "libtnmine_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tnmine_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
