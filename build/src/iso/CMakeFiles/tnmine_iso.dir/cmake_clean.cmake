file(REMOVE_RECURSE
  "CMakeFiles/tnmine_iso.dir/canonical.cc.o"
  "CMakeFiles/tnmine_iso.dir/canonical.cc.o.d"
  "CMakeFiles/tnmine_iso.dir/vf2.cc.o"
  "CMakeFiles/tnmine_iso.dir/vf2.cc.o.d"
  "libtnmine_iso.a"
  "libtnmine_iso.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tnmine_iso.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
