# Empty compiler generated dependencies file for tnmine_iso.
# This may be replaced when dependencies are built.
