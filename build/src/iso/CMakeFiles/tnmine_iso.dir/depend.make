# Empty dependencies file for tnmine_iso.
# This may be replaced when dependencies are built.
