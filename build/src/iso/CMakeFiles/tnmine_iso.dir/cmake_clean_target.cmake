file(REMOVE_RECURSE
  "libtnmine_iso.a"
)
