file(REMOVE_RECURSE
  "CMakeFiles/tnmine_partition.dir/multilevel.cc.o"
  "CMakeFiles/tnmine_partition.dir/multilevel.cc.o.d"
  "CMakeFiles/tnmine_partition.dir/split_graph.cc.o"
  "CMakeFiles/tnmine_partition.dir/split_graph.cc.o.d"
  "CMakeFiles/tnmine_partition.dir/temporal.cc.o"
  "CMakeFiles/tnmine_partition.dir/temporal.cc.o.d"
  "libtnmine_partition.a"
  "libtnmine_partition.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tnmine_partition.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
