# Empty dependencies file for tnmine_partition.
# This may be replaced when dependencies are built.
