file(REMOVE_RECURSE
  "libtnmine_partition.a"
)
