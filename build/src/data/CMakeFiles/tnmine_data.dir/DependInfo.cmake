
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/data/dataset.cc" "src/data/CMakeFiles/tnmine_data.dir/dataset.cc.o" "gcc" "src/data/CMakeFiles/tnmine_data.dir/dataset.cc.o.d"
  "/root/repo/src/data/generator.cc" "src/data/CMakeFiles/tnmine_data.dir/generator.cc.o" "gcc" "src/data/CMakeFiles/tnmine_data.dir/generator.cc.o.d"
  "/root/repo/src/data/geo.cc" "src/data/CMakeFiles/tnmine_data.dir/geo.cc.o" "gcc" "src/data/CMakeFiles/tnmine_data.dir/geo.cc.o.d"
  "/root/repo/src/data/od_graph.cc" "src/data/CMakeFiles/tnmine_data.dir/od_graph.cc.o" "gcc" "src/data/CMakeFiles/tnmine_data.dir/od_graph.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/graph/CMakeFiles/tnmine_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/tnmine_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
