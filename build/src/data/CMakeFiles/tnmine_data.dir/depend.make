# Empty dependencies file for tnmine_data.
# This may be replaced when dependencies are built.
