file(REMOVE_RECURSE
  "libtnmine_data.a"
)
