file(REMOVE_RECURSE
  "CMakeFiles/tnmine_data.dir/dataset.cc.o"
  "CMakeFiles/tnmine_data.dir/dataset.cc.o.d"
  "CMakeFiles/tnmine_data.dir/generator.cc.o"
  "CMakeFiles/tnmine_data.dir/generator.cc.o.d"
  "CMakeFiles/tnmine_data.dir/geo.cc.o"
  "CMakeFiles/tnmine_data.dir/geo.cc.o.d"
  "CMakeFiles/tnmine_data.dir/od_graph.cc.o"
  "CMakeFiles/tnmine_data.dir/od_graph.cc.o.d"
  "libtnmine_data.a"
  "libtnmine_data.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tnmine_data.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
