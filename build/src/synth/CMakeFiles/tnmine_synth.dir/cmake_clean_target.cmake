file(REMOVE_RECURSE
  "libtnmine_synth.a"
)
