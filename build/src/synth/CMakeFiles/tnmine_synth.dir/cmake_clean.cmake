file(REMOVE_RECURSE
  "CMakeFiles/tnmine_synth.dir/kk_generator.cc.o"
  "CMakeFiles/tnmine_synth.dir/kk_generator.cc.o.d"
  "CMakeFiles/tnmine_synth.dir/planted.cc.o"
  "CMakeFiles/tnmine_synth.dir/planted.cc.o.d"
  "libtnmine_synth.a"
  "libtnmine_synth.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tnmine_synth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
