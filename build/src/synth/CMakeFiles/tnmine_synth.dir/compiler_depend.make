# Empty compiler generated dependencies file for tnmine_synth.
# This may be replaced when dependencies are built.
