file(REMOVE_RECURSE
  "CMakeFiles/tnmine_pattern.dir/dot.cc.o"
  "CMakeFiles/tnmine_pattern.dir/dot.cc.o.d"
  "CMakeFiles/tnmine_pattern.dir/pattern.cc.o"
  "CMakeFiles/tnmine_pattern.dir/pattern.cc.o.d"
  "CMakeFiles/tnmine_pattern.dir/render.cc.o"
  "CMakeFiles/tnmine_pattern.dir/render.cc.o.d"
  "libtnmine_pattern.a"
  "libtnmine_pattern.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tnmine_pattern.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
