# Empty dependencies file for tnmine_pattern.
# This may be replaced when dependencies are built.
